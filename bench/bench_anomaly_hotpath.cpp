// Anomaly-scoring hot-path microbench: the CPU cost of one diagnosis's
// statistical core, measured layer by layer.
//
// Three experiments, each emitting one "[bench-json] {...}" line per row:
//
//   1. kde_eval — naive Kde::Cdf (full O(n) kernel sum per observation)
//      vs SortedKde::CdfBatch (sorted observations, two-pointer sweep,
//      kernel-tail truncation) over the same fitted baseline. Two
//      observation regimes: "shifted" is the diagnosis workload (the
//      unsatisfactory runs sit in the baseline's upper tail — Module CO's
//      reason to exist), "mixed" interleaves in-distribution observations
//      (the adversarial case for truncation: the window covers most of
//      the baseline). Every batched result is checked against the naive
//      result; max |delta| above 1e-9 exits non-zero.
//
//   2. model_fit — full refit per score (ScoreAnomaly: sort + bandwidth
//      selection + evaluate) vs a warm BaselineModelCache hit
//      (FitCachedModel + ScoreWithModel). The scores must match bit for
//      bit — a mismatch exits non-zero.
//
//   3. store_slice — TimeSeriesStore window queries: the owning Slice
//      copy vs the SampleSpan view (SliceView) plus MeanIn, over random
//      run-sized windows of a long monitoring series.
//
// The CI release job gates on the kde_eval summary: batched must be
// >= 3x naive at 10k baseline samples in the shifted regime.
//
//   $ ./bench_anomaly_hotpath [--obs=N] [--iters=N] [--seed=N]
//                             [--series=N] [--windows=N]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/model_cache.h"
#include "monitor/timeseries.h"
#include "stats/anomaly.h"
#include "stats/kde.h"
#include "stats/sorted_kde.h"
#include "support/bench_json.h"

using namespace diads;

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct BenchOptions {
  int observations = 64;
  int iters = 30;       ///< Timed repetitions per row.
  uint64_t seed = 42;
  int series_samples = 500000;  ///< store_slice series length.
  int windows = 20000;          ///< store_slice queries per mode.
};

std::vector<double> NormalDraws(SeededRng* rng, int n, double mean,
                                double sd) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng->Normal(mean, sd));
  return out;
}

// --- Experiment 1: naive vs batched KDE evaluation -------------------------

struct KdeEvalRow {
  int baseline = 0;
  const char* regime = "";
  double naive_us = 0;    ///< Per scoring pass (all observations).
  double batched_us = 0;
  double speedup = 0;
  double max_abs_diff = 0;
};

KdeEvalRow RunKdeEval(const BenchOptions& bench, int baseline_n,
                      const char* regime, const std::vector<double>& baseline,
                      const std::vector<double>& observations) {
  Result<stats::Kde> naive = stats::Kde::Fit(baseline);
  Result<stats::SortedKde> batched = stats::SortedKde::Fit(baseline);
  if (!naive.ok() || !batched.ok()) {
    std::fprintf(stderr, "KDE fit failed\n");
    std::exit(1);
  }

  std::vector<double> naive_scores(observations.size(), 0.0);
  const Clock::time_point naive_start = Clock::now();
  for (int it = 0; it < bench.iters; ++it) {
    for (size_t i = 0; i < observations.size(); ++i) {
      naive_scores[i] = naive->Cdf(observations[i]);
    }
  }
  const double naive_us = ElapsedUs(naive_start) / bench.iters;

  std::vector<double> batched_scores;
  const Clock::time_point batched_start = Clock::now();
  for (int it = 0; it < bench.iters; ++it) {
    batched_scores = batched->CdfBatch(observations);
  }
  const double batched_us = ElapsedUs(batched_start) / bench.iters;

  KdeEvalRow row;
  row.baseline = baseline_n;
  row.regime = regime;
  row.naive_us = naive_us;
  row.batched_us = batched_us;
  row.speedup = batched_us > 0 ? naive_us / batched_us : 0;
  for (size_t i = 0; i < observations.size(); ++i) {
    row.max_abs_diff = std::max(
        row.max_abs_diff, std::fabs(naive_scores[i] - batched_scores[i]));
  }
  if (row.max_abs_diff > 1e-9) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: batched KDE differs from naive by "
                 "%.3e (baseline=%d, regime=%s)\n",
                 row.max_abs_diff, baseline_n, regime);
    std::exit(1);
  }
  return row;
}

// --- Experiment 2: refit per score vs warm model cache ---------------------

struct ModelFitRow {
  int baseline = 0;
  double refit_us = 0;   ///< ScoreAnomaly (fit + evaluate) per call.
  double cached_us = 0;  ///< Warm FitCachedModel + ScoreWithModel per call.
  double speedup = 0;
};

ModelFitRow RunModelFit(const BenchOptions& bench, int baseline_n,
                        const std::vector<double>& baseline,
                        const std::vector<double>& observations) {
  const stats::AnomalyConfig config;
  diag::BaselineModelCache cache;
  diag::BaselineModelKey key;
  key.source = &cache;  // Any stable identity works for the bench.
  key.series = 1;
  key.config_fingerprint = diag::AnomalyConfigFingerprint(config);
  key.provenance_fingerprint = diag::HashDoubles(baseline);
  // The extractor stands in for the per-run baseline extraction a module
  // performs on a miss (a copy models its cost floor).
  const auto extract = [&baseline] {
    diag::ExtractedBaseline e;
    e.values = baseline;
    return e;
  };

  Result<stats::AnomalyScore> refit_score =
      stats::ScoreAnomaly(baseline, observations, config);
  if (!refit_score.ok()) {
    std::fprintf(stderr, "refit scoring failed\n");
    std::exit(1);
  }
  // Warm the cache once; every timed iteration below is a hit.
  {
    Result<diag::CachedBaseline> base = diag::GetOrFitBaseline(
        &cache, key, /*generation=*/1, config.bandwidth_rule, extract);
    if (!base.ok() || base->model == nullptr) {
      std::fprintf(stderr, "model fit failed\n");
      std::exit(1);
    }
  }

  const int calls = std::max(1, bench.iters);
  const Clock::time_point refit_start = Clock::now();
  double refit_sink = 0;
  for (int it = 0; it < calls; ++it) {
    refit_sink += stats::ScoreAnomaly(baseline, observations, config)->score;
  }
  const double refit_us = ElapsedUs(refit_start) / calls;

  const Clock::time_point cached_start = Clock::now();
  double cached_sink = 0;
  for (int it = 0; it < calls; ++it) {
    Result<diag::CachedBaseline> base = diag::GetOrFitBaseline(
        &cache, key, /*generation=*/1, config.bandwidth_rule, extract);
    cached_sink +=
        stats::ScoreWithModel(*base->model, observations, config)->score;
  }
  const double cached_us = ElapsedUs(cached_start) / calls;

  if (refit_sink != cached_sink) {
    std::fprintf(stderr,
                 "EXACTNESS VIOLATION: cached-model score differs from "
                 "refit score (baseline=%d)\n",
                 baseline_n);
    std::exit(1);
  }

  ModelFitRow row;
  row.baseline = baseline_n;
  row.refit_us = refit_us;
  row.cached_us = cached_us;
  row.speedup = cached_us > 0 ? refit_us / cached_us : 0;
  return row;
}

// --- Experiment 3: owning Slice vs SampleSpan view -------------------------

struct StoreSliceRow {
  int series = 0;
  int windows = 0;
  double copy_us = 0;  ///< Slice + sum of the copied samples, per query.
  double view_us = 0;  ///< SliceView + sum through the view, per query.
  double mean_us = 0;  ///< MeanIn (view-based), per query.
  double speedup = 0;  ///< copy / view.
};

StoreSliceRow RunStoreSlice(const BenchOptions& bench) {
  monitor::TimeSeriesStore store;
  const ComponentId component{7};
  const monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  SeededRng rng(bench.seed + 17);
  const SimTimeMs step = Minutes(5);
  for (int i = 0; i < bench.series_samples; ++i) {
    (void)store.Append(component, metric, static_cast<SimTimeMs>(i) * step,
                       rng.Normal(500, 60));
  }
  // Run-sized windows (~30 minutes, a handful of samples) at random
  // offsets — the MetricPerRun access pattern.
  std::vector<TimeInterval> queries;
  queries.reserve(static_cast<size_t>(bench.windows));
  const SimTimeMs span = static_cast<SimTimeMs>(bench.series_samples) * step;
  for (int i = 0; i < bench.windows; ++i) {
    const SimTimeMs begin = static_cast<SimTimeMs>(
        rng.Uniform(0, static_cast<double>(span - Minutes(30))));
    queries.push_back(TimeInterval{begin, begin + Minutes(30)});
  }

  double copy_sink = 0;
  const Clock::time_point copy_start = Clock::now();
  for (const TimeInterval& q : queries) {
    const std::vector<monitor::Sample> slice =
        store.Slice(component, metric, q);
    for (const monitor::Sample& s : slice) copy_sink += s.value;
  }
  const double copy_us = ElapsedUs(copy_start) / bench.windows;

  double view_sink = 0;
  const Clock::time_point view_start = Clock::now();
  for (const TimeInterval& q : queries) {
    const monitor::SampleSpan view = store.SliceView(component, metric, q);
    for (const monitor::Sample& s : view) view_sink += s.value;
  }
  const double view_us = ElapsedUs(view_start) / bench.windows;

  if (copy_sink != view_sink) {
    std::fprintf(stderr,
                 "EXACTNESS VIOLATION: SliceView sum differs from Slice\n");
    std::exit(1);
  }

  double mean_sink = 0;
  const Clock::time_point mean_start = Clock::now();
  for (const TimeInterval& q : queries) {
    Result<double> mean = store.MeanIn(component, metric, q);
    if (mean.ok()) mean_sink += *mean;
  }
  const double mean_us = ElapsedUs(mean_start) / bench.windows;
  (void)mean_sink;

  StoreSliceRow row;
  row.series = bench.series_samples;
  row.windows = bench.windows;
  row.copy_us = copy_us;
  row.view_us = view_us;
  row.mean_us = mean_us;
  row.speedup = view_us > 0 ? copy_us / view_us : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.observations = static_cast<int>(
      FlagValue(argc, argv, "obs", bench.observations));
  bench.iters =
      static_cast<int>(FlagValue(argc, argv, "iters", bench.iters));
  bench.seed = static_cast<uint64_t>(
      FlagValue(argc, argv, "seed", static_cast<int64_t>(bench.seed)));
  bench.series_samples = static_cast<int>(
      FlagValue(argc, argv, "series", bench.series_samples));
  bench.windows =
      static_cast<int>(FlagValue(argc, argv, "windows", bench.windows));

  std::printf(
      "Anomaly-scoring hot path: %d observations per pass, %d timed "
      "iterations per row.\n\n",
      bench.observations, bench.iters);

  // --- 1. naive vs batched KDE evaluation ---------------------------------
  TablePrinter kde_table({"Baseline", "Regime", "Naive (us)", "Batched (us)",
                          "Speedup", "Max |diff|"});
  double speedup_10k_shifted = 0;
  double speedup_10k_mixed = 0;
  for (int n : {100, 1000, 10000}) {
    SeededRng rng(bench.seed + static_cast<uint64_t>(n));
    const std::vector<double> baseline = NormalDraws(&rng, n, 100, 5);
    // "shifted": every observation in the baseline's far upper tail — the
    // unsatisfactory-run workload the modules score. "mixed": half the
    // observations inside the baseline distribution.
    std::vector<double> shifted =
        NormalDraws(&rng, bench.observations, 140, 5);
    std::vector<double> mixed =
        NormalDraws(&rng, bench.observations / 2, 100, 5);
    {
      std::vector<double> tail = NormalDraws(
          &rng, bench.observations - bench.observations / 2, 140, 5);
      mixed.insert(mixed.end(), tail.begin(), tail.end());
    }
    for (const auto& [regime, obs] :
         {std::pair<const char*, const std::vector<double>*>{"shifted",
                                                             &shifted},
          std::pair<const char*, const std::vector<double>*>{"mixed",
                                                             &mixed}}) {
      KdeEvalRow row = RunKdeEval(bench, n, regime, baseline, *obs);
      if (n == 10000 && std::strcmp(regime, "shifted") == 0) {
        speedup_10k_shifted = row.speedup;
      }
      if (n == 10000 && std::strcmp(regime, "mixed") == 0) {
        speedup_10k_mixed = row.speedup;
      }
      kde_table.AddRow({StrFormat("%d", row.baseline), row.regime,
                        StrFormat("%.1f", row.naive_us),
                        StrFormat("%.1f", row.batched_us),
                        StrFormat("%.1fx", row.speedup),
                        StrFormat("%.1e", row.max_abs_diff)});
      diads::bench::BenchJson("anomaly_hotpath")
          .Str("experiment", "kde_eval")
          .Int("baseline", row.baseline)
          .Int("observations", bench.observations)
          .Str("regime", row.regime)
          .Num("naive_us", row.naive_us, 2)
          .Num("batched_us", row.batched_us, 2)
          .Num("speedup", row.speedup, 2)
          .Sci("max_abs_diff", row.max_abs_diff, 3)
          .Emit();
    }
  }
  std::printf("\n%s\n", kde_table.Render().c_str());

  // --- 2. refit per score vs warm model cache -----------------------------
  TablePrinter fit_table(
      {"Baseline", "Refit (us)", "Cached (us)", "Speedup"});
  for (int n : {100, 1000, 10000}) {
    SeededRng rng(bench.seed + 1000 + static_cast<uint64_t>(n));
    const std::vector<double> baseline = NormalDraws(&rng, n, 100, 5);
    const std::vector<double> observations =
        NormalDraws(&rng, bench.observations, 140, 5);
    ModelFitRow row = RunModelFit(bench, n, baseline, observations);
    fit_table.AddRow({StrFormat("%d", row.baseline),
                      StrFormat("%.1f", row.refit_us),
                      StrFormat("%.1f", row.cached_us),
                      StrFormat("%.1fx", row.speedup)});
    diads::bench::BenchJson("anomaly_hotpath")
        .Str("experiment", "model_fit")
        .Int("baseline", row.baseline)
        .Int("observations", bench.observations)
        .Num("refit_us", row.refit_us, 2)
        .Num("cached_us", row.cached_us, 2)
        .Num("speedup", row.speedup, 2)
        .Emit();
  }
  std::printf("\n%s\n", fit_table.Render().c_str());

  // --- 3. owning Slice vs SampleSpan view ---------------------------------
  StoreSliceRow slice_row = RunStoreSlice(bench);
  std::printf(
      "Store slicing over a %d-sample series (%d random run-sized "
      "windows): Slice copy %.3fus, SliceView %.3fus (%.1fx), "
      "view-based MeanIn %.3fus per query.\n",
      slice_row.series, slice_row.windows, slice_row.copy_us,
      slice_row.view_us, slice_row.speedup, slice_row.mean_us);
  diads::bench::BenchJson("anomaly_hotpath")
      .Str("experiment", "store_slice")
      .Int("series", slice_row.series)
      .Int("windows", slice_row.windows)
      .Num("copy_us", slice_row.copy_us, 3)
      .Num("view_us", slice_row.view_us, 3)
      .Num("mean_us", slice_row.mean_us, 3)
      .Num("speedup", slice_row.speedup, 2)
      .Emit();

  // --- Headline ------------------------------------------------------------
  std::printf(
      "\nBatched KDE evaluation at 10k baseline samples: %.1fx (shifted "
      "observations), %.1fx (mixed).\n",
      speedup_10k_shifted, speedup_10k_mixed);
  diads::bench::BenchJson("anomaly_hotpath")
      .Str("experiment", "summary")
      .Int("baseline", 10000)
      .Num("speedup_shifted", speedup_10k_shifted, 2)
      .Num("speedup_mixed", speedup_10k_mixed, 2)
      .Emit();
  return 0;
}
