// Fleet-store experiment: cross-tenant root-cause queries answered from
// the sharded FleetStore vs brute-force re-diagnosis.
//
// Population: a workload::BuildFleet fleet of tenants (Table-1 scenario
// mix), each diagnosed once through the engine with the fleet store
// attached — the publish path a production deployment runs continuously.
// Then two ways to answer the three cross-tenant questions
//
//   Q1  tenants sharing component "V1" with an anomalous metric,
//   Q2  top-K components by number of implicated tenants,
//   Q3  root-cause co-occurrence across the fleet:
//
//   * store:  FleetQuery over published verdicts — zero module execution;
//   * brute:  re-diagnose every tenant serially (the only option without
//             the store, since module verdicts are per-diagnosis) and
//             aggregate the raw reports.
//
// The two answers are verified equal on every run — a mismatch hard-fails
// the binary (exit 1), same contract as the digest checks in the other
// benches. The headline is the wall-clock ratio (brute-force one sweep vs
// one full three-query round from the store); the acceptance gate is
// >= 10x, the measured gap is typically 3-5 orders of magnitude.
//
//   $ ./bench_fleet_store [--tenants=N] [--seed=N] [--query-rounds=N]
//                         [--brute-sweeps=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "support/bench_json.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

struct BenchOptions {
  int tenants = 8;
  uint64_t seed = 42;
  int query_rounds = 200;  ///< Measured three-query rounds from the store.
  int brute_sweeps = 1;    ///< Measured brute-force re-diagnosis sweeps.
};

struct FleetAnswers {
  std::vector<std::string> sharing_v1;
  std::vector<std::string> implicated_components;  ///< Ranked top-5 names.
  std::vector<int> implicated_counts;
  std::map<std::pair<int, int>, int> cooccurrence;

  bool operator==(const FleetAnswers& other) const {
    return sharing_v1 == other.sharing_v1 &&
           implicated_components == other.implicated_components &&
           implicated_counts == other.implicated_counts &&
           cooccurrence == other.cooccurrence;
  }
};

/// One full query round from the store.
FleetAnswers AnswerFromStore(const fleet::FleetQuery& query) {
  FleetAnswers out;
  out.sharing_v1 = query.TenantsSharingComponent("V1");
  for (const fleet::FleetQuery::ImplicatedComponent& row :
       query.TopImplicatedComponents(5)) {
    out.implicated_components.push_back(row.component);
    out.implicated_counts.push_back(row.tenants);
  }
  for (const fleet::FleetQuery::CauseCooccurrence& row :
       query.RootCauseCooccurrence()) {
    out.cooccurrence[{static_cast<int>(row.a), static_cast<int>(row.b)}] =
        row.tenants;
  }
  return out;
}

/// The brute-force answer: re-diagnose every tenant, aggregate reports.
/// (Same aggregation semantics as FleetQuery, rebuilt from the raw
/// DiagnosisReport vocabulary.)
FleetAnswers AnswerByReDiagnosis(const workload::FleetWorkload& fleet,
                                 const diag::SymptomsDb& symptoms) {
  struct Agg {
    std::set<std::string> tenants;
    double max_confidence = 0;
  };
  std::set<std::string> sharing;
  std::map<std::string, Agg> implicated;
  std::map<std::string, std::set<int>> tenant_types;
  for (const workload::FleetTenant& tenant : fleet.tenants) {
    Result<diag::DiagnosisReport> report = workload::SerialDiagnosis(
        tenant, diag::WorkflowConfig{}, &symptoms);
    if (!report.ok()) {
      std::fprintf(stderr, "brute-force diagnosis failed for %s: %s\n",
                   tenant.name.c_str(),
                   report.status().ToString().c_str());
      std::exit(1);
    }
    const ComponentRegistry& registry = tenant.output->testbed->registry;
    for (const diag::MetricAnomaly& row : report->da.metrics) {
      if (registry.Contains(row.component) &&
          registry.NameOf(row.component) == "V1" &&
          row.anomaly_score >= 0.8) {
        sharing.insert(tenant.name);
      }
    }
    for (const diag::RootCause& cause : report->causes) {
      if (!cause.subject.valid() || !registry.Contains(cause.subject)) {
        tenant_types[tenant.name].insert(static_cast<int>(cause.type));
        continue;
      }
      Agg& agg = implicated[registry.NameOf(cause.subject)];
      agg.tenants.insert(tenant.name);
      agg.max_confidence = std::max(agg.max_confidence, cause.confidence);
      tenant_types[tenant.name].insert(static_cast<int>(cause.type));
    }
  }
  FleetAnswers out;
  out.sharing_v1.assign(sharing.begin(), sharing.end());
  struct Ranked {
    std::string component;
    int tenants;
    double max_confidence;
  };
  std::vector<Ranked> ranked;
  for (const auto& [component, agg] : implicated) {
    ranked.push_back(Ranked{component, static_cast<int>(agg.tenants.size()),
                            agg.max_confidence});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.tenants != b.tenants) return a.tenants > b.tenants;
              if (a.max_confidence != b.max_confidence) {
                return a.max_confidence > b.max_confidence;
              }
              return a.component < b.component;
            });
  if (ranked.size() > 5) ranked.resize(5);
  for (const Ranked& row : ranked) {
    out.implicated_components.push_back(row.component);
    out.implicated_counts.push_back(row.tenants);
  }
  for (const auto& [tenant, types] : tenant_types) {
    for (auto a = types.begin(); a != types.end(); ++a) {
      for (auto b = a; b != types.end(); ++b) {
        ++out.cooccurrence[{*a, *b}];
      }
    }
  }
  return out;
}

int64_t FlagValue(int argc, char** argv, const char* name,
                  int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.tenants =
      static_cast<int>(FlagValue(argc, argv, "tenants", bench.tenants));
  bench.seed = static_cast<uint64_t>(
      FlagValue(argc, argv, "seed", static_cast<int64_t>(bench.seed)));
  bench.query_rounds = static_cast<int>(
      FlagValue(argc, argv, "query-rounds", bench.query_rounds));
  bench.brute_sweeps = static_cast<int>(
      FlagValue(argc, argv, "brute-sweeps", bench.brute_sweeps));

  std::printf("building fleet: %d tenants (Table-1 scenario mix)...\n",
              bench.tenants);
  workload::FleetOptions fleet_options;
  fleet_options.tenants = bench.tenants;
  fleet_options.requests_per_tenant = 1;
  fleet_options.seed = bench.seed;
  fleet_options.shuffle = false;
  Result<workload::FleetWorkload> fleet = workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "BuildFleet failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();

  // Publish path: every tenant diagnosed once through the engine with the
  // store attached (timed — this is the standing cost a deployment pays).
  fleet::FleetStore store;
  engine::EngineOptions engine_options;
  engine_options.workers = 4;
  engine_options.fleet_store = &store;
  const auto publish_start = std::chrono::steady_clock::now();
  {
    engine::DiagnosisEngine engine(engine_options, &symptoms);
    for (engine::DiagnosisResponse& response :
         engine.BatchDiagnose(std::move(fleet->requests))) {
      if (!response.ok()) {
        std::fprintf(stderr, "fleet diagnosis failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
    }
  }
  const double publish_ms = Ms(publish_start);

  // Brute force: re-diagnose + aggregate, --brute-sweeps times.
  const auto brute_start = std::chrono::steady_clock::now();
  FleetAnswers brute;
  for (int sweep = 0; sweep < bench.brute_sweeps; ++sweep) {
    brute = AnswerByReDiagnosis(*fleet, symptoms);
  }
  const double brute_ms = Ms(brute_start) / bench.brute_sweeps;

  // Store: the same three questions, --query-rounds times.
  fleet::FleetQuery query(&store);
  FleetAnswers from_store = AnswerFromStore(query);  // Warm + verify copy.
  const auto query_start = std::chrono::steady_clock::now();
  for (int round = 0; round < bench.query_rounds; ++round) {
    FleetAnswers answers = AnswerFromStore(query);
    if (!(answers == from_store)) {
      std::fprintf(stderr,
                   "FATAL: store answers changed between rounds\n");
      return 1;
    }
  }
  const double query_ms = Ms(query_start) / bench.query_rounds;

  // Equivalence gate: the store's answers must equal brute force exactly.
  if (!(from_store == brute)) {
    std::fprintf(stderr,
                 "FATAL: fleet-store answers differ from brute-force "
                 "re-diagnosis\n");
    std::fprintf(stderr, "  store sharing V1:");
    for (const std::string& t : from_store.sharing_v1) {
      std::fprintf(stderr, " %s", t.c_str());
    }
    std::fprintf(stderr, "\n  brute sharing V1:");
    for (const std::string& t : brute.sharing_v1) {
      std::fprintf(stderr, " %s", t.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  const double speedup = query_ms > 0 ? brute_ms / query_ms : 0;
  const fleet::FleetStore::Counters counters = store.TotalCounters();

  TablePrinter table({"mode", "ms/round", "speedup"});
  table.AddRow({"re-diagnosis (brute force)", StrFormat("%.3f", brute_ms),
                "1.0x"});
  table.AddRow({"fleet store (3 queries)", StrFormat("%.4f", query_ms),
                StrFormat("%.0fx", speedup)});
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("fleet publish (engine, %d tenants): %.1f ms total\n",
              bench.tenants, publish_ms);
  std::printf("%s", counters.Render().c_str());
  const std::vector<uint64_t> shard_publishes = store.ShardPublishCounts();
  std::printf("shard publish distribution:");
  for (uint64_t count : shard_publishes) {
    std::printf(" %llu", static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  std::printf("answers: %zu tenants share V1, top component %s (%d "
              "tenants), %zu co-occurrence cells\n",
              from_store.sharing_v1.size(),
              from_store.implicated_components.empty()
                  ? "(none)"
                  : from_store.implicated_components[0].c_str(),
              from_store.implicated_counts.empty()
                  ? 0
                  : from_store.implicated_counts[0],
              from_store.cooccurrence.size());

  diads::bench::BenchJson("fleet_store")
      .Str("mode", "brute")
      .Int("tenants", bench.tenants)
      .Num("ms_per_round", brute_ms, 4)
      .Emit();
  diads::bench::BenchJson("fleet_store")
      .Str("mode", "store")
      .Int("tenants", bench.tenants)
      .Num("ms_per_round", query_ms, 4)
      .Num("publish_ms", publish_ms, 2)
      .Uint("rows", counters.entries)
      .Emit();
  diads::bench::BenchJson("fleet_store")
      .Str("mode", "summary")
      .Int("tenants", bench.tenants)
      .Num("query_speedup", speedup, 1)
      .Bool("verified", true)
      .Emit();
  return 0;
}
