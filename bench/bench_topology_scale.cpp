// Topology-scale experiment: generation, failure-aware multipath
// resolution, APG construction, and a full Workflow::Diagnose over a
// generated fabric that crosses 1000 registry components.
//
// Four sections, the last two CI-gated on wall-clock budgets:
//
//   * Generation: GenerateFabricTopology(LargeFabricSpec()) into a fresh
//     registry — components created, generation time, and the hard floor
//     that the spec really crosses 1000 components.
//   * Resolution: ResolvePaths over every generated LUN mapping, three
//     ways — cold (first resolution), warm (cached), and re-resolved
//     after a failure flip invalidates the cache (the failover path). The
//     fabric-A HBA of every server is failed and recovered around the
//     re-resolution, so the timing covers the failure-aware BFS, not a
//     cache readback.
//   * APG at scale: the F1 failover scenario on the multipath testbed
//     with the LargeFabricSpec() fabric generated into the same registry
//     (TestbedOptions::add_scale_fabric) — BuildApg timed, min of
//     --reps, gated by --max-apg-ms.
//   * Diagnosis at scale: full Workflow::Diagnose over that scenario,
//     gated by --max-diagnose-ms, and the report must still rank the
//     injected HBA failure first (the scale fabric is idle structure; it
//     must not distort the diagnosis).
//
// A violated gate hard-fails the binary (exit 1). "[bench-json]" rows
// carry the numbers for CI artifacts.
//
//   $ ./bench_topology_scale [--reps=N] [--max-apg-ms=N]
//                            [--max-diagnose-ms=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "san/generator.h"
#include "san/topology.h"
#include "support/bench_json.h"
#include "workload/scenario.h"
#include "workload/testbed.h"

using namespace diads;

namespace {

int64_t FlagValue(int argc, char** argv, const char* name,
                  int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(FlagValue(argc, argv, "reps", 3));
  const double max_apg_ms =
      static_cast<double>(FlagValue(argc, argv, "max-apg-ms", 1000));
  const double max_diagnose_ms =
      static_cast<double>(FlagValue(argc, argv, "max-diagnose-ms", 5000));

  // --- Generation ----------------------------------------------------------
  ComponentRegistry registry;
  san::SanTopology topology(&registry);
  const auto gen_start = std::chrono::steady_clock::now();
  Result<san::GeneratedFabric> fabric =
      san::GenerateFabricTopology(&topology, san::LargeFabricSpec());
  const double generate_ms = Ms(gen_start);
  if (!fabric.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 fabric.status().ToString().c_str());
    return 1;
  }
  const bool scale_ok = fabric->component_count >= 1000;
  std::printf("generated %zu components (%zu servers, %zu volumes, %zu "
              "mappings) in %.1f ms\n",
              fabric->component_count, fabric->servers.size(),
              fabric->volumes.size(), fabric->mappings.size(), generate_ms);
  bench::BenchJson("topology_scale")
      .Str("mode", "generate")
      .Uint("components", fabric->component_count)
      .Uint("mappings", fabric->mappings.size())
      .Num("generate_ms", generate_ms, 1)
      .Emit();

  // --- Resolution: cold / warm / post-failure re-resolution ----------------
  auto resolve_all = [&]() -> double {
    const auto start = std::chrono::steady_clock::now();
    for (const auto& [server, volume] : fabric->mappings) {
      Result<std::vector<san::IoPath>> paths =
          topology.ResolvePaths(server, volume);
      if (!paths.ok()) {
        std::fprintf(stderr, "resolution failed: %s\n",
                     paths.status().ToString().c_str());
        std::exit(1);
      }
    }
    return Ms(start);
  };
  const double cold_ms = resolve_all();
  const double warm_ms = resolve_all();
  // Failure-aware re-resolution: failing every fabric-0 HBA invalidates the
  // path cache, so the next sweep re-runs the BFS with the failure state
  // applied (every mapping survives on its fabric-1 route).
  for (const auto& hbas : fabric->server_hbas) {
    if (!topology.SetHbaFailed(hbas[0], true).ok()) return 1;
  }
  const double failover_ms = resolve_all();
  for (const auto& hbas : fabric->server_hbas) {
    if (!topology.SetHbaFailed(hbas[0], false).ok()) return 1;
  }
  std::printf("resolution over %zu mappings: cold %.1f ms, warm %.2f ms, "
              "post-failure %.1f ms\n",
              fabric->mappings.size(), cold_ms, warm_ms, failover_ms);
  bench::BenchJson("topology_scale")
      .Str("mode", "resolve")
      .Num("cold_ms", cold_ms, 2)
      .Num("warm_ms", warm_ms, 3)
      .Num("failover_ms", failover_ms, 2)
      .Emit();

  // --- APG + full diagnosis at 1000+ components ----------------------------
  workload::ScenarioOptions scenario_options;
  scenario_options.testbed.add_scale_fabric = true;
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kF1HbaFailover, scenario_options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "F1 scenario at scale failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const size_t total_components = scenario->testbed->registry.size();
  std::printf("F1 testbed at scale: %zu registry components\n",
              total_components);

  double apg_ms = -1;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    Result<apg::Apg> apg = scenario->testbed->BuildApg();
    const double elapsed = Ms(start);
    if (!apg.ok()) {
      std::fprintf(stderr, "BuildApg failed: %s\n",
                   apg.status().ToString().c_str());
      return 1;
    }
    if (apg_ms < 0 || elapsed < apg_ms) apg_ms = elapsed;
  }

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::DiagnosisContext ctx = scenario->MakeContext();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  double diagnose_ms = -1;
  bool top_ranked = false;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    Result<diag::DiagnosisReport> report = workflow.Diagnose();
    const double elapsed = Ms(start);
    if (!report.ok()) {
      std::fprintf(stderr, "Diagnose failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (diagnose_ms < 0 || elapsed < diagnose_ms) diagnose_ms = elapsed;
    top_ranked =
        !report->causes.empty() && !scenario->ground_truth.empty() &&
        workload::MatchesGroundTruth(scenario->ground_truth.front(),
                                     report->causes.front(),
                                     scenario->testbed->registry);
  }

  const bool apg_ok = apg_ms <= max_apg_ms;
  const bool diagnose_ok = diagnose_ms <= max_diagnose_ms;
  std::printf("APG build %.1f ms (budget %.0f), diagnosis %.1f ms (budget "
              "%.0f), top-ranked root cause: %s\n",
              apg_ms, max_apg_ms, diagnose_ms, max_diagnose_ms,
              top_ranked ? "yes" : "NO");

  const bool pass = scale_ok && apg_ok && diagnose_ok && top_ranked;
  bench::BenchJson("topology_scale")
      .Str("mode", "summary")
      .Uint("components", total_components)
      .Num("apg_ms", apg_ms, 1)
      .Num("max_apg_ms", max_apg_ms, 0)
      .Num("diagnose_ms", diagnose_ms, 1)
      .Num("max_diagnose_ms", max_diagnose_ms, 0)
      .Bool("top_ranked", top_ranked)
      .Bool("pass", pass)
      .Emit();

  if (!pass) {
    std::fprintf(stderr,
                 "GATE FAILED: components>=1000=%d apg=%.1f/%.0fms "
                 "diagnose=%.1f/%.0fms top_ranked=%d\n",
                 scale_ok ? 1 : 0, apg_ms, max_apg_ms, diagnose_ms,
                 max_diagnose_ms, top_ranked ? 1 : 0);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
