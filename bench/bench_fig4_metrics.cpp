// Experiment F4 — Figure 4 of the paper: "Performance metrics collected by
// DIADS" (the database / server / network / storage inventory).
//
// Prints the catalog in the figure's four-column layout, verifies against a
// live testbed that every applicable metric is actually collected into the
// time-series store, and times a full monitoring sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "monitor/metrics.h"
#include "workload/testbed.h"

using namespace diads;
using monitor::AllMetrics;
using monitor::MetricLayer;
using monitor::MetricMeta;

namespace {

void BM_FullMonitoringSweep(benchmark::State& state) {
  std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  (void)tb->RunQ2(Hours(8));
  SimTimeMs from = Hours(7);
  for (auto _ : state) {
    // Collect one fresh hour per iteration (the store is append-only).
    benchmark::DoNotOptimize(tb->CollectMonitors(from, from + Hours(1)));
    from += Hours(1);
  }
  state.SetItemsProcessed(state.iterations() * 12);  // Intervals per hour.
}
BENCHMARK(BM_FullMonitoringSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The four-column inventory.
  std::vector<std::string> columns[4];
  for (const MetricMeta& m : AllMetrics()) {
    std::string name = m.name;
    if (!m.in_figure4) name += " *";
    columns[static_cast<int>(m.layer)].push_back(name);
  }
  // The per-run record fields of Figure 4's database column.
  columns[0].insert(columns[0].begin(),
                    {"Operator Start Stop Times [QueryRunRecord]",
                     "Record-counts [QueryRunRecord]",
                     "Plan Start Stop Times [QueryRunRecord]"});

  std::printf("=== Figure 4: performance metrics collected by DIADS ===\n");
  TablePrinter table({"Database Metrics", "Server Metrics", "Network Metrics",
                      "Storage Metrics"});
  size_t rows = 0;
  for (int c = 0; c < 4; ++c) rows = std::max(rows, columns[c].size());
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < 4; ++c) {
      row.push_back(r < columns[c].size() ? columns[c][r] : "");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s(* = derived metric beyond the Figure-4 list)\n\n",
              table.Render().c_str());

  // Collection-coverage check on a live testbed.
  std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  (void)tb->RunQ2(Hours(8));
  if (!tb->CollectMonitors(Hours(7), Hours(9)).ok()) {
    std::fprintf(stderr, "collection failed\n");
    return 1;
  }
  int covered = 0, applicable = 0;
  for (const MetricMeta& m : AllMetrics()) {
    const std::vector<ComponentId> components =
        tb->registry.AllOfKind(m.component_kind);
    if (components.empty()) continue;
    ++applicable;
    bool found = false;
    for (ComponentId c : components) {
      if (!tb->store.Series(c, m.id).empty()) found = true;
    }
    if (found) {
      ++covered;
    } else {
      std::printf("  NOT COLLECTED: %s\n", m.name);
    }
  }
  std::printf("Collection coverage: %d/%d applicable metrics observed in the "
              "store (%zu series, %zu samples total).\n\n",
              covered, applicable, tb->store.series_count(),
              tb->store.total_samples());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
