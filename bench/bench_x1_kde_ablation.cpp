// Experiment X1 — the paper's Section-5 observation:
//
//   "Compared to correlation analysis using advanced models (e.g., Bayesian
//   networks), KDE can produce accurate results with few tens of samples,
//   and is more robust to noise in the data."
//
// Setup mirrors Module CO: an operator's healthy running time is N(100, 8);
// degraded runs are shifted +2.5 sigma. A detector sees `n` *healthy*
// training samples (a fraction of which are polluted by monitoring spikes —
// the Section 1.1 noise) and must label batches of 5 clean observations,
// flagging a batch when its mean anomaly score >= 0.8 (DIADS's aggregation
// and threshold).
//
// Detectors compared on identical data:
//   * KDE (DIADS): Gaussian-kernel CDF, Silverman bandwidth — whose
//     min(sigma, IQR/1.34) spread estimate is robust to outliers;
//   * Parametric Gaussian: fit mean/sigma to the same samples, score with
//     the normal CDF — the non-robust single-model alternative; training
//     spikes inflate sigma and wash the shift out;
//   * Supervised naive-Bayes (reference): additionally gets *labelled
//     degraded* training samples — information DIADS's setting only has in
//     small, equally polluted quantities.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "stats/anomaly.h"
#include "stats/descriptive.h"
#include "stats/naive_bayes.h"

using namespace diads;

namespace {

constexpr double kHealthyMean = 100, kSigma = 8, kShift = 2.5 * kSigma;
constexpr int kBatch = 5;
constexpr double kThreshold = 0.8;

double Polluted(SeededRng& rng, double mean, double noise_fraction) {
  if (rng.Bernoulli(noise_fraction)) {
    // A monitoring spike: wildly wrong in either direction.
    return mean + rng.Uniform(-6 * kSigma, 10 * kSigma);
  }
  return rng.Normal(mean, kSigma);
}

double NormalCdf(double x, double mean, double sigma) {
  return 0.5 * (1.0 + std::erf((x - mean) / (sigma * std::sqrt(2.0))));
}

struct CellAccuracy {
  double kde = 0;
  double gaussian = 0;
  double bayes = 0;
};

CellAccuracy MeasureCell(int samples, double noise_fraction, int trials,
                         uint64_t seed) {
  SeededRng rng(seed);
  int kde_ok = 0, gauss_ok = 0, bayes_ok = 0, decisions = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> healthy, degraded_train;
    for (int i = 0; i < samples; ++i) {
      healthy.push_back(Polluted(rng, kHealthyMean, noise_fraction));
      degraded_train.push_back(
          Polluted(rng, kHealthyMean + kShift, noise_fraction));
    }
    Result<stats::Kde> kde = stats::Kde::Fit(healthy);
    Result<stats::GaussianNaiveBayes> bayes =
        stats::GaussianNaiveBayes::Fit(healthy, degraded_train);
    if (!kde.ok() || !bayes.ok()) continue;
    const double mu = stats::Mean(healthy);
    const double sigma = std::max(1e-6, stats::StdDev(healthy));

    for (bool is_degraded : {false, true}) {
      const double true_mean =
          is_degraded ? kHealthyMean + kShift : kHealthyMean;
      double kde_score = 0, gauss_score = 0, bayes_votes = 0;
      for (int i = 0; i < kBatch; ++i) {
        const double u = rng.Normal(true_mean, kSigma);
        kde_score += kde->Cdf(u);
        gauss_score += NormalCdf(u, mu, sigma);
        bayes_votes += bayes->Classify(u) ? 1.0 : 0.0;
      }
      kde_score /= kBatch;
      gauss_score /= kBatch;
      ++decisions;
      if ((kde_score >= kThreshold) == is_degraded) ++kde_ok;
      if ((gauss_score >= kThreshold) == is_degraded) ++gauss_ok;
      if ((bayes_votes / kBatch >= 0.5) == is_degraded) ++bayes_ok;
    }
  }
  CellAccuracy out;
  out.kde = decisions ? static_cast<double>(kde_ok) / decisions : 0;
  out.gaussian = decisions ? static_cast<double>(gauss_ok) / decisions : 0;
  out.bayes = decisions ? static_cast<double>(bayes_ok) / decisions : 0;
  return out;
}

void BM_KdeFitAndScore(benchmark::State& state) {
  SeededRng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    samples.push_back(rng.Normal(100, 8));
  }
  for (auto _ : state) {
    Result<stats::Kde> kde = stats::Kde::Fit(samples);
    benchmark::DoNotOptimize(kde->Cdf(130.0));
  }
}
BENCHMARK(BM_KdeFitAndScore)->Arg(10)->Arg(20)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int sample_counts[] = {5, 10, 20, 40, 80};
  const double noise_levels[] = {0.0, 0.1, 0.2, 0.3};
  const int trials = 400;

  std::printf("=== X1: KDE vs parametric models — accuracy by sample count "
              "and noise ===\n");
  std::printf("(batch labelling accuracy over %d trials per cell; shift = "
              "2.5 sigma; threshold %.1f)\n",
              trials, kThreshold);
  TablePrinter table({"Healthy samples", "Noise", "KDE (DIADS)",
                      "Parametric Gaussian", "Supervised NB (reference)"});
  double clean_gap = 0, noisy_gap = 0;
  int clean_cells = 0, noisy_cells = 0;
  for (int samples : sample_counts) {
    for (double noise : noise_levels) {
      const CellAccuracy cell = MeasureCell(
          samples, noise, trials,
          42 + static_cast<uint64_t>(samples * 1000 + noise * 100));
      table.AddRow({StrFormat("%d", samples), FormatPercent(noise, 0),
                    FormatPercent(cell.kde), FormatPercent(cell.gaussian),
                    FormatPercent(cell.bayes)});
      if (noise == 0) {
        clean_gap += cell.kde - cell.gaussian;
        ++clean_cells;
      }
      if (noise >= 0.2) {
        noisy_gap += cell.kde - cell.gaussian;
        ++noisy_cells;
      }
    }
    table.AddSeparator();
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "Paper's claim shape: KDE ~ parametric on clean data (mean gap %+.1f "
      "pts) but clearly more robust under noise (mean gap %+.1f pts at "
      "noise >= 20%%).\n\n",
      clean_gap / clean_cells * 100, noisy_gap / noisy_cells * 100);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
