// Experiment X3 — the paper's Section-5 observation:
//
//   "DIADS produces good results even when the symptoms database is
//   incomplete. ... DIADS's own modules like correlation, dependency, and
//   impact analysis can be used to identify important symptoms
//   automatically."
//
// Runs scenarios 1 and 4 under three symptoms-database conditions:
//   full      — the complete default database;
//   partial   — the entry for the actual root cause removed (the database
//               has never seen this failure mode);
//   none      — no symptoms database at all (pure CO/DA/CR fallback).
//
// Expected shape: with the full DB the exact cause is named at high
// confidence; with a partial DB a semantically-adjacent cause on the right
// subject still surfaces; with no DB the fallback still pinpoints the right
// component at capped confidence.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct AblationCell {
  std::string top;
  std::string right_subject;  ///< Does any top-3 cause name the true subject?
};

Result<AblationCell> RunCell(const workload::ScenarioOutput& scenario,
                             const diag::SymptomsDb* symptoms) {
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());
  const ComponentRegistry& registry = scenario.testbed->registry;
  AblationCell cell;
  if (report.causes.empty()) {
    cell.top = "(none)";
    cell.right_subject = "no";
    return cell;
  }
  const diag::RootCause& top = report.causes.front();
  cell.top = StrFormat(
      "%s%s%s (%.0f%%, %s)", diag::RootCauseTypeName(top.type),
      registry.Contains(top.subject) ? " on " : "",
      registry.Contains(top.subject) ? registry.NameOf(top.subject).c_str()
                                     : "",
      top.confidence, diag::ConfidenceBandName(top.band));
  cell.right_subject = "no";
  size_t inspected = 0;
  for (const diag::RootCause& cause : report.causes) {
    if (inspected++ >= 3) break;
    for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
      if (registry.Contains(cause.subject) &&
          registry.NameOf(cause.subject) == truth.subject_name) {
        cell.right_subject = "yes";
      }
    }
  }
  return cell;
}

void BM_SdFullVsEmpty(benchmark::State& state) {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {}).value();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  const bool with_db = state.range(0) != 0;
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          with_db ? &symptoms : nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workflow.Diagnose());
  }
}
BENCHMARK(BM_SdFullVsEmpty)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== X3: symptoms-database completeness ablation ===\n");
  TablePrinter table({"Scenario", "Symptoms DB", "Top cause",
                      "True subject in top-3?"});

  struct Case {
    workload::ScenarioId id;
    const char* removed_entry;
  };
  const Case cases[] = {
      {workload::ScenarioId::kS1SanMisconfiguration,
       "san-misconfiguration-contention"},
      {workload::ScenarioId::kS4ConcurrentDbSan, "data-property-change"},
  };
  for (const Case& c : cases) {
    Result<workload::ScenarioOutput> scenario = workload::RunScenario(c.id, {});
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed\n");
      return 1;
    }
    diag::SymptomsDb full = diag::SymptomsDb::MakeDefault();
    diag::SymptomsDb partial = diag::SymptomsDb::MakeDefault();
    if (!partial.RemoveEntry(c.removed_entry).ok()) {
      std::fprintf(stderr, "cannot remove entry %s\n", c.removed_entry);
      return 1;
    }
    struct Condition {
      const char* name;
      const diag::SymptomsDb* db;
    };
    const Condition conditions[] = {
        {"full", &full},
        {StrFormat("partial (no '%s')", c.removed_entry).c_str(), &partial},
        {"none", nullptr},
    };
    // StrFormat's temporary dies; rebuild label inline below instead.
    const std::string partial_label =
        StrFormat("partial (no '%s' entry)", c.removed_entry);
    const char* labels[] = {"full", partial_label.c_str(), "none"};
    const diag::SymptomsDb* dbs[] = {&full, &partial, nullptr};
    (void)conditions;
    for (int i = 0; i < 3; ++i) {
      Result<AblationCell> cell = RunCell(*scenario, dbs[i]);
      if (!cell.ok()) {
        std::fprintf(stderr, "cell failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      table.AddRow({workload::ScenarioName(c.id), labels[i], cell->top,
                    cell->right_subject});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.Render().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
