// Experiment F5 — Figure 5 of the paper: the DIADS deployment and data
// flow.
//
// The figure shows the deployment: TPC-H on PostgreSQL -> IBM TPC
// monitoring (config + stats + events into a DB2 store) -> DIADS server
// (APG views + diagnosis workflow). This bench traces one datum through
// each hop of that pipeline and times the stages end to end: workload
// execution, monitoring collection, store queries, APG construction,
// diagnosis.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

void BM_Stage1_WorkloadExecution(benchmark::State& state) {
  std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  SimTimeMs at = Hours(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->RunQ2(at));
    at += Hours(1);
  }
}
BENCHMARK(BM_Stage1_WorkloadExecution)->Unit(benchmark::kMicrosecond);

void BM_Stage2_MonitoringCollection(benchmark::State& state) {
  std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  (void)tb->RunQ2(Hours(8));
  SimTimeMs from = Hours(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->CollectMonitors(from, from + Minutes(30)));
    from += Minutes(30);
  }
}
BENCHMARK(BM_Stage2_MonitoringCollection)->Unit(benchmark::kMicrosecond);

void BM_Stage3_StoreSliceQueries(benchmark::State& state) {
  std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  (void)tb->RunQ2(Hours(8));
  (void)tb->CollectMonitors(Hours(7), Hours(12));
  for (auto _ : state) {
    double sum = 0;
    for (monitor::MetricId metric : tb->store.MetricsFor(tb->v1)) {
      Result<double> mean =
          tb->store.MeanIn(tb->v1, metric, TimeInterval{Hours(8), Hours(9)});
      if (mean.ok()) sum += *mean;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Stage3_StoreSliceQueries)->Unit(benchmark::kMicrosecond);

void BM_Stage4_FullScenarioToDiagnosis(benchmark::State& state) {
  for (auto _ : state) {
    Result<workload::ScenarioOutput> scenario = workload::RunScenario(
        workload::ScenarioId::kS1SanMisconfiguration, {});
    diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
    diag::Workflow workflow(scenario->MakeContext(), diag::WorkflowConfig{},
                            &symptoms);
    benchmark::DoNotOptimize(workflow.Diagnose());
  }
}
BENCHMARK(BM_Stage4_FullScenarioToDiagnosis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 5: deployment & data flow trace ===\n");
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {});
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed\n");
    return 1;
  }
  workload::Testbed& tb = *scenario->testbed;

  TablePrinter table({"Pipeline stage (Figure 5 box)", "Artifact", "Volume"});
  table.AddRow({"TPC-H on PostgreSQL (dbserver)", "query run records",
                StrFormat("%zu runs x 25 operators", tb.runs.size())});
  table.AddRow({"SAN fabric + DS6000", "load events in the perf model",
                StrFormat("%zu piecewise-constant load events",
                          tb.perf_model.load_event_count())});
  table.AddRow({"IBM TPC monitoring -> DB2 store", "time-series samples",
                StrFormat("%zu series, %zu samples", tb.store.series_count(),
                          tb.store.total_samples())});
  table.AddRow({"IBM TPC monitoring -> DB2 store", "system/config events",
                StrFormat("%zu events", tb.event_log.size())});
  table.AddRow({"DIADS server: APG views", "APG components",
                StrFormat("%zu components",
                          scenario->apg->AllComponents().size())});
  {
    diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
    diag::Workflow workflow(scenario->MakeContext(), diag::WorkflowConfig{},
                            &symptoms);
    Result<diag::DiagnosisReport> report = workflow.Diagnose();
    table.AddRow({"DIADS server: diagnosis workflow", "root causes",
                  report.ok() ? StrFormat("%zu ranked causes; top: %s",
                                          report->causes.size(),
                                          diag::RootCauseTypeName(
                                              report->causes.front().type))
                              : "failed"});
  }
  std::printf("%s\n", table.Render().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
