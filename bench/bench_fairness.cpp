// Serving-hardening experiment: what tenant-fair queueing buys a victim
// tenant when another tenant floods the engine, and what the segment log
// buys the fleet store across a crash.
//
// Experiment 1 (fairness): an adversarial flooding fleet — tenant 0
// bursts --flood-requests identical diagnosis requests, then 4 victim
// tenants each submit a few questions of their own (result cache and
// coalescing OFF, so the flood genuinely occupies the queue; admission
// shares opened to 1.0, so only the dispatch discipline differs). The
// same stream runs twice:
//
//   fifo — fairness disabled, the engine's original single bounded FIFO:
//          every victim request waits behind the whole remaining flood.
//   wfq  — deficit-round-robin over per-tenant sub-queues: victims'
//          requests overtake the flood's tail at their weighted rate.
//
// The headline is the victim p99 latency ratio (wfq / fifo), CI-gated at
// <= 0.5: fair queueing must at least halve the victim tail under a
// flood. Every response (flood and victim, both modes) is digest-checked
// against the serial ground truth — scheduling must never change report
// bytes.
//
// Experiment 2 (shedding): the same stream under wfq, with a short
// deadline stamped on every flood request. Expired flood requests must
// be shed at dispatch (kDeadlineExceeded, no worker time spent) while
// every deadline-less victim request still completes with a verified
// digest.
//
// Experiment 3 (crash recovery): the wfq run publishes every computed
// verdict into a FleetStore with a SegmentLog attached. The store is
// then "crashed" (dropped) and a fresh store recovered via
// RecoverFromLog; the recovered store must answer the full FleetQuery
// surface byte-identically to the pre-crash store. CI gates on
// queries_byte_equal and zero dropped records (clean shutdown — fault
// injection lives in fleet_log_test).
//
//   $ ./bench_fairness [--workers=N] [--flood-requests=N] [--victims=N]
//                      [--requests-per-victim=N] [--stall-ms=N]
//                      [--shed-deadline-ms=N] [--seed=N]
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "fleet/log.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "support/bench_json.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

struct BenchOptions {
  int workers = 2;
  int flood_requests = 48;
  int victims = 4;
  int requests_per_victim = 3;
  double stall_ms = 4;          ///< Simulated collector round-trip.
  double shed_deadline_ms = 8;  ///< Flood deadline in the shed pass.
  uint64_t seed = 42;
};

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(q * (samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

struct ModeResult {
  const char* mode = "";
  double victim_p99_ms = 0;
  double victim_mean_ms = 0;
  double flood_p99_ms = 0;
  uint64_t starvation_avoided = 0;
  uint64_t shed_deadline = 0;
  int completed = 0;
  int shed = 0;
  int digest_mismatches = 0;
  int failures = 0;
};

/// One pass of the flooding stream through an engine. `serial_digests`
/// holds the per-tenant ground truth; `flood_deadline_ms` > 0 stamps a
/// deadline on every flood (tenant 0) request. `store` (may be null)
/// attaches the fleet store for the recovery experiment.
ModeResult RunMode(const workload::FleetWorkload& fleet,
                   const diag::SymptomsDb& symptoms,
                   const std::vector<std::string>& serial_digests,
                   const BenchOptions& bench, bool fairness_on,
                   double flood_deadline_ms, fleet::FleetStore* store,
                   const char* mode_name) {
  engine::EngineOptions options;
  options.workers = bench.workers;
  options.queue_capacity =
      static_cast<size_t>(fleet.requests.size()) + 16;
  // The flood requests are identical on purpose; caching or coalescing
  // would collapse them and nothing would flood.
  options.enable_cache = false;
  options.coalesce_identical = false;
  options.collector_stall_ms = bench.stall_ms;
  options.fairness.enabled = fairness_on;
  // Shares wide open: this experiment isolates the dispatch discipline
  // (DRR vs FIFO); admission refusals are engine_serving --flood's demo.
  options.fairness.tenant_share_fraction = 1.0;
  options.fleet_store = store;
  engine::DiagnosisEngine engine(options, &symptoms);

  std::vector<engine::DiagnosisRequest> stream = fleet.requests;
  if (flood_deadline_ms > 0) {
    for (size_t i = 0; i < stream.size(); ++i) {
      if (fleet.tenant_of_request[i] == 0) {
        stream[i].deadline_ms = flood_deadline_ms;
      }
    }
  }

  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(stream));

  ModeResult result;
  result.mode = mode_name;
  std::vector<double> victim_ms;
  std::vector<double> flood_ms;
  for (size_t i = 0; i < responses.size(); ++i) {
    const engine::DiagnosisResponse& response = responses[i];
    const size_t tenant = fleet.tenant_of_request[i];
    if (response.ok()) {
      ++result.completed;
      (tenant == 0 ? flood_ms : victim_ms).push_back(response.latency_ms);
      if (diag::ReportDigest(*response.report) != serial_digests[tenant]) {
        ++result.digest_mismatches;
      }
    } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++result.shed;
    } else {
      ++result.failures;
      std::fprintf(stderr, "[%s] request %zu failed: %s\n", mode_name, i,
                   response.status.ToString().c_str());
    }
  }
  result.victim_p99_ms = Percentile(victim_ms, 0.99);
  result.victim_mean_ms =
      victim_ms.empty()
          ? 0
          : std::accumulate(victim_ms.begin(), victim_ms.end(), 0.0) /
                victim_ms.size();
  result.flood_p99_ms = Percentile(flood_ms, 0.99);
  const engine::EngineStatsSnapshot stats = engine.Stats();
  result.starvation_avoided = stats.starvation_avoided;
  result.shed_deadline = stats.shed_deadline;
  return result;
}

/// Serializes every FleetQuery answer into one string: two stores answer
/// byte-identically iff their fingerprints are equal. Confidences print
/// with %.17g so no two distinct doubles collide.
std::string QueryFingerprint(const fleet::FleetStore& store) {
  fleet::FleetQuery query(&store);
  std::string out;
  for (const char* component : {"V1", "V2", "P1", "S1", "D1"}) {
    out += StrFormat("sharing(%s):", component);
    for (const std::string& tenant :
         query.TenantsSharingComponent(component)) {
      out += tenant + ",";
    }
    out += StrFormat(";implicating(%s):", component);
    for (const std::string& tenant : query.TenantsImplicating(component)) {
      out += tenant + ",";
    }
    out += ";";
  }
  out += "top:";
  for (const fleet::FleetQuery::ImplicatedComponent& row :
       query.TopImplicatedComponents(16)) {
    out += StrFormat("%s=%d@%.17g(", row.component.c_str(), row.tenants,
                     row.max_confidence);
    for (const std::string& tenant : row.tenant_names) out += tenant + ",";
    out += ");";
  }
  out += "cooccur:";
  for (const fleet::FleetQuery::CauseCooccurrence& row :
       query.RootCauseCooccurrence()) {
    out += StrFormat("%d+%d=%d;", static_cast<int>(row.a),
                     static_cast<int>(row.b), row.tenants);
  }
  return out;
}

void RemoveLogDir(const std::string& dir) {
  for (const std::string& name : fleet::SegmentLog::ListSegments(dir)) {
    std::remove((dir + "/" + name).c_str());
  }
  rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.workers =
      static_cast<int>(FlagValue(argc, argv, "workers", bench.workers));
  bench.flood_requests = static_cast<int>(
      FlagValue(argc, argv, "flood-requests", bench.flood_requests));
  bench.victims =
      static_cast<int>(FlagValue(argc, argv, "victims", bench.victims));
  bench.requests_per_victim = static_cast<int>(FlagValue(
      argc, argv, "requests-per-victim", bench.requests_per_victim));
  bench.stall_ms = static_cast<double>(FlagValue(
      argc, argv, "stall-ms", static_cast<int64_t>(bench.stall_ms)));
  bench.shed_deadline_ms = static_cast<double>(
      FlagValue(argc, argv, "shed-deadline-ms",
                static_cast<int64_t>(bench.shed_deadline_ms)));
  bench.seed = static_cast<uint64_t>(
      FlagValue(argc, argv, "seed", static_cast<int64_t>(bench.seed)));

  workload::FloodingFleetOptions flood_options;
  flood_options.victim_tenants = bench.victims;
  flood_options.flood_requests = bench.flood_requests;
  flood_options.requests_per_victim = bench.requests_per_victim;
  flood_options.seed = bench.seed;
  std::printf(
      "Building the flooding fleet (1 flooder x %d requests, %d victims "
      "x %d requests)...\n",
      bench.flood_requests, bench.victims, bench.requests_per_victim);
  Result<workload::FleetWorkload> fleet =
      workload::BuildFloodingFleet(flood_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();

  // Ground truth once per tenant: every engine response must match its
  // tenant's serial digest whatever the scheduling did.
  std::vector<std::string> serial_digests;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    Result<diag::DiagnosisReport> serial = workload::SerialDiagnosis(
        tenant, fleet->requests.front().config, &symptoms);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial diagnosis (%s) failed: %s\n",
                   tenant.name.c_str(), serial.status().ToString().c_str());
      return 1;
    }
    serial_digests.push_back(diag::ReportDigest(*serial));
  }

  std::printf(
      "Stream: %zu requests, %d workers, %.0fms simulated collection per "
      "diagnosis, cache/coalescing off.\n\n",
      fleet->requests.size(), bench.workers, bench.stall_ms);

  // --- Experiment 1+3: fifo vs wfq; the wfq pass feeds the durability
  // round trip (publish through an attached segment log).
  char log_dir_template[] = "/tmp/bench_fairness_log_XXXXXX";
  const char* log_dir = mkdtemp(log_dir_template);
  if (log_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  fleet::LogOptions log_options;
  log_options.dir = log_dir;
  Result<std::unique_ptr<fleet::SegmentLog>> log =
      fleet::SegmentLog::Open(std::move(log_options));
  if (!log.ok()) {
    std::fprintf(stderr, "segment log open failed: %s\n",
                 log.status().ToString().c_str());
    return 1;
  }
  fleet::FleetStore oracle_store;
  oracle_store.AttachLog(log->get());

  ModeResult fifo = RunMode(*fleet, symptoms, serial_digests, bench,
                            /*fairness_on=*/false, /*flood_deadline_ms=*/0,
                            /*store=*/nullptr, "fifo");
  ModeResult wfq = RunMode(*fleet, symptoms, serial_digests, bench,
                           /*fairness_on=*/true, /*flood_deadline_ms=*/0,
                           &oracle_store, "wfq");
  oracle_store.DetachLog();
  (*log)->Flush();
  const fleet::LogCounters log_counters = (*log)->Counters();
  log->reset();  // Close the tail segment before replaying it.

  // --- Experiment 2: deadline shedding under wfq (no store: shed floods
  // publish nothing, and the recovery oracle is already written).
  ModeResult shed = RunMode(*fleet, symptoms, serial_digests, bench,
                            /*fairness_on=*/true, bench.shed_deadline_ms,
                            /*store=*/nullptr, "wfq_shed");

  // --- Experiment 3: crash the store, recover from the log, compare the
  // full query surface byte-for-byte.
  fleet::FleetStore recovered_store;
  const fleet::ReplayStats replay =
      fleet::RecoverFromLog(log_dir, &recovered_store);
  const std::string oracle_fp = QueryFingerprint(oracle_store);
  const std::string recovered_fp = QueryFingerprint(recovered_store);
  const bool byte_equal = oracle_fp == recovered_fp;
  RemoveLogDir(log_dir);

  // --- Report.
  TablePrinter table({"Mode", "Victim p99 (ms)", "Victim mean (ms)",
                      "Flood p99 (ms)", "Overtakes", "Shed", "Digest errs"});
  for (const ModeResult& r : {fifo, wfq, shed}) {
    table.AddRow(
        {r.mode, StrFormat("%.1f", r.victim_p99_ms),
         StrFormat("%.1f", r.victim_mean_ms),
         StrFormat("%.1f", r.flood_p99_ms),
         StrFormat("%llu", static_cast<unsigned long long>(
                               r.starvation_avoided)),
         StrFormat("%d", r.shed), StrFormat("%d", r.digest_mismatches)});
  }
  std::printf("%s\n", table.Render().c_str());

  for (const ModeResult& r : {fifo, wfq, shed}) {
    diads::bench::BenchJson("engine_fairness")
        .Str("mode", r.mode)
        .Num("victim_p99_ms", r.victim_p99_ms, 2)
        .Num("victim_mean_ms", r.victim_mean_ms, 2)
        .Num("flood_p99_ms", r.flood_p99_ms, 2)
        .Uint("starvation_avoided", r.starvation_avoided)
        .Int("shed", r.shed)
        .Int("completed", r.completed)
        .Int("failures", r.failures)
        .Int("digest_mismatches", r.digest_mismatches)
        .Emit();
  }

  const double ratio =
      fifo.victim_p99_ms > 0 ? wfq.victim_p99_ms / fifo.victim_p99_ms : 0;
  const int victim_requests = bench.victims * bench.requests_per_victim;
  const bool victims_ok_under_shed =
      shed.failures == 0 && shed.digest_mismatches == 0 &&
      shed.completed + shed.shed ==
          static_cast<int>(fleet->requests.size()) &&
      shed.completed >= victim_requests;
  diads::bench::BenchJson("engine_fairness")
      .Str("mode", "summary")
      .Num("victim_p99_fifo_ms", fifo.victim_p99_ms, 2)
      .Num("victim_p99_wfq_ms", wfq.victim_p99_ms, 2)
      .Num("victim_p99_ratio", ratio, 3)
      .Int("shed_flood_requests", shed.shed)
      .Bool("victims_ok_under_shed", victims_ok_under_shed)
      .Int("digest_mismatches",
           fifo.digest_mismatches + wfq.digest_mismatches +
               shed.digest_mismatches)
      .Int("failures", fifo.failures + wfq.failures + shed.failures)
      .Emit();

  std::printf(
      "\nVictim p99: %.1fms (fifo) -> %.1fms (wfq), ratio %.3f "
      "(gate: <= 0.5)\n",
      fifo.victim_p99_ms, wfq.victim_p99_ms, ratio);
  std::printf(
      "Shed pass: %d flood requests shed at dispatch, %d completed, "
      "victims ok: %s\n",
      shed.shed, shed.completed, victims_ok_under_shed ? "yes" : "no");
  std::printf(
      "Recovery: %llu records appended, %llu replayed, %llu dropped, "
      "query surface byte-equal: %s\n",
      static_cast<unsigned long long>(log_counters.appends),
      static_cast<unsigned long long>(replay.records_replayed),
      static_cast<unsigned long long>(replay.records_dropped),
      byte_equal ? "yes" : "no");

  diads::bench::BenchJson("engine_fairness")
      .Str("mode", "recovery")
      .Uint("records_appended", log_counters.appends)
      .Uint("records_replayed", replay.records_replayed)
      .Uint("records_dropped", replay.records_dropped)
      .Uint("decode_failures", replay.decode_failures)
      .Uint("segments_scanned", replay.segments_scanned)
      .Uint("store_entries", recovered_store.TotalCounters().entries)
      .Bool("queries_byte_equal", byte_equal)
      .Emit();

  return 0;
}
