// Shared "[bench-json] {...}" emitter for the benchmark drivers.
//
// Every bench that feeds the acceptance trajectory prints one JSON object
// per measured row, prefixed with "[bench-json] " so CI can grep them out
// of the human-readable output. Before this header each bench hand-rolled
// its printf format string — easy to unbalance a brace or emit a bare NaN
// (invalid JSON) when a denominator is zero. The builder below owns the
// quoting/formatting rules in one place:
//
//   BenchJson("engine_async_collection")
//       .Str("mode", "summary")
//       .Num("p99_speedup", speedup, 2)
//       .Emit();
//
// prints
//
//   [bench-json] {"bench":"engine_async_collection","mode":"summary",
//                 "p99_speedup":3.41}
//
// (one line). Field order follows call order; "bench" is always first.
// Non-finite doubles are emitted as 0 with an extra "<key>_nonfinite":true
// marker rather than breaking the line's parseability.
//
// For simple single-measurement rows there is also the standardized
// (bench, metric, unit, value) shape:
//
//   EmitBenchMetric("fleet_store", "query_p99", "ms", p99);
#ifndef DIADS_BENCH_SUPPORT_BENCH_JSON_H_
#define DIADS_BENCH_SUPPORT_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/strings.h"

namespace diads::bench {

/// One "[bench-json]" line under construction.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench) {
    body_ = "\"bench\":" + Quoted(bench);
  }

  BenchJson& Str(const char* key, const std::string& value) {
    return Raw(key, Quoted(value));
  }

  BenchJson& Bool(const char* key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  BenchJson& Int(const char* key, int64_t value) {
    return Raw(key, StrFormat("%lld", static_cast<long long>(value)));
  }

  BenchJson& Uint(const char* key, uint64_t value) {
    return Raw(key, StrFormat("%llu",
                              static_cast<unsigned long long>(value)));
  }

  /// Fixed-point double with `precision` digits after the point (matching
  /// the printf("%.Nf") the benches always used, so trajectory diffs stay
  /// quiet). Non-finite values become 0 plus a "<key>_nonfinite" marker.
  BenchJson& Num(const char* key, double value, int precision = 3) {
    if (!std::isfinite(value)) {
      Raw(key, "0");
      return Raw((std::string(key) + "_nonfinite").c_str(), "true");
    }
    return Raw(key, StrFormat("%.*f", precision, value));
  }

  /// Scientific-notation double (for error magnitudes spanning decades).
  /// JSON numbers allow the exponent form printf emits.
  BenchJson& Sci(const char* key, double value, int precision = 3) {
    if (!std::isfinite(value)) {
      Raw(key, "0");
      return Raw((std::string(key) + "_nonfinite").c_str(), "true");
    }
    return Raw(key, StrFormat("%.*e", precision, value));
  }

  /// Prints the line to stdout.
  void Emit() const {
    std::printf("[bench-json] {%s}\n", body_.c_str());
  }

 private:
  BenchJson& Raw(const char* key, const std::string& rendered) {
    body_ += ',';
    body_ += Quoted(key);
    body_ += ':';
    body_ += rendered;
    return *this;
  }

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  std::string body_;
};

/// The standardized single-measurement shape: bench, metric, unit, value.
inline void EmitBenchMetric(const std::string& bench,
                            const std::string& metric,
                            const std::string& unit, double value,
                            int precision = 3) {
  BenchJson(bench).Str("metric", metric).Str("unit", unit)
      .Num("value", value, precision).Emit();
}

}  // namespace diads::bench

#endif  // DIADS_BENCH_SUPPORT_BENCH_JSON_H_
