// Experiment F2 — Figure 2 of the paper: the diagnosis workflow.
//
// Reproduces the drill-down funnel on scenario 1: Query -> Plans (PD) ->
// Operators (CO) -> Components (DA) -> record counts (CR) -> Symptoms (SD)
// -> Impact (IA), printing each stage's input/output cardinality — the
// "progressively drills down ... then rolls up" shape of the figure — and
// times each module individually.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct SharedScenario {
  workload::ScenarioOutput scenario;
  diag::DiagnosisContext ctx;
  diag::WorkflowConfig config;
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();

  SharedScenario()
      : scenario(workload::RunScenario(
            workload::ScenarioId::kS1SanMisconfiguration, {}).value()),
        ctx(scenario.MakeContext()) {}
};

SharedScenario& Shared() {
  static SharedScenario shared;
  return shared;
}

void BM_ModulePD(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(diag::RunPlanDiff(Shared().ctx));
  }
}
BENCHMARK(BM_ModulePD)->Unit(benchmark::kMicrosecond);

void BM_ModuleCO(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diag::RunCorrelatedOperators(Shared().ctx, Shared().config));
  }
}
BENCHMARK(BM_ModuleCO)->Unit(benchmark::kMicrosecond);

void BM_ModuleDA(benchmark::State& state) {
  diag::CoResult co =
      diag::RunCorrelatedOperators(Shared().ctx, Shared().config).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diag::RunDependencyAnalysis(Shared().ctx, Shared().config, co));
  }
}
BENCHMARK(BM_ModuleDA)->Unit(benchmark::kMillisecond);

void BM_ModuleCR(benchmark::State& state) {
  diag::CoResult co =
      diag::RunCorrelatedOperators(Shared().ctx, Shared().config).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diag::RunCorrelatedRecords(Shared().ctx, Shared().config, co));
  }
}
BENCHMARK(BM_ModuleCR)->Unit(benchmark::kMicrosecond);

void BM_ModuleSDplusIA(benchmark::State& state) {
  diag::CoResult co =
      diag::RunCorrelatedOperators(Shared().ctx, Shared().config).value();
  diag::DaResult da =
      diag::RunDependencyAnalysis(Shared().ctx, Shared().config, co).value();
  diag::CrResult cr =
      diag::RunCorrelatedRecords(Shared().ctx, Shared().config, co).value();
  diag::PdResult pd = diag::RunPlanDiff(Shared().ctx).value();
  for (auto _ : state) {
    std::vector<diag::RootCause> causes =
        diag::RunSymptomsDatabase(Shared().ctx, Shared().config, pd, co, da,
                                  cr, Shared().symptoms)
            .value();
    benchmark::DoNotOptimize(diag::RunImpactAnalysis(
        Shared().ctx, Shared().config, co, cr, &causes));
  }
}
BENCHMARK(BM_ModuleSDplusIA)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  SharedScenario& shared = Shared();
  diag::Workflow workflow(shared.ctx, shared.config, &shared.symptoms);
  Result<diag::DiagnosisReport> report = workflow.Diagnose();
  if (!report.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const size_t plan_ops = shared.ctx.apg->plan().size();
  const size_t all_components = shared.ctx.apg->AllComponents().size();
  const size_t events_in_window =
      shared.ctx.events->EventsIn(shared.ctx.AnalysisWindow()).size();
  int high = 0;
  for (const diag::RootCause& cause : report->causes) {
    if (cause.band == diag::ConfidenceBand::kHigh) ++high;
  }

  std::printf("=== Figure 2: the drill-down / roll-up funnel "
              "(scenario 1) ===\n");
  TablePrinter funnel({"Workflow level", "Module", "Input", "Output"});
  funnel.AddRow({"Query", "admin labelling", "1 query, 30 runs",
                 "20 satisfactory + 10 unsatisfactory"});
  funnel.AddRow({"Plans", "PD",
                 StrFormat("%zu plan fingerprints", 1 + report->pd
                               .unsatisfactory_fingerprints.size() -
                               1),
                 report->pd.plans_differ ? "plans differ"
                                         : "same plan -> continue"});
  funnel.AddRow({"Operators", "CO", StrFormat("%zu operators", plan_ops),
                 StrFormat("|COS| = %zu",
                           report->co.correlated_operator_set.size())});
  funnel.AddRow(
      {"Components", "DA",
       StrFormat("%zu components, %zu metric series scored", all_components,
                 report->da.metrics.size()),
       StrFormat("|CCS| = %zu",
                 report->da.correlated_component_set.size())});
  funnel.AddRow({"Operators", "CR",
                 StrFormat("%zu COS operators",
                           report->co.correlated_operator_set.size()),
                 StrFormat("|CRS| = %zu, data properties %s",
                           report->cr.correlated_record_set.size(),
                           report->cr.data_properties_changed ? "changed"
                                                              : "unchanged")});
  funnel.AddRow({"Events/Symptoms", "SD",
                 StrFormat("%zu events, %zu symptom entries",
                           events_in_window,
                           diag::SymptomsDb::MakeDefault().size()),
                 StrFormat("%zu causes (%d high-confidence)",
                           report->causes.size(), high)});
  funnel.AddRow({"Impact", "IA",
                 StrFormat("%d high/medium causes", high),
                 report->causes.empty()
                     ? "-"
                     : StrFormat("top impact %.1f%%",
                                 report->causes.front().impact_pct.value_or(0))});
  std::printf("%s\nFinal: %s\n\n", funnel.Render().c_str(),
              report->summary.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
