// Experiment F6 — Figure 6 of the paper: the APG visualization screen.
//
// "Figure 6 shows the path from Figure 1, that starts from the Return
// operator, goes through the Index Scan on Part table and then all the way
// to the disks. The right side ... contains a table of time series
// performance metrics for any component selected from the APG ... Figure 6
// shows the metrics that capture volume V1's performance from 12:05pm till
// 1.30pm." This bench reproduces both panels on scenario-1 data and times
// the rendering.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apg/browser.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

workload::ScenarioOutput& Shared() {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {}).value();
  return scenario;
}

void BM_RenderTreePath(benchmark::State& state) {
  workload::ScenarioOutput& scenario = Shared();
  apg::ApgBrowser browser(scenario.apg.get(), &scenario.testbed->store,
                          &scenario.testbed->runs);
  const int part_scan = scenario.apg->plan().IndexOfOpNumber(7).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(browser.RenderTreePath(part_scan));
  }
}
BENCHMARK(BM_RenderTreePath)->Unit(benchmark::kMicrosecond);

void BM_RenderMetricTable(benchmark::State& state) {
  workload::ScenarioOutput& scenario = Shared();
  apg::ApgBrowser browser(scenario.apg.get(), &scenario.testbed->store,
                          &scenario.testbed->runs);
  const SimTimeMs onset = scenario.unsatisfactory_window.begin;
  const TimeInterval window{onset - Minutes(40), onset + Minutes(45)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        browser.RenderMetricTable(scenario.testbed->v1, window, "Q2"));
  }
}
BENCHMARK(BM_RenderMetricTable)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  workload::ScenarioOutput& scenario = Shared();
  apg::ApgBrowser browser(scenario.apg.get(), &scenario.testbed->store,
                          &scenario.testbed->runs);

  // Left panel: Return -> ... -> Index Scan on part -> ... -> disks.
  const int part_scan = scenario.apg->plan().IndexOfOpNumber(7).value();
  Result<std::string> tree = browser.RenderTreePath(part_scan);
  if (!tree.ok()) {
    std::fprintf(stderr, "tree render failed\n");
    return 1;
  }
  std::printf("%s\n", tree->c_str());

  // Right panel: V1's metrics across the fault onset. The paper's screen
  // shows a ~85-minute window (12:05pm-1:30pm); ours spans the same width
  // centred on our fault time, so the unsatisfactory check-boxes flip
  // partway down the table exactly as in the screenshot.
  const SimTimeMs onset = scenario.unsatisfactory_window.begin;
  const TimeInterval window{onset - Minutes(40), onset + Minutes(45)};
  std::printf("%s\n",
              browser.RenderMetricTable(scenario.testbed->v1, window, "Q2")
                  .c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
