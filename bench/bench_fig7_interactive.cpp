// Experiment F7 — Figure 7 of the paper: the interactive workflow
// execution screen.
//
// "This screen guides the administrator step by step through the tool
// workflow ... Only the first execution of the modules should be in order,
// after that each module can be re-executed as many times as needed and in
// any order." The bench walks the module buttons in order on scenario 1,
// printing each result panel (including the disabled-button state), then
// demonstrates a re-execution after an administrator edit, and times the
// interactive stepping.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "diads/workflow.h"
#include "common/strings.h"
#include "workload/scenario.h"

using namespace diads;
using diag::InteractiveSession;

namespace {

workload::ScenarioOutput& Shared() {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {}).value();
  return scenario;
}

void BM_InteractiveFullWalk(benchmark::State& state) {
  workload::ScenarioOutput& scenario = Shared();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  for (auto _ : state) {
    InteractiveSession session(scenario.MakeContext(), diag::WorkflowConfig{},
                               &symptoms);
    while (auto module = session.NextModule()) {
      benchmark::DoNotOptimize(session.Run(*module));
    }
  }
}
BENCHMARK(BM_InteractiveFullWalk)->Unit(benchmark::kMillisecond);

std::string ButtonBar(const InteractiveSession& session) {
  using Module = InteractiveSession::Module;
  std::string bar = "buttons: ";
  for (Module module : {Module::kPd, Module::kCo, Module::kDa, Module::kCr,
                        Module::kSd, Module::kIa}) {
    bar += StrFormat("[%s%s] ", InteractiveSession::ModuleName(module),
                     session.CanRun(module) ? "" : " (disabled)");
  }
  return bar;
}

}  // namespace

int main(int argc, char** argv) {
  workload::ScenarioOutput& scenario = Shared();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  InteractiveSession session(scenario.MakeContext(), diag::WorkflowConfig{},
                             &symptoms);

  std::printf("=== Figure 7: interactive workflow execution ===\n");
  std::printf("%s\n\n", ButtonBar(session).c_str());
  while (auto module = session.NextModule()) {
    std::printf(">> administrator clicks %s\n",
                InteractiveSession::ModuleName(*module));
    Result<std::string> panel = session.Run(*module);
    if (!panel.ok()) {
      std::fprintf(stderr, "module failed: %s\n",
                   panel.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n%s\n\n", panel->c_str(), ButtonBar(session).c_str());
  }

  // Interactive editing: the administrator distrusts the O7 false positive
  // (a V2 leaf swept into the COS by pipeline propagation), removes it, and
  // re-executes DA — the paper's "administrator can edit these results
  // before they are fed to the next module".
  std::printf(">> administrator removes O7 from the COS and re-runs DA\n");
  if (session.RemoveFromCos(7).ok()) {
    Result<std::string> panel = session.Run(InteractiveSession::Module::kDa);
    if (panel.ok()) std::printf("%s\n", panel->c_str());
  } else {
    std::printf("(O7 was not in the COS this run)\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
