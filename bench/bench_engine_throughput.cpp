// Serving-layer experiment: diagnoses/sec of the DiagnosisEngine as a
// function of worker count (1/2/4/8) and result caching (on/off).
//
// Workload: a fleet of tenants (Table-1 scenarios), each producing a
// stream of diagnosis requests — a mix of *fresh incidents* (distinct
// cache identities, so the module chain must run) and *repeat questions*
// (dashboard refreshes and retries of an already-diagnosed incident, the
// cache/coalescing fast path). The engine is warmed with each tenant's
// first incident before measurement, so "cache on" rows measure a warm
// cache serving the mixed stream.
//
// Workers pay off because a deployed diagnosis blocks on SAN-collector
// round-trips while pulling monitoring intervals; the in-memory testbed
// has no wire, so the engine's collector_stall_ms knob restores it
// (default 100ms per diagnosis; tune with --collector-ms=N). Repeats
// served from the warm cache skip collection entirely.
//
// Output: a human-readable table plus one JSON line per configuration
// ("[bench-json] {...}") for the bench trajectory to scrape.
//
//   $ ./bench_engine_throughput [--collector-ms=N] [--fresh=N]
//                               [--repeats=N] [--tenants=N] [--seed=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

struct BenchOptions {
  double collector_ms = 100;  ///< Simulated SAN-collector round-trip.
  int tenants = 4;
  int fresh_per_tenant = 2;    ///< Distinct incidents per tenant (misses).
  int repeats_per_tenant = 10; ///< Repeat questions per tenant (hits).
  uint64_t seed = 42;
};

struct ConfigResult {
  int workers = 0;
  bool cache = false;
  int requests = 0;
  double seconds = 0;
  double per_sec = 0;
  double hit_rate = 0;
  uint64_t coalesced = 0;
  double p95_ms = 0;
};

/// The measured request stream: per tenant, `fresh` distinct incidents
/// plus `repeats` copies of incident 0, interleaved across tenants.
std::vector<engine::DiagnosisRequest> MakeStream(
    const workload::FleetWorkload& fleet, int fresh, int repeats) {
  std::vector<engine::DiagnosisRequest> stream;
  const int per_tenant = fresh + repeats;
  for (int r = 0; r < per_tenant; ++r) {
    for (const workload::FleetTenant& tenant : fleet.tenants) {
      engine::DiagnosisRequest request;
      request.ctx = tenant.output->MakeContext();
      // Distinct tags are distinct diagnosis identities. Incident 0 is the
      // pre-warmed one (repeats hit its cache entry); fresh incidents get
      // tags 1..fresh, which the engine has never seen.
      request.tag = tenant.name + "/incident-" +
                    std::to_string(r < fresh ? r + 1 : 0);
      stream.push_back(std::move(request));
    }
  }
  return stream;
}

ConfigResult RunConfig(const workload::FleetWorkload& fleet,
                       const diag::SymptomsDb& symptoms,
                       const BenchOptions& bench, int workers,
                       bool cache_on) {
  engine::EngineOptions options;
  options.workers = workers;
  options.enable_cache = cache_on;
  options.collector_stall_ms = bench.collector_ms;
  engine::DiagnosisEngine engine(options, &symptoms);

  // Warm: diagnose each tenant's incident 0 once (not measured).
  std::vector<engine::DiagnosisRequest> warm =
      MakeStream(fleet, /*fresh=*/0, /*repeats=*/1);
  for (engine::DiagnosisResponse& response :
       engine.BatchDiagnose(std::move(warm))) {
    if (!response.ok()) {
      std::fprintf(stderr, "warmup diagnosis failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }
  // Drop warmup samples so latency percentiles cover only the measured
  // stream; the cache's own counters survive, so `before` still nets
  // them out.
  engine.ResetStats();
  const engine::EngineStatsSnapshot before = engine.Stats();

  std::vector<engine::DiagnosisRequest> stream = MakeStream(
      fleet, bench.fresh_per_tenant, bench.repeats_per_tenant);
  // Fresh incidents reuse identity 0's window but not its tag, except
  // incident-0 repeats, which are exact repeats of the warmed question.
  const auto start = std::chrono::steady_clock::now();
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(stream));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const engine::DiagnosisResponse& response : responses) {
    if (!response.ok()) {
      std::fprintf(stderr, "diagnosis failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }

  const engine::EngineStatsSnapshot after = engine.Stats();
  ConfigResult result;
  result.workers = workers;
  result.cache = cache_on;
  result.requests = static_cast<int>(responses.size());
  result.seconds = seconds;
  result.per_sec = seconds > 0 ? result.requests / seconds : 0;
  const uint64_t hits = after.cache_hits - before.cache_hits;
  const uint64_t misses = after.cache_misses - before.cache_misses;
  result.hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  result.coalesced = after.coalesced - before.coalesced;
  result.p95_ms = after.request_latency.p95_ms;
  return result;
}

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.collector_ms = static_cast<double>(
      FlagValue(argc, argv, "collector-ms",
                static_cast<int64_t>(bench.collector_ms)));
  bench.tenants =
      static_cast<int>(FlagValue(argc, argv, "tenants", bench.tenants));
  bench.fresh_per_tenant = static_cast<int>(
      FlagValue(argc, argv, "fresh", bench.fresh_per_tenant));
  bench.repeats_per_tenant = static_cast<int>(
      FlagValue(argc, argv, "repeats", bench.repeats_per_tenant));
  bench.seed = static_cast<uint64_t>(FlagValue(
      argc, argv, "seed", static_cast<int64_t>(bench.seed)));

  workload::FleetOptions fleet_options;
  fleet_options.tenants = bench.tenants;
  fleet_options.requests_per_tenant = 1;  // Streams are built separately.
  fleet_options.seed = bench.seed;
  fleet_options.scenario_options.satisfactory_runs = 12;
  fleet_options.scenario_options.unsatisfactory_runs = 6;
  std::printf("Building a %d-tenant fleet (Table-1 scenarios)...\n",
              bench.tenants);
  Result<workload::FleetWorkload> fleet = workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  const int stream_size =
      bench.tenants * (bench.fresh_per_tenant + bench.repeats_per_tenant);
  std::printf(
      "Stream: %d requests (%d fresh incidents + %d repeats per tenant), "
      "simulated collector round-trip %.0fms.\n\n",
      stream_size, bench.fresh_per_tenant, bench.repeats_per_tenant,
      bench.collector_ms);

  TablePrinter table({"Workers", "Cache", "Requests", "Wall (s)",
                      "Diagnoses/s", "Hit rate", "Coalesced", "p95 (ms)"});
  std::vector<ConfigResult> results;
  for (bool cache_on : {true, false}) {
    for (int workers : {1, 2, 4, 8}) {
      ConfigResult r = RunConfig(*fleet, symptoms, bench, workers, cache_on);
      results.push_back(r);
      table.AddRow({StrFormat("%d", r.workers), r.cache ? "on" : "off",
                    StrFormat("%d", r.requests),
                    StrFormat("%.2f", r.seconds),
                    StrFormat("%.1f", r.per_sec),
                    StrFormat("%.0f%%", r.hit_rate * 100),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(r.coalesced)),
                    StrFormat("%.1f", r.p95_ms)});
      std::printf(
          "[bench-json] {\"bench\":\"engine_throughput\",\"workers\":%d,"
          "\"cache\":%s,\"requests\":%d,\"wall_sec\":%.3f,"
          "\"diagnoses_per_sec\":%.2f,\"cache_hit_rate\":%.3f,"
          "\"coalesced\":%llu,\"p95_ms\":%.2f,\"collector_ms\":%.0f}\n",
          r.workers, r.cache ? "true" : "false", r.requests, r.seconds,
          r.per_sec, r.hit_rate, static_cast<unsigned long long>(r.coalesced),
          r.p95_ms, bench.collector_ms);
    }
  }
  std::printf("\n%s", table.Render().c_str());

  // Headline ratios for the acceptance trajectory.
  auto find = [&results](int workers, bool cache) -> const ConfigResult* {
    for (const ConfigResult& r : results) {
      if (r.workers == workers && r.cache == cache) return &r;
    }
    return nullptr;
  };
  const ConfigResult* w1 = find(1, true);
  const ConfigResult* w4 = find(4, true);
  const ConfigResult* w4_off = find(4, false);
  if (w1 != nullptr && w4 != nullptr && w4_off != nullptr &&
      w1->per_sec > 0 && w4_off->per_sec > 0) {
    std::printf(
        "\nScaling (warm cache): 1 -> 4 workers = %.2fx diagnoses/sec; "
        "cache on vs off at 4 workers = %.2fx.\n",
        w4->per_sec / w1->per_sec, w4->per_sec / w4_off->per_sec);
  }
  return 0;
}
