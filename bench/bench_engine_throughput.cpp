// Serving-layer experiment: diagnoses/sec of the DiagnosisEngine as a
// function of worker count (1/2/4/8) and result caching (on/off).
//
// Workload: a fleet of tenants (Table-1 scenarios), each producing a
// stream of diagnosis requests — a mix of *fresh incidents* (distinct
// cache identities, so the module chain must run) and *repeat questions*
// (dashboard refreshes and retries of an already-diagnosed incident, the
// cache/coalescing fast path). The engine is warmed with each tenant's
// first incident before measurement, so "cache on" rows measure a warm
// cache serving the mixed stream.
//
// Workers pay off because a deployed diagnosis blocks on SAN-collector
// round-trips while pulling monitoring intervals; the in-memory testbed
// has no wire, so the engine's collector_stall_ms knob restores it
// (default 100ms per diagnosis; tune with --collector-ms=N). Repeats
// served from the warm cache skip collection entirely.
//
// Output: a human-readable table plus one JSON line per configuration
// ("[bench-json] {...}") for the bench trajectory to scrape.
//
// A second experiment compares collection modes on a skewed backend
// (every SAN component answers in --async-base-ms, except each tenant's
// V1 at 10x): "blocking" serializes the per-component round-trips of a
// diagnosis (max_in_flight=1 — the old collector_stall_ms reality),
// "async" overlaps them through the scatter/gather layer. Both modes run
// the same fresh-only stream with the cache off and verify every report
// digest against the serial ground truth; the headline is the p99
// diagnosis latency ratio.
//
// A third experiment isolates the baseline-model cache: a fleet with a
// deep run history (every diagnosis refits dozens of per-series KDEs) is
// served a fresh-incident-only stream (result cache off, so every request
// recomputes the module chain). "off" disables the model cache, "cold"
// is the first pass of a cache-enabled engine (all misses + Put), "warm"
// is the second pass over the same engine (all hits). Every report is
// digest-verified against the serial ground truth.
//
// A fourth experiment measures the span tracer's overhead: the same
// fresh-only compute-bound stream (no collector stall, result cache off)
// with the tracer attached vs detached, alternated passes, min-of-N wall
// time per mode. The summary row's overhead_pct is CI-gated (< 5%):
// tracing must stay cheap enough to leave on in production.
//
//   $ ./bench_engine_throughput [--collector-ms=N] [--fresh=N]
//                               [--repeats=N] [--tenants=N] [--seed=N]
//                               [--async-base-ms=N] [--async-slow-factor=N]
//                               [--async-timeout-ms=N] [--async-fresh=N]
//                               [--mc-good-runs=N] [--mc-bad-runs=N]
//                               [--mc-fresh=N] [--trace-fresh=N]
//                               [--trace-passes=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "monitor/async_collector.h"
#include "obs/trace.h"
#include "support/bench_json.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

struct BenchOptions {
  double collector_ms = 100;  ///< Simulated SAN-collector round-trip.
  int tenants = 4;
  int fresh_per_tenant = 2;    ///< Distinct incidents per tenant (misses).
  int repeats_per_tenant = 10; ///< Repeat questions per tenant (hits).
  uint64_t seed = 42;
  // Async-collection experiment.
  double async_base_ms = 5;      ///< Per-component round-trip.
  double async_slow_factor = 10; ///< V1's multiplier (the wedged agent).
  double async_timeout_ms = 15;  ///< Per-component fetch timeout.
  int async_fresh = 4;           ///< Fresh incidents per tenant, per mode.
  // Model-cache experiment: a deep run history makes KDE fitting the
  // dominant per-diagnosis cost, which is the fleet-scale regime
  // (baselines of hundreds of runs, re-diagnosed per incident).
  int mc_good_runs = 96;         ///< Satisfactory runs per tenant.
  int mc_bad_runs = 24;          ///< Unsatisfactory runs per tenant.
  int mc_fresh = 6;              ///< Fresh incidents per tenant, per pass.
  // Tracing-overhead experiment.
  int trace_fresh = 6;           ///< Fresh incidents per tenant, per pass.
  int trace_passes = 3;          ///< Passes per mode (min wall time wins).
};

struct ConfigResult {
  int workers = 0;
  bool cache = false;
  int requests = 0;
  double seconds = 0;
  double per_sec = 0;
  double hit_rate = 0;
  uint64_t coalesced = 0;
  double p95_ms = 0;
};

/// The measured request stream: per tenant, `fresh` distinct incidents
/// plus `repeats` copies of incident 0, interleaved across tenants.
std::vector<engine::DiagnosisRequest> MakeStream(
    const workload::FleetWorkload& fleet, int fresh, int repeats) {
  std::vector<engine::DiagnosisRequest> stream;
  const int per_tenant = fresh + repeats;
  for (int r = 0; r < per_tenant; ++r) {
    for (const workload::FleetTenant& tenant : fleet.tenants) {
      engine::DiagnosisRequest request;
      request.ctx = tenant.output->MakeContext();
      // Distinct tags are distinct diagnosis identities. Incident 0 is the
      // pre-warmed one (repeats hit its cache entry); fresh incidents get
      // tags 1..fresh, which the engine has never seen.
      request.tag = tenant.name + "/incident-" +
                    std::to_string(r < fresh ? r + 1 : 0);
      stream.push_back(std::move(request));
    }
  }
  return stream;
}

ConfigResult RunConfig(const workload::FleetWorkload& fleet,
                       const diag::SymptomsDb& symptoms,
                       const BenchOptions& bench, int workers,
                       bool cache_on) {
  engine::EngineOptions options;
  options.workers = workers;
  options.enable_cache = cache_on;
  options.collector_stall_ms = bench.collector_ms;
  engine::DiagnosisEngine engine(options, &symptoms);

  // Warm: diagnose each tenant's incident 0 once (not measured).
  std::vector<engine::DiagnosisRequest> warm =
      MakeStream(fleet, /*fresh=*/0, /*repeats=*/1);
  for (engine::DiagnosisResponse& response :
       engine.BatchDiagnose(std::move(warm))) {
    if (!response.ok()) {
      std::fprintf(stderr, "warmup diagnosis failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }
  // Drop warmup samples so latency percentiles cover only the measured
  // stream; the cache's own counters survive, so `before` still nets
  // them out.
  engine.ResetStats();
  const engine::EngineStatsSnapshot before = engine.Stats();

  std::vector<engine::DiagnosisRequest> stream = MakeStream(
      fleet, bench.fresh_per_tenant, bench.repeats_per_tenant);
  // Fresh incidents reuse identity 0's window but not its tag, except
  // incident-0 repeats, which are exact repeats of the warmed question.
  const auto start = std::chrono::steady_clock::now();
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(stream));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const engine::DiagnosisResponse& response : responses) {
    if (!response.ok()) {
      std::fprintf(stderr, "diagnosis failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
  }

  const engine::EngineStatsSnapshot after = engine.Stats();
  ConfigResult result;
  result.workers = workers;
  result.cache = cache_on;
  result.requests = static_cast<int>(responses.size());
  result.seconds = seconds;
  result.per_sec = seconds > 0 ? result.requests / seconds : 0;
  const uint64_t hits = after.cache_hits - before.cache_hits;
  const uint64_t misses = after.cache_misses - before.cache_misses;
  result.hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  result.coalesced = after.coalesced - before.coalesced;
  result.p95_ms = after.request_latency.p95_ms;
  return result;
}

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct AsyncModeResult {
  const char* mode = "";
  int requests = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t fetches = 0;
  uint64_t timeouts = 0;
  uint64_t stale = 0;
};

/// One collection mode of the skewed-backend experiment. `overlapped`
/// false serializes the per-component round-trips (the blocking-stall
/// baseline); true overlaps them (max_in_flight = 8). Every response's
/// digest is checked against the tenant's serial ground truth.
AsyncModeResult RunAsyncMode(const workload::FleetWorkload& fleet,
                             const std::vector<std::string>& serial_digests,
                             const diag::SymptomsDb& symptoms,
                             const BenchOptions& bench, bool overlapped) {
  monitor::SimulatedLatencyOptions profile =
      workload::MakeSkewedLatencyProfile(fleet, bench.async_base_ms,
                                         bench.async_slow_factor);
  // Enough backend connections that the engine's full fan-out (workers x
  // in-flight window) never queues behind the backend itself — timeouts
  // then isolate the genuinely slow component.
  profile.connections = 32;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(profile);
  engine::EngineOptions options;
  options.workers = 4;
  options.enable_cache = false;       // Every diagnosis collects + computes.
  options.coalesce_identical = false;
  options.gather.max_in_flight = overlapped ? 8 : 1;
  options.gather.timeout_ms = bench.async_timeout_ms;
  options.gather.max_attempts = 1;
  engine::DiagnosisEngine engine(options, &symptoms, collector);

  std::vector<engine::DiagnosisRequest> stream =
      MakeStream(fleet, bench.async_fresh, /*repeats=*/0);
  std::vector<size_t> tenant_of_request;
  for (int r = 0; r < bench.async_fresh; ++r) {
    for (size_t t = 0; t < fleet.tenants.size(); ++t) {
      tenant_of_request.push_back(t);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(stream));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (size_t i = 0; i < responses.size(); ++i) {
    const engine::DiagnosisResponse& response = responses[i];
    if (!response.ok()) {
      std::fprintf(stderr, "async-mode diagnosis failed: %s\n",
                   response.status.ToString().c_str());
      std::exit(1);
    }
    if (diag::ReportDigest(*response.report) !=
        serial_digests[tenant_of_request[i]]) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH: request %zu differs from serial "
                   "diagnosis (mode=%s)\n",
                   i, overlapped ? "async" : "blocking");
      std::exit(1);
    }
  }
  const engine::EngineStatsSnapshot stats = engine.Stats();
  AsyncModeResult result;
  result.mode = overlapped ? "async" : "blocking";
  result.requests = static_cast<int>(responses.size());
  result.seconds = seconds;
  result.p50_ms = stats.request_latency.p50_ms;
  result.p99_ms = stats.request_latency.p99_ms;
  result.fetches = stats.collection_fetches;
  result.timeouts = stats.collection_timeouts;
  result.stale = stats.collection_stale;
  return result;
}

struct ModelCacheModeResult {
  const char* mode = "";
  int requests = 0;
  double seconds = 0;
  double per_sec = 0;
  double p95_ms = 0;
  uint64_t model_hits = 0;
  uint64_t model_misses = 0;
  double model_hit_rate = 0;
};

/// One measured pass of the model-cache experiment: a fresh-incident-only
/// stream through `engine` (result cache off), digest-verified per tenant.
/// Model-cache counters are netted against the pass start so cold and
/// warm passes over one engine report their own hits/misses.
ModelCacheModeResult RunModelCachePass(
    const workload::FleetWorkload& fleet,
    const std::vector<std::string>& serial_digests, const BenchOptions& bench,
    engine::DiagnosisEngine* engine, const char* mode) {
  const engine::EngineStatsSnapshot before = engine->Stats();
  engine->ResetStats();
  std::vector<engine::DiagnosisRequest> stream =
      MakeStream(fleet, bench.mc_fresh, /*repeats=*/0);
  std::vector<size_t> tenant_of_request;
  for (int r = 0; r < bench.mc_fresh; ++r) {
    for (size_t t = 0; t < fleet.tenants.size(); ++t) {
      tenant_of_request.push_back(t);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  std::vector<engine::DiagnosisResponse> responses =
      engine->BatchDiagnose(std::move(stream));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok()) {
      std::fprintf(stderr, "model-cache diagnosis failed: %s\n",
                   responses[i].status.ToString().c_str());
      std::exit(1);
    }
    if (diag::ReportDigest(*responses[i].report) !=
        serial_digests[tenant_of_request[i]]) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH: model-cache mode=%s request %zu "
                   "differs from serial diagnosis\n",
                   mode, i);
      std::exit(1);
    }
  }
  const engine::EngineStatsSnapshot after = engine->Stats();
  if (std::getenv("DIADS_BENCH_DEBUG") != nullptr) {
    std::printf("--- %s ---\n%s", mode, after.Render().c_str());
  }
  ModelCacheModeResult result;
  result.mode = mode;
  result.requests = static_cast<int>(responses.size());
  result.seconds = seconds;
  result.per_sec = seconds > 0 ? result.requests / seconds : 0;
  result.p95_ms = after.request_latency.p95_ms;
  result.model_hits = after.model_cache_hits - before.model_cache_hits;
  result.model_misses = after.model_cache_misses - before.model_cache_misses;
  const uint64_t total = result.model_hits + result.model_misses;
  result.model_hit_rate =
      total > 0 ? static_cast<double>(result.model_hits) / total : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.collector_ms = static_cast<double>(
      FlagValue(argc, argv, "collector-ms",
                static_cast<int64_t>(bench.collector_ms)));
  bench.tenants =
      static_cast<int>(FlagValue(argc, argv, "tenants", bench.tenants));
  bench.fresh_per_tenant = static_cast<int>(
      FlagValue(argc, argv, "fresh", bench.fresh_per_tenant));
  bench.repeats_per_tenant = static_cast<int>(
      FlagValue(argc, argv, "repeats", bench.repeats_per_tenant));
  bench.seed = static_cast<uint64_t>(FlagValue(
      argc, argv, "seed", static_cast<int64_t>(bench.seed)));
  bench.async_base_ms = static_cast<double>(
      FlagValue(argc, argv, "async-base-ms",
                static_cast<int64_t>(bench.async_base_ms)));
  bench.async_slow_factor = static_cast<double>(
      FlagValue(argc, argv, "async-slow-factor",
                static_cast<int64_t>(bench.async_slow_factor)));
  bench.async_timeout_ms = static_cast<double>(
      FlagValue(argc, argv, "async-timeout-ms",
                static_cast<int64_t>(bench.async_timeout_ms)));
  bench.async_fresh = static_cast<int>(
      FlagValue(argc, argv, "async-fresh", bench.async_fresh));
  bench.mc_good_runs = static_cast<int>(
      FlagValue(argc, argv, "mc-good-runs", bench.mc_good_runs));
  bench.mc_bad_runs = static_cast<int>(
      FlagValue(argc, argv, "mc-bad-runs", bench.mc_bad_runs));
  bench.mc_fresh = static_cast<int>(
      FlagValue(argc, argv, "mc-fresh", bench.mc_fresh));
  bench.trace_fresh = static_cast<int>(
      FlagValue(argc, argv, "trace-fresh", bench.trace_fresh));
  bench.trace_passes = static_cast<int>(
      FlagValue(argc, argv, "trace-passes", bench.trace_passes));

  workload::FleetOptions fleet_options;
  fleet_options.tenants = bench.tenants;
  fleet_options.requests_per_tenant = 1;  // Streams are built separately.
  fleet_options.seed = bench.seed;
  fleet_options.scenario_options.satisfactory_runs = 12;
  fleet_options.scenario_options.unsatisfactory_runs = 6;
  std::printf("Building a %d-tenant fleet (Table-1 scenarios)...\n",
              bench.tenants);
  Result<workload::FleetWorkload> fleet = workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  const int stream_size =
      bench.tenants * (bench.fresh_per_tenant + bench.repeats_per_tenant);
  std::printf(
      "Stream: %d requests (%d fresh incidents + %d repeats per tenant), "
      "simulated collector round-trip %.0fms.\n\n",
      stream_size, bench.fresh_per_tenant, bench.repeats_per_tenant,
      bench.collector_ms);

  TablePrinter table({"Workers", "Cache", "Requests", "Wall (s)",
                      "Diagnoses/s", "Hit rate", "Coalesced", "p95 (ms)"});
  std::vector<ConfigResult> results;
  for (bool cache_on : {true, false}) {
    for (int workers : {1, 2, 4, 8}) {
      ConfigResult r = RunConfig(*fleet, symptoms, bench, workers, cache_on);
      results.push_back(r);
      table.AddRow({StrFormat("%d", r.workers), r.cache ? "on" : "off",
                    StrFormat("%d", r.requests),
                    StrFormat("%.2f", r.seconds),
                    StrFormat("%.1f", r.per_sec),
                    StrFormat("%.0f%%", r.hit_rate * 100),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(r.coalesced)),
                    StrFormat("%.1f", r.p95_ms)});
      diads::bench::BenchJson("engine_throughput")
          .Int("workers", r.workers)
          .Bool("cache", r.cache)
          .Int("requests", r.requests)
          .Num("wall_sec", r.seconds, 3)
          .Num("diagnoses_per_sec", r.per_sec, 2)
          .Num("cache_hit_rate", r.hit_rate, 3)
          .Uint("coalesced", r.coalesced)
          .Num("p95_ms", r.p95_ms, 2)
          .Num("collector_ms", bench.collector_ms, 0)
          .Emit();
    }
  }
  std::printf("\n%s", table.Render().c_str());

  // Headline ratios for the acceptance trajectory.
  auto find = [&results](int workers, bool cache) -> const ConfigResult* {
    for (const ConfigResult& r : results) {
      if (r.workers == workers && r.cache == cache) return &r;
    }
    return nullptr;
  };
  const ConfigResult* w1 = find(1, true);
  const ConfigResult* w4 = find(4, true);
  const ConfigResult* w4_off = find(4, false);
  if (w1 != nullptr && w4 != nullptr && w4_off != nullptr &&
      w1->per_sec > 0 && w4_off->per_sec > 0) {
    std::printf(
        "\nScaling (warm cache): 1 -> 4 workers = %.2fx diagnoses/sec; "
        "cache on vs off at 4 workers = %.2fx.\n",
        w4->per_sec / w1->per_sec, w4->per_sec / w4_off->per_sec);
  }

  // --- Async-collection experiment: skewed backend, blocking vs async ----
  std::printf(
      "\nAsync collection on a skewed backend: every component answers in "
      "%.0fms, V1 in %.0fms (%.0fx); fetch timeout %.0fms.\n",
      bench.async_base_ms, bench.async_base_ms * bench.async_slow_factor,
      bench.async_slow_factor, bench.async_timeout_ms);
  std::vector<std::string> serial_digests;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    Result<diag::DiagnosisReport> serial =
        workload::SerialDiagnosis(tenant, diag::WorkflowConfig{}, &symptoms);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial ground truth failed: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    serial_digests.push_back(diag::ReportDigest(*serial));
  }
  TablePrinter async_table({"Mode", "Requests", "Wall (s)", "p50 (ms)",
                            "p99 (ms)", "Fetches", "Timeouts", "Stale"});
  std::vector<AsyncModeResult> modes;
  for (bool overlapped : {false, true}) {
    AsyncModeResult r =
        RunAsyncMode(*fleet, serial_digests, symptoms, bench, overlapped);
    modes.push_back(r);
    async_table.AddRow(
        {r.mode, StrFormat("%d", r.requests), StrFormat("%.2f", r.seconds),
         StrFormat("%.1f", r.p50_ms), StrFormat("%.1f", r.p99_ms),
         StrFormat("%llu", static_cast<unsigned long long>(r.fetches)),
         StrFormat("%llu", static_cast<unsigned long long>(r.timeouts)),
         StrFormat("%llu", static_cast<unsigned long long>(r.stale))});
    diads::bench::BenchJson("engine_async_collection")
        .Str("mode", r.mode)
        .Int("requests", r.requests)
        .Num("wall_sec", r.seconds, 3)
        .Num("p50_ms", r.p50_ms, 2)
        .Num("p99_ms", r.p99_ms, 2)
        .Uint("fetches", r.fetches)
        .Uint("timeouts", r.timeouts)
        .Uint("stale", r.stale)
        .Num("base_ms", bench.async_base_ms, 0)
        .Num("slow_factor", bench.async_slow_factor, 0)
        .Num("timeout_ms", bench.async_timeout_ms, 0)
        .Emit();
  }
  std::printf("%s", async_table.Render().c_str());
  if (modes.size() == 2 && modes[1].p99_ms > 0) {
    const double speedup = modes[0].p99_ms / modes[1].p99_ms;
    std::printf(
        "\nOverlapped collection: p99 diagnosis latency %.1fms -> %.1fms "
        "(%.2fx) vs serialized round-trips; all %d reports "
        "digest-identical to serial diagnosis.\n",
        modes[0].p99_ms, modes[1].p99_ms, speedup,
        modes[0].requests + modes[1].requests);
    diads::bench::BenchJson("engine_async_collection")
        .Str("mode", "summary")
        .Num("p99_speedup", speedup, 2)
        .Emit();
  }

  // --- Model-cache experiment: cold vs warm fitted-baseline models --------
  std::printf(
      "\nBaseline-model cache on a deep-history fleet (%d satisfactory + "
      "%d unsatisfactory runs per tenant, %d fresh incidents per tenant "
      "per pass, result cache off):\n",
      bench.mc_good_runs, bench.mc_bad_runs, bench.mc_fresh);
  workload::FleetOptions mc_fleet_options = fleet_options;
  mc_fleet_options.scenario_options.satisfactory_runs = bench.mc_good_runs;
  mc_fleet_options.scenario_options.unsatisfactory_runs = bench.mc_bad_runs;
  Result<workload::FleetWorkload> mc_fleet =
      workload::BuildFleet(mc_fleet_options);
  if (!mc_fleet.ok()) {
    std::fprintf(stderr, "model-cache fleet build failed: %s\n",
                 mc_fleet.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> mc_serial_digests;
  for (const workload::FleetTenant& tenant : mc_fleet->tenants) {
    Result<diag::DiagnosisReport> serial =
        workload::SerialDiagnosis(tenant, diag::WorkflowConfig{}, &symptoms);
    if (!serial.ok()) {
      std::fprintf(stderr, "model-cache serial ground truth failed: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    mc_serial_digests.push_back(diag::ReportDigest(*serial));
  }
  engine::EngineOptions mc_options;
  mc_options.workers = 4;
  mc_options.enable_cache = false;  // Every request recomputes the modules.
  mc_options.coalesce_identical = false;
  std::vector<ModelCacheModeResult> mc_results;
  {
    engine::EngineOptions off_options = mc_options;
    off_options.enable_model_cache = false;
    engine::DiagnosisEngine off_engine(off_options, &symptoms);
    mc_results.push_back(RunModelCachePass(*mc_fleet, mc_serial_digests,
                                           bench, &off_engine, "off"));
  }
  {
    engine::DiagnosisEngine on_engine(mc_options, &symptoms);
    mc_results.push_back(RunModelCachePass(*mc_fleet, mc_serial_digests,
                                           bench, &on_engine, "cold"));
    mc_results.push_back(RunModelCachePass(*mc_fleet, mc_serial_digests,
                                           bench, &on_engine, "warm"));
  }
  TablePrinter mc_table({"Model cache", "Requests", "Wall (s)",
                         "Diagnoses/s", "p95 (ms)", "Hits", "Misses",
                         "Hit rate"});
  for (const ModelCacheModeResult& r : mc_results) {
    mc_table.AddRow(
        {r.mode, StrFormat("%d", r.requests), StrFormat("%.2f", r.seconds),
         StrFormat("%.1f", r.per_sec), StrFormat("%.1f", r.p95_ms),
         StrFormat("%llu", static_cast<unsigned long long>(r.model_hits)),
         StrFormat("%llu", static_cast<unsigned long long>(r.model_misses)),
         StrFormat("%.0f%%", r.model_hit_rate * 100)});
    diads::bench::BenchJson("engine_model_cache")
        .Str("mode", r.mode)
        .Int("requests", r.requests)
        .Num("wall_sec", r.seconds, 3)
        .Num("diagnoses_per_sec", r.per_sec, 2)
        .Num("p95_ms", r.p95_ms, 2)
        .Uint("model_hits", r.model_hits)
        .Uint("model_misses", r.model_misses)
        .Num("model_hit_rate", r.model_hit_rate, 3)
        .Int("good_runs", bench.mc_good_runs)
        .Int("bad_runs", bench.mc_bad_runs)
        .Emit();
  }
  std::printf("%s", mc_table.Render().c_str());
  if (mc_results.size() == 3 && mc_results[0].per_sec > 0) {
    const double warm_speedup =
        mc_results[2].per_sec / mc_results[0].per_sec;
    std::printf(
        "\nWarm model cache: %.1f -> %.1f diagnoses/sec (%.2fx vs no model "
        "cache; hit rate %.0f%%); all reports digest-identical to serial "
        "diagnosis.\n",
        mc_results[0].per_sec, mc_results[2].per_sec, warm_speedup,
        mc_results[2].model_hit_rate * 100);
    diads::bench::BenchJson("engine_model_cache")
        .Str("mode", "summary")
        .Num("warm_speedup", warm_speedup, 2)
        .Num("warm_hit_rate", mc_results[2].model_hit_rate, 3)
        .Emit();
  }

  // --- Tracing-overhead experiment: tracer attached vs detached -----------
  std::printf(
      "\nSpan tracer overhead on a compute-bound stream (%d fresh "
      "incidents per tenant, no collector stall, result cache off, "
      "min of %d alternated passes per mode):\n",
      bench.trace_fresh, bench.trace_passes);
  engine::EngineOptions trace_options;
  trace_options.workers = 4;
  trace_options.enable_cache = false;
  trace_options.coalesce_identical = false;
  double best[2] = {1e300, 1e300};  // [0]=off, [1]=on.
  size_t traced_spans = 0;
  bool trace_digests_ok = true;
  for (int pass = 0; pass < 2 * bench.trace_passes; ++pass) {
    const bool traced = (pass % 2) == 1;  // Alternate off/on.
    obs::Tracer tracer;
    engine::EngineOptions options = trace_options;
    options.tracer = traced ? &tracer : nullptr;
    engine::DiagnosisEngine engine(options, &symptoms);
    std::vector<engine::DiagnosisRequest> stream =
        MakeStream(*fleet, bench.trace_fresh, /*repeats=*/0);
    const size_t requests = stream.size();
    const auto start = std::chrono::steady_clock::now();
    std::vector<engine::DiagnosisResponse> responses =
        engine.BatchDiagnose(std::move(stream));
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    for (size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].ok()) {
        std::fprintf(stderr, "tracing-pass diagnosis failed: %s\n",
                     responses[i].status.ToString().c_str());
        return 1;
      }
      if (diag::ReportDigest(*responses[i].report) !=
          serial_digests[i % fleet->tenants.size()]) {
        trace_digests_ok = false;
      }
    }
    best[traced] = std::min(best[traced], seconds);
    if (traced) traced_spans = tracer.span_count();
    std::printf("  pass %d (%s): %zu requests in %.3fs\n", pass,
                traced ? "traced" : "untraced", requests, seconds);
  }
  const double overhead_pct =
      best[0] > 0 ? (best[1] - best[0]) / best[0] * 100.0 : 0.0;
  std::printf(
      "\nTracer overhead: %.3fs untraced vs %.3fs traced (min wall) = "
      "%.2f%%; %zu spans per traced pass; digests %s.\n",
      best[0], best[1], overhead_pct, traced_spans,
      trace_digests_ok ? "identical to serial diagnosis"
                       : "MISMATCHED (tracing is not digest-neutral!)");
  diads::bench::BenchJson("engine_tracing")
      .Str("mode", "summary")
      .Num("wall_sec_untraced", best[0], 3)
      .Num("wall_sec_traced", best[1], 3)
      .Num("overhead_pct", overhead_pct, 2)
      .Uint("spans", traced_spans)
      .Bool("verified", trace_digests_ok)
      .Emit();
  return trace_digests_ok ? 0 : 1;
}
