// Experiment X2 — DIADS vs the silo tools (Section 5's comparative
// narrative).
//
// Runs every Table-1 scenario through three diagnosers — DIADS, the
// SAN-only tool, and the DB-only tool — and scores each against the
// injected ground truth:
//
//   * top-1 correct: the tool's first-ranked cause is a ground-truth cause;
//   * false positives: causes the tool endorses (high band / above its own
//     threshold) that match no ground-truth entry.
//
// Expected shape (Section 5): DIADS correct on all scenarios with few false
// positives; the SAN-only tool flags volumes whenever any volume moved
// (wrong or empty on DB-layer problems); the DB-only tool explains
// SAN problems with generic database causes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/db_only.h"
#include "baseline/san_only.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct ToolScore {
  bool top1 = false;
  int false_positives = 0;
  std::string top_desc;
};

/// Maps a SAN-only "contended volume" verdict onto the ground truth: it
/// counts as correct only if the truth is a contention cause on that
/// volume.
bool SanCauseMatches(const baseline::SanOnlyCause& cause,
                     const workload::ScenarioOutput& scenario) {
  const ComponentRegistry& registry = scenario.testbed->registry;
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    const bool contention_type =
        truth.type == diag::RootCauseType::kSanMisconfigurationContention ||
        truth.type == diag::RootCauseType::kExternalWorkloadContention;
    if (contention_type &&
        registry.NameOf(cause.volume) == truth.subject_name) {
      return true;
    }
  }
  return false;
}

bool DbCauseMatches(const baseline::DbOnlyCause& cause,
                    const workload::ScenarioOutput& scenario) {
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    if (truth.type == cause.mapped_type) return true;
  }
  return false;
}

struct ScenarioScores {
  ToolScore diads, san_only, db_only;
};

Result<ScenarioScores> ScoreScenario(workload::ScenarioId id) {
  DIADS_ASSIGN_OR_RETURN(workload::ScenarioOutput scenario,
                         workload::RunScenario(id, {}));
  const ComponentRegistry& registry = scenario.testbed->registry;
  ScenarioScores out;

  // DIADS.
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());
  if (!report.causes.empty()) {
    const diag::RootCause& top = report.causes.front();
    out.diads.top_desc = diag::RootCauseTypeName(top.type);
    for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
      if (workload::MatchesGroundTruth(truth, top, registry)) {
        out.diads.top1 = true;
      }
    }
    for (const diag::RootCause& cause : report.causes) {
      // Endorsed = high confidence AND not impact-neutralised.
      if (cause.band != diag::ConfidenceBand::kHigh) continue;
      if (cause.impact_pct.value_or(100.0) < 10.0) continue;
      bool matches = false;
      for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
        if (workload::MatchesGroundTruth(truth, cause, registry)) {
          matches = true;
        }
      }
      if (!matches) ++out.diads.false_positives;
    }
  }

  // SAN-only.
  baseline::SanOnlyDiagnoser san(&scenario.testbed->topology,
                                 &scenario.testbed->store);
  DIADS_ASSIGN_OR_RETURN(
      std::vector<baseline::SanOnlyCause> san_causes,
      san.Diagnose(scenario.satisfactory_window,
                   scenario.unsatisfactory_window));
  if (!san_causes.empty()) {
    out.san_only.top_desc =
        "contention on " + registry.NameOf(san_causes.front().volume);
    out.san_only.top1 = SanCauseMatches(san_causes.front(), scenario);
    for (const baseline::SanOnlyCause& cause : san_causes) {
      if (!SanCauseMatches(cause, scenario)) ++out.san_only.false_positives;
    }
  } else {
    out.san_only.top_desc = "(no anomalous volume)";
  }

  // DB-only.
  baseline::DbOnlyDiagnoser db(&scenario.testbed->runs,
                               &scenario.testbed->store,
                               scenario.testbed->database);
  DIADS_ASSIGN_OR_RETURN(std::vector<baseline::DbOnlyCause> db_causes,
                         db.Diagnose("Q2"));
  if (!db_causes.empty()) {
    out.db_only.top_desc = diag::RootCauseTypeName(db_causes.front().mapped_type);
    out.db_only.top1 = DbCauseMatches(db_causes.front(), scenario);
    for (const baseline::DbOnlyCause& cause : db_causes) {
      if (!DbCauseMatches(cause, scenario)) ++out.db_only.false_positives;
    }
  } else {
    out.db_only.top_desc = "(nothing anomalous)";
  }
  return out;
}

void BM_SanOnlyDiagnosis(benchmark::State& state) {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {}).value();
  baseline::SanOnlyDiagnoser san(&scenario.testbed->topology,
                                 &scenario.testbed->store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(san.Diagnose(scenario.satisfactory_window,
                                          scenario.unsatisfactory_window));
  }
}
BENCHMARK(BM_SanOnlyDiagnosis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const workload::ScenarioId scenarios[] = {
      workload::ScenarioId::kS1SanMisconfiguration,
      workload::ScenarioId::kS1bBurstyV2,
      workload::ScenarioId::kS2DualExternalContention,
      workload::ScenarioId::kS3DataPropertyChange,
      workload::ScenarioId::kS4ConcurrentDbSan,
      workload::ScenarioId::kS5LockingWithNoise,
  };
  std::printf("=== X2: DIADS vs SAN-only vs DB-only diagnosis ===\n");
  TablePrinter table({"Scenario", "DIADS top (FP)", "SAN-only top (FP)",
                      "DB-only top (FP)"});
  int diads_correct = 0, san_correct = 0, db_correct = 0;
  for (workload::ScenarioId id : scenarios) {
    Result<ScenarioScores> scores = ScoreScenario(id);
    if (!scores.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", workload::ScenarioName(id),
                   scores.status().ToString().c_str());
      continue;
    }
    auto cell = [](const ToolScore& score) {
      return StrFormat("%s %s (FP:%d)", score.top1 ? "[ok]" : "[x]",
                       score.top_desc.c_str(), score.false_positives);
    };
    table.AddRow({workload::ScenarioName(id), cell(scores->diads),
                  cell(scores->san_only), cell(scores->db_only)});
    diads_correct += scores->diads.top1;
    san_correct += scores->san_only.top1;
    db_correct += scores->db_only.top1;
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Top-1 accuracy: DIADS %d/6, SAN-only %d/6, DB-only %d/6\n\n",
              diads_correct, san_correct, db_correct);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
