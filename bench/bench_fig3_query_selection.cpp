// Experiment F3 — Figure 3 of the paper: the DIADS query selection screen.
//
// "For each query execution, a corresponding row ... Query, Plan, Start
// time, End time, Duration, Unsatisfactory check-box", plus the declarative
// labelling rule ("every query execution that has a running time greater
// than 30 minutes is unsatisfactory"). Prints the screen for scenario 1's
// run history — labelled both by time window (as the scenarios do) and by
// the declarative duration rule, to show both labelling paths — and times
// screen generation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apg/browser.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

workload::ScenarioOutput& Shared() {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {}).value();
  return scenario;
}

void BM_RenderQuerySelection(benchmark::State& state) {
  workload::ScenarioOutput& scenario = Shared();
  apg::ApgBrowser browser(scenario.apg.get(), &scenario.testbed->store,
                          &scenario.testbed->runs);
  for (auto _ : state) {
    std::string out = browser.RenderQuerySelectionScreen("Q2");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RenderQuerySelection)->Unit(benchmark::kMicrosecond);

void BM_DeclarativeLabelling(benchmark::State& state) {
  workload::ScenarioOutput& scenario = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.testbed->runs.LabelByDurationThreshold(
        "Q2", Seconds(40)));
  }
}
BENCHMARK(BM_DeclarativeLabelling)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  workload::ScenarioOutput& scenario = Shared();
  apg::ApgBrowser browser(scenario.apg.get(), &scenario.testbed->store,
                          &scenario.testbed->runs);
  std::printf("%s\n", browser.RenderQuerySelectionScreen("Q2").c_str());

  // The declarative rule path: re-label by duration threshold and compare
  // with the window labels.
  db::RunCatalog& runs = scenario.testbed->runs;
  std::vector<db::RunLabel> window_labels;
  for (const db::QueryRunRecord& run : runs.runs()) {
    window_labels.push_back(runs.LabelOf(run.run_id));
  }
  // Pick the threshold between the observed clusters (the admin eyeballs
  // the duration column for this).
  double sat_max = 0, unsat_min = 1e18;
  for (const db::QueryRunRecord& run : runs.runs()) {
    const double d = static_cast<double>(run.duration_ms());
    if (runs.LabelOf(run.run_id) == db::RunLabel::kSatisfactory) {
      sat_max = std::max(sat_max, d);
    } else {
      unsat_min = std::min(unsat_min, d);
    }
  }
  const SimTimeMs threshold =
      static_cast<SimTimeMs>((sat_max + unsat_min) / 2);
  (void)runs.LabelByDurationThreshold("Q2", threshold);
  int agree = 0;
  for (size_t i = 0; i < runs.runs().size(); ++i) {
    if (runs.LabelOf(static_cast<int>(i)) == window_labels[i]) ++agree;
  }
  std::printf(
      "Declarative rule \"duration > %s is unsatisfactory\" agrees with the "
      "window labels on %d/%zu runs.\n\n",
      FormatDuration(threshold).c_str(), agree, runs.runs().size());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
