// Always-on detection experiment: detection latency per fault scenario,
// false-positive rate on a quiet fleet, and the sketch's overhead on the
// monitoring collection path.
//
// Three sections, each a CI gate:
//
//   * Latency: every Table-1 / plan-change scenario is replayed through a
//     SlowdownDetector wired to a live DiagnosisEngine. Every fault onset
//     must raise an incident *after* the satisfactory era and auto-submit
//     a diagnosis that resolves ok. The headline per scenario is the
//     detection latency in simulated minutes (fault onset -> confirming
//     sample): SAN-side faults elevate every monitoring interval and
//     confirm in ~45 simulated minutes; plan-change faults only elevate
//     the ~1-in-6 intervals that overlap a report run, so the
//     5-of-32-window confirmation needs ~4 run periods (~2¼ sim hours).
//   * Quiet fleet: every tenant of a BuildFleet fleet replayed up to its
//     satisfactory end — the era the golden table certifies healthy. Any
//     incident is a false positive; the gate is exactly zero.
//   * Overhead: Testbed::CollectMonitors (the SAN + DB collection
//     pipeline, i.e. the path that appends every production sample)
//     timed with and without a detector watching the store, alternating
//     reps to cancel store-growth bias. The per-append sketch cost must
//     stay under --max-overhead-pct (default 5) of the pipeline.
//
// A violated gate hard-fails the binary (exit 1) — same contract as the
// digest checks in the other benches. Machine-readable "[bench-json]"
// rows carry the per-scenario and summary numbers for CI.
//
//   $ ./bench_detection [--seed=N] [--tenants=N] [--overhead-reps=N]
//                       [--max-overhead-pct=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/strings.h"
#include "detect/detector.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "monitor/timeseries.h"
#include "support/bench_json.h"
#include "workload/detect_replay.h"
#include "workload/fleet.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct BenchOptions {
  uint64_t seed = 42;
  int tenants = 5;         ///< Quiet-fleet size.
  int overhead_reps = 5;   ///< Collection reps per arm (min taken).
  double max_overhead_pct = 5.0;
};

int64_t FlagValue(int argc, char** argv, const char* name,
                  int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double Ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

const std::vector<workload::ScenarioId>& AllScenarios() {
  static const std::vector<workload::ScenarioId> ids = {
      workload::ScenarioId::kS1SanMisconfiguration,
      workload::ScenarioId::kS1bBurstyV2,
      workload::ScenarioId::kS2DualExternalContention,
      workload::ScenarioId::kS3DataPropertyChange,
      workload::ScenarioId::kS4ConcurrentDbSan,
      workload::ScenarioId::kS5LockingWithNoise,
      workload::ScenarioId::kS6IndexDrop,
      workload::ScenarioId::kS7ParamChange,
      workload::ScenarioId::kS8AnalyzeAfterDrift,
      workload::ScenarioId::kS9CpuSaturation,
      workload::ScenarioId::kS10RaidRebuild,
      workload::ScenarioId::kS11DiskFailure,
  };
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions bench;
  bench.seed = static_cast<uint64_t>(
      FlagValue(argc, argv, "seed", static_cast<int64_t>(bench.seed)));
  bench.tenants =
      static_cast<int>(FlagValue(argc, argv, "tenants", bench.tenants));
  bench.overhead_reps = static_cast<int>(
      FlagValue(argc, argv, "overhead-reps", bench.overhead_reps));
  bench.max_overhead_pct = static_cast<double>(FlagValue(
      argc, argv, "max-overhead-pct",
      static_cast<int64_t>(bench.max_overhead_pct)));

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  bool all_detected = true;
  bool all_diagnosed = true;
  uint64_t onset_false_positives = 0;
  double max_latency_min = 0;

  // --- Detection latency per fault scenario ------------------------------
  std::printf("detection latency (%zu scenarios, seed %llu)\n",
              AllScenarios().size(),
              static_cast<unsigned long long>(bench.seed));
  for (workload::ScenarioId id : AllScenarios()) {
    workload::ScenarioOptions scenario_options;
    scenario_options.seed = bench.seed;
    Result<workload::ScenarioOutput> scenario =
        workload::RunScenario(id, scenario_options);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario %s failed: %s\n",
                   workload::ScenarioName(id),
                   scenario.status().ToString().c_str());
      return 1;
    }

    engine::EngineOptions engine_options;
    engine_options.workers = 2;
    engine::DiagnosisEngine engine(engine_options, &symptoms);
    Result<workload::DetectionReplayResult> replay =
        workload::ReplayScenarioDetection(*scenario, "bench", &engine);
    if (!replay.ok()) {
      std::fprintf(stderr, "replay %s failed: %s\n",
                   workload::ScenarioName(id),
                   replay.status().ToString().c_str());
      return 1;
    }

    const bool detected = !replay->incidents.empty();
    const bool diagnosed = !replay->responses.empty() &&
                           replay->responses.front().ok();
    bool onset_fp = false;
    for (const detect::Incident& incident : replay->incidents) {
      if (incident.confirmed_time <= scenario->satisfactory_window.end) {
        onset_fp = true;
      }
    }
    const double latency_min =
        detected ? static_cast<double>(replay->detection_latency) / 60000.0
                 : -1;
    all_detected = all_detected && detected && !onset_fp;
    all_diagnosed = all_diagnosed && diagnosed;
    if (onset_fp) ++onset_false_positives;
    max_latency_min = std::max(max_latency_min, latency_min);

    std::printf("  %-28s incidents=%zu diagnosed=%d latency=%6.1f min "
                "(%llu crossings, %llu series)\n",
                workload::ScenarioName(id), replay->incidents.size(),
                diagnosed ? 1 : 0, latency_min,
                static_cast<unsigned long long>(replay->stats.band_crossings),
                static_cast<unsigned long long>(replay->stats.series_tracked));
    bench::BenchJson("detection")
        .Str("mode", "scenario")
        .Str("scenario", workload::ScenarioName(id))
        .Int("incidents", static_cast<int64_t>(replay->incidents.size()))
        .Bool("diagnosed", diagnosed)
        .Num("latency_min", latency_min, 1)
        .Uint("crossings", replay->stats.band_crossings)
        .Uint("suppressed_active", replay->stats.suppressed_active)
        .Emit();
  }

  // --- Quiet fleet false positives ---------------------------------------
  std::printf("quiet fleet (%d tenants, satisfactory era only)\n",
              bench.tenants);
  workload::FleetOptions fleet_options;
  fleet_options.tenants = bench.tenants;
  fleet_options.seed = bench.seed;
  Result<workload::FleetWorkload> fleet =
      workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "BuildFleet failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  uint64_t quiet_incidents = 0;
  uint64_t quiet_samples = 0;
  uint64_t quiet_series = 0;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    workload::DetectionReplayOptions replay_options;
    replay_options.cutoff = tenant.output->satisfactory_window.end;
    Result<workload::DetectionReplayResult> replay =
        workload::ReplayScenarioDetection(*tenant.output, tenant.name,
                                          /*engine=*/nullptr,
                                          replay_options);
    if (!replay.ok()) {
      std::fprintf(stderr, "quiet replay %s failed: %s\n",
                   tenant.name.c_str(), replay.status().ToString().c_str());
      return 1;
    }
    quiet_incidents += replay->incidents.size();
    quiet_samples += replay->samples_replayed;
    quiet_series += replay->stats.series_tracked;
  }
  std::printf("  %llu false positives over %llu samples / %llu series\n",
              static_cast<unsigned long long>(quiet_incidents),
              static_cast<unsigned long long>(quiet_samples),
              static_cast<unsigned long long>(quiet_series));

  // --- Sketch overhead on the collection path ----------------------------
  // Two identical testbeds (same scenario, same seed — the simulation is
  // deterministic, so both produce byte-identical append streams): one is
  // never watched, one has the detector attached for the whole section.
  // Each rep collects the same fresh 24-sim-hour window past the
  // scenario's end on both (appends must be time-ordered per series, so
  // re-collecting an already-collected range is not allowed) and times
  // the arms back to back. Keeping the detector attached means sketch
  // state persists across reps — the first watched rep pays the one-off
  // KDE calibration fits, every later rep is pure steady state, and the
  // min-over-reps naturally reports the steady-state cost.
  workload::ScenarioOptions overhead_scenario_options;
  overhead_scenario_options.seed = bench.seed;
  Result<workload::ScenarioOutput> bare_scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration,
      overhead_scenario_options);
  Result<workload::ScenarioOutput> watched_scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration,
      overhead_scenario_options);
  if (!bare_scenario.ok() || !watched_scenario.ok()) {
    std::fprintf(stderr, "overhead scenario failed: %s\n",
                 (bare_scenario.ok() ? watched_scenario.status()
                                     : bare_scenario.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  workload::Testbed* bare_testbed = bare_scenario->testbed.get();
  workload::Testbed* watched_testbed = watched_scenario->testbed.get();
  const SimTimeMs rep_span = Hours(24);
  SimTimeMs rep_cursor =
      bare_scenario->unsatisfactory_window.end + Hours(1);
  detect::SlowdownDetector detector{detect::DetectorOptions{}};
  {
    Status status =
        detector.Watch("overhead", &watched_testbed->store, nullptr);
    if (!status.ok()) {
      std::fprintf(stderr, "Watch failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  double bare_ms = -1;
  double watched_ms = -1;
  uint64_t appends_per_rep = 0;
  for (int rep = 0; rep < bench.overhead_reps; ++rep) {
    const SimTimeMs from = rep_cursor;
    const SimTimeMs to = rep_cursor + rep_span;
    rep_cursor = to;
    for (int arm = 0; arm < 2; ++arm) {
      const bool watched = arm == 1;
      workload::Testbed* testbed = watched ? watched_testbed : bare_testbed;
      const uint64_t generation_before = testbed->store.StoreGeneration();
      const auto start = std::chrono::steady_clock::now();
      Status status = testbed->CollectMonitors(from, to);
      const double elapsed = Ms(start);
      if (!status.ok()) {
        std::fprintf(stderr, "CollectMonitors failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      appends_per_rep = testbed->store.StoreGeneration() - generation_before;
      if (watched) {
        if (watched_ms < 0 || elapsed < watched_ms) watched_ms = elapsed;
      } else {
        if (bare_ms < 0 || elapsed < bare_ms) bare_ms = elapsed;
      }
    }
  }
  detector.Unwatch(&watched_testbed->store);
  const double overhead_pct =
      bare_ms > 0 ? 100.0 * (watched_ms - bare_ms) / bare_ms : 0;
  const double bare_ns_per_append =
      appends_per_rep > 0 ? bare_ms * 1e6 / appends_per_rep : 0;
  const double watched_ns_per_append =
      appends_per_rep > 0 ? watched_ms * 1e6 / appends_per_rep : 0;
  std::printf(
      "collection overhead: bare %.1f ms, watched %.1f ms (%.2f%%; "
      "%.0f -> %.0f ns/append over %llu appends)\n",
      bare_ms, watched_ms, overhead_pct, bare_ns_per_append,
      watched_ns_per_append,
      static_cast<unsigned long long>(appends_per_rep));

  // --- Gates + summary ----------------------------------------------------
  const bool overhead_ok = overhead_pct < bench.max_overhead_pct;
  const bool pass = all_detected && all_diagnosed &&
                    quiet_incidents == 0 && overhead_ok;
  bench::BenchJson("detection")
      .Str("mode", "summary")
      .Bool("all_detected", all_detected)
      .Bool("all_diagnosed", all_diagnosed)
      .Uint("false_positives", quiet_incidents)
      .Uint("onset_false_positives", onset_false_positives)
      .Num("max_latency_min", max_latency_min, 1)
      .Num("append_overhead_pct", overhead_pct, 2)
      .Num("watched_ns_per_append", watched_ns_per_append, 0)
      .Bool("pass", pass)
      .Emit();

  if (!pass) {
    std::fprintf(stderr,
                 "GATE FAILED: detected=%d diagnosed=%d quiet_fp=%llu "
                 "overhead=%.2f%% (max %.1f%%)\n",
                 all_detected ? 1 : 0, all_diagnosed ? 1 : 0,
                 static_cast<unsigned long long>(quiet_incidents),
                 overhead_pct, bench.max_overhead_pct);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
