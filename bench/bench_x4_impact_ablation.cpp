// Experiment X4 — Module IA's two implementations (Section 4.1):
//
//   "One implementation is an 'inverse dependency analysis' ... Another
//   implementation of IA leverages the plan cost models used by database
//   query optimizers."
//
// Compares the two on scenario 4 (two genuine concurrent causes) and
// scenario 5 (one genuine cause + one spurious): the dynamic inverse-
// dependency method separates real from spurious using measured extra
// time; the static cost-model method apportions by optimizer estimates and
// cannot see that the spurious cause contributed nothing — exactly the
// trade-off that makes the paper prefer the dynamic variant as default.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

Result<std::vector<diag::RootCause>> CausesWith(
    const workload::ScenarioOutput& scenario, diag::ImpactMethod method) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report,
                         workflow.Diagnose(method));
  return report.causes;
}

void BM_ImpactInverseDependency(benchmark::State& state) {
  static workload::ScenarioOutput scenario = workload::RunScenario(
      workload::ScenarioId::kS4ConcurrentDbSan, {}).value();
  diag::DiagnosisContext ctx = scenario.MakeContext();
  diag::WorkflowConfig config;
  diag::CoResult co = diag::RunCorrelatedOperators(ctx, config).value();
  diag::DaResult da = diag::RunDependencyAnalysis(ctx, config, co).value();
  diag::CrResult cr = diag::RunCorrelatedRecords(ctx, config, co).value();
  diag::PdResult pd = diag::RunPlanDiff(ctx).value();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  std::vector<diag::RootCause> causes =
      diag::RunSymptomsDatabase(ctx, config, pd, co, da, cr, symptoms).value();
  for (auto _ : state) {
    std::vector<diag::RootCause> copy = causes;
    benchmark::DoNotOptimize(diag::RunImpactAnalysis(
        ctx, config, co, cr, &copy, diag::ImpactMethod::kInverseDependency));
  }
}
BENCHMARK(BM_ImpactInverseDependency)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== X4: impact analysis — inverse dependency vs cost model "
              "===\n");
  TablePrinter table({"Scenario", "Cause", "Confidence",
                      "Impact (inverse dep.)", "Impact (cost model)"});
  for (workload::ScenarioId id : {workload::ScenarioId::kS4ConcurrentDbSan,
                                  workload::ScenarioId::kS5LockingWithNoise}) {
    Result<workload::ScenarioOutput> scenario = workload::RunScenario(id, {});
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed\n");
      return 1;
    }
    Result<std::vector<diag::RootCause>> inverse =
        CausesWith(*scenario, diag::ImpactMethod::kInverseDependency);
    Result<std::vector<diag::RootCause>> cost_model =
        CausesWith(*scenario, diag::ImpactMethod::kCostModel);
    if (!inverse.ok() || !cost_model.ok()) {
      std::fprintf(stderr, "diagnosis failed\n");
      return 1;
    }
    const ComponentRegistry& registry = scenario->testbed->registry;
    // Join the two cause lists on (type, subject).
    for (const diag::RootCause& cause : *inverse) {
      if (!cause.impact_pct.has_value()) continue;
      const diag::RootCause* twin = nullptr;
      for (const diag::RootCause& other : *cost_model) {
        if (other.type == cause.type && other.subject == cause.subject) {
          twin = &other;
        }
      }
      table.AddRow(
          {workload::ScenarioName(id),
           StrFormat("%s%s%s", diag::RootCauseTypeName(cause.type),
                     registry.Contains(cause.subject) ? " on " : "",
                     registry.Contains(cause.subject)
                         ? registry.NameOf(cause.subject).c_str()
                         : ""),
           StrFormat("%.0f%%", cause.confidence),
           StrFormat("%.1f%%", *cause.impact_pct),
           twin != nullptr && twin->impact_pct.has_value()
               ? StrFormat("%.1f%%", *twin->impact_pct)
               : "-"});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "Shape: the inverse-dependency method nulls spurious causes (measured "
      "extra time ~ 0) that the static cost-model method cannot "
      "distinguish.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
