// Experiment T1 — Table 1 of the paper.
//
// "Experimental settings of increasing complexity used to evaluate DIADS.
// DIADS successfully diagnosed the root cause in all these cases."
//
//   1. SAN misconfiguration leading to contention in volume V1
//        -> symptoms pinpoint the volume; SD maps them to the right cause.
//   2. Contention on V1 and V2 from external workloads; only V1 matters
//        -> DA prunes the unrelated V2 symptoms.
//   3. DML changes data properties; propagates to SAN volume contention
//        -> CR finds the record-count symptoms; IA rules out contention.
//   4. Concurrent DB (data properties) and SAN (misconfig) problems
//        -> both identified; IA ranks them.
//   5. Locking problem + spurious volume-contention symptoms from noise
//        -> IA shows the spurious contention has low impact.
//
// For each scenario this bench prints: the injected ground truth, DIADS's
// top causes with confidence/impact, which modules were decisive, and a
// correct/incorrect verdict (top-ranked high-confidence causes must match
// the ground truth set).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct ScenarioVerdict {
  std::string name;
  std::string truth;
  std::string top_causes;
  bool correct = false;
  double slowdown = 0;
};

Result<ScenarioVerdict> Evaluate(
    workload::ScenarioId id, uint64_t seed,
    db::BackendKind backend = db::BackendKind::kPostgres) {
  workload::ScenarioOptions options;
  options.seed = seed;
  options.testbed.backend = backend;
  DIADS_ASSIGN_OR_RETURN(workload::ScenarioOutput scenario,
                         workload::RunScenario(id, options));
  diag::DiagnosisContext ctx = scenario.MakeContext();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());

  const ComponentRegistry& registry = scenario.testbed->registry;
  ScenarioVerdict verdict;
  verdict.name = workload::ScenarioName(id);

  std::vector<std::string> truth_names;
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    truth_names.push_back(StrFormat(
        "%s%s%s", diag::RootCauseTypeName(truth.type),
        truth.subject_name.empty() ? "" : " on ",
        truth.subject_name.c_str()));
  }
  verdict.truth = Join(truth_names, " + ");

  // The verdict: every primary ground-truth cause must appear among the
  // high-band causes, and the single top-ranked cause must be one of them.
  size_t matched = 0;
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    if (!truth.primary) continue;
    for (const diag::RootCause& cause : report.causes) {
      if (cause.band == diag::ConfidenceBand::kHigh &&
          workload::MatchesGroundTruth(truth, cause, registry)) {
        ++matched;
        break;
      }
    }
  }
  size_t primary_count = 0;
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    if (truth.primary) ++primary_count;
  }
  bool top_matches = false;
  if (const diag::RootCause* top = report.TopCause()) {
    for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
      if (workload::MatchesGroundTruth(truth, *top, registry)) {
        top_matches = true;
      }
    }
  }
  verdict.correct = matched == primary_count && top_matches;

  std::vector<std::string> tops;
  for (const diag::RootCause& cause : report.causes) {
    if (tops.size() >= 3) break;
    tops.push_back(StrFormat(
        "%s%s%s (%.0f%%/%s%s)", diag::RootCauseTypeName(cause.type),
        registry.Contains(cause.subject) ? " on " : "",
        registry.Contains(cause.subject)
            ? registry.NameOf(cause.subject).c_str()
            : "",
        cause.confidence, diag::ConfidenceBandName(cause.band),
        cause.impact_pct.has_value()
            ? StrFormat(", impact %.0f%%", *cause.impact_pct).c_str()
            : ""));
  }
  verdict.top_causes = Join(tops, "; ");

  double sat = 0, unsat = 0;
  int ns = 0, nu = 0;
  for (const db::QueryRunRecord& run : scenario.testbed->runs.runs()) {
    const db::RunLabel label = scenario.testbed->runs.LabelOf(run.run_id);
    if (label == db::RunLabel::kSatisfactory) {
      sat += static_cast<double>(run.duration_ms());
      ++ns;
    } else if (label == db::RunLabel::kUnsatisfactory) {
      unsat += static_cast<double>(run.duration_ms());
      ++nu;
    }
  }
  if (ns > 0 && nu > 0 && sat > 0) verdict.slowdown = (unsat / nu) / (sat / ns);
  return verdict;
}

void BM_FullDiagnosisScenario1(benchmark::State& state) {
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {});
  if (!scenario.ok()) {
    state.SkipWithError(scenario.status().ToString().c_str());
    return;
  }
  diag::DiagnosisContext ctx = scenario->MakeContext();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  for (auto _ : state) {
    Result<diag::DiagnosisReport> report = workflow.Diagnose();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FullDiagnosisScenario1)->Unit(benchmark::kMillisecond);

void BM_ScenarioSimulation(benchmark::State& state) {
  for (auto _ : state) {
    Result<workload::ScenarioOutput> scenario = workload::RunScenario(
        workload::ScenarioId::kS1SanMisconfiguration, {});
    benchmark::DoNotOptimize(scenario);
  }
}
BENCHMARK(BM_ScenarioSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const workload::ScenarioId scenarios[] = {
      workload::ScenarioId::kS1SanMisconfiguration,
      workload::ScenarioId::kS2DualExternalContention,
      workload::ScenarioId::kS3DataPropertyChange,
      workload::ScenarioId::kS4ConcurrentDbSan,
      workload::ScenarioId::kS5LockingWithNoise,
  };
  std::printf("=== Table 1: the five problem scenarios ===\n");
  TablePrinter table({"Scenario", "Injected ground truth",
                      "DIADS top causes (confidence/band, impact)",
                      "Slowdown", "Diagnosis"});
  int failures = 0;
  for (workload::ScenarioId id : scenarios) {
    Result<ScenarioVerdict> verdict = Evaluate(id, 42);
    if (!verdict.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", workload::ScenarioName(id),
                   verdict.status().ToString().c_str());
      ++failures;
      continue;
    }
    table.AddRow({verdict->name, verdict->truth, verdict->top_causes,
                  StrFormat("%.2fx", verdict->slowdown),
                  verdict->correct ? "CORRECT" : "INCORRECT"});
    if (!verdict->correct) ++failures;
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Paper: \"DIADS successfully diagnosed the root cause in all "
              "these cases.\" Ours: %s\n",
              failures == 0 ? "all five correct" :
              StrFormat("%d of 5 incorrect", failures).c_str());

  // --- Column-store scenario sweep -----------------------------------------
  // The same workflow on the columnar engine: two representative backend-
  // neutral scenarios plus the column-store-native faults (segment
  // compression drift, stale zone maps). Each row is emitted as a
  // [bench-json] line so CI archives the verdicts.
  struct ColumnarCase {
    workload::ScenarioId id;
  };
  const workload::ScenarioId columnar_scenarios[] = {
      workload::ScenarioId::kS1SanMisconfiguration,
      workload::ScenarioId::kS6IndexDrop,
      workload::ScenarioId::kC1CompressionDrift,
      workload::ScenarioId::kC2ZoneMapStale,
  };
  std::printf("\n=== Column-store backend scenario sweep ===\n");
  TablePrinter columnar_table({"Scenario", "Injected ground truth",
                               "DIADS top causes (confidence/band, impact)",
                               "Slowdown", "Diagnosis"});
  int columnar_failures = 0;
  for (workload::ScenarioId id : columnar_scenarios) {
    Result<ScenarioVerdict> verdict =
        Evaluate(id, 42, db::BackendKind::kColumnar);
    if (!verdict.ok()) {
      std::fprintf(stderr, "%s (columnar) failed: %s\n",
                   workload::ScenarioName(id),
                   verdict.status().ToString().c_str());
      ++columnar_failures;
      continue;
    }
    columnar_table.AddRow({verdict->name, verdict->truth,
                           verdict->top_causes,
                           StrFormat("%.2fx", verdict->slowdown),
                           verdict->correct ? "CORRECT" : "INCORRECT"});
    if (!verdict->correct) ++columnar_failures;
    std::printf(
        "[bench-json] {\"bench\": \"table1_scenarios\", \"mode\": "
        "\"columnar\", \"scenario\": \"%s\", \"correct\": %s, "
        "\"slowdown\": %.3f}\n",
        verdict->name.c_str(), verdict->correct ? "true" : "false",
        verdict->slowdown);
  }
  std::printf("%s", columnar_table.Render().c_str());
  std::printf(
      "[bench-json] {\"bench\": \"table1_scenarios\", \"mode\": "
      "\"summary\", \"table1_failures\": %d, \"columnar_failures\": %d, "
      "\"columnar_cases\": %d}\n",
      failures, columnar_failures,
      static_cast<int>(std::size(columnar_scenarios)));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // CI gates on the sweep: any misdiagnosis on either engine fails the
  // binary outright.
  return (failures > 0 || columnar_failures > 0) ? 1 : 0;
}
