// Experiment F1 — Figure 1 of the paper: the Annotated Plan Graph for
// TPC-H Q2 on the two-pool testbed.
//
// Prints the textual APG (plan layer + SAN layer), checks the structural
// invariants the figure shows (25 operators, 9 leaves, partsupp leaves O8/
// O22 on V1, V2 backed by disks 5-10, outer-path volumes V3/V4), renders
// the paper's O23 dependency-path example, and times APG construction and
// annotation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apg/apg.h"
#include "apg/render.h"
#include "common/strings.h"
#include "workload/testbed.h"

using namespace diads;

namespace {

std::unique_ptr<workload::Testbed>& SharedTestbed() {
  static std::unique_ptr<workload::Testbed> tb =
      workload::BuildFigure1Testbed({}).value();
  return tb;
}

void BM_ApgConstruction(benchmark::State& state) {
  workload::Testbed& tb = *SharedTestbed();
  for (auto _ : state) {
    Result<apg::Apg> apg = tb.BuildApg();
    benchmark::DoNotOptimize(apg);
  }
}
BENCHMARK(BM_ApgConstruction)->Unit(benchmark::kMicrosecond);

void BM_ApgAnnotation(benchmark::State& state) {
  workload::Testbed& tb = *SharedTestbed();
  static bool prepared = [] {
    workload::Testbed& t = *SharedTestbed();
    (void)t.RunQ2(Hours(8));
    (void)t.CollectMonitors(Hours(8) - Minutes(10), Hours(9));
    return true;
  }();
  (void)prepared;
  apg::Apg apg = tb.BuildApg().value();
  const TimeInterval run = tb.runs.runs().front().interval;
  for (auto _ : state) {
    apg::ApgAnnotations annotations = AnnotateApg(apg, tb.store, run);
    benchmark::DoNotOptimize(annotations);
  }
}
BENCHMARK(BM_ApgAnnotation)->Unit(benchmark::kMicrosecond);

void BM_ApgAsciiRender(benchmark::State& state) {
  workload::Testbed& tb = *SharedTestbed();
  apg::Apg apg = tb.BuildApg().value();
  for (auto _ : state) {
    std::string out = apg::RenderApgAscii(apg);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ApgAsciiRender)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  workload::Testbed& tb = *SharedTestbed();
  Result<apg::Apg> apg = tb.BuildApg();
  if (!apg.ok()) {
    std::fprintf(stderr, "APG build failed: %s\n",
                 apg.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 1: the Annotated Plan Graph ===\n%s\n",
              apg::RenderApgAscii(*apg).c_str());

  // Structural checks against the figure.
  const db::Plan& plan = apg->plan();
  const int leaves = static_cast<int>(plan.LeafIndexes().size());
  std::printf("Structural checks (paper -> ours):\n");
  std::printf("  operators: 25 -> %zu %s\n", plan.size(),
              plan.size() == 25 ? "[ok]" : "[MISMATCH]");
  std::printf("  leaf operators: 9 -> %d %s\n", leaves,
              leaves == 9 ? "[ok]" : "[MISMATCH]");
  std::vector<int> v1_leaves = apg->LeafOpsOnComponent(tb.v1);
  std::string v1_list;
  for (int leaf : v1_leaves) {
    v1_list += StrFormat("O%d ", plan.op(leaf).op_number);
  }
  std::printf("  V1 leaves: O8, O22 -> %s%s\n", v1_list.c_str(),
              v1_leaves.size() == 2 ? "[ok]" : "[MISMATCH]");
  std::printf("  V2 leaves: 7 -> %zu %s\n",
              apg->LeafOpsOnComponent(tb.v2).size(),
              apg->LeafOpsOnComponent(tb.v2).size() == 7 ? "[ok]"
                                                         : "[MISMATCH]");

  // The paper's O23 dependency-path example.
  const int o23 = plan.IndexOfOpNumber(23).value();
  std::printf(
      "\n=== Section 3's dependency-path example (our O23, on V2) ===\n%s\n",
      apg::RenderDependencyPaths(*apg, o23).c_str());

  // Graphviz output size as a sanity check of the full graph.
  std::printf("Graphviz rendering: %zu bytes (pipe to dot -Tsvg)\n\n",
              apg::RenderApgDot(*apg).size());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
