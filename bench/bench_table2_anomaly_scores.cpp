// Experiment T2 — Table 2 of the paper.
//
// "Anomaly scores computed during dependency analysis for performance
// metrics from Volumes V1, V2", under scenario 1 (no contention in V2) and
// scenario 1b (bursty extra contention in V2 with little query impact).
//
// Paper's numbers:                no contention in V2    contention in V2
//   V1, writeIO                        0.894                 0.894
//   V1, writeTime                      0.823                 0.823
//   V2, writeIO                        0.063                 0.512
//   V2, writeTime                      0.479                 0.879
//
// Shape to reproduce: V1's scores high (>= threshold 0.8) in both columns;
// V2's scores low without contention, elevated (writeTime near/above
// threshold, writeIO moderate — bursts are diluted by interval averaging)
// with contention; and the final diagnosis unchanged in both columns.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/workflow.h"
#include "monitor/metrics.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

struct Table2Column {
  std::map<std::string, double> scores;  // "V1/writeIO" -> score.
  std::string top_cause;
};

Result<Table2Column> RunColumn(workload::ScenarioId id, uint64_t seed) {
  workload::ScenarioOptions options;
  options.seed = seed;
  DIADS_ASSIGN_OR_RETURN(workload::ScenarioOutput scenario,
                         workload::RunScenario(id, options));
  diag::DiagnosisContext ctx = scenario.MakeContext();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());

  Table2Column out;
  const ComponentRegistry& registry = scenario.testbed->registry;
  for (const diag::MetricAnomaly& m : report.da.metrics) {
    const std::string name = registry.NameOf(m.component);
    if (name != "V1" && name != "V2") continue;
    const char* metric = monitor::MetricShortName(m.metric);
    if (std::string(metric) != "writeIO" && std::string(metric) != "writeTime" &&
        std::string(metric) != "readIO" && std::string(metric) != "readTime") {
      continue;
    }
    out.scores[name + "/" + metric] = m.anomaly_score;
  }
  const diag::RootCause* top = report.TopCause();
  if (top != nullptr) {
    out.top_cause =
        std::string(diag::RootCauseTypeName(top->type)) + " on " +
        (registry.Contains(top->subject) ? registry.NameOf(top->subject)
                                         : std::string("-"));
  }
  return out;
}

void PrintTable2(const Table2Column& without, const Table2Column& with) {
  TablePrinter table({"Volume, Perf. Metric", "Anomaly Score (no contention in V2)",
                      "Anomaly Score (contention in V2)", "Paper (no / with)"});
  struct Row {
    const char* key;
    const char* label;
    const char* paper;
  };
  const Row rows[] = {
      {"V1/writeIO", "V1, writeIO", "0.894 / 0.894"},
      {"V1/writeTime", "V1, writeTime", "0.823 / 0.823"},
      {"V2/writeIO", "V2, writeIO", "0.063 / 0.512"},
      {"V2/writeTime", "V2, writeTime", "0.479 / 0.879"},
  };
  auto fmt = [](const std::map<std::string, double>& scores,
                const char* key) {
    auto it = scores.find(key);
    return it == scores.end() ? std::string("n/a")
                              : FormatDouble(it->second, 3);
  };
  for (const Row& row : rows) {
    table.AddRow({row.label, fmt(without.scores, row.key),
                  fmt(with.scores, row.key), row.paper});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("Top cause without V2 contention: %s\n", without.top_cause.c_str());
  std::printf("Top cause with V2 contention:    %s\n", with.top_cause.c_str());
}

void BM_DependencyAnalysisScenario1(benchmark::State& state) {
  workload::ScenarioOptions options;
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, options);
  if (!scenario.ok()) {
    state.SkipWithError(scenario.status().ToString().c_str());
    return;
  }
  diag::DiagnosisContext ctx = scenario->MakeContext();
  diag::WorkflowConfig config;
  Result<diag::CoResult> co = diag::RunCorrelatedOperators(ctx, config);
  if (!co.ok()) {
    state.SkipWithError(co.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<diag::DaResult> da = diag::RunDependencyAnalysis(ctx, config, *co);
    benchmark::DoNotOptimize(da);
  }
}
BENCHMARK(BM_DependencyAnalysisScenario1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Table 2: anomaly scores from Module DA for V1/V2 metrics ===\n");
  Result<Table2Column> without =
      RunColumn(workload::ScenarioId::kS1SanMisconfiguration, 42);
  Result<Table2Column> with =
      RunColumn(workload::ScenarioId::kS1bBurstyV2, 42);
  if (!without.ok() || !with.ok()) {
    std::fprintf(stderr, "table generation failed: %s %s\n",
                 without.ok() ? "" : without.status().ToString().c_str(),
                 with.ok() ? "" : with.status().ToString().c_str());
    return 1;
  }
  PrintTable2(*without, *with);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
