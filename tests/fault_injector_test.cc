// Direct unit tests for the fault injector's server/storage faults —
// the S9 (CPU saturation), S10 (RAID rebuild), and S11 (disk failure)
// paths, which previously were exercised only through full scenario
// integration runs. Each test injects against a fresh testbed and asserts
// the injector's observable contract: the simulated state moves (latency,
// CPU, disk health), the impact is confined to the intended window and
// components, query runs actually slow down, and exactly the events a
// production environment would log appear — never the answer itself.
#include <gtest/gtest.h>

#include "db/run_record.h"
#include "workload/fault_injector.h"
#include "workload/testbed.h"

namespace diads {
namespace {

using workload::BuildFigure1Testbed;
using workload::FaultInjector;
using workload::Testbed;
using workload::TestbedOptions;

class FaultInjectorTest : public ::testing::TestWithParam<db::BackendKind> {
 protected:
  void SetUp() override {
    TestbedOptions options;
    options.backend = GetParam();
    Result<std::unique_ptr<Testbed>> tb = BuildFigure1Testbed(options);
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
  }

  /// Mean Q2 duration over `count` runs starting at `t` (period 30 min).
  double MeanRunMs(SimTimeMs t, int count) {
    double total = 0;
    for (int i = 0; i < count; ++i) {
      Result<int> run = tb_->RunQ2(t + i * Minutes(30));
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      const db::QueryRunRecord* record = *tb_->runs.FindRun(*run);
      total += static_cast<double>(record->duration_ms());
    }
    return total / count;
  }

  int CountEvents(EventType type) {
    int n = 0;
    for (const SystemEvent& event : tb_->event_log.all()) {
      if (event.type == type) ++n;
    }
    return n;
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_P(FaultInjectorTest, CpuSaturationRaisesServerLoadInWindowOnly) {
  FaultInjector injector(tb_.get());
  const TimeInterval window{Hours(10), Hours(14)};
  ASSERT_TRUE(injector.InjectCpuSaturation(window, 0.72).ok());

  const auto in_window =
      tb_->perf_model.ServerStats(tb_->db_server,
                                  TimeInterval{Hours(11), Hours(12)});
  const auto outside =
      tb_->perf_model.ServerStats(tb_->db_server,
                                  TimeInterval{Hours(16), Hours(17)});
  EXPECT_GE(in_window.cpu_utilization, 0.7);
  EXPECT_LT(outside.cpu_utilization, 0.1);
  // Confined to the database server: the app server is untouched.
  EXPECT_LT(tb_->perf_model
                .ServerStats(tb_->app_server, TimeInterval{Hours(11),
                                                           Hours(12)})
                .cpu_utilization,
            0.1);
}

TEST_P(FaultInjectorTest, CpuSaturationStretchesOperatorComputeTime) {
  FaultInjector injector(tb_.get());
  auto total_cpu_ms = [this](SimTimeMs t) {
    Result<int> run = tb_->RunQ2(t);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    double cpu = 0;
    for (const db::OperatorRunStats& op : (*tb_->runs.FindRun(*run))->operators) {
      cpu += op.cpu_ms;
    }
    return cpu;
  };
  const double healthy = total_cpu_ms(Hours(8));
  ASSERT_TRUE(
      injector.InjectCpuSaturation(TimeInterval{Hours(20), Hours(30)}, 0.72)
          .ok());
  const double saturated = total_cpu_ms(Hours(20));
  // Processor sharing at 72% background load leaves ~28% of the CPU: every
  // operator's compute-wait stretches ~3.5x (Module IA reads exactly this
  // attribution), modulo per-run jitter.
  EXPECT_GT(saturated, 2.0 * healthy);
}

TEST_P(FaultInjectorTest, RaidRebuildDegradesOnlyTheRebuildingPool) {
  FaultInjector injector(tb_.get());
  const TimeInterval window{Hours(10), Hours(14)};
  const double v1_before =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(11));
  const double v2_before =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v2, Hours(11));
  ASSERT_TRUE(injector.InjectRaidRebuild(tb_->pool1, window, 0.45).ok());

  const double v1_during =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(11));
  const double v2_during =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v2, Hours(11));
  const double v1_after =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(15));
  // P1's volumes pay for the rebuild overhead; P2's do not.
  EXPECT_GT(v1_during, 1.5 * v1_before);
  EXPECT_NEAR(v2_during, v2_before, 0.2 * v2_before + 0.1);
  EXPECT_NEAR(v1_after, v1_before, 0.2 * v1_before + 0.1);

  // Only configuration events are logged — the injector never tells DIADS
  // the answer.
  EXPECT_EQ(CountEvents(EventType::kRaidRebuildStarted), 1);
  EXPECT_EQ(CountEvents(EventType::kRaidRebuildCompleted), 1);
}

TEST_P(FaultInjectorTest, RaidRebuildSlowsV1Runs) {
  FaultInjector injector(tb_.get());
  const double healthy = MeanRunMs(Hours(8), 3);
  ASSERT_TRUE(
      injector
          .InjectRaidRebuild(tb_->pool1, TimeInterval{Hours(20), Hours(40)},
                             0.45)
          .ok());
  const double rebuilding = MeanRunMs(Hours(20), 3);
  EXPECT_GT(rebuilding, 1.2 * healthy);
}

TEST_P(FaultInjectorTest, DiskFailureConcentratesLoadAndRecoveryRestores) {
  FaultInjector injector(tb_.get());
  Result<ComponentId> disk1 = tb_->registry.FindByName("disk1");
  ASSERT_TRUE(disk1.ok());

  // Losing a disk concentrates *load* on the survivors — so the effect is
  // visible under traffic, not at idle. Keep V1 busy across the test.
  san::LoadEvent load;
  load.volume = tb_->v1;
  load.interval = TimeInterval{Hours(8), Hours(20)};
  load.profile.read_iops = 250;
  load.profile.write_iops = 60;
  ASSERT_TRUE(tb_->perf_model.AddLoad(load).ok());

  const double before =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(11));
  ASSERT_EQ(tb_->topology.DisksOfVolume(tb_->v1).size(), 4u);

  ASSERT_TRUE(injector.InjectDiskFailure(Hours(10), *disk1).ok());
  EXPECT_TRUE(tb_->topology.disk(*disk1).failed);
  // The survivors carry the load: 3 disks where there were 4.
  EXPECT_EQ(tb_->topology.DisksOfVolume(tb_->v1).size(), 3u);
  const double degraded =
      tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(11));
  EXPECT_GT(degraded, 1.05 * before);
  // V2 (pool P2) is unaffected.
  EXPECT_NEAR(tb_->perf_model.VolumeReadLatencyMs(tb_->v2, Hours(11)),
              tb_->perf_model.VolumeReadLatencyMs(tb_->v2, Hours(9)), 0.01);

  EXPECT_EQ(CountEvents(EventType::kDiskFailed), 1);

  ASSERT_TRUE(injector.InjectDiskRecovery(Hours(14), *disk1).ok());
  EXPECT_FALSE(tb_->topology.disk(*disk1).failed);
  EXPECT_EQ(tb_->topology.DisksOfVolume(tb_->v1).size(), 4u);
  EXPECT_NEAR(tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(15)), before,
              0.15 * before + 0.05);
  EXPECT_EQ(CountEvents(EventType::kDiskRecovered), 1);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, FaultInjectorTest,
    ::testing::Values(db::BackendKind::kPostgres, db::BackendKind::kMysql),
    [](const ::testing::TestParamInfo<db::BackendKind>& info) {
      return std::string(db::BackendKindName(info.param));
    });

}  // namespace
}  // namespace diads
