// Unit tests for the DbBackend abstraction and the non-default engines:
// parameter vocabularies (pairwise disjoint except buffer_pool_mb),
// cost-model character (MySQL's flat I/O cost, index-nested-loop bias and
// BNL fallback; the column store's vectorized scans and zone-map pruning),
// plan fixtures, what-if re-optimisation, and the engines' diverging
// DML/ANALYZE statistics semantics.
#include <gtest/gtest.h>

#include <set>

#include "db/backend.h"
#include "db/columnar_backend.h"
#include "db/columnar_plan.h"
#include "db/mysql_backend.h"
#include "db/mysql_optimizer.h"
#include "db/mysql_plan.h"
#include "db/tpch.h"
#include "san/topology.h"

namespace diads::db {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = std::make_unique<san::SanTopology>(&registry_);
    ComponentId subsystem =
        *topology_->AddSubsystem("box", "IBM DS6000");
    ComponentId pool = *topology_->AddPool("P1", subsystem,
                                           san::RaidLevel::kRaid5);
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(topology_->AddDisk("disk" + std::to_string(i), pool).ok());
    }
    v1_ = *topology_->AddVolume("V1", pool, 200);
    v2_ = *topology_->AddVolume("V2", pool, 400);
    catalog_ = std::make_unique<Catalog>(&registry_, &event_log_);
    TpchOptions tpch;
    tpch.volume_v1 = v1_;
    tpch.volume_v2 = v2_;
    ASSERT_TRUE(BuildTpchCatalog(tpch, catalog_.get()).ok());
  }

  std::unique_ptr<DbBackend> Make(BackendKind kind) {
    BackendInit init;
    init.catalog = catalog_.get();
    return MakeDbBackend(kind, init);
  }

  ComponentRegistry registry_;
  EventLog event_log_;
  std::unique_ptr<san::SanTopology> topology_;
  std::unique_ptr<Catalog> catalog_;
  ComponentId v1_, v2_;
};

TEST_F(BackendTest, KindNamesRoundTrip) {
  for (BackendKind kind : AllBackendKinds()) {
    Result<BackendKind> parsed = BackendKindFromName(BackendKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(BackendKindFromName("oracle").ok());
}

TEST_F(BackendTest, DatabaseComponentNamesAreEngineSpecific) {
  EXPECT_EQ(Make(BackendKind::kPostgres)->DatabaseComponentName("dbserver"),
            "postgres@dbserver");
  EXPECT_EQ(Make(BackendKind::kMysql)->DatabaseComponentName("dbserver"),
            "mysql@dbserver");
  EXPECT_EQ(Make(BackendKind::kColumnar)->DatabaseComponentName("dbserver"),
            "columnar@dbserver");
}

TEST_F(BackendTest, ParamVocabulariesAreDisjointWhereTheEnginesDiffer) {
  auto pg = Make(BackendKind::kPostgres);
  auto my = Make(BackendKind::kMysql);
  auto col = Make(BackendKind::kColumnar);
  // random_page_cost exists only on PostgreSQL; io_block_read_cost only on
  // MySQL; the zone-map / batch knobs only on the columnar engine — each
  // engine rejects the others' knobs.
  EXPECT_TRUE(pg->GetParam("random_page_cost").ok());
  EXPECT_FALSE(my->GetParam("random_page_cost").ok());
  EXPECT_FALSE(my->SetParam("random_page_cost", 40.0).ok());
  EXPECT_FALSE(col->GetParam("random_page_cost").ok());
  EXPECT_FALSE(col->SetParam("random_page_cost", 40.0).ok());
  EXPECT_TRUE(my->GetParam("io_block_read_cost").ok());
  EXPECT_FALSE(pg->GetParam("io_block_read_cost").ok());
  EXPECT_FALSE(col->GetParam("io_block_read_cost").ok());
  EXPECT_TRUE(col->GetParam("vector_batch_rows").ok());
  EXPECT_TRUE(col->GetParam("zone_map_consult_cost").ok());
  for (const auto& backend : {pg.get(), my.get()}) {
    EXPECT_FALSE(backend->GetParam("vector_batch_rows").ok())
        << backend->name();
    EXPECT_FALSE(backend->SetParam("vector_batch_rows", 1024.0).ok())
        << backend->name();
    EXPECT_FALSE(backend->GetParam("zone_map_consult_cost").ok())
        << backend->name();
  }
  // Every advertised name is readable on its own engine.
  for (const auto& backend : {pg.get(), my.get(), col.get()}) {
    for (const std::string& name : backend->ParamNames()) {
      EXPECT_TRUE(backend->GetParam(name).ok()) << name;
    }
    const PlanMisconfigKnob knob = backend->MisconfigKnob();
    EXPECT_TRUE(backend->GetParam(knob.param).ok()) << knob.param;
  }
}

TEST_F(BackendTest, MysqlOptimizerUsesOnlyNestedLoopVocabulary) {
  auto my = Make(BackendKind::kMysql);
  Result<Plan> plan = my->OptimizeQuery(MakeTpchQ2Spec());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::set<std::string> vocab;
  for (const PlanOp& op : plan->ops()) {
    EXPECT_NE(op.type, OpType::kHashJoin);
    EXPECT_NE(op.type, OpType::kHash);
    EXPECT_NE(op.type, OpType::kMergeJoin);
    vocab.insert(op.engine_op);
  }
  // The index-nested-loop bias: big-table joins go through ref access.
  EXPECT_TRUE(vocab.count("ref"));
  EXPECT_TRUE(vocab.count("filesort"));
  EXPECT_TRUE(vocab.count("ref<auto_key0>")) << "derived-table join missing";
}

TEST_F(BackendTest, MysqlFallsBackToBnlWithoutAUsableIndex) {
  auto my = Make(BackendKind::kMysql);
  const Plan base = *my->OptimizeQuery(MakeTpchQ2Spec());
  // Drop both partsupp join indexes: every partsupp join loses its ref
  // access path and at least one must go through the join buffer.
  ASSERT_TRUE(catalog_->DropIndex(Hours(1), "partsupp_partkey_idx").ok());
  ASSERT_TRUE(catalog_->DropIndex(Hours(1), "partsupp_suppkey_idx").ok());
  Result<Plan> degraded = my->OptimizeQuery(MakeTpchQ2Spec());
  ASSERT_TRUE(degraded.ok());
  EXPECT_NE(degraded->Fingerprint(), base.Fingerprint());
  bool bnl = false;
  for (const PlanOp& op : degraded->ops()) {
    if (op.engine_op == "BNL" || op.engine_op == "join buffer") bnl = true;
  }
  EXPECT_TRUE(bnl) << degraded->Render();
}

TEST_F(BackendTest, MysqlMisconfigKnobFlipsThePlanAndWhatIfRevertsIt) {
  auto my = Make(BackendKind::kMysql);
  const QuerySpec spec = MakeTpchQ2Spec();
  const uint64_t base = my->OptimizeQuery(spec)->Fingerprint();
  const PlanMisconfigKnob knob = my->MisconfigKnob();
  const double old_value = *my->GetParam(knob.param);
  ASSERT_TRUE(my->SetParam(knob.param, knob.bad_value).ok());
  const uint64_t flipped = my->OptimizeQuery(spec)->Fingerprint();
  EXPECT_NE(flipped, base);
  // Module PD's what-if: re-optimising with the old value reproduces the
  // satisfactory-era plan without touching the live parameters.
  Result<Plan> what_if = my->OptimizeQueryWithParam(spec, knob.param,
                                                    old_value);
  ASSERT_TRUE(what_if.ok());
  EXPECT_EQ(what_if->Fingerprint(), base);
  EXPECT_EQ(my->OptimizeQuery(spec)->Fingerprint(), flipped);
}

TEST_F(BackendTest, ColumnarOptimizerUsesColumnarVocabulary) {
  auto col = Make(BackendKind::kColumnar);
  Result<Plan> plan = col->OptimizeQuery(MakeTpchQ2Spec());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::set<std::string> vocab;
  for (const PlanOp& op : plan->ops()) {
    EXPECT_NE(op.type, OpType::kNestLoopJoin)
        << "the column store joins by hashing only";
    EXPECT_NE(op.type, OpType::kMergeJoin);
    vocab.insert(op.engine_op);
  }
  EXPECT_TRUE(vocab.count("vector scan"));
  EXPECT_TRUE(vocab.count("zone-pruned scan"));
  EXPECT_TRUE(vocab.count("vectorized hash join"));
  EXPECT_TRUE(vocab.count("late materialize")) << "subplan must materialize";
}

TEST_F(BackendTest, ColumnarMisconfigKnobFlipsThePlanAndWhatIfRevertsIt) {
  auto col = Make(BackendKind::kColumnar);
  const QuerySpec spec = MakeTpchQ2Spec();
  const uint64_t base = col->OptimizeQuery(spec)->Fingerprint();
  const PlanMisconfigKnob knob = col->MisconfigKnob();
  const double old_value = *col->GetParam(knob.param);
  ASSERT_TRUE(col->SetParam(knob.param, knob.bad_value).ok());
  const uint64_t flipped = col->OptimizeQuery(spec)->Fingerprint();
  EXPECT_NE(flipped, base)
      << "an expensive zone-map consult must abandon pruned scans";
  // Module PD's what-if: re-optimising with the old value reproduces the
  // satisfactory-era plan without touching the live parameters.
  Result<Plan> what_if = col->OptimizeQueryWithParam(spec, knob.param,
                                                     old_value);
  ASSERT_TRUE(what_if.ok());
  EXPECT_EQ(what_if->Fingerprint(), base);
  EXPECT_EQ(col->OptimizeQuery(spec)->Fingerprint(), flipped);
  // And the revert round-trip: restoring the live parameter restores the
  // original plan exactly.
  ASSERT_TRUE(col->SetParam(knob.param, old_value).ok());
  EXPECT_EQ(col->OptimizeQuery(spec)->Fingerprint(), base);
}

TEST_F(BackendTest, FixturePlansShareTheStructuralContract) {
  for (BackendKind kind : AllBackendKinds()) {
    auto backend = Make(kind);
    Result<Plan> fixture = backend->MakePaperPlan();
    ASSERT_TRUE(fixture.ok());
    // Nine leaves; exactly two partsupp scans (the V1 leaves).
    EXPECT_EQ(fixture->LeafIndexes().size(), 9u) << backend->name();
    int partsupp_leaves = 0;
    for (int leaf : fixture->LeafIndexes()) {
      if (fixture->op(leaf).table == "partsupp") ++partsupp_leaves;
    }
    EXPECT_EQ(partsupp_leaves, 2) << backend->name();
  }
  // The vocabularies differ: no pair of engines may collide.
  std::vector<uint64_t> fingerprints;
  for (BackendKind kind : AllBackendKinds()) {
    fingerprints.push_back(Make(kind)->MakePaperPlan()->Fingerprint());
  }
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    for (size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j])
          << BackendKindName(AllBackendKinds()[i]) << " vs "
          << BackendKindName(AllBackendKinds()[j]);
    }
  }
}

TEST_F(BackendTest, ColumnarFixtureScalesWithScaleFactor) {
  Result<Plan> sf1 = MakeColumnarQ2Plan(1.0);
  Result<Plan> sf2 = MakeColumnarQ2Plan(2.0);
  ASSERT_TRUE(sf1.ok() && sf2.ok());
  EXPECT_EQ(sf1->Fingerprint(), sf2->Fingerprint())
      << "scale changes estimates, not structure";
  double pages1 = 0, pages2 = 0;
  for (const PlanOp& op : sf1->ops()) pages1 += op.est_pages;
  for (const PlanOp& op : sf2->ops()) pages2 += op.est_pages;
  EXPECT_GT(pages2, 1.8 * pages1);
  EXPECT_FALSE(MakeColumnarQ2Plan(0.0).ok());
}

TEST_F(BackendTest, MysqlFixtureScalesWithScaleFactor) {
  Result<Plan> sf1 = MakeMysqlQ2Plan(1.0);
  Result<Plan> sf2 = MakeMysqlQ2Plan(2.0);
  ASSERT_TRUE(sf1.ok() && sf2.ok());
  EXPECT_EQ(sf1->Fingerprint(), sf2->Fingerprint())
      << "scale changes estimates, not structure";
  double pages1 = 0, pages2 = 0;
  for (const PlanOp& op : sf1->ops()) pages1 += op.est_pages;
  for (const PlanOp& op : sf2->ops()) pages2 += op.est_pages;
  EXPECT_GT(pages2, 1.8 * pages1);
  EXPECT_FALSE(MakeMysqlQ2Plan(0.0).ok());
}

// --- DML / ANALYZE statistics semantics --------------------------------------

TEST_F(BackendTest, PostgresDmlLeavesOptimizerStatsStaleUntilAnalyze) {
  auto pg = Make(BackendKind::kPostgres);
  const double before =
      (*catalog_->FindTable("partsupp"))->optimizer_stats.row_count;
  ASSERT_TRUE(pg->ApplyDml(Hours(1), "partsupp", 1.7, "bulk load").ok());
  EXPECT_EQ((*catalog_->FindTable("partsupp"))->optimizer_stats.row_count,
            before);
  EXPECT_NEAR((*catalog_->FindTable("partsupp"))->actual_stats.row_count,
              before * 1.7, 1.0);
  ASSERT_TRUE(pg->Analyze(Hours(2), "partsupp").ok());
  EXPECT_NEAR((*catalog_->FindTable("partsupp"))->optimizer_stats.row_count,
              before * 1.7, 1.0);
}

TEST_F(BackendTest, MysqlDmlAutoRecalcRefreshesStatsPastThreshold) {
  auto my = Make(BackendKind::kMysql);
  const double before =
      (*catalog_->FindTable("partsupp"))->optimizer_stats.row_count;

  // Below the 10% auto-recalc threshold: stats stay stale.
  ASSERT_TRUE(my->ApplyDml(Hours(1), "partsupp", 1.05, "small load").ok());
  EXPECT_EQ((*catalog_->FindTable("partsupp"))->optimizer_stats.row_count,
            before);

  // Cumulative drift crosses 10%: the automatic recalculation fires, the
  // optimizer view snaps (approximately — sampled dives) to the truth,
  // and the kTableStatsChanged event a real deployment would see appears.
  ASSERT_TRUE(my->ApplyDml(Hours(2), "partsupp", 1.08, "more load").ok());
  const double actual =
      (*catalog_->FindTable("partsupp"))->actual_stats.row_count;
  const double refreshed =
      (*catalog_->FindTable("partsupp"))->optimizer_stats.row_count;
  EXPECT_NE(refreshed, before);
  EXPECT_NEAR(refreshed, actual, 0.03 * actual);
  bool recalc_logged = false;
  for (const SystemEvent& event : event_log_.all()) {
    if (event.type == EventType::kTableStatsChanged) recalc_logged = true;
  }
  EXPECT_TRUE(recalc_logged);
}

TEST_F(BackendTest, MysqlAnalyzeResetsTheAutoRecalcDriftCounter) {
  auto my = Make(BackendKind::kMysql);
  // 8% drift: below threshold, no recalc.
  ASSERT_TRUE(my->ApplyDml(Hours(1), "partsupp", 1.08, "load").ok());
  // Explicit ANALYZE refreshes stats AND resets the drift counter, as
  // InnoDB does — subsequent DML is measured against this refresh.
  ASSERT_TRUE(my->Analyze(Hours(2), "partsupp").ok());
  const auto events_after_analyze = event_log_.all().size();
  // Another 3% of drift: cumulative change since the *refresh* is 3%, so
  // no automatic recalculation may fire (only the kDmlBatch event lands).
  ASSERT_TRUE(my->ApplyDml(Hours(3), "partsupp", 1.03, "small load").ok());
  int stats_events = 0;
  for (size_t i = events_after_analyze; i < event_log_.all().size(); ++i) {
    if (event_log_.all()[i].type == EventType::kTableStatsChanged) {
      ++stats_events;
    }
  }
  EXPECT_EQ(stats_events, 0);
}

TEST_F(BackendTest, MysqlSilentDmlNeverRecalculates) {
  auto my = Make(BackendKind::kMysql);
  const double before =
      (*catalog_->FindTable("part"))->optimizer_stats.row_count;
  ASSERT_TRUE(
      my->ApplyDmlSilently(Hours(1), "part", 8.0, "silent drift").ok());
  EXPECT_EQ((*catalog_->FindTable("part"))->optimizer_stats.row_count,
            before);
  for (const SystemEvent& event : event_log_.all()) {
    EXPECT_NE(event.type, EventType::kTableStatsChanged);
  }
}

TEST_F(BackendTest, ColumnarDmlReorganizesSegmentsPastChurnThreshold) {
  auto col = Make(BackendKind::kColumnar);
  const double before =
      (*catalog_->FindTable("partsupp"))->optimizer_stats.row_count;

  // Below the 30% churn threshold: no reorganization, stats stay stale.
  ASSERT_TRUE(col->ApplyDml(Hours(1), "partsupp", 1.1, "small load").ok());
  EXPECT_EQ((*catalog_->FindTable("partsupp"))->optimizer_stats.row_count,
            before);

  // Inject physical-layout damage, then push cumulative churn past 30%:
  // the reorganization rewrites the segments (healing the bloat) and
  // refreshes statistics from segment metadata.
  ASSERT_TRUE(
      catalog_->SetTableStorageBloatSilently("partsupp", 2.2).ok());
  ASSERT_TRUE(col->ApplyDml(Hours(2), "partsupp", 1.25, "more load").ok());
  const TableDef& table = **catalog_->FindTable("partsupp");
  EXPECT_EQ(table.storage_bloat, 1.0) << "reorganization must heal bloat";
  const double actual = table.actual_stats.row_count;
  EXPECT_NE(table.optimizer_stats.row_count, before);
  EXPECT_NEAR(table.optimizer_stats.row_count, actual, 0.02 * actual);
  bool reorg_logged = false;
  for (const SystemEvent& event : event_log_.all()) {
    if (event.type == EventType::kTableStatsChanged) reorg_logged = true;
  }
  EXPECT_TRUE(reorg_logged);
}

TEST_F(BackendTest, ColumnarAnalyzeRefreshesStatsButNotSegments) {
  auto col = Make(BackendKind::kColumnar);
  ASSERT_TRUE(
      catalog_->SetTableStorageBloatSilently("partsupp", 2.2).ok());
  ASSERT_TRUE(
      catalog_->SetIndexScanBloatSilently("partsupp_partkey_idx", 2.5).ok());
  ASSERT_TRUE(col->ApplyDmlSilently(Hours(1), "partsupp", 1.2, "load").ok());
  ASSERT_TRUE(col->Analyze(Hours(2), "partsupp").ok());
  const TableDef& table = **catalog_->FindTable("partsupp");
  // Statistics snapped to the truth...
  EXPECT_NEAR(table.optimizer_stats.row_count, table.actual_stats.row_count,
              1.0);
  // ...but an ANALYZE rewrites no segments: the layout damage survives.
  EXPECT_EQ(table.storage_bloat, 2.2);
  EXPECT_EQ((*catalog_->FindIndex("partsupp_partkey_idx"))->scan_bloat, 2.5);
}

TEST_F(BackendTest, AnalyzeDriftSpecFlipsEachEnginesPlan) {
  for (BackendKind kind : AllBackendKinds()) {
    // Fresh catalog per engine (the drift mutates shared state).
    ComponentRegistry registry;
    EventLog event_log;
    san::SanTopology topology(&registry);
    ComponentId subsystem = *topology.AddSubsystem("box", "x");
    ComponentId pool = *topology.AddPool("P", subsystem,
                                         san::RaidLevel::kRaid5);
    ASSERT_TRUE(topology.AddDisk("d1", pool).ok());
    ComponentId v1 = *topology.AddVolume("V1", pool, 200);
    ComponentId v2 = *topology.AddVolume("V2", pool, 400);
    Catalog catalog(&registry, &event_log);
    TpchOptions tpch;
    tpch.volume_v1 = v1;
    tpch.volume_v2 = v2;
    ASSERT_TRUE(BuildTpchCatalog(tpch, &catalog).ok());
    BackendInit init;
    init.catalog = &catalog;
    auto backend = MakeDbBackend(kind, init);

    const QuerySpec spec = MakeTpchQ2Spec();
    const uint64_t base = backend->OptimizeQuery(spec)->Fingerprint();
    const StatsDriftSpec drift = backend->AnalyzeDriftSpec();
    ASSERT_TRUE(backend
                    ->ApplyDmlSilently(Hours(1), drift.table, drift.factor,
                                       "drift")
                    .ok());
    EXPECT_EQ(backend->OptimizeQuery(spec)->Fingerprint(), base)
        << backend->name() << ": drift must stay invisible";
    ASSERT_TRUE(backend->Analyze(Hours(2), drift.table).ok());
    EXPECT_NE(backend->OptimizeQuery(spec)->Fingerprint(), base)
        << backend->name() << ": ANALYZE must flip the plan";
  }
}

TEST_F(BackendTest, ExecutorParamsReflectEngineCostModel) {
  auto my = Make(BackendKind::kMysql);
  DbParams params = my->ExecutorParams();
  // The flat I/O cost: no random-access premium.
  EXPECT_EQ(params.seq_page_cost, params.random_page_cost);
  ASSERT_TRUE(my->SetParam("io_block_read_cost", 25.0).ok());
  params = my->ExecutorParams();
  EXPECT_EQ(params.seq_page_cost, 25.0);
  EXPECT_EQ(params.random_page_cost, 25.0);

  auto pg = Make(BackendKind::kPostgres);
  const DbParams pg_params = pg->ExecutorParams();
  EXPECT_GT(pg_params.random_page_cost, pg_params.seq_page_cost)
      << "PostgreSQL keeps its random-access premium";

  auto col = Make(BackendKind::kColumnar);
  const DbParams col_params = col->ExecutorParams();
  EXPECT_EQ(col_params.seq_page_cost, col_params.random_page_cost)
      << "columnar I/O is sequential segment streaming either way";
  // Batch dispatch amortizes over the batch: the per-operator cost falls
  // as batches grow.
  ASSERT_TRUE(col->SetParam("vector_batch_rows", 8192.0).ok());
  EXPECT_LT(col->ExecutorParams().cpu_operator_cost,
            col_params.cpu_operator_cost);
}

}  // namespace
}  // namespace diads::db
