// Tests for the workflow drivers: the batch Workflow (Figure 2's module
// sequence), the InteractiveSession (Figure 7's ordering, re-execution, and
// result editing), the symptoms database validation rules, and the what-if
// plan probe integration in Module PD.
#include <gtest/gtest.h>

#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::diag {
namespace {

using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

class WorkflowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, {});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
    symptoms_ = new SymptomsDb(SymptomsDb::MakeDefault());
  }
  static void TearDownTestSuite() {
    delete symptoms_;
    delete scenario_;
    symptoms_ = nullptr;
    scenario_ = nullptr;
  }

  static ScenarioOutput* scenario_;
  static SymptomsDb* symptoms_;
};

ScenarioOutput* WorkflowTest::scenario_ = nullptr;
SymptomsDb* WorkflowTest::symptoms_ = nullptr;

TEST_F(WorkflowTest, BatchDiagnosisEndToEnd) {
  Workflow workflow(scenario_->MakeContext(), WorkflowConfig{}, symptoms_);
  Result<DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->causes.empty());
  EXPECT_EQ(report->causes.front().type,
            RootCauseType::kSanMisconfigurationContention);
  EXPECT_FALSE(report->summary.empty());
  EXPECT_NE(report->summary.find("SAN misconfiguration"), std::string::npos);
}

TEST_F(WorkflowTest, BatchWithoutSymptomsDbUsesFallback) {
  Workflow workflow(scenario_->MakeContext(), WorkflowConfig{}, nullptr);
  Result<DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->causes.empty());
  // The fallback still pinpoints V1, capped below high confidence.
  EXPECT_EQ(report->causes.front().subject, scenario_->testbed->v1);
  EXPECT_NE(report->causes.front().band, ConfidenceBand::kHigh);
}

TEST_F(WorkflowTest, InteractiveEnforcesFirstPassOrder) {
  InteractiveSession session(scenario_->MakeContext(), WorkflowConfig{},
                             symptoms_);
  using Module = InteractiveSession::Module;
  // Figure 7: "all modules after dependency analysis are disabled" before
  // the earlier ones have run.
  EXPECT_TRUE(session.CanRun(Module::kPd));
  EXPECT_FALSE(session.CanRun(Module::kCo));
  EXPECT_FALSE(session.CanRun(Module::kSd));
  EXPECT_FALSE(session.Run(Module::kIa).ok());

  ASSERT_TRUE(session.Run(Module::kPd).ok());
  EXPECT_TRUE(session.CanRun(Module::kCo));
  ASSERT_TRUE(session.Run(Module::kCo).ok());
  EXPECT_TRUE(session.CanRun(Module::kDa));
  EXPECT_TRUE(session.CanRun(Module::kCr));
  EXPECT_FALSE(session.CanRun(Module::kSd));  // Needs DA and CR.
  ASSERT_TRUE(session.Run(Module::kDa).ok());
  ASSERT_TRUE(session.Run(Module::kCr).ok());
  EXPECT_TRUE(session.CanRun(Module::kSd));
  ASSERT_TRUE(session.Run(Module::kSd).ok());
  ASSERT_TRUE(session.Run(Module::kIa).ok());
  EXPECT_FALSE(session.NextModule().has_value());
  EXPECT_EQ(session.report().causes.front().type,
            RootCauseType::kSanMisconfigurationContention);
}

TEST_F(WorkflowTest, InteractiveReExecutionAllowed) {
  InteractiveSession session(scenario_->MakeContext(), WorkflowConfig{},
                             symptoms_);
  using Module = InteractiveSession::Module;
  ASSERT_TRUE(session.Run(Module::kPd).ok());
  ASSERT_TRUE(session.Run(Module::kCo).ok());
  // "each module can be re-executed as many times as needed".
  Result<std::string> again = session.Run(Module::kCo);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again->find("Module CO"), std::string::npos);
  // Earlier modules can re-run too.
  EXPECT_TRUE(session.Run(Module::kPd).ok());
}

TEST_F(WorkflowTest, InteractiveCosEditing) {
  InteractiveSession session(scenario_->MakeContext(), WorkflowConfig{},
                             symptoms_);
  using Module = InteractiveSession::Module;
  EXPECT_FALSE(session.RemoveFromCos(8).ok());  // CO has not run.
  ASSERT_TRUE(session.Run(Module::kPd).ok());
  ASSERT_TRUE(session.Run(Module::kCo).ok());
  const size_t before = session.report().co.correlated_operator_set.size();
  ASSERT_TRUE(session.RemoveFromCos(8).ok());
  EXPECT_EQ(session.report().co.correlated_operator_set.size(), before - 1);
  EXPECT_FALSE(session.RemoveFromCos(8).ok());  // Already removed.
  ASSERT_TRUE(session.AddToCos(8).ok());
  EXPECT_EQ(session.report().co.correlated_operator_set.size(), before);
  // Out-of-range operator number.
  EXPECT_FALSE(session.AddToCos(99).ok());
}

TEST_F(WorkflowTest, NextModuleWalksFigure2Order) {
  InteractiveSession session(scenario_->MakeContext(), WorkflowConfig{},
                             symptoms_);
  using Module = InteractiveSession::Module;
  const Module expected[] = {Module::kPd, Module::kCo, Module::kDa,
                             Module::kCr, Module::kSd, Module::kIa};
  for (Module module : expected) {
    ASSERT_TRUE(session.NextModule().has_value());
    EXPECT_EQ(*session.NextModule(), module);
    ASSERT_TRUE(session.Run(module).ok());
  }
}

// --- SymptomsDb validation ----------------------------------------------------

TEST(SymptomsDbTest, DefaultDatabaseIsValid) {
  SymptomsDb db = SymptomsDb::MakeDefault();
  EXPECT_GE(db.size(), 9u);
}

TEST(SymptomsDbTest, WeightsMustSumTo100) {
  SymptomsDb db;
  EXPECT_FALSE(db.AddEntry("bad", RootCauseType::kLockContention, false,
                           {{"lock_wait_high()", 50}})
                   .ok());
  EXPECT_TRUE(db.AddEntry("good", RootCauseType::kLockContention, false,
                          {{"lock_wait_high()", 60},
                           {"op_anomaly_exists()", 40}})
                  .ok());
}

TEST(SymptomsDbTest, RejectsUnparseableConditions) {
  SymptomsDb db;
  EXPECT_FALSE(db.AddEntry("bad", RootCauseType::kLockContention, false,
                           {{"this is not an expression", 100}})
                   .ok());
  EXPECT_FALSE(db.AddEntry("bad2", RootCauseType::kLockContention, false,
                           {{"lock_wait_high()", -10},
                            {"op_anomaly_exists()", 110}})
                   .ok());
}

TEST(SymptomsDbTest, DuplicateAndRemove) {
  SymptomsDb db;
  ASSERT_TRUE(db.AddEntry("e", RootCauseType::kLockContention, false,
                          {{"lock_wait_high()", 100}})
                  .ok());
  EXPECT_FALSE(db.AddEntry("e", RootCauseType::kLockContention, false,
                           {{"lock_wait_high()", 100}})
                   .ok());
  EXPECT_TRUE(db.RemoveEntry("e").ok());
  EXPECT_FALSE(db.RemoveEntry("e").ok());
  EXPECT_EQ(db.size(), 0u);
}

// --- Module PD with the what-if probe ------------------------------------------

class PlanChangeWorkflowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS6IndexDrop, {});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static ScenarioOutput* scenario_;
};

ScenarioOutput* PlanChangeWorkflowTest::scenario_ = nullptr;

TEST_F(PlanChangeWorkflowTest, DetectsAndExplainsPlanChange) {
  SymptomsDb symptoms = SymptomsDb::MakeDefault();
  Workflow workflow(scenario_->MakeContext(), WorkflowConfig{}, &symptoms);
  Result<DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->pd.plans_differ);
  ASSERT_EQ(report->pd.candidates.size(), 1u);
  EXPECT_EQ(report->pd.candidates[0].event.type, EventType::kIndexDropped);
  ASSERT_TRUE(report->pd.candidates[0].could_explain.has_value());
  EXPECT_TRUE(*report->pd.candidates[0].could_explain);
  ASSERT_FALSE(report->causes.empty());
  EXPECT_EQ(report->causes.front().type, RootCauseType::kPlanChange);
  EXPECT_EQ(report->causes.front().band, ConfidenceBand::kHigh);
  EXPECT_NE(report->summary.find("explained by"), std::string::npos);
}

TEST_F(PlanChangeWorkflowTest, WithoutProbeCandidateStaysUnverified) {
  DiagnosisContext ctx = scenario_->MakeContext();
  ctx.plan_whatif_probe = nullptr;
  Result<PdResult> pd = RunPlanDiff(ctx);
  ASSERT_TRUE(pd.ok());
  EXPECT_TRUE(pd->plans_differ);
  ASSERT_EQ(pd->candidates.size(), 1u);
  EXPECT_FALSE(pd->candidates[0].could_explain.has_value());
}

}  // namespace
}  // namespace diads::diag
