// Unit tests for the engine's per-tenant weighted fair queue: DRR
// dispatch order, share-based admission, priority headroom, deadline
// shedding, shutdown draining, and the FIFO fallback the fairness bench
// compares against. FairQueue is exercised directly (single-threaded, as
// ThreadPool drives it under its lock) plus through ThreadPool for the
// cross-thread admission/backpressure contract. Run under TSan to vet
// the pool-level tests.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/fair_queue.h"
#include "engine/thread_pool.h"

namespace diads::engine {
namespace {

using Clock = std::chrono::steady_clock;

QueueTask Task(const std::string& tenant, double cost = 1.0,
               RequestPriority priority = RequestPriority::kNormal) {
  QueueTask task;
  task.run = [] {};
  task.tenant = tenant;
  task.cost = cost;
  task.priority = priority;
  return task;
}

/// Pushes (admission-checked) and returns whether it was admitted.
bool PushThrough(FairQueue& queue, QueueTask task) {
  const AdmissionResult result = queue.Admit(task);
  queue.RecordAdmission(task, result);
  if (result != AdmissionResult::kAdmitted) return false;
  queue.Push(std::move(task));
  return true;
}

/// Drains the queue, returning the dispatch order as tenant tags.
std::vector<std::string> DrainOrder(FairQueue& queue) {
  std::vector<std::string> order;
  std::vector<QueueTask> shed;
  QueueTask task;
  while (queue.Pop(&task, Clock::now(), &shed)) order.push_back(task.tenant);
  EXPECT_TRUE(shed.empty());
  return order;
}

// --- DRR dispatch ------------------------------------------------------------

TEST(FairQueueTest, InterleavesTenantsInsteadOfFifo) {
  FairQueue queue(FairnessOptions{}, /*cost_capacity=*/100);
  // A flood of 6 from tenant "a" arrives before 2 each from "b" and "c".
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(PushThrough(queue, Task("a")));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(PushThrough(queue, Task("b")));
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(PushThrough(queue, Task("c")));

  const std::vector<std::string> order = DrainOrder(queue);
  ASSERT_EQ(order.size(), 10u);
  // Round-robin: all of b's and c's work overtakes a's flood tail. By the
  // time 6 tasks have dispatched, every b and c task is out.
  size_t bc_done = 0;
  for (size_t i = 0; i < 6; ++i) {
    if (order[i] != "a") ++bc_done;
  }
  EXPECT_EQ(bc_done, 4u) << "victims did not overtake the flood";
  // Those overtakes are visible as starvation_avoided.
  EXPECT_GT(queue.counters().starvation_avoided, 0u);
  EXPECT_EQ(queue.counters().dispatched, 10u);
}

TEST(FairQueueTest, WeightsScaleDispatchRate) {
  FairnessOptions options;
  options.tenant_weights["heavy"] = 3.0;
  FairQueue queue(options, /*cost_capacity=*/100);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(PushThrough(queue, Task("heavy")));
    ASSERT_TRUE(PushThrough(queue, Task("light")));
  }
  const std::vector<std::string> order = DrainOrder(queue);
  // In the first 8 dispatches the weight-3 tenant should get ~3x the
  // weight-1 tenant's slots.
  size_t heavy = 0;
  for (size_t i = 0; i < 8; ++i) heavy += order[i] == "heavy" ? 1 : 0;
  EXPECT_GE(heavy, 6u);
  EXPECT_LT(heavy, 8u);  // The light tenant still progresses.
}

TEST(FairQueueTest, LargeCostTaskEventuallyDispatches) {
  // A head task costing far more than quantum * weight must accumulate
  // deficit over multiple ring visits and still come out; Pop must never
  // report empty-with-work-queued (that would strand a worker).
  FairQueue queue(FairnessOptions{}, /*cost_capacity=*/100);
  ASSERT_TRUE(PushThrough(queue, Task("big", /*cost=*/25.0)));
  ASSERT_TRUE(PushThrough(queue, Task("small", /*cost=*/1.0)));
  const std::vector<std::string> order = DrainOrder(queue);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "small");  // Cheap work first...
  EXPECT_EQ(order[1], "big");    // ...but the expensive task is not lost.
  EXPECT_TRUE(queue.empty());
}

// --- Admission ---------------------------------------------------------------

TEST(FairQueueTest, TenantShareCapsAdmission) {
  FairnessOptions options;
  options.tenant_share_fraction = 0.5;
  FairQueue queue(options, /*cost_capacity=*/10);  // Per-tenant cap: 5.
  int admitted = 0, rejected = 0;
  for (int i = 0; i < 8; ++i) {
    PushThrough(queue, Task("flood")) ? ++admitted : ++rejected;
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(rejected, 3);
  // Another tenant's share is unaffected by the flood's rejections.
  EXPECT_TRUE(PushThrough(queue, Task("victim")));
  EXPECT_EQ(queue.counters().rejected_share, 3u);
  EXPECT_EQ(queue.counters().admitted, 6u);
}

TEST(FairQueueTest, PriorityHeadroomStretchesAndSqueezesShare) {
  FairnessOptions options;
  options.tenant_share_fraction = 0.5;
  options.low_priority_headroom = 0.5;
  options.high_priority_headroom = 2.0;
  FairQueue queue(options, /*cost_capacity=*/8);  // Normal cap: 4.
  // Low priority: cap 2.
  EXPECT_TRUE(PushThrough(queue, Task("t", 1, RequestPriority::kLow)));
  EXPECT_TRUE(PushThrough(queue, Task("t", 1, RequestPriority::kLow)));
  EXPECT_FALSE(PushThrough(queue, Task("t", 1, RequestPriority::kLow)));
  // Normal priority still has room up to 4.
  EXPECT_TRUE(PushThrough(queue, Task("t", 1)));
  EXPECT_TRUE(PushThrough(queue, Task("t", 1)));
  EXPECT_FALSE(PushThrough(queue, Task("t", 1)));
  // High priority bursts past the normal share, up to 8.
  EXPECT_TRUE(PushThrough(queue, Task("t", 1, RequestPriority::kHigh)));
}

TEST(FairQueueTest, TinyQueueStillAdmitsOneRequestPerTenant) {
  FairnessOptions options;
  options.tenant_share_fraction = 0.1;
  FairQueue queue(options, /*cost_capacity=*/2);  // Raw cap 0.2 -> floor.
  EXPECT_TRUE(PushThrough(queue, Task("t")));
  // And an expensive request is never unadmittable on cost alone.
  EXPECT_TRUE(PushThrough(queue, Task("u", /*cost=*/50.0)));
}

TEST(FairQueueTest, UntaggedRequestsBypassShareAdmission) {
  FairnessOptions options;
  options.tenant_share_fraction = 0.1;
  FairQueue queue(options, /*cost_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(PushThrough(queue, Task("")));  // Global capacity only.
  }
}

TEST(FairQueueTest, FifoModeAdmitsAndDispatchesInArrivalOrder) {
  FairnessOptions options;
  options.enabled = false;
  FairQueue queue(options, /*cost_capacity=*/4);
  // No share admission in FIFO mode...
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(PushThrough(queue, Task("flood")));
  ASSERT_TRUE(PushThrough(queue, Task("victim")));
  // ...and dispatch is strict arrival order: the victim waits out the
  // entire flood (the regime bench_fairness quantifies).
  const std::vector<std::string> order = DrainOrder(queue);
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.back(), "victim");
  EXPECT_EQ(queue.counters().starvation_avoided, 0u);
}

// --- Deadline shedding -------------------------------------------------------

TEST(FairQueueTest, ExpiredTasksAreShedAtPop) {
  FairQueue queue(FairnessOptions{}, /*cost_capacity=*/100);
  const Clock::time_point now = Clock::now();

  QueueTask expired = Task("t");
  expired.has_deadline = true;
  expired.deadline = now - std::chrono::milliseconds(1);
  QueueTask live = Task("t");
  live.has_deadline = true;
  live.deadline = now + std::chrono::hours(1);

  ASSERT_TRUE(PushThrough(queue, std::move(expired)));
  ASSERT_TRUE(PushThrough(queue, std::move(live)));

  QueueTask out;
  std::vector<QueueTask> shed;
  ASSERT_TRUE(queue.Pop(&out, now, &shed));
  ASSERT_EQ(shed.size(), 1u);  // The expired head was dropped, not run.
  EXPECT_TRUE(out.has_deadline);
  EXPECT_GT(out.deadline.time_since_epoch().count(),
            now.time_since_epoch().count());
  EXPECT_EQ(queue.counters().shed_deadline, 1u);
  EXPECT_EQ(queue.counters().dispatched, 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueueTest, PopOnAllExpiredQueueReturnsFalseAndShedsAll) {
  FairQueue queue(FairnessOptions{}, /*cost_capacity=*/100);
  const Clock::time_point now = Clock::now();
  for (int i = 0; i < 3; ++i) {
    QueueTask task = Task("t");
    task.has_deadline = true;
    task.deadline = now - std::chrono::milliseconds(1);
    ASSERT_TRUE(PushThrough(queue, std::move(task)));
  }
  QueueTask out;
  std::vector<QueueTask> shed;
  EXPECT_FALSE(queue.Pop(&out, now, &shed));
  EXPECT_EQ(shed.size(), 3u);
  EXPECT_EQ(queue.counters().shed_deadline, 3u);
  EXPECT_TRUE(queue.empty());
}

// --- Shutdown / accounting ---------------------------------------------------

TEST(FairQueueTest, DrainAllReturnsEverythingAndCounts) {
  FairQueue queue(FairnessOptions{}, /*cost_capacity=*/100);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(PushThrough(queue, Task("a")));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(PushThrough(queue, Task("b")));
  std::vector<QueueTask> drained = queue.DrainAll();
  EXPECT_EQ(drained.size(), 7u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.total_cost(), 0.0);
  EXPECT_EQ(queue.counters().cancelled_shutdown, 7u);
}

TEST(FairQueueTest, TenantRowsTrackPerTenantOutcomes) {
  FairnessOptions options;
  options.tenant_share_fraction = 0.5;
  FairQueue queue(options, /*cost_capacity=*/4);  // Per-tenant cap: 2.
  for (int i = 0; i < 4; ++i) PushThrough(queue, Task("flood"));
  PushThrough(queue, Task("victim"));
  (void)DrainOrder(queue);

  const std::vector<TenantAdmissionRow> rows = queue.TenantRows();
  ASSERT_EQ(rows.size(), 2u);  // Sorted by tag: flood, victim.
  EXPECT_EQ(rows[0].tenant, "flood");
  EXPECT_EQ(rows[0].submitted, 4u);
  EXPECT_EQ(rows[0].admitted, 2u);
  EXPECT_EQ(rows[0].rejected_share, 2u);
  EXPECT_EQ(rows[0].dispatched, 2u);
  EXPECT_EQ(rows[1].tenant, "victim");
  EXPECT_EQ(rows[1].admitted, 1u);
  EXPECT_EQ(rows[1].rejected_share, 0u);
}

// --- Through ThreadPool ------------------------------------------------------

TEST(FairQueueThreadPoolTest, ShareRejectionIsImmediateAndTyped) {
  ThreadPool::Options options;
  options.workers = 1;
  options.queue_capacity = 8;  // Per-tenant share cap: 4.
  ThreadPool pool(options);

  // Wedge the single worker so queued work stays queued.
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());

  // The flood fills its share; the next submit is refused immediately
  // (no blocking on global capacity, which still has room).
  int admitted = 0;
  Status refused;
  for (int i = 0; i < 6; ++i) {
    QueueTask task = Task("flood");
    task.run = [&ran] { ++ran; };
    Status status = pool.Submit(std::move(task));
    if (status.ok()) {
      ++admitted;
    } else {
      refused = status;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // A victim tenant still gets in.
  QueueTask victim = Task("victim");
  std::atomic<bool> victim_ran{false};
  victim.run = [&victim_ran] { victim_ran = true; };
  EXPECT_TRUE(pool.Submit(std::move(victim)).ok());

  release = true;
  pool.Drain();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_TRUE(victim_ran.load());
  EXPECT_EQ(pool.QueueCounters().rejected_share, 2u);
}

TEST(FairQueueThreadPoolTest, ExpiredWorkIsCancelledNotRun) {
  ThreadPool::Options options;
  options.workers = 1;
  options.queue_capacity = 16;
  ThreadPool pool(options);

  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&] {
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());

  // Queued behind the wedge with an already-tight deadline.
  std::atomic<int> ran{0}, shed{0};
  for (int i = 0; i < 3; ++i) {
    QueueTask task = Task("t");
    task.run = [&ran] { ++ran; };
    task.cancel = [&shed](const Status& status) {
      EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
      ++shed;
    };
    task.has_deadline = true;
    task.deadline = Clock::now() + std::chrono::milliseconds(20);
    ASSERT_TRUE(pool.Submit(std::move(task)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release = true;
  pool.Drain();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 0);  // No worker time was spent on expired work.
  EXPECT_EQ(shed.load(), 3);
  EXPECT_EQ(pool.QueueCounters().shed_deadline, 3u);
}

TEST(FairQueueThreadPoolTest, ShutdownCancelsWithTypedStatus) {
  ThreadPool::Options options;
  options.workers = 1;
  options.queue_capacity = 16;
  ThreadPool pool(options);

  std::atomic<bool> wedged{false}, release{false};
  ASSERT_TRUE(pool.Submit([&] {
                    wedged = true;
                    while (!release.load()) std::this_thread::yield();
                  })
                  .ok());
  // Wait until the worker actually holds the wedge — otherwise it may
  // still be queued when Shutdown drains, and would count as a sixth
  // shutdown cancel.
  while (!wedged.load()) std::this_thread::yield();
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 5; ++i) {
    QueueTask task = Task("t");
    task.cancel = [&cancelled](const Status& status) {
      EXPECT_EQ(status.code(), StatusCode::kShutdown);
      ++cancelled;
    };
    ASSERT_TRUE(pool.Submit(std::move(task)).ok());
  }
  // Shutdown drains the queue (cancelling all 5, which are guaranteed
  // still queued: the only worker is wedged) before joining; release the
  // wedge once the cancels have landed so the join can complete.
  std::thread shutter([&pool] { pool.Shutdown(); });
  while (cancelled.load() < 5) std::this_thread::yield();
  release = true;
  shutter.join();
  EXPECT_EQ(cancelled.load(), 5);
  EXPECT_EQ(pool.QueueCounters().cancelled_shutdown, 5u);
}

}  // namespace
}  // namespace diads::engine
