// Testbed construction knobs must thread through uniformly.
//
// buffer_pool_mb and scale_factor used to be silently ignored on some
// paths (the fixture plan's estimates were hard-wired to scale factor 1,
// so a scaled testbed ran scale-1 workloads). These tests pin the
// contract on BOTH backends: every knob reaches the catalog, the fixture
// plan, the buffer pool, the backend's executor translation — and,
// observably, the simulated run times.
#include <gtest/gtest.h>

#include "db/run_record.h"
#include "workload/scenario.h"
#include "workload/testbed.h"

namespace diads {
namespace {

using workload::BuildFigure1Testbed;
using workload::Testbed;
using workload::TestbedOptions;

class TestbedKnobsTest : public ::testing::TestWithParam<db::BackendKind> {
 protected:
  std::unique_ptr<Testbed> Build(TestbedOptions options) {
    options.backend = GetParam();
    Result<std::unique_ptr<Testbed>> tb = BuildFigure1Testbed(options);
    EXPECT_TRUE(tb.ok()) << tb.status().ToString();
    return std::move(*tb);
  }

  static double MeanRunMs(Testbed& tb, int count) {
    double total = 0;
    for (int i = 0; i < count; ++i) {
      Result<int> run = tb.RunQ2(Hours(8) + i * Minutes(30));
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      total += static_cast<double>((*tb.runs.FindRun(*run))->duration_ms());
    }
    return total / count;
  }
};

TEST_P(TestbedKnobsTest, ScaleFactorReachesCatalogAndFixturePlan) {
  auto sf1 = Build({});
  TestbedOptions scaled;
  scaled.scale_factor = 2.0;
  auto sf2 = Build(scaled);

  // Catalog statistics scale.
  const double rows1 =
      (*sf1->catalog.FindTable("partsupp"))->actual_stats.row_count;
  const double rows2 =
      (*sf2->catalog.FindTable("partsupp"))->actual_stats.row_count;
  EXPECT_NEAR(rows2, 2.0 * rows1, 1.0);

  // The fixture plan's estimates scale with it — structure unchanged.
  EXPECT_EQ(sf1->paper_plan->Fingerprint(), sf2->paper_plan->Fingerprint());
  double pages1 = 0, pages2 = 0;
  for (const db::PlanOp& op : sf1->paper_plan->ops()) pages1 += op.est_pages;
  for (const db::PlanOp& op : sf2->paper_plan->ops()) pages2 += op.est_pages;
  EXPECT_GT(pages2, 1.8 * pages1);

  // And the workload actually grows: scale-2 runs do more work.
  EXPECT_GT(MeanRunMs(*sf2, 3), 1.2 * MeanRunMs(*sf1, 3));
}

TEST_P(TestbedKnobsTest, BufferPoolSizeReachesPoolBackendAndRuns) {
  TestbedOptions small;
  small.buffer_pool_mb = 16.0;
  TestbedOptions large;
  large.buffer_pool_mb = 2048.0;
  auto tb_small = Build(small);
  auto tb_large = Build(large);

  EXPECT_EQ(tb_small->buffer_pool.size_mb(), 16.0);
  EXPECT_EQ(tb_large->buffer_pool.size_mb(), 2048.0);

  // The backend's executor translation carries the same value — one knob,
  // one truth, either engine.
  EXPECT_EQ(tb_small->backend->ExecutorParams().buffer_pool_mb, 16.0);
  EXPECT_EQ(tb_large->backend->ExecutorParams().buffer_pool_mb, 2048.0);
  EXPECT_EQ(*tb_small->backend->GetParam("buffer_pool_mb"), 16.0);

  // Partsupp goes from mostly-missing to fully cached.
  EXPECT_LT(tb_small->buffer_pool.HitRate("partsupp") + 0.05,
            tb_large->buffer_pool.HitRate("partsupp"));

  // A starved cache means real I/O: runs visibly slower.
  EXPECT_GT(MeanRunMs(*tb_small, 3), 1.2 * MeanRunMs(*tb_large, 3));
}

TEST_P(TestbedKnobsTest, ScenarioOptionsCarryTheKnobs) {
  // The scenario layer forwards its TestbedOptions verbatim (only the seed
  // is overridden), so scenario-level experiments can sweep these knobs.
  workload::ScenarioOptions options;
  options.testbed.backend = GetParam();
  options.testbed.scale_factor = 1.5;
  options.testbed.buffer_pool_mb = 48.0;
  options.satisfactory_runs = 2;
  options.unsatisfactory_runs = 2;
  Result<workload::ScenarioOutput> out = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, options);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->testbed->options.scale_factor, 1.5);
  EXPECT_EQ(out->testbed->buffer_pool.size_mb(), 48.0);
  EXPECT_NEAR(
      (*out->testbed->catalog.FindTable("partsupp"))->actual_stats.row_count,
      1.5 * 800000, 1.0);
  EXPECT_EQ(out->testbed->backend->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, TestbedKnobsTest,
    ::testing::Values(db::BackendKind::kPostgres, db::BackendKind::kMysql),
    [](const ::testing::TestParamInfo<db::BackendKind>& info) {
      return std::string(db::BackendKindName(info.param));
    });

}  // namespace
}  // namespace diads
