// Tests for the symptom expression language: lexing/parsing (including
// error positions), boolean structure, and name-resolution helpers.
// Predicate evaluation against real module results is covered by
// diag_modules_test and workflow_test; here we exercise the language.
#include <gtest/gtest.h>

#include "diads/symptom_expr.h"

namespace diads::diag {
namespace {

TEST(SymptomParserTest, SimpleCall) {
  Result<SymptomExpr> expr = ParseSymptomExpr("op_anomaly_exists()");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kCall);
  EXPECT_EQ(expr->callee, "op_anomaly_exists");
  EXPECT_TRUE(expr->args.empty());
  EXPECT_TRUE(expr->children.empty());
}

TEST(SymptomParserTest, NamedArguments) {
  Result<SymptomExpr> expr =
      ParseSymptomExpr("metric_anomaly(component=V1, metric=writeTime)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->args.at("component"), "V1");
  EXPECT_EQ(expr->args.at("metric"), "writeTime");
}

TEST(SymptomParserTest, VolumeVariable) {
  Result<SymptomExpr> expr =
      ParseSymptomExpr("op_anomaly_majority(volume=$V)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->args.at("volume"), "$V");
}

TEST(SymptomParserTest, NotAndOrPrecedence) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "not plan_changed() and op_anomaly_exists() or lock_wait_high()");
  ASSERT_TRUE(expr.ok());
  // Or binds loosest: ((not pc) and oae) or lwh.
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kOr);
  ASSERT_EQ(expr->children.size(), 2u);
  EXPECT_EQ(expr->children[0].kind, SymptomExpr::Kind::kAnd);
  EXPECT_EQ(expr->children[0].children[0].kind, SymptomExpr::Kind::kNot);
  EXPECT_EQ(expr->children[1].callee, "lock_wait_high");
}

TEST(SymptomParserTest, Parentheses) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "not (plan_changed() or lock_wait_high())");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kNot);
  EXPECT_EQ(expr->children[0].kind, SymptomExpr::Kind::kOr);
}

TEST(SymptomParserTest, TemporalBefore) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "before(event(type=VolumeCreated), event(type=VolumePerfDegraded))");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->callee, "before");
  ASSERT_EQ(expr->children.size(), 2u);
  EXPECT_EQ(expr->children[0].callee, "event");
  EXPECT_EQ(expr->children[0].args.at("type"), "VolumeCreated");
  EXPECT_EQ(expr->children[1].args.at("type"), "VolumePerfDegraded");
}

TEST(SymptomParserTest, RoundTripToString) {
  const std::string text =
      "op_anomaly_majority(volume=$V) and not record_count_change()";
  Result<SymptomExpr> expr = ParseSymptomExpr(text);
  ASSERT_TRUE(expr.ok());
  // Reparse the rendering: same structure.
  Result<SymptomExpr> again = ParseSymptomExpr(expr->ToString());
  ASSERT_TRUE(again.ok()) << expr->ToString();
  EXPECT_EQ(again->ToString(), expr->ToString());
}

TEST(SymptomParserTest, Errors) {
  // Missing parens.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed() xyz()").ok());
  // Unbalanced.
  EXPECT_FALSE(ParseSymptomExpr("(plan_changed()").ok());
  // Bad characters.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed() & other()").ok());
  // Dangling argument.
  EXPECT_FALSE(ParseSymptomExpr("event(type=)").ok());
  // Empty input.
  EXPECT_FALSE(ParseSymptomExpr("").ok());
}

TEST(SymptomParserTest, ErrorsMentionPosition) {
  Result<SymptomExpr> expr = ParseSymptomExpr("plan_changed() !");
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("position"), std::string::npos);
}

TEST(MetricShortNameTest, RoundTrip) {
  EXPECT_EQ(ParseMetricShortName("writeTime").value(),
            monitor::MetricId::kVolPhysWriteTimeMs);
  EXPECT_EQ(ParseMetricShortName("writeIO").value(),
            monitor::MetricId::kVolPhysWriteOps);
  EXPECT_EQ(ParseMetricShortName("lockWait").value(),
            monitor::MetricId::kDbLockWaitMs);
  // Full Figure-4 names also resolve.
  EXPECT_EQ(ParseMetricShortName("Buffer Hits").value(),
            monitor::MetricId::kDbBufferHits);
  EXPECT_FALSE(ParseMetricShortName("bogus").ok());
}

TEST(EventTypeNameTest, RoundTripAll) {
  for (EventType type :
       {EventType::kVolumeCreated, EventType::kVolumeDeleted,
        EventType::kZoningChanged, EventType::kLunMappingChanged,
        EventType::kDiskFailed, EventType::kDiskRecovered,
        EventType::kRaidRebuildStarted, EventType::kRaidRebuildCompleted,
        EventType::kExternalWorkloadStarted,
        EventType::kExternalWorkloadStopped, EventType::kVolumePerfDegraded,
        EventType::kSubsystemHighLoad, EventType::kIndexCreated,
        EventType::kIndexDropped, EventType::kDbParamChanged,
        EventType::kTableStatsChanged, EventType::kDmlBatch,
        EventType::kTableLockContention}) {
    Result<EventType> round = ParseEventTypeName(EventTypeName(type));
    ASSERT_TRUE(round.ok()) << EventTypeName(type);
    EXPECT_EQ(*round, type);
  }
  EXPECT_FALSE(ParseEventTypeName("NotAnEvent").ok());
}

}  // namespace
}  // namespace diads::diag
