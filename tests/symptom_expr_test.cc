// Tests for the symptom expression language: lexing/parsing (including
// error positions), boolean structure, and name-resolution helpers.
// Predicate evaluation against real module results is covered by
// diag_modules_test and workflow_test; here we exercise the language.
#include <gtest/gtest.h>

#include "diads/symptom_expr.h"
#include "diads/symptom_index.h"
#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::diag {
namespace {

TEST(SymptomParserTest, SimpleCall) {
  Result<SymptomExpr> expr = ParseSymptomExpr("op_anomaly_exists()");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kCall);
  EXPECT_EQ(expr->callee, "op_anomaly_exists");
  EXPECT_TRUE(expr->args.empty());
  EXPECT_TRUE(expr->children.empty());
}

TEST(SymptomParserTest, NamedArguments) {
  Result<SymptomExpr> expr =
      ParseSymptomExpr("metric_anomaly(component=V1, metric=writeTime)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->args.at("component"), "V1");
  EXPECT_EQ(expr->args.at("metric"), "writeTime");
}

TEST(SymptomParserTest, VolumeVariable) {
  Result<SymptomExpr> expr =
      ParseSymptomExpr("op_anomaly_majority(volume=$V)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->args.at("volume"), "$V");
}

TEST(SymptomParserTest, NotAndOrPrecedence) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "not plan_changed() and op_anomaly_exists() or lock_wait_high()");
  ASSERT_TRUE(expr.ok());
  // Or binds loosest: ((not pc) and oae) or lwh.
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kOr);
  ASSERT_EQ(expr->children.size(), 2u);
  EXPECT_EQ(expr->children[0].kind, SymptomExpr::Kind::kAnd);
  EXPECT_EQ(expr->children[0].children[0].kind, SymptomExpr::Kind::kNot);
  EXPECT_EQ(expr->children[1].callee, "lock_wait_high");
}

TEST(SymptomParserTest, Parentheses) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "not (plan_changed() or lock_wait_high())");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->kind, SymptomExpr::Kind::kNot);
  EXPECT_EQ(expr->children[0].kind, SymptomExpr::Kind::kOr);
}

TEST(SymptomParserTest, TemporalBefore) {
  Result<SymptomExpr> expr = ParseSymptomExpr(
      "before(event(type=VolumeCreated), event(type=VolumePerfDegraded))");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->callee, "before");
  ASSERT_EQ(expr->children.size(), 2u);
  EXPECT_EQ(expr->children[0].callee, "event");
  EXPECT_EQ(expr->children[0].args.at("type"), "VolumeCreated");
  EXPECT_EQ(expr->children[1].args.at("type"), "VolumePerfDegraded");
}

TEST(SymptomParserTest, RoundTripToString) {
  const std::string text =
      "op_anomaly_majority(volume=$V) and not record_count_change()";
  Result<SymptomExpr> expr = ParseSymptomExpr(text);
  ASSERT_TRUE(expr.ok());
  // Reparse the rendering: same structure.
  Result<SymptomExpr> again = ParseSymptomExpr(expr->ToString());
  ASSERT_TRUE(again.ok()) << expr->ToString();
  EXPECT_EQ(again->ToString(), expr->ToString());
}

TEST(SymptomParserTest, Errors) {
  // Missing parens.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed() xyz()").ok());
  // Unbalanced.
  EXPECT_FALSE(ParseSymptomExpr("(plan_changed()").ok());
  // Bad characters.
  EXPECT_FALSE(ParseSymptomExpr("plan_changed() & other()").ok());
  // Dangling argument.
  EXPECT_FALSE(ParseSymptomExpr("event(type=)").ok());
  // Empty input.
  EXPECT_FALSE(ParseSymptomExpr("").ok());
}

TEST(SymptomParserTest, ErrorsMentionPosition) {
  Result<SymptomExpr> expr = ParseSymptomExpr("plan_changed() !");
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("position"), std::string::npos);
}

TEST(MetricShortNameTest, RoundTrip) {
  EXPECT_EQ(ParseMetricShortName("writeTime").value(),
            monitor::MetricId::kVolPhysWriteTimeMs);
  EXPECT_EQ(ParseMetricShortName("writeIO").value(),
            monitor::MetricId::kVolPhysWriteOps);
  EXPECT_EQ(ParseMetricShortName("lockWait").value(),
            monitor::MetricId::kDbLockWaitMs);
  // Full Figure-4 names also resolve.
  EXPECT_EQ(ParseMetricShortName("Buffer Hits").value(),
            monitor::MetricId::kDbBufferHits);
  EXPECT_FALSE(ParseMetricShortName("bogus").ok());
}

TEST(EventTypeNameTest, RoundTripAll) {
  for (EventType type :
       {EventType::kVolumeCreated, EventType::kVolumeDeleted,
        EventType::kZoningChanged, EventType::kLunMappingChanged,
        EventType::kDiskFailed, EventType::kDiskRecovered,
        EventType::kRaidRebuildStarted, EventType::kRaidRebuildCompleted,
        EventType::kExternalWorkloadStarted,
        EventType::kExternalWorkloadStopped, EventType::kVolumePerfDegraded,
        EventType::kSubsystemHighLoad, EventType::kIndexCreated,
        EventType::kIndexDropped, EventType::kDbParamChanged,
        EventType::kTableStatsChanged, EventType::kDmlBatch,
        EventType::kTableLockContention}) {
    Result<EventType> round = ParseEventTypeName(EventTypeName(type));
    ASSERT_TRUE(round.ok()) << EventTypeName(type);
    EXPECT_EQ(*round, type);
  }
  EXPECT_FALSE(ParseEventTypeName("NotAnEvent").ok());
}

// The indexed lookup path (SymptomIndex) must answer every predicate of
// the default symptoms database exactly as the linear-scan path does, for
// every volume binding, over real module results.
TEST(SymptomIndexTest, IndexedEvaluationMatchesLinearScans) {
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS4ConcurrentDbSan, {});
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const DiagnosisContext ctx = scenario->MakeContext();
  const WorkflowConfig config;
  const SymptomsDb db = SymptomsDb::MakeDefault();
  Workflow workflow(ctx, config, &db);
  Result<DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const SymptomIndex index =
      SymptomIndex::Build(ctx, config, report->co, report->da);
  std::vector<ComponentId> bindings = ctx.apg->PlanVolumes();
  bindings.push_back(ComponentId{});  // Unbound evaluation too.
  int compared = 0;
  for (const RootCauseEntry& entry : db.entries()) {
    for (ComponentId binding : bindings) {
      if (entry.bind_volumes != binding.valid()) continue;
      SymptomEvalContext eval;
      eval.ctx = &ctx;
      eval.config = &config;
      eval.pd = &report->pd;
      eval.co = &report->co;
      eval.da = &report->da;
      eval.cr = &report->cr;
      eval.bound_volume = binding;
      for (const Condition& condition : entry.conditions) {
        eval.index = nullptr;
        Result<bool> linear = EvaluateSymptom(condition.parsed, eval);
        eval.index = &index;
        Result<bool> indexed = EvaluateSymptom(condition.parsed, eval);
        ASSERT_EQ(linear.ok(), indexed.ok()) << condition.expr_text;
        if (!linear.ok()) continue;
        EXPECT_EQ(*linear, *indexed)
            << entry.name << ": " << condition.expr_text;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 50);  // The default DB exercises every predicate.
}

}  // namespace
}  // namespace diads::diag
