// Unit and golden tests for the baseline-model cache: LRU/sharding
// mechanics, generation-driven invalidation, the GetOrFitBaseline helper,
// and the digest contract — a workflow diagnosing with a shared cache
// produces byte-identical reports to one without, including after
// Append-driven invalidation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "diads/model_cache.h"
#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::diag {
namespace {

using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOptions;
using workload::ScenarioOutput;

BaselineModelKey KeyFor(uint64_t series, uint64_t provenance = 1) {
  BaselineModelKey key;
  key.source = reinterpret_cast<const void*>(0x1000);
  key.series = series;
  key.window_begin = 0;
  key.window_end = 100;
  key.config_fingerprint = 7;
  key.provenance_fingerprint = provenance;
  return key;
}

ExtractedBaseline MakeBaseline(std::vector<double> values, int missing = 0) {
  ExtractedBaseline out;
  out.values = std::move(values);
  out.missing = missing;
  return out;
}

TEST(BaselineModelCacheTest, MissThenHitReturnsSameModel) {
  BaselineModelCache cache;
  const BaselineModelKey key = KeyFor(1);
  int extractions = 0;
  const auto extract = [&extractions] {
    ++extractions;
    return MakeBaseline({1, 2, 3, 4, 5}, 2);
  };
  Result<CachedBaseline> first = GetOrFitBaseline(
      &cache, key, /*generation=*/5, stats::BandwidthRule::kSilverman,
      extract);
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->model, nullptr);
  EXPECT_EQ(first->missing, 2);
  EXPECT_EQ(extractions, 1);

  Result<CachedBaseline> second = GetOrFitBaseline(
      &cache, key, /*generation=*/5, stats::BandwidthRule::kSilverman,
      extract);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(extractions, 1);  // Served from cache: no re-extraction.
  EXPECT_EQ(second->model.get(), first->model.get());
  EXPECT_EQ(second->values.get(), first->values.get());
  EXPECT_EQ(second->missing, 2);

  const BaselineModelCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(BaselineModelCacheTest, GenerationMismatchInvalidates) {
  BaselineModelCache cache;
  const BaselineModelKey key = KeyFor(1);
  double value = 10;
  const auto extract = [&value] {
    return MakeBaseline({value, value + 1, value + 2});
  };
  Result<CachedBaseline> first = GetOrFitBaseline(
      &cache, key, /*generation=*/1, stats::BandwidthRule::kSilverman,
      extract);
  ASSERT_TRUE(first.ok());
  // The source advanced (an Append): same key, new generation.
  value = 50;
  Result<CachedBaseline> second = GetOrFitBaseline(
      &cache, key, /*generation=*/2, stats::BandwidthRule::kSilverman,
      extract);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->model.get(), first->model.get());
  EXPECT_EQ(second->values->front(), 50);
  const BaselineModelCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.invalidations, 1u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.entries, 1u);  // Replaced, not duplicated.
  // And the refreshed entry hits at the new generation.
  Result<CachedBaseline> third = GetOrFitBaseline(
      &cache, key, /*generation=*/2, stats::BandwidthRule::kSilverman,
      extract);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->model.get(), second->model.get());
}

TEST(BaselineModelCacheTest, DistinctKeysDistinctEntries) {
  BaselineModelCache cache;
  const auto extract = [] { return MakeBaseline({1, 2, 3}); };
  ASSERT_TRUE(GetOrFitBaseline(&cache, KeyFor(1), 1,
                               stats::BandwidthRule::kSilverman, extract)
                  .ok());
  ASSERT_TRUE(GetOrFitBaseline(&cache, KeyFor(2), 1,
                               stats::BandwidthRule::kSilverman, extract)
                  .ok());
  BaselineModelKey other_provenance = KeyFor(1, /*provenance=*/99);
  ASSERT_TRUE(GetOrFitBaseline(&cache, other_provenance, 1,
                               stats::BandwidthRule::kSilverman, extract)
                  .ok());
  EXPECT_EQ(cache.TotalCounters().entries, 3u);
}

TEST(BaselineModelCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  BaselineModelCache cache(BaselineModelCache::Options{/*capacity=*/4,
                                                       /*shards=*/1});
  const auto extract = [] { return MakeBaseline({1, 2, 3}); };
  for (uint64_t series = 0; series < 6; ++series) {
    ASSERT_TRUE(GetOrFitBaseline(&cache, KeyFor(series), 1,
                                 stats::BandwidthRule::kSilverman, extract)
                    .ok());
  }
  const BaselineModelCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.entries, 4u);
  EXPECT_EQ(counters.evictions, 2u);
}

TEST(BaselineModelCacheTest, SubTwoSampleBaselinesAreNotCached) {
  BaselineModelCache cache;
  int extractions = 0;
  const auto extract = [&extractions] {
    ++extractions;
    return MakeBaseline({42.0}, 3);
  };
  Result<CachedBaseline> first = GetOrFitBaseline(
      &cache, KeyFor(1), 1, stats::BandwidthRule::kSilverman, extract);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->model, nullptr);  // Below the fit threshold.
  EXPECT_EQ(first->missing, 3);
  ASSERT_EQ(first->values->size(), 1u);
  Result<CachedBaseline> second = GetOrFitBaseline(
      &cache, KeyFor(1), 1, stats::BandwidthRule::kSilverman, extract);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(extractions, 2);  // Re-extracted: skips are not cached.
  EXPECT_EQ(cache.TotalCounters().entries, 0u);
}

TEST(BaselineModelCacheTest, NullCacheStillFits) {
  const auto extract = [] { return MakeBaseline({5, 6, 7, 8}); };
  Result<CachedBaseline> base = GetOrFitBaseline(
      nullptr, KeyFor(1), 1, stats::BandwidthRule::kSilverman, extract);
  ASSERT_TRUE(base.ok());
  ASSERT_NE(base->model, nullptr);
  EXPECT_EQ(base->model->sample_count(), 4u);
}

TEST(BaselineModelCacheTest, ConcurrentMixedAccessIsSafe) {
  BaselineModelCache cache(BaselineModelCache::Options{/*capacity=*/64,
                                                       /*shards=*/8});
  std::atomic<int> fits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &fits, t] {
      for (int i = 0; i < 200; ++i) {
        const uint64_t series = static_cast<uint64_t>((i + t) % 16);
        Result<CachedBaseline> base = GetOrFitBaseline(
            &cache, KeyFor(series), /*generation=*/1,
            stats::BandwidthRule::kSilverman, [&fits] {
              ++fits;
              return MakeBaseline({1, 2, 3, 4});
            });
        ASSERT_TRUE(base.ok());
        ASSERT_NE(base->model, nullptr);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const BaselineModelCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits + counters.misses, 800u);
  EXPECT_LE(counters.entries, 16u);
}

// --- The digest contract over a real scenario -------------------------------

class ModelCacheScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    symptoms_ = new SymptomsDb(SymptomsDb::MakeDefault());
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, ScenarioOptions{});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete symptoms_;
    scenario_ = nullptr;
    symptoms_ = nullptr;
  }

  static std::string DigestWithCache(BaselineModelCache* cache) {
    DiagnosisContext ctx = scenario_->MakeContext();
    ctx.model_cache = cache;
    Workflow workflow(std::move(ctx), WorkflowConfig{}, symptoms_);
    Result<DiagnosisReport> report = workflow.Diagnose();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return ReportDigest(*report);
  }

  static SymptomsDb* symptoms_;
  static ScenarioOutput* scenario_;
};

SymptomsDb* ModelCacheScenarioTest::symptoms_ = nullptr;
ScenarioOutput* ModelCacheScenarioTest::scenario_ = nullptr;

TEST_F(ModelCacheScenarioTest, CacheOnVsOffDigestIdentical) {
  const std::string without = DigestWithCache(nullptr);
  BaselineModelCache cache;
  const std::string cold = DigestWithCache(&cache);
  const BaselineModelCache::Counters after_cold = cache.TotalCounters();
  EXPECT_GT(after_cold.misses, 0u);
  const std::string warm = DigestWithCache(&cache);
  const BaselineModelCache::Counters after_warm = cache.TotalCounters();
  EXPECT_GT(after_warm.hits, 0u);
  EXPECT_EQ(cold, without);
  EXPECT_EQ(warm, without);
}

TEST_F(ModelCacheScenarioTest, AppendInvalidatesAndStaysIdentical) {
  // A private scenario instance: this test appends to its store.
  Result<ScenarioOutput> scenario =
      RunScenario(ScenarioId::kS2DualExternalContention, ScenarioOptions{});
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  BaselineModelCache cache;
  DiagnosisContext ctx = scenario->MakeContext();
  monitor::TimeSeriesStore* store = &scenario->testbed->store;
  ASSERT_EQ(ctx.store, store);

  ctx.model_cache = &cache;
  Workflow workflow(ctx, WorkflowConfig{}, symptoms_);
  Result<DiagnosisReport> first = workflow.Diagnose();
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // New monitoring samples arrive on every series the store knows (all
  // past each series' last timestamp, as a collector would append them).
  size_t appended = 0;
  const std::vector<ComponentId> components = [&] {
    std::vector<ComponentId> out;
    for (uint32_t v = 0; v < 4096; ++v) {
      const ComponentId candidate{v};
      if (!store->MetricsFor(candidate).empty()) out.push_back(candidate);
    }
    return out;
  }();
  for (ComponentId component : components) {
    for (monitor::MetricId metric : store->MetricsFor(component)) {
      const std::vector<monitor::Sample>& series =
          store->Series(component, metric);
      const SimTimeMs last = series.empty() ? 0 : series.back().time;
      ASSERT_TRUE(
          store->Append(component, metric, last + Minutes(5), 1.0).ok());
      ++appended;
    }
  }
  ASSERT_GT(appended, 0u);

  // Same diagnosis window, same runs: the metric models must be refit
  // (generation bumped), never served stale, and the post-append report
  // must equal a cache-less control over the same post-append store.
  const BaselineModelCache::Counters before = cache.TotalCounters();
  Result<DiagnosisReport> second = workflow.Diagnose();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const BaselineModelCache::Counters after = cache.TotalCounters();
  EXPECT_GT(after.invalidations, before.invalidations);

  DiagnosisContext control_ctx = scenario->MakeContext();
  Workflow control(std::move(control_ctx), WorkflowConfig{}, symptoms_);
  Result<DiagnosisReport> reference = control.Diagnose();
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(ReportDigest(*second), ReportDigest(*reference));
}

}  // namespace
}  // namespace diads::diag
