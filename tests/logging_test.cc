// Structured logging: levels, component prefixes, sim-time stamps, and the
// pluggable sink tests use to assert on what the library logged.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace diads {
namespace {

/// Restores the global level on scope exit so tests don't leak state.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(GetLogLevel()) {
    SetLogLevel(level);
  }
  ~ScopedLogLevel() { SetLogLevel(previous_); }

 private:
  LogLevel previous_;
};

TEST(LoggingTest, CaptureSinkReceivesRecords) {
  ScopedLogLevel level(LogLevel::kDebug);
  CaptureLogSink capture;
  ScopedLogSink scoped(&capture);

  LogWarning("monitor.gather", "component C3 degraded");
  LogInfo("engine", "worker pool started");

  ASSERT_EQ(capture.size(), 2u);
  const std::vector<LogRecord> records = capture.Records();
  EXPECT_EQ(records[0].level, LogLevel::kWarning);
  EXPECT_EQ(records[0].component, "monitor.gather");
  EXPECT_EQ(records[0].message, "component C3 degraded");
  EXPECT_EQ(records[1].level, LogLevel::kInfo);
  EXPECT_EQ(records[1].component, "engine");
  EXPECT_TRUE(capture.ContainsMessage("degraded"));
  EXPECT_FALSE(capture.ContainsMessage("no such message"));
}

TEST(LoggingTest, LevelThresholdFilters) {
  ScopedLogLevel level(LogLevel::kWarning);
  CaptureLogSink capture;
  ScopedLogSink scoped(&capture);

  LogDebug("engine", "dropped");
  LogInfo("engine", "dropped");
  LogWarning("engine", "kept");
  LogError("engine", "kept too");

  ASSERT_EQ(capture.size(), 2u);
  EXPECT_EQ(capture.Records()[0].level, LogLevel::kWarning);
  EXPECT_EQ(capture.Records()[1].level, LogLevel::kError);
}

TEST(LoggingTest, RecordsForFiltersByComponent) {
  ScopedLogLevel level(LogLevel::kInfo);
  CaptureLogSink capture;
  ScopedLogSink scoped(&capture);

  LogInfo("monitor.gather", "a");
  LogInfo("engine", "b");
  LogInfo("monitor.gather", "c");

  const std::vector<LogRecord> gather = capture.RecordsFor("monitor.gather");
  ASSERT_EQ(gather.size(), 2u);
  EXPECT_EQ(gather[0].message, "a");
  EXPECT_EQ(gather[1].message, "c");
  EXPECT_EQ(capture.RecordsFor("engine").size(), 1u);
  EXPECT_TRUE(capture.RecordsFor("nothing").empty());
}

TEST(LoggingTest, SimTimeStampRoundTrips) {
  ScopedLogLevel level(LogLevel::kInfo);
  CaptureLogSink capture;
  ScopedLogSink scoped(&capture);

  // Day 0, 02:05:00 in sim time.
  const SimTimeMs t = (2 * 3600 + 5 * 60) * 1000;
  LogRecordTo(LogLevel::kWarning, "monitor.gather", "stale window", t);
  LogRecordTo(LogLevel::kInfo, "engine", "no sim context");

  ASSERT_EQ(capture.size(), 2u);
  EXPECT_EQ(capture.Records()[0].sim_time, t);
  EXPECT_LT(capture.Records()[1].sim_time, 0);
  // Wall stamp is filled in by the logger.
  EXPECT_GT(capture.Records()[0].wall_ns, 0);
}

TEST(LoggingTest, FormatIncludesLevelComponentAndSimTime) {
  LogRecord record;
  record.level = LogLevel::kWarning;
  record.component = "monitor.gather";
  record.message = "component C3 degraded";
  record.sim_time = (2 * 3600 + 5 * 60) * 1000;

  const std::string line = record.Format();
  EXPECT_NE(line.find("WARN"), std::string::npos) << line;
  EXPECT_NE(line.find("monitor.gather"), std::string::npos) << line;
  EXPECT_NE(line.find("02:05:00"), std::string::npos) << line;
  EXPECT_NE(line.find("component C3 degraded"), std::string::npos) << line;

  record.sim_time = -1;
  record.component.clear();
  const std::string bare = record.Format();
  EXPECT_NE(bare.find("WARN"), std::string::npos) << bare;
  EXPECT_NE(bare.find("component C3 degraded"), std::string::npos) << bare;
}

TEST(LoggingTest, ScopedSinkRestoresPrevious) {
  ScopedLogLevel level(LogLevel::kInfo);
  CaptureLogSink outer;
  ScopedLogSink outer_scope(&outer);
  {
    CaptureLogSink inner;
    ScopedLogSink inner_scope(&inner);
    LogInfo("engine", "inner line");
    EXPECT_EQ(inner.size(), 1u);
    EXPECT_EQ(outer.size(), 0u);
  }
  LogInfo("engine", "outer line");
  EXPECT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.Records()[0].message, "outer line");
}

TEST(LoggingTest, ConcurrentWritesAreAllCaptured) {
  ScopedLogLevel level(LogLevel::kInfo);
  CaptureLogSink capture;
  ScopedLogSink scoped(&capture);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogInfo("worker" + std::to_string(t), "line");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(capture.size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace diads
