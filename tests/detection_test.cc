// Tests for the always-on slowdown detector: the SeriesSketch's guarded
// band/ceiling arithmetic, the per-series confirmation state machine, the
// tenant incident discipline (dedup under an active incident, sim-time
// cooldown, fresh sequence stamps after recovery), the engine auto-submit
// path (stats, fleet verdict stamping), and a multi-tenant concurrency
// test with appender threads racing the detector and the engine. Run this
// binary under -fsanitize=thread (cmake -DDIADS_SANITIZE_THREAD=ON) to
// validate the locking — CI's TSan job does.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_time.h"
#include "detect/detector.h"
#include "detect/sketch.h"
#include "engine/engine.h"
#include "engine/stats.h"
#include "fleet/store.h"
#include "monitor/timeseries.h"
#include "workload/detect_replay.h"
#include "workload/scenario.h"

namespace diads::detect {
namespace {

using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

// --- SeriesSketch -----------------------------------------------------------

SketchOptions SmallSketch() {
  SketchOptions options;
  options.calibration_samples = 8;
  return options;
}

TEST(SeriesSketchTest, CalibratesAfterBufferedSamples) {
  SeriesSketch sketch(SmallSketch());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(sketch.calibrated());
    EXPECT_EQ(sketch.Observe(10.0 + 0.1 * i), SampleVerdict::kCalibrating);
  }
  EXPECT_TRUE(sketch.calibrated());
  EXPECT_NEAR(sketch.mean(), 10.35, 0.01);
  EXPECT_GT(sketch.threshold(), sketch.mean());
}

TEST(SeriesSketchTest, StationarySamplesStayInBand) {
  SeriesSketch sketch(SmallSketch());
  for (int i = 0; i < 8; ++i) sketch.Observe(10.0 + 0.1 * (i % 3));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sketch.Observe(10.0 + 0.1 * (i % 3)), SampleVerdict::kInBand);
  }
}

TEST(SeriesSketchTest, LargeShiftCrosses) {
  SeriesSketch sketch(SmallSketch());
  for (int i = 0; i < 8; ++i) sketch.Observe(10.0);
  EXPECT_EQ(sketch.Observe(100.0), SampleVerdict::kCrossing);
}

TEST(SeriesSketchTest, GuardedUpdateKeepsBaselineUnderSustainedFault) {
  // A sustained fault must not teach the sketch that the fault is the
  // new normal: crossings are scored, never absorbed.
  SeriesSketch sketch(SmallSketch());
  for (int i = 0; i < 8; ++i) sketch.Observe(10.0);
  const double mean_before = sketch.mean();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sketch.Observe(100.0), SampleVerdict::kCrossing);
  }
  EXPECT_DOUBLE_EQ(sketch.mean(), mean_before);
  // And the series can be observed re-entering the band afterwards.
  EXPECT_EQ(sketch.Observe(10.0), SampleVerdict::kInBand);
}

TEST(SeriesSketchTest, BimodalCalibrationKeepsHighModeInBand) {
  // Idle/run-load alternation: the KDE ceiling sits above the high mode,
  // so routine run-load samples are not crossings even though they are
  // far above the idle-dominated mean.
  SeriesSketch sketch(SmallSketch());
  // 6 idle samples at ~2, 2 run-load samples at ~60 (the 1-in-3..6 duty
  // cycle of a periodic report workload).
  const double calib[] = {2.0, 2.2, 60.0, 1.9, 2.1, 58.0, 2.0, 2.05};
  for (double v : calib) sketch.Observe(v);
  EXPECT_EQ(sketch.Observe(59.0), SampleVerdict::kInBand);
  EXPECT_EQ(sketch.Observe(2.0), SampleVerdict::kInBand);
  // A genuine shift well above the high mode still crosses.
  EXPECT_EQ(sketch.Observe(200.0), SampleVerdict::kCrossing);
}

TEST(SeriesSketchTest, ConstantSeriesTolerated) {
  // The KDE bandwidth floor and the sigma floors keep an all-constant
  // series from alarming on itself.
  SeriesSketch sketch(SmallSketch());
  for (int i = 0; i < 8; ++i) sketch.Observe(5.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sketch.Observe(5.0), SampleVerdict::kInBand);
  }
}

// --- SlowdownDetector state machine -----------------------------------------

// Small knobs so synthetic tests confirm/recover in a handful of samples:
// 4-of-8 confirmation, recovery after 4 clean samples, 30-minute cooldown.
DetectorOptions SmallDetector() {
  DetectorOptions options;
  options.sketch.calibration_samples = 8;
  options.confirmation_samples = 4;
  options.window_samples = 8;
  options.recovery_samples = 4;
  options.cooldown = Minutes(30);
  return options;
}

constexpr ComponentId kComponent{7};
constexpr monitor::MetricId kMetric = monitor::MetricId::kVolTotalIos;

/// Appends `count` samples at 5-minute spacing starting at *cursor,
/// advancing it.
void AppendRun(monitor::TimeSeriesStore* store, SimTimeMs* cursor,
               int count, double value) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(store->Append(kComponent, kMetric, *cursor, value).ok());
    *cursor += Minutes(5);
  }
}

TEST(SlowdownDetectorTest, WatchValidation) {
  SlowdownDetector detector(SmallDetector());
  EXPECT_FALSE(detector.Watch("t", nullptr, nullptr).ok());
  monitor::TimeSeriesStore store;
  ASSERT_TRUE(detector.Watch("t", &store, nullptr).ok());
  EXPECT_FALSE(detector.Watch("t2", &store, nullptr).ok());
  detector.Unwatch(&store);
  EXPECT_EQ(store.append_listener(), nullptr);
  ASSERT_TRUE(detector.Watch("t3", &store, nullptr).ok());
}

TEST(SlowdownDetectorTest, SustainedFaultOpensExactlyOneIncident) {
  SlowdownDetector detector(SmallDetector());
  monitor::TimeSeriesStore store;
  ASSERT_TRUE(detector.Watch("tenant-a", &store, nullptr).ok());

  SimTimeMs cursor = 0;
  AppendRun(&store, &cursor, 8, 10.0);   // Calibration.
  AppendRun(&store, &cursor, 4, 10.0);   // Healthy steady state.
  EXPECT_EQ(detector.Stats().incidents_opened, 0u);
  AppendRun(&store, &cursor, 30, 100.0);  // Sustained fault.

  const DetectorStats stats = detector.Stats();
  EXPECT_EQ(stats.incidents_opened, 1u);
  EXPECT_EQ(stats.active_incidents, 1u);
  EXPECT_EQ(stats.confirmations, 1u);
  // Every post-confirmation crossing deduped onto the active incident.
  EXPECT_GT(stats.suppressed_active, 0u);

  const std::vector<Incident> incidents = detector.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].sequence, 1u);
  EXPECT_EQ(incidents[0].tenant, "tenant-a");
  EXPECT_EQ(incidents[0].component, kComponent);
  EXPECT_EQ(incidents[0].metric, kMetric);
  // The incident's onset is the first crossing of the confirming
  // cluster; it confirmed on the 4th.
  EXPECT_EQ(incidents[0].onset_time, Minutes(5) * 12);
  EXPECT_EQ(incidents[0].confirmed_time, Minutes(5) * 15);
  EXPECT_GT(incidents[0].value, incidents[0].threshold);
}

TEST(SlowdownDetectorTest, RecoveryThenRecrossingOpensFreshIncident) {
  SlowdownDetector detector(SmallDetector());
  monitor::TimeSeriesStore store;
  ASSERT_TRUE(detector.Watch("tenant-a", &store, nullptr).ok());

  SimTimeMs cursor = 0;
  AppendRun(&store, &cursor, 8, 10.0);   // Calibration.
  AppendRun(&store, &cursor, 6, 100.0);  // Fault -> incident #1.
  EXPECT_EQ(detector.Stats().incidents_opened, 1u);

  // Band re-entry: recovery_samples clean samples close the incident.
  AppendRun(&store, &cursor, 4, 10.0);
  {
    const DetectorStats stats = detector.Stats();
    EXPECT_EQ(stats.incidents_closed, 1u);
    EXPECT_EQ(stats.active_incidents, 0u);
  }

  // Idle past the cooldown, then re-cross: a *new* incident with a fresh
  // (monotonically higher) sequence stamp.
  AppendRun(&store, &cursor, 6, 10.0);  // 30 idle minutes.
  AppendRun(&store, &cursor, 6, 100.0);
  const DetectorStats stats = detector.Stats();
  EXPECT_EQ(stats.incidents_opened, 2u);
  EXPECT_EQ(stats.confirmations, 2u);
  const std::vector<Incident> incidents = detector.Incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].sequence, 1u);
  EXPECT_EQ(incidents[1].sequence, 2u);
  EXPECT_GT(incidents[1].onset_time, incidents[0].confirmed_time);
}

TEST(SlowdownDetectorTest, CooldownSuppressesImmediateReopen) {
  DetectorOptions options = SmallDetector();
  options.cooldown = Minutes(120);
  SlowdownDetector detector(options);
  monitor::TimeSeriesStore store;
  ASSERT_TRUE(detector.Watch("tenant-a", &store, nullptr).ok());

  SimTimeMs cursor = 0;
  AppendRun(&store, &cursor, 8, 10.0);   // Calibration.
  AppendRun(&store, &cursor, 6, 100.0);  // Incident #1 (opens at 55min).
  AppendRun(&store, &cursor, 4, 10.0);   // Recovery closes it.
  // Re-crossing confirms again at 105min — well inside the 120-minute
  // cooldown window anchored at the first opening: suppressed, not
  // reopened.
  AppendRun(&store, &cursor, 4, 100.0);
  const DetectorStats stats = detector.Stats();
  EXPECT_EQ(stats.incidents_opened, 1u);
  EXPECT_GT(stats.suppressed_cooldown, 0u);
  EXPECT_EQ(stats.confirmations, 2u);
}

TEST(SlowdownDetectorTest, TenantsAreIndependent) {
  SlowdownDetector detector(SmallDetector());
  monitor::TimeSeriesStore store_a;
  monitor::TimeSeriesStore store_b;
  ASSERT_TRUE(detector.Watch("tenant-a", &store_a, nullptr).ok());
  ASSERT_TRUE(detector.Watch("tenant-b", &store_b, nullptr).ok());

  SimTimeMs cursor_a = 0;
  SimTimeMs cursor_b = 0;
  AppendRun(&store_a, &cursor_a, 8, 10.0);
  AppendRun(&store_b, &cursor_b, 8, 10.0);
  AppendRun(&store_a, &cursor_a, 6, 100.0);  // Only tenant A faults.
  AppendRun(&store_b, &cursor_b, 6, 10.0);

  const std::vector<Incident> incidents = detector.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].tenant, "tenant-a");
  EXPECT_EQ(detector.Stats().watched_tenants, 2u);
}

// --- Auto-submit integration ------------------------------------------------

class DetectionEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    symptoms_ = new diag::SymptomsDb(diag::SymptomsDb::MakeDefault());
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    delete symptoms_;
    symptoms_ = nullptr;
  }

  static diag::SymptomsDb* symptoms_;
  static ScenarioOutput* scenario_;
};

diag::SymptomsDb* DetectionEngineTest::symptoms_ = nullptr;
ScenarioOutput* DetectionEngineTest::scenario_ = nullptr;

TEST_F(DetectionEngineTest, SustainedFaultAutoSubmitsExactlyOnce) {
  fleet::FleetStore fleet_store;
  engine::EngineOptions options;
  options.workers = 2;
  options.fleet_store = &fleet_store;
  engine::DiagnosisEngine engine(options, symptoms_);

  workload::DetectionReplayOptions replay_options;
  Result<workload::DetectionReplayResult> replay =
      workload::ReplayScenarioDetection(*scenario_, "tenant-s1", &engine,
                                        replay_options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  // One sustained fault, one incident, one auto-diagnosis.
  EXPECT_EQ(replay->incidents.size(), 1u);
  EXPECT_EQ(replay->stats.diagnoses_submitted, 1u);
  ASSERT_EQ(replay->responses.size(), 1u);
  EXPECT_TRUE(replay->responses[0].ok())
      << replay->responses[0].status.ToString();
  EXPECT_GT(replay->detection_latency, 0);

  const engine::EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.auto_submitted, 1u);

  // The published tenant verdict carries the incident stamp.
  int stamped = 0;
  fleet_store.ForEachRow([&](const fleet::FleetKey&, uint64_t,
                             const fleet::ComponentVerdict*,
                             const fleet::TenantRecord* record) {
    if (record == nullptr) return;
    ASSERT_NE(record->incident, nullptr);
    EXPECT_EQ(record->incident->sequence, replay->incidents[0].sequence);
    EXPECT_FALSE(record->incident->subject.empty());
    EXPECT_EQ(record->incident->confirmed_time,
              replay->incidents[0].confirmed_time);
    ++stamped;
  });
  EXPECT_EQ(stamped, 1);
}

TEST_F(DetectionEngineTest, QuietReplayRaisesNothing) {
  // Truncated at the end of the satisfactory era: no incident, no
  // engine traffic.
  engine::DiagnosisEngine engine(engine::EngineOptions{}, symptoms_);
  workload::DetectionReplayOptions replay_options;
  replay_options.cutoff = scenario_->satisfactory_window.end;
  Result<workload::DetectionReplayResult> replay =
      workload::ReplayScenarioDetection(*scenario_, "tenant-s1", &engine,
                                        replay_options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->incidents.size(), 0u);
  EXPECT_EQ(replay->stats.diagnoses_submitted, 0u);
  EXPECT_EQ(engine.Stats().auto_submitted, 0u);
  EXPECT_EQ(replay->detection_latency, -1);
}

// --- Concurrency: appenders racing the detector and the engine --------------

TEST_F(DetectionEngineTest, ConcurrentTenantsRaceDetectorAndEngine) {
  // Four tenants, each with its own replica store and its own appending
  // thread (the store contract: one appender per store), all sharing one
  // detector and one engine. Every tenant calibrates, then crosses, so
  // every thread races series creation, confirmation, incident opening,
  // and Engine::Submit against the others. Run under TSan in CI.
  fleet::FleetStore fleet_store;
  engine::EngineOptions options;
  options.workers = 3;
  options.fleet_store = &fleet_store;
  engine::DiagnosisEngine engine(options, symptoms_);
  SlowdownDetector detector(SmallDetector(), &engine);

  constexpr int kTenants = 4;
  std::vector<std::unique_ptr<monitor::TimeSeriesStore>> stores;
  for (int i = 0; i < kTenants; ++i) {
    stores.push_back(std::make_unique<monitor::TimeSeriesStore>());
    const std::string tenant = "tenant-" + std::to_string(i);
    ASSERT_TRUE(detector
                    .Watch(tenant, stores.back().get(),
                           [tenant]() {
                             engine::DiagnosisRequest request;
                             request.ctx = scenario_->MakeContext();
                             request.tag = tenant;
                             return request;
                           })
                    .ok());
  }

  std::vector<std::thread> appenders;
  for (int i = 0; i < kTenants; ++i) {
    appenders.emplace_back([&, i] {
      monitor::TimeSeriesStore* store = stores[i].get();
      SimTimeMs cursor = 0;
      // Two series per tenant so series-map insertion races too.
      for (int n = 0; n < 8; ++n) {
        ASSERT_TRUE(store->Append(kComponent, kMetric, cursor, 10.0).ok());
        ASSERT_TRUE(store
                        ->Append(ComponentId{11}, monitor::MetricId::kVolBytesRead,
                                 cursor, 5.0)
                        .ok());
        cursor += Minutes(5);
      }
      for (int n = 0; n < 10; ++n) {
        ASSERT_TRUE(store->Append(kComponent, kMetric, cursor, 100.0).ok());
        ASSERT_TRUE(store
                        ->Append(ComponentId{11}, monitor::MetricId::kVolBytesRead,
                                 cursor, 5.0)
                        .ok());
        cursor += Minutes(5);
      }
    });
  }
  for (std::thread& t : appenders) t.join();

  EXPECT_EQ(detector.WaitForDiagnoses(), static_cast<size_t>(kTenants));
  const DetectorStats stats = detector.Stats();
  EXPECT_EQ(stats.incidents_opened, static_cast<uint64_t>(kTenants));
  EXPECT_EQ(stats.diagnoses_submitted, static_cast<uint64_t>(kTenants));
  EXPECT_EQ(stats.series_tracked, static_cast<uint64_t>(2 * kTenants));
  const std::vector<engine::DiagnosisResponse> responses =
      detector.TakeResponses();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kTenants));
  for (const engine::DiagnosisResponse& response : responses) {
    EXPECT_TRUE(response.ok()) << response.status.ToString();
  }
  // Sequence stamps are unique and dense: 1..kTenants in some order.
  std::vector<Incident> incidents = detector.Incidents();
  ASSERT_EQ(incidents.size(), static_cast<size_t>(kTenants));
  uint64_t sequence_sum = 0;
  for (const Incident& incident : incidents) sequence_sum += incident.sequence;
  EXPECT_EQ(sequence_sum, static_cast<uint64_t>(kTenants * (kTenants + 1) / 2));
  EXPECT_EQ(engine.Stats().auto_submitted, static_cast<uint64_t>(kTenants));

  for (auto& store : stores) detector.Unwatch(store.get());
}

}  // namespace
}  // namespace diads::detect
