// Tests for the silo-tool baselines, checking the failure modes Section 5
// predicts for them: the SAN-only tool implicates every loaded volume and
// over-weights the data-heavy V2; the DB-only tool pins SAN problems on
// generic database causes.
#include <gtest/gtest.h>

#include "baseline/db_only.h"
#include "baseline/san_only.h"
#include "workload/scenario.h"

namespace diads::baseline {
namespace {

using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ScenarioOutput> s1b = RunScenario(ScenarioId::kS1bBurstyV2, {});
    ASSERT_TRUE(s1b.ok()) << s1b.status().ToString();
    s1b_ = new ScenarioOutput(std::move(*s1b));
    Result<ScenarioOutput> s5 = RunScenario(ScenarioId::kS5LockingWithNoise, {});
    ASSERT_TRUE(s5.ok()) << s5.status().ToString();
    s5_ = new ScenarioOutput(std::move(*s5));
  }
  static void TearDownTestSuite() {
    delete s5_;
    delete s1b_;
    s5_ = nullptr;
    s1b_ = nullptr;
  }
  static ScenarioOutput* s1b_;
  static ScenarioOutput* s5_;
};

ScenarioOutput* BaselineTest::s1b_ = nullptr;
ScenarioOutput* BaselineTest::s5_ = nullptr;

TEST_F(BaselineTest, SanOnlyImplicatesBothVolumesInScenario1b) {
  // "a SAN-only diagnosis tool may spot higher I/O loads in both V1 and
  // V2, and attribute both of these as potential root causes."
  SanOnlyDiagnoser diagnoser(&s1b_->testbed->topology, &s1b_->testbed->store);
  Result<std::vector<SanOnlyCause>> causes = diagnoser.Diagnose(
      s1b_->satisfactory_window, s1b_->unsatisfactory_window);
  ASSERT_TRUE(causes.ok()) << causes.status().ToString();
  bool v1 = false, v2 = false;
  for (const SanOnlyCause& cause : *causes) {
    if (cause.volume == s1b_->testbed->v1) v1 = true;
    if (cause.volume == s1b_->testbed->v2) v2 = true;
  }
  EXPECT_TRUE(v1);
  EXPECT_TRUE(v2);  // The false positive DIADS avoids.
}

TEST_F(BaselineTest, SanOnlyDataShareHeuristicBoostsV2) {
  // "Even worse, the tool may give more importance to V2 because most of
  // the data is on V2": with comparable anomaly scores, V2's larger data
  // share raises its rank score.
  SanOnlyDiagnoser diagnoser(&s1b_->testbed->topology, &s1b_->testbed->store);
  std::vector<SanOnlyCause> causes =
      diagnoser
          .Diagnose(s1b_->satisfactory_window, s1b_->unsatisfactory_window)
          .value();
  const SanOnlyCause* v1_cause = nullptr;
  const SanOnlyCause* v2_cause = nullptr;
  for (const SanOnlyCause& cause : causes) {
    if (cause.volume == s1b_->testbed->v1) v1_cause = &cause;
    if (cause.volume == s1b_->testbed->v2) v2_cause = &cause;
  }
  ASSERT_NE(v1_cause, nullptr);
  ASSERT_NE(v2_cause, nullptr);
  EXPECT_GT(v2_cause->data_share, v1_cause->data_share);
  // The rank bump: V2's rank/anomaly ratio exceeds V1's.
  EXPECT_GT(v2_cause->rank_score / v2_cause->anomaly_score,
            v1_cause->rank_score / v1_cause->anomaly_score);
}

TEST_F(BaselineTest, DbOnlyBlamesGenericCausesForSanProblem) {
  // "A database-only tool ... would likely give several false positives
  // like a suboptimal buffer pool setting or a suboptimal choice of
  // execution plan."
  DbOnlyDiagnoser diagnoser(&s1b_->testbed->runs, &s1b_->testbed->store,
                            s1b_->testbed->database);
  Result<std::vector<DbOnlyCause>> causes = diagnoser.Diagnose("Q2");
  ASSERT_TRUE(causes.ok()) << causes.status().ToString();
  ASSERT_FALSE(causes->empty());
  bool buffer_pool = false, plan_choice = false;
  for (const DbOnlyCause& cause : *causes) {
    if (cause.mapped_type == diag::RootCauseType::kBufferPoolPressure) {
      buffer_pool = true;
    }
    if (cause.mapped_type == diag::RootCauseType::kPlanChange) {
      plan_choice = true;
    }
  }
  EXPECT_TRUE(buffer_pool);
  EXPECT_TRUE(plan_choice);
  // And none of them is the actual cause (SAN misconfiguration is not even
  // in the DB-only vocabulary).
}

TEST_F(BaselineTest, DbOnlyDoesFindLockContention) {
  // The silo tool is not useless: a genuinely database-local problem (S5's
  // locking) is within its reach.
  DbOnlyDiagnoser diagnoser(&s5_->testbed->runs, &s5_->testbed->store,
                            s5_->testbed->database);
  Result<std::vector<DbOnlyCause>> causes = diagnoser.Diagnose("Q2");
  ASSERT_TRUE(causes.ok());
  ASSERT_FALSE(causes->empty());
  EXPECT_EQ(causes->front().mapped_type,
            diag::RootCauseType::kLockContention);
}

TEST_F(BaselineTest, SanOnlyRequiresWindows) {
  SanOnlyDiagnoser diagnoser(&s1b_->testbed->topology, &s1b_->testbed->store);
  // Degenerate windows yield no baseline samples and no causes rather than
  // an error.
  Result<std::vector<SanOnlyCause>> causes =
      diagnoser.Diagnose(TimeInterval{0, 1}, TimeInterval{1, 2});
  ASSERT_TRUE(causes.ok());
  EXPECT_TRUE(causes->empty());
}

TEST_F(BaselineTest, DbOnlyRequiresLabelledRuns) {
  db::RunCatalog empty;
  monitor::TimeSeriesStore store;
  DbOnlyDiagnoser diagnoser(&empty, &store, ComponentId{0});
  EXPECT_FALSE(diagnoser.Diagnose("Q2").ok());
}

}  // namespace
}  // namespace diads::baseline
