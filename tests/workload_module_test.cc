// Tests for the workload substrate: testbed assembly (the Figure-1
// inventory), the external workload generator's three load shapes, each
// fault injector's observable effects, and the scenario runner's contract
// (labels, windows, ground truth, determinism).
#include <gtest/gtest.h>

#include <set>

#include "workload/external_workload.h"
#include "workload/fault_injector.h"
#include "workload/scenario.h"
#include "workload/testbed.h"

namespace diads::workload {
namespace {

// --- Testbed assembly ----------------------------------------------------------

class TestbedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<Testbed>> tb = BuildFigure1Testbed(TestbedOptions{});
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
  }
  std::unique_ptr<Testbed> tb_;
};

TEST_F(TestbedTest, Figure1Inventory) {
  // Two servers, three switches, one subsystem, two pools, 4+6 disks,
  // four volumes.
  EXPECT_EQ(tb_->topology.AllServers().size(), 2u);
  EXPECT_EQ(tb_->topology.AllSwitches().size(), 3u);
  EXPECT_EQ(tb_->topology.AllSubsystems().size(), 1u);
  EXPECT_EQ(tb_->topology.AllPools().size(), 2u);
  EXPECT_EQ(tb_->topology.AllDisks().size(), 10u);
  EXPECT_EQ(tb_->topology.AllVolumes().size(), 4u);
  EXPECT_EQ(tb_->topology.pool(tb_->pool1).disks.size(), 4u);
  EXPECT_EQ(tb_->topology.pool(tb_->pool2).disks.size(), 6u);
  EXPECT_TRUE(tb_->topology.Validate().ok());
}

TEST_F(TestbedTest, VolumeSharingMatchesFigure1) {
  // V1 shares P1's disks with V3; V2 shares P2's with V4.
  std::set<ComponentId> v1_sharers;
  for (ComponentId v : tb_->topology.VolumesSharingDisks(tb_->v1)) {
    v1_sharers.insert(v);
  }
  EXPECT_EQ(v1_sharers, (std::set<ComponentId>{tb_->v3}));
  std::set<ComponentId> v2_sharers;
  for (ComponentId v : tb_->topology.VolumesSharingDisks(tb_->v2)) {
    v2_sharers.insert(v);
  }
  EXPECT_EQ(v2_sharers, (std::set<ComponentId>{tb_->v4}));
}

TEST_F(TestbedTest, DbServerReachesItsVolumesOnly) {
  EXPECT_TRUE(tb_->topology.ResolvePath(tb_->db_server, tb_->v1).ok());
  EXPECT_TRUE(tb_->topology.ResolvePath(tb_->db_server, tb_->v2).ok());
  // V3/V4 belong to the app server; the DB server is not LUN-mapped.
  EXPECT_FALSE(tb_->topology.ResolvePath(tb_->db_server, tb_->v3).ok());
  EXPECT_TRUE(tb_->topology.ResolvePath(tb_->app_server, tb_->v3).ok());
}

TEST_F(TestbedTest, PaperPlanAndOptimizerBothUsable) {
  EXPECT_EQ(tb_->paper_plan->size(), 25u);
  Result<db::Plan> optimized = tb_->OptimizeQ2();
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized->LeafIndexes().size(), 9u);
}

TEST_F(TestbedTest, WhatIfProberHandlesSupportedEvents) {
  auto prober = tb_->MakeWhatIfProber();
  const uint64_t base = tb_->OptimizeQ2()->Fingerprint();

  // Index drop: revert must reproduce the base plan.
  ASSERT_TRUE(
      tb_->catalog.DropIndex(Hours(1), "partsupp_partkey_idx").ok());
  SystemEvent drop = tb_->event_log.all().back();
  ASSERT_EQ(drop.type, EventType::kIndexDropped);
  Result<uint64_t> reverted = prober(drop);
  ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
  EXPECT_EQ(*reverted, base);
  // And the probe left the catalog in the dropped state.
  EXPECT_TRUE(tb_->catalog.IndexesOn("partsupp", "ps_partkey").empty());

  // Unsupported event type: explicit error, not a guess.
  SystemEvent unrelated;
  unrelated.type = EventType::kDmlBatch;
  EXPECT_FALSE(prober(unrelated).ok());
}

TEST_F(TestbedTest, WhatIfProberParamChange) {
  auto prober = tb_->MakeWhatIfProber();
  const uint64_t base = tb_->OptimizeQ2()->Fingerprint();
  FaultInjector injector(tb_.get());
  ASSERT_TRUE(
      injector.InjectParamChange(Hours(1), "random_page_cost", 40.0).ok());
  const uint64_t changed = tb_->OptimizeQ2()->Fingerprint();
  EXPECT_NE(changed, base);
  SystemEvent event = tb_->event_log.all().back();
  ASSERT_EQ(event.type, EventType::kDbParamChanged);
  Result<uint64_t> reverted = prober(event);
  ASSERT_TRUE(reverted.ok());
  EXPECT_EQ(*reverted, base);
}

// --- External workloads ---------------------------------------------------------

TEST_F(TestbedTest, AmbientLoadVariesByChunk) {
  ExternalWorkloadGen gen(tb_.get());
  san::IoProfile base;
  base.read_iops = 100;
  ASSERT_TRUE(gen.StartAmbient(tb_->v3, TimeInterval{0, Hours(10)}, base,
                               Hours(1))
                  .ok());
  // Intensity re-rolls hourly in [0.6, 1.4] x base.
  std::set<int> distinct;
  for (int h = 0; h < 10; ++h) {
    const double iops =
        tb_->perf_model.VolumeLoadAt(tb_->v3, Hours(h) + Minutes(30))
            .read_iops;
    EXPECT_GE(iops, 59.0);
    EXPECT_LE(iops, 141.0);
    distinct.insert(static_cast<int>(iops));
  }
  EXPECT_GT(distinct.size(), 3u);
}

TEST_F(TestbedTest, SteadyLoadLogsEventsOnlyWhenAsked) {
  ExternalWorkloadGen gen(tb_.get());
  san::IoProfile profile;
  profile.write_iops = 50;
  const size_t before = tb_->event_log.size();
  ASSERT_TRUE(gen.StartSteady(tb_->v4, TimeInterval{0, Hours(1)}, profile,
                              /*log_events=*/false, "quiet")
                  .ok());
  EXPECT_EQ(tb_->event_log.size(), before);
  ASSERT_TRUE(gen.StartSteady(tb_->v4, TimeInterval{Hours(2), Hours(3)},
                              profile, /*log_events=*/true, "loud")
                  .ok());
  ASSERT_EQ(tb_->event_log.size(), before + 1);
  EXPECT_EQ(tb_->event_log.all().back().type,
            EventType::kExternalWorkloadStarted);
}

TEST_F(TestbedTest, BurstyLoadRespectsDutyCycle) {
  ExternalWorkloadGen gen(tb_.get());
  san::IoProfile burst;
  burst.read_iops = 600;
  ASSERT_TRUE(gen.StartBursty(tb_->v4, TimeInterval{0, Hours(2)}, burst,
                              Minutes(5), Seconds(30), false, "bursts")
                  .ok());
  // Average over the window ~ 600 * (30s / 5min) = 60; instantaneous values
  // are either 0 or 600.
  const san::VolumeIntervalStats stats =
      tb_->perf_model.VolumeStats(tb_->v4, TimeInterval{0, Hours(2)});
  EXPECT_NEAR(stats.read_iops, 60.0, 6.0);
  int in_burst = 0;
  for (SimTimeMs t = 0; t < Hours(2); t += Seconds(10)) {
    const double iops = tb_->perf_model.VolumeLoadAt(tb_->v4, t).read_iops;
    EXPECT_TRUE(iops == 0.0 || iops == 600.0);
    if (iops > 0) ++in_burst;
  }
  EXPECT_NEAR(static_cast<double>(in_burst) / 720.0, 0.1, 0.04);
}

TEST_F(TestbedTest, BurstyLoadValidatesParameters) {
  ExternalWorkloadGen gen(tb_.get());
  san::IoProfile burst;
  burst.read_iops = 100;
  EXPECT_FALSE(gen.StartBursty(tb_->v4, TimeInterval{0, Hours(1)}, burst,
                               Seconds(30), Minutes(5), false, "bad")
                   .ok());  // Burst longer than period.
}

// --- Fault injectors --------------------------------------------------------------

TEST_F(TestbedTest, SanMisconfigurationCreatesSharerAndEvents) {
  FaultInjector injector(tb_.get());
  ASSERT_TRUE(injector
                  .InjectSanMisconfiguration(Hours(10),
                                             TimeInterval{Hours(10), Hours(20)})
                  .ok());
  // V' exists in P1 and shares V1's disks.
  Result<ComponentId> v_prime = tb_->registry.FindByName("V-prime");
  ASSERT_TRUE(v_prime.ok());
  bool shares = false;
  for (ComponentId v : tb_->topology.VolumesSharingDisks(tb_->v1)) {
    if (v == *v_prime) shares = true;
  }
  EXPECT_TRUE(shares);
  // Exactly the three configuration events; no workload events.
  const TimeInterval window{Hours(9), Hours(21)};
  EXPECT_EQ(tb_->event_log.EventsOfTypeIn(EventType::kVolumeCreated, window)
                .size(),
            1u);
  EXPECT_EQ(tb_->event_log.EventsOfTypeIn(EventType::kZoningChanged, window)
                .size(),
            1u);
  EXPECT_EQ(tb_->event_log
                .EventsOfTypeIn(EventType::kLunMappingChanged, window)
                .size(),
            1u);
  EXPECT_TRUE(tb_->event_log
                  .EventsOfTypeIn(EventType::kExternalWorkloadStarted, window)
                  .empty());
  // And V1's latency rises during the load window.
  EXPECT_GT(tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(15)),
            tb_->perf_model.VolumeReadLatencyMs(tb_->v1, Hours(5)) * 1.3);
}

TEST_F(TestbedTest, LockContentionInjectsWaitAndEvent) {
  FaultInjector injector(tb_.get());
  ASSERT_TRUE(injector
                  .InjectLockContention(TimeInterval{Hours(10), Hours(12)},
                                        "partsupp", Seconds(30))
                  .ok());
  EXPECT_EQ(tb_->locks.WaitFor("partsupp", Hours(11)), Seconds(30));
  EXPECT_EQ(tb_->locks.WaitFor("partsupp", Hours(13)), 0);
  EXPECT_EQ(tb_->locks.WaitFor("part", Hours(11)), 0);
  EXPECT_EQ(tb_->event_log
                .EventsOfTypeIn(EventType::kTableLockContention,
                                TimeInterval{Hours(9), Hours(13)})
                .size(),
            1u);
  // Unknown table: error.
  EXPECT_FALSE(injector
                   .InjectLockContention(TimeInterval{Hours(1), Hours(2)},
                                         "nope", Seconds(1))
                   .ok());
}

TEST_F(TestbedTest, SpuriousSymptomsBiasOnlyLatencyMetrics) {
  FaultInjector injector(tb_.get());
  ASSERT_TRUE(injector
                  .InjectSpuriousVolumeSymptoms(
                      tb_->v2, TimeInterval{Hours(10), Hours(12)}, 1.5)
                  .ok());
  // Latency metric biased +150%, ops metric untouched.
  const monitor::NoiseSpec& time_spec = tb_->noise.SpecFor(
      tb_->v2, monitor::MetricId::kVolPhysWriteTimeMs, Hours(11));
  EXPECT_DOUBLE_EQ(time_spec.bias_fraction, 1.5);
  const monitor::NoiseSpec& ops_spec = tb_->noise.SpecFor(
      tb_->v2, monitor::MetricId::kVolPhysWriteOps, Hours(11));
  EXPECT_DOUBLE_EQ(ops_spec.bias_fraction, 0.0);
  // Outside the window: clean.
  const monitor::NoiseSpec& later = tb_->noise.SpecFor(
      tb_->v2, monitor::MetricId::kVolPhysWriteTimeMs, Hours(13));
  EXPECT_DOUBLE_EQ(later.bias_fraction, 0.0);
}

TEST_F(TestbedTest, RaidRebuildAddsOverheadAndEvents) {
  FaultInjector injector(tb_.get());
  ComponentId disk5 = tb_->registry.FindByName("disk5").value();
  const double before = tb_->perf_model.DiskUtilizationAt(disk5, Hours(11));
  ASSERT_TRUE(injector
                  .InjectRaidRebuild(tb_->pool2,
                                     TimeInterval{Hours(10), Hours(12)}, 0.35)
                  .ok());
  EXPECT_NEAR(tb_->perf_model.DiskUtilizationAt(disk5, Hours(11)),
              before + 0.35, 1e-9);
  EXPECT_EQ(tb_->event_log
                .EventsOfTypeIn(EventType::kRaidRebuildStarted,
                                TimeInterval{Hours(9), Hours(13)})
                .size(),
            1u);
}

TEST_F(TestbedTest, DiskFailureLifecycle) {
  FaultInjector injector(tb_.get());
  ComponentId disk1 = tb_->registry.FindByName("disk1").value();
  ASSERT_TRUE(injector.InjectDiskFailure(Hours(10), disk1).ok());
  EXPECT_TRUE(tb_->topology.disk(disk1).failed);
  EXPECT_EQ(tb_->topology.ActiveDiskCount(tb_->pool1), 3);
  ASSERT_TRUE(injector.InjectDiskRecovery(Hours(12), disk1).ok());
  EXPECT_FALSE(tb_->topology.disk(disk1).failed);
  EXPECT_EQ(tb_->event_log
                .EventsOfTypeIn(EventType::kDiskRecovered,
                                TimeInterval{Hours(11), Hours(13)})
                .size(),
            1u);
}

// --- Scenario runner ---------------------------------------------------------------

TEST(ScenarioTest, ContractHolds) {
  ScenarioOptions options;
  options.satisfactory_runs = 8;
  options.unsatisfactory_runs = 4;
  Result<ScenarioOutput> scenario =
      RunScenario(ScenarioId::kS1SanMisconfiguration, options);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario->testbed->runs.RunsWithLabel(
                    "Q2", db::RunLabel::kSatisfactory)
                .size(),
            8u);
  EXPECT_EQ(scenario->testbed->runs.RunsWithLabel(
                    "Q2", db::RunLabel::kUnsatisfactory)
                .size(),
            4u);
  EXPECT_LT(scenario->satisfactory_window.end,
            scenario->unsatisfactory_window.begin);
  ASSERT_FALSE(scenario->ground_truth.empty());
  EXPECT_EQ(scenario->ground_truth[0].subject_name, "V1");
  // Monitoring covers the whole history.
  EXPECT_GT(scenario->testbed->store.total_samples(), 1000u);
}

TEST(ScenarioTest, DeterministicForSeed) {
  ScenarioOptions options;
  options.satisfactory_runs = 6;
  options.unsatisfactory_runs = 3;
  Result<ScenarioOutput> a =
      RunScenario(ScenarioId::kS3DataPropertyChange, options);
  Result<ScenarioOutput> b =
      RunScenario(ScenarioId::kS3DataPropertyChange, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->testbed->runs.size(), b->testbed->runs.size());
  for (size_t i = 0; i < a->testbed->runs.size(); ++i) {
    EXPECT_EQ(a->testbed->runs.runs()[i].duration_ms(),
              b->testbed->runs.runs()[i].duration_ms());
  }
  EXPECT_EQ(a->testbed->store.total_samples(),
            b->testbed->store.total_samples());
}

TEST(ScenarioTest, SeedsChangeOutcomesButNotStructure) {
  ScenarioOptions a_options;
  a_options.seed = 1;
  a_options.satisfactory_runs = 6;
  a_options.unsatisfactory_runs = 3;
  ScenarioOptions b_options = a_options;
  b_options.seed = 2;
  Result<ScenarioOutput> a =
      RunScenario(ScenarioId::kS1SanMisconfiguration, a_options);
  Result<ScenarioOutput> b =
      RunScenario(ScenarioId::kS1SanMisconfiguration, b_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->testbed->runs.runs()[0].duration_ms(),
            b->testbed->runs.runs()[0].duration_ms());
  EXPECT_EQ(a->testbed->runs.size(), b->testbed->runs.size());
}

TEST(ScenarioTest, MatchesGroundTruthSemantics) {
  ComponentRegistry registry;
  ComponentId v1 = registry.MustRegister(ComponentKind::kVolume, "V1");
  diag::RootCause cause;
  cause.type = diag::RootCauseType::kSanMisconfigurationContention;
  cause.subject = v1;
  GroundTruthCause truth{diag::RootCauseType::kSanMisconfigurationContention,
                         "V1", true};
  EXPECT_TRUE(MatchesGroundTruth(truth, cause, registry));
  // Wrong subject.
  GroundTruthCause other{diag::RootCauseType::kSanMisconfigurationContention,
                         "V2", true};
  EXPECT_FALSE(MatchesGroundTruth(other, cause, registry));
  // Empty subject matches any subject.
  GroundTruthCause any{diag::RootCauseType::kSanMisconfigurationContention,
                       "", true};
  EXPECT_TRUE(MatchesGroundTruth(any, cause, registry));
  // Wrong type.
  GroundTruthCause wrong_type{diag::RootCauseType::kLockContention, "V1",
                              true};
  EXPECT_FALSE(MatchesGroundTruth(wrong_type, cause, registry));
}

TEST(ScenarioTest, AllScenarioNamesAndDescriptionsDefined) {
  for (ScenarioId id :
       {ScenarioId::kS1SanMisconfiguration, ScenarioId::kS1bBurstyV2,
        ScenarioId::kS2DualExternalContention,
        ScenarioId::kS3DataPropertyChange, ScenarioId::kS4ConcurrentDbSan,
        ScenarioId::kS5LockingWithNoise, ScenarioId::kS6IndexDrop,
        ScenarioId::kS7ParamChange, ScenarioId::kS8AnalyzeAfterDrift}) {
    EXPECT_STRNE(ScenarioName(id), "?");
    EXPECT_STRNE(ScenarioDescription(id), "?");
  }
}

}  // namespace
}  // namespace diads::workload
