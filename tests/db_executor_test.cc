// Tests for the pipelined executor: span semantics (the paper's event-
// propagation mechanism), SAN-coupled I/O waits, lock waits, record-count
// scaling under data drift, and load registration back into the SAN model.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "db/paper_plan.h"
#include "workload/testbed.h"

namespace diads::db {
namespace {

using workload::BuildFigure1Testbed;
using workload::Testbed;
using workload::TestbedOptions;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<Testbed>> tb = BuildFigure1Testbed(TestbedOptions{});
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
  }

  QueryRunRecord Run(SimTimeMs at) {
    Result<int> run_id = tb_->RunQ2(at);
    EXPECT_TRUE(run_id.ok()) << run_id.status().ToString();
    return *tb_->runs.FindRun(*run_id).value();
  }

  const OperatorRunStats& Op(const QueryRunRecord& run, int op_number) {
    const int index = run.plan->IndexOfOpNumber(op_number).value();
    return *run.FindOp(index);
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(ExecutorTest, ProducesCompleteRunRecord) {
  QueryRunRecord run = Run(Hours(8));
  EXPECT_EQ(run.query_name, "Q2");
  EXPECT_EQ(run.operators.size(), 25u);
  EXPECT_EQ(run.interval.begin, Hours(8));
  EXPECT_GT(run.duration_ms(), Seconds(1));
  EXPECT_LT(run.duration_ms(), Minutes(10));
  for (const OperatorRunStats& op : run.operators) {
    EXPECT_GE(op.start, run.interval.begin);
    EXPECT_LE(op.stop, run.interval.end);
    EXPECT_GE(op.actual_rows, 0);
  }
}

TEST_F(ExecutorTest, SpansFollowPipelineStructure) {
  QueryRunRecord run = Run(Hours(8));
  // Within the main probe pipeline (O3..O8) every operator shares a span.
  const OperatorRunStats& o3 = Op(run, 3);
  for (int number : {4, 5, 6, 7, 8}) {
    EXPECT_EQ(Op(run, number).start, o3.start) << "O" << number;
    EXPECT_EQ(Op(run, number).stop, o3.stop) << "O" << number;
  }
  // Hash-build pipelines are disjoint from the probe pipeline.
  const OperatorRunStats& o10 = Op(run, 10);  // supplier build.
  EXPECT_LT(o10.stop, o3.start + 1);
  // Build pipelines for the subquery run before the probe pipelines too.
  const OperatorRunStats& o22 = Op(run, 22);
  const OperatorRunStats& o17 = Op(run, 17);
  EXPECT_EQ(o22.start, Op(run, 18).start);
  // The aggregate's span extends into its consumer (emission phase).
  EXPECT_GE(o17.stop, o22.stop);
}

TEST_F(ExecutorTest, SortSpanExtendsButResultStaysShort) {
  QueryRunRecord run = Run(Hours(8));
  const OperatorRunStats& sort = Op(run, 2);
  const OperatorRunStats& result = Op(run, 1);
  // Sort starts with its input pipeline and ends at the root pipeline end.
  EXPECT_EQ(sort.stop, run.interval.end);
  // The Result op only spans the final emission pipeline — the mechanism
  // that keeps the root out of the correlated operator set.
  EXPECT_LT(result.span_ms(), sort.span_ms());
}

TEST_F(ExecutorTest, HashBuildPrecedesProbe) {
  QueryRunRecord run = Run(Hours(8));
  // O16 (hash of subquery result) must complete before the top probe
  // pipeline (O3) starts consuming.
  EXPECT_LE(Op(run, 16).stop, Op(run, 3).start);
  // O9/O10 supplier build precedes the main pipeline.
  EXPECT_LE(Op(run, 10).stop, Op(run, 3).start);
}

TEST_F(ExecutorTest, V1ContentionStretchesOnlyDependentPipelines) {
  QueryRunRecord before = Run(Hours(8));
  // Saturate V1's pool with an external write load.
  san::LoadEvent load;
  load.volume = tb_->v1;
  load.interval = TimeInterval{Hours(9), Hours(12)};
  load.profile.write_iops = 120;
  ASSERT_TRUE(tb_->perf_model.AddLoad(load).ok());
  QueryRunRecord after = Run(Hours(10));

  // The pipelines holding the partsupp scans stretch...
  EXPECT_GT(Op(after, 8).span_ms(), Op(before, 8).span_ms() * 1.2);
  EXPECT_GT(Op(after, 22).span_ms(), Op(before, 22).span_ms() * 1.2);
  // ...their pipeline peers stretch with them (event propagation)...
  EXPECT_GT(Op(after, 4).span_ms(), Op(before, 4).span_ms() * 1.2);
  EXPECT_GT(Op(after, 19).span_ms(), Op(before, 19).span_ms() * 1.2);
  // ...but the region/nation build pipelines on V2 stay put (within noise).
  EXPECT_LT(Op(after, 13).span_ms(),
            Op(before, 13).span_ms() * 1.2 + 200);
  // And the query as a whole slowed.
  EXPECT_GT(after.duration_ms(), before.duration_ms() * 1.2);
}

TEST_F(ExecutorTest, DataGrowthScalesRecordCountsAndIo) {
  QueryRunRecord before = Run(Hours(8));
  ASSERT_TRUE(tb_->catalog.ApplyDml(Hours(9), "partsupp", 2.0, "").ok());
  QueryRunRecord after = Run(Hours(10));
  // partsupp scans double their rows and physical I/O (± jitter).
  EXPECT_NEAR(Op(after, 8).actual_rows / Op(before, 8).actual_rows, 2.0, 0.2);
  EXPECT_NEAR(Op(after, 22).actual_rows / Op(before, 22).actual_rows, 2.0,
              0.2);
  EXPECT_GT(Op(after, 22).physical_reads,
            Op(before, 22).physical_reads * 1.6);
  // part's scan is unaffected.
  EXPECT_NEAR(Op(after, 7).actual_rows / Op(before, 7).actual_rows, 1.0,
              0.1);
  // Estimated rows stay at plan values: the est vs actual gap is what
  // Module CR keys on.
  EXPECT_DOUBLE_EQ(Op(after, 8).est_rows, Op(before, 8).est_rows);
}

TEST_F(ExecutorTest, LockWaitDelaysContendedScan) {
  QueryRunRecord before = Run(Hours(8));
  LockContentionWindow contention;
  contention.table = "partsupp";
  contention.window = TimeInterval{Hours(9), Hours(12)};
  contention.wait_ms = Seconds(30);
  ASSERT_TRUE(tb_->locks.AddContention(contention).ok());
  QueryRunRecord after = Run(Hours(10));
  EXPECT_GE(Op(after, 22).lock_wait_ms, Seconds(30) - 1);
  EXPECT_DOUBLE_EQ(Op(after, 7).lock_wait_ms, 0);  // part is not locked.
  EXPECT_GT(after.duration_ms(), before.duration_ms() + Seconds(50));
}

TEST_F(ExecutorTest, RegistersLoadWithSanModel) {
  const size_t before_events = tb_->perf_model.load_event_count();
  QueryRunRecord run = Run(Hours(8));
  // One load event per scan with physical reads (9 leaves, the cached ones
  // may round to zero pages but generally all register).
  EXPECT_GT(tb_->perf_model.load_event_count(), before_events + 3);
  // The query's own I/O shows up on V1 while its heavy V1 pipeline runs.
  const OperatorRunStats& o22 = Op(run, 22);
  const SimTimeMs mid = o22.start + o22.span_ms() / 2;
  EXPECT_GT(tb_->perf_model.VolumeLoadAt(tb_->v1, mid).read_iops, 0);
}

TEST_F(ExecutorTest, BufferPoolSizeControlsPhysicalIo) {
  QueryRunRecord small_pool_run = Run(Hours(8));
  tb_->buffer_pool.set_size_mb(100000);  // Everything fits.
  QueryRunRecord big_pool_run = Run(Hours(12));
  EXPECT_LT(Op(big_pool_run, 22).physical_reads,
            Op(small_pool_run, 22).physical_reads * 0.2);
  EXPECT_LT(big_pool_run.duration_ms(), small_pool_run.duration_ms());
}

TEST_F(ExecutorTest, DeterministicForSameSeedAndTime) {
  Result<std::unique_ptr<Testbed>> tb2 = BuildFigure1Testbed(TestbedOptions{});
  ASSERT_TRUE(tb2.ok());
  QueryRunRecord a = Run(Hours(8));
  Result<int> b_id = (*tb2)->RunQ2(Hours(8));
  ASSERT_TRUE(b_id.ok());
  const QueryRunRecord& b = *(*tb2)->runs.FindRun(*b_id).value();
  EXPECT_EQ(a.duration_ms(), b.duration_ms());
  for (size_t i = 0; i < a.operators.size(); ++i) {
    EXPECT_EQ(a.operators[i].span_ms(), b.operators[i].span_ms());
    EXPECT_DOUBLE_EQ(a.operators[i].actual_rows, b.operators[i].actual_rows);
  }
}

TEST_F(ExecutorTest, RunsDifferUnderJitter) {
  QueryRunRecord a = Run(Hours(8));
  QueryRunRecord b = Run(Hours(9));
  // Same plan, different run: jitter must keep the KDE baselines honest.
  EXPECT_NE(a.duration_ms(), b.duration_ms());
}

TEST_F(ExecutorTest, RecordsDbActivity) {
  QueryRunRecord run = Run(Hours(8));
  const DbActivityCounters counters =
      tb_->activity.AverageOver(run.interval);
  EXPECT_GT(counters.blocks_read_per_sec, 0);
  EXPECT_GT(counters.buffer_hits_per_sec, 0);
  EXPECT_GT(counters.index_scans_per_sec, 0);
  EXPECT_GT(counters.seq_scans_per_sec, 0);
}

TEST_F(ExecutorTest, RejectsNullPlan) {
  db::ExecutorContext ctx;
  ctx.catalog = &tb_->catalog;
  ctx.topology = &tb_->topology;
  ctx.perf_model = &tb_->perf_model;
  ctx.buffer_pool = &tb_->buffer_pool;
  ctx.locks = &tb_->locks;
  ctx.activity = &tb_->activity;
  ctx.db_server = tb_->db_server;
  ctx.database = tb_->database;
  Executor executor(ctx, SeededRng(1));
  EXPECT_FALSE(executor.Execute(nullptr, 0).ok());
}

// --- RunCatalog --------------------------------------------------------------

TEST_F(ExecutorTest, RunCatalogLabelling) {
  Run(Hours(8));
  Run(Hours(9));
  Run(Hours(10));
  ASSERT_TRUE(tb_->runs
                  .LabelByTimeWindow("Q2", TimeInterval{Hours(8), Hours(10)},
                                     RunLabel::kSatisfactory)
                  .ok());
  ASSERT_TRUE(tb_->runs
                  .LabelByTimeWindow("Q2",
                                     TimeInterval{Hours(10), Hours(11)},
                                     RunLabel::kUnsatisfactory)
                  .ok());
  EXPECT_EQ(tb_->runs.RunsWithLabel("Q2", RunLabel::kSatisfactory).size(),
            2u);
  EXPECT_EQ(tb_->runs.RunsWithLabel("Q2", RunLabel::kUnsatisfactory).size(),
            1u);
}

TEST_F(ExecutorTest, DurationThresholdLabelling) {
  QueryRunRecord a = Run(Hours(8));
  // Slow the system down, run again.
  san::LoadEvent load;
  load.volume = tb_->v1;
  load.interval = TimeInterval{Hours(9), Hours(12)};
  load.profile.write_iops = 120;
  ASSERT_TRUE(tb_->perf_model.AddLoad(load).ok());
  Run(Hours(10));
  ASSERT_TRUE(tb_->runs
                  .LabelByDurationThreshold(
                      "Q2", a.duration_ms() + Seconds(10))
                  .ok());
  EXPECT_EQ(tb_->runs.RunsWithLabel("Q2", RunLabel::kSatisfactory).size(),
            1u);
  EXPECT_EQ(tb_->runs.RunsWithLabel("Q2", RunLabel::kUnsatisfactory).size(),
            1u);
}

}  // namespace
}  // namespace diads::db
