// Unit and property tests for the stats module: descriptive statistics,
// ECDF, KDE (against analytic ground truth), correlations, anomaly scoring,
// and the naive-Bayes foil.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/anomaly.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/kde.h"
#include "stats/naive_bayes.h"
#include "stats/sorted_kde.h"

namespace diads::stats {
namespace {

// --- Descriptive -------------------------------------------------------------

TEST(DescriptiveTest, BasicMoments) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Min(xs), 2);
  EXPECT_DOUBLE_EQ(Max(xs), 9);
}

TEST(DescriptiveTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Variance({}), 0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0);
  EXPECT_DOUBLE_EQ(Median({}), 0);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
}

TEST(DescriptiveTest, MedianAndPercentiles) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4, 5}), 3);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 20);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(Iqr(xs), 20);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 75), 7.5);
}

// --- ECDF ----------------------------------------------------------------------

TEST(EcdfTest, StepFunction) {
  Result<Ecdf> ecdf = Ecdf::Fit({1, 2, 3, 4});
  ASSERT_TRUE(ecdf.ok());
  EXPECT_DOUBLE_EQ(ecdf->Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf->Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf->Cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf->Cdf(100), 1.0);
}

TEST(EcdfTest, QuantileInverse) {
  Result<Ecdf> ecdf = Ecdf::Fit({10, 20, 30, 40, 50});
  ASSERT_TRUE(ecdf.ok());
  EXPECT_DOUBLE_EQ(ecdf->Quantile(0), 10);
  EXPECT_DOUBLE_EQ(ecdf->Quantile(1), 50);
  EXPECT_DOUBLE_EQ(ecdf->Quantile(0.5), 30);
}

TEST(EcdfTest, RequiresSamples) {
  EXPECT_FALSE(Ecdf::Fit({}).ok());
}

// --- KDE -------------------------------------------------------------------------

TEST(KdeTest, RequiresSamples) {
  EXPECT_FALSE(Kde::Fit({}).ok());
  EXPECT_FALSE(Kde::FitWithBandwidth({1.0}, 0.0).ok());
  EXPECT_FALSE(Kde::FitWithBandwidth({1.0}, -1.0).ok());
}

TEST(KdeTest, PdfIntegratesToOne) {
  SeededRng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 50; ++i) samples.push_back(rng.Normal(10, 2));
  Result<Kde> kde = Kde::Fit(samples);
  ASSERT_TRUE(kde.ok());
  // Trapezoid integration over a wide window.
  double integral = 0;
  const double lo = 0, hi = 20, step = 0.01;
  for (double x = lo; x < hi; x += step) {
    integral += kde->Pdf(x) * step;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdeTest, CdfMonotoneAndBounded) {
  Result<Kde> kde = Kde::Fit({1, 5, 9, 12});
  ASSERT_TRUE(kde.ok());
  double prev = -1;
  for (double x = -10; x <= 25; x += 0.5) {
    const double c = kde->Cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_LT(kde->Cdf(-10), 0.01);
  EXPECT_GT(kde->Cdf(25), 0.99);
}

TEST(KdeTest, CdfMatchesNormalGroundTruth) {
  SeededRng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(rng.Normal(0, 1));
  Result<Kde> kde = Kde::Fit(samples);
  ASSERT_TRUE(kde.ok());
  // At large n the KDE CDF approaches the true normal CDF.
  for (double x : {-1.5, -0.5, 0.0, 0.5, 1.5}) {
    const double truth = 0.5 * (1 + std::erf(x / std::sqrt(2.0)));
    EXPECT_NEAR(kde->Cdf(x), truth, 0.02) << "x=" << x;
  }
}

TEST(KdeTest, DegenerateSamplesStillWork) {
  Result<Kde> kde = Kde::Fit({5, 5, 5, 5});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0);
  EXPECT_LT(kde->Cdf(4.9), 0.01);
  EXPECT_GT(kde->Cdf(5.1), 0.99);
  EXPECT_NEAR(kde->Cdf(5.0), 0.5, 0.01);
}

TEST(KdeTest, BandwidthRules) {
  SeededRng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(rng.Normal(0, 3));
  const double silverman = SelectBandwidth(samples, BandwidthRule::kSilverman);
  const double scott = SelectBandwidth(samples, BandwidthRule::kScott);
  EXPECT_GT(silverman, 0);
  EXPECT_GT(scott, 0);
  // Scott's constant (1.06 sigma) exceeds Silverman's robust variant.
  EXPECT_LT(silverman, scott);
}

// Property sweep: the anomaly score prob(S <= u) must increase with u for
// any sample size.
class KdeMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(KdeMonotonicityTest, ScoreIncreasesWithObservation) {
  SeededRng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> samples;
  for (int i = 0; i < GetParam(); ++i) samples.push_back(rng.Normal(100, 10));
  Result<Kde> kde = Kde::Fit(samples);
  ASSERT_TRUE(kde.ok());
  double prev = -1;
  for (double u = 50; u <= 200; u += 10) {
    const double score = kde->Cdf(u);
    EXPECT_GE(score, prev);
    prev = score;
  }
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, KdeMonotonicityTest,
                         ::testing::Values(2, 5, 10, 20, 50, 200));

// --- SortedKde (batched fast path) -------------------------------------------

TEST(DescriptiveTest, WelfordVarianceMatchesTwoPassReference) {
  SeededRng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    const int n = static_cast<int>(rng.UniformInt(2, 400));
    const double mean = rng.Uniform(-1e6, 1e6);
    for (int i = 0; i < n; ++i) xs.push_back(rng.Normal(mean, 3.0));
    // Two-pass reference in long double.
    long double mu = 0;
    for (double x : xs) mu += x;
    mu /= n;
    long double ss = 0;
    for (double x : xs) ss += (x - mu) * (x - mu);
    const double reference = static_cast<double>(ss / (n - 1));
    EXPECT_NEAR(Variance(xs), reference,
                std::max(1e-9, std::fabs(reference)) * 1e-9);
  }
}

// Randomized equivalence property from the issue contract: the batched,
// tail-truncated evaluator must match the naive kernel sum within 1e-9
// for any fit over the same samples.
TEST(SortedKdeTest, CdfMatchesNaiveKdeWithin1e9) {
  SeededRng rng(43);
  for (int size : {2, 3, 10, 50, 500, 4000}) {
    std::vector<double> samples;
    for (int i = 0; i < size; ++i) samples.push_back(rng.Normal(100, 5));
    Result<Kde> naive = Kde::Fit(samples);
    Result<SortedKde> sorted = SortedKde::Fit(samples);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(sorted.ok());
    // Same rule, same samples; summation order may differ by ULPs.
    EXPECT_NEAR(naive->bandwidth(), sorted->bandwidth(),
                naive->bandwidth() * 1e-12)
        << size;
    // Sweep through the bulk, both tails, and exact sample points.
    std::vector<double> xs;
    for (double x = 60; x <= 140; x += 2.5) xs.push_back(x);
    xs.push_back(samples.front());
    xs.push_back(-1e9);
    xs.push_back(1e9);
    for (int i = 0; i < 50; ++i) xs.push_back(rng.Normal(100, 25));
    for (double x : xs) {
      EXPECT_NEAR(sorted->Cdf(x), naive->Cdf(x), 1e-9)
          << "n=" << size << " x=" << x;
      EXPECT_NEAR(sorted->Pdf(x), naive->Pdf(x), 1e-9)
          << "n=" << size << " x=" << x;
    }
  }
}

TEST(SortedKdeTest, CdfBatchBitIdenticalToCdfInInputOrder) {
  SeededRng rng(47);
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) samples.push_back(rng.Normal(50, 8));
  Result<SortedKde> kde = SortedKde::Fit(samples);
  ASSERT_TRUE(kde.ok());
  // Unsorted observations with duplicates and tail values.
  std::vector<double> xs{80, 20, 50, 50, 49.7, 1e6, -1e6, 63.2, 12.5};
  for (int i = 0; i < 40; ++i) xs.push_back(rng.Normal(50, 30));
  const std::vector<double> batch = kde->CdfBatch(xs);
  ASSERT_EQ(batch.size(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    // Bit-identical, not just close: both paths run the same arithmetic.
    EXPECT_EQ(batch[i], kde->Cdf(xs[i])) << "i=" << i;
  }
}

TEST(SortedKdeTest, TailsAreExact) {
  Result<SortedKde> kde = SortedKde::Fit({10, 20, 30});
  ASSERT_TRUE(kde.ok());
  // Far beyond the truncation window the CDF is exactly 0 or 1 — the
  // prefix-count collapse, not an approximation.
  EXPECT_EQ(kde->Cdf(-1e12), 0.0);
  EXPECT_EQ(kde->Cdf(1e12), 1.0);
}

TEST(SortedKdeTest, DegenerateSamplesStillWork) {
  Result<SortedKde> kde = SortedKde::Fit({5, 5, 5, 5});
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->bandwidth(), 0);
  EXPECT_LT(kde->Cdf(4.9), 0.01);
  EXPECT_GT(kde->Cdf(5.1), 0.99);
  EXPECT_NEAR(kde->Cdf(5.0), 0.5, 0.01);
}

TEST(SortedKdeTest, RequiresSamplesAndPositiveBandwidth) {
  EXPECT_FALSE(SortedKde::Fit({}).ok());
  EXPECT_FALSE(SortedKde::FitWithBandwidth({1.0}, 0.0).ok());
  EXPECT_FALSE(SortedKde::FitWithBandwidth({1.0}, -1.0).ok());
}

TEST(AnomalyTest, ModelBasedScoringMatchesDirectScoring) {
  SeededRng rng(53);
  std::vector<double> baseline;
  for (int i = 0; i < 40; ++i) baseline.push_back(rng.Normal(100, 5));
  const std::vector<double> observed{108, 95, 131, 100.5};
  for (AnomalyAggregation aggregation :
       {AnomalyAggregation::kMean, AnomalyAggregation::kMedian,
        AnomalyAggregation::kMax}) {
    AnomalyConfig config;
    config.aggregation = aggregation;
    Result<SortedKde> model = SortedKde::Fit(baseline, config.bandwidth_rule);
    ASSERT_TRUE(model.ok());
    Result<AnomalyScore> direct = ScoreAnomaly(baseline, observed, config);
    Result<AnomalyScore> via_model = ScoreWithModel(*model, observed, config);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_model.ok());
    EXPECT_EQ(direct->score, via_model->score);  // Bit-identical.
    EXPECT_EQ(direct->anomalous, via_model->anomalous);
    Result<AnomalyScore> direct_dev =
        ScoreDeviation(baseline, observed, config);
    Result<AnomalyScore> model_dev =
        ScoreDeviationWithModel(*model, observed, config);
    ASSERT_TRUE(direct_dev.ok());
    ASSERT_TRUE(model_dev.ok());
    EXPECT_EQ(direct_dev->score, model_dev->score);
  }
  EXPECT_FALSE(
      ScoreWithModel(*SortedKde::Fit(baseline), {}, AnomalyConfig{}).ok());
}

// --- Correlation ---------------------------------------------------------------

TEST(CorrelationTest, PerfectLinear) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(CorrelationTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0);       // Length mismatch.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {1}), 0);          // Too short.
  EXPECT_DOUBLE_EQ(PearsonCorrelation({3, 3, 3}, {1, 2, 3}), 0);  // Constant.
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({3, 3, 3}, {1, 2, 3}), 0);
}

TEST(CorrelationTest, SpearmanRobustToMonotoneTransform) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));  // Nonlinear but monotone.
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(xs, ys), 1.0);
}

TEST(CorrelationTest, MidRanksHandleTies) {
  const std::vector<double> ranks = MidRanks({10, 20, 20, 30});
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(CorrelationTest, IndependentSeriesNearZero) {
  SeededRng rng(21);
  std::vector<double> xs, ys;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.Normal(0, 1));
    ys.push_back(rng.Normal(0, 1));
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.05);
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 0.0, 0.05);
}

// --- Anomaly scoring --------------------------------------------------------------

TEST(AnomalyTest, RequiresData) {
  EXPECT_FALSE(ScoreAnomaly({}, {1.0}).ok());
  EXPECT_FALSE(ScoreAnomaly({1.0}, {}).ok());
}

TEST(AnomalyTest, ClearShiftScoresHigh) {
  SeededRng rng(23);
  std::vector<double> baseline;
  for (int i = 0; i < 20; ++i) baseline.push_back(rng.Normal(100, 5));
  Result<AnomalyScore> score = ScoreAnomaly(baseline, {150, 160, 155});
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->score, 0.95);
  EXPECT_TRUE(score->anomalous);
}

TEST(AnomalyTest, NoShiftScoresNearHalf) {
  SeededRng rng(23);
  std::vector<double> baseline;
  std::vector<double> observed;
  for (int i = 0; i < 30; ++i) baseline.push_back(rng.Normal(100, 5));
  for (int i = 0; i < 10; ++i) observed.push_back(rng.Normal(100, 5));
  Result<AnomalyScore> score = ScoreAnomaly(baseline, observed);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(score->score, 0.5, 0.2);
  EXPECT_FALSE(score->anomalous);
}

TEST(AnomalyTest, DecreaseScoresLow) {
  SeededRng rng(29);
  std::vector<double> baseline;
  for (int i = 0; i < 20; ++i) baseline.push_back(rng.Normal(100, 5));
  Result<AnomalyScore> score = ScoreAnomaly(baseline, {50, 55});
  ASSERT_TRUE(score.ok());
  EXPECT_LT(score->score, 0.05);
}

TEST(AnomalyTest, TwoSidedDeviationCatchesBothDirections) {
  SeededRng rng(31);
  std::vector<double> baseline;
  for (int i = 0; i < 20; ++i) baseline.push_back(rng.Normal(100, 5));
  Result<AnomalyScore> up = ScoreDeviation(baseline, {150});
  Result<AnomalyScore> down = ScoreDeviation(baseline, {50});
  Result<AnomalyScore> same = ScoreDeviation(baseline, {100});
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(same.ok());
  EXPECT_GT(up->score, 0.9);
  EXPECT_GT(down->score, 0.9);
  EXPECT_LT(same->score, 0.4);
}

TEST(AnomalyTest, AggregationModes) {
  SeededRng rng(37);
  std::vector<double> baseline;
  for (int i = 0; i < 20; ++i) baseline.push_back(rng.Normal(100, 5));
  // One wild observation among normals.
  const std::vector<double> observed{100, 100, 100, 200};
  AnomalyConfig mean_config;
  mean_config.aggregation = AnomalyAggregation::kMean;
  AnomalyConfig median_config;
  median_config.aggregation = AnomalyAggregation::kMedian;
  AnomalyConfig max_config;
  max_config.aggregation = AnomalyAggregation::kMax;
  const double mean_score = ScoreAnomaly(baseline, observed, mean_config)->score;
  const double median_score =
      ScoreAnomaly(baseline, observed, median_config)->score;
  const double max_score = ScoreAnomaly(baseline, observed, max_config)->score;
  EXPECT_LT(median_score, mean_score);  // Median shrugs off the outlier.
  EXPECT_GT(max_score, 0.99);           // Max latches onto it.
}

// Property sweep: with few samples (the paper's "few tens") the score for a
// genuinely shifted observation stays above threshold across seeds.
class SmallSampleAnomalyTest : public ::testing::TestWithParam<int> {};

TEST_P(SmallSampleAnomalyTest, DetectsTwoSigmaShiftWithFewSamples) {
  SeededRng rng(static_cast<uint64_t>(1000 + GetParam()));
  std::vector<double> baseline;
  for (int i = 0; i < 15; ++i) baseline.push_back(rng.Normal(100, 5));
  std::vector<double> observed;
  for (int i = 0; i < 5; ++i) observed.push_back(rng.Normal(125, 5));
  Result<AnomalyScore> score = ScoreAnomaly(baseline, observed);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->score, 0.8) << "seed offset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallSampleAnomalyTest,
                         ::testing::Range(0, 12));

// --- Naive Bayes ------------------------------------------------------------------

TEST(NaiveBayesTest, RequiresTwoSamplesPerClass) {
  EXPECT_FALSE(GaussianNaiveBayes::Fit({1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(GaussianNaiveBayes::Fit({1.0, 2.0}, {3.0}).ok());
}

TEST(NaiveBayesTest, SeparatesWellSeparatedClasses) {
  Result<GaussianNaiveBayes> nb =
      GaussianNaiveBayes::Fit({1, 2, 3, 2, 1}, {10, 11, 12, 11, 10});
  ASSERT_TRUE(nb.ok());
  EXPECT_FALSE(nb->Classify(2.0));
  EXPECT_TRUE(nb->Classify(11.0));
  EXPECT_LT(nb->PosteriorClass1(1.5), 0.05);
  EXPECT_GT(nb->PosteriorClass1(11.0), 0.95);
}

TEST(NaiveBayesTest, PosteriorCrossesAtMidpointForSymmetricClasses) {
  Result<GaussianNaiveBayes> nb =
      GaussianNaiveBayes::Fit({0, 1, 2, 1, 0.5}, {10, 11, 12, 11, 10.5});
  ASSERT_TRUE(nb.ok());
  const double mid = (nb->mean0() + nb->mean1()) / 2;
  EXPECT_NEAR(nb->PosteriorClass1(mid), 0.5, 0.1);
}

TEST(NaiveBayesTest, ConstantClassDoesNotBlowUp) {
  Result<GaussianNaiveBayes> nb =
      GaussianNaiveBayes::Fit({5, 5, 5}, {10, 11, 12});
  ASSERT_TRUE(nb.ok());
  EXPECT_FALSE(nb->Classify(5.0));
  EXPECT_TRUE(nb->Classify(11.0));
}

}  // namespace
}  // namespace diads::stats
