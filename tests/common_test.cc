// Unit tests for the common module: Status/Result, component registry,
// simulated time, RNG, strings, table printing, and the event log.
#include <gtest/gtest.h>

#include <set>

#include "common/event_log.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace diads {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("widget missing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "widget missing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: widget missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.value_or(3), 3);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  DIADS_ASSIGN_OR_RETURN(int half, HalveEven(x));
  DIADS_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> error = QuarterEven(6);  // 6/2 = 3 is odd.
  EXPECT_FALSE(error.ok());
}

// --- ComponentRegistry --------------------------------------------------------

TEST(ComponentRegistryTest, RegisterAndLookup) {
  ComponentRegistry registry;
  Result<ComponentId> v1 = registry.Register(ComponentKind::kVolume, "V1");
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->valid());
  EXPECT_EQ(registry.NameOf(*v1), "V1");
  EXPECT_EQ(registry.KindOf(*v1), ComponentKind::kVolume);
  Result<ComponentId> found = registry.FindByName("V1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *v1);
}

TEST(ComponentRegistryTest, DuplicateNameRejected) {
  ComponentRegistry registry;
  ASSERT_TRUE(registry.Register(ComponentKind::kVolume, "V1").ok());
  EXPECT_EQ(registry.Register(ComponentKind::kDisk, "V1").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ComponentRegistryTest, EmptyNameRejected) {
  ComponentRegistry registry;
  EXPECT_EQ(registry.Register(ComponentKind::kVolume, "").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ComponentRegistryTest, GetOrRegisterIsIdempotent) {
  ComponentRegistry registry;
  Result<ComponentId> a = registry.GetOrRegister(ComponentKind::kQuery, "Q2");
  Result<ComponentId> b = registry.GetOrRegister(ComponentKind::kQuery, "Q2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Same name, different kind: rejected.
  EXPECT_FALSE(registry.GetOrRegister(ComponentKind::kVolume, "Q2").ok());
}

TEST(ComponentRegistryTest, AllOfKindPreservesOrder) {
  ComponentRegistry registry;
  ComponentId v1 = registry.MustRegister(ComponentKind::kVolume, "V1");
  registry.MustRegister(ComponentKind::kDisk, "d1");
  ComponentId v2 = registry.MustRegister(ComponentKind::kVolume, "V2");
  std::vector<ComponentId> volumes = registry.AllOfKind(ComponentKind::kVolume);
  ASSERT_EQ(volumes.size(), 2u);
  EXPECT_EQ(volumes[0], v1);
  EXPECT_EQ(volumes[1], v2);
}

TEST(ComponentRegistryTest, AllKindsHaveNames) {
  for (ComponentKind kind :
       {ComponentKind::kServer, ComponentKind::kHba, ComponentKind::kFcPort,
        ComponentKind::kFcSwitch, ComponentKind::kStorageSubsystem,
        ComponentKind::kDisk, ComponentKind::kStoragePool,
        ComponentKind::kVolume, ComponentKind::kDatabase,
        ComponentKind::kTablespace, ComponentKind::kTable,
        ComponentKind::kIndex, ComponentKind::kPlanOperator,
        ComponentKind::kQuery, ComponentKind::kWorkload}) {
    EXPECT_STRNE(ComponentKindName(kind), "Unknown");
  }
}

// --- Sim time ----------------------------------------------------------------

TEST(SimTimeTest, UnitHelpers) {
  EXPECT_EQ(Seconds(1.5), 1500);
  EXPECT_EQ(Minutes(2), 120000);
  EXPECT_EQ(Hours(1), 3600000);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimTime(Hours(8) + Minutes(5) + Seconds(30)),
            "d0 08:05:30");
  EXPECT_EQ(FormatSimTime(kMsPerDay + Hours(1)), "d1 01:00:00");
  EXPECT_EQ(FormatDuration(430), "430ms");
  EXPECT_EQ(FormatDuration(Seconds(2.5)), "2.5s");
  EXPECT_EQ(FormatDuration(Minutes(2) + Seconds(5)), "2m 05s");
  EXPECT_EQ(FormatDuration(Hours(3) + Minutes(7)), "3h 07m");
}

TEST(TimeIntervalTest, ContainsAndOverlap) {
  TimeInterval a{100, 200};
  EXPECT_TRUE(a.Contains(100));
  EXPECT_TRUE(a.Contains(199));
  EXPECT_FALSE(a.Contains(200));  // Half-open.
  EXPECT_FALSE(a.Contains(99));
  EXPECT_TRUE(a.Overlaps(TimeInterval{150, 400}));
  EXPECT_FALSE(a.Overlaps(TimeInterval{200, 400}));
  EXPECT_EQ(a.Intersect(TimeInterval{150, 400}), (TimeInterval{150, 200}));
  EXPECT_DOUBLE_EQ(a.OverlapFraction(TimeInterval{150, 400}), 0.5);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(TimeInterval{0, 1000}), 1.0);
}

TEST(TimeIntervalTest, EmptyIntersection) {
  TimeInterval a{100, 200};
  TimeInterval inter = a.Intersect(TimeInterval{300, 400});
  EXPECT_TRUE(inter.empty());
  EXPECT_DOUBLE_EQ(a.OverlapFraction(TimeInterval{300, 400}), 0.0);
}

TEST(SimClockTest, Monotonic) {
  SimClock clock(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.AdvanceTo(120);  // In the past: no-op.
  EXPECT_EQ(clock.now(), 150);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now(), 500);
}

// --- RNG ----------------------------------------------------------------------

TEST(SeededRngTest, Deterministic) {
  SeededRng a(7);
  SeededRng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(SeededRngTest, ChildStreamsAreOrderIndependent) {
  SeededRng parent(7);
  SeededRng c1 = parent.Child("alpha");
  // Consuming the parent or a sibling must not affect "alpha".
  parent.Uniform();
  SeededRng sibling = parent.Child("beta");
  sibling.Uniform();
  SeededRng c2 = SeededRng(7).Child("alpha");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(c1.Uniform(), c2.Uniform());
  }
}

TEST(SeededRngTest, UniformBounds) {
  SeededRng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(SeededRngTest, UniformIntInclusive) {
  SeededRng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 3));
  EXPECT_EQ(seen, (std::set<int64_t>{1, 2, 3}));
}

TEST(SeededRngTest, NormalMoments) {
  SeededRng rng(13);
  double sum = 0, ss = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(SeededRngTest, BernoulliEdgeCases) {
  SeededRng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(SeededRngTest, WeightedIndexRespectsWeights) {
  SeededRng rng(19);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) {
    counts[rng.WeightedIndex({1.0, 2.0, 6.0})]++;
  }
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9.0, 0.05);
}

// --- Strings --------------------------------------------------------------------

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
}

TEST(StringsTest, JoinSplitRoundTrip) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("volume-v1", "volume"));
  EXPECT_FALSE(StartsWith("v", "volume"));
  EXPECT_TRUE(EndsWith("table:part", ":part"));
  EXPECT_FALSE(EndsWith("part", "partsupp"));
}

TEST(StringsTest, Percent) {
  EXPECT_EQ(FormatPercent(0.998), "99.8%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

// --- TablePrinter -----------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "Column"});
  table.AddRow({"longvalue", "x"});
  table.AddRow({"s"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| A         | Column |"), std::string::npos);
  EXPECT_NE(out.find("| longvalue | x      |"), std::string::npos);
  EXPECT_NE(out.find("| s         |        |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.Render();
  // 5 rules: top, under-header, separator, bottom... count '+--' lines.
  int rules = 0;
  for (size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

// --- EventLog -----------------------------------------------------------------------

SystemEvent MakeEvent(SimTimeMs t, EventType type, uint32_t subject = 0) {
  SystemEvent event;
  event.time = t;
  event.type = type;
  event.subject = ComponentId{subject};
  return event;
}

TEST(EventLogTest, KeepsSortedOrderOnOutOfOrderAppend) {
  EventLog log;
  ASSERT_TRUE(log.Append(MakeEvent(100, EventType::kVolumeCreated)).ok());
  ASSERT_TRUE(log.Append(MakeEvent(50, EventType::kZoningChanged)).ok());
  ASSERT_TRUE(log.Append(MakeEvent(75, EventType::kDiskFailed)).ok());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.all()[0].time, 50);
  EXPECT_EQ(log.all()[1].time, 75);
  EXPECT_EQ(log.all()[2].time, 100);
}

TEST(EventLogTest, EventsInWindow) {
  EventLog log;
  for (SimTimeMs t : {10, 20, 30, 40}) {
    ASSERT_TRUE(log.Append(MakeEvent(t, EventType::kDmlBatch)).ok());
  }
  EXPECT_EQ(log.EventsIn(TimeInterval{20, 40}).size(), 2u);  // 20, 30.
  EXPECT_EQ(log.EventsIn(TimeInterval{0, 100}).size(), 4u);
  EXPECT_TRUE(log.EventsIn(TimeInterval{41, 100}).empty());
}

TEST(EventLogTest, FiltersByTypeAndComponent) {
  EventLog log;
  ASSERT_TRUE(log.Append(MakeEvent(10, EventType::kDiskFailed, 1)).ok());
  ASSERT_TRUE(log.Append(MakeEvent(20, EventType::kDiskRecovered, 1)).ok());
  ASSERT_TRUE(log.Append(MakeEvent(30, EventType::kDiskFailed, 2)).ok());
  EXPECT_EQ(
      log.EventsOfTypeIn(EventType::kDiskFailed, TimeInterval{0, 100}).size(),
      2u);
  EXPECT_EQ(log.EventsForComponentIn(ComponentId{1}, TimeInterval{0, 100})
                .size(),
            2u);
}

TEST(EventLogTest, PlanAffectingClassification) {
  EXPECT_TRUE(IsPlanAffectingEvent(EventType::kIndexDropped));
  EXPECT_TRUE(IsPlanAffectingEvent(EventType::kIndexCreated));
  EXPECT_TRUE(IsPlanAffectingEvent(EventType::kDbParamChanged));
  EXPECT_TRUE(IsPlanAffectingEvent(EventType::kTableStatsChanged));
  EXPECT_FALSE(IsPlanAffectingEvent(EventType::kVolumeCreated));
  EXPECT_FALSE(IsPlanAffectingEvent(EventType::kDmlBatch));
  EXPECT_FALSE(IsPlanAffectingEvent(EventType::kTableLockContention));
}

}  // namespace
}  // namespace diads
