// Unit tests for the SAN topology: construction rules, zoning and LUN
// masking semantics, path resolution through the fabric, disk-sharing
// queries, and validation.
#include <gtest/gtest.h>

#include "common/ids.h"
#include "san/config_db.h"
#include "san/topology.h"

namespace diads::san {
namespace {

/// A small two-pool SAN used across tests: one server, one edge switch,
/// one subsystem; pool A (2 disks) holding VA1/VA2, pool B (3 disks)
/// holding VB1.
struct MiniSan {
  ComponentRegistry registry;
  SanTopology topology{&registry};
  ComponentId server, hba, hba_port;
  ComponentId sw, sw_p0, sw_p1;
  ComponentId subsystem, ss_port;
  ComponentId pool_a, pool_b;
  ComponentId va1, va2, vb1;
  ComponentId disk_a1, disk_a2;

  MiniSan() {
    server = topology.AddServer("server", "Linux").value();
    hba = topology.AddHba("hba", server).value();
    hba_port = topology.AddPort("hba-p0", PortOwner::kHba, hba).value();
    sw = topology.AddSwitch("edge", false).value();
    sw_p0 = topology.AddPort("edge-p0", PortOwner::kSwitch, sw).value();
    sw_p1 = topology.AddPort("edge-p1", PortOwner::kSwitch, sw).value();
    subsystem = topology.AddSubsystem("ss", "DS6000").value();
    ss_port = topology.AddPort("ss-p0", PortOwner::kSubsystem, subsystem).value();
    EXPECT_TRUE(topology.Link(hba_port, sw_p0).ok());
    EXPECT_TRUE(topology.Link(sw_p1, ss_port).ok());
    EXPECT_TRUE(topology.AddZone("z", {hba_port, ss_port}).ok());
    pool_a = topology.AddPool("poolA", subsystem, RaidLevel::kRaid5).value();
    pool_b = topology.AddPool("poolB", subsystem, RaidLevel::kRaid10).value();
    disk_a1 = topology.AddDisk("dA1", pool_a).value();
    disk_a2 = topology.AddDisk("dA2", pool_a).value();
    EXPECT_TRUE(topology.AddDisk("dB1", pool_b).ok());
    EXPECT_TRUE(topology.AddDisk("dB2", pool_b).ok());
    EXPECT_TRUE(topology.AddDisk("dB3", pool_b).ok());
    va1 = topology.AddVolume("VA1", pool_a, 100).value();
    va2 = topology.AddVolume("VA2", pool_a, 50).value();
    vb1 = topology.AddVolume("VB1", pool_b, 200).value();
    EXPECT_TRUE(topology.MapLun(server, va1).ok());
    EXPECT_TRUE(topology.MapLun(server, vb1).ok());
  }
};

TEST(SanTopologyTest, BuildersValidateParents) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  // HBA on a non-server is rejected.
  EXPECT_FALSE(topology.AddHba("h", ComponentId{9999}).ok());
  ComponentId hba = topology.AddHba("h", server).value();
  // A pool needs a subsystem, not an HBA.
  EXPECT_FALSE(topology.AddPool("p", hba, RaidLevel::kRaid5).ok());
}

TEST(SanTopologyTest, RaidProperties) {
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid0), 1.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid1), 2.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid5), 4.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid10), 2.0);
  EXPECT_STREQ(RaidLevelName(RaidLevel::kRaid5), "RAID5");
}

TEST(SanTopologyTest, DisksOfVolume) {
  MiniSan san;
  EXPECT_EQ(san.topology.DisksOfVolume(san.va1).size(), 2u);
  EXPECT_EQ(san.topology.DisksOfVolume(san.vb1).size(), 3u);
}

TEST(SanTopologyTest, VolumesSharingDisks) {
  MiniSan san;
  std::vector<ComponentId> sharers = san.topology.VolumesSharingDisks(san.va1);
  ASSERT_EQ(sharers.size(), 1u);
  EXPECT_EQ(sharers[0], san.va2);  // Same pool; VB1 is in another pool.
  EXPECT_TRUE(san.topology.VolumesSharingDisks(san.vb1).empty());
}

TEST(SanTopologyTest, DiskFailureShrinksActiveSet) {
  MiniSan san;
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 2);
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, true).ok());
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 1);
  EXPECT_EQ(san.topology.DisksOfVolume(san.va1).size(), 1u);
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, false).ok());
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 2);
}

TEST(SanTopologyTest, ResolvePathHappyCase) {
  MiniSan san;
  Result<IoPath> path = san.topology.ResolvePath(san.server, san.va1);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->server, san.server);
  EXPECT_EQ(path->hba, san.hba);
  ASSERT_EQ(path->switches.size(), 1u);
  EXPECT_EQ(path->switches[0], san.sw);
  EXPECT_EQ(path->subsystem, san.subsystem);
  EXPECT_EQ(path->pool, san.pool_a);
  EXPECT_EQ(path->volume, san.va1);
  EXPECT_EQ(path->disks.size(), 2u);
  // Traversal order: server first, disks last.
  std::vector<ComponentId> all = path->AllComponents();
  EXPECT_EQ(all.front(), san.server);
  EXPECT_EQ(all.back(), path->disks.back());
}

TEST(SanTopologyTest, LunMaskingBlocksUnmappedVolume) {
  MiniSan san;
  // VA2 was never mapped to the server.
  Result<IoPath> path = san.topology.ResolvePath(san.server, san.va2);
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, ZoningBlocksUnzonedRoute) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  ComponentId hba = topology.AddHba("h", server).value();
  ComponentId hp = topology.AddPort("hp", PortOwner::kHba, hba).value();
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ComponentId sp = topology.AddPort("sp", PortOwner::kSubsystem, ss).value();
  ASSERT_TRUE(topology.Link(hp, sp).ok());
  ComponentId pool = topology.AddPool("p", ss, RaidLevel::kRaid0).value();
  ASSERT_TRUE(topology.AddDisk("d", pool).ok());
  ComponentId vol = topology.AddVolume("v", pool, 10).value();
  ASSERT_TRUE(topology.MapLun(server, vol).ok());
  // Cabled + mapped but NOT zoned: no route.
  EXPECT_FALSE(topology.ResolvePath(server, vol).ok());
  ASSERT_TRUE(topology.AddZone("z", {hp, sp}).ok());
  EXPECT_TRUE(topology.ResolvePath(server, vol).ok());
}

TEST(SanTopologyTest, MultiHopFabricRoute) {
  // server -> edge1 -> core -> edge2 -> subsystem (the Figure-1 hierarchy).
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  ComponentId hba = topology.AddHba("h", server).value();
  ComponentId hp = topology.AddPort("hp", PortOwner::kHba, hba).value();
  ComponentId e1 = topology.AddSwitch("e1", false).value();
  ComponentId core = topology.AddSwitch("core", true).value();
  ComponentId e2 = topology.AddSwitch("e2", false).value();
  ComponentId e1a = topology.AddPort("e1a", PortOwner::kSwitch, e1).value();
  ComponentId e1b = topology.AddPort("e1b", PortOwner::kSwitch, e1).value();
  ComponentId ca = topology.AddPort("ca", PortOwner::kSwitch, core).value();
  ComponentId cb = topology.AddPort("cb", PortOwner::kSwitch, core).value();
  ComponentId e2a = topology.AddPort("e2a", PortOwner::kSwitch, e2).value();
  ComponentId e2b = topology.AddPort("e2b", PortOwner::kSwitch, e2).value();
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ComponentId sp = topology.AddPort("sp", PortOwner::kSubsystem, ss).value();
  ASSERT_TRUE(topology.Link(hp, e1a).ok());
  ASSERT_TRUE(topology.Link(e1b, ca).ok());
  ASSERT_TRUE(topology.Link(cb, e2a).ok());
  ASSERT_TRUE(topology.Link(e2b, sp).ok());
  ASSERT_TRUE(topology.AddZone("z", {hp, sp}).ok());
  ComponentId pool = topology.AddPool("p", ss, RaidLevel::kRaid5).value();
  ASSERT_TRUE(topology.AddDisk("d1", pool).ok());
  ComponentId vol = topology.AddVolume("v", pool, 10).value();
  ASSERT_TRUE(topology.MapLun(server, vol).ok());

  Result<IoPath> path = topology.ResolvePath(server, vol);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  // All three switches traversed, edge first.
  ASSERT_EQ(path->switches.size(), 3u);
  EXPECT_EQ(path->switches[0], e1);
  EXPECT_EQ(path->switches[1], core);
  EXPECT_EQ(path->switches[2], e2);
}

TEST(SanTopologyTest, ValidateCatchesEmptyPool) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ASSERT_TRUE(topology.AddPool("empty", ss, RaidLevel::kRaid5).ok());
  EXPECT_EQ(topology.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, ValidateCatchesVolumeWithAllDisksFailed) {
  MiniSan san;
  EXPECT_TRUE(san.topology.Validate().ok());
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, true).ok());
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a2, true).ok());
  EXPECT_EQ(san.topology.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, SelfLinkRejected) {
  MiniSan san;
  EXPECT_FALSE(san.topology.Link(san.hba_port, san.hba_port).ok());
}

TEST(SanTopologyTest, ZoneExtension) {
  MiniSan san;
  EXPECT_FALSE(san.topology.InSameZone(san.sw_p0, san.ss_port));
  ASSERT_TRUE(san.topology.AddZone("z", {san.sw_p0}).ok());  // Extend "z".
  EXPECT_TRUE(san.topology.InSameZone(san.sw_p0, san.ss_port));
}

// --- ConfigDatabase ------------------------------------------------------------

TEST(ConfigDatabaseTest, OperationsMutateAndLog) {
  MiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);

  Result<ComponentId> vol =
      config.ProvisionVolume(1000, "V-new", san.pool_a, 42);
  ASSERT_TRUE(vol.ok());
  EXPECT_EQ(san.topology.volume(*vol).pool, san.pool_a);
  ASSERT_TRUE(
      config.ChangeZoning(2000, "z2", {san.hba_port, san.ss_port}).ok());
  ASSERT_TRUE(config.ChangeLunMapping(3000, san.server, *vol).ok());
  EXPECT_TRUE(san.topology.LunMapped(san.server, *vol));
  ASSERT_TRUE(config.FailDisk(4000, san.disk_a1).ok());
  EXPECT_TRUE(san.topology.disk(san.disk_a1).failed);
  ASSERT_TRUE(config.RecoverDisk(5000, san.disk_a1).ok());
  ASSERT_TRUE(
      config.RecordRaidRebuild(TimeInterval{6000, 7000}, san.pool_a).ok());

  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log.all()[0].type, EventType::kVolumeCreated);
  EXPECT_EQ(log.all()[1].type, EventType::kZoningChanged);
  EXPECT_EQ(log.all()[2].type, EventType::kLunMappingChanged);
  EXPECT_EQ(log.all()[3].type, EventType::kDiskFailed);
  EXPECT_EQ(log.all()[4].type, EventType::kDiskRecovered);
  EXPECT_EQ(log.all()[5].type, EventType::kRaidRebuildStarted);
  EXPECT_EQ(log.all()[6].type, EventType::kRaidRebuildCompleted);
}

TEST(ConfigDatabaseTest, NewVolumeSharesDisksWithPoolSiblings) {
  MiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);
  Result<ComponentId> v_prime =
      config.ProvisionVolume(1000, "V-prime", san.pool_a, 150);
  ASSERT_TRUE(v_prime.ok());
  // The scenario-1 mechanism: the new volume shares VA1's physical disks.
  std::vector<ComponentId> sharers = san.topology.VolumesSharingDisks(san.va1);
  EXPECT_EQ(sharers.size(), 2u);
  bool found = false;
  for (ComponentId sharer : sharers) {
    if (sharer == *v_prime) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace diads::san
