// Unit tests for the SAN topology: construction rules, zoning and LUN
// masking semantics, path resolution through the fabric, disk-sharing
// queries, and validation.
#include <gtest/gtest.h>

#include "common/ids.h"
#include "san/config_db.h"
#include "san/topology.h"

namespace diads::san {
namespace {

/// A small two-pool SAN used across tests: one server, one edge switch,
/// one subsystem; pool A (2 disks) holding VA1/VA2, pool B (3 disks)
/// holding VB1.
struct MiniSan {
  ComponentRegistry registry;
  SanTopology topology{&registry};
  ComponentId server, hba, hba_port;
  ComponentId sw, sw_p0, sw_p1;
  ComponentId subsystem, ss_port;
  ComponentId pool_a, pool_b;
  ComponentId va1, va2, vb1;
  ComponentId disk_a1, disk_a2;

  MiniSan() {
    server = topology.AddServer("server", "Linux").value();
    hba = topology.AddHba("hba", server).value();
    hba_port = topology.AddPort("hba-p0", PortOwner::kHba, hba).value();
    sw = topology.AddSwitch("edge", false).value();
    sw_p0 = topology.AddPort("edge-p0", PortOwner::kSwitch, sw).value();
    sw_p1 = topology.AddPort("edge-p1", PortOwner::kSwitch, sw).value();
    subsystem = topology.AddSubsystem("ss", "DS6000").value();
    ss_port = topology.AddPort("ss-p0", PortOwner::kSubsystem, subsystem).value();
    EXPECT_TRUE(topology.Link(hba_port, sw_p0).ok());
    EXPECT_TRUE(topology.Link(sw_p1, ss_port).ok());
    EXPECT_TRUE(topology.AddZone("z", {hba_port, ss_port}).ok());
    pool_a = topology.AddPool("poolA", subsystem, RaidLevel::kRaid5).value();
    pool_b = topology.AddPool("poolB", subsystem, RaidLevel::kRaid10).value();
    disk_a1 = topology.AddDisk("dA1", pool_a).value();
    disk_a2 = topology.AddDisk("dA2", pool_a).value();
    EXPECT_TRUE(topology.AddDisk("dB1", pool_b).ok());
    EXPECT_TRUE(topology.AddDisk("dB2", pool_b).ok());
    EXPECT_TRUE(topology.AddDisk("dB3", pool_b).ok());
    va1 = topology.AddVolume("VA1", pool_a, 100).value();
    va2 = topology.AddVolume("VA2", pool_a, 50).value();
    vb1 = topology.AddVolume("VB1", pool_b, 200).value();
    EXPECT_TRUE(topology.MapLun(server, va1).ok());
    EXPECT_TRUE(topology.MapLun(server, vb1).ok());
  }
};

TEST(SanTopologyTest, BuildersValidateParents) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  // HBA on a non-server is rejected.
  EXPECT_FALSE(topology.AddHba("h", ComponentId{9999}).ok());
  ComponentId hba = topology.AddHba("h", server).value();
  // A pool needs a subsystem, not an HBA.
  EXPECT_FALSE(topology.AddPool("p", hba, RaidLevel::kRaid5).ok());
}

TEST(SanTopologyTest, RaidProperties) {
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid0), 1.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid1), 2.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid5), 4.0);
  EXPECT_DOUBLE_EQ(RaidWritePenalty(RaidLevel::kRaid10), 2.0);
  EXPECT_STREQ(RaidLevelName(RaidLevel::kRaid5), "RAID5");
}

TEST(SanTopologyTest, DisksOfVolume) {
  MiniSan san;
  EXPECT_EQ(san.topology.DisksOfVolume(san.va1).size(), 2u);
  EXPECT_EQ(san.topology.DisksOfVolume(san.vb1).size(), 3u);
}

TEST(SanTopologyTest, VolumesSharingDisks) {
  MiniSan san;
  std::vector<ComponentId> sharers = san.topology.VolumesSharingDisks(san.va1);
  ASSERT_EQ(sharers.size(), 1u);
  EXPECT_EQ(sharers[0], san.va2);  // Same pool; VB1 is in another pool.
  EXPECT_TRUE(san.topology.VolumesSharingDisks(san.vb1).empty());
}

TEST(SanTopologyTest, DiskFailureShrinksActiveSet) {
  MiniSan san;
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 2);
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, true).ok());
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 1);
  EXPECT_EQ(san.topology.DisksOfVolume(san.va1).size(), 1u);
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, false).ok());
  EXPECT_EQ(san.topology.ActiveDiskCount(san.pool_a), 2);
}

TEST(SanTopologyTest, ResolvePathHappyCase) {
  MiniSan san;
  Result<IoPath> path = san.topology.ResolvePath(san.server, san.va1);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->server, san.server);
  EXPECT_EQ(path->hba, san.hba);
  ASSERT_EQ(path->switches.size(), 1u);
  EXPECT_EQ(path->switches[0], san.sw);
  EXPECT_EQ(path->subsystem, san.subsystem);
  EXPECT_EQ(path->pool, san.pool_a);
  EXPECT_EQ(path->volume, san.va1);
  EXPECT_EQ(path->disks.size(), 2u);
  // Traversal order: server first, disks last.
  std::vector<ComponentId> all = path->AllComponents();
  EXPECT_EQ(all.front(), san.server);
  EXPECT_EQ(all.back(), path->disks.back());
}

TEST(SanTopologyTest, LunMaskingBlocksUnmappedVolume) {
  MiniSan san;
  // VA2 was never mapped to the server.
  Result<IoPath> path = san.topology.ResolvePath(san.server, san.va2);
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, ZoningBlocksUnzonedRoute) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  ComponentId hba = topology.AddHba("h", server).value();
  ComponentId hp = topology.AddPort("hp", PortOwner::kHba, hba).value();
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ComponentId sp = topology.AddPort("sp", PortOwner::kSubsystem, ss).value();
  ASSERT_TRUE(topology.Link(hp, sp).ok());
  ComponentId pool = topology.AddPool("p", ss, RaidLevel::kRaid0).value();
  ASSERT_TRUE(topology.AddDisk("d", pool).ok());
  ComponentId vol = topology.AddVolume("v", pool, 10).value();
  ASSERT_TRUE(topology.MapLun(server, vol).ok());
  // Cabled + mapped but NOT zoned: no route.
  EXPECT_FALSE(topology.ResolvePath(server, vol).ok());
  ASSERT_TRUE(topology.AddZone("z", {hp, sp}).ok());
  EXPECT_TRUE(topology.ResolvePath(server, vol).ok());
}

TEST(SanTopologyTest, MultiHopFabricRoute) {
  // server -> edge1 -> core -> edge2 -> subsystem (the Figure-1 hierarchy).
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  ComponentId hba = topology.AddHba("h", server).value();
  ComponentId hp = topology.AddPort("hp", PortOwner::kHba, hba).value();
  ComponentId e1 = topology.AddSwitch("e1", false).value();
  ComponentId core = topology.AddSwitch("core", true).value();
  ComponentId e2 = topology.AddSwitch("e2", false).value();
  ComponentId e1a = topology.AddPort("e1a", PortOwner::kSwitch, e1).value();
  ComponentId e1b = topology.AddPort("e1b", PortOwner::kSwitch, e1).value();
  ComponentId ca = topology.AddPort("ca", PortOwner::kSwitch, core).value();
  ComponentId cb = topology.AddPort("cb", PortOwner::kSwitch, core).value();
  ComponentId e2a = topology.AddPort("e2a", PortOwner::kSwitch, e2).value();
  ComponentId e2b = topology.AddPort("e2b", PortOwner::kSwitch, e2).value();
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ComponentId sp = topology.AddPort("sp", PortOwner::kSubsystem, ss).value();
  ASSERT_TRUE(topology.Link(hp, e1a).ok());
  ASSERT_TRUE(topology.Link(e1b, ca).ok());
  ASSERT_TRUE(topology.Link(cb, e2a).ok());
  ASSERT_TRUE(topology.Link(e2b, sp).ok());
  ASSERT_TRUE(topology.AddZone("z", {hp, sp}).ok());
  ComponentId pool = topology.AddPool("p", ss, RaidLevel::kRaid5).value();
  ASSERT_TRUE(topology.AddDisk("d1", pool).ok());
  ComponentId vol = topology.AddVolume("v", pool, 10).value();
  ASSERT_TRUE(topology.MapLun(server, vol).ok());

  Result<IoPath> path = topology.ResolvePath(server, vol);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  // All three switches traversed, edge first.
  ASSERT_EQ(path->switches.size(), 3u);
  EXPECT_EQ(path->switches[0], e1);
  EXPECT_EQ(path->switches[1], core);
  EXPECT_EQ(path->switches[2], e2);
}

TEST(SanTopologyTest, ValidateCatchesEmptyPool) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ASSERT_TRUE(topology.AddPool("empty", ss, RaidLevel::kRaid5).ok());
  EXPECT_EQ(topology.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, ValidateCatchesVolumeWithAllDisksFailed) {
  MiniSan san;
  EXPECT_TRUE(san.topology.Validate().ok());
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a1, true).ok());
  ASSERT_TRUE(san.topology.SetDiskFailed(san.disk_a2, true).ok());
  EXPECT_EQ(san.topology.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SanTopologyTest, SelfLinkRejected) {
  MiniSan san;
  EXPECT_FALSE(san.topology.Link(san.hba_port, san.hba_port).ok());
}

TEST(SanTopologyTest, ZoneExtension) {
  MiniSan san;
  EXPECT_FALSE(san.topology.InSameZone(san.sw_p0, san.ss_port));
  ASSERT_TRUE(san.topology.AddZone("z", {san.sw_p0}).ok());  // Extend "z".
  EXPECT_TRUE(san.topology.InSameZone(san.sw_p0, san.ss_port));
}

// --- Failure-aware multipath resolution ----------------------------------------

/// Dual-fabric multipath SAN: one server with two HBAs, each reaching the
/// subsystem through its own switch and subsystem port (fabric A via hba0,
/// fabric B via hba1), one RAID pool with two disks backing one volume.
struct MultipathMiniSan {
  ComponentRegistry registry;
  SanTopology topology{&registry};
  ComponentId server, hba0, hba1, h0p, h1p;
  ComponentId sw_a, a0, a1, sw_b, b0, b1;
  ComponentId subsystem, ss_pa, ss_pb;
  ComponentId pool, d1, d2, vol;

  MultipathMiniSan() {
    server = topology.AddServer("server", "Linux").value();
    hba0 = topology.AddHba("hba0", server).value();
    h0p = topology.AddPort("hba0-p0", PortOwner::kHba, hba0).value();
    hba1 = topology.AddHba("hba1", server).value();
    h1p = topology.AddPort("hba1-p0", PortOwner::kHba, hba1).value();
    sw_a = topology.AddSwitch("swA", false).value();
    a0 = topology.AddPort("swA-p0", PortOwner::kSwitch, sw_a).value();
    a1 = topology.AddPort("swA-p1", PortOwner::kSwitch, sw_a).value();
    sw_b = topology.AddSwitch("swB", false).value();
    b0 = topology.AddPort("swB-p0", PortOwner::kSwitch, sw_b).value();
    b1 = topology.AddPort("swB-p1", PortOwner::kSwitch, sw_b).value();
    subsystem = topology.AddSubsystem("ss", "DS6000").value();
    ss_pa = topology.AddPort("ss-pA", PortOwner::kSubsystem, subsystem).value();
    ss_pb = topology.AddPort("ss-pB", PortOwner::kSubsystem, subsystem).value();
    EXPECT_TRUE(topology.Link(h0p, a0).ok());
    EXPECT_TRUE(topology.Link(a1, ss_pa).ok());
    EXPECT_TRUE(topology.Link(h1p, b0).ok());
    EXPECT_TRUE(topology.Link(b1, ss_pb).ok());
    EXPECT_TRUE(topology.AddZone("zA", {h0p, ss_pa}).ok());
    EXPECT_TRUE(topology.AddZone("zB", {h1p, ss_pb}).ok());
    pool = topology.AddPool("pool", subsystem, RaidLevel::kRaid5).value();
    d1 = topology.AddDisk("d1", pool).value();
    d2 = topology.AddDisk("d2", pool).value();
    vol = topology.AddVolume("V", pool, 100).value();
    EXPECT_TRUE(topology.MapLun(server, vol).ok());
  }
};

TEST(MultipathResolutionTest, ResolvesOneDisjointRoutePerFabric) {
  MultipathMiniSan san;
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  ASSERT_EQ(paths->size(), 2u);
  // HBAs enumerate in ascending id order: hba0's fabric-A route first.
  EXPECT_EQ((*paths)[0].hba, san.hba0);
  EXPECT_EQ((*paths)[0].ports,
            (std::vector<ComponentId>{san.h0p, san.a0, san.a1, san.ss_pa}));
  EXPECT_EQ((*paths)[1].hba, san.hba1);
  EXPECT_EQ((*paths)[1].ports,
            (std::vector<ComponentId>{san.h1p, san.b0, san.b1, san.ss_pb}));
  // Port-disjoint by construction.
  for (ComponentId p : (*paths)[0].ports) {
    for (ComponentId q : (*paths)[1].ports) EXPECT_NE(p, q);
  }
}

TEST(MultipathResolutionTest, FailedHbaOriginatesNoRoutes) {
  MultipathMiniSan san;
  ASSERT_TRUE(san.topology.SetHbaFailed(san.hba0, true).ok());
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ((*paths)[0].hba, san.hba1);
  // Both HBAs down: no surviving route at all.
  ASSERT_TRUE(san.topology.SetHbaFailed(san.hba1, true).ok());
  EXPECT_EQ(san.topology.ResolvePaths(san.server, san.vol).status().code(),
            StatusCode::kNotFound);
  // Recovery restores both routes.
  ASSERT_TRUE(san.topology.SetHbaFailed(san.hba0, false).ok());
  ASSERT_TRUE(san.topology.SetHbaFailed(san.hba1, false).ok());
  paths = san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);
}

TEST(MultipathResolutionTest, ResolutionIsNotStaleAfterFailureEvents) {
  // The original bug: ResolvePath cached a route, then kept returning it
  // after the components on it were marked failed.
  MultipathMiniSan san;
  Result<IoPath> before = san.topology.ResolvePath(san.server, san.vol);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->hba, san.hba0);
  ASSERT_TRUE(san.topology.SetPortFailed(san.ss_pa, true).ok());
  Result<IoPath> after = san.topology.ResolvePath(san.server, san.vol);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->hba, san.hba1);  // Re-resolved, not the stale fabric-A route.
  for (ComponentId p : after->ports) EXPECT_NE(p, san.ss_pa);
}

TEST(MultipathResolutionTest, FailedSwitchBlocksAllItsPorts) {
  MultipathMiniSan san;
  ASSERT_TRUE(san.topology.SetSwitchFailed(san.sw_a, true).ok());
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ((*paths)[0].hba, san.hba1);
  ASSERT_TRUE(san.topology.SetSwitchFailed(san.sw_b, true).ok());
  EXPECT_EQ(san.topology.ResolvePaths(san.server, san.vol).status().code(),
            StatusCode::kNotFound);
}

TEST(MultipathResolutionTest, FailedLinkBlocksRouteAndRecoveryRestoresIt) {
  MultipathMiniSan san;
  ASSERT_TRUE(san.topology.SetLinkFailed(san.h0p, san.a0, true).ok());
  EXPECT_TRUE(san.topology.LinkFailed(san.a0, san.h0p));  // Symmetric.
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ((*paths)[0].hba, san.hba1);
  ASSERT_TRUE(san.topology.SetLinkFailed(san.h0p, san.a0, false).ok());
  paths = san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);
}

TEST(MultipathResolutionTest, AllDisksFailedIsNotFound) {
  MultipathMiniSan san;
  ASSERT_TRUE(san.topology.SetDiskFailed(san.d1, true).ok());
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());  // One surviving disk still backs the volume.
  EXPECT_EQ((*paths)[0].disks, std::vector<ComponentId>{san.d2});
  ASSERT_TRUE(san.topology.SetDiskFailed(san.d2, true).ok());
  EXPECT_EQ(san.topology.ResolvePaths(san.server, san.vol).status().code(),
            StatusCode::kNotFound);
}

TEST(MultipathResolutionTest, DegradedPortStillRoutes) {
  MultipathMiniSan san;
  ASSERT_TRUE(san.topology.SetPortDegraded(san.ss_pa, 0.5).ok());
  Result<std::vector<IoPath>> paths =
      san.topology.ResolvePaths(san.server, san.vol);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);  // Degradation is a perf-model concern.
  EXPECT_TRUE(san.topology.port(san.ss_pa).degraded());
  EXPECT_DOUBLE_EQ(san.topology.port(san.ss_pa).EffectiveMbPerSec(),
                   4.0 * 125.0 * 0.5);
}

TEST(MultipathResolutionTest, FailureFlipsBumpGeneration) {
  MultipathMiniSan san;
  uint64_t g = san.topology.generation();
  ASSERT_TRUE(san.topology.SetPortFailed(san.ss_pa, true).ok());
  EXPECT_GT(san.topology.generation(), g);
  g = san.topology.generation();
  ASSERT_TRUE(san.topology.SetHbaFailed(san.hba0, true).ok());
  EXPECT_GT(san.topology.generation(), g);
}

TEST(MultipathResolutionTest, TieBreakIsLowestIdChainNotInsertionOrder) {
  // Diamond: one HBA port reaches the subsystem through two equal-length
  // chains. The links of the higher-id chain are cabled FIRST — an
  // insertion-order-dependent BFS would pick it; the contract requires the
  // lexicographically smallest port chain.
  ComponentRegistry registry;
  SanTopology topology(&registry);
  ComponentId server = topology.AddServer("s", "Linux").value();
  ComponentId hba = topology.AddHba("h", server).value();
  ComponentId hp = topology.AddPort("hp", PortOwner::kHba, hba).value();
  ComponentId sw1 = topology.AddSwitch("sw1", false).value();
  ComponentId p1in = topology.AddPort("sw1-in", PortOwner::kSwitch, sw1).value();
  ComponentId p1out =
      topology.AddPort("sw1-out", PortOwner::kSwitch, sw1).value();
  ComponentId sw2 = topology.AddSwitch("sw2", false).value();
  ComponentId p2in = topology.AddPort("sw2-in", PortOwner::kSwitch, sw2).value();
  ComponentId p2out =
      topology.AddPort("sw2-out", PortOwner::kSwitch, sw2).value();
  ComponentId ss = topology.AddSubsystem("ss", "X").value();
  ComponentId sa = topology.AddPort("ss-a", PortOwner::kSubsystem, ss).value();
  ComponentId sb = topology.AddPort("ss-b", PortOwner::kSubsystem, ss).value();
  // Cable the sw2 (higher-id) diamond arm before the sw1 arm.
  ASSERT_TRUE(topology.Link(hp, p2in).ok());
  ASSERT_TRUE(topology.Link(p2out, sb).ok());
  ASSERT_TRUE(topology.Link(hp, p1in).ok());
  ASSERT_TRUE(topology.Link(p1out, sa).ok());
  ASSERT_TRUE(topology.AddZone("z", {hp, sa, sb}).ok());
  ComponentId pool = topology.AddPool("p", ss, RaidLevel::kRaid0).value();
  ASSERT_TRUE(topology.AddDisk("d", pool).ok());
  ComponentId vol = topology.AddVolume("v", pool, 10).value();
  ASSERT_TRUE(topology.MapLun(server, vol).ok());

  Result<IoPath> path = topology.ResolvePath(server, vol);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->ports, (std::vector<ComponentId>{hp, p1in, p1out, sa}))
      << "active path must be the lexicographically smallest chain";
  ASSERT_EQ(path->switches.size(), 1u);
  EXPECT_EQ(path->switches[0], sw1);
}

// --- ConfigDatabase ------------------------------------------------------------

TEST(ConfigDatabaseTest, OperationsMutateAndLog) {
  MiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);

  Result<ComponentId> vol =
      config.ProvisionVolume(1000, "V-new", san.pool_a, 42);
  ASSERT_TRUE(vol.ok());
  EXPECT_EQ(san.topology.volume(*vol).pool, san.pool_a);
  ASSERT_TRUE(
      config.ChangeZoning(2000, "z2", {san.hba_port, san.ss_port}).ok());
  ASSERT_TRUE(config.ChangeLunMapping(3000, san.server, *vol).ok());
  EXPECT_TRUE(san.topology.LunMapped(san.server, *vol));
  ASSERT_TRUE(config.FailDisk(4000, san.disk_a1).ok());
  EXPECT_TRUE(san.topology.disk(san.disk_a1).failed);
  ASSERT_TRUE(config.RecoverDisk(5000, san.disk_a1).ok());
  ASSERT_TRUE(
      config.RecordRaidRebuild(TimeInterval{6000, 7000}, san.pool_a).ok());

  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log.all()[0].type, EventType::kVolumeCreated);
  EXPECT_EQ(log.all()[1].type, EventType::kZoningChanged);
  EXPECT_EQ(log.all()[2].type, EventType::kLunMappingChanged);
  EXPECT_EQ(log.all()[3].type, EventType::kDiskFailed);
  EXPECT_EQ(log.all()[4].type, EventType::kDiskRecovered);
  EXPECT_EQ(log.all()[5].type, EventType::kRaidRebuildStarted);
  EXPECT_EQ(log.all()[6].type, EventType::kRaidRebuildCompleted);
}

TEST(ConfigDatabaseTest, NewVolumeSharesDisksWithPoolSiblings) {
  MiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);
  Result<ComponentId> v_prime =
      config.ProvisionVolume(1000, "V-prime", san.pool_a, 150);
  ASSERT_TRUE(v_prime.ok());
  // The scenario-1 mechanism: the new volume shares VA1's physical disks.
  std::vector<ComponentId> sharers = san.topology.VolumesSharingDisks(san.va1);
  EXPECT_EQ(sharers.size(), 2u);
  bool found = false;
  for (ComponentId sharer : sharers) {
    if (sharer == *v_prime) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConfigDatabaseTest, FailHbaLogsConfigEventAndPathFailover) {
  MultipathMiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);
  // The active path for V runs over hba0 (fabric A); failing that HBA must
  // log the configuration change AND the driver-level path switch that
  // masks it, so Module CO sees both candidate causes.
  ASSERT_TRUE(config.FailHba(1000, san.hba0).ok());
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.all()[0].type, EventType::kHbaFailed);
  EXPECT_EQ(log.all()[0].subject, san.hba0);
  EXPECT_EQ(log.all()[1].type, EventType::kPathFailover);
  EXPECT_EQ(log.all()[1].subject, san.vol);
  EXPECT_TRUE(san.topology.hba(san.hba0).failed);
  // Recovery logs the flip back plus the failback path switch.
  ASSERT_TRUE(config.RecoverHba(2000, san.hba0).ok());
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.all()[2].type, EventType::kHbaRecovered);
  EXPECT_EQ(log.all()[3].type, EventType::kPathFailover);
  EXPECT_FALSE(san.topology.hba(san.hba0).failed);
}

TEST(ConfigDatabaseTest, FabricFailureFlipsAreLogged) {
  MultipathMiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);
  ASSERT_TRUE(config.FailPort(1000, san.ss_pa).ok());
  ASSERT_TRUE(config.RecoverPort(2000, san.ss_pa).ok());
  ASSERT_TRUE(config.FailSwitch(3000, san.sw_b).ok());
  ASSERT_TRUE(config.RecoverSwitch(4000, san.sw_b).ok());
  ASSERT_TRUE(config.FailLink(5000, san.h0p, san.a0).ok());
  ASSERT_TRUE(config.RecoverLink(6000, san.h0p, san.a0).ok());
  // Failing ss_pa / the hba0 link kills the active fabric-A path, so each
  // flip pairs with a kPathFailover (and each recovery with the failback).
  // sw_b carries only the standby route: its flips move no active path and
  // log no failover.
  std::vector<EventType> want = {
      EventType::kPortFailed,      EventType::kPathFailover,
      EventType::kPortRecovered,   EventType::kPathFailover,
      EventType::kSwitchFailed,    EventType::kSwitchRecovered,
      EventType::kLinkFailed,      EventType::kPathFailover,
      EventType::kLinkRecovered,   EventType::kPathFailover};
  ASSERT_EQ(log.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(log.all()[i].type, want[i]) << "event " << i;
  }
  EXPECT_FALSE(san.topology.port(san.ss_pa).failed);
  EXPECT_FALSE(san.topology.fc_switch(san.sw_b).failed);
  EXPECT_FALSE(san.topology.LinkFailed(san.h0p, san.a0));
}

TEST(ConfigDatabaseTest, DegradePortLogsNoFailover) {
  MultipathMiniSan san;
  EventLog log;
  ConfigDatabase config(&san.topology, &log);
  // A degraded port keeps routing — the multipath-imbalance trap: the event
  // fires but the active path does NOT move.
  ASSERT_TRUE(config.DegradePort(1000, san.ss_pa, 0.25).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.all()[0].type, EventType::kPortDegraded);
  EXPECT_EQ(log.all()[0].subject, san.ss_pa);
  EXPECT_DOUBLE_EQ(san.topology.port(san.ss_pa).capacity_factor, 0.25);
}

}  // namespace
}  // namespace diads::san
