// Property tests over generated fabrics: reachability (every mapped
// (server, volume) pair resolves at least one path, and exactly R
// fabric-disjoint paths when healthy), the redundancy contract (R >= 2
// survives any single HBA / port / switch failure), determinism (identical
// specs generate identical topologies and resolutions), and the scale spec
// crossing 1000 registry components.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "san/generator.h"
#include "san/topology.h"

namespace diads::san {
namespace {

/// Every HBA in the topology, via its servers.
std::vector<ComponentId> AllHbas(const SanTopology& topo) {
  std::vector<ComponentId> out;
  for (ComponentId s : topo.AllServers()) {
    const ServerInfo& info = topo.server(s);
    out.insert(out.end(), info.hbas.begin(), info.hbas.end());
  }
  return out;
}

/// Every FC port in the topology: HBA, switch, and subsystem ports.
std::vector<ComponentId> AllPorts(const SanTopology& topo) {
  std::vector<ComponentId> out;
  for (ComponentId h : AllHbas(topo)) {
    const HbaInfo& info = topo.hba(h);
    out.insert(out.end(), info.ports.begin(), info.ports.end());
  }
  for (ComponentId sw : topo.AllSwitches()) {
    const FcSwitchInfo& info = topo.fc_switch(sw);
    out.insert(out.end(), info.ports.begin(), info.ports.end());
  }
  for (ComponentId ss : topo.AllSubsystems()) {
    const SubsystemInfo& info = topo.subsystem(ss);
    out.insert(out.end(), info.ports.begin(), info.ports.end());
  }
  return out;
}

/// Small dual-fabric spec used by the property tests (fast to iterate all
/// single failures over).
FabricSpec SmallSpec(FabricStyle style) {
  FabricSpec spec;
  spec.style = style;
  spec.redundancy = 2;
  spec.tiers = 3;
  spec.fanout = 2;
  spec.servers = 3;
  spec.subsystems = 2;
  spec.pools_per_subsystem = 1;
  spec.disks_per_pool = 4;
  spec.volumes_per_pool = 2;
  spec.prefix = "prop";
  return spec;
}

class GeneratedFabricStyleTest
    : public ::testing::TestWithParam<FabricStyle> {};

TEST_P(GeneratedFabricStyleTest, EveryMappingResolvesRDisjointRoutes) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  FabricSpec spec = SmallSpec(GetParam());
  Result<GeneratedFabric> fab = GenerateFabricTopology(&topology, spec);
  ASSERT_TRUE(fab.ok()) << fab.status().ToString();
  ASSERT_FALSE(fab->mappings.empty());
  for (const auto& [server, volume] : fab->mappings) {
    Result<std::vector<IoPath>> paths = topology.ResolvePaths(server, volume);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    // Healthy fabric: exactly one route per redundancy rank, pairwise
    // port-disjoint, each confined to a single fabric's switches.
    ASSERT_EQ(paths->size(), static_cast<size_t>(spec.redundancy));
    std::unordered_set<ComponentId> seen_ports;
    for (size_t r = 0; r < paths->size(); ++r) {
      const IoPath& path = (*paths)[r];
      for (ComponentId p : path.ports) {
        EXPECT_TRUE(seen_ports.insert(p).second)
            << "port " << p.value << " appears on two routes";
      }
      ASSERT_FALSE(path.switches.empty());
      const std::vector<ComponentId>& rank = fab->fabric_switches[r];
      for (ComponentId sw : path.switches) {
        EXPECT_NE(std::find(rank.begin(), rank.end(), sw), rank.end())
            << "route " << r << " strays outside fabric " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, GeneratedFabricStyleTest,
                         ::testing::Values(FabricStyle::kStar,
                                           FabricStyle::kHierarchicalStar,
                                           FabricStyle::kTree),
                         [](const auto& info) {
                           std::string name = FabricStyleName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GeneratedFabricPropertyTest, RedundancySurvivesAnySingleFailure) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  FabricSpec spec = SmallSpec(FabricStyle::kHierarchicalStar);
  Result<GeneratedFabric> fab = GenerateFabricTopology(&topology, spec);
  ASSERT_TRUE(fab.ok()) << fab.status().ToString();

  auto every_mapping_resolves = [&](const std::string& what) {
    for (const auto& [server, volume] : fab->mappings) {
      Result<std::vector<IoPath>> paths =
          topology.ResolvePaths(server, volume);
      ASSERT_TRUE(paths.ok())
          << what << ": mapping lost all routes: " << paths.status().ToString();
      EXPECT_GE(paths->size(), 1u);
    }
  };

  for (ComponentId hba : AllHbas(topology)) {
    ASSERT_TRUE(topology.SetHbaFailed(hba, true).ok());
    every_mapping_resolves("failed HBA " + registry.NameOf(hba));
    ASSERT_TRUE(topology.SetHbaFailed(hba, false).ok());
  }
  for (ComponentId port : AllPorts(topology)) {
    ASSERT_TRUE(topology.SetPortFailed(port, true).ok());
    every_mapping_resolves("failed port " + registry.NameOf(port));
    ASSERT_TRUE(topology.SetPortFailed(port, false).ok());
  }
  for (ComponentId sw : topology.AllSwitches()) {
    ASSERT_TRUE(topology.SetSwitchFailed(sw, true).ok());
    every_mapping_resolves("failed switch " + registry.NameOf(sw));
    ASSERT_TRUE(topology.SetSwitchFailed(sw, false).ok());
  }
  // All failures recovered: the full R routes are back for every mapping.
  for (const auto& [server, volume] : fab->mappings) {
    Result<std::vector<IoPath>> paths = topology.ResolvePaths(server, volume);
    ASSERT_TRUE(paths.ok());
    EXPECT_EQ(paths->size(), static_cast<size_t>(spec.redundancy));
  }
}

TEST(GeneratedFabricPropertyTest, IdenticalSpecsGenerateIdenticalFabrics) {
  FabricSpec spec = SmallSpec(FabricStyle::kTree);
  ComponentRegistry reg_a, reg_b;
  SanTopology topo_a(&reg_a), topo_b(&reg_b);
  Result<GeneratedFabric> fab_a = GenerateFabricTopology(&topo_a, spec);
  Result<GeneratedFabric> fab_b = GenerateFabricTopology(&topo_b, spec);
  ASSERT_TRUE(fab_a.ok() && fab_b.ok());
  EXPECT_EQ(fab_a->component_count, fab_b->component_count);
  EXPECT_EQ(fab_a->servers, fab_b->servers);
  EXPECT_EQ(fab_a->volumes, fab_b->volumes);
  EXPECT_EQ(fab_a->mappings, fab_b->mappings);
  // Same ids resolve the same port chains — by id AND by name, so the
  // determinism is not an artifact of parallel id assignment.
  for (size_t m = 0; m < fab_a->mappings.size(); ++m) {
    const auto& [server, volume] = fab_a->mappings[m];
    Result<std::vector<IoPath>> pa = topo_a.ResolvePaths(server, volume);
    Result<std::vector<IoPath>> pb = topo_b.ResolvePaths(server, volume);
    ASSERT_TRUE(pa.ok() && pb.ok());
    ASSERT_EQ(pa->size(), pb->size());
    for (size_t r = 0; r < pa->size(); ++r) {
      EXPECT_EQ((*pa)[r].ports, (*pb)[r].ports);
      for (size_t i = 0; i < (*pa)[r].ports.size(); ++i) {
        EXPECT_EQ(reg_a.NameOf((*pa)[r].ports[i]),
                  reg_b.NameOf((*pb)[r].ports[i]));
      }
    }
  }
}

TEST(GeneratedFabricPropertyTest, LargeSpecCrossesThousandComponents) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  Result<GeneratedFabric> fab =
      GenerateFabricTopology(&topology, LargeFabricSpec());
  ASSERT_TRUE(fab.ok()) << fab.status().ToString();
  EXPECT_GE(fab->component_count, 1000u);
  EXPECT_TRUE(topology.Validate().ok());
  // Spot-check reachability end to end at scale.
  for (const auto& [server, volume] : fab->mappings) {
    Result<std::vector<IoPath>> paths = topology.ResolvePaths(server, volume);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    EXPECT_EQ(paths->size(), 2u);
  }
}

TEST(GeneratedFabricPropertyTest, RejectsDegenerateSpecs) {
  ComponentRegistry registry;
  SanTopology topology(&registry);
  FabricSpec spec = SmallSpec(FabricStyle::kStar);
  spec.redundancy = 0;
  EXPECT_EQ(GenerateFabricTopology(&topology, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.redundancy = 1;
  spec.servers = 0;
  EXPECT_EQ(GenerateFabricTopology(&topology, spec).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace diads::san
