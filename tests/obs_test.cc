// Observability layer: span tracer, Chrome trace export, unified metrics
// registry (Prometheus + JSON), cost profiles, and the "no counter lost"
// coverage contract between the legacy stats bundles and the registry.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "engine/metrics_export.h"
#include "engine/self_monitor.h"
#include "engine/stats.h"
#include "fleet/metrics.h"
#include "fleet/store.h"
#include "obs/cost_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace diads {
namespace {

// ---------------------------------------------------------------- tracer --

TEST(TracerTest, SpanTreeRecordsParentageAndArgs) {
  obs::Tracer tracer;
  obs::TraceContext root_ctx = tracer.Root();

  obs::SpanHandle root = root_ctx.StartSpan("diagnosis", "engine");
  root.Note("tag", "t0/incident-1");
  obs::SpanHandle child = root_ctx.Under(root).StartSpan("gather", "collect");
  child.Note("components", static_cast<uint64_t>(7));
  child.End();
  root.End();

  const std::vector<obs::Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: child files first.
  EXPECT_EQ(spans[0].name, "gather");
  EXPECT_EQ(spans[1].name, "diagnosis");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  ASSERT_NE(spans[1].FindArg("tag"), nullptr);
  EXPECT_EQ(*spans[1].FindArg("tag"), "t0/incident-1");
  ASSERT_NE(spans[0].FindArg("components"), nullptr);
  EXPECT_EQ(*spans[0].FindArg("components"), "7");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
  EXPECT_EQ(CheckSpanNesting(spans), "");
}

TEST(TracerTest, EndIsIdempotentAndDestructorFiles) {
  obs::Tracer tracer;
  {
    obs::SpanHandle span = tracer.Root().StartSpan("work", "engine");
    span.End();
    span.End();  // Second End must not double-file.
  }
  {
    obs::SpanHandle span = tracer.Root().StartSpan("dropped", "engine");
    // Destructor files it.
  }
  EXPECT_EQ(tracer.span_count(), 2u);
}

TEST(TracerTest, DisabledContextIsInert) {
  obs::TraceContext off;  // No tracer attached.
  EXPECT_FALSE(off.enabled());
  obs::SpanHandle span = off.StartSpan("nothing", "engine");
  EXPECT_FALSE(span.active());
  span.Note("key", "value");  // Must not crash.
  span.End();
  off.Instant("marker", "engine", {{"k", "v"}});
  obs::TraceContext still_off = off.Under(span);
  EXPECT_FALSE(still_off.enabled());
}

TEST(TracerTest, CheckSpanNestingCatchesDanglingParent) {
  std::vector<obs::Span> spans(1);
  spans[0].id = 5;
  spans[0].parent = 99;  // No such span.
  spans[0].name = "orphan";
  EXPECT_NE(CheckSpanNesting(spans), "");
}

TEST(TracerTest, CheckSpanNestingCatchesTemporalEscape) {
  std::vector<obs::Span> spans(2);
  spans[0].id = 1;
  spans[0].name = "parent";
  spans[0].start_ns = 100;
  spans[0].end_ns = 200;
  spans[1].id = 2;
  spans[1].parent = 1;
  spans[1].name = "child";
  spans[1].start_ns = 150;
  spans[1].end_ns = 300;  // Ends after the parent.
  EXPECT_NE(CheckSpanNesting(spans), "");
  // With enough slack the same tree passes.
  EXPECT_EQ(CheckSpanNesting(spans, /*slack_ns=*/200), "");
}

TEST(TracerTest, ChromeExportIsStrictlyParseableJson) {
  obs::Tracer tracer;
  obs::SpanHandle root = tracer.Root().StartSpan("diagnosis", "engine");
  // Hostile annotation content: quotes, backslashes, duplicate keys.
  root.Note("tag", "quote\" backslash\\ newline\n");
  root.Note("outcome", "first");
  root.Note("outcome", "second");  // Last write must win; no dup JSON keys.
  obs::SpanHandle child =
      tracer.Root().Under(root).StartSpan("fetch:C3", "collect");
  child.Note("fetch_ms", 1.25);
  child.End();
  root.End();
  tracer.Root().Instant("model_cache", "cache", {{"hits", "3"}});

  const std::string exported = tracer.ExportChromeTrace();
  Result<JsonValue> parsed = ParseJson(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete = 0;
  bool saw_second = false;
  for (const JsonValue& event : events->array_items()) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value() != "X") continue;
    ++complete;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_TRUE(args->Has("span_id"));
    const JsonValue* outcome = args->Find("outcome");
    if (outcome != nullptr && outcome->string_value() == "second") {
      saw_second = true;
    }
  }
  EXPECT_EQ(complete, 3u);  // diagnosis + fetch + instant marker.
  EXPECT_TRUE(saw_second);
}

// -------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, OwnedInstrumentsAndCollect) {
  obs::MetricsRegistry registry;
  obs::Counter* hits =
      registry.AddCounter("diads_test_hits_total", "Test hits",
                          {{"backend", "replay"}});
  obs::Gauge* depth = registry.AddGauge("diads_test_depth", "Queue depth");
  hits->Increment();
  hits->Increment(4);
  depth->Set(2.5);

  const std::vector<obs::MetricSample> samples = registry.Collect();
  const obs::MetricSample* hit_sample =
      obs::MetricsRegistry::Find(samples, "diads_test_hits_total");
  ASSERT_NE(hit_sample, nullptr);
  EXPECT_EQ(hit_sample->value, 5.0);
  EXPECT_EQ(hit_sample->type, obs::MetricType::kCounter);
  ASSERT_EQ(hit_sample->labels.size(), 1u);
  EXPECT_EQ(hit_sample->labels[0].second, "replay");
  const obs::MetricSample* depth_sample =
      obs::MetricsRegistry::Find(samples, "diads_test_depth");
  ASSERT_NE(depth_sample, nullptr);
  EXPECT_EQ(depth_sample->value, 2.5);
}

TEST(MetricsRegistryTest, HistogramExponentialBuckets) {
  obs::MetricsRegistry registry;
  obs::ExponentialBuckets layout;
  layout.first_bound = 1.0;
  layout.growth = 2.0;
  layout.bucket_count = 4;  // Bounds 1, 2, 4, 8 (+Inf implicit).
  obs::Histogram* latency = registry.AddHistogram(
      "diads_test_latency_ms", "Test latency", layout);
  latency->Observe(0.5);   // <= 1
  latency->Observe(3.0);   // <= 4
  latency->Observe(100.0); // +Inf overflow

  const obs::Histogram::Snapshot snap = latency->Snap();
  ASSERT_EQ(snap.bounds.size(), 4u);
  EXPECT_EQ(snap.bounds[0], 1.0);
  EXPECT_EQ(snap.bounds[3], 8.0);
  EXPECT_EQ(snap.cumulative[0], 1u);  // 0.5
  EXPECT_EQ(snap.cumulative[1], 1u);
  EXPECT_EQ(snap.cumulative[2], 2u);  // + 3.0
  EXPECT_EQ(snap.cumulative[3], 2u);
  EXPECT_EQ(snap.count, 3u);          // + 100 in overflow.
  EXPECT_DOUBLE_EQ(snap.sum, 103.5);

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE diads_test_latency_ms histogram"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("diads_test_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("diads_test_latency_ms_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  obs::MetricsRegistry registry;
  registry.AddCounter("diads_a_total", "Counts \"a\"", {{"k", "v\"q"}})
      ->Increment(2);
  registry.AddGauge("diads_b", "Gauge b")->Set(1.5);

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# HELP diads_a_total"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE diads_a_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE diads_b gauge"), std::string::npos);
  // Label values escape embedded quotes.
  EXPECT_NE(prom.find("diads_a_total{k=\"v\\\"q\"} 2"), std::string::npos)
      << prom;
}

TEST(MetricsRegistryTest, JsonSnapshotIsStrictlyParseable) {
  obs::MetricsRegistry registry;
  registry.AddCounter("diads_a_total", "Help with \"quotes\"")->Increment();
  registry.AddGauge("diads_b", "Gauge")->Set(0.25);
  obs::ExponentialBuckets layout;
  layout.bucket_count = 2;
  registry.AddHistogram("diads_h", "Hist", layout)->Observe(1.0);

  const std::string json = registry.ToJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  EXPECT_EQ(metrics->array_items().size(), 3u);
  bool saw_histogram = false;
  for (const JsonValue& m : metrics->array_items()) {
    ASSERT_TRUE(m.Has("name"));
    ASSERT_TRUE(m.Has("type"));
    if (m.Find("type")->string_value() == "histogram") {
      saw_histogram = true;
      EXPECT_TRUE(m.Has("buckets"));
    }
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(MetricsRegistryTest, SourcesEmitAtScrapeTime) {
  obs::MetricsRegistry registry;
  uint64_t live_value = 1;
  registry.AddSource([&live_value](obs::MetricsEmitter& emitter) {
    emitter.Counter("diads_src_total", "From source", {}, live_value);
  });
  EXPECT_EQ(obs::MetricsRegistry::Find(registry.Collect(),
                                       "diads_src_total")->value, 1.0);
  live_value = 42;  // Sources read live state, not a registration snapshot.
  EXPECT_EQ(obs::MetricsRegistry::Find(registry.Collect(),
                                       "diads_src_total")->value, 42.0);
}

// --------------------------------------------------- "no counter lost" ---

/// Captures every emission for coverage assertions.
class RecordingEmitter : public obs::MetricsEmitter {
 public:
  void Counter(const std::string& name, const std::string&,
               const obs::Labels& labels, uint64_t value) override {
    values.emplace_back(name, static_cast<double>(value));
    names.insert(name);
    (void)labels;
  }
  void Gauge(const std::string& name, const std::string&,
             const obs::Labels& labels, double value) override {
    values.emplace_back(name, value);
    names.insert(name);
    (void)labels;
  }

  bool SawValue(double v) const {
    for (const auto& [name, value] : values) {
      if (value == v) return true;
    }
    return false;
  }

  std::vector<std::pair<std::string, double>> values;
  std::set<std::string> names;
};

/// Fills every counter field of a snapshot with a distinct sentinel so a
/// dropped field is detectable no matter how the bridge renames it.
engine::EngineStatsSnapshot SentinelSnapshot() {
  engine::EngineStatsSnapshot s;
  double next = 1000;
  s.submitted = static_cast<uint64_t>(next++);
  s.completed = static_cast<uint64_t>(next++);
  s.failed = static_cast<uint64_t>(next++);
  s.rejected = static_cast<uint64_t>(next++);
  s.admitted = static_cast<uint64_t>(next++);
  s.rejected_share = static_cast<uint64_t>(next++);
  s.shed_deadline = static_cast<uint64_t>(next++);
  s.cancelled_shutdown = static_cast<uint64_t>(next++);
  s.starvation_avoided = static_cast<uint64_t>(next++);
  s.queued_cost = next++;
  s.cache_hits = static_cast<uint64_t>(next++);
  s.cache_misses = static_cast<uint64_t>(next++);
  s.cache_evictions = static_cast<uint64_t>(next++);
  s.cache_invalidations = static_cast<uint64_t>(next++);
  s.coalesced = static_cast<uint64_t>(next++);
  s.fleet_publishes = static_cast<uint64_t>(next++);
  s.model_cache_hits = static_cast<uint64_t>(next++);
  s.model_cache_misses = static_cast<uint64_t>(next++);
  s.model_cache_evictions = static_cast<uint64_t>(next++);
  s.model_cache_invalidations = static_cast<uint64_t>(next++);
  s.model_cache_entries = static_cast<size_t>(next++);
  s.collection_fetches = static_cast<uint64_t>(next++);
  s.collection_timeouts = static_cast<uint64_t>(next++);
  s.collection_retries = static_cast<uint64_t>(next++);
  s.collection_stale = static_cast<uint64_t>(next++);
  s.degraded_diagnoses = static_cast<uint64_t>(next++);
  s.queue_depth = static_cast<size_t>(next++);
  s.max_queue_depth = static_cast<size_t>(next++);
  s.throughput_per_sec = next++;
  s.elapsed_sec = next++;
  return s;
}

TEST(MetricsBridgeTest, NoEngineCounterLost) {
  const engine::EngineStatsSnapshot snapshot = SentinelSnapshot();
  RecordingEmitter emitter;
  engine::EmitEngineSnapshot(snapshot, {}, emitter);

  // Every sentinel value must surface in some emitted sample: 30 distinct
  // sentinels were planted above (counters, admission/shedding counters,
  // cache blocks, gather stats, queue/throughput gauges).
  for (double sentinel = 1000; sentinel < 1030; sentinel += 1) {
    EXPECT_TRUE(emitter.SawValue(sentinel))
        << "snapshot field with sentinel " << sentinel
        << " was dropped by EmitEngineSnapshot";
  }
  // Latency summaries surface as quantile-labelled gauges.
  EXPECT_TRUE(emitter.names.count("diads_engine_request_latency_ms"));
  EXPECT_TRUE(emitter.names.count("diads_gather_latency_ms"));
  EXPECT_TRUE(emitter.names.count("diads_gather_fetch_latency_ms"));
  EXPECT_TRUE(emitter.names.count("diads_module_latency_ms"));
}

TEST(MetricsBridgeTest, NoFleetCounterLost) {
  fleet::FleetStore::Counters counters;
  counters.publishes = 2000;
  counters.rows_inserted = 2001;
  counters.rows_superseded = 2002;
  counters.rows_stale_dropped = 2003;
  counters.invalidations = 2004;
  counters.queries = 2005;
  counters.entries = 2006;
  RecordingEmitter emitter;
  fleet::EmitFleetStoreCounters(counters, {}, emitter);
  for (double sentinel = 2000; sentinel < 2007; sentinel += 1) {
    EXPECT_TRUE(emitter.SawValue(sentinel))
        << "fleet counter with sentinel " << sentinel << " was dropped";
  }
}

TEST(MetricsBridgeTest, LegacyJsonRendersStayWellFormed) {
  // The registry is additive: the existing one-line JSON renders of the
  // stats bundles must still parse under the strict parser.
  engine::EngineStats stats;
  stats.RecordSubmitted();
  stats.RecordCompleted();
  stats.RecordRequestLatency(12.5);
  Result<JsonValue> engine_json = ParseJson(stats.Snapshot(0).ToJson());
  ASSERT_TRUE(engine_json.ok()) << engine_json.status().ToString();
  EXPECT_TRUE(engine_json->Has("submitted"));

  fleet::FleetStore::Counters counters;
  counters.publishes = 3;
  Result<JsonValue> fleet_json = ParseJson(counters.ToJson());
  ASSERT_TRUE(fleet_json.ok()) << fleet_json.status().ToString();
  EXPECT_TRUE(fleet_json->Has("publishes"));
}

// ------------------------------------------------------------- profiles --

TEST(CostProfileTest, ToJsonIsStrictlyParseable) {
  obs::CostProfile profile;
  profile.queue_wait_ms = 1.5;
  profile.gather_ms = 20.25;
  profile.module_ms = {{"PD", 0.1}, {"CO", 2.0}, {"DA", 5.5}};
  profile.total_ms = 30.0;
  profile.result_cache_hit = false;
  profile.coalesced = true;
  profile.model_cache_hits = 10;
  profile.model_cache_misses = 3;
  profile.fetches_issued = 25;
  profile.fetch_timeouts = 1;
  profile.fetch_retries = 2;
  profile.samples_collected = 480;
  profile.bytes_collected = 7680;
  profile.stale_components = {"V1", "pool \"7\""};

  Result<JsonValue> parsed = ParseJson(profile.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Has("total_ms"));
  EXPECT_TRUE(parsed->Has("queue_wait_ms"));
  const JsonValue* modules = parsed->Find("modules");
  ASSERT_NE(modules, nullptr);
  EXPECT_TRUE(modules->is_object());
  const JsonValue* gather = parsed->Find("gather");
  ASSERT_NE(gather, nullptr);
  const JsonValue* stale = gather->Find("stale_components");
  ASSERT_NE(stale, nullptr);
  ASSERT_EQ(stale->array_items().size(), 2u);
  EXPECT_EQ(stale->array_items()[1].string_value(), "pool \"7\"");
  EXPECT_DOUBLE_EQ(profile.ModuleTotalMs(), 7.6);
}

// --------------------------------------------------------- self-monitor --

TEST(SelfMonitorTest, EngineMetricIdsStayOutOfTheRealEnumRange) {
  for (engine::EngineMetric m : engine::AllEngineMetrics()) {
    EXPECT_GE(static_cast<int>(engine::ToMetricId(m)), 1000)
        << engine::EngineMetricName(m);
    EXPECT_NE(std::string(engine::EngineMetricName(m)), "engine.unknown");
  }
}

TEST(SelfMonitorTest, AppendSnapshotFillsDedicatedStore) {
  engine::EngineStatsSnapshot snapshot;
  snapshot.throughput_per_sec = 123.5;
  snapshot.queue_depth = 7;
  snapshot.submitted = 40;
  snapshot.completed = 38;
  snapshot.failed = 2;
  snapshot.cache_hits = 30;
  snapshot.cache_misses = 10;

  monitor::TimeSeriesStore store;
  const ComponentId self{1};
  engine::AppendSnapshot(snapshot, self, /*now=*/0, &store);
  snapshot.completed = 39;
  engine::AppendSnapshot(snapshot, self, /*now=*/5 * 60 * 1000, &store);

  EXPECT_EQ(store.series_count(), engine::AllEngineMetrics().size());
  const std::vector<monitor::Sample>& throughput = store.Series(
      self, engine::ToMetricId(engine::EngineMetric::kThroughputPerSec));
  ASSERT_EQ(throughput.size(), 2u);
  EXPECT_EQ(throughput[0].value, 123.5);
  const std::vector<monitor::Sample>& completed = store.Series(
      self, engine::ToMetricId(engine::EngineMetric::kCompleted));
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0].value, 38);
  EXPECT_EQ(completed[1].value, 39);
  // Hit rate is a derived gauge: 30 / (30 + 10).
  const std::vector<monitor::Sample>& hit_rate = store.Series(
      self, engine::ToMetricId(engine::EngineMetric::kResultCacheHitRate));
  ASSERT_EQ(hit_rate.size(), 2u);
  EXPECT_DOUBLE_EQ(hit_rate[0].value, 0.75);
  // The series slice like any SAN metric (the whole point).
  TimeInterval window;
  window.begin = 0;
  window.end = 10 * 60 * 1000;
  EXPECT_EQ(store
                .Slice(self,
                       engine::ToMetricId(engine::EngineMetric::kCompleted),
                       window)
                .size(),
            2u);
}

}  // namespace
}  // namespace diads
