// End-to-end integration: every Table-1 scenario (plus the plan-change
// extras) must be diagnosed correctly by the full workflow — the
// reproduction of the paper's headline claim that "DIADS successfully
// diagnosed the root cause in all these cases", with the per-scenario
// module behaviours of Table 1's right column checked explicitly.
//
// The full 12-scenarios x 2-backends ground-truth sweep lives in
// tests/backend_conformance_test.cc (same ctest label, shared
// testsupport::DiagnosesGroundTruth predicate and memoised runs) — this
// file keeps what is distinctive to the integration story: Table 1's
// right-column narrative behaviours, the plan-change explanations, and
// the slowdown-materiality checks, parameterised over backends where the
// behaviour is backend-neutral instead of copy-pasting per-engine suites.
#include <gtest/gtest.h>

#include "diads/workflow.h"
#include "support/conformance_util.h"
#include "workload/scenario.h"

namespace diads {
namespace {

using db::BackendKind;
using testsupport::CaseName;
using testsupport::DiagnosedScenario;
using testsupport::GetDiagnosed;
using workload::ScenarioId;

// --- Per-scenario narrative checks (Table 1's right column) -------------------
// Pinned on the seed (PostgreSQL) baseline; the cross-backend ground-truth
// sweep in backend_conformance_test covers the MySQL side of each
// scenario.

/// nullptr (with a recorded failure) when the baseline run fails; callers
/// ASSERT on it so a broken scenario fails only its own test.
const DiagnosedScenario* Baseline(ScenarioId id) {
  Result<const DiagnosedScenario*> d =
      GetDiagnosed(id, BackendKind::kPostgres);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return d.ok() ? *d : nullptr;
}

TEST(ScenarioNarrativeTest, S2_DaPrunesV2Symptoms) {
  // "DA prunes out the unrelated symptoms and events for volume V2":
  // V2's contention is real at the SAN level but must not survive to a
  // high-impact cause.
  const DiagnosedScenario* d_ptr =
      Baseline(ScenarioId::kS2DualExternalContention);
  ASSERT_NE(d_ptr, nullptr);
  const DiagnosedScenario& d = *d_ptr;
  for (const diag::RootCause& cause : d.report.causes) {
    if (cause.subject == d.scenario.testbed->v2 &&
        cause.impact_pct.has_value()) {
      EXPECT_LT(*cause.impact_pct, 10.0) << "V2 cause escaped impact pruning";
    }
  }
}

TEST(ScenarioNarrativeTest, S3_CrFlagsRecordCounts_IaRulesOutContention) {
  const DiagnosedScenario* d_ptr = Baseline(ScenarioId::kS3DataPropertyChange);
  ASSERT_NE(d_ptr, nullptr);
  const DiagnosedScenario& d = *d_ptr;
  // "CR identifies the important symptoms."
  EXPECT_TRUE(d.report.cr.data_properties_changed);
  EXPECT_FALSE(d.report.cr.correlated_record_set.empty());
  // "IA rules out volume contention as a root cause": no contention-type
  // cause may reach high confidence (the symptoms database separates
  // effect from cause via the record-count conditions).
  for (const diag::RootCause& cause : d.report.causes) {
    if (cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kExternalWorkloadContention) {
      EXPECT_NE(cause.band, diag::ConfidenceBand::kHigh)
          << "volume contention escaped as high-confidence";
    }
  }
}

TEST(ScenarioNarrativeTest, S4_BothProblemsIdentified) {
  // "Both problems identified; IA correctly ranks them."
  const DiagnosedScenario* d_ptr = Baseline(ScenarioId::kS4ConcurrentDbSan);
  ASSERT_NE(d_ptr, nullptr);
  const DiagnosedScenario& d = *d_ptr;
  int high_matches = 0;
  for (const diag::RootCause& cause : d.report.causes) {
    if (cause.band != diag::ConfidenceBand::kHigh) continue;
    if (cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kDataPropertyChange) {
      ++high_matches;
      ASSERT_TRUE(cause.impact_pct.has_value());
      EXPECT_GT(*cause.impact_pct, 50.0);
    }
  }
  EXPECT_EQ(high_matches, 2);
}

TEST(ScenarioNarrativeTest, S5_SpuriousContentionLowImpact) {
  // "IA identifies volume contention as low impact."
  const DiagnosedScenario* d_ptr = Baseline(ScenarioId::kS5LockingWithNoise);
  ASSERT_NE(d_ptr, nullptr);
  const DiagnosedScenario& d = *d_ptr;
  bool spurious_seen = false;
  for (const diag::RootCause& cause : d.report.causes) {
    const bool contention =
        cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kExternalWorkloadContention ||
        cause.type == diag::RootCauseType::kDiskFailure ||
        cause.type == diag::RootCauseType::kRaidRebuild;
    if (contention && cause.subject == d.scenario.testbed->v2 &&
        cause.impact_pct.has_value()) {
      spurious_seen = true;
      EXPECT_LT(*cause.impact_pct, 10.0);
    }
  }
  // The noise works: at least one spurious V2 candidate surfaced (and was
  // neutralised by impact).
  EXPECT_TRUE(spurious_seen);
  // The real cause carries essentially the whole slowdown.
  const diag::RootCause& top = d.report.causes.front();
  EXPECT_EQ(top.type, diag::RootCauseType::kLockContention);
  ASSERT_TRUE(top.impact_pct.has_value());
  EXPECT_GT(*top.impact_pct, 80.0);
}

TEST(ScenarioNarrativeTest, PlanChangeScenariosExplainTheChange) {
  // On both backends: the plans differ across the fault and Module PD's
  // what-if probe pins the event that explains the change.
  for (BackendKind backend : db::AllBackendKinds()) {
    for (ScenarioId id : {ScenarioId::kS6IndexDrop, ScenarioId::kS7ParamChange,
                          ScenarioId::kS8AnalyzeAfterDrift}) {
      Result<const DiagnosedScenario*> d = GetDiagnosed(id, backend);
      ASSERT_TRUE(d.ok()) << CaseName(id, backend);
      EXPECT_TRUE((*d)->report.pd.plans_differ) << CaseName(id, backend);
      bool explained = false;
      for (const diag::PlanChangeCandidate& c : (*d)->report.pd.candidates) {
        if (c.could_explain.value_or(false)) explained = true;
      }
      EXPECT_TRUE(explained) << CaseName(id, backend);
    }
  }
}

TEST(ScenarioNarrativeTest, SlowdownsAreMaterial) {
  // Every non-plan-change scenario must produce a visible slowdown on
  // every backend; the whole diagnosis exercise presumes one.
  for (BackendKind backend : db::AllBackendKinds()) {
    for (ScenarioId id : {ScenarioId::kS1SanMisconfiguration,
                          ScenarioId::kS3DataPropertyChange,
                          ScenarioId::kS5LockingWithNoise}) {
      Result<const DiagnosedScenario*> d = GetDiagnosed(id, backend);
      ASSERT_TRUE(d.ok()) << CaseName(id, backend);
      const db::RunCatalog& runs = (*d)->scenario.testbed->runs;
      double sat = 0, unsat = 0;
      int ns = 0, nu = 0;
      for (const db::QueryRunRecord& run : runs.runs()) {
        const db::RunLabel label = runs.LabelOf(run.run_id);
        if (label == db::RunLabel::kSatisfactory) {
          sat += static_cast<double>(run.duration_ms());
          ++ns;
        } else if (label == db::RunLabel::kUnsatisfactory) {
          unsat += static_cast<double>(run.duration_ms());
          ++nu;
        }
      }
      ASSERT_GT(ns, 0);
      ASSERT_GT(nu, 0);
      EXPECT_GT(unsat / nu, 1.3 * sat / ns) << CaseName(id, backend);
    }
  }
}

}  // namespace
}  // namespace diads
