// End-to-end integration: every Table-1 scenario (plus the plan-change
// extras) must be diagnosed correctly by the full workflow — the
// reproduction of the paper's headline claim that "DIADS successfully
// diagnosed the root cause in all these cases", with the per-scenario
// module behaviours of Table 1's right column checked explicitly.
//
// Scenarios are parameterised; each runs once (they are the expensive part
// of the suite).
#include <gtest/gtest.h>

#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads {
namespace {

using workload::GroundTruthCause;
using workload::MatchesGroundTruth;
using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

struct DiagnosedScenario {
  ScenarioOutput scenario;
  diag::DiagnosisReport report;
};

Result<DiagnosedScenario> Diagnose(ScenarioId id) {
  DIADS_ASSIGN_OR_RETURN(ScenarioOutput scenario, RunScenario(id, {}));
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());
  DiagnosedScenario out{std::move(scenario), std::move(report)};
  return out;
}

class TableOneScenarioTest : public ::testing::TestWithParam<ScenarioId> {};

TEST_P(TableOneScenarioTest, DiagnosesGroundTruth) {
  Result<DiagnosedScenario> d = Diagnose(GetParam());
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const ComponentRegistry& registry = d->scenario.testbed->registry;

  // Every primary ground-truth cause appears with high confidence.
  for (const GroundTruthCause& truth : d->scenario.ground_truth) {
    if (!truth.primary) continue;
    bool found = false;
    for (const diag::RootCause& cause : d->report.causes) {
      if (cause.band == diag::ConfidenceBand::kHigh &&
          MatchesGroundTruth(truth, cause, registry)) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "missing: " << diag::RootCauseTypeName(truth.type)
                       << " on " << truth.subject_name << "\nreport:\n"
                       << diag::RenderIaResult(d->scenario.MakeContext(),
                                               d->report.causes);
  }
  // The single top-ranked cause is one of the ground-truth causes.
  ASSERT_FALSE(d->report.causes.empty());
  bool top_matches = false;
  for (const GroundTruthCause& truth : d->scenario.ground_truth) {
    if (MatchesGroundTruth(truth, d->report.causes.front(), registry)) {
      top_matches = true;
    }
  }
  EXPECT_TRUE(top_matches)
      << "top cause: "
      << diag::RootCauseTypeName(d->report.causes.front().type);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, TableOneScenarioTest,
    ::testing::Values(ScenarioId::kS1SanMisconfiguration,
                      ScenarioId::kS1bBurstyV2,
                      ScenarioId::kS2DualExternalContention,
                      ScenarioId::kS3DataPropertyChange,
                      ScenarioId::kS4ConcurrentDbSan,
                      ScenarioId::kS5LockingWithNoise,
                      ScenarioId::kS6IndexDrop, ScenarioId::kS7ParamChange,
                      ScenarioId::kS8AnalyzeAfterDrift,
                      ScenarioId::kS9CpuSaturation,
                      ScenarioId::kS10RaidRebuild,
                      ScenarioId::kS11DiskFailure),
    [](const ::testing::TestParamInfo<ScenarioId>& info) {
      std::string name = workload::ScenarioName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Per-scenario narrative checks (Table 1's right column) -------------------

TEST(ScenarioNarrativeTest, S2_DaPrunesV2Symptoms) {
  // "DA prunes out the unrelated symptoms and events for volume V2":
  // V2's contention is real at the SAN level but must not survive to a
  // high-impact cause.
  Result<DiagnosedScenario> d = Diagnose(ScenarioId::kS2DualExternalContention);
  ASSERT_TRUE(d.ok());
  for (const diag::RootCause& cause : d->report.causes) {
    if (cause.subject == d->scenario.testbed->v2 &&
        cause.impact_pct.has_value()) {
      EXPECT_LT(*cause.impact_pct, 10.0)
          << "V2 cause escaped impact pruning";
    }
  }
}

TEST(ScenarioNarrativeTest, S3_CrFlagsRecordCounts_IaRulesOutContention) {
  Result<DiagnosedScenario> d = Diagnose(ScenarioId::kS3DataPropertyChange);
  ASSERT_TRUE(d.ok());
  // "CR identifies the important symptoms."
  EXPECT_TRUE(d->report.cr.data_properties_changed);
  EXPECT_FALSE(d->report.cr.correlated_record_set.empty());
  // "IA rules out volume contention as a root cause": no contention-type
  // cause may reach high confidence (the symptoms database separates
  // effect from cause via the record-count conditions).
  for (const diag::RootCause& cause : d->report.causes) {
    if (cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kExternalWorkloadContention) {
      EXPECT_NE(cause.band, diag::ConfidenceBand::kHigh)
          << "volume contention escaped as high-confidence";
    }
  }
}

TEST(ScenarioNarrativeTest, S4_BothProblemsIdentified) {
  // "Both problems identified; IA correctly ranks them."
  Result<DiagnosedScenario> d = Diagnose(ScenarioId::kS4ConcurrentDbSan);
  ASSERT_TRUE(d.ok());
  int high_matches = 0;
  for (const diag::RootCause& cause : d->report.causes) {
    if (cause.band != diag::ConfidenceBand::kHigh) continue;
    if (cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kDataPropertyChange) {
      ++high_matches;
      ASSERT_TRUE(cause.impact_pct.has_value());
      EXPECT_GT(*cause.impact_pct, 50.0);
    }
  }
  EXPECT_EQ(high_matches, 2);
}

TEST(ScenarioNarrativeTest, S5_SpuriousContentionLowImpact) {
  // "IA identifies volume contention as low impact."
  Result<DiagnosedScenario> d = Diagnose(ScenarioId::kS5LockingWithNoise);
  ASSERT_TRUE(d.ok());
  bool spurious_seen = false;
  for (const diag::RootCause& cause : d->report.causes) {
    const bool contention =
        cause.type == diag::RootCauseType::kSanMisconfigurationContention ||
        cause.type == diag::RootCauseType::kExternalWorkloadContention ||
        cause.type == diag::RootCauseType::kDiskFailure ||
        cause.type == diag::RootCauseType::kRaidRebuild;
    if (contention && cause.subject == d->scenario.testbed->v2 &&
        cause.impact_pct.has_value()) {
      spurious_seen = true;
      EXPECT_LT(*cause.impact_pct, 10.0);
    }
  }
  // The noise works: at least one spurious V2 candidate surfaced (and was
  // neutralised by impact).
  EXPECT_TRUE(spurious_seen);
  // The real cause carries essentially the whole slowdown.
  const diag::RootCause& top = d->report.causes.front();
  EXPECT_EQ(top.type, diag::RootCauseType::kLockContention);
  ASSERT_TRUE(top.impact_pct.has_value());
  EXPECT_GT(*top.impact_pct, 80.0);
}

TEST(ScenarioNarrativeTest, PlanChangeScenariosExplainTheChange) {
  for (ScenarioId id : {ScenarioId::kS6IndexDrop, ScenarioId::kS7ParamChange,
                        ScenarioId::kS8AnalyzeAfterDrift}) {
    Result<DiagnosedScenario> d = Diagnose(id);
    ASSERT_TRUE(d.ok()) << workload::ScenarioName(id);
    EXPECT_TRUE(d->report.pd.plans_differ) << workload::ScenarioName(id);
    bool explained = false;
    for (const diag::PlanChangeCandidate& c : d->report.pd.candidates) {
      if (c.could_explain.value_or(false)) explained = true;
    }
    EXPECT_TRUE(explained) << workload::ScenarioName(id);
  }
}

TEST(ScenarioNarrativeTest, SlowdownsAreMaterial) {
  // Every non-plan-change scenario must produce a visible slowdown; the
  // whole diagnosis exercise presumes one.
  for (ScenarioId id :
       {ScenarioId::kS1SanMisconfiguration, ScenarioId::kS3DataPropertyChange,
        ScenarioId::kS5LockingWithNoise}) {
    Result<ScenarioOutput> scenario = RunScenario(id, {});
    ASSERT_TRUE(scenario.ok());
    const db::RunCatalog& runs = scenario->testbed->runs;
    double sat = 0, unsat = 0;
    int ns = 0, nu = 0;
    for (const db::QueryRunRecord& run : runs.runs()) {
      const db::RunLabel label = runs.LabelOf(run.run_id);
      if (label == db::RunLabel::kSatisfactory) {
        sat += static_cast<double>(run.duration_ms());
        ++ns;
      } else if (label == db::RunLabel::kUnsatisfactory) {
        unsat += static_cast<double>(run.duration_ms());
        ++nu;
      }
    }
    ASSERT_GT(ns, 0);
    ASSERT_GT(nu, 0);
    EXPECT_GT(unsat / nu, 1.3 * sat / ns) << workload::ScenarioName(id);
  }
}

}  // namespace
}  // namespace diads
