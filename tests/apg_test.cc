// Tests for the Annotated Plan Graph: construction from catalog + topology,
// inner/outer dependency paths (the Section 3 semantics, including the
// paper's O23 example), annotations over run intervals, and the renderers.
#include <gtest/gtest.h>

#include <set>

#include "apg/apg.h"
#include "apg/browser.h"
#include "apg/render.h"
#include "workload/testbed.h"

namespace diads::apg {
namespace {

using workload::BuildFigure1Testbed;
using workload::Testbed;
using workload::TestbedOptions;

class ApgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<Testbed>> tb = BuildFigure1Testbed(TestbedOptions{});
    ASSERT_TRUE(tb.ok()) << tb.status().ToString();
    tb_ = std::move(*tb);
    Result<Apg> apg = tb_->BuildApg();
    ASSERT_TRUE(apg.ok()) << apg.status().ToString();
    apg_ = std::make_unique<Apg>(std::move(*apg));
  }

  std::set<std::string> PathNames(const std::vector<ComponentId>& path) {
    std::set<std::string> names;
    for (ComponentId c : path) names.insert(tb_->registry.NameOf(c));
    return names;
  }

  int OpIndex(int op_number) {
    return apg_->plan().IndexOfOpNumber(op_number).value();
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<Apg> apg_;
};

TEST_F(ApgTest, OperatorComponentsRegisteredStably) {
  // Every operator gets a registry component; rebuilding yields the same
  // ids (names are keyed by plan fingerprint).
  Result<Apg> again = tb_->BuildApg();
  ASSERT_TRUE(again.ok());
  for (const db::PlanOp& op : apg_->plan().ops()) {
    EXPECT_EQ(apg_->OperatorComponent(op.index).value(),
              again->OperatorComponent(op.index).value());
  }
  // Reverse lookup round-trips.
  const ComponentId o8 = apg_->OperatorComponent(OpIndex(8)).value();
  EXPECT_EQ(apg_->OpIndexOf(o8).value(), OpIndex(8));
}

TEST_F(ApgTest, ScanVolumesFollowTablespaceMapping) {
  EXPECT_EQ(apg_->VolumeOfOp(OpIndex(8)).value(), tb_->v1);   // partsupp.
  EXPECT_EQ(apg_->VolumeOfOp(OpIndex(22)).value(), tb_->v1);  // partsupp2.
  EXPECT_EQ(apg_->VolumeOfOp(OpIndex(7)).value(), tb_->v2);   // part.
  EXPECT_EQ(apg_->VolumeOfOp(OpIndex(13)).value(), tb_->v2);  // nation.
  // Interior operators have no volume.
  EXPECT_FALSE(apg_->VolumeOfOp(OpIndex(3)).ok());
}

TEST_F(ApgTest, InnerPathMatchesPaperO23Example) {
  // Section 3: "the inner dependency path for the Index Scan operator O23
  // ... includes the server, HBA, FCSwitches, storage subsystem, Pool P2,
  // Volume V2, and Disks 5-10". Our O23 is the nation2 index scan on V2 —
  // same volume, same path.
  std::set<std::string> names =
      PathNames(apg_->InnerPath(OpIndex(23)).value());
  EXPECT_TRUE(names.count("dbserver"));
  EXPECT_TRUE(names.count("dbserver-hba0"));
  EXPECT_TRUE(names.count("edge-sw1"));
  EXPECT_TRUE(names.count("core-sw1"));
  EXPECT_TRUE(names.count("edge-sw2"));
  EXPECT_TRUE(names.count("ds6000"));
  EXPECT_TRUE(names.count("P2"));
  EXPECT_TRUE(names.count("V2"));
  for (int d = 5; d <= 10; ++d) {
    EXPECT_TRUE(names.count("disk" + std::to_string(d))) << d;
  }
  // Not V1's hardware.
  EXPECT_FALSE(names.count("V1"));
  EXPECT_FALSE(names.count("disk1"));
}

TEST_F(ApgTest, OuterPathContainsSharersAndWorkloads) {
  // Section 3: "The outer dependency path includes Volumes V3 and V4
  // (because of the shared disks) and other database queries." Our O23 is
  // on V2, whose pool sharer is V4 driven by app-workload-v4.
  std::set<std::string> names =
      PathNames(apg_->OuterPath(OpIndex(23)).value());
  EXPECT_TRUE(names.count("V4"));
  EXPECT_TRUE(names.count("app-workload-v4"));
  EXPECT_FALSE(names.count("V3"));  // V3 shares with V1, not V2.

  // And the V1 leaf's outer path holds V3.
  std::set<std::string> v1_outer =
      PathNames(apg_->OuterPath(OpIndex(8)).value());
  EXPECT_TRUE(v1_outer.count("V3"));
  EXPECT_TRUE(v1_outer.count("app-workload-v3"));
}

TEST_F(ApgTest, InteriorPathsAreLeafUnions) {
  // O3 (top hash join) subsumes every leaf: its inner path covers both
  // volumes and all ten disks.
  std::set<std::string> names = PathNames(apg_->InnerPath(OpIndex(3)).value());
  EXPECT_TRUE(names.count("V1"));
  EXPECT_TRUE(names.count("V2"));
  for (int d = 1; d <= 10; ++d) {
    EXPECT_TRUE(names.count("disk" + std::to_string(d))) << d;
  }
  // The database component is on every inner path.
  EXPECT_TRUE(names.count("postgres@dbserver"));
}

TEST_F(ApgTest, LeafOpsOnComponent) {
  std::vector<int> v1_leaves = apg_->LeafOpsOnComponent(tb_->v1);
  std::set<int> v1_numbers;
  for (int leaf : v1_leaves) {
    v1_numbers.insert(apg_->plan().op(leaf).op_number);
  }
  EXPECT_EQ(v1_numbers, (std::set<int>{8, 22}));
  EXPECT_EQ(apg_->LeafOpsOnComponent(tb_->v2).size(), 7u);
  // All nine leaves depend on the subsystem.
  EXPECT_EQ(apg_->LeafOpsOnComponent(tb_->subsystem).size(), 9u);
}

TEST_F(ApgTest, PlanVolumes) {
  std::vector<ComponentId> volumes = apg_->PlanVolumes();
  EXPECT_EQ(volumes.size(), 2u);
}

TEST_F(ApgTest, AnnotationsSliceTheRunInterval) {
  // Execute a run, collect monitors, annotate its interval.
  Result<int> run_id = tb_->RunQ2(Hours(8));
  ASSERT_TRUE(run_id.ok());
  const db::QueryRunRecord& run = *tb_->runs.FindRun(*run_id).value();
  ASSERT_TRUE(
      tb_->CollectMonitors(Hours(8) - Minutes(10), run.interval.end + Minutes(10))
          .ok());
  ApgAnnotations annotations = AnnotateApg(*apg_, tb_->store, run.interval);
  EXPECT_EQ(annotations.interval, run.interval);
  // V1 is annotated with storage metrics.
  auto it = annotations.per_component.find(tb_->v1);
  ASSERT_NE(it, annotations.per_component.end());
  EXPECT_GE(it->second.metric_means.size(), 10u);
  // The server is annotated too.
  EXPECT_TRUE(annotations.per_component.count(tb_->db_server));
}

TEST_F(ApgTest, AsciiRenderShowsBothLayers) {
  const std::string out = RenderApgAscii(*apg_);
  EXPECT_NE(out.find("O8"), std::string::npos);
  EXPECT_NE(out.find("partsupp"), std::string::npos);
  EXPECT_NE(out.find("[V1]"), std::string::npos);
  EXPECT_NE(out.find("IBM DS6000"), std::string::npos);
  EXPECT_NE(out.find("Pool P1"), std::string::npos);
  EXPECT_NE(out.find("disk10"), std::string::npos);
  EXPECT_NE(out.find("app-workload-v3"), std::string::npos);
}

TEST_F(ApgTest, DotRenderIsWellFormed) {
  const std::string out = RenderApgDot(*apg_);
  EXPECT_EQ(out.find("digraph apg {"), 0u);
  EXPECT_NE(out.find("}"), std::string::npos);
  EXPECT_NE(out.find("op0"), std::string::npos);
  EXPECT_NE(out.find("style=dashed"), std::string::npos);  // Scan->volume.
  EXPECT_NE(out.find("outer"), std::string::npos);
}

TEST_F(ApgTest, DependencyPathRender) {
  const std::string out = RenderDependencyPaths(*apg_, OpIndex(23));
  EXPECT_NE(out.find("O23"), std::string::npos);
  EXPECT_NE(out.find("inner:"), std::string::npos);
  EXPECT_NE(out.find("outer:"), std::string::npos);
  EXPECT_NE(out.find("V2"), std::string::npos);
}

TEST_F(ApgTest, BrowserQuerySelectionScreen) {
  ASSERT_TRUE(tb_->RunQ2(Hours(8)).ok());
  ASSERT_TRUE(tb_->RunQ2(Hours(9)).ok());
  ASSERT_TRUE(tb_->runs
                  .LabelByTimeWindow("Q2", TimeInterval{Hours(8), Hours(8) + 1},
                                     db::RunLabel::kSatisfactory)
                  .ok());
  ASSERT_TRUE(tb_->runs
                  .LabelByTimeWindow("Q2", TimeInterval{Hours(9), Hours(9) + 1},
                                     db::RunLabel::kUnsatisfactory)
                  .ok());
  ApgBrowser browser(apg_.get(), &tb_->store, &tb_->runs);
  const std::string out = browser.RenderQuerySelectionScreen("Q2");
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("[x]"), std::string::npos);  // Unsatisfactory box.
  EXPECT_NE(out.find("[ ]"), std::string::npos);
}

TEST_F(ApgTest, BrowserTreePathAndMetricTable) {
  Result<int> run_id = tb_->RunQ2(Hours(8));
  ASSERT_TRUE(run_id.ok());
  const db::QueryRunRecord& run = *tb_->runs.FindRun(*run_id).value();
  ASSERT_TRUE(tb_->CollectMonitors(Hours(8) - Minutes(10),
                                   run.interval.end + Minutes(30))
                  .ok());
  ASSERT_TRUE(tb_->runs
                  .LabelByTimeWindow("Q2",
                                     TimeInterval{Hours(8), run.interval.end},
                                     db::RunLabel::kUnsatisfactory)
                  .ok());
  ApgBrowser browser(apg_.get(), &tb_->store, &tb_->runs);

  Result<std::string> tree = browser.RenderTreePath(OpIndex(8));
  ASSERT_TRUE(tree.ok());
  // Figure 6's left panel: root to disks through the selected scan.
  EXPECT_NE(tree->find("O1 Result"), std::string::npos);
  EXPECT_NE(tree->find("O8"), std::string::npos);
  EXPECT_NE(tree->find("Volume V1"), std::string::npos);
  EXPECT_NE(tree->find("Disk disk1"), std::string::npos);

  const std::string table = browser.RenderMetricTable(
      tb_->v1, TimeInterval{Hours(8) - Minutes(10), run.interval.end + Minutes(20)},
      "Q2");
  EXPECT_NE(table.find("writeTime"), std::string::npos);
  EXPECT_NE(table.find("Unsatisfactory"), std::string::npos);
  EXPECT_NE(table.find("[x]"), std::string::npos);
}

TEST_F(ApgTest, BuildRejectsNullPlan) {
  EXPECT_FALSE(
      tb_->apg_builder.Build(nullptr, tb_->query_q2, tb_->database,
                             tb_->db_server)
          .ok());
}

}  // namespace
}  // namespace diads::apg
