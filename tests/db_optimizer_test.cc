// Unit tests for the optimizer: access-path selection, join enumeration,
// subquery blocks, and — critically for Module PD — plan sensitivity to
// index drops, statistics refreshes, and cost parameters.
#include <gtest/gtest.h>

#include "common/event_log.h"
#include "db/catalog.h"
#include "db/optimizer.h"
#include "db/query.h"
#include "db/tpch.h"

namespace diads::db {
namespace {

struct OptimizerFixture {
  ComponentRegistry registry;
  EventLog events;
  ComponentId v1, v2;
  Catalog catalog{&registry, &events};

  OptimizerFixture() {
    v1 = registry.MustRegister(ComponentKind::kVolume, "V1");
    v2 = registry.MustRegister(ComponentKind::kVolume, "V2");
    TpchOptions options;
    options.volume_v1 = v1;
    options.volume_v2 = v2;
    EXPECT_TRUE(BuildTpchCatalog(options, &catalog).ok());
  }

  Plan Optimize(const QuerySpec& spec, DbParams params = {}) {
    Optimizer optimizer(&catalog, params);
    Result<Plan> plan = optimizer.Optimize(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }
};

int CountOps(const Plan& plan, OpType type) {
  int n = 0;
  for (const PlanOp& op : plan.ops()) {
    if (op.type == type) ++n;
  }
  return n;
}

bool HasIndexScanOn(const Plan& plan, const std::string& table,
                    const std::string& index = std::string()) {
  for (const PlanOp& op : plan.ops()) {
    if (op.type == OpType::kIndexScan && op.table == table &&
        (index.empty() || op.index_name == index)) {
      return true;
    }
  }
  return false;
}

TEST(OptimizerTest, SingleTableAccessPaths) {
  OptimizerFixture f;
  // Selective indexed filter on part -> index scan.
  QuerySpec selective;
  selective.name = "sel";
  selective.tables = {{"p", "part", 0.004, "p_size"}};
  Plan plan = f.Optimize(selective);
  EXPECT_TRUE(HasIndexScanOn(plan, "part", "part_size_idx"));

  // Unselective scan -> sequential.
  QuerySpec full;
  full.name = "full";
  full.tables = {{"p", "part", 1.0, ""}};
  Plan seq_plan = f.Optimize(full);
  EXPECT_FALSE(HasIndexScanOn(seq_plan, "part"));
  EXPECT_EQ(CountOps(seq_plan, OpType::kSeqScan), 1);
}

TEST(OptimizerTest, HighRandomPageCostKillsIndexScans) {
  OptimizerFixture f;
  QuerySpec selective;
  selective.name = "sel";
  selective.tables = {{"p", "part", 0.004, "p_size"}};
  DbParams expensive_random;
  expensive_random.random_page_cost = 200.0;
  Plan plan = f.Optimize(selective, expensive_random);
  EXPECT_FALSE(HasIndexScanOn(plan, "part"));
}

TEST(OptimizerTest, JoinProducesSinglePlanCoveringAllTables) {
  OptimizerFixture f;
  QuerySpec spec = MakeSupplierRollupSpec();
  Plan plan = f.Optimize(spec);
  int scans = 0;
  for (const PlanOp& op : plan.ops()) {
    if (op.is_scan()) ++scans;
  }
  EXPECT_EQ(scans, 3);  // supplier, nation, region.
  EXPECT_EQ(CountOps(plan, OpType::kAggregate), 1);
  EXPECT_EQ(CountOps(plan, OpType::kSort), 1);
  EXPECT_EQ(plan.op(plan.root_index()).type, OpType::kResult);
}

TEST(OptimizerTest, EstimatesPropagateUp) {
  OptimizerFixture f;
  QuerySpec spec = MakeSupplierRollupSpec();
  Plan plan = f.Optimize(spec);
  // Root cost must be at least any single scan's cost (cumulative costs).
  const double root_cost = plan.op(plan.root_index()).est_cost;
  for (const PlanOp& op : plan.ops()) {
    EXPECT_LE(op.est_cost, root_cost + 1e-9)
        << OpTypeName(op.type) << " cost exceeds root";
    EXPECT_GE(op.est_rows, 0);
  }
}

TEST(OptimizerTest, Q2HasNineLeavesAndSubqueryBlock) {
  OptimizerFixture f;
  Plan plan = f.Optimize(MakeTpchQ2Spec());
  EXPECT_EQ(plan.LeafIndexes().size(), 9u);
  EXPECT_EQ(CountOps(plan, OpType::kAggregate), 1);  // min() group by.
  EXPECT_EQ(CountOps(plan, OpType::kLimit), 1);
  // Both partsupp occurrences scanned.
  int partsupp_scans = 0;
  for (const PlanOp& op : plan.ops()) {
    if (op.is_scan() && op.table == "partsupp") ++partsupp_scans;
  }
  EXPECT_EQ(partsupp_scans, 2);
}

TEST(OptimizerTest, DeterministicAcrossRuns) {
  OptimizerFixture f;
  Plan a = f.Optimize(MakeTpchQ2Spec());
  Plan b = f.Optimize(MakeTpchQ2Spec());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// --- Plan-change sensitivity (the Module PD levers) -----------------------------

TEST(OptimizerTest, IndexDropFlipsQ2Plan) {
  OptimizerFixture f;
  Plan before = f.Optimize(MakeTpchQ2Spec());
  ASSERT_TRUE(HasIndexScanOn(before, "partsupp", "partsupp_partkey_idx"));
  ASSERT_TRUE(f.catalog.SetIndexDroppedSilently("partsupp_partkey_idx", true)
                  .ok());
  Plan after = f.Optimize(MakeTpchQ2Spec());
  EXPECT_NE(before.Fingerprint(), after.Fingerprint());
  EXPECT_FALSE(HasIndexScanOn(after, "partsupp", "partsupp_partkey_idx"));
  // Restore: the original plan comes back (PD's what-if probe relies on
  // this reversibility).
  ASSERT_TRUE(f.catalog.SetIndexDroppedSilently("partsupp_partkey_idx", false)
                  .ok());
  Plan restored = f.Optimize(MakeTpchQ2Spec());
  EXPECT_EQ(before.Fingerprint(), restored.Fingerprint());
}

TEST(OptimizerTest, RandomPageCostFlipsQ2Plan) {
  OptimizerFixture f;
  Plan cheap = f.Optimize(MakeTpchQ2Spec());
  DbParams params;
  params.random_page_cost = 40.0;
  Plan expensive = f.Optimize(MakeTpchQ2Spec(), params);
  EXPECT_NE(cheap.Fingerprint(), expensive.Fingerprint());
}

TEST(OptimizerTest, StatsRefreshAfterGrowthFlipsQ2Plan) {
  OptimizerFixture f;
  Plan before = f.Optimize(MakeTpchQ2Spec());
  // part grows 8x and the optimizer learns about it.
  ASSERT_TRUE(f.catalog.ApplyDml(1, "part", 8.0, "").ok());
  ASSERT_TRUE(f.catalog.Analyze(2, "part").ok());
  Plan after = f.Optimize(MakeTpchQ2Spec());
  EXPECT_NE(before.Fingerprint(), after.Fingerprint());
}

TEST(OptimizerTest, StaleStatsKeepThePlan) {
  OptimizerFixture f;
  Plan before = f.Optimize(MakeTpchQ2Spec());
  // Actual data moves but ANALYZE never runs: same plan (scenario 3's
  // precondition).
  ASSERT_TRUE(f.catalog.ApplyDml(1, "partsupp", 1.7, "").ok());
  Plan after = f.Optimize(MakeTpchQ2Spec());
  EXPECT_EQ(before.Fingerprint(), after.Fingerprint());
}

TEST(OptimizerTest, WorkMemAffectsSortSpill) {
  OptimizerFixture f;
  QuerySpec spec;
  spec.name = "bigsort";
  spec.tables = {{"ps", "partsupp", 1.0, ""}};
  spec.sort = true;
  DbParams small_mem;
  small_mem.work_mem_mb = 1.0;
  DbParams big_mem;
  big_mem.work_mem_mb = 4096.0;
  Plan spilling = f.Optimize(spec, small_mem);
  Plan in_memory = f.Optimize(spec, big_mem);
  // The spilling sort is costlier (same structure, different cost).
  EXPECT_GT(spilling.op(spilling.root_index()).est_cost,
            in_memory.op(in_memory.root_index()).est_cost);
}

TEST(OptimizerTest, ParamByNameRoundTrip) {
  DbParams params;
  ASSERT_TRUE(SetParamByName(&params, "random_page_cost", 11.5).ok());
  EXPECT_DOUBLE_EQ(GetParamByName(params, "random_page_cost").value(), 11.5);
  ASSERT_TRUE(SetParamByName(&params, "work_mem_mb", 64).ok());
  EXPECT_DOUBLE_EQ(GetParamByName(params, "work_mem_mb").value(), 64);
  EXPECT_FALSE(SetParamByName(&params, "no_such_param", 1).ok());
  EXPECT_FALSE(GetParamByName(params, "no_such_param").ok());
}

TEST(OptimizerTest, RejectsEmptyBlock) {
  OptimizerFixture f;
  QuerySpec empty;
  empty.name = "empty";
  Optimizer optimizer(&f.catalog, DbParams{});
  EXPECT_FALSE(optimizer.Optimize(empty).ok());
}

// Property sweep: whatever the random_page_cost, the optimizer must return
// a valid single-rooted plan with all 9 scans for Q2.
class OptimizerParamSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(OptimizerParamSweepTest, Q2AlwaysPlansCompletely) {
  OptimizerFixture f;
  DbParams params;
  params.random_page_cost = GetParam();
  Plan plan = f.Optimize(MakeTpchQ2Spec(), params);
  EXPECT_EQ(plan.LeafIndexes().size(), 9u);
  EXPECT_EQ(plan.op(plan.root_index()).type, OpType::kResult);
}

INSTANTIATE_TEST_SUITE_P(RandomPageCosts, OptimizerParamSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 16.0,
                                           40.0, 100.0));

}  // namespace
}  // namespace diads::db
