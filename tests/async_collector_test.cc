// Tests for the async SAN metric collection pipeline: covering-slice
// semantics, fetch planning (dedup), the simulated-latency backend, the
// scatter/gather layer (overlap, bounded in-flight, timeout/retry, stale
// degradation, cancellation), and the end-to-end contract — a diagnosis
// over collected data is ReportDigest-identical to one over the source
// store, even when a component's fetches always time out. Run under
// -fsanitize=thread alongside engine_test to validate the locking.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "diads/report.h"
#include "diads/symptom_index.h"
#include "diads/workflow.h"
#include "monitor/async_collector.h"
#include "monitor/collection_planner.h"
#include "monitor/gather.h"
#include "monitor/timeseries.h"
#include "workload/scenario.h"

namespace diads::monitor {
namespace {

using workload::MatchesGroundTruth;
using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

ComponentId Comp(uint32_t value) { return ComponentId{value}; }

// --- TimeSeriesStore::CoveringSlice ----------------------------------------

class CoveringSliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Samples at t = 0, 100, 200, ..., 900.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store_
                      .Append(Comp(1), MetricId::kVolTotalIos, i * 100,
                              static_cast<double>(i))
                      .ok());
    }
  }
  TimeSeriesStore store_;
};

TEST_F(CoveringSliceTest, IncludesBoundarySamples) {
  // Window (250, 650): in-window samples 300..600, plus 200 (stale
  // fallback for MeanIn) and 700 (tail reading).
  std::vector<Sample> slice =
      store_.CoveringSlice(Comp(1), MetricId::kVolTotalIos, {250, 650});
  ASSERT_EQ(slice.size(), 6u);
  EXPECT_EQ(slice.front().time, 200);
  EXPECT_EQ(slice.back().time, 700);
}

TEST_F(CoveringSliceTest, WindowBeforeAllSamplesKeepsTailOnly) {
  std::vector<Sample> slice =
      store_.CoveringSlice(Comp(1), MetricId::kVolTotalIos, {-500, -100});
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice.front().time, 0);  // First sample at/after window end.
}

TEST_F(CoveringSliceTest, WindowAfterAllSamplesKeepsNewestOnly) {
  std::vector<Sample> slice =
      store_.CoveringSlice(Comp(1), MetricId::kVolTotalIos, {2000, 3000});
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice.front().time, 900);  // Stale-fallback sample.
}

TEST_F(CoveringSliceTest, EmptySeriesYieldsEmptySlice) {
  EXPECT_TRUE(
      store_.CoveringSlice(Comp(2), MetricId::kVolTotalIos, {0, 100}).empty());
}

TEST_F(CoveringSliceTest, SubintervalQueriesMatchSourceStore) {
  // The contract the diagnosis relies on: a store rebuilt from the
  // covering slice answers every subinterval query identically.
  const TimeInterval window{150, 750};
  TimeSeriesStore rebuilt;
  for (const Sample& s :
       store_.CoveringSlice(Comp(1), MetricId::kVolTotalIos, window)) {
    ASSERT_TRUE(
        rebuilt.Append(Comp(1), MetricId::kVolTotalIos, s.time, s.value).ok());
  }
  for (SimTimeMs a = 150; a < 750; a += 37) {
    for (SimTimeMs b = a + 1; b <= 750; b += 53) {
      const TimeInterval sub{a, b};
      EXPECT_EQ(store_.ValuesIn(Comp(1), MetricId::kVolTotalIos, sub),
                rebuilt.ValuesIn(Comp(1), MetricId::kVolTotalIos, sub));
      Result<double> want =
          store_.MeanIn(Comp(1), MetricId::kVolTotalIos, sub);
      Result<double> got =
          rebuilt.MeanIn(Comp(1), MetricId::kVolTotalIos, sub);
      ASSERT_EQ(want.ok(), got.ok());
      if (want.ok()) {
        EXPECT_DOUBLE_EQ(*want, *got);
      }
    }
  }
}

// --- CollectionPlanner ------------------------------------------------------

TEST(CollectionPlannerTest, DeduplicatesAndSortsKeys) {
  TimeSeriesStore store;
  std::vector<SeriesKey> keys = {
      {Comp(5), MetricId::kVolTotalIos},
      {Comp(3), MetricId::kVolReadLatencyMs},
      {Comp(5), MetricId::kVolTotalIos},  // Duplicate.
      {Comp(5), MetricId::kVolBytesRead},
      {Comp(3), MetricId::kVolReadLatencyMs},  // Duplicate.
  };
  std::vector<FetchRequest> plan =
      CollectionPlanner::Plan(keys, {100, 200}, &store);
  ASSERT_EQ(plan.size(), 2u);  // One request per component.
  EXPECT_EQ(plan[0].component, Comp(3));
  EXPECT_EQ(plan[1].component, Comp(5));
  ASSERT_EQ(plan[1].metrics.size(), 2u);
  EXPECT_LT(static_cast<int>(plan[1].metrics[0]),
            static_cast<int>(plan[1].metrics[1]));
  EXPECT_EQ(CollectionPlanner::SeriesCount(plan), 3u);
  for (const FetchRequest& request : plan) {
    EXPECT_EQ(request.interval, (TimeInterval{100, 200}));
    EXPECT_EQ(request.source, &store);
  }
}

// --- SimulatedSanCollector --------------------------------------------------

class SimulatedCollectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store_
                      .Append(Comp(1), MetricId::kVolTotalIos, i * 10,
                              static_cast<double>(i))
                      .ok());
    }
  }

  FetchRequest RequestFor(ComponentId component) {
    FetchRequest request;
    request.component = component;
    request.interval = {0, 80};
    request.metrics = {MetricId::kVolTotalIos, MetricId::kVolBytesRead};
    request.source = &store_;
    return request;
  }

  TimeSeriesStore store_;
};

TEST_F(SimulatedCollectorTest, FetchReturnsCoveringSlices) {
  SimulatedLatencyOptions options;
  options.base_latency_ms = 0.1;
  SimulatedSanCollector collector(options);
  MetricBatch batch = collector.Fetch(RequestFor(Comp(1))).get();
  ASSERT_TRUE(batch.ok()) << batch.status.ToString();
  EXPECT_EQ(batch.component, Comp(1));
  // kVolBytesRead has no series: only the non-empty series comes back.
  ASSERT_EQ(batch.series.size(), 1u);
  EXPECT_EQ(batch.series[0].metric, MetricId::kVolTotalIos);
  EXPECT_EQ(batch.series[0].samples.size(), 8u);
  EXPECT_FALSE(batch.stale);
  EXPECT_EQ(collector.fetches_started(), 1u);
}

TEST_F(SimulatedCollectorTest, LatencyIsImposedPerComponent) {
  SimulatedLatencyOptions options;
  options.base_latency_ms = 1;
  options.per_component_ms[1] = 40;
  SimulatedSanCollector collector(options);
  const auto start = std::chrono::steady_clock::now();
  MetricBatch batch = collector.Fetch(RequestFor(Comp(1))).get();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  ASSERT_TRUE(batch.ok());
  EXPECT_GE(elapsed_ms, 35.0);  // The 40ms override, minus sched slop.
  EXPECT_GE(batch.fetch_ms, 35.0);
}

TEST_F(SimulatedCollectorTest, ShutdownCancelsQueuedAndSleepingFetches) {
  SimulatedLatencyOptions options;
  options.base_latency_ms = 10000;  // Would take forever if not cancelled.
  options.connections = 1;
  SimulatedSanCollector collector(options);
  std::vector<std::future<MetricBatch>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(collector.Fetch(RequestFor(Comp(1))));
  }
  collector.Shutdown();  // Must be prompt: wakes the sleeper, fails queue.
  for (std::future<MetricBatch>& future : futures) {
    MetricBatch batch = future.get();  // Resolves, never hangs.
    EXPECT_FALSE(batch.ok());
  }
  EXPECT_EQ(collector.fetches_cancelled(), 4u);
  // Fetches after shutdown fail fast.
  MetricBatch late = collector.Fetch(RequestFor(Comp(1))).get();
  EXPECT_FALSE(late.ok());
}

// --- MetricGatherer ---------------------------------------------------------

class GatherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (uint32_t c = 1; c <= 8; ++c) {
      for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(store_
                        .Append(Comp(c), MetricId::kVolTotalIos, i * 10,
                                static_cast<double>(c * 100 + i))
                        .ok());
      }
    }
  }

  std::vector<FetchRequest> EightComponentPlan() {
    std::vector<SeriesKey> keys;
    for (uint32_t c = 1; c <= 8; ++c) {
      keys.push_back(SeriesKey{Comp(c), MetricId::kVolTotalIos});
    }
    return CollectionPlanner::Plan(keys, {0, 60}, &store_);
  }

  TimeSeriesStore store_;
};

TEST_F(GatherTest, OverlapsFetchesAcrossComponents) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 20;
  SimulatedSanCollector collector(latency);
  GatherOptions options;
  options.max_in_flight = 8;
  options.timeout_ms = 0;  // No timeouts: measure pure overlap.
  MetricGatherer gatherer(&collector, options);
  GatherResult result = gatherer.Gather(EightComponentPlan());
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(result.counters.fetches, 8u);
  EXPECT_EQ(result.fetch_ms.size(), 8u);
  // Serialized this costs 8 * 20 = 160ms; overlapped it is ~20ms. Allow
  // generous scheduling slop and still prove the overlap.
  EXPECT_LT(result.counters.gather_ms, 100.0);
  // Every series arrived intact.
  for (uint32_t c = 1; c <= 8; ++c) {
    EXPECT_EQ(
        result.collected.Series(Comp(c), MetricId::kVolTotalIos).size(), 6u);
  }
}

TEST_F(GatherTest, BoundedInFlightStillCompletesWidePlans) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 1;
  SimulatedSanCollector collector(latency);
  GatherOptions options;
  options.max_in_flight = 2;  // Narrower than the 8-wide plan.
  MetricGatherer gatherer(&collector, options);
  GatherResult result = gatherer.Gather(EightComponentPlan());
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(result.counters.fetches, 8u);
  EXPECT_EQ(result.collected.series_count(), 8u);
}

TEST_F(GatherTest, TimeoutDegradesToStaleLocalData) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 1;
  latency.per_component_ms[3] = 10000;  // Component 3 always times out.
  SimulatedSanCollector collector(latency);
  GatherOptions options;
  options.max_in_flight = 8;
  options.timeout_ms = 25;
  options.max_attempts = 2;
  MetricGatherer gatherer(&collector, options);
  GatherResult result = gatherer.Gather(EightComponentPlan());
  ASSERT_TRUE(result.degraded());
  ASSERT_EQ(result.stale_components.size(), 1u);
  EXPECT_EQ(result.stale_components[0], Comp(3));
  EXPECT_EQ(result.counters.timeouts, 2u);  // Both attempts timed out.
  EXPECT_EQ(result.counters.retries, 1u);
  EXPECT_EQ(result.counters.stale_components, 1u);
  // The stale component's data still arrived — from the local cache.
  EXPECT_EQ(
      result.collected.Series(Comp(3), MetricId::kVolTotalIos).size(), 6u);
  EXPECT_EQ(result.collected.series_count(), 8u);
}

TEST_F(GatherTest, TimeoutDegradationLogsAffectedComponent) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 1;
  latency.per_component_ms[3] = 10000;  // Component 3 always times out.
  SimulatedSanCollector collector(latency);
  GatherOptions options;
  options.max_in_flight = 8;
  options.timeout_ms = 25;
  options.max_attempts = 2;
  MetricGatherer gatherer(&collector, options);

  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  CaptureLogSink capture;
  GatherResult result;
  {
    ScopedLogSink scoped(&capture);
    result = gatherer.Gather(EightComponentPlan());
  }
  SetLogLevel(previous);

  ASSERT_TRUE(result.degraded());
  const std::vector<LogRecord> warnings = capture.RecordsFor("monitor.gather");
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].level, LogLevel::kWarning);
  // The warning names the affected component, the reason, and the attempt
  // count — the triad the serving stats alone could never answer.
  EXPECT_NE(warnings[0].message.find("component C3"), std::string::npos)
      << warnings[0].message;
  EXPECT_NE(warnings[0].message.find("stale local data"), std::string::npos)
      << warnings[0].message;
  EXPECT_NE(warnings[0].message.find("timeout"), std::string::npos)
      << warnings[0].message;
  EXPECT_NE(warnings[0].message.find("2 attempts"), std::string::npos)
      << warnings[0].message;
  // Healthy components stay silent.
  EXPECT_EQ(capture.size(), 1u);
}

TEST_F(GatherTest, CollectorShutdownMidGatherDegradesInsteadOfFailing) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 30;
  SimulatedSanCollector collector(latency);
  GatherOptions options;
  options.max_in_flight = 8;
  MetricGatherer gatherer(&collector, options);
  std::future<GatherResult> gather_future =
      std::async(std::launch::async,
                 [&] { return gatherer.Gather(EightComponentPlan()); });
  collector.Shutdown();  // While fetches are queued/sleeping.
  GatherResult result = gather_future.get();
  // Whatever was cancelled came back stale from local data; the gather
  // itself succeeded and is complete.
  EXPECT_EQ(result.collected.series_count(), 8u);
  EXPECT_EQ(result.counters.cancelled + result.fetch_ms.size(),
            result.counters.fetches);
}

// --- End-to-end: diagnosis over collected data ------------------------------

class CollectionDiagnosisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    symptoms_ = new diag::SymptomsDb(diag::SymptomsDb::MakeDefault());
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, {});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
    diag::Workflow workflow(scenario_->MakeContext(), diag::WorkflowConfig{},
                            symptoms_);
    Result<diag::DiagnosisReport> serial = workflow.Diagnose();
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    serial_digest_ = new std::string(diag::ReportDigest(*serial));
  }
  static void TearDownTestSuite() {
    delete serial_digest_;
    delete scenario_;
    delete symptoms_;
    serial_digest_ = nullptr;
    scenario_ = nullptr;
    symptoms_ = nullptr;
  }

  static diag::SymptomsDb* symptoms_;
  static ScenarioOutput* scenario_;
  static std::string* serial_digest_;
};

diag::SymptomsDb* CollectionDiagnosisTest::symptoms_ = nullptr;
ScenarioOutput* CollectionDiagnosisTest::scenario_ = nullptr;
std::string* CollectionDiagnosisTest::serial_digest_ = nullptr;

TEST_F(CollectionDiagnosisTest, MetricKeysCoverEveryPlannedComponent) {
  diag::DiagnosisContext ctx = scenario_->MakeContext();
  const std::vector<SeriesKey> keys =
      diag::SymptomIndex::CollectMetricKeys(ctx);
  ASSERT_FALSE(keys.empty());
  // Every key names a series the store actually has.
  for (const SeriesKey& key : keys) {
    EXPECT_FALSE(ctx.store->Series(key.component, key.metric).empty());
  }
}

TEST_F(CollectionDiagnosisTest, CollectedDiagnosisIsDigestIdentical) {
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.1;
  SimulatedSanCollector collector(latency);
  MetricGatherer gatherer(&collector, GatherOptions{});
  diag::Workflow workflow(scenario_->MakeContext(), diag::WorkflowConfig{},
                          symptoms_);
  diag::CollectionOutcome outcome;
  Result<diag::DiagnosisReport> report = workflow.DiagnoseWithCollection(
      gatherer, diag::ImpactMethod::kInverseDependency, nullptr, &outcome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(diag::ReportDigest(*report), *serial_digest_);
  EXPECT_FALSE(outcome.degraded());
  EXPECT_GT(outcome.planned_components, 0u);
  EXPECT_GE(outcome.planned_series, outcome.planned_components);
  EXPECT_EQ(outcome.gather.counters.fetches, outcome.planned_components);
}

// The partial-degradation contract (Table-1 correctness on stale data): a
// SAN component whose collector never answers must not change the root
// cause — its series are served stale from the local cache and the
// diagnosis is annotated, not failed.
TEST_F(CollectionDiagnosisTest,
       AlwaysTimedOutComponentStillYieldsCorrectRootCause) {
  diag::DiagnosisContext ctx = scenario_->MakeContext();
  // The slow component is V1 itself — the volume the true cause lives on.
  Result<ComponentId> v1 = ctx.topology->registry().FindByName("V1");
  ASSERT_TRUE(v1.ok());
  SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.1;
  latency.per_component_ms[v1->value] = 10000;  // Never answers in time.
  SimulatedSanCollector collector(latency);
  GatherOptions gather_options;
  gather_options.timeout_ms = 20;
  gather_options.max_attempts = 2;
  MetricGatherer gatherer(&collector, gather_options);

  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, symptoms_);
  diag::CollectionOutcome outcome;
  Result<diag::DiagnosisReport> report = workflow.DiagnoseWithCollection(
      gatherer, diag::ImpactMethod::kInverseDependency, nullptr, &outcome);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Stale-data annotation is set and names V1.
  ASSERT_TRUE(outcome.degraded());
  ASSERT_EQ(outcome.gather.stale_components.size(), 1u);
  EXPECT_EQ(outcome.gather.stale_components[0], *v1);
  EXPECT_GE(outcome.gather.counters.timeouts, 2u);

  // The report is still byte-identical to the serial ground truth, and
  // the Table-1 root cause still matches.
  EXPECT_EQ(diag::ReportDigest(*report), *serial_digest_);
  const diag::RootCause* top = report->TopCause();
  ASSERT_NE(top, nullptr);
  ASSERT_FALSE(scenario_->ground_truth.empty());
  EXPECT_TRUE(MatchesGroundTruth(scenario_->ground_truth.front(), *top,
                                 ctx.topology->registry()));
}

}  // namespace
}  // namespace diads::monitor
