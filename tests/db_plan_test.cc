// Unit tests for plans: builder validation, preorder numbering,
// fingerprints, blocking semantics, and the structure of the Figure-1
// paper plan (25 operators, 9 leaves, O8/O22 on partsupp).
#include <gtest/gtest.h>

#include <set>

#include "db/paper_plan.h"
#include "db/plan.h"

namespace diads::db {
namespace {

Plan SmallPlan() {
  // Result -> HashJoin(probe=SeqScan a, build=Hash(SeqScan b)).
  PlanBuilder b("q");
  const int scan_a = b.AddScan(OpType::kSeqScan, "a", "ta");
  const int scan_b = b.AddScan(OpType::kSeqScan, "b", "tb");
  const int hash = b.AddOp(OpType::kHash, {scan_b});
  const int join = b.AddOp(OpType::kHashJoin, {scan_a, hash});
  const int result = b.AddOp(OpType::kResult, {join});
  return b.Build(result).value();
}

TEST(PlanTest, PreorderNumbering) {
  Plan plan = SmallPlan();
  // Preorder: Result=O1, HashJoin=O2, SeqScan a=O3, Hash=O4, SeqScan b=O5.
  EXPECT_EQ(plan.op(plan.root_index()).op_number, 1);
  std::set<int> numbers;
  for (const PlanOp& op : plan.ops()) numbers.insert(op.op_number);
  EXPECT_EQ(numbers, (std::set<int>{1, 2, 3, 4, 5}));
  const int scan_a = plan.IndexOfOpNumber(3).value();
  EXPECT_EQ(plan.op(scan_a).type, OpType::kSeqScan);
  EXPECT_EQ(plan.op(scan_a).table, "ta");
}

TEST(PlanTest, ParentAndAncestors) {
  Plan plan = SmallPlan();
  const int scan_b = plan.IndexOfOpNumber(5).value();
  const int hash = plan.IndexOfOpNumber(4).value();
  const int join = plan.IndexOfOpNumber(2).value();
  const int root = plan.IndexOfOpNumber(1).value();
  EXPECT_EQ(plan.ParentOf(scan_b), hash);
  EXPECT_EQ(plan.ParentOf(root), -1);
  std::vector<int> ancestors = plan.AncestorsOf(scan_b);
  ASSERT_EQ(ancestors.size(), 3u);
  EXPECT_EQ(ancestors[0], hash);
  EXPECT_EQ(ancestors[1], join);
  EXPECT_EQ(ancestors[2], root);
}

TEST(PlanTest, LeavesAreScans) {
  Plan plan = SmallPlan();
  std::vector<int> leaves = plan.LeafIndexes();
  ASSERT_EQ(leaves.size(), 2u);
  for (int leaf : leaves) {
    EXPECT_TRUE(plan.op(leaf).is_scan());
  }
}

TEST(PlanTest, FingerprintStableAndStructureSensitive) {
  Plan a = SmallPlan();
  Plan b = SmallPlan();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // Different estimates, same structure: same fingerprint.
  PlanBuilder builder("q");
  const int scan_a = builder.AddScan(OpType::kSeqScan, "a", "ta");
  const int scan_b = builder.AddScan(OpType::kSeqScan, "b", "tb");
  builder.SetEstimates(scan_a, 1e6, 1e6, 1e6);
  const int hash = builder.AddOp(OpType::kHash, {scan_b});
  const int join = builder.AddOp(OpType::kHashJoin, {scan_a, hash});
  const int result = builder.AddOp(OpType::kResult, {join});
  Plan c = builder.Build(result).value();
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());

  // Different scan target: different fingerprint.
  PlanBuilder builder2("q");
  const int scan_a2 = builder2.AddScan(OpType::kSeqScan, "a", "OTHER");
  const int scan_b2 = builder2.AddScan(OpType::kSeqScan, "b", "tb");
  const int hash2 = builder2.AddOp(OpType::kHash, {scan_b2});
  const int join2 = builder2.AddOp(OpType::kHashJoin, {scan_a2, hash2});
  const int result2 = builder2.AddOp(OpType::kResult, {join2});
  Plan d = builder2.Build(result2).value();
  EXPECT_NE(a.Fingerprint(), d.Fingerprint());

  // Swapped children: different fingerprint.
  PlanBuilder builder3("q");
  const int scan_a3 = builder3.AddScan(OpType::kSeqScan, "a", "ta");
  const int scan_b3 = builder3.AddScan(OpType::kSeqScan, "b", "tb");
  const int hash3 = builder3.AddOp(OpType::kHash, {scan_a3});
  const int join3 = builder3.AddOp(OpType::kHashJoin, {scan_b3, hash3});
  const int result3 = builder3.AddOp(OpType::kResult, {join3});
  Plan e = builder3.Build(result3).value();
  EXPECT_NE(a.Fingerprint(), e.Fingerprint());
}

TEST(PlanTest, BuilderRejectsMalformedTrees) {
  // Dangling op (two roots).
  PlanBuilder b1("q");
  b1.AddScan(OpType::kSeqScan, "a", "ta");
  const int lone = b1.AddScan(OpType::kSeqScan, "b", "tb");
  EXPECT_FALSE(b1.Build(lone).ok());

  // Child shared by two parents.
  PlanBuilder b2("q");
  const int scan = b2.AddScan(OpType::kSeqScan, "a", "ta");
  const int m1 = b2.AddOp(OpType::kMaterialize, {scan});
  const int m2 = b2.AddOp(OpType::kMaterialize, {scan});
  const int join = b2.AddOp(OpType::kNestLoopJoin, {m1, m2});
  EXPECT_FALSE(b2.Build(join).ok());

  // Bad root index.
  PlanBuilder b3("q");
  b3.AddScan(OpType::kSeqScan, "a", "ta");
  EXPECT_FALSE(b3.Build(7).ok());
}

TEST(PlanTest, BlockingSemantics) {
  EXPECT_TRUE(IsBlockingOutput(OpType::kSort));
  EXPECT_TRUE(IsBlockingOutput(OpType::kAggregate));
  EXPECT_TRUE(IsBlockingOutput(OpType::kHash));
  EXPECT_TRUE(IsBlockingOutput(OpType::kMaterialize));
  EXPECT_FALSE(IsBlockingOutput(OpType::kHashJoin));
  EXPECT_FALSE(IsBlockingOutput(OpType::kNestLoopJoin));
  EXPECT_FALSE(IsBlockingOutput(OpType::kSeqScan));
  // Emission-extends: sorts and aggregates, not hash builds.
  EXPECT_TRUE(SpanExtendsToOutput(OpType::kSort));
  EXPECT_TRUE(SpanExtendsToOutput(OpType::kAggregate));
  EXPECT_FALSE(SpanExtendsToOutput(OpType::kHash));
  EXPECT_FALSE(SpanExtendsToOutput(OpType::kMaterialize));
}

TEST(PlanTest, RenderContainsOperators) {
  Plan plan = SmallPlan();
  const std::string out = plan.Render();
  EXPECT_NE(out.find("O1"), std::string::npos);
  EXPECT_NE(out.find("Hash Join"), std::string::npos);
  EXPECT_NE(out.find("Seq Scan on ta"), std::string::npos);
}

// --- The Figure-1 paper plan -----------------------------------------------------

class PaperPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Plan> plan = MakePaperQ2Plan();
    ASSERT_TRUE(plan.ok());
    plan_ = std::move(*plan);
  }
  Plan plan_;
};

TEST_F(PaperPlanTest, TwentyFiveOperatorsNineLeaves) {
  EXPECT_EQ(plan_.size(), 25u);
  EXPECT_EQ(plan_.LeafIndexes().size(), 9u);
}

TEST_F(PaperPlanTest, V1LeavesAreO8AndO22) {
  // The two partsupp scans land exactly at the paper's operator numbers.
  std::vector<int> partsupp_ops;
  for (const PlanOp& op : plan_.ops()) {
    if (op.is_scan() && op.table == "partsupp") {
      partsupp_ops.push_back(op.op_number);
    }
  }
  std::sort(partsupp_ops.begin(), partsupp_ops.end());
  EXPECT_EQ(partsupp_ops, (std::vector<int>{8, 22}));
}

TEST_F(PaperPlanTest, SevenLeavesOnOtherTables) {
  int other_leaves = 0;
  for (int leaf : plan_.LeafIndexes()) {
    if (plan_.op(leaf).table != "partsupp") ++other_leaves;
  }
  EXPECT_EQ(other_leaves, 7);
}

TEST_F(PaperPlanTest, RootIsResultNumberedO1) {
  const PlanOp& root = plan_.op(plan_.root_index());
  EXPECT_EQ(root.type, OpType::kResult);
  EXPECT_EQ(root.op_number, 1);
}

TEST_F(PaperPlanTest, NarrativeAncestorChains) {
  // Section 5: the interior operators flagged by event propagation are the
  // ancestors of O8 up to the sort, and of O22 up to the aggregate.
  const int o8 = plan_.IndexOfOpNumber(8).value();
  std::set<int> o8_ancestors;
  for (int a : plan_.AncestorsOf(o8)) {
    o8_ancestors.insert(plan_.op(a).op_number);
  }
  EXPECT_EQ(o8_ancestors, (std::set<int>{1, 2, 3, 4, 5, 6}));

  const int o22 = plan_.IndexOfOpNumber(22).value();
  std::set<int> o22_ancestors;
  for (int a : plan_.AncestorsOf(o22)) {
    o22_ancestors.insert(plan_.op(a).op_number);
  }
  EXPECT_EQ(o22_ancestors, (std::set<int>{1, 2, 3, 16, 17, 18, 19, 20}));
}

TEST_F(PaperPlanTest, OperatorTypeInventory) {
  int scans = 0, hashes = 0, joins = 0, sorts = 0, aggs = 0;
  for (const PlanOp& op : plan_.ops()) {
    if (op.is_scan()) ++scans;
    if (op.type == OpType::kHash) ++hashes;
    if (op.type == OpType::kHashJoin || op.type == OpType::kNestLoopJoin) {
      ++joins;
    }
    if (op.type == OpType::kSort) ++sorts;
    if (op.type == OpType::kAggregate) ++aggs;
  }
  EXPECT_EQ(scans, 9);
  EXPECT_EQ(hashes, 5);
  EXPECT_EQ(joins, 8);  // 5 hash joins + 3 nested loops.
  EXPECT_EQ(sorts, 1);
  EXPECT_EQ(aggs, 1);
}

TEST_F(PaperPlanTest, HeavyV1ReaderIsSubqueryScan) {
  // O22 (the subquery's partsupp probe stream) is the dominant V1 I/O — the
  // basis of the scenario magnitudes.
  const int o8 = plan_.IndexOfOpNumber(8).value();
  const int o22 = plan_.IndexOfOpNumber(22).value();
  EXPECT_GT(plan_.op(o22).est_pages, plan_.op(o8).est_pages * 5);
}

}  // namespace
}  // namespace diads::db
