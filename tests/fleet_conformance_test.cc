// Cross-backend fleet conformance: the S9-S11 shared-infrastructure
// scenarios run as multi-tenant fleets on BOTH backends. For each
// (scenario, backend) configuration a shared-fault fleet is diagnosed
// through the engine with the fleet store attached, then:
//
//   * every tenant's report still diagnoses its injected root cause
//     (the shared testsupport::DiagnosesGroundTruth predicate);
//   * the fleet store's implicated-tenant set for the faulted component
//     is byte-equal to the per-tenant ground-truth answer key;
//   * every report is ReportDigest-identical to a serial diagnosis (the
//     fleet store being attached must not perturb any diagnosis), and
//     tenant 0 — which runs at the canonical seed — still matches the
//     checked-in golden digest for its (scenario, backend) cell.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "support/conformance_util.h"
#include "workload/fleet.h"

namespace diads {
namespace {

using workload::BuildSharedFaultFleet;
using workload::FleetWorkload;
using workload::ScenarioId;
using workload::SharedFaultFleetOptions;

struct FleetCase {
  ScenarioId scenario;
  db::BackendKind backend;
};

class FleetConformanceTest : public ::testing::TestWithParam<FleetCase> {};

std::string FleetCaseName(
    const ::testing::TestParamInfo<FleetCase>& info) {
  return testsupport::CaseName(info.param.scenario, info.param.backend);
}

TEST_P(FleetConformanceTest, ImplicatedTenantSetMatchesGroundTruth) {
  const FleetCase& test_case = GetParam();
  SharedFaultFleetOptions options;
  options.fault_scenario = test_case.scenario;
  options.background_scenario = ScenarioId::kS3DataPropertyChange;
  options.faulted_tenants = 2;
  options.background_tenants = 1;
  options.backend = test_case.backend;
  Result<FleetWorkload> fleet = BuildSharedFaultFleet(options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_EQ(fleet->tenants.size(), 3u);

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  fleet::FleetStore store;
  engine::EngineOptions engine_options;
  engine_options.workers = 3;
  engine_options.fleet_store = &store;
  engine::DiagnosisEngine engine(engine_options, &symptoms);
  std::vector<engine::DiagnosisRequest> requests;
  for (const engine::DiagnosisRequest& request : fleet->requests) {
    requests.push_back(request);
  }
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(requests));
  ASSERT_EQ(responses.size(), fleet->tenants.size());

  // Every tenant still diagnoses its own injected cause, and its report
  // is byte-identical to a serial diagnosis without the fleet store.
  for (size_t i = 0; i < responses.size(); ++i) {
    const workload::FleetTenant& tenant =
        fleet->tenants[fleet->tenant_of_request[i]];
    ASSERT_TRUE(responses[i].ok())
        << tenant.name << ": " << responses[i].status.ToString();
    EXPECT_TRUE(testsupport::DiagnosesGroundTruth(*tenant.output,
                                                  *responses[i].report))
        << tenant.name;
    Result<diag::DiagnosisReport> serial = workload::SerialDiagnosis(
        tenant, diag::WorkflowConfig{}, &symptoms);
    ASSERT_TRUE(serial.ok()) << tenant.name;
    EXPECT_EQ(diag::ReportDigest(*responses[i].report),
              diag::ReportDigest(*serial))
        << tenant.name << ": fleet store perturbed the diagnosis";
  }
  EXPECT_EQ(engine.Stats().fleet_publishes, fleet->tenants.size());

  // The faulted component (every faulted tenant's primary ground-truth
  // subject) implicates exactly the faulted tenants — answered from the
  // store, no module re-ran.
  const std::string subject =
      fleet->tenants[0].output->ground_truth.front().subject_name;
  ASSERT_FALSE(subject.empty());
  const std::vector<std::string> expected =
      workload::TenantsWithGroundTruthSubject(*fleet, subject);
  ASSERT_EQ(expected.size(), 2u) << "answer key should be the faulted pair";
  // High-band filter: background tenants may carry medium-confidence
  // echoes of the shared component (S3's data change propagates to the
  // SAN), but only the faulted tenants implicate it with high confidence
  // — the same bar DiagnosesGroundTruth holds the reports to.
  fleet::FleetQuery query(&store);
  EXPECT_EQ(
      query.TenantsImplicating(subject, diag::ConfidenceBand::kHigh),
      expected);

  // The background tenant's own subject is implicated by it alone, so the
  // store separates the shared fault from the tenant-local one.
  const std::string background_subject =
      fleet->tenants[2].output->ground_truth.front().subject_name;
  if (!background_subject.empty() && background_subject != subject) {
    EXPECT_EQ(query.TenantsImplicating(background_subject,
                                       diag::ConfidenceBand::kHigh),
              workload::TenantsWithGroundTruthSubject(*fleet,
                                                      background_subject));
  }

  // Tenant 0 runs at the canonical seed/options: its digest must equal
  // the checked-in conformance golden for this (scenario, backend) cell —
  // the fleet store being enabled changes nothing, byte for byte.
  Result<testsupport::GoldenDigestTable> golden =
      testsupport::LoadGoldenDigests(testsupport::GoldenDigestPath());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  const auto golden_it = golden->find(
      {workload::ScenarioName(test_case.scenario),
       db::BackendKindName(test_case.backend)});
  ASSERT_NE(golden_it, golden->end())
      << "no golden digest for this configuration";
  EXPECT_EQ(diag::ReportDigestHashHex(*responses[0].report),
            golden_it->second)
      << "tenant 0's digest drifted from the conformance golden";
}

INSTANTIATE_TEST_SUITE_P(
    SharedInfrastructure, FleetConformanceTest,
    ::testing::Values(
        FleetCase{ScenarioId::kS9CpuSaturation, db::BackendKind::kPostgres},
        FleetCase{ScenarioId::kS9CpuSaturation, db::BackendKind::kMysql},
        FleetCase{ScenarioId::kS10RaidRebuild, db::BackendKind::kPostgres},
        FleetCase{ScenarioId::kS10RaidRebuild, db::BackendKind::kMysql},
        FleetCase{ScenarioId::kS11DiskFailure, db::BackendKind::kPostgres},
        FleetCase{ScenarioId::kS11DiskFailure, db::BackendKind::kMysql}),
    FleetCaseName);

}  // namespace
}  // namespace diads
