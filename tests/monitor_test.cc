// Unit tests for the monitoring substrate: the Figure-4 metric catalog, the
// time-series store (including the coarse-interval fallback semantics), the
// noise model with targeted overrides, and the SAN collector.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/event_log.h"
#include "common/rng.h"
#include "monitor/metrics.h"
#include "monitor/noise.h"
#include "monitor/san_collector.h"
#include "monitor/timeseries.h"
#include "san/perf_model.h"
#include "san/topology.h"

namespace diads::monitor {
namespace {

// --- Metric catalog (Figure 4) ------------------------------------------------

TEST(MetricCatalogTest, Figure4Coverage) {
  // Figure 4 lists 11 database, 10 server, 11 network, 10 storage metrics.
  int database = 0, server = 0, network = 0, storage = 0;
  for (const MetricMeta& m : AllMetrics()) {
    if (!m.in_figure4) continue;
    switch (m.layer) {
      case MetricLayer::kDatabase:
        ++database;
        break;
      case MetricLayer::kServer:
        ++server;
        break;
      case MetricLayer::kNetwork:
        ++network;
        break;
      case MetricLayer::kStorage:
        ++storage;
        break;
    }
  }
  // Operator/plan start-stop times and record counts live in QueryRunRecord
  // rather than the time-series store, so the database column carries 8 of
  // its 11 Figure-4 rows here.
  EXPECT_EQ(database, 8);
  EXPECT_EQ(server, 10);
  EXPECT_EQ(network, 11);
  EXPECT_EQ(storage, 10);
}

TEST(MetricCatalogTest, MetaLookupConsistent) {
  for (const MetricMeta& m : AllMetrics()) {
    const MetricMeta& round_trip = GetMetricMeta(m.id);
    EXPECT_EQ(round_trip.id, m.id);
    EXPECT_STREQ(round_trip.name, m.name);
  }
}

TEST(MetricCatalogTest, MetricsForKind) {
  const std::vector<MetricId> volume_metrics =
      MetricsForKind(ComponentKind::kVolume);
  EXPECT_GE(volume_metrics.size(), 10u);
  const std::vector<MetricId> disk_metrics =
      MetricsForKind(ComponentKind::kDisk);
  EXPECT_EQ(disk_metrics.size(), 2u);
  EXPECT_TRUE(MetricsForKind(ComponentKind::kQuery).empty());
}

TEST(MetricCatalogTest, Table2ShortNames) {
  EXPECT_STREQ(MetricShortName(MetricId::kVolPhysWriteOps), "writeIO");
  EXPECT_STREQ(MetricShortName(MetricId::kVolPhysWriteTimeMs), "writeTime");
  EXPECT_STREQ(MetricShortName(MetricId::kVolPhysReadOps), "readIO");
  EXPECT_STREQ(MetricShortName(MetricId::kVolPhysReadTimeMs), "readTime");
}

// --- TimeSeriesStore -------------------------------------------------------------

TEST(TimeSeriesStoreTest, AppendAndSlice) {
  TimeSeriesStore store;
  ComponentId c{1};
  for (SimTimeMs t : {100, 200, 300, 400}) {
    ASSERT_TRUE(
        store.Append(c, MetricId::kVolTotalIos, t, static_cast<double>(t)).ok());
  }
  std::vector<Sample> slice =
      store.Slice(c, MetricId::kVolTotalIos, TimeInterval{150, 350});
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].time, 200);
  EXPECT_EQ(slice[1].time, 300);
  EXPECT_EQ(store.total_samples(), 4u);
}

TEST(TimeSeriesStoreTest, RejectsOutOfOrderWithinSeries) {
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 200, 1).ok());
  EXPECT_FALSE(store.Append(c, MetricId::kVolTotalIos, 100, 2).ok());
  // Other series are independent.
  EXPECT_TRUE(store.Append(c, MetricId::kVolBytesRead, 100, 2).ok());
}

TEST(TimeSeriesStoreTest, MeanInIncludesCoveringTailSample) {
  // Samples are stamped at collection-interval end: a short run interval
  // [210, 240) is covered by the sample stamped at 300.
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 200, 10).ok());
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 300, 50).ok());
  Result<double> mean =
      store.MeanIn(c, MetricId::kVolTotalIos, TimeInterval{210, 240});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 50);
}

TEST(TimeSeriesStoreTest, MeanInAveragesInteriorAndTail) {
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 100, 10).ok());
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 200, 20).ok());
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 300, 60).ok());
  // [50, 250): samples at 100, 200 plus the tail sample at 300.
  Result<double> mean =
      store.MeanIn(c, MetricId::kVolTotalIos, TimeInterval{50, 250});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 30);
}

TEST(TimeSeriesStoreTest, MeanInFallsBackToStaleSample) {
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 100, 42).ok());
  Result<double> mean =
      store.MeanIn(c, MetricId::kVolTotalIos, TimeInterval{500, 600});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(*mean, 42);
  // And errors when nothing exists at all.
  EXPECT_FALSE(
      store.MeanIn(ComponentId{2}, MetricId::kVolTotalIos, TimeInterval{0, 1})
          .ok());
}

TEST(TimeSeriesStoreTest, SliceViewMatchesSliceEverywhere) {
  TimeSeriesStore store;
  const ComponentId c{3};
  SeededRng rng(11);
  SimTimeMs t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<SimTimeMs>(rng.UniformInt(0, 400));  // Allows ties.
    ASSERT_TRUE(
        store.Append(c, MetricId::kVolBytesRead, t, rng.Normal(10, 2)).ok());
  }
  for (int q = 0; q < 300; ++q) {
    const SimTimeMs begin = static_cast<SimTimeMs>(rng.UniformInt(-100, t));
    const SimTimeMs end =
        begin + static_cast<SimTimeMs>(rng.UniformInt(0, 2000));
    const TimeInterval interval{begin, end};
    const std::vector<Sample> copy =
        store.Slice(c, MetricId::kVolBytesRead, interval);
    const SampleSpan view = store.SliceView(c, MetricId::kVolBytesRead, interval);
    ASSERT_EQ(copy.size(), view.size());
    for (size_t i = 0; i < copy.size(); ++i) {
      EXPECT_EQ(copy[i].time, view[i].time);
      EXPECT_EQ(copy[i].value, view[i].value);
    }
  }
  // Absent series and empty windows produce empty views, not UB.
  EXPECT_TRUE(store.SliceView(ComponentId{99}, MetricId::kVolBytesRead,
                              TimeInterval{0, 100})
                  .empty());
  EXPECT_TRUE(
      store.SliceView(c, MetricId::kVolBytesRead, TimeInterval{5, 5}).empty());
}

TEST(TimeSeriesStoreTest, GenerationCountsAppendsPerSeries) {
  TimeSeriesStore store;
  const ComponentId a{1}, b{2};
  EXPECT_EQ(store.Generation(a, MetricId::kVolBytesRead), 0u);
  ASSERT_TRUE(store.Append(a, MetricId::kVolBytesRead, 10, 1.0).ok());
  ASSERT_TRUE(store.Append(a, MetricId::kVolBytesRead, 20, 2.0).ok());
  ASSERT_TRUE(store.Append(a, MetricId::kVolBytesWritten, 10, 3.0).ok());
  EXPECT_EQ(store.Generation(a, MetricId::kVolBytesRead), 2u);
  EXPECT_EQ(store.Generation(a, MetricId::kVolBytesWritten), 1u);
  EXPECT_EQ(store.Generation(b, MetricId::kVolBytesRead), 0u);
  // A rejected append (time regression) does not advance the generation.
  EXPECT_FALSE(store.Append(a, MetricId::kVolBytesRead, 5, 4.0).ok());
  EXPECT_EQ(store.Generation(a, MetricId::kVolBytesRead), 2u);
}

TEST(SeriesKeyHashTest, SpreadsMetricFamiliesAcrossBuckets) {
  // The regression this guards: the old hash (component * 1000003 ^ metric)
  // placed a component's whole metric family on consecutive buckets, so
  // families collided wholesale under small power-of-two tables. Hash a
  // realistic key population and require both near-full bucket coverage
  // and a small maximum load.
  const int components = 128;
  const int metrics = 32;
  const size_t buckets = 4096;  // Power of two: worst case for weak mixing.
  std::vector<int> load(buckets, 0);
  SeriesKeyHash hash;
  for (int c = 0; c < components; ++c) {
    for (int m = 0; m < metrics; ++m) {
      const SeriesKey key{ComponentId{static_cast<uint32_t>(c)},
                          static_cast<MetricId>(m)};
      ++load[hash(key) % buckets];
    }
  }
  int used = 0;
  int max_load = 0;
  for (int l : load) {
    if (l > 0) ++used;
    max_load = std::max(max_load, l);
  }
  // 4096 keys into 4096 buckets: a uniform hash fills ~63% of buckets and
  // the expected max load is ~6-7. Allow slack, but far below the old
  // hash's family-sized pileups (32+ per bucket).
  EXPECT_GE(used, static_cast<int>(buckets) / 2);
  EXPECT_LE(max_load, 12);
  // Adjacent metrics of one component must not land in adjacent buckets.
  const SeriesKeyHash h;
  int adjacent = 0;
  for (int m = 0; m + 1 < metrics; ++m) {
    const size_t b1 = h(SeriesKey{ComponentId{7}, static_cast<MetricId>(m)});
    const size_t b2 =
        h(SeriesKey{ComponentId{7}, static_cast<MetricId>(m + 1)});
    if (b1 % buckets + 1 == b2 % buckets) ++adjacent;
  }
  EXPECT_LE(adjacent, 3);
}

TEST(TimeSeriesStoreTest, LatestAtOrBefore) {
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 100, 1).ok());
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 200, 2).ok());
  EXPECT_DOUBLE_EQ(store.LatestAtOrBefore(c, MetricId::kVolTotalIos, 150)->value,
                   1);
  EXPECT_DOUBLE_EQ(store.LatestAtOrBefore(c, MetricId::kVolTotalIos, 200)->value,
                   2);
  EXPECT_FALSE(store.LatestAtOrBefore(c, MetricId::kVolTotalIos, 50).ok());
}

TEST(TimeSeriesStoreTest, MetricsForComponent) {
  TimeSeriesStore store;
  ComponentId c{1};
  ASSERT_TRUE(store.Append(c, MetricId::kVolTotalIos, 100, 1).ok());
  ASSERT_TRUE(store.Append(c, MetricId::kVolBytesRead, 100, 1).ok());
  EXPECT_EQ(store.MetricsFor(c).size(), 2u);
  EXPECT_TRUE(store.MetricsFor(ComponentId{9}).empty());
}

// --- NoiseModel ---------------------------------------------------------------------

TEST(NoiseModelTest, DefaultGaussianJitter) {
  NoiseModel noise(NoiseSpec{0.1, 0, 3.0, 0, 0}, SeededRng(5));
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum = sum + *noise.Apply(ComponentId{1}, MetricId::kVolTotalIos, 0, 100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(NoiseModelTest, DropoutDropsSamples) {
  NoiseModel noise(NoiseSpec{0, 0, 3.0, 0.5, 0}, SeededRng(7));
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!noise.Apply(ComponentId{1}, MetricId::kVolTotalIos, 0, 1.0)) {
      ++dropped;
    }
  }
  EXPECT_NEAR(dropped / 2000.0, 0.5, 0.05);
}

TEST(NoiseModelTest, BiasShiftsValues) {
  NoiseModel noise(NoiseSpec{0, 0, 3.0, 0, 1.5}, SeededRng(9));
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{1}, MetricId::kVolTotalIos, 0, 10.0), 25.0);
}

TEST(NoiseModelTest, TargetedOverrideWins) {
  NoiseModel noise(NoiseSpec{0, 0, 3.0, 0, 0}, SeededRng(11));
  NoiseOverride override_spec;
  override_spec.component = ComponentId{7};
  override_spec.metric = MetricId::kVolPhysWriteTimeMs;
  override_spec.window = TimeInterval{100, 200};
  override_spec.spec = NoiseSpec{0, 0, 3.0, 0, 2.0};  // +200%.
  noise.AddOverride(override_spec);

  // Matching component+metric+time: biased.
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{7}, MetricId::kVolPhysWriteTimeMs, 150, 10.0),
      30.0);
  // Wrong time: clean.
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{7}, MetricId::kVolPhysWriteTimeMs, 250, 10.0),
      10.0);
  // Wrong metric: clean.
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{7}, MetricId::kVolPhysReadOps, 150, 10.0),
      10.0);
  // Wrong component: clean.
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{8}, MetricId::kVolPhysWriteTimeMs, 150, 10.0),
      10.0);
}

TEST(NoiseModelTest, LaterOverrideWinsOnOverlap) {
  NoiseModel noise(NoiseSpec{0, 0, 3.0, 0, 0}, SeededRng(13));
  NoiseOverride first;
  first.window = TimeInterval{0, 100};
  first.spec = NoiseSpec{0, 0, 3.0, 0, 1.0};
  noise.AddOverride(first);
  NoiseOverride second;
  second.window = TimeInterval{0, 100};
  second.spec = NoiseSpec{0, 0, 3.0, 0, 3.0};
  noise.AddOverride(second);
  EXPECT_DOUBLE_EQ(
      *noise.Apply(ComponentId{1}, MetricId::kVolTotalIos, 50, 1.0), 4.0);
}

// --- SanCollector ----------------------------------------------------------------

struct CollectorFixture {
  ComponentRegistry registry;
  san::SanTopology topology{&registry};
  san::SanPerfModel model{&topology};
  TimeSeriesStore store;
  NoiseModel noise{NoiseSpec{0, 0, 3.0, 0, 0}, SeededRng(1)};
  EventLog events;
  ComponentId volume, server;

  CollectorFixture() {
    server = topology.AddServer("srv", "Linux").value();
    ComponentId ss = topology.AddSubsystem("ss", "X").value();
    ComponentId pool = topology.AddPool("p", ss, san::RaidLevel::kRaid5).value();
    EXPECT_TRUE(topology.AddDisk("d1", pool).ok());
    EXPECT_TRUE(topology.AddDisk("d2", pool).ok());
    volume = topology.AddVolume("V", pool, 100).value();
  }
};

TEST(SanCollectorTest, EmitsAllVolumeMetricsPerInterval) {
  CollectorFixture f;
  SanCollector collector(&f.topology, &f.model, &f.store, &f.noise, &f.events,
                         SanCollectorConfig{Minutes(5), 0, 0});
  ASSERT_TRUE(collector.CollectRange(0, Minutes(15)).ok());
  // 3 intervals x 12 volume metrics.
  int volume_samples = 0;
  for (MetricId metric : f.store.MetricsFor(f.volume)) {
    volume_samples +=
        static_cast<int>(f.store.Series(f.volume, metric).size());
  }
  EXPECT_EQ(volume_samples, 3 * 12);
  // Server and disk series exist too.
  EXPECT_FALSE(f.store.MetricsFor(f.server).empty());
}

TEST(SanCollectorTest, SamplesReflectLoad) {
  CollectorFixture f;
  san::LoadEvent load;
  load.volume = f.volume;
  load.interval = TimeInterval{0, Minutes(10)};
  load.profile.read_iops = 100;
  ASSERT_TRUE(f.model.AddLoad(load).ok());
  SanCollector collector(&f.topology, &f.model, &f.store, &f.noise, &f.events,
                         SanCollectorConfig{Minutes(5), 0, 0});
  ASSERT_TRUE(collector.CollectRange(0, Minutes(10)).ok());
  const std::vector<Sample>& series =
      f.store.Series(f.volume, MetricId::kVolTotalIos);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0].value, 100, 1e-6);
}

TEST(SanCollectorTest, LatencyTriggerLogsEvent) {
  CollectorFixture f;
  // Saturate the two-disk pool so read latency exceeds the trigger.
  san::LoadEvent load;
  load.volume = f.volume;
  load.interval = TimeInterval{0, Minutes(10)};
  load.profile.read_iops = 300;
  load.profile.write_iops = 100;
  ASSERT_TRUE(f.model.AddLoad(load).ok());
  SanCollector collector(&f.topology, &f.model, &f.store, &f.noise, &f.events,
                         SanCollectorConfig{Minutes(5), 25.0, 0.85});
  ASSERT_TRUE(collector.CollectRange(0, Minutes(10)).ok());
  EXPECT_FALSE(f.events
                   .EventsOfTypeIn(EventType::kVolumePerfDegraded,
                                   TimeInterval{0, Minutes(10)})
                   .empty());
}

TEST(SanCollectorTest, RejectsEmptyRange) {
  CollectorFixture f;
  SanCollector collector(&f.topology, &f.model, &f.store, &f.noise, &f.events);
  EXPECT_FALSE(collector.CollectRange(100, 100).ok());
}

}  // namespace
}  // namespace diads::monitor
