// Detection conformance: the always-on detector against the golden
// request-driven diagnosis table.
//
// Three contracts, per the determinism story:
//   * Trigger: replaying every scenario's monitoring stream through a
//     SlowdownDetector raises an incident after the fault onset — the
//     machine notices every Table-1 / plan-change slowdown by itself.
//   * Digest parity: the diagnosis the incident auto-submits is
//     byte-identical (ReportDigest hash) to the request-driven diagnosis
//     of the same configuration — the one the golden table pins. Auto
//     and admin ask the same question; they must get the same answer.
//   * Quiet fleet: replaying only the satisfactory era (every BuildFleet
//     tenant, plus each scenario standalone) raises zero incidents —
//     detection is calibrated against the testbed's noise model, not
//     just its faults.
//
// Replays also must never perturb the canonical store (the detector
// watches a replica): asserted via the store generation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/backend.h"
#include "diads/report.h"
#include "engine/engine.h"
#include "support/conformance_util.h"
#include "workload/detect_replay.h"
#include "workload/fleet.h"
#include "workload/scenario.h"

namespace diads::testsupport {
namespace {

using workload::DetectionReplayOptions;
using workload::DetectionReplayResult;
using workload::ReplayScenarioDetection;
using workload::ScenarioId;

diag::SymptomsDb* Symptoms() {
  static auto* symptoms =
      new diag::SymptomsDb(diag::SymptomsDb::MakeDefault());
  return symptoms;
}

/// Replays `diagnosed`'s scenario through a fresh detector + engine and
/// checks trigger + digest parity against its request-driven report.
void ExpectDetectsAndMatchesDigest(const DiagnosedScenario& diagnosed,
                                   db::BackendKind backend) {
  const uint64_t generation_before =
      diagnosed.scenario.testbed->store.StoreGeneration();

  engine::EngineOptions options;
  options.workers = 2;
  engine::DiagnosisEngine engine(options, Symptoms());
  const std::string tenant =
      CaseName(diagnosed.scenario.id, backend) + "-auto";
  Result<DetectionReplayResult> replay =
      ReplayScenarioDetection(diagnosed.scenario, tenant, &engine);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  // Trigger: the fault onset raised an incident, after the quiet era.
  ASSERT_GE(replay->incidents.size(), 1u) << "fault onset not detected";
  EXPECT_GT(replay->incidents[0].confirmed_time,
            diagnosed.scenario.satisfactory_window.end)
      << "incident confirmed before the fault onset (false positive)";
  EXPECT_GT(replay->detection_latency, 0);

  // Digest parity with the request-driven (golden-pinned) diagnosis.
  ASSERT_GE(replay->responses.size(), 1u);
  const engine::DiagnosisResponse& response = replay->responses[0];
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  ASSERT_NE(response.report, nullptr);
  EXPECT_EQ(diag::ReportDigestHashHex(*response.report),
            diagnosed.digest_hash)
      << "auto-submitted diagnosis diverged from the request-driven one";

  // The canonical store was never appended to by the replay.
  EXPECT_EQ(diagnosed.scenario.testbed->store.StoreGeneration(),
            generation_before);
}

TEST(DetectionConformanceTest, EveryScenarioAutoTriggersWithGoldenDigest) {
  for (ScenarioId id : AllScenarioIds()) {
    SCOPED_TRACE(workload::ScenarioName(id));
    Result<const DiagnosedScenario*> diagnosed =
        GetDiagnosed(id, db::BackendKind::kPostgres);
    ASSERT_TRUE(diagnosed.ok()) << diagnosed.status().ToString();
    ExpectDetectsAndMatchesDigest(**diagnosed, db::BackendKind::kPostgres);
  }
}

TEST(DetectionConformanceTest, MysqlSpotChecksAutoTrigger) {
  // The full 50-configuration matrix is backend_conformance_test's job;
  // detection replays one SAN-side and one plan-change configuration per
  // non-default backend to pin the cross-backend behaviour.
  for (ScenarioId id :
       {ScenarioId::kS1SanMisconfiguration, ScenarioId::kS6IndexDrop}) {
    SCOPED_TRACE(workload::ScenarioName(id));
    Result<const DiagnosedScenario*> diagnosed =
        GetDiagnosed(id, db::BackendKind::kMysql);
    ASSERT_TRUE(diagnosed.ok()) << diagnosed.status().ToString();
    ExpectDetectsAndMatchesDigest(**diagnosed, db::BackendKind::kMysql);
  }
}

TEST(DetectionConformanceTest, ColumnarSpotChecksAutoTrigger) {
  // Third backend: the same SAN-side + plan-change pair, plus one
  // column-store-native fault — the detector must notice a slowdown whose
  // mechanism (segment bloat) exists on no other engine.
  for (ScenarioId id :
       {ScenarioId::kS1SanMisconfiguration, ScenarioId::kS6IndexDrop,
        ScenarioId::kC1CompressionDrift}) {
    SCOPED_TRACE(workload::ScenarioName(id));
    Result<const DiagnosedScenario*> diagnosed =
        GetDiagnosed(id, db::BackendKind::kColumnar);
    ASSERT_TRUE(diagnosed.ok()) << diagnosed.status().ToString();
    ExpectDetectsAndMatchesDigest(**diagnosed, db::BackendKind::kColumnar);
  }
}

TEST(DetectionConformanceTest, QuietScenarioErasRaiseNoIncidents) {
  // Standalone: every scenario truncated at its satisfactory end.
  for (ScenarioId id : AllScenarioIds()) {
    SCOPED_TRACE(workload::ScenarioName(id));
    Result<const DiagnosedScenario*> diagnosed =
        GetDiagnosed(id, db::BackendKind::kPostgres);
    ASSERT_TRUE(diagnosed.ok()) << diagnosed.status().ToString();
    DetectionReplayOptions options;
    options.cutoff = (*diagnosed)->scenario.satisfactory_window.end;
    Result<DetectionReplayResult> replay = ReplayScenarioDetection(
        (*diagnosed)->scenario, "quiet", /*engine=*/nullptr, options);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_EQ(replay->incidents.size(), 0u)
        << "false positive in the satisfactory era";
    EXPECT_GT(replay->stats.series_calibrated, 0u);
  }
}

TEST(DetectionConformanceTest, QuietFleetRaisesNoIncidents) {
  // The CI gate's shape: a healthy multi-tenant fleet (the default
  // 5-tenant S1-S5 mix), each tenant watched up to its fault onset —
  // zero incidents, zero engine traffic.
  Result<workload::FleetWorkload> fleet =
      workload::BuildFleet(workload::FleetOptions{});
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  uint64_t incidents = 0;
  uint64_t calibrated = 0;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    DetectionReplayOptions options;
    options.cutoff = tenant.output->satisfactory_window.end;
    Result<DetectionReplayResult> replay = ReplayScenarioDetection(
        *tenant.output, tenant.name, /*engine=*/nullptr, options);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    incidents += replay->incidents.size();
    calibrated += replay->stats.series_calibrated;
  }
  EXPECT_EQ(incidents, 0u);
  EXPECT_GT(calibrated, 0u);
}

}  // namespace
}  // namespace diads::testsupport
