// Tests for the concurrent diagnosis engine: the thread pool's lifecycle,
// the sharded result cache, the stats recorders, the determinism contract
// (engine output is report-identical to serial Workflow::Diagnose), and a
// stress run submitting a shuffled fleet of 100+ requests across scenarios
// while exercising cache contention and shutdown-while-busy. Run this
// binary under -fsanitize=thread (cmake -DDIADS_SANITIZE_THREAD=ON) to
// validate the locking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "diads/report.h"
#include "diads/workflow.h"
#include "engine/cache.h"
#include "engine/engine.h"
#include "engine/stats.h"
#include "engine/thread_pool.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "monitor/async_collector.h"
#include "workload/fleet.h"
#include "workload/scenario.h"

namespace diads::engine {
namespace {

using workload::BuildFleet;
using workload::FleetOptions;
using workload::FleetWorkload;
using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;
using workload::SerialDiagnosis;

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool({/*workers=*/3, /*queue_capacity=*/16});
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }).ok());
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, BackpressureBlocksThenCompletes) {
  // One slow worker, capacity 2: submissions beyond the capacity block the
  // producer instead of growing the queue, and all tasks still run.
  ThreadPool pool({/*workers=*/1, /*queue_capacity=*/2});
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&count] {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                      ++count;
                    })
                    .ok());
    EXPECT_LE(pool.QueueDepth(), 2u);
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ShutdownCancelsQueuedAndRejectsNew) {
  ThreadPool pool({/*workers=*/2, /*queue_capacity=*/64});
  std::atomic<int> ran{0};
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 20; ++i) {
    QueueTask task;
    task.run = [&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++ran;
    };
    task.cancel = [&cancelled](const Status& status) {
      EXPECT_EQ(status.code(), StatusCode::kShutdown);
      ++cancelled;
    };
    ASSERT_TRUE(pool.Submit(std::move(task)).ok());
  }
  // Shutdown finishes whatever is running but fails still-queued tasks
  // with an explicit kShutdown — every accepted task resolves one way.
  pool.Shutdown();
  // How many ran vs were cancelled is a scheduling race; the contract is
  // that every accepted task resolved exactly one way.
  EXPECT_EQ(ran.load() + cancelled.load(), 20);
  Status status = pool.Submit([] {});
  EXPECT_EQ(status.code(), StatusCode::kShutdown);
}

TEST(ThreadPoolTest, DrainThenShutdownRunsEverything) {
  ThreadPool pool({/*workers=*/2, /*queue_capacity=*/64});
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }).ok());
  }
  pool.Drain();  // Graceful completion point: everything accepted runs.
  pool.Shutdown();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool({2, 8});
  pool.Shutdown();
  pool.Shutdown();
}

// --- Stats ------------------------------------------------------------------

TEST(LatencyRecorderTest, ExactPercentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  LatencyRecorder::Summary s = recorder.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean_ms, 50.5);
  EXPECT_NEAR(s.p50_ms, 50.5, 0.01);
  EXPECT_NEAR(s.p95_ms, 95.05, 0.01);
  EXPECT_NEAR(s.p99_ms, 99.01, 0.01);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
}

TEST(EngineStatsTest, SnapshotAndJson) {
  EngineStats stats;
  stats.RecordSubmitted();
  stats.RecordSubmitted();
  stats.RecordCompleted();
  stats.RecordCacheHit();
  stats.RecordCacheMiss();
  stats.RecordQueueDepth(7);
  stats.RecordQueueDepth(3);
  stats.RecordRequestLatency(5.0);
  EngineStatsSnapshot snap = stats.Snapshot(/*queue_depth=*/1);
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.max_queue_depth, 7u);
  EXPECT_EQ(snap.queue_depth, 1u);
  EXPECT_DOUBLE_EQ(snap.CacheHitRate(), 0.5);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"submitted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\":0.5"), std::string::npos);
  EXPECT_FALSE(snap.Render().empty());
}

// --- ResultCache ------------------------------------------------------------

CacheKey KeyNamed(const std::string& query, SimTimeMs begin = 0,
                  SimTimeMs end = 100) {
  CacheKey key;
  key.query = query;
  key.window_begin = begin;
  key.window_end = end;
  return key;
}

std::shared_ptr<const diag::DiagnosisReport> ReportStub(
    const std::string& summary) {
  auto report = std::make_shared<diag::DiagnosisReport>();
  report->summary = summary;
  return report;
}

TEST(ResultCacheTest, HitMissAccounting) {
  ResultCache cache({/*capacity=*/8, /*shards=*/2});
  EXPECT_EQ(cache.Get(KeyNamed("Q2")), nullptr);
  cache.Put(KeyNamed("Q2"), ReportStub("a"));
  std::shared_ptr<const diag::DiagnosisReport> hit = cache.Get(KeyNamed("Q2"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->summary, "a");
  ResultCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.evictions, 0u);
}

TEST(ResultCacheTest, DistinctWindowsAreDistinctEntries) {
  ResultCache cache({8, 2});
  cache.Put(KeyNamed("Q2", 0, 100), ReportStub("early"));
  cache.Put(KeyNamed("Q2", 100, 200), ReportStub("late"));
  ASSERT_NE(cache.Get(KeyNamed("Q2", 0, 100)), nullptr);
  EXPECT_EQ(cache.Get(KeyNamed("Q2", 0, 100))->summary, "early");
  EXPECT_EQ(cache.Get(KeyNamed("Q2", 100, 200))->summary, "late");
}

TEST(ResultCacheTest, LruEvictionWithinShard) {
  // Single shard, capacity 2: inserting a third entry evicts the least
  // recently used one.
  ResultCache cache({/*capacity=*/2, /*shards=*/1});
  cache.Put(KeyNamed("a"), ReportStub("a"));
  cache.Put(KeyNamed("b"), ReportStub("b"));
  ASSERT_NE(cache.Get(KeyNamed("a")), nullptr);  // Refresh "a".
  cache.Put(KeyNamed("c"), ReportStub("c"));     // Evicts "b".
  EXPECT_NE(cache.Get(KeyNamed("a")), nullptr);
  EXPECT_EQ(cache.Get(KeyNamed("b")), nullptr);
  EXPECT_NE(cache.Get(KeyNamed("c")), nullptr);
  EXPECT_EQ(cache.TotalCounters().evictions, 1u);
}

TEST(ResultCacheTest, ConcurrentMixedAccess) {
  ResultCache cache({64, 8});
  std::atomic<uint64_t> gets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &gets, t] {
      for (int i = 0; i < 200; ++i) {
        const CacheKey key = KeyNamed("Q" + std::to_string(i % 16));
        if ((i + t) % 3 == 0) {
          cache.Put(key, ReportStub("r"));
        } else {
          cache.Get(key);
          ++gets;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ResultCache::Counters counters = cache.TotalCounters();
  EXPECT_EQ(counters.hits + counters.misses, gets.load());
  EXPECT_LE(counters.entries, 16u);
}

// --- DiagnosisEngine: determinism -------------------------------------------

class EngineScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    symptoms_ = new diag::SymptomsDb(diag::SymptomsDb::MakeDefault());
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, {});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
    diag::Workflow workflow(scenario_->MakeContext(), diag::WorkflowConfig{},
                            symptoms_);
    Result<diag::DiagnosisReport> serial = workflow.Diagnose();
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    serial_digest_ = new std::string(diag::ReportDigest(*serial));
  }
  static void TearDownTestSuite() {
    delete serial_digest_;
    delete scenario_;
    delete symptoms_;
    serial_digest_ = nullptr;
    scenario_ = nullptr;
    symptoms_ = nullptr;
  }

  static DiagnosisRequest RequestForScenario() {
    DiagnosisRequest request;
    request.ctx = scenario_->MakeContext();
    request.tag = "tenant-a";
    return request;
  }

  static diag::SymptomsDb* symptoms_;
  static ScenarioOutput* scenario_;
  static std::string* serial_digest_;
};

diag::SymptomsDb* EngineScenarioTest::symptoms_ = nullptr;
ScenarioOutput* EngineScenarioTest::scenario_ = nullptr;
std::string* EngineScenarioTest::serial_digest_ = nullptr;

TEST_F(EngineScenarioTest, ReportIdenticalToSerialWorkflow) {
  EngineOptions options;
  options.workers = 4;
  DiagnosisEngine engine(options, symptoms_);
  std::future<DiagnosisResponse> future = engine.Submit(RequestForScenario());
  DiagnosisResponse response = future.get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  ASSERT_NE(response.report, nullptr);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(diag::ReportDigest(*response.report), *serial_digest_);
}

TEST_F(EngineScenarioTest, RepeatIsServedFromCacheAndIdentical) {
  EngineOptions options;
  options.workers = 4;
  DiagnosisEngine engine(options, symptoms_);
  DiagnosisResponse first = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(first.ok());
  DiagnosisResponse second = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  // Cache hits share the very report object; no re-diagnosis happened.
  EXPECT_EQ(second.report.get(), first.report.get());
  EXPECT_EQ(diag::ReportDigest(*second.report), *serial_digest_);
  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(EngineScenarioTest, CacheDisabledStillIdentical) {
  EngineOptions options;
  options.workers = 4;
  options.enable_cache = false;
  options.coalesce_identical = false;
  DiagnosisEngine engine(options, symptoms_);
  DiagnosisResponse first = engine.Submit(RequestForScenario()).get();
  DiagnosisResponse second = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.cache_hit);
  EXPECT_NE(second.report.get(), first.report.get());  // Recomputed.
  EXPECT_EQ(diag::ReportDigest(*first.report), *serial_digest_);
  EXPECT_EQ(diag::ReportDigest(*second.report), *serial_digest_);
}

TEST_F(EngineScenarioTest, ModelCacheOnVsOffDigestIdentical) {
  // Fresh incidents (distinct tags) bypass the result cache, so every
  // request recomputes the module chain; with the model cache on, the
  // second one reuses the first one's fitted baselines and must still
  // produce a byte-identical report.
  EngineOptions on_options;
  on_options.workers = 2;
  on_options.enable_cache = false;
  on_options.coalesce_identical = false;
  on_options.enable_model_cache = true;
  DiagnosisEngine on_engine(on_options, symptoms_);
  DiagnosisRequest first = RequestForScenario();
  first.tag = "incident-1";
  DiagnosisRequest second = RequestForScenario();
  second.tag = "incident-2";
  DiagnosisResponse r1 = on_engine.Submit(std::move(first)).get();
  DiagnosisResponse r2 = on_engine.Submit(std::move(second)).get();
  ASSERT_TRUE(r1.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.ok()) << r2.status.ToString();
  EXPECT_EQ(diag::ReportDigest(*r1.report), *serial_digest_);
  EXPECT_EQ(diag::ReportDigest(*r2.report), *serial_digest_);
  EngineStatsSnapshot on_stats = on_engine.Stats();
  EXPECT_GT(on_stats.model_cache_misses, 0u);
  EXPECT_GT(on_stats.model_cache_hits, 0u);  // Second incident reused.
  EXPECT_GT(on_stats.ModelCacheHitRate(), 0.0);

  EngineOptions off_options = on_options;
  off_options.enable_model_cache = false;
  DiagnosisEngine off_engine(off_options, symptoms_);
  DiagnosisRequest plain = RequestForScenario();
  plain.tag = "incident-3";
  DiagnosisResponse r3 = off_engine.Submit(std::move(plain)).get();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(diag::ReportDigest(*r3.report), *serial_digest_);
  EngineStatsSnapshot off_stats = off_engine.Stats();
  EXPECT_EQ(off_stats.model_cache_hits, 0u);
  EXPECT_EQ(off_stats.model_cache_misses, 0u);
}

TEST_F(EngineScenarioTest, ConcurrentIdenticalRequestsCoalesce) {
  EngineOptions options;
  options.workers = 4;
  options.enable_cache = false;  // Force the in-flight path, not the cache.
  DiagnosisEngine engine(options, symptoms_);
  std::vector<std::future<DiagnosisResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.Submit(RequestForScenario()));
  }
  int coalesced = 0;
  for (std::future<DiagnosisResponse>& future : futures) {
    DiagnosisResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(diag::ReportDigest(*response.report), *serial_digest_);
    if (response.coalesced) ++coalesced;
  }
  // At least the requests submitted while the first was queued or running
  // joined it (timing-dependent, but with 8 instant submissions some must).
  EXPECT_GT(coalesced, 0);
  EXPECT_EQ(engine.Stats().coalesced, static_cast<uint64_t>(coalesced));
}

TEST_F(EngineScenarioTest, RejectsInvalidContext) {
  DiagnosisEngine engine(EngineOptions{}, symptoms_);
  DiagnosisRequest request;  // Null sources.
  DiagnosisResponse response = engine.Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Stats().failed, 1u);
}

TEST_F(EngineScenarioTest, SubmitAfterShutdownResolvesRejected) {
  DiagnosisEngine engine(EngineOptions{}, symptoms_);
  engine.Shutdown();
  DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
  EXPECT_EQ(response.status.code(), StatusCode::kShutdown);
  EXPECT_EQ(engine.Stats().rejected, 1u);
}

TEST_F(EngineScenarioTest, ModuleLatenciesAreRecorded) {
  DiagnosisEngine engine(EngineOptions{}, symptoms_);
  ASSERT_TRUE(engine.Submit(RequestForScenario()).get().ok());
  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.co.count, 1u);
  EXPECT_EQ(stats.ia.count, 1u);
  EXPECT_GE(stats.request_latency.max_ms,
            stats.co.mean_ms);  // Request covers its modules.
}

// --- DiagnosisEngine: async collection --------------------------------------

TEST_F(EngineScenarioTest, AsyncCollectionIsDigestIdenticalAndMeasured) {
  monitor::SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.5;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(latency);
  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, symptoms_, collector);
  DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(diag::ReportDigest(*response.report), *serial_digest_);
  ASSERT_NE(response.collection, nullptr);
  EXPECT_TRUE(response.collection->used_async);
  EXPECT_FALSE(response.stale_data());
  EXPECT_GT(response.collection->fetches, 0u);
  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.collection_fetches, response.collection->fetches);
  EXPECT_EQ(stats.collection_timeouts, 0u);
  EXPECT_EQ(stats.degraded_diagnoses, 0u);
  EXPECT_EQ(stats.gather_latency.count, 1u);
  EXPECT_EQ(stats.fetch_latency.count, response.collection->fetches);
}

TEST_F(EngineScenarioTest, StaleAnnotationSurvivesTheCache) {
  // V1's collector never answers: every computed diagnosis degrades, and a
  // later cache hit must still carry the stale-data annotation.
  diag::DiagnosisContext ctx = scenario_->MakeContext();
  Result<ComponentId> v1 = ctx.topology->registry().FindByName("V1");
  ASSERT_TRUE(v1.ok());
  monitor::SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.5;
  latency.per_component_ms[v1->value] = 10000;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(latency);
  EngineOptions options;
  options.workers = 2;
  // Wide enough that an innocent 0.5ms fetch never times out on a loaded
  // machine (parallel ctest), narrow enough that V1's 10s stall always
  // does.
  options.gather.timeout_ms = 250;
  options.gather.max_attempts = 1;
  DiagnosisEngine engine(options, symptoms_, collector);

  DiagnosisResponse computed = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(computed.ok()) << computed.status.ToString();
  EXPECT_TRUE(computed.stale_data());
  EXPECT_EQ(diag::ReportDigest(*computed.report), *serial_digest_);

  DiagnosisResponse cached = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
  ASSERT_NE(cached.collection, nullptr);
  EXPECT_TRUE(cached.stale_data());
  ASSERT_EQ(cached.collection->stale_components.size(), 1u);
  EXPECT_EQ(cached.collection->stale_components[0], *v1);

  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.degraded_diagnoses, 1u);  // The cache hit recollects nothing.
  EXPECT_EQ(stats.collection_stale, 1u);
}

// --- DiagnosisEngine: tracing + cost profiles -------------------------------

TEST_F(EngineScenarioTest, TraceCoversColdDiagnosisEndToEnd) {
  // One cold diagnosis through the full serving path (async collector +
  // fleet store + tracer) must leave a span tree covering queue wait,
  // result-cache lookup, the scatter/gather with per-component fetches,
  // every workflow module, the model-cache outcome, and the fleet
  // publish — with consistent parent/child nesting.
  monitor::SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.5;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(latency);
  fleet::FleetStore store;
  obs::Tracer tracer;
  EngineOptions options;
  options.workers = 2;
  options.fleet_store = &store;
  options.tracer = &tracer;
  DiagnosisEngine engine(options, symptoms_, collector);

  DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(response.ok()) << response.status.ToString();
  EXPECT_EQ(diag::ReportDigest(*response.report), *serial_digest_);

  const std::vector<obs::Span> spans = tracer.Spans();
  EXPECT_EQ(CheckSpanNesting(spans, /*slack_ns=*/1000000), "");

  std::set<std::string> names;
  for (const obs::Span& span : spans) names.insert(span.name);
  for (const char* required :
       {"diagnosis", "queue_wait", "result_cache", "gather", "module:PD",
        "module:CO", "module:DA", "module:CR", "module:SD", "module:IA",
        "model_cache", "fleet_publish"}) {
    EXPECT_TRUE(names.count(required) != 0)
        << "trace is missing span " << required;
  }
  bool saw_fetch = false;
  for (const std::string& name : names) {
    if (name.rfind("fetch:C", 0) == 0) saw_fetch = true;
  }
  EXPECT_TRUE(saw_fetch) << "no per-component fetch spans";

  // The root span carries the request identity and the outcome.
  const obs::Span* root = nullptr;
  for (const obs::Span& span : spans) {
    if (span.name == "diagnosis") root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  ASSERT_NE(root->FindArg("tag"), nullptr);
  EXPECT_EQ(*root->FindArg("tag"), "tenant-a");
  ASSERT_NE(root->FindArg("outcome"), nullptr);
  EXPECT_EQ(*root->FindArg("outcome"), "ok");

  // Gather and module spans nest under the root (directly or via a
  // parent chain) — spot-check the gather's parentage.
  std::map<obs::SpanId, const obs::Span*> by_id;
  for (const obs::Span& span : spans) by_id[span.id] = &span;
  for (const obs::Span& span : spans) {
    if (span.name != "gather") continue;
    obs::SpanId ancestor = span.parent;
    bool reaches_root = false;
    while (ancestor != 0) {
      if (ancestor == root->id) { reaches_root = true; break; }
      auto it = by_id.find(ancestor);
      ASSERT_NE(it, by_id.end());
      ancestor = it->second->parent;
    }
    EXPECT_TRUE(reaches_root) << "gather span not under the diagnosis root";
  }

  // Chrome export of a real serving trace stays strictly parseable.
  EXPECT_TRUE(ValidateJson(tracer.ExportChromeTrace()).ok());
}

TEST_F(EngineScenarioTest, TracingIsDigestNeutral) {
  // Same scenario, tracer detached vs attached: byte-identical digests.
  // (The 24-config conformance matrix runs untraced; bench_engine_throughput
  // CI-gates the same property across a whole fleet.)
  std::string untraced_digest;
  {
    EngineOptions options;
    options.workers = 2;
    DiagnosisEngine engine(options, symptoms_);
    DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
    ASSERT_TRUE(response.ok());
    untraced_digest = diag::ReportDigest(*response.report);
  }
  obs::Tracer tracer;
  EngineOptions options;
  options.workers = 2;
  options.tracer = &tracer;
  DiagnosisEngine engine(options, symptoms_);
  DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(diag::ReportDigest(*response.report), untraced_digest);
  EXPECT_EQ(untraced_digest, *serial_digest_);
  EXPECT_GT(tracer.span_count(), 0u);
}

TEST_F(EngineScenarioTest, ColdAndCachedResponsesCarryCostProfiles) {
  monitor::SimulatedLatencyOptions latency;
  latency.base_latency_ms = 0.5;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(latency);
  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, symptoms_, collector);

  DiagnosisResponse cold = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  ASSERT_NE(cold.cost, nullptr);
  EXPECT_FALSE(cold.cost->result_cache_hit);
  EXPECT_FALSE(cold.cost->coalesced);
  ASSERT_EQ(cold.cost->module_ms.size(), 6u);
  EXPECT_EQ(cold.cost->module_ms[0].first, "PD");
  EXPECT_EQ(cold.cost->module_ms[5].first, "IA");
  EXPECT_GT(cold.cost->gather_ms, 0.0);
  EXPECT_GT(cold.cost->fetches_issued, 0u);
  EXPECT_GT(cold.cost->samples_collected, 0u);
  EXPECT_GT(cold.cost->bytes_collected, 0u);
  EXPECT_TRUE(cold.cost->stale_components.empty());
  EXPECT_GE(cold.cost->queue_wait_ms, 0.0);
  // Total covers the parts it decomposes into.
  EXPECT_GE(cold.cost->total_ms,
            cold.cost->gather_ms + cold.cost->ModuleTotalMs());
  // The profile is digest-neutral metadata: it must parse as JSON.
  EXPECT_TRUE(ValidateJson(cold.cost->ToJson()).ok());

  DiagnosisResponse cached = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
  ASSERT_NE(cached.cost, nullptr);
  EXPECT_TRUE(cached.cost->result_cache_hit);
  EXPECT_EQ(cached.cost->fetches_issued, 0u);  // Nothing recollected.
}

TEST_F(EngineScenarioTest, FleetVerdictCarriesCostProfile) {
  fleet::FleetStore store;
  EngineOptions options;
  options.workers = 2;
  options.fleet_store = &store;
  DiagnosisEngine engine(options, symptoms_);
  DiagnosisResponse response = engine.Submit(RequestForScenario()).get();
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response.cost, nullptr);

  bool saw_cost = false;
  for (const fleet::FleetStore::Row& row : store.Snapshot()) {
    if (row.record == nullptr || row.record->cost == nullptr) continue;
    saw_cost = true;
    // The published profile is the same shared object the response holds.
    EXPECT_EQ(row.record->cost.get(), response.cost.get());
  }
  EXPECT_TRUE(saw_cost) << "no published row carries a cost profile";
}

// The shutdown-while-fetches-in-flight contract: Shutdown() must await
// running diagnoses (whose gathers are mid-flight against a slow
// simulated backend), fail still-queued ones with an explicit kShutdown,
// resolve every future, and join the collector's connection threads —
// deterministically, with no leaked threads. Run under TSan to validate
// the teardown ordering.
TEST(EngineAsyncShutdownTest, ShutdownWithFetchesInFlightResolvesEverything) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  Result<ScenarioOutput> scenario =
      RunScenario(ScenarioId::kS2DualExternalContention, {});
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  monitor::SimulatedLatencyOptions latency;
  latency.base_latency_ms = 5;  // Slow enough that fetches are in flight.
  latency.connections = 2;
  auto collector =
      std::make_shared<monitor::SimulatedSanCollector>(latency);
  EngineOptions options;
  options.workers = 2;
  options.enable_cache = false;
  options.coalesce_identical = false;  // Force every request to compute.
  options.gather.timeout_ms = 50;
  DiagnosisEngine engine(options, &symptoms, collector);

  std::vector<std::future<DiagnosisResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    DiagnosisRequest request;
    request.ctx = scenario->MakeContext();
    request.tag = "tenant-shutdown";
    futures.push_back(engine.Submit(std::move(request)));
  }
  engine.Shutdown();  // While gathers are mid-flight.
  size_t completed = 0, cancelled = 0;
  for (std::future<DiagnosisResponse>& future : futures) {
    DiagnosisResponse response = future.get();  // Must resolve, never hang.
    if (response.ok()) {
      ASSERT_NE(response.report, nullptr);
      ++completed;
    } else {
      // Still queued at shutdown: failed with the explicit status, not
      // silently dropped or run after teardown began.
      EXPECT_EQ(response.status.code(), StatusCode::kShutdown)
          << response.status.ToString();
      ++cancelled;
    }
  }
  // Whether a given request completed or was cancelled is a scheduling
  // race; the contract is only that every future resolves one way.
  EXPECT_EQ(completed + cancelled, 6u);
  // The collector was shut down with the engine: later fetches fail fast
  // rather than landing on dead connection threads.
  monitor::FetchRequest probe;
  probe.component = ComponentId{0};
  probe.source = &scenario->testbed->store;
  EXPECT_FALSE(collector->Fetch(probe).get().ok());
}

// Plan-change scenarios exercise the deployment what-if probe, which
// temporarily mutates the tenant catalog; the engine serializes probes and
// coalesces identical requests, so concurrent submissions stay correct.
TEST(EngineProbeTest, PlanChangeScenarioDeterministicUnderConcurrency) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  Result<ScenarioOutput> scenario =
      RunScenario(ScenarioId::kS6IndexDrop, {});
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  diag::Workflow workflow(scenario->MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  Result<diag::DiagnosisReport> serial = workflow.Diagnose();
  ASSERT_TRUE(serial.ok());
  const std::string serial_digest = diag::ReportDigest(*serial);

  EngineOptions options;
  options.workers = 4;
  DiagnosisEngine engine(options, &symptoms);
  std::vector<std::future<DiagnosisResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    DiagnosisRequest request;
    request.ctx = scenario->MakeContext();
    request.tag = "tenant-s6";
    futures.push_back(engine.Submit(std::move(request)));
  }
  for (std::future<DiagnosisResponse>& future : futures) {
    DiagnosisResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    EXPECT_EQ(diag::ReportDigest(*response.report), serial_digest);
  }
}

// --- DiagnosisEngine: fleet stress -------------------------------------------

TEST(EngineStressTest, HundredPlusConcurrentRequestsAcrossScenarios) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  FleetOptions fleet_options;
  fleet_options.tenants = 5;               // All five Table-1 scenarios.
  fleet_options.requests_per_tenant = 24;  // 120 requests total.
  fleet_options.scenario_options.satisfactory_runs = 16;
  fleet_options.scenario_options.unsatisfactory_runs = 8;
  Result<FleetWorkload> fleet = BuildFleet(fleet_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  ASSERT_EQ(fleet->requests.size(), 120u);

  // Serial ground truth per tenant.
  std::vector<std::string> expected_digest;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    Result<diag::DiagnosisReport> serial =
        SerialDiagnosis(tenant, diag::WorkflowConfig{}, &symptoms);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    expected_digest.push_back(diag::ReportDigest(*serial));
  }

  EngineOptions options;
  options.workers = 4;
  options.queue_capacity = 32;  // Exercise backpressure too.
  DiagnosisEngine engine(options, &symptoms);
  // Two waves: the first one's duplicates mostly coalesce onto in-flight
  // computations (submission far outpaces diagnosis); after the drain the
  // second wave is served from the warm cache.
  const size_t wave1 = 90;
  std::vector<std::future<DiagnosisResponse>> futures;
  futures.reserve(fleet->requests.size());
  for (size_t i = 0; i < wave1; ++i) {
    futures.push_back(engine.Submit(std::move(fleet->requests[i])));
  }
  engine.Drain();
  for (size_t i = wave1; i < fleet->requests.size(); ++i) {
    futures.push_back(engine.Submit(std::move(fleet->requests[i])));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    DiagnosisResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    ASSERT_NE(response.report, nullptr);
    if (i >= wave1) {
      EXPECT_TRUE(response.cache_hit) << "wave-2 request " << i;
    }
    EXPECT_EQ(diag::ReportDigest(*response.report),
              expected_digest[fleet->tenant_of_request[i]])
        << "request " << i << " (tenant "
        << fleet->tenants[fleet->tenant_of_request[i]].name << ")";
  }
  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.submitted, 120u);
  EXPECT_EQ(stats.completed, 120u);
  EXPECT_EQ(stats.failed, 0u);
  // 5 distinct diagnosis identities; nearly everything else hit the cache
  // or coalesced onto an in-flight computation. (A submission can race
  // into the tiny window between a cache publish and the in-flight map
  // cleanup and recompute, so allow a little slack over the ideal 115.)
  EXPECT_GE(stats.cache_hits + stats.coalesced, 109u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(EngineStressTest, ShutdownWhileBusyResolvesEveryFuture) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  FleetOptions fleet_options;
  fleet_options.tenants = 2;
  fleet_options.requests_per_tenant = 10;
  fleet_options.scenario_options.satisfactory_runs = 12;
  fleet_options.scenario_options.unsatisfactory_runs = 6;
  Result<FleetWorkload> fleet = BuildFleet(fleet_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, &symptoms);
  std::vector<std::future<DiagnosisResponse>> futures;
  for (engine::DiagnosisRequest& request : fleet->requests) {
    futures.push_back(engine.Submit(std::move(request)));
  }
  engine.Shutdown();  // While requests are queued / running.
  int completed = 0, shutdown_failed = 0;
  for (std::future<DiagnosisResponse>& future : futures) {
    DiagnosisResponse response = future.get();  // Must resolve, never hang.
    if (response.ok()) {
      ASSERT_NE(response.report, nullptr);
      ++completed;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kShutdown)
          << response.status.ToString();
      ++shutdown_failed;
    }
  }
  // Every accepted future resolves exactly once: running work completes,
  // still-queued work fails with the explicit kShutdown status.
  EXPECT_EQ(completed + shutdown_failed, 20);
}

TEST(EngineBatchTest, BatchDiagnosePreservesOrderAndMatchesSerial) {
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  FleetOptions fleet_options;
  fleet_options.tenants = 3;
  fleet_options.requests_per_tenant = 2;
  fleet_options.scenario_options.satisfactory_runs = 12;
  fleet_options.scenario_options.unsatisfactory_runs = 6;
  fleet_options.shuffle = false;
  Result<FleetWorkload> fleet = BuildFleet(fleet_options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  std::vector<std::string> expected_digest;
  for (const workload::FleetTenant& tenant : fleet->tenants) {
    Result<diag::DiagnosisReport> serial =
        SerialDiagnosis(tenant, diag::WorkflowConfig{}, &symptoms);
    ASSERT_TRUE(serial.ok());
    expected_digest.push_back(diag::ReportDigest(*serial));
  }

  EngineOptions options;
  options.workers = 4;
  DiagnosisEngine engine(options, &symptoms);
  std::vector<DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(fleet->requests));
  ASSERT_EQ(responses.size(), 6u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status.ToString();
    EXPECT_EQ(diag::ReportDigest(*responses[i].report),
              expected_digest[fleet->tenant_of_request[i]]);
  }
}

// --- Result-cache invalidation ----------------------------------------------

// Own fixture (not EngineScenarioTest): these tests append to the
// tenant's store, which must not perturb the shared scenario the
// determinism tests compare against.
class EngineInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ScenarioOptions options;
    options.satisfactory_runs = 12;
    options.unsatisfactory_runs = 6;
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, options);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = std::make_unique<ScenarioOutput>(std::move(*scenario));
    symptoms_ = std::make_unique<diag::SymptomsDb>(
        diag::SymptomsDb::MakeDefault());
  }

  DiagnosisRequest Request(const std::string& tag) {
    DiagnosisRequest request;
    request.ctx = scenario_->MakeContext();
    request.tag = tag;
    return request;
  }

  /// Appends one sample past the end of every existing V1 reading — the
  /// "new monitoring interval arrived" event.
  void AppendToV1() {
    workload::Testbed& testbed = *scenario_->testbed;
    const auto& series = testbed.store.Series(
        testbed.v1, monitor::MetricId::kVolTotalIos);
    const SimTimeMs at = series.empty() ? 0 : series.back().time + 1;
    ASSERT_TRUE(
        testbed.store.Append(testbed.v1, monitor::MetricId::kVolTotalIos,
                             at, 123.0)
            .ok());
  }

  std::unique_ptr<ScenarioOutput> scenario_;
  std::unique_ptr<diag::SymptomsDb> symptoms_;
};

TEST_F(EngineInvalidationTest, PostAppendQueryIsNeverServedStaleReport) {
  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, symptoms_.get());

  DiagnosisResponse first = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  DiagnosisResponse repeat = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.cache_hit);

  // New monitoring data arrives: the cached report is now stale. The same
  // question must recompute, never serve the old object.
  AppendToV1();
  DiagnosisResponse fresh = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(fresh.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_NE(fresh.report.get(), first.report.get());

  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);

  // The recomputed answer equals a serial diagnosis over the *current*
  // (post-append) data — the report is fresh, not merely different.
  diag::Workflow workflow(scenario_->MakeContext(), diag::WorkflowConfig{},
                          symptoms_.get());
  Result<diag::DiagnosisReport> serial = workflow.Diagnose();
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(diag::ReportDigest(*fresh.report), diag::ReportDigest(*serial));

  // And the post-append entry is itself cacheable again.
  DiagnosisResponse cached = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
}

TEST_F(EngineInvalidationTest, LegacyModeServesCachedReportAcrossAppend) {
  // With generation validation off, the old TTL-free LRU behavior holds:
  // the repeat after an Append is still the cached (stale) object. This
  // pins the knob so the default's value is visible.
  EngineOptions options;
  options.workers = 2;
  options.invalidate_results_on_append = false;
  DiagnosisEngine engine(options, symptoms_.get());

  DiagnosisResponse first = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(first.ok());
  AppendToV1();
  DiagnosisResponse repeat = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.report.get(), first.report.get());
  EXPECT_EQ(engine.Stats().cache_invalidations, 0u);
}

TEST_F(EngineInvalidationTest, ExplicitTenantInvalidationIsScopedToTag) {
  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, symptoms_.get());
  ASSERT_TRUE(engine.Submit(Request("tenant-a")).get().ok());
  ASSERT_TRUE(engine.Submit(Request("tenant-b")).get().ok());

  EXPECT_EQ(engine.InvalidateTenantResults("tenant-a"), 1u);

  DiagnosisResponse a = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a.cache_hit);  // Dropped.
  DiagnosisResponse b = engine.Submit(Request("tenant-b")).get();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.cache_hit);  // Untouched.
  EXPECT_EQ(engine.Stats().cache_invalidations, 1u);
}

TEST_F(EngineInvalidationTest, CacheHitRepopulatesInvalidatedFleetStore) {
  // An explicit fleet-store invalidation with no new monitoring data must
  // not make the tenant vanish from fleet queries forever: the next
  // (generation-valid) cache hit republishes the verdict.
  fleet::FleetStore store;
  EngineOptions options;
  options.workers = 2;
  options.fleet_store = &store;
  DiagnosisEngine engine(options, symptoms_.get());

  ASSERT_TRUE(engine.Submit(Request("tenant-a")).get().ok());
  EXPECT_EQ(engine.Stats().fleet_publishes, 1u);
  ASSERT_GT(store.TotalCounters().entries, 0u);

  ASSERT_GT(store.InvalidateTenant("tenant-a"), 0u);
  ASSERT_EQ(store.TotalCounters().entries, 0u);

  DiagnosisResponse hit = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(engine.Stats().fleet_publishes, 2u);
  EXPECT_GT(store.TotalCounters().entries, 0u);

  // A further hit with the store already populated does not republish.
  DiagnosisResponse again = engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(engine.Stats().fleet_publishes, 2u);

  // Component-level invalidation also repopulates on the next hit: the
  // store drops the tenant row alongside the component's, which is the
  // signal the cache-hit path checks.
  ASSERT_GT(store.InvalidateComponent("tenant-a", "V1"), 0u);
  DiagnosisResponse after_component =
      engine.Submit(Request("tenant-a")).get();
  ASSERT_TRUE(after_component.ok());
  EXPECT_TRUE(after_component.cache_hit);
  EXPECT_EQ(engine.Stats().fleet_publishes, 3u);
  fleet::FleetQuery query(&store);
  EXPECT_EQ(query.TenantsSharingComponent("V1"),
            (std::vector<std::string>{"tenant-a"}));
}

TEST_F(EngineInvalidationTest, ExplicitComponentInvalidationMatchesReport) {
  EngineOptions options;
  options.workers = 2;
  DiagnosisEngine engine(options, symptoms_.get());
  ASSERT_TRUE(engine.Submit(Request("tenant-a")).get().ok());

  // A component the S1 report never touched: no entry matches.
  EXPECT_EQ(engine.InvalidateComponentResults("tenant-a",
                                              ComponentId{0xFFFFFFF0u}),
            0u);
  EXPECT_TRUE(engine.Submit(Request("tenant-a")).get().cache_hit);

  // V1 is scored by Module DA and named by the root cause: the entry
  // whose report touched it drops.
  EXPECT_EQ(engine.InvalidateComponentResults("tenant-a",
                                              scenario_->testbed->v1),
            1u);
  EXPECT_FALSE(engine.Submit(Request("tenant-a")).get().cache_hit);
}

}  // namespace
}  // namespace diads::engine
