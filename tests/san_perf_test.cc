// Unit and property tests for the SAN performance model: utilisation
// accounting, latency inflation, cross-volume interference through shared
// disks (the paper's central physical mechanism), interval averaging and
// burst dilution, RAID/rebuild/CPU/port statistics.
#include <gtest/gtest.h>

#include "common/ids.h"
#include "san/perf_model.h"
#include "san/topology.h"

namespace diads::san {
namespace {

/// Pool of 4 disks with volumes V1 and V2 carved from it, plus a second
/// pool with volume W (isolated).
struct PerfFixture {
  ComponentRegistry registry;
  SanTopology topology{&registry};
  ComponentId v1, v2, w;
  ComponentId pool1, pool2;
  ComponentId disk1;
  SanPerfModel model{&topology};

  PerfFixture() {
    ComponentId ss = topology.AddSubsystem("ss", "X").value();
    pool1 = topology.AddPool("p1", ss, RaidLevel::kRaid5).value();
    pool2 = topology.AddPool("p2", ss, RaidLevel::kRaid5).value();
    disk1 = topology.AddDisk("d1", pool1).value();
    for (int i = 2; i <= 4; ++i) {
      EXPECT_TRUE(
          topology.AddDisk("d" + std::to_string(i), pool1).ok());
    }
    for (int i = 5; i <= 8; ++i) {
      EXPECT_TRUE(
          topology.AddDisk("d" + std::to_string(i), pool2).ok());
    }
    v1 = topology.AddVolume("V1", pool1, 100).value();
    v2 = topology.AddVolume("V2", pool1, 100).value();
    w = topology.AddVolume("W", pool2, 100).value();
  }

  LoadEvent Load(ComponentId volume, SimTimeMs begin, SimTimeMs end,
                 double read_iops, double write_iops,
                 double seq_fraction = 0.0) {
    LoadEvent event;
    event.volume = volume;
    event.interval = TimeInterval{begin, end};
    event.profile.read_iops = read_iops;
    event.profile.write_iops = write_iops;
    event.profile.seq_fraction = seq_fraction;
    return event;
  }
};

TEST(IoProfileTest, AddBlendsWeighted) {
  IoProfile a;
  a.read_iops = 100;
  a.seq_fraction = 1.0;
  a.avg_block_kb = 8;
  IoProfile b;
  b.read_iops = 100;
  b.seq_fraction = 0.0;
  b.avg_block_kb = 16;
  a.Add(b);
  EXPECT_DOUBLE_EQ(a.read_iops, 200);
  EXPECT_DOUBLE_EQ(a.seq_fraction, 0.5);
  EXPECT_DOUBLE_EQ(a.avg_block_kb, 12);
}

TEST(SanPerfModelTest, RejectsBadLoad) {
  PerfFixture f;
  LoadEvent empty = f.Load(f.v1, 100, 100, 10, 0);
  EXPECT_FALSE(f.model.AddLoad(empty).ok());
  LoadEvent negative = f.Load(f.v1, 0, 100, -5, 0);
  EXPECT_FALSE(f.model.AddLoad(negative).ok());
}

TEST(SanPerfModelTest, IdleVolumeHasBaseLatency) {
  PerfFixture f;
  const double latency = f.model.VolumeReadLatencyMs(f.v1, 0);
  // Controller + fabric + (mostly random-read) service, no queueing.
  EXPECT_GT(latency, 3.0);
  EXPECT_LT(latency, 8.0);
}

TEST(SanPerfModelTest, LoadWindowsApplyOnlyInTime) {
  PerfFixture f;
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 1000, 2000, 200, 0)).ok());
  EXPECT_DOUBLE_EQ(f.model.VolumeLoadAt(f.v1, 500).total_iops(), 0);
  EXPECT_DOUBLE_EQ(f.model.VolumeLoadAt(f.v1, 1500).total_iops(), 200);
  EXPECT_DOUBLE_EQ(f.model.VolumeLoadAt(f.v1, 2000).total_iops(), 0);
}

TEST(SanPerfModelTest, LatencyIncreasesWithLoad) {
  PerfFixture f;
  const double idle = f.model.VolumeReadLatencyMs(f.v1, 1500);
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 1000, 2000, 150, 50)).ok());
  const double loaded = f.model.VolumeReadLatencyMs(f.v1, 1500);
  EXPECT_GT(loaded, idle * 1.2);
}

TEST(SanPerfModelTest, SharedDiskInterference) {
  // The scenario-1 channel: load on V2 raises V1's latency (same pool),
  // but load on W (other pool) does not.
  PerfFixture f;
  const double before = f.model.VolumeReadLatencyMs(f.v1, 1500);
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.w, 1000, 2000, 0, 150)).ok());
  const double after_w = f.model.VolumeReadLatencyMs(f.v1, 1500);
  EXPECT_NEAR(after_w, before, 1e-9);
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v2, 1000, 2000, 0, 150)).ok());
  const double after_v2 = f.model.VolumeReadLatencyMs(f.v1, 1500);
  EXPECT_GT(after_v2, before * 1.5);
}

TEST(SanPerfModelTest, WriteLatencyCachedUntilDestagePressure) {
  PerfFixture f;
  const double idle = f.model.VolumeWriteLatencyMs(f.v1, 1500);
  EXPECT_LT(idle, 1.0);  // Write-back cache acknowledges fast.
  // Saturate the backend.
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 1000, 2000, 0, 250)).ok());
  const double pressured = f.model.VolumeWriteLatencyMs(f.v1, 1500);
  EXPECT_GT(pressured, idle * 3);
}

TEST(SanPerfModelTest, SequentialCheaperThanRandom) {
  PerfFixture f;
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 0, 1000, 150, 0, 0.0)).ok());
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v2, 2000, 3000, 150, 0, 1.0)).ok());
  // Same iops: the sequential window stresses disks far less.
  EXPECT_GT(f.model.DiskUtilizationAt(f.disk1, 500),
            3 * f.model.DiskUtilizationAt(f.disk1, 2500));
}

TEST(SanPerfModelTest, FailedDiskConcentratesLoad) {
  PerfFixture f;
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 0, 1000, 200, 0)).ok());
  ComponentId d2 = f.topology.registry().FindByName("d2").value();
  const double before = f.model.DiskUtilizationAt(d2, 500);
  ASSERT_TRUE(f.topology.SetDiskFailed(f.disk1, true).ok());
  const double after = f.model.DiskUtilizationAt(d2, 500);
  EXPECT_NEAR(after / before, 4.0 / 3.0, 0.05);
}

TEST(SanPerfModelTest, PoolOverheadRaisesUtilization) {
  PerfFixture f;
  const double before = f.model.DiskUtilizationAt(f.disk1, 500);
  ASSERT_TRUE(
      f.model.AddPoolOverhead(f.pool1, TimeInterval{0, 1000}, 0.4).ok());
  EXPECT_NEAR(f.model.DiskUtilizationAt(f.disk1, 500), before + 0.4, 1e-9);
  EXPECT_FALSE(
      f.model.AddPoolOverhead(f.pool1, TimeInterval{0, 1000}, 1.5).ok());
}

TEST(SanPerfModelTest, VolumeStatsAverageExactly) {
  PerfFixture f;
  // 100 iops for exactly half of the interval.
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 0, 500, 100, 0)).ok());
  VolumeIntervalStats stats = f.model.VolumeStats(f.v1, TimeInterval{0, 1000});
  EXPECT_NEAR(stats.read_iops, 50.0, 1e-6);
  EXPECT_NEAR(stats.total_ios, 50.0, 1e-6);
}

TEST(SanPerfModelTest, BurstDilution) {
  // Section 1.1's noisy-data mechanism: a 30-second burst inside a 5-minute
  // interval contributes only 10% of its intensity to the average.
  PerfFixture f;
  ASSERT_TRUE(
      f.model.AddLoad(f.Load(f.v1, 0, Seconds(30), 600, 0)).ok());
  VolumeIntervalStats stats =
      f.model.VolumeStats(f.v1, TimeInterval{0, Minutes(5)});
  EXPECT_NEAR(stats.read_iops, 60.0, 1e-6);
}

TEST(SanPerfModelTest, PhysicalStatsIncludeSharers) {
  // Table 2's "writeIO" behaviour: V1's physical write ops include V2's
  // writes because they land on the same disks.
  PerfFixture f;
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v2, 0, 1000, 0, 100)).ok());
  VolumeIntervalStats v1_stats =
      f.model.VolumeStats(f.v1, TimeInterval{0, 1000});
  EXPECT_DOUBLE_EQ(v1_stats.write_iops, 0);         // V1's own writes: none.
  EXPECT_GT(v1_stats.physical_write_ops, 100);      // Backend: V2 + RAID5 x4.
  VolumeIntervalStats w_stats = f.model.VolumeStats(f.w, TimeInterval{0, 1000});
  EXPECT_DOUBLE_EQ(w_stats.physical_write_ops, 0);  // Other pool: untouched.
}

TEST(SanPerfModelTest, PortStatsFollowPath) {
  PerfFixture f;
  ComponentId port = f.topology
                         .AddPort("ss-p0", PortOwner::kSubsystem,
                                  f.topology.AllSubsystems()[0])
                         .value();
  LoadEvent event = f.Load(f.v1, 0, 1000, 128, 0);
  event.profile.avg_block_kb = 8;
  event.path_ports = {port};
  ASSERT_TRUE(f.model.AddLoad(event).ok());
  PortIntervalStats stats = f.model.PortStats(port, TimeInterval{0, 1000});
  EXPECT_NEAR(stats.mb_rx_per_sec, 1.0, 1e-6);  // 128 iops x 8 KB = 1 MB/s.
  ComponentId other =
      f.topology
          .AddPort("ss-p1", PortOwner::kSubsystem, f.topology.AllSubsystems()[0])
          .value();
  PortIntervalStats other_stats =
      f.model.PortStats(other, TimeInterval{0, 1000});
  EXPECT_DOUBLE_EQ(other_stats.mb_rx_per_sec, 0);
}

TEST(SanPerfModelTest, CpuLoadAveragesAndSaturates) {
  PerfFixture f;
  ComponentId server = f.topology.AddServer("srv", "Linux").value();
  ASSERT_TRUE(
      f.model.AddCpuLoad(server, TimeInterval{0, 500}, 0.6).ok());
  ASSERT_TRUE(
      f.model.AddCpuLoad(server, TimeInterval{0, 500}, 0.7).ok());
  ServerIntervalStats stats = f.model.ServerStats(server, TimeInterval{0, 1000});
  // 0.6 + 0.7 saturates to 1.0 for half the interval -> 0.5 average.
  EXPECT_NEAR(stats.cpu_utilization, 0.5, 1e-6);
}

// Property sweep: latency is monotone non-decreasing in offered write load.
class LatencyMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(LatencyMonotonicityTest, MoreLoadNeverFaster) {
  PerfFixture f;
  const double iops = GetParam();
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v2, 0, 1000, 0, iops)).ok());
  const double read_latency = f.model.VolumeReadLatencyMs(f.v1, 500);
  const double write_latency = f.model.VolumeWriteLatencyMs(f.v1, 500);

  PerfFixture g;
  ASSERT_TRUE(g.model.AddLoad(g.Load(g.v2, 0, 1000, 0, iops + 25)).ok());
  EXPECT_GE(g.model.VolumeReadLatencyMs(g.v1, 500) + 1e-9, read_latency);
  EXPECT_GE(g.model.VolumeWriteLatencyMs(g.v1, 500) + 1e-9, write_latency);
}

INSTANTIATE_TEST_SUITE_P(WriteLoads, LatencyMonotonicityTest,
                         ::testing::Values(0.0, 25.0, 50.0, 75.0, 100.0,
                                           150.0, 200.0, 300.0));

// Property sweep: the latency cap keeps the model finite under overload.
class OverloadTest : public ::testing::TestWithParam<double> {};

TEST_P(OverloadTest, LatencyStaysBounded) {
  PerfFixture f;
  ASSERT_TRUE(f.model.AddLoad(f.Load(f.v1, 0, 1000, GetParam(), GetParam())).ok());
  const double latency = f.model.VolumeReadLatencyMs(f.v1, 500);
  EXPECT_LT(latency, 150.0);
  EXPECT_GT(latency, 0.0);
}

INSTANTIATE_TEST_SUITE_P(ExtremeLoads, OverloadTest,
                         ::testing::Values(500.0, 2000.0, 10000.0));

}  // namespace
}  // namespace diads::san
