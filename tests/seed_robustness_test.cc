// Seed-robustness property test.
//
// Every quantitative claim in EXPERIMENTS.md is reported at the default
// seed; this suite guards against seed-tuning by re-running representative
// scenarios across a seed sweep and requiring the top-ranked cause to match
// the injected ground truth at every seed. (A broader 6-scenario x 10-seed
// sweep measured 60/60 during development; the subset here keeps the suite
// fast while pinning the property.)
#include <gtest/gtest.h>

#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads {
namespace {

using workload::MatchesGroundTruth;
using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

struct SeedCase {
  ScenarioId id;
  uint64_t seed;
};

void PrintTo(const SeedCase& c, std::ostream* os) {
  *os << workload::ScenarioName(c.id) << "/seed" << c.seed;
}

class SeedRobustnessTest : public ::testing::TestWithParam<SeedCase> {};

TEST_P(SeedRobustnessTest, TopCauseMatchesGroundTruth) {
  workload::ScenarioOptions options;
  options.seed = GetParam().seed;
  Result<ScenarioOutput> scenario = RunScenario(GetParam().id, options);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(scenario->MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  Result<diag::DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->causes.empty());
  bool top_matches = false;
  for (const workload::GroundTruthCause& truth : scenario->ground_truth) {
    if (MatchesGroundTruth(truth, report->causes.front(),
                           scenario->testbed->registry)) {
      top_matches = true;
    }
  }
  EXPECT_TRUE(top_matches)
      << "top cause: "
      << diag::RootCauseTypeName(report->causes.front().type);
}

std::vector<SeedCase> AllCases() {
  std::vector<SeedCase> cases;
  for (ScenarioId id :
       {ScenarioId::kS1SanMisconfiguration,
        ScenarioId::kS2DualExternalContention,
        ScenarioId::kS3DataPropertyChange, ScenarioId::kS5LockingWithNoise,
        ScenarioId::kS6IndexDrop}) {
    for (uint64_t seed : {1ull, 7ull, 19ull, 101ull}) {
      cases.push_back(SeedCase{id, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeedRobustnessTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<SeedCase>& info) {
      std::string name = workload::ScenarioName(info.param.id);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace diads
