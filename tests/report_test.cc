// Tests for the report renderer and CSV exports.
#include <gtest/gtest.h>

#include "diads/report.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::diag {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new workload::ScenarioOutput(
        workload::RunScenario(workload::ScenarioId::kS1SanMisconfiguration,
                              {})
            .value());
    ctx_ = new DiagnosisContext(scenario_->MakeContext());
    SymptomsDb symptoms = SymptomsDb::MakeDefault();
    Workflow workflow(*ctx_, WorkflowConfig{}, &symptoms);
    report_ = new DiagnosisReport(workflow.Diagnose().value());
  }
  static void TearDownTestSuite() {
    delete report_;
    delete ctx_;
    delete scenario_;
    report_ = nullptr;
    ctx_ = nullptr;
    scenario_ = nullptr;
  }
  static workload::ScenarioOutput* scenario_;
  static DiagnosisContext* ctx_;
  static DiagnosisReport* report_;
};

workload::ScenarioOutput* ReportTest::scenario_ = nullptr;
DiagnosisContext* ReportTest::ctx_ = nullptr;
DiagnosisReport* ReportTest::report_ = nullptr;

TEST_F(ReportTest, FullReportContainsAllSections) {
  const std::string out = RenderFullReport(*ctx_, *report_);
  EXPECT_NE(out.find("DIADS diagnosis report"), std::string::npos);
  EXPECT_NE(out.find("ANSWER:"), std::string::npos);
  EXPECT_NE(out.find("Recommended action:"), std::string::npos);
  EXPECT_NE(out.find("Module CO"), std::string::npos);
  EXPECT_NE(out.find("Module DA"), std::string::npos);
  EXPECT_NE(out.find("Module CR"), std::string::npos);
  EXPECT_NE(out.find("Module IA"), std::string::npos);
  EXPECT_NE(out.find("plans differ"), std::string::npos);
  // The answer for scenario 1 names the misconfiguration.
  EXPECT_NE(out.find("SAN misconfiguration"), std::string::npos);
  EXPECT_NE(out.find("zoning"), std::string::npos);
}

TEST_F(ReportTest, CausesCsvRoundTrips) {
  const std::string csv = ExportCausesCsv(*ctx_, *report_);
  // Header + one line per cause.
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, report_->causes.size() + 1);
  EXPECT_EQ(csv.find("cause,subject,confidence,band,impact_pct"), 0u);
  EXPECT_NE(csv.find("V1"), std::string::npos);
  EXPECT_NE(csv.find("high"), std::string::npos);
}

TEST_F(ReportTest, OperatorScoresCsvCoversAllOperators) {
  const std::string csv = ExportOperatorScoresCsv(*ctx_, *report_);
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, report_->co.scores.size() + 1);
  EXPECT_NE(csv.find("O8,"), std::string::npos);
  EXPECT_NE(csv.find("partsupp"), std::string::npos);
}

TEST_F(ReportTest, MetricScoresCsvCoversDaOutput) {
  const std::string csv = ExportMetricScoresCsv(*ctx_, *report_);
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, report_->da.metrics.size() + 1);
  EXPECT_NE(csv.find("writeTime"), std::string::npos);
}

TEST(CsvEscapeTest, EscapesSpecials) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvEscape(""), "");
}

}  // namespace
}  // namespace diads::diag
