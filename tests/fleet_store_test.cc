// Fleet store unit tests: verdict extraction, sharded publish/supersede/
// stale-drop semantics, generation-driven and explicit invalidation,
// cross-tenant query semantics on synthetic fleets, and the concurrent
// publisher/querier/invalidator soak the TSan CI job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "fleet/verdict.h"
#include "workload/scenario.h"

namespace diads {
namespace {

using fleet::CauseVerdict;
using fleet::ComponentVerdict;
using fleet::FleetKey;
using fleet::FleetKeyHash;
using fleet::FleetQuery;
using fleet::FleetStore;
using fleet::MetricVerdict;
using fleet::TenantVerdict;

// --- Synthetic verdict helpers ---------------------------------------------

ComponentVerdict MakeComponent(const std::string& name, double max_anomaly,
                               uint64_t generation,
                               bool cause_subject = false) {
  ComponentVerdict out;
  out.component = name;
  out.kind = ComponentKind::kVolume;
  out.in_ccs = max_anomaly >= 0.8;
  out.max_anomaly = max_anomaly;
  out.metrics.push_back(MetricVerdict{monitor::MetricId::kVolReadLatencyMs,
                                      max_anomaly, 0.9, max_anomaly >= 0.8});
  out.cause_subject = cause_subject;
  out.generation = generation;
  return out;
}

TenantVerdict MakeVerdict(const std::string& tenant, uint64_t generation,
                          const std::vector<ComponentVerdict>& components,
                          const std::vector<CauseVerdict>& causes = {}) {
  TenantVerdict out;
  out.tenant = tenant;
  out.query = "Q2";
  out.window_begin = 1000;
  out.window_end = 2000;
  out.store_generation = generation;
  out.components = components;
  out.causes = causes;
  return out;
}

CauseVerdict MakeCause(diag::RootCauseType type, const std::string& subject,
                       double confidence) {
  CauseVerdict out;
  out.type = type;
  out.subject = subject;
  out.confidence = confidence;
  out.band = confidence >= 80 ? diag::ConfidenceBand::kHigh
                              : diag::ConfidenceBand::kMedium;
  return out;
}

// --- Key hashing -----------------------------------------------------------

TEST(FleetKeyHashTest, SimilarTenantNamesSpreadAcrossBuckets) {
  // Fleet tenant names share long prefixes ("t00-S1-...", "t01-S1-...");
  // the splitmix-finished hash must still spread them uniformly.
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  FleetKeyHash hash;
  for (int t = 0; t < 64; ++t) {
    for (const char* component : {"", "V1", "V2", "P1", "dbserver"}) {
      FleetKey key{"t" + std::to_string(t) + "-S1-san-misconfiguration",
                   component, 1000, 2000};
      ++counts[hash(key) % kBuckets];
    }
  }
  const int total = 64 * 5;
  const int expected = total / kBuckets;
  for (int i = 0; i < kBuckets; ++i) {
    EXPECT_GT(counts[i], expected / 4) << "bucket " << i << " starved";
    EXPECT_LT(counts[i], expected * 3) << "bucket " << i << " overloaded";
  }
}

// --- Publish / supersede / stale-drop semantics ----------------------------

TEST(FleetStoreTest, PublishThenGetRoundTrips) {
  FleetStore store;
  store.Publish(MakeVerdict(
      "tenant-a", 7, {MakeComponent("V1", 0.95, 5)},
      {MakeCause(diag::RootCauseType::kSanMisconfigurationContention, "V1",
                 90)}));

  FleetStore::Row component =
      store.Get(FleetKey{"tenant-a", "V1", 1000, 2000});
  ASSERT_NE(component.component, nullptr);
  EXPECT_EQ(component.generation, 5u);
  EXPECT_DOUBLE_EQ(component.component->max_anomaly, 0.95);

  FleetStore::Row record = store.Get(FleetKey{"tenant-a", "", 1000, 2000});
  ASSERT_NE(record.record, nullptr);
  EXPECT_EQ(record.generation, 7u);
  ASSERT_EQ(record.record->causes.size(), 1u);
  EXPECT_EQ(record.record->causes[0].subject, "V1");

  const FleetStore::Counters counters = store.TotalCounters();
  EXPECT_EQ(counters.publishes, 1u);
  EXPECT_EQ(counters.rows_inserted, 2u);  // Component row + tenant row.
  EXPECT_EQ(counters.entries, 2u);
}

TEST(FleetStoreTest, NewerGenerationSupersedesOlderIsDropped) {
  FleetStore store;
  store.Publish(MakeVerdict("t", 2, {MakeComponent("V1", 0.5, 2)}));
  store.Publish(MakeVerdict("t", 3, {MakeComponent("V1", 0.9, 3)}));

  FleetStore::Row row = store.Get(FleetKey{"t", "V1", 1000, 2000});
  ASSERT_NE(row.component, nullptr);
  EXPECT_EQ(row.generation, 3u);
  EXPECT_DOUBLE_EQ(row.component->max_anomaly, 0.9);

  // A publish derived from older data must never replace the newer row.
  store.Publish(MakeVerdict("t", 1, {MakeComponent("V1", 0.1, 1)}));
  row = store.Get(FleetKey{"t", "V1", 1000, 2000});
  EXPECT_EQ(row.generation, 3u);
  EXPECT_DOUBLE_EQ(row.component->max_anomaly, 0.9);

  const FleetStore::Counters counters = store.TotalCounters();
  EXPECT_EQ(counters.rows_stale_dropped, 2u);  // Component + tenant row.
  EXPECT_GE(counters.rows_superseded, 2u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST(FleetStoreTest, InvalidationDropsExactlyTheTargetedRows) {
  FleetStore store;
  store.Publish(MakeVerdict("a", 1, {MakeComponent("V1", 0.9, 1),
                                     MakeComponent("V2", 0.9, 1)}));
  store.Publish(MakeVerdict("b", 1, {MakeComponent("V1", 0.9, 1)}));
  ASSERT_EQ(store.TotalCounters().entries, 5u);

  // Component invalidation takes the tenant-level row with it (the
  // engine's cache-hit repopulation check keys on its absence); other
  // components and other tenants are untouched.
  EXPECT_EQ(store.InvalidateComponent("a", "V2"), 2u);
  EXPECT_EQ(store.TotalCounters().entries, 3u);
  EXPECT_EQ(store.Get(FleetKey{"a", "V2", 1000, 2000}).component, nullptr);
  EXPECT_EQ(store.Get(FleetKey{"a", "", 1000, 2000}).record, nullptr);
  EXPECT_NE(store.Get(FleetKey{"a", "V1", 1000, 2000}).component, nullptr);
  EXPECT_NE(store.Get(FleetKey{"b", "", 1000, 2000}).record, nullptr);

  EXPECT_EQ(store.InvalidateTenant("a"), 1u);  // The remaining V1 row.
  EXPECT_EQ(store.TotalCounters().entries, 2u);
  EXPECT_NE(store.Get(FleetKey{"b", "V1", 1000, 2000}).component, nullptr);

  EXPECT_EQ(store.TotalCounters().invalidations, 3u);
}

TEST(FleetStoreTest, DropStaleUsesGenerationThreshold) {
  FleetStore store;
  store.Publish(MakeVerdict("t", 4, {MakeComponent("V1", 0.9, 4)}));
  // Current generation equal to the stored one: still fresh — and the
  // no-drop case must leave the tenant row alone.
  EXPECT_EQ(store.DropStale("t", "V1", 4), 0u);
  EXPECT_NE(store.Get(FleetKey{"t", "", 1000, 2000}).record, nullptr);
  // New appends advanced the tenant's component counter: now stale. The
  // tenant-level row goes too (see InvalidateComponent).
  EXPECT_EQ(store.DropStale("t", "V1", 5), 2u);
  EXPECT_EQ(store.Get(FleetKey{"t", "V1", 1000, 2000}).component, nullptr);
  EXPECT_EQ(store.Get(FleetKey{"t", "", 1000, 2000}).record, nullptr);
}

TEST(FleetStoreTest, ShardPublishDistributionIsPopulated) {
  FleetStore store(FleetStore::Options{8});
  for (int t = 0; t < 32; ++t) {
    store.Publish(MakeVerdict("tenant-" + std::to_string(t), 1,
                              {MakeComponent("V1", 0.9, 1)}));
  }
  const std::vector<uint64_t> shard_publishes = store.ShardPublishCounts();
  ASSERT_EQ(shard_publishes.size(), 8u);
  uint64_t total = 0;
  int populated = 0;
  for (uint64_t count : shard_publishes) {
    total += count;
    if (count > 0) ++populated;
  }
  EXPECT_EQ(total, 64u);  // 32 publishes x (1 component + 1 tenant row).
  EXPECT_GE(populated, 4);  // No single-shard hot spot.
}

// --- Query semantics on a synthetic fleet ----------------------------------

class FleetQuerySyntheticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three tenants share the "P1" pool fault; tenant-d is clean on P1 but
    // has its own data-property problem.
    store_.Publish(MakeVerdict(
        "t-a", 1, {MakeComponent("P1", 0.92, 1, true),
                   MakeComponent("V1", 0.85, 1)},
        {MakeCause(diag::RootCauseType::kRaidRebuild, "P1", 88)}));
    store_.Publish(MakeVerdict(
        "t-b", 1, {MakeComponent("P1", 0.90, 1, true)},
        {MakeCause(diag::RootCauseType::kRaidRebuild, "P1", 84),
         MakeCause(diag::RootCauseType::kDiskFailure, "P1", 82)}));
    store_.Publish(MakeVerdict(
        "t-c", 1, {MakeComponent("P1", 0.40, 1)},
        {MakeCause(diag::RootCauseType::kDataPropertyChange, "partsupp",
                   86)}));
    store_.Publish(MakeVerdict(
        "t-d", 1, {MakeComponent("partsupp", 0.9, 1, true)},
        {MakeCause(diag::RootCauseType::kDataPropertyChange, "partsupp",
                   91)}));
  }

  FleetStore store_;
};

TEST_F(FleetQuerySyntheticTest, TenantsSharingComponentFiltersByScore) {
  FleetQuery query(&store_);
  EXPECT_EQ(query.TenantsSharingComponent("P1"),
            (std::vector<std::string>{"t-a", "t-b"}));  // t-c scored 0.40.
  EXPECT_EQ(query.TenantsSharingComponent("P1", std::nullopt, 0.3),
            (std::vector<std::string>{"t-a", "t-b", "t-c"}));
  EXPECT_EQ(query.TenantsSharingComponent(
                "P1", monitor::MetricId::kVolReadLatencyMs),
            (std::vector<std::string>{"t-a", "t-b"}));
  EXPECT_TRUE(query.TenantsSharingComponent(
                      "P1", monitor::MetricId::kVolTotalIos)
                  .empty());
  EXPECT_TRUE(query.TenantsSharingComponent("nosuch").empty());
}

TEST_F(FleetQuerySyntheticTest, TopImplicatedComponentsRanksByTenantCount) {
  FleetQuery query(&store_);
  // P1 and partsupp tie at 2 implicated tenants each; the confidence
  // tie-break puts partsupp (91) ahead of P1 (88).
  const std::vector<FleetQuery::ImplicatedComponent> top =
      query.TopImplicatedComponents(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].component, "partsupp");
  EXPECT_EQ(top[0].tenants, 2);
  EXPECT_EQ(top[0].tenant_names, (std::vector<std::string>{"t-c", "t-d"}));
  EXPECT_DOUBLE_EQ(top[0].max_confidence, 91);
  EXPECT_EQ(top[1].component, "P1");
  EXPECT_EQ(top[1].tenants, 2);
  EXPECT_EQ(top[1].tenant_names, (std::vector<std::string>{"t-a", "t-b"}));
  EXPECT_DOUBLE_EQ(top[1].max_confidence, 88);

  const std::vector<FleetQuery::ImplicatedComponent> top1 =
      query.TopImplicatedComponents(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].component, "partsupp");
}

TEST_F(FleetQuerySyntheticTest, RootCauseCooccurrenceCountsTenantPairs) {
  FleetQuery query(&store_);
  std::map<std::pair<int, int>, int> got;
  for (const FleetQuery::CauseCooccurrence& row :
       query.RootCauseCooccurrence()) {
    got[{static_cast<int>(row.a), static_cast<int>(row.b)}] = row.tenants;
  }
  const int raid = static_cast<int>(diag::RootCauseType::kRaidRebuild);
  const int disk = static_cast<int>(diag::RootCauseType::kDiskFailure);
  const int data = static_cast<int>(diag::RootCauseType::kDataPropertyChange);
  const std::pair<int, int> raid_raid{raid, raid};
  const std::pair<int, int> raid_disk{std::min(raid, disk),
                                      std::max(raid, disk)};
  const std::pair<int, int> data_data{data, data};
  const std::pair<int, int> raid_data{std::min(raid, data),
                                      std::max(raid, data)};
  EXPECT_EQ(got[raid_raid], 2);  // t-a, t-b.
  EXPECT_EQ(got[raid_disk], 1);  // t-b.
  EXPECT_EQ(got[data_data], 2);  // t-c, t-d.
  EXPECT_EQ(got.count(raid_data), 0u);

  EXPECT_GE(store_.TotalCounters().queries, 1u);
}

// --- Verdict extraction from a real diagnosis ------------------------------

TEST(ExtractVerdictTest, S1DiagnosisLowersToNamedVerdict) {
  workload::ScenarioOptions options;
  options.satisfactory_runs = 12;
  options.unsatisfactory_runs = 6;
  Result<workload::ScenarioOutput> scenario =
      workload::RunScenario(workload::ScenarioId::kS1SanMisconfiguration,
                            options);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::DiagnosisContext ctx = scenario->MakeContext();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  Result<diag::DiagnosisReport> report = workflow.Diagnose();
  ASSERT_TRUE(report.ok()) << report.status().message();

  const TenantVerdict verdict =
      fleet::ExtractVerdict(ctx, *report, "tenant-0");
  EXPECT_EQ(verdict.tenant, "tenant-0");
  EXPECT_EQ(verdict.query, ctx.query);
  const TimeInterval window = ctx.AnalysisWindow();
  EXPECT_EQ(verdict.window_begin, window.begin);
  EXPECT_EQ(verdict.window_end, window.end);
  EXPECT_EQ(verdict.store_generation, ctx.store->StoreGeneration());
  EXPECT_GT(verdict.store_generation, 0u);

  // The ranked causes mirror the report, lowered to names.
  ASSERT_EQ(verdict.causes.size(), report->causes.size());
  const ComponentRegistry& registry = scenario->testbed->registry;
  for (size_t i = 0; i < verdict.causes.size(); ++i) {
    EXPECT_EQ(verdict.causes[i].type, report->causes[i].type);
    EXPECT_DOUBLE_EQ(verdict.causes[i].confidence,
                     report->causes[i].confidence);
    if (report->causes[i].subject.valid()) {
      EXPECT_EQ(verdict.causes[i].subject,
                registry.NameOf(report->causes[i].subject));
    }
  }

  // S1's contended volume must be present, CCS-flagged, generation-stamped,
  // and marked as a cause subject.
  const ComponentVerdict* v1 = nullptr;
  for (const ComponentVerdict& component : verdict.components) {
    if (component.component == "V1") v1 = &component;
    // Every per-component stamp matches the live store.
    Result<ComponentId> id = registry.FindByName(component.component);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(component.generation, ctx.store->ComponentGeneration(*id))
        << component.component;
  }
  ASSERT_NE(v1, nullptr);
  EXPECT_TRUE(v1->in_ccs);
  EXPECT_TRUE(v1->cause_subject);
  EXPECT_GT(v1->max_anomaly, 0.8);
  EXPECT_FALSE(v1->metrics.empty());
  EXPECT_GT(v1->best_cause_confidence, 0);

  // Components are sorted (the store's deterministic order contract).
  for (size_t i = 1; i < verdict.components.size(); ++i) {
    EXPECT_LT(verdict.components[i - 1].component,
              verdict.components[i].component);
  }
}

// --- Concurrent soak (the TSan job runs this binary) -----------------------

TEST(FleetStoreSoakTest, ConcurrentPublishQueryInvalidate) {
  constexpr int kTenants = 8;
  constexpr int kPublishers = 4;
  constexpr int kRoundsPerPublisher = 60;
  constexpr int kQueriers = 3;
  constexpr int kInvalidators = 2;

  FleetStore store(FleetStore::Options{8});
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_generation{1};
  // Highest generation ever published per tenant (indexed by tenant id);
  // written by publishers, read after the join for the lost-publish check.
  std::vector<std::atomic<uint64_t>> high_water(kTenants);
  for (auto& w : high_water) w.store(0);

  auto tenant_name = [](int t) { return "t" + std::to_string(t); };

  std::vector<std::thread> threads;
  // Publishers: each round takes a fresh store-wide generation (globally
  // monotone, as TimeSeriesStore::StoreGeneration is) and publishes a
  // verdict for a tenant it owns modulo kPublishers.
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      for (int round = 0; round < kRoundsPerPublisher; ++round) {
        const int tenant = (p + round * kPublishers) % kTenants;
        const uint64_t generation = next_generation.fetch_add(1);
        TenantVerdict verdict = MakeVerdict(
            tenant_name(tenant), generation,
            {MakeComponent("V1", 0.9, generation, true),
             MakeComponent("P1", 0.85, generation)},
            {MakeCause(diag::RootCauseType::kRaidRebuild, "P1", 85)});
        store.Publish(verdict);
        uint64_t seen = high_water[tenant].load();
        while (generation > seen &&
               !high_water[tenant].compare_exchange_weak(seen, generation)) {
        }
      }
    });
  }
  // Queriers: run every cross-tenant query and check monotone generation
  // visibility — a key's generation never goes backwards between reads.
  std::atomic<bool> monotone{true};
  for (int q = 0; q < kQueriers; ++q) {
    threads.emplace_back([&] {
      std::map<std::string, uint64_t> last_seen;
      FleetQuery query(&store);
      while (!stop.load()) {
        query.TenantsSharingComponent("V1");
        query.TopImplicatedComponents(4);
        query.RootCauseCooccurrence();
        for (const FleetStore::Row& row : store.Snapshot()) {
          const std::string id = row.key.tenant + "/" + row.key.component;
          auto it = last_seen.find(id);
          if (it != last_seen.end() && row.generation < it->second) {
            monotone.store(false);
          }
          last_seen[id] = row.generation;
        }
      }
    });
  }
  // Invalidators: explicit per-component invalidation plus generation-
  // threshold drops; both only ever *remove* rows, so the monotone check
  // above stays valid.
  std::atomic<uint64_t> invalidated{0};
  for (int i = 0; i < kInvalidators; ++i) {
    threads.emplace_back([&, i] {
      int spin = 0;
      while (!stop.load()) {
        const int tenant = (i + spin++) % kTenants;
        invalidated.fetch_add(
            store.DropStale(tenant_name(tenant), "P1",
                            next_generation.load()));
        if (spin % 7 == 0) {
          invalidated.fetch_add(
              store.InvalidateComponent(tenant_name(tenant), "V1"));
        }
        std::this_thread::yield();
      }
    });
  }

  for (int p = 0; p < kPublishers; ++p) threads[p].join();
  stop.store(true);
  for (size_t t = kPublishers; t < threads.size(); ++t) threads[t].join();

  EXPECT_TRUE(monotone.load()) << "a row's generation went backwards";

  // No lost publishes: re-publish every tenant at a fresh generation (no
  // invalidator is running now) and verify every row lands and carries at
  // least the tenant's high-water generation.
  for (int t = 0; t < kTenants; ++t) {
    const uint64_t generation = next_generation.fetch_add(1);
    store.Publish(MakeVerdict(tenant_name(t), generation,
                              {MakeComponent("V1", 0.9, generation, true),
                               MakeComponent("P1", 0.85, generation)}));
    high_water[t].store(generation);
  }
  for (int t = 0; t < kTenants; ++t) {
    for (const char* component : {"", "V1", "P1"}) {
      FleetStore::Row row =
          store.Get(FleetKey{tenant_name(t), component, 1000, 2000});
      EXPECT_GE(row.generation, high_water[t].load())
          << tenant_name(t) << "/" << component;
      EXPECT_TRUE(row.component != nullptr || row.record != nullptr);
    }
  }

  // Exact row accounting: every publish-touched row was inserted,
  // superseded, or stale-dropped, and live rows = inserted - erased.
  const FleetStore::Counters counters = store.TotalCounters();
  const uint64_t publishes =
      static_cast<uint64_t>(kPublishers) * kRoundsPerPublisher + kTenants;
  EXPECT_EQ(counters.publishes, publishes);
  EXPECT_EQ(counters.rows_inserted + counters.rows_superseded +
                counters.rows_stale_dropped,
            publishes * 3);  // Each verdict touches 3 rows.
  EXPECT_EQ(counters.entries,
            counters.rows_inserted - counters.invalidations);
  EXPECT_EQ(counters.invalidations, invalidated.load());
  EXPECT_EQ(counters.entries, static_cast<size_t>(kTenants) * 3);
}

}  // namespace
}  // namespace diads
