// Tests for the database support substrate: the activity model's
// piecewise-constant averaging, the DB collector's metric emission, buffer
// pool sizing behaviour, and lock-manager window arithmetic.
#include <gtest/gtest.h>

#include "common/event_log.h"
#include "db/buffer_pool.h"
#include "db/db_activity.h"
#include "db/lock_manager.h"
#include "db/tpch.h"
#include "monitor/metrics.h"

namespace diads::db {
namespace {

// --- DbActivityModel ------------------------------------------------------------

TEST(DbActivityModelTest, TimeWeightedAverage) {
  DbActivityModel model;
  DbActivityCounters counters;
  counters.blocks_read_per_sec = 100;
  counters.lock_wait_ms_per_sec = 10;
  // Active for 40% of the queried interval.
  ASSERT_TRUE(model.AddActivity(TimeInterval{0, 400}, counters).ok());
  const DbActivityCounters avg = model.AverageOver(TimeInterval{0, 1000});
  EXPECT_NEAR(avg.blocks_read_per_sec, 40.0, 1e-9);
  EXPECT_NEAR(avg.lock_wait_ms_per_sec, 4.0, 1e-9);
}

TEST(DbActivityModelTest, OverlappingWindowsAdd) {
  DbActivityModel model;
  DbActivityCounters a;
  a.buffer_hits_per_sec = 10;
  DbActivityCounters b;
  b.buffer_hits_per_sec = 30;
  ASSERT_TRUE(model.AddActivity(TimeInterval{0, 1000}, a).ok());
  ASSERT_TRUE(model.AddActivity(TimeInterval{0, 1000}, b).ok());
  EXPECT_NEAR(model.AverageOver(TimeInterval{0, 1000}).buffer_hits_per_sec,
              40.0, 1e-9);
}

TEST(DbActivityModelTest, DisjointWindowIsZero) {
  DbActivityModel model;
  DbActivityCounters counters;
  counters.seq_scans_per_sec = 5;
  ASSERT_TRUE(model.AddActivity(TimeInterval{0, 100}, counters).ok());
  EXPECT_DOUBLE_EQ(model.AverageOver(TimeInterval{500, 600}).seq_scans_per_sec,
                   0.0);
  EXPECT_FALSE(model.AddActivity(TimeInterval{100, 100}, counters).ok());
}

// --- DbCollector ------------------------------------------------------------------

TEST(DbCollectorTest, EmitsDatabaseColumnMetrics) {
  ComponentRegistry registry;
  EventLog events;
  ComponentId v1 = registry.MustRegister(ComponentKind::kVolume, "V1");
  ComponentId database =
      registry.MustRegister(ComponentKind::kDatabase, "db");
  Catalog catalog(&registry, &events);
  TpchOptions options;
  options.volume_v1 = v1;
  options.volume_v2 = v1;
  ASSERT_TRUE(BuildTpchCatalog(options, &catalog).ok());

  DbActivityModel activity;
  DbActivityCounters counters;
  counters.blocks_read_per_sec = 50;
  counters.index_scans_per_sec = 2;
  ASSERT_TRUE(
      activity.AddActivity(TimeInterval{0, Minutes(10)}, counters).ok());
  LockManager locks;
  monitor::TimeSeriesStore store;
  monitor::NoiseModel noise(monitor::NoiseSpec{0, 0, 3.0, 0, 0}, SeededRng(1));
  DbCollector collector(&activity, &locks, &catalog, database, &store, &noise,
                        Minutes(5));
  ASSERT_TRUE(collector.CollectRange(0, Minutes(10)).ok());

  // Two intervals of samples across the database metric column.
  EXPECT_EQ(store.Series(database, monitor::MetricId::kDbBlocksRead).size(),
            2u);
  EXPECT_NEAR(
      store.Series(database, monitor::MetricId::kDbBlocksRead)[0].value, 50,
      1e-9);
  EXPECT_NEAR(
      store.Series(database, monitor::MetricId::kDbIndexScans)[0].value, 2,
      1e-9);
  // Space usage reflects the catalog.
  EXPECT_GT(
      store.Series(database, monitor::MetricId::kDbSpaceUsageMb)[0].value,
      100.0);
  EXPECT_FALSE(collector.CollectRange(5, 5).ok());
}

// --- BufferPool -------------------------------------------------------------------

struct BufferPoolFixture {
  ComponentRegistry registry;
  EventLog events;
  Catalog catalog{&registry, &events};

  BufferPoolFixture() {
    ComponentId v = registry.MustRegister(ComponentKind::kVolume, "V");
    TpchOptions options;
    options.volume_v1 = v;
    options.volume_v2 = v;
    EXPECT_TRUE(BuildTpchCatalog(options, &catalog).ok());
  }
};

TEST(BufferPoolTest, TinyTablesAreCached) {
  BufferPoolFixture f;
  BufferPool pool(&f.catalog, 64);
  EXPECT_GE(pool.HitRate("nation"), 0.99);
  EXPECT_GE(pool.HitRate("region"), 0.99);
}

TEST(BufferPoolTest, BigTablesMissUnderSmallPool) {
  BufferPoolFixture f;
  BufferPool small(&f.catalog, 64);
  BufferPool large(&f.catalog, 8192);
  EXPECT_LT(small.HitRate("partsupp"), 0.9);
  EXPECT_GT(large.HitRate("partsupp"), small.HitRate("partsupp"));
}

TEST(BufferPoolTest, HitRateMonotoneInPoolSize) {
  BufferPoolFixture f;
  double prev = 0;
  for (double mb : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    BufferPool pool(&f.catalog, mb);
    const double hit = pool.HitRate("partsupp");
    EXPECT_GE(hit, prev - 1e-12) << mb;
    prev = hit;
  }
}

TEST(BufferPoolTest, OverrideWinsAndClamps) {
  BufferPoolFixture f;
  BufferPool pool(&f.catalog, 64);
  pool.OverrideHitRate("partsupp", 0.123);
  EXPECT_DOUBLE_EQ(pool.HitRate("partsupp"), 0.123);
  pool.OverrideHitRate("partsupp", 7.0);
  EXPECT_DOUBLE_EQ(pool.HitRate("partsupp"), 1.0);
  // Unknown tables get a neutral default rather than an error.
  EXPECT_GT(pool.HitRate("mystery"), 0.0);
}

// --- LockManager -------------------------------------------------------------------

TEST(LockManagerTest, WaitsStackAcrossWindows) {
  LockManager locks;
  ASSERT_TRUE(locks
                  .AddContention({"t", TimeInterval{0, 1000}, 100, 5})
                  .ok());
  ASSERT_TRUE(locks
                  .AddContention({"t", TimeInterval{500, 1500}, 50, 3})
                  .ok());
  EXPECT_EQ(locks.WaitFor("t", 250), 100);
  EXPECT_EQ(locks.WaitFor("t", 750), 150);  // Both windows active.
  EXPECT_EQ(locks.WaitFor("t", 1250), 50);
  EXPECT_EQ(locks.WaitFor("t", 2000), 0);
  EXPECT_EQ(locks.WaitFor("other", 750), 0);
  EXPECT_DOUBLE_EQ(locks.ExtraLocksHeldAt(750), 8.0);
}

TEST(LockManagerTest, ValidatesWindows) {
  LockManager locks;
  EXPECT_FALSE(locks.AddContention({"t", TimeInterval{10, 10}, 1, 0}).ok());
  EXPECT_FALSE(locks.AddContention({"t", TimeInterval{0, 10}, -1, 0}).ok());
}

}  // namespace
}  // namespace diads::db
