// Unit tests for the database catalog and the TPC-H layout: tablespace ->
// volume mapping, dual statistics, schema-change event emission.
#include <gtest/gtest.h>

#include "common/event_log.h"
#include "db/catalog.h"
#include "db/tpch.h"

namespace diads::db {
namespace {

struct CatalogFixture {
  ComponentRegistry registry;
  EventLog events;
  ComponentId v1{0}, v2{1};
  Catalog catalog{&registry, &events};

  CatalogFixture() {
    v1 = registry.MustRegister(ComponentKind::kVolume, "V1");
    v2 = registry.MustRegister(ComponentKind::kVolume, "V2");
  }
};

TEST(CatalogTest, TablespaceVolumeMapping) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kSystemManaged)
                  .ok());
  ASSERT_TRUE(f.catalog
                  .AddTable("t", "ts1", TableStats{1000, 100},
                            {{"c", 1000, 8}})
                  .ok());
  Result<ComponentId> volume = f.catalog.VolumeOfTable("t");
  ASSERT_TRUE(volume.ok());
  EXPECT_EQ(*volume, f.v1);
  EXPECT_FALSE(f.catalog.VolumeOfTable("missing").ok());
}

TEST(CatalogTest, RejectsDuplicatesAndDanglingRefs) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kDatabaseManaged)
                  .ok());
  EXPECT_FALSE(f.catalog
                   .AddTablespace("ts1", f.v2, StorageMode::kSystemManaged)
                   .ok());
  EXPECT_FALSE(
      f.catalog.AddTable("t", "nope", TableStats{10, 10}, {}).ok());
  ASSERT_TRUE(
      f.catalog.AddTable("t", "ts1", TableStats{10, 10}, {{"c", 5, 4}}).ok());
  EXPECT_FALSE(
      f.catalog.AddTable("t", "ts1", TableStats{10, 10}, {}).ok());
  // Index on a missing column.
  EXPECT_FALSE(f.catalog.AddIndex("i", "t", "zzz", false, 0.5).ok());
}

TEST(CatalogTest, PagesDeriveFromStats) {
  TableStats stats{8192, 100};
  EXPECT_NEAR(stats.pages(), 100.0, 1e-9);
}

TEST(CatalogTest, DmlMovesActualNotOptimizer) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kSystemManaged)
                  .ok());
  ASSERT_TRUE(f.catalog
                  .AddTable("t", "ts1", TableStats{1000, 100}, {{"c", 10, 4}})
                  .ok());
  ASSERT_TRUE(f.catalog.ApplyDml(100, "t", 2.0, "").ok());
  const TableDef* table = f.catalog.FindTable("t").value();
  EXPECT_DOUBLE_EQ(table->actual_stats.row_count, 2000);
  EXPECT_DOUBLE_EQ(table->optimizer_stats.row_count, 1000);
  // ANALYZE syncs them.
  ASSERT_TRUE(f.catalog.Analyze(200, "t").ok());
  table = f.catalog.FindTable("t").value();
  EXPECT_DOUBLE_EQ(table->optimizer_stats.row_count, 2000);
}

TEST(CatalogTest, SchemaChangesEmitEventsWithProbeAttrs) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kSystemManaged)
                  .ok());
  ASSERT_TRUE(f.catalog
                  .AddTable("t", "ts1", TableStats{1000, 100}, {{"c", 10, 4}})
                  .ok());
  ASSERT_TRUE(f.catalog.AddIndex("t_c_idx", "t", "c", false, 0.5).ok());
  ASSERT_TRUE(f.catalog.DropIndex(100, "t_c_idx").ok());
  ASSERT_TRUE(f.catalog.ApplyDml(200, "t", 1.5, "").ok());
  ASSERT_TRUE(f.catalog.Analyze(300, "t").ok());
  ASSERT_TRUE(f.catalog.RecreateIndex(400, "t_c_idx").ok());

  ASSERT_EQ(f.events.size(), 4u);
  EXPECT_EQ(f.events.all()[0].type, EventType::kIndexDropped);
  EXPECT_EQ(f.events.all()[0].attrs.at("index"), "t_c_idx");
  EXPECT_EQ(f.events.all()[1].type, EventType::kDmlBatch);
  EXPECT_EQ(f.events.all()[2].type, EventType::kTableStatsChanged);
  EXPECT_EQ(f.events.all()[2].attrs.at("old_row_count"), "1000");
  EXPECT_EQ(f.events.all()[3].type, EventType::kIndexCreated);
}

TEST(CatalogTest, DropLifecycle) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kSystemManaged)
                  .ok());
  ASSERT_TRUE(f.catalog
                  .AddTable("t", "ts1", TableStats{1000, 100}, {{"c", 10, 4}})
                  .ok());
  ASSERT_TRUE(f.catalog.AddIndex("i", "t", "c", false, 0.5).ok());
  EXPECT_EQ(f.catalog.IndexesOn("t").size(), 1u);
  ASSERT_TRUE(f.catalog.DropIndex(1, "i").ok());
  EXPECT_TRUE(f.catalog.IndexesOn("t").empty());
  // Double drop fails.
  EXPECT_FALSE(f.catalog.DropIndex(2, "i").ok());
  ASSERT_TRUE(f.catalog.RecreateIndex(3, "i").ok());
  EXPECT_EQ(f.catalog.IndexesOn("t", "c").size(), 1u);
}

TEST(CatalogTest, SilentMutatorsDoNotLog) {
  CatalogFixture f;
  ASSERT_TRUE(f.catalog
                  .AddTablespace("ts1", f.v1, StorageMode::kSystemManaged)
                  .ok());
  ASSERT_TRUE(f.catalog
                  .AddTable("t", "ts1", TableStats{1000, 100}, {{"c", 10, 4}})
                  .ok());
  ASSERT_TRUE(f.catalog.AddIndex("i", "t", "c", false, 0.5).ok());
  ASSERT_TRUE(f.catalog.SetIndexDroppedSilently("i", true).ok());
  ASSERT_TRUE(
      f.catalog.SetOptimizerStatsSilently("t", TableStats{77, 100}).ok());
  EXPECT_EQ(f.events.size(), 0u);
  EXPECT_TRUE(f.catalog.IndexesOn("t").empty());
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("t").value()->optimizer_stats.row_count, 77);
}

// --- TPC-H layout ----------------------------------------------------------------

TEST(TpchTest, BuildsPaperLayout) {
  CatalogFixture f;
  TpchOptions options;
  options.scale_factor = 1.0;
  options.volume_v1 = f.v1;
  options.volume_v2 = f.v2;
  ASSERT_TRUE(BuildTpchCatalog(options, &f.catalog).ok());

  // partsupp on V1, everything else on V2 (the Figure-1 layout).
  EXPECT_EQ(*f.catalog.VolumeOfTable("partsupp"), f.v1);
  for (const char* table : {"part", "supplier", "nation", "region"}) {
    EXPECT_EQ(*f.catalog.VolumeOfTable(table), f.v2) << table;
  }
  // Scale-factor-1 cardinalities.
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("partsupp").value()->actual_stats.row_count, 800000);
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("part").value()->actual_stats.row_count, 200000);
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("region").value()->actual_stats.row_count, 5);
  // Q2's join-path indexes exist.
  EXPECT_FALSE(f.catalog.IndexesOn("partsupp", "ps_partkey").empty());
  EXPECT_FALSE(f.catalog.IndexesOn("partsupp", "ps_suppkey").empty());
  EXPECT_FALSE(f.catalog.IndexesOn("part", "p_size").empty());
}

TEST(TpchTest, ScaleFactorScales) {
  CatalogFixture f;
  TpchOptions options;
  options.scale_factor = 0.1;
  options.volume_v1 = f.v1;
  options.volume_v2 = f.v2;
  ASSERT_TRUE(BuildTpchCatalog(options, &f.catalog).ok());
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("partsupp").value()->actual_stats.row_count, 80000);
  // Fixed-size tables do not scale.
  EXPECT_DOUBLE_EQ(
      f.catalog.FindTable("nation").value()->actual_stats.row_count, 25);
}

TEST(TpchTest, RejectsNonPositiveScale) {
  CatalogFixture f;
  TpchOptions options;
  options.scale_factor = 0;
  EXPECT_FALSE(BuildTpchCatalog(options, &f.catalog).ok());
}

}  // namespace
}  // namespace diads::db
