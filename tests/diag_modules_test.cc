// Tests for the individual diagnosis modules (PD, CO, DA, CR, SD, IA) over
// scenario-1 data — checking each module's Section 4.1/Section 5 behaviour:
// COS holds the V1 leaves plus their pipeline ancestors, DA prunes V2, CR
// stays quiet, SD scores the misconfiguration entry highest, IA attributes
// ~100% of the slowdown.
//
// The scenario is simulated once and shared across tests (SetUpTestSuite).
#include <gtest/gtest.h>

#include <set>

#include "diads/correlated_operators.h"
#include "diads/correlated_records.h"
#include "diads/dependency_analysis.h"
#include "diads/impact_analysis.h"
#include "diads/plan_diff.h"
#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::diag {
namespace {

using workload::RunScenario;
using workload::ScenarioId;
using workload::ScenarioOutput;

class Scenario1Modules : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<ScenarioOutput> scenario =
        RunScenario(ScenarioId::kS1SanMisconfiguration, {});
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    scenario_ = new ScenarioOutput(std::move(*scenario));
    ctx_ = new DiagnosisContext(scenario_->MakeContext());
    config_ = new WorkflowConfig();
    Result<CoResult> co = RunCorrelatedOperators(*ctx_, *config_);
    ASSERT_TRUE(co.ok()) << co.status().ToString();
    co_ = new CoResult(std::move(*co));
    Result<DaResult> da = RunDependencyAnalysis(*ctx_, *config_, *co_);
    ASSERT_TRUE(da.ok()) << da.status().ToString();
    da_ = new DaResult(std::move(*da));
    Result<CrResult> cr = RunCorrelatedRecords(*ctx_, *config_, *co_);
    ASSERT_TRUE(cr.ok()) << cr.status().ToString();
    cr_ = new CrResult(std::move(*cr));
    Result<PdResult> pd = RunPlanDiff(*ctx_);
    ASSERT_TRUE(pd.ok()) << pd.status().ToString();
    pd_ = new PdResult(std::move(*pd));
  }

  static void TearDownTestSuite() {
    delete pd_;
    delete cr_;
    delete da_;
    delete co_;
    delete config_;
    delete ctx_;
    delete scenario_;
    pd_ = nullptr;
    cr_ = nullptr;
    da_ = nullptr;
    co_ = nullptr;
    config_ = nullptr;
    ctx_ = nullptr;
    scenario_ = nullptr;
  }

  static int OpIndex(int op_number) {
    return ctx_->apg->plan().IndexOfOpNumber(op_number).value();
  }

  static std::set<int> CosNumbers() {
    std::set<int> numbers;
    for (int index : co_->correlated_operator_set) {
      numbers.insert(ctx_->apg->plan().op(index).op_number);
    }
    return numbers;
  }

  static ScenarioOutput* scenario_;
  static DiagnosisContext* ctx_;
  static WorkflowConfig* config_;
  static CoResult* co_;
  static DaResult* da_;
  static CrResult* cr_;
  static PdResult* pd_;
};

ScenarioOutput* Scenario1Modules::scenario_ = nullptr;
DiagnosisContext* Scenario1Modules::ctx_ = nullptr;
WorkflowConfig* Scenario1Modules::config_ = nullptr;
CoResult* Scenario1Modules::co_ = nullptr;
DaResult* Scenario1Modules::da_ = nullptr;
CrResult* Scenario1Modules::cr_ = nullptr;
PdResult* Scenario1Modules::pd_ = nullptr;

// --- Module PD ---------------------------------------------------------------

TEST_F(Scenario1Modules, PdFindsNoPlanChange) {
  // "Modules PD and CR: These two modules correctly identify
  // (respectively) that the plan and the data properties have not changed."
  EXPECT_FALSE(pd_->plans_differ);
  EXPECT_EQ(pd_->satisfactory_fingerprints,
            pd_->unsatisfactory_fingerprints);
}

// --- Module CO ---------------------------------------------------------------

TEST_F(Scenario1Modules, CoContainsBothV1Leaves) {
  // "This set correctly contains both the leaf operators (O8 and O22)
  // connected to volume V1."
  const std::set<int> cos = CosNumbers();
  EXPECT_TRUE(cos.count(8));
  EXPECT_TRUE(cos.count(22));
}

TEST_F(Scenario1Modules, CoContainsUpstreamAncestors) {
  // "The ... intermediate operators present in this set are ranked highly
  // because of event propagation."
  const std::set<int> cos = CosNumbers();
  for (int number : {2, 3, 4, 5, 6, 17, 18, 19, 20}) {
    EXPECT_TRUE(cos.count(number)) << "O" << number;
  }
}

TEST_F(Scenario1Modules, CoExcludesRootAndBuildPipelines) {
  // The Result root only spans the emission phase; the hash-build
  // pipelines never touch V1. Neither should be correlated.
  const std::set<int> cos = CosNumbers();
  EXPECT_FALSE(cos.count(1));
  for (int number : {9, 10, 11, 12, 13, 14, 15, 24, 25}) {
    EXPECT_FALSE(cos.count(number)) << "O" << number;
  }
}

TEST_F(Scenario1Modules, CoScoresAreOrdered) {
  // Every COS member scores above threshold; every excluded op below.
  for (const OperatorAnomaly& a : co_->scores) {
    if (co_->InCos(a.op_index)) {
      EXPECT_GE(a.score, config_->operator_anomaly.threshold);
    } else {
      EXPECT_LT(a.score, config_->operator_anomaly.threshold);
    }
  }
}

// --- Module DA ---------------------------------------------------------------

TEST_F(Scenario1Modules, DaFlagsV1NotV2) {
  // Table 2's first column: V1's metrics anomalous, V2's are not.
  EXPECT_TRUE(da_->InCcs(scenario_->testbed->v1));
  EXPECT_FALSE(da_->InCcs(scenario_->testbed->v2));
}

TEST_F(Scenario1Modules, DaScoresV1WriteMetricsHigh) {
  const MetricAnomaly* write_io = da_->Find(
      scenario_->testbed->v1, monitor::MetricId::kVolPhysWriteOps);
  ASSERT_NE(write_io, nullptr);
  EXPECT_GE(write_io->anomaly_score, 0.8);
  const MetricAnomaly* write_time = da_->Find(
      scenario_->testbed->v1, monitor::MetricId::kVolPhysWriteTimeMs);
  ASSERT_NE(write_time, nullptr);
  EXPECT_GE(write_time->anomaly_score, 0.8);
}

TEST_F(Scenario1Modules, DaScoresV2MetricsLow) {
  EXPECT_LT(da_->MaxAnomalyFor(scenario_->testbed->v2), 0.8);
}

TEST_F(Scenario1Modules, DaFlagsP1DisksViaDependencyPaths) {
  // The contended pool's disks sit on O8/O22's inner paths and show
  // correlated utilisation.
  const ComponentRegistry& registry = scenario_->testbed->registry;
  int p1_disks_in_ccs = 0;
  for (ComponentId c : da_->correlated_component_set) {
    const std::string name = registry.NameOf(c);
    if (name == "disk1" || name == "disk2" || name == "disk3" ||
        name == "disk4") {
      ++p1_disks_in_ccs;
    }
  }
  EXPECT_GE(p1_disks_in_ccs, 3);
}

TEST_F(Scenario1Modules, DaOnlyScoresDependencyPathComponents) {
  // Every scored component must be on some COS operator's inner or outer
  // path — property (i) of Section 4.1.
  std::set<ComponentId> allowed;
  for (int op_index : co_->correlated_operator_set) {
    const std::vector<ComponentId> inner =
        ctx_->apg->InnerPath(op_index).value();
    const std::vector<ComponentId> outer =
        ctx_->apg->OuterPath(op_index).value();
    allowed.insert(inner.begin(), inner.end());
    allowed.insert(outer.begin(), outer.end());
  }
  for (const MetricAnomaly& m : da_->metrics) {
    EXPECT_TRUE(allowed.count(m.component))
        << scenario_->testbed->registry.NameOf(m.component);
  }
}

// --- Module CR ---------------------------------------------------------------

TEST_F(Scenario1Modules, CrFindsNoDataPropertyChange) {
  EXPECT_FALSE(cr_->data_properties_changed);
  EXPECT_TRUE(cr_->correlated_record_set.empty());
}

// --- Module SD ---------------------------------------------------------------

TEST_F(Scenario1Modules, SdRanksMisconfigurationHighest) {
  SymptomsDb db = SymptomsDb::MakeDefault();
  Result<std::vector<RootCause>> causes =
      RunSymptomsDatabase(*ctx_, *config_, *pd_, *co_, *da_, *cr_, db);
  ASSERT_TRUE(causes.ok()) << causes.status().ToString();
  ASSERT_FALSE(causes->empty());
  EXPECT_EQ(causes->front().type,
            RootCauseType::kSanMisconfigurationContention);
  EXPECT_EQ(causes->front().subject, scenario_->testbed->v1);
  EXPECT_EQ(causes->front().band, ConfidenceBand::kHigh);
  // "V1's contention due to a change in database workload got a medium
  // confidence score": the external-workload entry lands mid-band.
  bool external_v1_medium = false;
  for (const RootCause& cause : *causes) {
    if (cause.type == RootCauseType::kExternalWorkloadContention &&
        cause.subject == scenario_->testbed->v1 &&
        cause.band == ConfidenceBand::kMedium) {
      external_v1_medium = true;
    }
  }
  EXPECT_TRUE(external_v1_medium);
}

TEST_F(Scenario1Modules, SdWithoutDatabaseStillNarrows) {
  // Section 5: "DIADS produces good results even when the symptoms
  // database is incomplete" — with none at all, the fallback still points
  // at V1.
  std::vector<RootCause> causes =
      FallbackCauses(*ctx_, *config_, *co_, *da_, *cr_);
  ASSERT_FALSE(causes.empty());
  EXPECT_EQ(causes.front().subject, scenario_->testbed->v1);
}

// --- Module IA ---------------------------------------------------------------

TEST_F(Scenario1Modules, IaAttributesNearlyAllSlowdownToV1) {
  // "Impact analysis done using the inverse dependency analysis technique
  // gave an impact score of 99.8% for the high-confidence root cause."
  SymptomsDb db = SymptomsDb::MakeDefault();
  std::vector<RootCause> causes =
      RunSymptomsDatabase(*ctx_, *config_, *pd_, *co_, *da_, *cr_, db)
          .value();
  ASSERT_TRUE(
      RunImpactAnalysis(*ctx_, *config_, *co_, *cr_, &causes).ok());
  const RootCause& top = causes.front();
  EXPECT_EQ(top.type, RootCauseType::kSanMisconfigurationContention);
  ASSERT_TRUE(top.impact_pct.has_value());
  EXPECT_GT(*top.impact_pct, 90.0);
}

TEST_F(Scenario1Modules, IaOperatorsAffectedByVolumeCause) {
  RootCause cause;
  cause.type = RootCauseType::kSanMisconfigurationContention;
  cause.subject = scenario_->testbed->v1;
  std::vector<int> ops = OperatorsAffectedBy(*ctx_, cause, *co_, *cr_);
  std::set<int> numbers;
  for (int index : ops) {
    numbers.insert(ctx_->apg->plan().op(index).op_number);
  }
  EXPECT_EQ(numbers, (std::set<int>{8, 22}));
}

TEST_F(Scenario1Modules, IaCostModelVariantAlsoImplicatesV1) {
  SymptomsDb db = SymptomsDb::MakeDefault();
  std::vector<RootCause> causes =
      RunSymptomsDatabase(*ctx_, *config_, *pd_, *co_, *da_, *cr_, db)
          .value();
  ASSERT_TRUE(RunImpactAnalysis(*ctx_, *config_, *co_, *cr_, &causes,
                                ImpactMethod::kCostModel)
                  .ok());
  for (const RootCause& cause : causes) {
    if (cause.type == RootCauseType::kSanMisconfigurationContention &&
        cause.subject == scenario_->testbed->v1) {
      ASSERT_TRUE(cause.impact_pct.has_value());
      // The V1 scans carry the bulk of the plan's estimated self cost.
      EXPECT_GT(*cause.impact_pct, 50.0);
      return;
    }
  }
  FAIL() << "misconfiguration cause missing";
}

// --- Renderers ------------------------------------------------------------------

TEST_F(Scenario1Modules, PanelsRender) {
  EXPECT_NE(RenderPdResult(*ctx_, *pd_).find("plans differ: no"),
            std::string::npos);
  EXPECT_NE(RenderCoResult(*ctx_, *co_).find("O8"), std::string::npos);
  EXPECT_NE(RenderDaResult(*ctx_, *da_).find("V1"), std::string::npos);
  EXPECT_NE(RenderCrResult(*ctx_, *cr_).find("data properties"),
            std::string::npos);
}

// --- Context helpers --------------------------------------------------------------

TEST_F(Scenario1Modules, ContextWindows) {
  const TimeInterval analysis = ctx_->AnalysisWindow();
  EXPECT_EQ(analysis.begin, scenario_->satisfactory_window.begin);
  EXPECT_EQ(analysis.end, scenario_->unsatisfactory_window.end);
  const TimeInterval transition = ctx_->TransitionWindow();
  EXPECT_GE(transition.begin, scenario_->satisfactory_window.end);
  EXPECT_LE(transition.end, scenario_->unsatisfactory_window.begin);
  // The misconfiguration events happened inside the transition window.
  EXPECT_FALSE(
      ctx_->events->EventsOfTypeIn(EventType::kVolumeCreated, transition)
          .empty());
}

TEST_F(Scenario1Modules, RunPartitionsMatchScenario) {
  EXPECT_EQ(ctx_->SatisfactoryRuns().size(), 20u);
  EXPECT_EQ(ctx_->UnsatisfactoryRuns().size(), 10u);
}

}  // namespace
}  // namespace diads::diag
