// Fault-injection tests for the fleet store's crash-durable segment log:
// codec round trips, torn tails, truncated segments, bit-flipped CRCs,
// empty logs, retention, and the recovery contract — a recovered store
// answers every FleetQuery byte-equal to the pre-crash store minus
// provably lost tail records, and replayed rows obey the same monotone-
// generation rule as live publishes. Run under ASan and TSan.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/log.h"
#include "fleet/query.h"
#include "fleet/store.h"

namespace diads::fleet {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test.
fs::path ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fleet_log_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A verdict exercising every serialized field (incident included when
/// `with_incident`). Generations and scores derive from `n` so distinct
/// records are distinguishable after replay.
TenantVerdict MakeVerdict(const std::string& tenant, uint64_t n,
                          bool with_incident = false) {
  TenantVerdict verdict;
  verdict.tenant = tenant;
  verdict.query = "Q2";
  verdict.window_begin = static_cast<SimTimeMs>(n * 1000);
  verdict.window_end = static_cast<SimTimeMs>(n * 1000 + 600);
  verdict.store_generation = 100 + n;

  verdict.plan_diff.plans_differ = (n % 2) == 0;
  verdict.plan_diff.satisfactory_plans = 2;
  verdict.plan_diff.unsatisfactory_plans = 1;
  verdict.plan_diff.candidates = static_cast<int>(n);
  verdict.plan_diff.explaining_candidates = 1;

  CauseVerdict cause;
  cause.type = diag::RootCauseType::kSanMisconfigurationContention;
  cause.subject = "V1";
  cause.confidence = 0.9;
  cause.band = diag::ConfidenceBand::kHigh;
  cause.impact_pct = 42.5;
  verdict.causes.push_back(cause);
  cause.type = diag::RootCauseType::kExternalWorkloadContention;
  cause.subject = "";
  cause.confidence = 0.4;
  cause.band = diag::ConfidenceBand::kLow;
  cause.impact_pct = -1;
  verdict.causes.push_back(cause);

  ComponentVerdict component;
  component.component = "V1";
  component.kind = ComponentKind::kVolume;
  component.in_ccs = true;
  component.max_anomaly = 0.95;
  MetricVerdict metric;
  metric.metric = monitor::MetricId::kVolTotalIos;
  metric.anomaly_score = 0.95;
  metric.correlation = 0.88;
  metric.correlated = true;
  component.metrics.push_back(metric);
  component.cause_subject = true;
  component.best_cause_confidence = 0.9;
  component.cause_types = {diag::RootCauseType::kSanMisconfigurationContention};
  component.generation = 10 + n;
  verdict.components.push_back(component);

  ComponentVerdict quiet;
  quiet.component = "P1";
  quiet.kind = ComponentKind::kStoragePool;
  quiet.generation = 20 + n;
  verdict.components.push_back(quiet);

  if (with_incident) {
    auto incident = std::make_shared<IncidentStamp>();
    incident->sequence = n;
    incident->subject = "V1";
    incident->metric = monitor::MetricId::kVolPhysReadTimeMs;
    incident->onset_time = 5000;
    incident->confirmed_time = 6500;
    verdict.incident = std::move(incident);
  }
  return verdict;
}

void ExpectVerdictsEqual(const TenantVerdict& a, const TenantVerdict& b) {
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.window_begin, b.window_begin);
  EXPECT_EQ(a.window_end, b.window_end);
  EXPECT_EQ(a.store_generation, b.store_generation);
  EXPECT_EQ(a.plan_diff.plans_differ, b.plan_diff.plans_differ);
  EXPECT_EQ(a.plan_diff.candidates, b.plan_diff.candidates);
  ASSERT_EQ(a.causes.size(), b.causes.size());
  for (size_t i = 0; i < a.causes.size(); ++i) {
    EXPECT_EQ(a.causes[i].type, b.causes[i].type);
    EXPECT_EQ(a.causes[i].subject, b.causes[i].subject);
    EXPECT_DOUBLE_EQ(a.causes[i].confidence, b.causes[i].confidence);
    EXPECT_EQ(a.causes[i].band, b.causes[i].band);
    EXPECT_DOUBLE_EQ(a.causes[i].impact_pct, b.causes[i].impact_pct);
  }
  ASSERT_EQ(a.components.size(), b.components.size());
  for (size_t i = 0; i < a.components.size(); ++i) {
    const ComponentVerdict& x = a.components[i];
    const ComponentVerdict& y = b.components[i];
    EXPECT_EQ(x.component, y.component);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.in_ccs, y.in_ccs);
    EXPECT_DOUBLE_EQ(x.max_anomaly, y.max_anomaly);
    EXPECT_EQ(x.cause_subject, y.cause_subject);
    EXPECT_EQ(x.cause_types, y.cause_types);
    EXPECT_EQ(x.generation, y.generation);
    ASSERT_EQ(x.metrics.size(), y.metrics.size());
    for (size_t m = 0; m < x.metrics.size(); ++m) {
      EXPECT_EQ(x.metrics[m].metric, y.metrics[m].metric);
      EXPECT_DOUBLE_EQ(x.metrics[m].anomaly_score,
                       y.metrics[m].anomaly_score);
      EXPECT_EQ(x.metrics[m].correlated, y.metrics[m].correlated);
    }
  }
  ASSERT_EQ(a.incident != nullptr, b.incident != nullptr);
  if (a.incident != nullptr) {
    EXPECT_EQ(a.incident->sequence, b.incident->sequence);
    EXPECT_EQ(a.incident->subject, b.incident->subject);
    EXPECT_EQ(a.incident->metric, b.incident->metric);
    EXPECT_EQ(a.incident->onset_time, b.incident->onset_time);
    EXPECT_EQ(a.incident->confirmed_time, b.incident->confirmed_time);
  }
}

/// The single (lexically last) segment file of `dir`.
fs::path LastSegment(const fs::path& dir) {
  const std::vector<std::string> segments =
      SegmentLog::ListSegments(dir.string());
  EXPECT_FALSE(segments.empty());
  return dir / segments.back();
}

// --- Codec -------------------------------------------------------------------

TEST(VerdictCodecTest, RoundTripsEveryField) {
  const TenantVerdict original = MakeVerdict("t00-S1", 7, true);
  Result<TenantVerdict> decoded = DecodeVerdict(EncodeVerdict(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectVerdictsEqual(original, *decoded);
}

TEST(VerdictCodecTest, RejectsGarbageWithoutCrashing) {
  EXPECT_FALSE(DecodeVerdict("").ok());
  EXPECT_FALSE(DecodeVerdict("not a verdict").ok());
  // Every truncation of a valid payload must fail cleanly, never read
  // out of bounds (the ASan job is what gives this test its teeth).
  const std::string payload = EncodeVerdict(MakeVerdict("t", 1, true));
  for (size_t len = 0; len < payload.size(); len += 7) {
    EXPECT_FALSE(DecodeVerdict(payload.substr(0, len)).ok())
        << "truncation at " << len << " decoded successfully";
  }
  // Trailing garbage is also rejected (a CRC-valid record must parse
  // exactly, or the frame boundary is suspect).
  EXPECT_FALSE(DecodeVerdict(payload + "x").ok());
}

// --- Append / replay ---------------------------------------------------------

TEST(SegmentLogTest, AppendThenReplayRoundTrips) {
  const fs::path dir = ScratchDir("round_trip");
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    for (uint64_t n = 0; n < 5; ++n) {
      ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n, n == 0)).ok());
    }
    EXPECT_EQ((*log)->Counters().appends, 5u);
    EXPECT_EQ((*log)->Counters().append_failures, 0u);
  }
  std::vector<TenantVerdict> replayed;
  const ReplayStats stats = SegmentLog::Replay(
      dir.string(),
      [&replayed](TenantVerdict&& v) { replayed.push_back(std::move(v)); });
  EXPECT_EQ(stats.segments_scanned, 1u);
  EXPECT_EQ(stats.records_replayed, 5u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.decode_failures, 0u);
  ASSERT_EQ(replayed.size(), 5u);
  for (uint64_t n = 0; n < 5; ++n) {
    ExpectVerdictsEqual(MakeVerdict("t00", n, n == 0), replayed[n]);
  }
}

TEST(SegmentLogTest, MissingDirectoryIsAnEmptyLog) {
  const ReplayStats stats = SegmentLog::Replay(
      "/tmp/diads-no-such-log-dir", [](TenantVerdict&&) { FAIL(); });
  EXPECT_EQ(stats.segments_scanned, 0u);
  EXPECT_EQ(stats.records_replayed, 0u);
  EXPECT_EQ(stats.records_dropped, 0u);
}

TEST(SegmentLogTest, EachOpenStartsAFreshSegment) {
  const fs::path dir = ScratchDir("fresh_segment");
  for (uint64_t n = 0; n < 3; ++n) {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
  }
  EXPECT_EQ(SegmentLog::ListSegments(dir.string()).size(), 3u);
  size_t replayed = 0;
  const ReplayStats stats = SegmentLog::Replay(
      dir.string(), [&replayed](TenantVerdict&&) { ++replayed; });
  EXPECT_EQ(stats.segments_scanned, 3u);
  EXPECT_EQ(replayed, 3u);
}

TEST(SegmentLogTest, RollsSegmentsBySize) {
  const fs::path dir = ScratchDir("roll_by_size");
  LogOptions options;
  options.dir = dir.string();
  options.segment_max_bytes = 1;  // Any non-empty segment rolls: one
                                  // record per segment.
  {
    Result<std::unique_ptr<SegmentLog>> log =
        SegmentLog::Open(std::move(options));
    ASSERT_TRUE(log.ok());
    for (uint64_t n = 0; n < 4; ++n) {
      ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
    }
  }
  EXPECT_GE(SegmentLog::ListSegments(dir.string()).size(), 4u);
  size_t replayed = 0;
  SegmentLog::Replay(dir.string(),
                     [&replayed](TenantVerdict&&) { ++replayed; });
  EXPECT_EQ(replayed, 4u);  // Rolling loses nothing.
}

TEST(SegmentLogTest, WindowRetentionDeletesOldSegments) {
  const fs::path dir = ScratchDir("retention");
  LogOptions options;
  options.dir = dir.string();
  options.window_span_ms = 1000;  // MakeVerdict(n) lands in bucket n.
  options.retain_windows = 2;
  uint64_t deleted = 0;
  {
    Result<std::unique_ptr<SegmentLog>> log =
        SegmentLog::Open(std::move(options));
    ASSERT_TRUE(log.ok());
    for (uint64_t n = 0; n < 6; ++n) {
      ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
    }
    deleted = (*log)->Counters().segments_deleted;
  }
  EXPECT_GT(deleted, 0u);
  // Only records of the newest two window buckets survive.
  std::vector<SimTimeMs> windows;
  SegmentLog::Replay(dir.string(), [&windows](TenantVerdict&& v) {
    windows.push_back(v.window_end);
  });
  ASSERT_FALSE(windows.empty());
  for (SimTimeMs w : windows) {
    EXPECT_GE(w, 4000) << "a retention-expired window survived replay";
  }
}

// --- Fault injection ---------------------------------------------------------

/// Appends `count` records, closes the log, then truncates the last
/// segment file to `keep_fraction` of the final record (simulating a
/// crash mid-write), and returns the replay outcome.
ReplayStats ReplayAfterTear(const fs::path& dir, int count,
                            double keep_fraction, size_t* replayed) {
  size_t last_record_begin = 0;
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    EXPECT_TRUE(log.ok());
    for (int n = 0; n < count; ++n) {
      if (n == count - 1) {
        last_record_begin = fs::file_size(LastSegment(dir));
      }
      EXPECT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
      EXPECT_TRUE((*log)->Flush().ok());
    }
  }
  const fs::path segment = LastSegment(dir);
  const size_t full = fs::file_size(segment);
  const size_t torn =
      last_record_begin + static_cast<size_t>(
                              (full - last_record_begin) * keep_fraction);
  fs::resize_file(segment, torn);

  *replayed = 0;
  return SegmentLog::Replay(dir.string(),
                            [replayed](TenantVerdict&&) { ++*replayed; });
}

TEST(SegmentLogFaultTest, TornFinalRecordRecoversToLastValidRecord) {
  // Tear mid-payload: frame header intact, payload short.
  size_t replayed = 0;
  const ReplayStats stats =
      ReplayAfterTear(ScratchDir("torn_payload"), 4, 0.6, &replayed);
  EXPECT_EQ(replayed, 3u);
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(stats.records_dropped, 1u);
}

TEST(SegmentLogFaultTest, TornFrameHeaderRecoversToLastValidRecord) {
  // Tear inside the 8-byte frame header itself.
  size_t replayed = 0;
  const ReplayStats stats =
      ReplayAfterTear(ScratchDir("torn_header"), 4, 0.0, &replayed);
  // 0.0 keeps zero bytes of the final record: a clean end, nothing torn.
  EXPECT_EQ(replayed, 3u);
  EXPECT_EQ(stats.records_dropped, 0u);

  size_t replayed2 = 0;
  const fs::path dir2 = ScratchDir("torn_header2");
  {
    Result<std::unique_ptr<SegmentLog>> log =
        SegmentLog::Open({dir2.string()});
    ASSERT_TRUE(log.ok());
    for (int n = 0; n < 3; ++n) {
      ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
    }
  }
  const fs::path segment = LastSegment(dir2);
  // Keep 3 bytes past the second record's end: a torn frame header.
  std::vector<size_t> sizes;
  {
    std::ifstream in(segment, std::ios::binary);
    ASSERT_TRUE(in.good());
  }
  // Compute record boundaries by re-reading lengths.
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  size_t offset = 0;
  for (int n = 0; n < 2; ++n) {
    const uint32_t len = static_cast<uint8_t>(bytes[offset]) |
                         static_cast<uint8_t>(bytes[offset + 1]) << 8 |
                         static_cast<uint8_t>(bytes[offset + 2]) << 16 |
                         static_cast<uint8_t>(bytes[offset + 3]) << 24;
    offset += 8 + len;
  }
  fs::resize_file(segment, offset + 3);
  const ReplayStats stats2 = SegmentLog::Replay(
      dir2.string(), [&replayed2](TenantVerdict&&) { ++replayed2; });
  EXPECT_EQ(replayed2, 2u);
  EXPECT_EQ(stats2.records_dropped, 1u);
}

TEST(SegmentLogFaultTest, BitFlippedCrcDropsOnlyTheCorruptSuffix) {
  const fs::path dir = ScratchDir("bit_flip");
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    for (int n = 0; n < 3; ++n) {
      ASSERT_TRUE((*log)->Append(MakeVerdict("t00", n)).ok());
    }
  }
  // Flip one bit in the LAST record's payload.
  const fs::path segment = LastSegment(dir);
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  size_t offset = 0;
  for (int n = 0; n < 2; ++n) {
    const uint32_t len = static_cast<uint8_t>(bytes[offset]) |
                         static_cast<uint8_t>(bytes[offset + 1]) << 8 |
                         static_cast<uint8_t>(bytes[offset + 2]) << 16 |
                         static_cast<uint8_t>(bytes[offset + 3]) << 24;
    offset += 8 + len;
  }
  bytes[offset + 8 + 5] ^= 0x40;  // Payload byte of record 3.
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  size_t replayed = 0;
  const ReplayStats stats = SegmentLog::Replay(
      dir.string(), [&replayed](TenantVerdict&&) { ++replayed; });
  EXPECT_EQ(replayed, 2u);  // The two records before the flip survive.
  EXPECT_EQ(stats.records_dropped, 1u);
}

TEST(SegmentLogFaultTest, CorruptSegmentDoesNotPoisonLaterSegments) {
  const fs::path dir = ScratchDir("multi_segment");
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", 0)).ok());
  }
  // Corrupt the first segment's only record...
  {
    const fs::path first = LastSegment(dir);
    fs::resize_file(first, fs::file_size(first) - 4);
  }
  // ...then write a clean second segment (a later process's publishes).
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", 1)).ok());
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", 2)).ok());
  }
  std::vector<uint64_t> generations;
  const ReplayStats stats =
      SegmentLog::Replay(dir.string(), [&generations](TenantVerdict&& v) {
        generations.push_back(v.store_generation);
      });
  EXPECT_EQ(stats.segments_scanned, 2u);
  EXPECT_EQ(stats.records_dropped, 1u);
  EXPECT_EQ(generations, (std::vector<uint64_t>{101, 102}));
}

// --- Recovery into a FleetStore ---------------------------------------------

TEST(RecoveryTest, RecoveredStoreAnswersQueriesByteEqual) {
  const fs::path dir = ScratchDir("byte_equal");
  // Pre-crash: three tenants publish through an attached log.
  FleetStore before;
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    before.AttachLog(log->get());
    before.Publish(MakeVerdict("t00-S1", 3, true));
    before.Publish(MakeVerdict("t01-S2", 4));
    before.Publish(MakeVerdict("t02-S3", 5));
    before.DetachLog();
  }  // "Crash": the log closes; `before`'s memory is the oracle.

  FleetStore after;
  const ReplayStats stats = RecoverFromLog(dir.string(), &after);
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(stats.records_dropped, 0u);

  const FleetQuery oracle(&before);
  const FleetQuery recovered(&after);
  EXPECT_EQ(oracle.TenantsSharingComponent("V1"),
            recovered.TenantsSharingComponent("V1"));
  EXPECT_EQ(oracle.TenantsSharingComponent(
                "V1", monitor::MetricId::kVolTotalIos, 0.5),
            recovered.TenantsSharingComponent(
                "V1", monitor::MetricId::kVolTotalIos, 0.5));
  EXPECT_EQ(oracle.TenantsImplicating("V1"),
            recovered.TenantsImplicating("V1"));
  EXPECT_EQ(oracle.TenantsImplicating("V1", diag::ConfidenceBand::kHigh),
            recovered.TenantsImplicating("V1", diag::ConfidenceBand::kHigh));

  const auto oracle_top = oracle.TopImplicatedComponents(4);
  const auto recovered_top = recovered.TopImplicatedComponents(4);
  ASSERT_EQ(oracle_top.size(), recovered_top.size());
  for (size_t i = 0; i < oracle_top.size(); ++i) {
    EXPECT_EQ(oracle_top[i].component, recovered_top[i].component);
    EXPECT_EQ(oracle_top[i].tenants, recovered_top[i].tenants);
    EXPECT_DOUBLE_EQ(oracle_top[i].max_confidence,
                     recovered_top[i].max_confidence);
    EXPECT_EQ(oracle_top[i].tenant_names, recovered_top[i].tenant_names);
  }

  const auto oracle_cooc = oracle.RootCauseCooccurrence();
  const auto recovered_cooc = recovered.RootCauseCooccurrence();
  ASSERT_EQ(oracle_cooc.size(), recovered_cooc.size());
  for (size_t i = 0; i < oracle_cooc.size(); ++i) {
    EXPECT_EQ(oracle_cooc[i].a, recovered_cooc[i].a);
    EXPECT_EQ(oracle_cooc[i].b, recovered_cooc[i].b);
    EXPECT_EQ(oracle_cooc[i].tenants, recovered_cooc[i].tenants);
  }

  // Same live rows, row for row (cost is observability-only and excluded
  // from the codec by contract; no query reads it).
  EXPECT_EQ(before.TotalCounters().entries, after.TotalCounters().entries);
}

TEST(RecoveryTest, ReplayThenPublishKeepsGenerationsMonotone) {
  const fs::path dir = ScratchDir("monotone");
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    // Two publishes of the same identity: generation 12 then 15.
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", 2)).ok());
    TenantVerdict newer = MakeVerdict("t00", 2);
    newer.store_generation = 115;
    for (ComponentVerdict& c : newer.components) c.generation += 5;
    ASSERT_TRUE((*log)->Append(newer).ok());
  }

  FleetStore store;
  const ReplayStats stats = RecoverFromLog(dir.string(), &store);
  EXPECT_EQ(stats.records_replayed, 2u);
  // Replay routed both through Publish: the second superseded the first.
  EXPECT_GT(store.TotalCounters().rows_superseded, 0u);

  // A live publish of a STALE verdict (older generations) after recovery
  // must be dropped, exactly as it would have been pre-crash.
  const FleetStore::Counters pre = store.TotalCounters();
  TenantVerdict stale = MakeVerdict("t00", 2);
  stale.store_generation = 90;
  for (ComponentVerdict& c : stale.components) c.generation = 1;
  store.Publish(stale);
  const FleetStore::Counters post = store.TotalCounters();
  EXPECT_EQ(post.rows_stale_dropped,
            pre.rows_stale_dropped + 1 + stale.components.size());
  EXPECT_EQ(post.entries, pre.entries);

  // And a genuinely newer publish still lands.
  TenantVerdict fresh = MakeVerdict("t00", 2);
  fresh.store_generation = 200;
  for (ComponentVerdict& c : fresh.components) c.generation += 100;
  store.Publish(fresh);
  EXPECT_GT(store.TotalCounters().rows_superseded, post.rows_superseded);
}

TEST(RecoveryTest, RecoverIntoAttachedStoreWouldDuplicateSoContractIsRecoverFirst) {
  // The documented ordering: recover BEFORE attach. This test pins the
  // reason — an attached log re-appends every publish, so recovery into
  // an attached store doubles the log.
  const fs::path dir = ScratchDir("attach_order");
  {
    Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(MakeVerdict("t00", 1)).ok());
  }
  FleetStore store;
  RecoverFromLog(dir.string(), &store);  // Correct order: no log attached.
  Result<std::unique_ptr<SegmentLog>> log = SegmentLog::Open({dir.string()});
  ASSERT_TRUE(log.ok());
  store.AttachLog(log->get());
  store.Publish(MakeVerdict("t00", 9));  // Live publish appends once.
  EXPECT_EQ((*log)->Counters().appends, 1u);
  store.DetachLog();
}

}  // namespace
}  // namespace diads::fleet
