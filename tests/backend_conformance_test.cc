// Cross-backend scenario conformance harness.
//
// The headline contract of the backend abstraction: every Table-1 /
// plan-change scenario must behave identically — in diagnosis outcome, APG
// structural schema, and recorded ReportDigest — whichever engine the
// testbed runs. 16 backend-neutral scenarios x 3 backends plus the two
// column-store-native scenarios = 50 diagnosed configurations:
//
//   * DiagnosesInjectedRootCause — the full workflow localises the
//     injected fault with high confidence and ranks it top, per
//     configuration;
//   * ApgSatisfiesStructuralSchema — both engines' APGs satisfy the same
//     node/edge-kind invariants and leaf->volume reachability
//     (apg/schema.h), and preserve the paper's load-bearing layout: nine
//     leaves, exactly two on V1;
//   * GoldenReportDigests — per-(scenario, backend) ReportDigest hashes
//     match tests/golden_report_digests.txt, so future changes cannot
//     silently regress either engine (regenerate explicitly with
//     DIADS_UPDATE_GOLDEN_DIGESTS=1);
//   * cross-backend parity properties — semantically identical testbeds
//     expose identical SAN component sets and identical
//     SeriesKeyHash-keyed metric inventories through either backend
//     (what CollectionPlanner batches and Module DA scores).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "apg/schema.h"
#include "diads/symptom_index.h"
#include "monitor/timeseries.h"
#include "support/conformance_util.h"

namespace diads {
namespace {

using db::BackendKind;
using testsupport::AllConformanceCases;
using testsupport::AllScenarioIds;
using testsupport::CaseName;
using testsupport::DiagnosedScenario;
using testsupport::GetDiagnosed;
using workload::GroundTruthCause;
using workload::MatchesGroundTruth;
using workload::ScenarioId;

class ConformanceCaseTest
    : public ::testing::TestWithParam<std::pair<ScenarioId, BackendKind>> {
 protected:
  /// nullptr (with a recorded failure) when the configuration fails to
  /// run — callers ASSERT on it, so one broken configuration fails its
  /// own tests without taking the rest of the binary down.
  const DiagnosedScenario* Diagnosed() {
    Result<const DiagnosedScenario*> d =
        GetDiagnosed(GetParam().first, GetParam().second);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return d.ok() ? *d : nullptr;
  }
};

TEST_P(ConformanceCaseTest, DiagnosesInjectedRootCause) {
  const DiagnosedScenario* d = Diagnosed();
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(testsupport::DiagnosesGroundTruth(*d));
}

TEST_P(ConformanceCaseTest, ApgSatisfiesStructuralSchema) {
  const DiagnosedScenario* d_ptr = Diagnosed();
  ASSERT_NE(d_ptr, nullptr);
  const DiagnosedScenario& d = *d_ptr;
  const apg::Apg& apg = *d.scenario.apg;
  const Status schema = apg::ValidateApgSchema(apg);
  EXPECT_TRUE(schema.ok()) << schema.ToString();

  // The paper's load-bearing layout survives vocabulary translation: nine
  // leaf scans, exactly two of them (the partsupp scans) on V1.
  const ComponentRegistry& registry = d.scenario.testbed->registry;
  const std::vector<int> leaves = apg.plan().LeafIndexes();
  EXPECT_EQ(leaves.size(), 9u);
  int v1_leaves = 0;
  for (int leaf : leaves) {
    Result<ComponentId> volume = apg.VolumeOfOp(leaf);
    ASSERT_TRUE(volume.ok());
    if (registry.NameOf(*volume) == "V1") {
      ++v1_leaves;
      EXPECT_EQ(apg.plan().op(leaf).table, "partsupp");
    }
  }
  EXPECT_EQ(v1_leaves, 2);

  // Both backends read exactly {V1, V2}.
  std::set<std::string> volumes;
  for (ComponentId v : apg.PlanVolumes()) volumes.insert(registry.NameOf(v));
  EXPECT_EQ(volumes, (std::set<std::string>{"V1", "V2"}));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ConformanceCaseTest, ::testing::ValuesIn(AllConformanceCases()),
    [](const ::testing::TestParamInfo<std::pair<ScenarioId, BackendKind>>&
           info) {
      return CaseName(info.param.first, info.param.second);
    });

// --- Engine-vocabulary expectations ------------------------------------------

TEST(BackendVocabularyTest, MysqlPlansCarryMysqlVocabulary) {
  Result<const DiagnosedScenario*> d =
      GetDiagnosed(ScenarioId::kS1SanMisconfiguration, BackendKind::kMysql);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const db::Plan& plan = (*d)->scenario.apg->plan();
  bool has_engine_op = false;
  for (const db::PlanOp& op : plan.ops()) {
    EXPECT_NE(op.type, db::OpType::kHashJoin) << "MySQL has no hash join";
    EXPECT_NE(op.type, db::OpType::kHash);
    EXPECT_NE(op.type, db::OpType::kMergeJoin);
    if (!op.engine_op.empty()) has_engine_op = true;
  }
  EXPECT_TRUE(has_engine_op) << "engine vocabulary annotations missing";
  // The vocabulary maps into the shared taxonomy: spot-check the markers.
  std::set<std::string> vocab;
  for (const db::PlanOp& op : plan.ops()) vocab.insert(op.engine_op);
  EXPECT_TRUE(vocab.count("ref"));
  EXPECT_TRUE(vocab.count("eq_ref"));
  EXPECT_TRUE(vocab.count("filesort"));
  EXPECT_TRUE(vocab.count("ALL"));
}

TEST(BackendVocabularyTest, ColumnarPlansCarryColumnarVocabulary) {
  Result<const DiagnosedScenario*> d =
      GetDiagnosed(ScenarioId::kS1SanMisconfiguration, BackendKind::kColumnar);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const db::Plan& plan = (*d)->scenario.apg->plan();
  for (const db::PlanOp& op : plan.ops()) {
    EXPECT_NE(op.type, db::OpType::kNestLoopJoin)
        << "the column store joins by hashing only";
    EXPECT_NE(op.type, db::OpType::kMergeJoin);
  }
  std::set<std::string> vocab;
  for (const db::PlanOp& op : plan.ops()) vocab.insert(op.engine_op);
  EXPECT_TRUE(vocab.count("vector scan"));
  EXPECT_TRUE(vocab.count("zone-pruned scan"));
  EXPECT_TRUE(vocab.count("vectorized hash join"));
  EXPECT_TRUE(vocab.count("hash build"));
  EXPECT_TRUE(vocab.count("late materialize"));
}

TEST(BackendVocabularyTest, PostgresPlansKeepHashJoins) {
  Result<const DiagnosedScenario*> d =
      GetDiagnosed(ScenarioId::kS1SanMisconfiguration, BackendKind::kPostgres);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const db::Plan& plan = (*d)->scenario.apg->plan();
  bool has_hash_join = false;
  for (const db::PlanOp& op : plan.ops()) {
    if (op.type == db::OpType::kHashJoin) has_hash_join = true;
  }
  EXPECT_TRUE(has_hash_join);
  EXPECT_EQ(plan.size(), 25u);
}

// --- Cross-backend parity properties -----------------------------------------

// Semantically identical testbeds built through any backend expose the
// same SAN component universe (same names, same ids — the registry orders
// registration identically), so fleet-level tooling never needs to know
// the engine. Generalised over AllBackendKinds(): every backend is
// compared against the first, so adding a fourth engine extends the
// property automatically.
TEST(BackendParityTest, SanComponentUniverseIdentical) {
  const std::vector<BackendKind> kinds = db::AllBackendKinds();
  ASSERT_GE(kinds.size(), 3u);
  Result<const DiagnosedScenario*> base =
      GetDiagnosed(ScenarioId::kS1SanMisconfiguration, kinds[0]);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const ComponentRegistry& base_reg = (*base)->scenario.testbed->registry;
  for (size_t k = 1; k < kinds.size(); ++k) {
    SCOPED_TRACE(db::BackendKindName(kinds[k]));
    Result<const DiagnosedScenario*> other =
        GetDiagnosed(ScenarioId::kS1SanMisconfiguration, kinds[k]);
    ASSERT_TRUE(other.ok()) << other.status().ToString();
    const ComponentRegistry& other_reg =
        (*other)->scenario.testbed->registry;
    for (ComponentKind kind :
         {ComponentKind::kServer, ComponentKind::kFcSwitch,
          ComponentKind::kStorageSubsystem, ComponentKind::kStoragePool,
          ComponentKind::kVolume, ComponentKind::kDisk}) {
      const std::vector<ComponentId> base_ids = base_reg.AllOfKind(kind);
      const std::vector<ComponentId> other_ids = other_reg.AllOfKind(kind);
      ASSERT_EQ(base_ids.size(), other_ids.size())
          << ComponentKindName(kind) << " count differs";
      for (size_t i = 0; i < base_ids.size(); ++i) {
        EXPECT_EQ(base_ids[i].value, other_ids[i].value);
        EXPECT_EQ(base_reg.NameOf(base_ids[i]),
                  other_reg.NameOf(other_ids[i]));
      }
    }
    // The database component differs in name (postgres@ vs mysql@ vs
    // columnar@) but not in identity.
    EXPECT_EQ((*base)->scenario.testbed->database.value,
              (*other)->scenario.testbed->database.value);
  }
}

// Property (satellite): SeriesKeyHash-keyed metric lookups and
// SymptomIndex::CollectMetricKeys return identical key sets for
// semantically identical testbeds built through any backend.
TEST(BackendParityTest, CollectMetricKeysIdenticalAcrossBackends) {
  auto keys_of = [](const DiagnosedScenario& d) {
    diag::DiagnosisContext ctx = d.scenario.MakeContext();
    std::vector<monitor::SeriesKey> keys =
        diag::SymptomIndex::CollectMetricKeys(ctx);
    std::set<std::pair<uint32_t, int>> out;
    for (const monitor::SeriesKey& key : keys) {
      out.emplace(key.component.value, static_cast<int>(key.metric));
    }
    EXPECT_EQ(out.size(), keys.size()) << "duplicate keys";
    return out;
  };

  std::vector<const DiagnosedScenario*> diagnosed;
  for (BackendKind kind : db::AllBackendKinds()) {
    Result<const DiagnosedScenario*> d =
        GetDiagnosed(ScenarioId::kS1SanMisconfiguration, kind);
    ASSERT_TRUE(d.ok()) << db::BackendKindName(kind) << ": "
                        << d.status().ToString();
    diagnosed.push_back(*d);
  }
  const auto base_keys = keys_of(*diagnosed[0]);
  EXPECT_FALSE(base_keys.empty());
  for (size_t k = 1; k < diagnosed.size(); ++k) {
    SCOPED_TRACE(db::BackendKindName(db::AllBackendKinds()[k]));
    EXPECT_EQ(base_keys, keys_of(*diagnosed[k]));
  }

  // Key-set equality above implies SeriesKeyHash equality (the hash is a
  // stateless function of the key), so sharded stores and caches place
  // every backend's series the same way. What still needs checking is
  // residency: every planned key is actually a live series in EVERY
  // backend's store, i.e. the collectors produced the same inventory.
  for (const auto& [component, metric] : base_keys) {
    for (const DiagnosedScenario* d : diagnosed) {
      const auto metrics =
          d->scenario.testbed->store.MetricsFor(ComponentId{component});
      EXPECT_TRUE(std::find(metrics.begin(), metrics.end(),
                            static_cast<monitor::MetricId>(metric)) !=
                  metrics.end());
    }
  }
}

// --- Golden ReportDigests ----------------------------------------------------

TEST(GoldenDigestTest, ReportDigestsMatchGoldenTable) {
  testsupport::GoldenDigestTable computed;
  for (const auto& [id, backend] : AllConformanceCases()) {
    Result<const DiagnosedScenario*> d = GetDiagnosed(id, backend);
    ASSERT_TRUE(d.ok()) << CaseName(id, backend) << ": "
                        << d.status().ToString();
    computed[{workload::ScenarioName(id), db::BackendKindName(backend)}] =
        (*d)->digest_hash;
  }
  testsupport::MaybeDumpComputedDigests(computed);

  const std::string path = testsupport::GoldenDigestPath();
  if (testsupport::UpdateGoldenDigestsRequested()) {
    const Status written = testsupport::WriteGoldenDigests(computed, path);
    ASSERT_TRUE(written.ok()) << written.ToString();
    GTEST_SKIP() << "golden digests regenerated at " << path;
  }

  Result<testsupport::GoldenDigestTable> golden =
      testsupport::LoadGoldenDigests(path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_FALSE(golden->empty())
      << "no golden digests checked in; bootstrap with "
         "DIADS_UPDATE_GOLDEN_DIGESTS=1";
  EXPECT_EQ(golden->size(), computed.size());
  for (const auto& [key, hash] : computed) {
    auto it = golden->find(key);
    ASSERT_TRUE(it != golden->end())
        << "no golden digest for " << key.first << "/" << key.second;
    EXPECT_EQ(it->second, hash)
        << key.first << " on " << key.second
        << " drifted from its golden ReportDigest. If the change is "
           "intentional, regenerate with DIADS_UPDATE_GOLDEN_DIGESTS=1 "
        << "and review the diff.";
  }
}

}  // namespace
}  // namespace diads
