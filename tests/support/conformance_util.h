// Shared helpers for the cross-backend scenario conformance suite.
//
// Running a scenario end to end and diagnosing it is the expensive part of
// the test pyramid, and with three backends the matrix is 16 x 3 = 48
// configurations, plus the two column-store-native scenarios that only run
// on the columnar engine: 50 in total. This support library (linked into
// the test binaries, not itself a test) provides:
//
//   * DiagnoseScenario / GetDiagnosed — run + diagnose one configuration,
//     memoised per test binary so every assertion family (ground truth,
//     APG schema, golden digests, narrative checks) shares one run;
//   * the canonical conformance-case enumeration and naming;
//   * the golden ReportDigest table: loading the checked-in
//     tests/golden_report_digests.txt, formatting a computed table, and
//     the regeneration / CI-artifact environment hooks.
#ifndef DIADS_TESTS_SUPPORT_CONFORMANCE_UTIL_H_
#define DIADS_TESTS_SUPPORT_CONFORMANCE_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "db/backend.h"
#include "diads/report.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

namespace diads::testsupport {

/// One diagnosed (scenario, backend) configuration. The testbed inside
/// `scenario` owns all referenced state; keep the struct alive while using
/// the report.
struct DiagnosedScenario {
  workload::ScenarioOutput scenario;
  diag::DiagnosisReport report;
  std::string digest;       ///< Full ReportDigest text.
  std::string digest_hash;  ///< ReportDigestHashHex.
};

/// The 12 Table-1 / plan-change scenarios plus the 4 multipath failover
/// scenarios, in canonical order. These are the backend-neutral scenarios:
/// every backend runs all of them. The column-store-native C family is NOT
/// here (it only runs on the columnar engine; see AllConformanceCases).
const std::vector<workload::ScenarioId>& AllScenarioIds();

/// Every (scenario, backend) conformance configuration: the 16 backend-
/// neutral scenarios x all backends, plus (C1, columnar) and (C2,
/// columnar) — 16 x 3 + 2 = 50.
std::vector<std::pair<workload::ScenarioId, db::BackendKind>>
AllConformanceCases();

/// gtest-safe case name, e.g. "S1_san_misconfiguration_postgres".
std::string CaseName(workload::ScenarioId id, db::BackendKind backend);

/// Runs scenario `id` on `backend` (default options, seed 42) and
/// diagnoses it with the default workflow + symptoms database.
Result<DiagnosedScenario> DiagnoseScenario(workload::ScenarioId id,
                                           db::BackendKind backend);

/// Memoised DiagnoseScenario: each configuration runs once per binary.
/// The returned pointer stays valid for the binary's lifetime.
Result<const DiagnosedScenario*> GetDiagnosed(workload::ScenarioId id,
                                              db::BackendKind backend);

/// The shared ground-truth predicate both the integration and conformance
/// suites assert (kept in one place so they cannot drift): every primary
/// injected cause appears in the report with high confidence, and the
/// single top-ranked cause matches some ground-truth entry. The
/// (scenario, report) overload serves callers that diagnosed through the
/// engine (the fleet conformance suite) rather than DiagnoseScenario.
::testing::AssertionResult DiagnosesGroundTruth(
    const workload::ScenarioOutput& scenario,
    const diag::DiagnosisReport& report);
::testing::AssertionResult DiagnosesGroundTruth(const DiagnosedScenario& d);

// --- Golden ReportDigest table ---------------------------------------------

/// (scenario name, backend name) -> digest hash hex.
using GoldenDigestTable = std::map<std::pair<std::string, std::string>,
                                   std::string>;

/// The checked-in golden file (under the source tree).
std::string GoldenDigestPath();

/// Parses the golden file. Missing file yields an empty table + ok status
/// (the regeneration flow bootstraps it).
Result<GoldenDigestTable> LoadGoldenDigests(const std::string& path);

/// Renders a table in the golden file format (one "scenario backend hash"
/// line, sorted, with a header comment).
std::string FormatGoldenDigests(const GoldenDigestTable& table);

Status WriteGoldenDigests(const GoldenDigestTable& table,
                          const std::string& path);

/// True when DIADS_UPDATE_GOLDEN_DIGESTS=1: digest mismatches rewrite the
/// golden file instead of failing (the explicit regeneration flag the CI
/// drift gate requires).
bool UpdateGoldenDigestsRequested();

/// When DIADS_DIGEST_OUT names a file, writes the computed table there
/// (the CI artifact hook). Best effort.
void MaybeDumpComputedDigests(const GoldenDigestTable& computed);

}  // namespace diads::testsupport

#endif  // DIADS_TESTS_SUPPORT_CONFORMANCE_UTIL_H_
