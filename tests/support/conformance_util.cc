#include "support/conformance_util.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "common/strings.h"

namespace diads::testsupport {

using workload::ScenarioId;

const std::vector<ScenarioId>& AllScenarioIds() {
  static const std::vector<ScenarioId> ids = {
      ScenarioId::kS1SanMisconfiguration, ScenarioId::kS1bBurstyV2,
      ScenarioId::kS2DualExternalContention, ScenarioId::kS3DataPropertyChange,
      ScenarioId::kS4ConcurrentDbSan, ScenarioId::kS5LockingWithNoise,
      ScenarioId::kS6IndexDrop, ScenarioId::kS7ParamChange,
      ScenarioId::kS8AnalyzeAfterDrift, ScenarioId::kS9CpuSaturation,
      ScenarioId::kS10RaidRebuild, ScenarioId::kS11DiskFailure,
      ScenarioId::kF1HbaFailover, ScenarioId::kF2MultipathImbalance,
      ScenarioId::kF3IslRebuildCrosstalk, ScenarioId::kF4RetrySnowball,
  };
  return ids;
}

std::vector<std::pair<ScenarioId, db::BackendKind>> AllConformanceCases() {
  std::vector<std::pair<ScenarioId, db::BackendKind>> cases;
  for (db::BackendKind backend : db::AllBackendKinds()) {
    for (ScenarioId id : AllScenarioIds()) {
      cases.emplace_back(id, backend);
    }
  }
  // The column-store-native scenarios only exist on the columnar engine
  // (RunScenario rejects them elsewhere — no segments to degrade).
  cases.emplace_back(ScenarioId::kC1CompressionDrift,
                     db::BackendKind::kColumnar);
  cases.emplace_back(ScenarioId::kC2ZoneMapStale, db::BackendKind::kColumnar);
  return cases;
}

std::string CaseName(ScenarioId id, db::BackendKind backend) {
  std::string name = workload::ScenarioName(id);
  name += "_";
  name += db::BackendKindName(backend);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

Result<DiagnosedScenario> DiagnoseScenario(ScenarioId id,
                                           db::BackendKind backend) {
  workload::ScenarioOptions options;
  options.testbed.backend = backend;
  DIADS_ASSIGN_OR_RETURN(workload::ScenarioOutput scenario,
                         workload::RunScenario(id, options));
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(scenario.MakeContext(), diag::WorkflowConfig{},
                          &symptoms);
  DIADS_ASSIGN_OR_RETURN(diag::DiagnosisReport report, workflow.Diagnose());
  DiagnosedScenario out;
  out.scenario = std::move(scenario);
  out.digest = diag::ReportDigest(report);
  out.digest_hash = diag::ReportDigestHashHex(report);
  out.report = std::move(report);
  return out;
}

Result<const DiagnosedScenario*> GetDiagnosed(ScenarioId id,
                                              db::BackendKind backend) {
  // Memoised per binary; intentionally leaked so testbeds stay valid for
  // every test that borrows from them.
  static auto* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<DiagnosedScenario>>();
  const std::pair<int, int> key{static_cast<int>(id),
                                static_cast<int>(backend)};
  auto it = cache->find(key);
  if (it == cache->end()) {
    Result<DiagnosedScenario> diagnosed = DiagnoseScenario(id, backend);
    DIADS_RETURN_IF_ERROR(diagnosed.status());
    it = cache->emplace(key, std::make_unique<DiagnosedScenario>(
                                 std::move(*diagnosed)))
             .first;
  }
  return const_cast<const DiagnosedScenario*>(it->second.get());
}

::testing::AssertionResult DiagnosesGroundTruth(
    const workload::ScenarioOutput& scenario,
    const diag::DiagnosisReport& report) {
  const ComponentRegistry& registry = scenario.testbed->registry;
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    if (!truth.primary) continue;
    bool found = false;
    for (const diag::RootCause& cause : report.causes) {
      if (cause.band == diag::ConfidenceBand::kHigh &&
          workload::MatchesGroundTruth(truth, cause, registry)) {
        found = true;
      }
    }
    if (!found) {
      return ::testing::AssertionFailure()
             << "missing high-confidence cause: "
             << diag::RootCauseTypeName(truth.type) << " on "
             << truth.subject_name << "\nreport:\n"
             << diag::RenderIaResult(scenario.MakeContext(), report.causes);
    }
  }
  if (report.causes.empty()) {
    return ::testing::AssertionFailure() << "report has no causes";
  }
  for (const workload::GroundTruthCause& truth : scenario.ground_truth) {
    if (workload::MatchesGroundTruth(truth, report.causes.front(),
                                     registry)) {
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure()
         << "top cause is not a ground-truth cause: "
         << diag::RootCauseTypeName(report.causes.front().type);
}

::testing::AssertionResult DiagnosesGroundTruth(const DiagnosedScenario& d) {
  return DiagnosesGroundTruth(d.scenario, d.report);
}

std::string GoldenDigestPath() {
  return std::string(DIADS_SOURCE_DIR) + "/tests/golden_report_digests.txt";
}

Result<GoldenDigestTable> LoadGoldenDigests(const std::string& path) {
  GoldenDigestTable table;
  std::ifstream in(path);
  if (!in.is_open()) return table;  // Bootstrap: no goldens yet.
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string scenario, backend, hash;
    if (!(fields >> scenario >> backend >> hash)) {
      return Status::InvalidArgument(
          StrFormat("malformed golden digest line %d: '%s'", line_no,
                    line.c_str()));
    }
    table[{scenario, backend}] = hash;
  }
  return table;
}

std::string FormatGoldenDigests(const GoldenDigestTable& table) {
  std::string out =
      "# Golden per-(scenario, backend) ReportDigest hashes.\n"
      "# One line per conformance configuration: <scenario> <backend> "
      "<fnv1a64 of ReportDigest>.\n"
      "# Regenerate with: DIADS_UPDATE_GOLDEN_DIGESTS=1 "
      "./build/backend_conformance_test\n";
  for (const auto& [key, hash] : table) {
    out += key.first + " " + key.second + " " + hash + "\n";
  }
  return out;
}

Status WriteGoldenDigests(const GoldenDigestTable& table,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open golden digest file: " + path);
  }
  out << FormatGoldenDigests(table);
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed: " + path);
}

bool UpdateGoldenDigestsRequested() {
  const char* env = std::getenv("DIADS_UPDATE_GOLDEN_DIGESTS");
  return env != nullptr && std::string(env) == "1";
}

void MaybeDumpComputedDigests(const GoldenDigestTable& computed) {
  const char* path = std::getenv("DIADS_DIGEST_OUT");
  if (path == nullptr || *path == '\0') return;
  (void)WriteGoldenDigests(computed, path);
}

}  // namespace diads::testsupport
