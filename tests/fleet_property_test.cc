// Property test: every FleetQuery answer over engine-published verdicts
// equals the brute-force answer computed by re-diagnosing each tenant
// serially and aggregating the raw reports — byte-equal implicated-tenant
// sets and identical rankings.
//
// The brute-force oracle below deliberately reimplements the aggregation
// from the DiagnosisReport vocabulary (ComponentIds + registry lookups),
// sharing no code with fleet::ExtractVerdict / fleet::FleetQuery, so a
// bug in the lowering or the store cannot cancel itself out.
//
// Fleets are randomized per iteration: seed, tenant count, scenario mix,
// and backend all vary, driven by a seeded RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "diads/report.h"
#include "diads/symptoms_db.h"
#include "engine/engine.h"
#include "fleet/query.h"
#include "fleet/store.h"
#include "workload/fleet.h"

namespace diads {
namespace {

using workload::BuildFleet;
using workload::FleetOptions;
using workload::FleetWorkload;
using workload::ScenarioId;

constexpr double kShareThreshold = 0.8;

/// One tenant's serial ground truth: the report plus its registry.
struct SerialTenant {
  std::string name;
  const ComponentRegistry* registry = nullptr;
  diag::DiagnosisReport report;
};

std::string NameOrEmpty(const ComponentRegistry& registry, ComponentId id) {
  return registry.Contains(id) ? registry.NameOf(id) : std::string();
}

/// Brute force "tenants sharing component X with an anomalous metric":
/// straight off each report's Module DA rows.
std::vector<std::string> BruteTenantsSharing(
    const std::vector<SerialTenant>& tenants, const std::string& component,
    std::optional<monitor::MetricId> metric, double min_score) {
  std::set<std::string> out;
  for (const SerialTenant& tenant : tenants) {
    for (const diag::MetricAnomaly& row : tenant.report.da.metrics) {
      if (NameOrEmpty(*tenant.registry, row.component) != component) continue;
      if (metric.has_value() && row.metric != *metric) continue;
      if (row.anomaly_score >= min_score) {
        out.insert(tenant.name);
        break;
      }
    }
  }
  return std::vector<std::string>(out.begin(), out.end());
}

bool BandAtLeast(diag::ConfidenceBand band, diag::ConfidenceBand min_band) {
  return static_cast<int>(band) <= static_cast<int>(min_band);
}

std::vector<std::string> BruteTenantsImplicating(
    const std::vector<SerialTenant>& tenants, const std::string& component,
    diag::ConfidenceBand min_band) {
  std::set<std::string> out;
  for (const SerialTenant& tenant : tenants) {
    for (const diag::RootCause& cause : tenant.report.causes) {
      if (NameOrEmpty(*tenant.registry, cause.subject) == component &&
          BandAtLeast(cause.band, min_band)) {
        out.insert(tenant.name);
        break;
      }
    }
  }
  return std::vector<std::string>(out.begin(), out.end());
}

struct BruteImplicated {
  std::string component;
  int tenants = 0;
  double max_confidence = 0;
  std::vector<std::string> tenant_names;
};

std::vector<BruteImplicated> BruteTopImplicated(
    const std::vector<SerialTenant>& tenants, size_t k,
    diag::ConfidenceBand min_band) {
  struct Agg {
    std::set<std::string> names;
    double max_confidence = 0;
  };
  std::map<std::string, Agg> by_component;
  for (const SerialTenant& tenant : tenants) {
    for (const diag::RootCause& cause : tenant.report.causes) {
      const std::string subject =
          NameOrEmpty(*tenant.registry, cause.subject);
      if (subject.empty() || !BandAtLeast(cause.band, min_band)) continue;
      Agg& agg = by_component[subject];
      agg.names.insert(tenant.name);
      agg.max_confidence = std::max(agg.max_confidence, cause.confidence);
    }
  }
  std::vector<BruteImplicated> out;
  for (auto& [component, agg] : by_component) {
    BruteImplicated row;
    row.component = component;
    row.tenants = static_cast<int>(agg.names.size());
    row.max_confidence = agg.max_confidence;
    row.tenant_names.assign(agg.names.begin(), agg.names.end());
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const BruteImplicated& a, const BruteImplicated& b) {
              if (a.tenants != b.tenants) return a.tenants > b.tenants;
              if (a.max_confidence != b.max_confidence) {
                return a.max_confidence > b.max_confidence;
              }
              return a.component < b.component;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::map<std::pair<int, int>, int> BruteCooccurrence(
    const std::vector<SerialTenant>& tenants) {
  std::map<std::pair<int, int>, int> out;
  for (const SerialTenant& tenant : tenants) {
    std::set<int> types;
    for (const diag::RootCause& cause : tenant.report.causes) {
      types.insert(static_cast<int>(cause.type));
    }
    for (auto a = types.begin(); a != types.end(); ++a) {
      for (auto b = a; b != types.end(); ++b) ++out[{*a, *b}];
    }
  }
  return out;
}

/// All component names any tenant's report mentions (DA rows + cause
/// subjects) — the query universe the property sweeps.
std::set<std::string> AllMentionedComponents(
    const std::vector<SerialTenant>& tenants) {
  std::set<std::string> out;
  for (const SerialTenant& tenant : tenants) {
    for (const diag::MetricAnomaly& row : tenant.report.da.metrics) {
      const std::string name = NameOrEmpty(*tenant.registry, row.component);
      if (!name.empty()) out.insert(name);
    }
    for (const diag::RootCause& cause : tenant.report.causes) {
      const std::string name = NameOrEmpty(*tenant.registry, cause.subject);
      if (!name.empty()) out.insert(name);
    }
  }
  return out;
}

TEST(FleetPropertyTest, QueriesEqualBruteForceReDiagnosis) {
  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  SeededRng rng(0xf1ee7u);

  const std::vector<std::vector<ScenarioId>> mixes = {
      {ScenarioId::kS1SanMisconfiguration, ScenarioId::kS3DataPropertyChange},
      {ScenarioId::kS10RaidRebuild, ScenarioId::kS2DualExternalContention,
       ScenarioId::kS5LockingWithNoise},
      {ScenarioId::kS9CpuSaturation, ScenarioId::kS4ConcurrentDbSan},
  };

  for (int iteration = 0; iteration < 6; ++iteration) {
    FleetOptions options;
    options.scenarios = mixes[static_cast<size_t>(iteration) % mixes.size()];
    options.tenants = 2 + static_cast<int>(rng.Uniform(0, 3));  // 2-4.
    options.requests_per_tenant = 1;
    options.seed = 1000 + static_cast<uint64_t>(rng.Uniform(0, 100000));
    options.shuffle = false;
    options.scenario_options.satisfactory_runs = 10;
    options.scenario_options.unsatisfactory_runs = 5;
    // Cycle through all three engines so the fleet properties hold on
    // every backend (the property is backend-neutral by construction).
    const std::vector<db::BackendKind> kinds = db::AllBackendKinds();
    options.scenario_options.testbed.backend =
        kinds[static_cast<size_t>(iteration) % kinds.size()];
    Result<FleetWorkload> fleet = BuildFleet(options);
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(options.seed));

    // Engine-published store (the system under test).
    fleet::FleetStore store;
    engine::EngineOptions engine_options;
    engine_options.workers = 4;
    engine_options.fleet_store = &store;
    {
      engine::DiagnosisEngine engine(engine_options, &symptoms);
      std::vector<engine::DiagnosisResponse> responses =
          engine.BatchDiagnose(std::move(fleet->requests));
      for (const engine::DiagnosisResponse& response : responses) {
        ASSERT_TRUE(response.ok()) << response.status.ToString();
      }
      EXPECT_EQ(engine.Stats().fleet_publishes, fleet->tenants.size());
    }

    // Brute force: re-diagnose every tenant serially.
    std::vector<SerialTenant> serial;
    for (const workload::FleetTenant& tenant : fleet->tenants) {
      Result<diag::DiagnosisReport> report =
          SerialDiagnosis(tenant, diag::WorkflowConfig{}, &symptoms);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      serial.push_back(SerialTenant{tenant.name,
                                    &tenant.output->testbed->registry,
                                    std::move(*report)});
    }

    fleet::FleetQuery query(&store);

    // Q1: tenants sharing component X with anomalous metric M — swept
    // over every mentioned component, any-metric and one specific metric.
    for (const std::string& component : AllMentionedComponents(serial)) {
      // min_score 0 exercises the cause-only-component boundary: rows a
      // cause named but Module DA never scored must not match.
      for (double min_score : {kShareThreshold, 0.0}) {
        EXPECT_EQ(query.TenantsSharingComponent(component, std::nullopt,
                                                min_score),
                  BruteTenantsSharing(serial, component, std::nullopt,
                                      min_score))
            << "component " << component << " min_score " << min_score;
      }
      EXPECT_EQ(
          query.TenantsSharingComponent(
              component, monitor::MetricId::kVolReadLatencyMs, 0.5),
          BruteTenantsSharing(serial, component,
                              monitor::MetricId::kVolReadLatencyMs, 0.5))
          << "component " << component << " (read-latency)";
      for (diag::ConfidenceBand band :
           {diag::ConfidenceBand::kHigh, diag::ConfidenceBand::kLow}) {
        EXPECT_EQ(query.TenantsImplicating(component, band),
                  BruteTenantsImplicating(serial, component, band))
            << "component " << component << " (implicated, band "
            << static_cast<int>(band) << ")";
      }
    }

    // Q2: top-K implicated components — identical full ranking, at both
    // the any-cause and high-confidence-only bars.
    for (diag::ConfidenceBand band :
         {diag::ConfidenceBand::kHigh, diag::ConfidenceBand::kLow}) {
      for (size_t k : {size_t{1}, size_t{3}, size_t{100}}) {
        const std::vector<fleet::FleetQuery::ImplicatedComponent> got =
            query.TopImplicatedComponents(k, band);
        const std::vector<BruteImplicated> want =
            BruteTopImplicated(serial, k, band);
        ASSERT_EQ(got.size(), want.size()) << "k=" << k;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].component, want[i].component) << "k=" << k;
          EXPECT_EQ(got[i].tenants, want[i].tenants) << "k=" << k;
          EXPECT_DOUBLE_EQ(got[i].max_confidence, want[i].max_confidence);
          EXPECT_EQ(got[i].tenant_names, want[i].tenant_names) << "k=" << k;
        }
      }
    }

    // Q3: root-cause co-occurrence — identical non-zero cells.
    std::map<std::pair<int, int>, int> got_pairs;
    for (const fleet::FleetQuery::CauseCooccurrence& row :
         query.RootCauseCooccurrence()) {
      got_pairs[{static_cast<int>(row.a), static_cast<int>(row.b)}] =
          row.tenants;
    }
    EXPECT_EQ(got_pairs, BruteCooccurrence(serial));
  }
}

}  // namespace
}  // namespace diads
