// Extending the symptoms database — Section 7's "Machine Learning and
// Domain Knowledge Interplay".
//
// "An interesting course of future work is to enhance this relationship
// with machine learning techniques contributing towards identifying
// potential symptoms which can be checked by an expert and added to the
// symptoms database. ... this provides a self-evolving mechanism towards
// bettering the quality of the symptoms databases."
//
// This example walks that loop once:
//   1. run a RAID-rebuild incident against a symptoms database that has
//      never heard of RAID rebuilds (the entry is removed) — DIADS still
//      localises V1, but only with generic, medium-confidence causes;
//   2. harvest the machine-identified symptoms from the module results
//      (the correlated metrics and the unexplained rebuild events);
//   3. play the expert: write a new Codebook entry from those symptoms in
//      the symptom expression language and add it;
//   4. re-diagnose — the new entry names the cause at high confidence.
//
//   $ ./custom_symptoms
#include <cstdio>

#include "common/strings.h"
#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

namespace {

void PrintTop(const char* heading, const diag::DiagnosisReport& report,
              const ComponentRegistry& registry) {
  std::printf("%s\n", heading);
  size_t shown = 0;
  for (const diag::RootCause& cause : report.causes) {
    if (shown++ >= 3) break;
    std::printf("  %s%s%s — %.0f%% (%s)%s\n",
                diag::RootCauseTypeName(cause.type),
                registry.Contains(cause.subject) ? " on " : "",
                registry.Contains(cause.subject)
                    ? registry.NameOf(cause.subject).c_str()
                    : "",
                cause.confidence, diag::ConfidenceBandName(cause.band),
                cause.impact_pct.has_value()
                    ? StrFormat(", impact %.0f%%", *cause.impact_pct).c_str()
                    : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Simulating a RAID rebuild incident on V1's pool...\n\n");
  Result<workload::ScenarioOutput> scenario =
      workload::RunScenario(workload::ScenarioId::kS10RaidRebuild, {});
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const ComponentRegistry& registry = scenario->testbed->registry;
  diag::DiagnosisContext ctx = scenario->MakeContext();

  // --- 1. Diagnose with an incomplete database -----------------------------
  diag::SymptomsDb incomplete = diag::SymptomsDb::MakeDefault();
  if (!incomplete.RemoveEntry("raid-rebuild").ok()) {
    std::fprintf(stderr, "cannot remove entry\n");
    return 1;
  }
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &incomplete);
  Result<diag::DiagnosisReport> before = workflow.Diagnose();
  if (!before.ok()) {
    std::fprintf(stderr, "diagnosis failed\n");
    return 1;
  }
  PrintTop("WITHOUT a raid-rebuild entry (the DB has never seen this "
           "failure mode):",
           *before, registry);

  // --- 2. Harvest machine-identified symptoms ------------------------------
  std::printf("Machine-identified symptoms the expert reviews:\n");
  for (const diag::MetricAnomaly& m : before->da.metrics) {
    if (!m.correlated) continue;
    if (registry.KindOf(m.component) != ComponentKind::kVolume) continue;
    std::printf("  metric_anomaly(component=%s, metric=%s)   score %.2f, "
                "corr %+.2f\n",
                registry.NameOf(m.component).c_str(),
                monitor::MetricShortName(m.metric), m.anomaly_score,
                m.correlation);
  }
  for (const SystemEvent& event :
       ctx.events->EventsOfTypeIn(EventType::kRaidRebuildStarted,
                                  ctx.AnalysisWindow())) {
    std::printf("  unexplained event: %s (%s)\n",
                EventTypeName(event.type), event.description.c_str());
  }
  std::printf("\n");

  // --- 3. The expert writes a new Codebook entry ---------------------------
  std::printf("Expert adds entry 'rebuild-interference' from those "
              "symptoms...\n\n");
  Status added = incomplete.AddEntry(
      "rebuild-interference", diag::RootCauseType::kRaidRebuild,
      /*bind_volumes=*/true,
      {
          {"event_near(type=RaidRebuildStarted, volume=$V)", 35},
          {"volume_metric_anomaly(volume=$V)", 25},
          {"op_anomaly_majority(volume=$V)", 20},
          {"before(event(type=RaidRebuildStarted), "
           "event(type=VolumePerfDegraded))", 10},
          {"no_plan_change()", 5},
          {"not record_count_change()", 5},
      });
  if (!added.ok()) {
    std::fprintf(stderr, "entry rejected: %s\n", added.ToString().c_str());
    return 1;
  }

  // --- 4. Re-diagnose -------------------------------------------------------
  Result<diag::DiagnosisReport> after = workflow.Diagnose();
  if (!after.ok()) {
    std::fprintf(stderr, "diagnosis failed\n");
    return 1;
  }
  PrintTop("WITH the new entry:", *after, registry);

  const diag::RootCause* top = after->TopCause();
  if (top != nullptr && top->type == diag::RootCauseType::kRaidRebuild) {
    std::printf("The database has evolved: the incident is now named at "
                "%.0f%% confidence.\n",
                top->confidence);
  }
  return 0;
}
