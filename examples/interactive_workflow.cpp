// Interactive workflow session — the Figure 7 experience on a terminal.
//
// Drives the InteractiveSession with commands from stdin (or, with
// --scripted, a canned session), mirroring the paper's screen: module
// buttons that unlock in order on the first pass, free re-execution
// afterwards, and administrator edits to the correlated operator set.
//
//   $ ./interactive_workflow --scripted     # run the canned session
//   $ ./interactive_workflow                # type commands: pd co da cr sd
//                                           # ia, drop <n>, add <n>, quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;
using diag::InteractiveSession;

namespace {

void PrintHelp() {
  std::printf(
      "commands: pd | co | da | cr | sd | ia   run a module\n"
      "          next                          run the next module in order\n"
      "          drop <opnum> / add <opnum>    edit the COS\n"
      "          help | quit\n");
}

bool ParseModule(const std::string& token, InteractiveSession::Module* out) {
  using Module = InteractiveSession::Module;
  if (token == "pd") *out = Module::kPd;
  else if (token == "co") *out = Module::kCo;
  else if (token == "da") *out = Module::kDa;
  else if (token == "cr") *out = Module::kCr;
  else if (token == "sd") *out = Module::kSd;
  else if (token == "ia") *out = Module::kIa;
  else return false;
  return true;
}

void Execute(InteractiveSession& session, const std::string& line) {
  std::istringstream in(line);
  std::string token;
  if (!(in >> token)) return;
  if (token == "help") {
    PrintHelp();
    return;
  }
  if (token == "drop" || token == "add") {
    int op_number = 0;
    if (!(in >> op_number)) {
      std::printf("usage: %s <operator-number>\n", token.c_str());
      return;
    }
    Status status = token == "drop" ? session.RemoveFromCos(op_number)
                                    : session.AddToCos(op_number);
    std::printf("%s\n", status.ok()
                            ? "done (re-run da/cr/sd/ia to propagate)"
                            : status.ToString().c_str());
    return;
  }
  InteractiveSession::Module module;
  if (token == "next") {
    auto next = session.NextModule();
    if (!next.has_value()) {
      std::printf("all modules have run; re-run any by name\n");
      return;
    }
    module = *next;
  } else if (!ParseModule(token, &module)) {
    std::printf("unknown command '%s' (try help)\n", token.c_str());
    return;
  }
  Result<std::string> panel = session.Run(module);
  std::printf("%s\n", panel.ok() ? panel->c_str()
                                 : panel.status().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool scripted = argc > 1 && std::strcmp(argv[1], "--scripted") == 0;

  std::printf("Simulating scenario 1 (SAN misconfiguration on V1)...\n");
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {});
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  InteractiveSession session(scenario->MakeContext(), diag::WorkflowConfig{},
                             &symptoms);

  if (scripted) {
    // The canned session: full first pass, then the paper's "administrator
    // can edit these results" move — drop a V2 false positive from the COS
    // and re-run the downstream modules.
    const std::vector<std::string> script = {
        "pd", "co", "da", "cr", "sd", "ia",
        "drop 7", "da", "sd", "ia"};
    for (const std::string& line : script) {
      std::printf("\ndiads> %s\n", line.c_str());
      Execute(session, line);
    }
    return 0;
  }

  PrintHelp();
  std::string line;
  while (true) {
    std::printf("diads> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    Execute(session, line);
  }
  return 0;
}
