// Serving DIADS at fleet scale: the concurrent diagnosis engine.
//
// Builds a small fleet of tenants (each a Figure-1 testbed running one of
// the Table-1 scenarios), starts a DiagnosisEngine with a worker pool,
// result cache, and an async SAN collector (simulated backend: 2ms per
// component round-trip, each tenant's V1 at 10x — the one wedged agent an
// overlapped gather hides), fans the fleet's request stream across it,
// and prints the per-tenant diagnoses plus the engine's serving metrics —
// the multi-tenant counterpart of examples/quickstart.cpp.
//
// With --trace-out the run records every diagnosis as a span tree
// (submit -> queue wait -> gather -> per-component fetches -> workflow
// modules -> fleet publish) and writes a Chrome trace-event JSON you can
// open at chrome://tracing or https://ui.perfetto.dev. With --metrics-out
// it scrapes the unified metrics registry (engine + fleet-store sources)
// into a JSON snapshot, plus Prometheus text exposition alongside at
// <path>.prom. The engine's own health series (throughput, queue depth,
// latency quantiles) are appended into a dedicated TimeSeriesStore — the
// self-monitoring loop that lets DIADS be pointed at itself.
//
// With --detect the run additionally replays every tenant's monitoring
// stream through the always-on SlowdownDetector (append -> sketch ->
// incident -> auto-diagnosis against the same live engine): incidents
// land as "detect_incident" spans in the trace export and the detector's
// diads_detect_* families join the metrics scrape.
//
// With --flood the fleet is replaced by the adversarial mix: one tenant
// bursts deadline-carrying requests at the engine while four victims ask
// their own questions, the result cache and coalescing are disabled so
// the flood actually floods, and the per-tenant admission table shows
// who was admitted, refused (tenant share), or shed (deadline).
//
// With --log-dir=DIR the fleet store is crash-durable: existing segments
// are replayed into the store before serving (replay stats printed), and
// every publish is appended to the log.
//
// Exit codes: 0 = every request served; 3 = some requests were refused
// by tenant-share admission (kResourceExhausted); 4 = some queued
// requests were shed past their deadline (kDeadlineExceeded); 5 = some
// requests failed outright; 1 = setup/run error; 2 = bad arguments.
// (3/4 report load-management outcomes, not malfunctions: under --flood
// they are the expected result.)
//
//   $ ./engine_serving [workers] [seed] [--trace-out=trace.json]
//                      [--metrics-out=metrics.json] [--detect] [--flood]
//                      [--log-dir=DIR]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table_printer.h"
#include "detect/detector.h"
#include "detect/metrics.h"
#include "diads/workflow.h"
#include "engine/engine.h"
#include "engine/metrics_export.h"
#include "engine/self_monitor.h"
#include "fleet/log.h"
#include "fleet/metrics.h"
#include "fleet/store.h"
#include "monitor/async_collector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/detect_replay.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

void Accumulate(detect::DetectorStats& into,
                const detect::DetectorStats& stats) {
  into.appends_observed += stats.appends_observed;
  into.appends_scored += stats.appends_scored;
  into.series_tracked += stats.series_tracked;
  into.series_calibrated += stats.series_calibrated;
  into.band_crossings += stats.band_crossings;
  into.confirmations += stats.confirmations;
  into.incidents_opened += stats.incidents_opened;
  into.incidents_closed += stats.incidents_closed;
  into.suppressed_active += stats.suppressed_active;
  into.suppressed_cooldown += stats.suppressed_cooldown;
  into.diagnoses_submitted += stats.diagnoses_submitted;
  into.active_incidents += stats.active_incidents;
  into.watched_tenants += stats.watched_tenants;
}

}  // namespace

int main(int argc, char** argv) {
  engine::EngineOptions engine_options;
  workload::FleetOptions fleet_options;
  fleet_options.tenants = 5;
  fleet_options.requests_per_tenant = 4;

  std::string trace_out;
  std::string metrics_out;
  std::string log_dir;
  bool detect_mode = false;
  bool flood_mode = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--log-dir=", 10) == 0) {
      log_dir = arg + 10;
    } else if (std::strcmp(arg, "--detect") == 0) {
      detect_mode = true;
    } else if (std::strcmp(arg, "--flood") == 0) {
      flood_mode = true;
    } else if (positional == 0) {
      engine_options.workers = std::atoi(arg);
      ++positional;
    } else if (positional == 1) {
      fleet_options.seed = static_cast<uint64_t>(std::atoll(arg));
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  Result<workload::FleetWorkload> fleet = [&] {
    if (!flood_mode) {
      std::printf("Building a %d-tenant fleet (Table-1 scenarios)...\n",
                  fleet_options.tenants);
      return workload::BuildFleet(fleet_options);
    }
    // Adversarial mix: a flooding tenant bursts deadline-carrying
    // requests ahead of four victims. Cache and coalescing off so the
    // identical flood requests all genuinely occupy the queue.
    workload::FloodingFleetOptions flood_options;
    flood_options.seed = fleet_options.seed;
    flood_options.flood_requests = 24;
    flood_options.requests_per_victim = 2;
    flood_options.flood_deadline_ms = 2000;
    engine_options.enable_cache = false;
    engine_options.coalesce_identical = false;
    engine_options.queue_capacity = 16;
    engine_options.fairness.tenant_share_fraction = 0.5;
    std::printf(
        "Building the flooding fleet (1 flooder x %d requests, "
        "%d victims x %d)...\n",
        flood_options.flood_requests, flood_options.victim_tenants,
        flood_options.requests_per_victim);
    return workload::BuildFloodingFleet(flood_options);
  }();
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  auto collector = std::make_shared<monitor::SimulatedSanCollector>(
      workload::MakeSkewedLatencyProfile(*fleet, /*base_ms=*/2,
                                         /*slow_factor=*/10));
  fleet::FleetStore fleet_store;
  obs::Tracer tracer;
  engine_options.fleet_store = &fleet_store;
  if (!trace_out.empty()) engine_options.tracer = &tracer;

  // Crash-durable fleet store: replay whatever a previous run (or crash)
  // left in the log, then attach so this run's publishes are appended.
  std::unique_ptr<fleet::SegmentLog> fleet_log;
  if (!log_dir.empty()) {
    const fleet::ReplayStats replay =
        fleet::RecoverFromLog(log_dir, &fleet_store);
    std::printf("%s", replay.Render().c_str());
    fleet::LogOptions log_options;
    log_options.dir = log_dir;
    Result<std::unique_ptr<fleet::SegmentLog>> opened =
        fleet::SegmentLog::Open(std::move(log_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "fleet log open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    fleet_log = std::move(opened).value();
    fleet_store.AttachLog(fleet_log.get());
  }

  engine::DiagnosisEngine engine(engine_options, &symptoms, collector);

  // Unified registry: every engine + fleet-store counter, one scrape.
  obs::MetricsRegistry registry;
  engine::RegisterEngineMetrics(&registry, &engine);
  fleet::RegisterFleetStoreMetrics(&registry, &fleet_store);
  if (fleet_log != nullptr) {
    fleet::RegisterFleetLogMetrics(&registry, fleet_log.get());
  }

  // Self-monitoring: the engine's own health as ordinary time series in a
  // dedicated store, at the paper's 5-minute monitoring interval.
  monitor::TimeSeriesStore engine_health;
  const ComponentId self{0};
  SimTimeMs sim_now = 0;
  engine::SampleEngineHealth(engine, self, sim_now, &engine_health);

  std::printf("Submitting %zu diagnosis requests to %d workers...\n\n",
              fleet->requests.size(), engine_options.workers);
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(fleet->requests));
  sim_now += 5 * 60 * 1000;
  engine::SampleEngineHealth(engine, self, sim_now, &engine_health);

  // One line per tenant: the first response carrying its report. Load-
  // management refusals (admission, deadline shed) are reported as such,
  // not as failures — their counts decide the exit code below.
  size_t admission_rejected = 0, deadline_shed = 0, hard_failures = 0;
  std::vector<bool> seen(fleet->tenants.size(), false);
  for (size_t i = 0; i < responses.size(); ++i) {
    const engine::DiagnosisResponse& response = responses[i];
    const size_t t = fleet->tenant_of_request[i];
    if (!response.ok()) {
      const char* outcome = "FAILED";
      switch (response.status.code()) {
        case StatusCode::kResourceExhausted:
          ++admission_rejected;
          outcome = "REFUSED (admission)";
          break;
        case StatusCode::kDeadlineExceeded:
          ++deadline_shed;
          outcome = "SHED (deadline)";
          break;
        default:
          ++hard_failures;
          break;
      }
      std::printf("%-28s %s: %s\n", fleet->tenants[t].name.c_str(), outcome,
                  response.status.ToString().c_str());
      continue;
    }
    if (seen[t]) continue;
    seen[t] = true;
    const diag::RootCause* top = response.report->TopCause();
    std::printf("%-28s %s%s%s\n", fleet->tenants[t].name.c_str(),
                top != nullptr ? diag::RootCauseTypeName(top->type)
                               : "(no cause above the reporting floor)",
                response.cache_hit ? "  [cache hit]" : "",
                response.stale_data() ? "  [stale data]" : "");
  }

  // Per-tenant admission accounting: who flooded, who was protected.
  {
    const std::vector<engine::TenantAdmissionRow> rows =
        engine.TenantAdmission();
    bool any_activity = false;
    for (const engine::TenantAdmissionRow& row : rows) {
      if (row.rejected_share + row.shed_deadline > 0) any_activity = true;
    }
    if (flood_mode || any_activity) {
      TablePrinter table({"tenant", "weight", "submitted", "admitted",
                          "rejected", "shed", "dispatched"});
      for (const engine::TenantAdmissionRow& row : rows) {
        table.AddRow({row.tenant.empty() ? "(untagged)" : row.tenant,
                      StrFormat("%.1f", row.weight),
                      StrFormat("%llu", (unsigned long long)row.submitted),
                      StrFormat("%llu", (unsigned long long)row.admitted),
                      StrFormat("%llu",
                                (unsigned long long)row.rejected_share),
                      StrFormat("%llu",
                                (unsigned long long)row.shed_deadline),
                      StrFormat("%llu",
                                (unsigned long long)row.dispatched)});
      }
      std::printf("\nPer-tenant admission summary:\n%s",
                  table.Render().c_str());
    }
  }

  // Where did the first computed diagnosis spend its time?
  for (const engine::DiagnosisResponse& response : responses) {
    if (response.ok() && response.cost != nullptr &&
        !response.cost->result_cache_hit && !response.cost->coalesced) {
      std::printf("\nCost profile of one cold diagnosis:\n%s",
                  response.cost->Render().c_str());
      break;
    }
  }

  if (detect_mode) {
    // Always-on detection: replay each tenant's monitoring stream through
    // the SlowdownDetector against the same live engine. Auto-submitted
    // questions share the engine's cache/single-flight with the
    // administrator requests above.
    std::printf("\nAlways-on detection (per-tenant replay):\n");
    detect::DetectorStats detect_totals;
    for (const workload::FleetTenant& tenant : fleet->tenants) {
      workload::DetectionReplayOptions replay_options;
      if (!trace_out.empty()) replay_options.tracer = &tracer;
      Result<workload::DetectionReplayResult> replay =
          workload::ReplayScenarioDetection(*tenant.output, tenant.name,
                                            &engine, replay_options);
      if (!replay.ok()) {
        std::fprintf(stderr, "detection replay failed for %s: %s\n",
                     tenant.name.c_str(),
                     replay.status().ToString().c_str());
        return 1;
      }
      Accumulate(detect_totals, replay->stats);
      size_t diagnosed = 0;
      for (const engine::DiagnosisResponse& response : replay->responses) {
        if (response.ok()) ++diagnosed;
      }
      std::printf(
          "%-28s %zu incident(s), %zu auto-diagnosis(es), "
          "detection latency %.1f min\n",
          tenant.name.c_str(), replay->incidents.size(), diagnosed,
          replay->detection_latency >= 0
              ? static_cast<double>(replay->detection_latency) / 60000.0
              : -1.0);
    }
    // The per-replay detectors are gone; scrape their summed final
    // snapshot as the diads_detect_* families.
    registry.AddSource([detect_totals](obs::MetricsEmitter& emitter) {
      detect::EmitDetectorSnapshot(detect_totals, {}, emitter);
    });
  }

  std::printf("\n%s", engine.Stats().Render().c_str());
  std::printf("engine health store: %zu series, %zu samples "
              "(self-monitoring tenant)\n",
              engine_health.series_count(), engine_health.total_samples());

  if (!trace_out.empty()) {
    if (!WriteFile(trace_out, tracer.ExportChromeTrace())) return 1;
    std::printf("wrote %zu spans to %s\n", tracer.span_count(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!WriteFile(metrics_out, registry.ToJson())) return 1;
    if (!WriteFile(metrics_out + ".prom", registry.RenderPrometheus())) {
      return 1;
    }
    std::printf("wrote metrics snapshot to %s (+ .prom)\n",
                metrics_out.c_str());
  }

  if (fleet_log != nullptr) {
    fleet_store.DetachLog();
    std::printf("\n%s", fleet_log->Counters().Render().c_str());
  }

  // Distinct exit codes so callers (and CI) can tell load-management
  // refusals from genuine failures. Precedence: hard failure > shed >
  // admission-refused. The default invocation serves everything → 0.
  if (hard_failures > 0) return 5;
  if (deadline_shed > 0) return 4;
  if (admission_rejected > 0) return 3;
  return 0;
}
