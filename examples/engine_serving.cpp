// Serving DIADS at fleet scale: the concurrent diagnosis engine.
//
// Builds a small fleet of tenants (each a Figure-1 testbed running one of
// the Table-1 scenarios), starts a DiagnosisEngine with a worker pool,
// result cache, and an async SAN collector (simulated backend: 2ms per
// component round-trip, each tenant's V1 at 10x — the one wedged agent an
// overlapped gather hides), fans the fleet's request stream across it,
// and prints the per-tenant diagnoses plus the engine's serving metrics —
// the multi-tenant counterpart of examples/quickstart.cpp.
//
//   $ ./engine_serving [workers] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "diads/workflow.h"
#include "engine/engine.h"
#include "monitor/async_collector.h"
#include "workload/fleet.h"

using namespace diads;

int main(int argc, char** argv) {
  engine::EngineOptions engine_options;
  if (argc > 1) engine_options.workers = std::atoi(argv[1]);

  workload::FleetOptions fleet_options;
  fleet_options.tenants = 5;
  fleet_options.requests_per_tenant = 4;
  if (argc > 2) {
    fleet_options.seed = static_cast<uint64_t>(std::atoll(argv[2]));
  }

  std::printf("Building a %d-tenant fleet (Table-1 scenarios)...\n",
              fleet_options.tenants);
  Result<workload::FleetWorkload> fleet =
      workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  auto collector = std::make_shared<monitor::SimulatedSanCollector>(
      workload::MakeSkewedLatencyProfile(*fleet, /*base_ms=*/2,
                                         /*slow_factor=*/10));
  engine::DiagnosisEngine engine(engine_options, &symptoms, collector);
  std::printf("Submitting %zu diagnosis requests to %d workers...\n\n",
              fleet->requests.size(), engine_options.workers);
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(fleet->requests));

  // One line per tenant: the first response carrying its report.
  std::vector<bool> seen(fleet->tenants.size(), false);
  for (size_t i = 0; i < responses.size(); ++i) {
    const engine::DiagnosisResponse& response = responses[i];
    const size_t t = fleet->tenant_of_request[i];
    if (!response.ok()) {
      std::printf("%-28s FAILED: %s\n", fleet->tenants[t].name.c_str(),
                  response.status.ToString().c_str());
      continue;
    }
    if (seen[t]) continue;
    seen[t] = true;
    const diag::RootCause* top = response.report->TopCause();
    std::printf("%-28s %s%s%s\n", fleet->tenants[t].name.c_str(),
                top != nullptr ? diag::RootCauseTypeName(top->type)
                               : "(no cause above the reporting floor)",
                response.cache_hit ? "  [cache hit]" : "",
                response.stale_data() ? "  [stale data]" : "");
  }

  std::printf("\n%s", engine.Stats().Render().c_str());
  return 0;
}
