// Serving DIADS at fleet scale: the concurrent diagnosis engine.
//
// Builds a small fleet of tenants (each a Figure-1 testbed running one of
// the Table-1 scenarios), starts a DiagnosisEngine with a worker pool,
// result cache, and an async SAN collector (simulated backend: 2ms per
// component round-trip, each tenant's V1 at 10x — the one wedged agent an
// overlapped gather hides), fans the fleet's request stream across it,
// and prints the per-tenant diagnoses plus the engine's serving metrics —
// the multi-tenant counterpart of examples/quickstart.cpp.
//
// With --trace-out the run records every diagnosis as a span tree
// (submit -> queue wait -> gather -> per-component fetches -> workflow
// modules -> fleet publish) and writes a Chrome trace-event JSON you can
// open at chrome://tracing or https://ui.perfetto.dev. With --metrics-out
// it scrapes the unified metrics registry (engine + fleet-store sources)
// into a JSON snapshot, plus Prometheus text exposition alongside at
// <path>.prom. The engine's own health series (throughput, queue depth,
// latency quantiles) are appended into a dedicated TimeSeriesStore — the
// self-monitoring loop that lets DIADS be pointed at itself.
//
// With --detect the run additionally replays every tenant's monitoring
// stream through the always-on SlowdownDetector (append -> sketch ->
// incident -> auto-diagnosis against the same live engine): incidents
// land as "detect_incident" spans in the trace export and the detector's
// diads_detect_* families join the metrics scrape.
//
//   $ ./engine_serving [workers] [seed] [--trace-out=trace.json]
//                      [--metrics-out=metrics.json] [--detect]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "detect/metrics.h"
#include "diads/workflow.h"
#include "engine/engine.h"
#include "engine/metrics_export.h"
#include "engine/self_monitor.h"
#include "fleet/metrics.h"
#include "fleet/store.h"
#include "monitor/async_collector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/detect_replay.h"
#include "workload/fleet.h"

using namespace diads;

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

void Accumulate(detect::DetectorStats& into,
                const detect::DetectorStats& stats) {
  into.appends_observed += stats.appends_observed;
  into.appends_scored += stats.appends_scored;
  into.series_tracked += stats.series_tracked;
  into.series_calibrated += stats.series_calibrated;
  into.band_crossings += stats.band_crossings;
  into.confirmations += stats.confirmations;
  into.incidents_opened += stats.incidents_opened;
  into.incidents_closed += stats.incidents_closed;
  into.suppressed_active += stats.suppressed_active;
  into.suppressed_cooldown += stats.suppressed_cooldown;
  into.diagnoses_submitted += stats.diagnoses_submitted;
  into.active_incidents += stats.active_incidents;
  into.watched_tenants += stats.watched_tenants;
}

}  // namespace

int main(int argc, char** argv) {
  engine::EngineOptions engine_options;
  workload::FleetOptions fleet_options;
  fleet_options.tenants = 5;
  fleet_options.requests_per_tenant = 4;

  std::string trace_out;
  std::string metrics_out;
  bool detect_mode = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strcmp(arg, "--detect") == 0) {
      detect_mode = true;
    } else if (positional == 0) {
      engine_options.workers = std::atoi(arg);
      ++positional;
    } else if (positional == 1) {
      fleet_options.seed = static_cast<uint64_t>(std::atoll(arg));
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  std::printf("Building a %d-tenant fleet (Table-1 scenarios)...\n",
              fleet_options.tenants);
  Result<workload::FleetWorkload> fleet =
      workload::BuildFleet(fleet_options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet build failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  const diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  auto collector = std::make_shared<monitor::SimulatedSanCollector>(
      workload::MakeSkewedLatencyProfile(*fleet, /*base_ms=*/2,
                                         /*slow_factor=*/10));
  fleet::FleetStore fleet_store;
  obs::Tracer tracer;
  engine_options.fleet_store = &fleet_store;
  if (!trace_out.empty()) engine_options.tracer = &tracer;

  engine::DiagnosisEngine engine(engine_options, &symptoms, collector);

  // Unified registry: every engine + fleet-store counter, one scrape.
  obs::MetricsRegistry registry;
  engine::RegisterEngineMetrics(&registry, &engine);
  fleet::RegisterFleetStoreMetrics(&registry, &fleet_store);

  // Self-monitoring: the engine's own health as ordinary time series in a
  // dedicated store, at the paper's 5-minute monitoring interval.
  monitor::TimeSeriesStore engine_health;
  const ComponentId self{0};
  SimTimeMs sim_now = 0;
  engine::SampleEngineHealth(engine, self, sim_now, &engine_health);

  std::printf("Submitting %zu diagnosis requests to %d workers...\n\n",
              fleet->requests.size(), engine_options.workers);
  std::vector<engine::DiagnosisResponse> responses =
      engine.BatchDiagnose(std::move(fleet->requests));
  sim_now += 5 * 60 * 1000;
  engine::SampleEngineHealth(engine, self, sim_now, &engine_health);

  // One line per tenant: the first response carrying its report.
  std::vector<bool> seen(fleet->tenants.size(), false);
  for (size_t i = 0; i < responses.size(); ++i) {
    const engine::DiagnosisResponse& response = responses[i];
    const size_t t = fleet->tenant_of_request[i];
    if (!response.ok()) {
      std::printf("%-28s FAILED: %s\n", fleet->tenants[t].name.c_str(),
                  response.status.ToString().c_str());
      continue;
    }
    if (seen[t]) continue;
    seen[t] = true;
    const diag::RootCause* top = response.report->TopCause();
    std::printf("%-28s %s%s%s\n", fleet->tenants[t].name.c_str(),
                top != nullptr ? diag::RootCauseTypeName(top->type)
                               : "(no cause above the reporting floor)",
                response.cache_hit ? "  [cache hit]" : "",
                response.stale_data() ? "  [stale data]" : "");
  }

  // Where did the first computed diagnosis spend its time?
  for (const engine::DiagnosisResponse& response : responses) {
    if (response.ok() && response.cost != nullptr &&
        !response.cost->result_cache_hit && !response.cost->coalesced) {
      std::printf("\nCost profile of one cold diagnosis:\n%s",
                  response.cost->Render().c_str());
      break;
    }
  }

  if (detect_mode) {
    // Always-on detection: replay each tenant's monitoring stream through
    // the SlowdownDetector against the same live engine. Auto-submitted
    // questions share the engine's cache/single-flight with the
    // administrator requests above.
    std::printf("\nAlways-on detection (per-tenant replay):\n");
    detect::DetectorStats detect_totals;
    for (const workload::FleetTenant& tenant : fleet->tenants) {
      workload::DetectionReplayOptions replay_options;
      if (!trace_out.empty()) replay_options.tracer = &tracer;
      Result<workload::DetectionReplayResult> replay =
          workload::ReplayScenarioDetection(*tenant.output, tenant.name,
                                            &engine, replay_options);
      if (!replay.ok()) {
        std::fprintf(stderr, "detection replay failed for %s: %s\n",
                     tenant.name.c_str(),
                     replay.status().ToString().c_str());
        return 1;
      }
      Accumulate(detect_totals, replay->stats);
      size_t diagnosed = 0;
      for (const engine::DiagnosisResponse& response : replay->responses) {
        if (response.ok()) ++diagnosed;
      }
      std::printf(
          "%-28s %zu incident(s), %zu auto-diagnosis(es), "
          "detection latency %.1f min\n",
          tenant.name.c_str(), replay->incidents.size(), diagnosed,
          replay->detection_latency >= 0
              ? static_cast<double>(replay->detection_latency) / 60000.0
              : -1.0);
    }
    // The per-replay detectors are gone; scrape their summed final
    // snapshot as the diads_detect_* families.
    registry.AddSource([detect_totals](obs::MetricsEmitter& emitter) {
      detect::EmitDetectorSnapshot(detect_totals, {}, emitter);
    });
  }

  std::printf("\n%s", engine.Stats().Render().c_str());
  std::printf("engine health store: %zu series, %zu samples "
              "(self-monitoring tenant)\n",
              engine_health.series_count(), engine_health.total_samples());

  if (!trace_out.empty()) {
    if (!WriteFile(trace_out, tracer.ExportChromeTrace())) return 1;
    std::printf("wrote %zu spans to %s\n", tracer.span_count(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!WriteFile(metrics_out, registry.ToJson())) return 1;
    if (!WriteFile(metrics_out + ".prom", registry.RenderPrometheus())) {
      return 1;
    }
    std::printf("wrote metrics snapshot to %s (+ .prom)\n",
                metrics_out.c_str());
  }
  return 0;
}
