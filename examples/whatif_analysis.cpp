// What-if analysis — the Section 7 extension.
//
// "Using techniques developed in our work, it is easy to conceive an
// integrated database and SAN tool that allows administrators to
// proactively assess the impact of their planned changes on the other
// layer." This example does exactly that with the building blocks of the
// library: before applying a change, it clones the Figure-1 testbed,
// applies the change there, re-runs the report query, and reports the
// predicted impact on the other layer.
//
// Three planned changes are assessed:
//   1. SAN admin: provision a new 150 GB volume for another application —
//      in pool P1 vs. pool P2 (the scenario-1 mistake, caught in advance);
//   2. DBA: drop the partsupp_partkey_idx index (plan impact probed via the
//      optimizer, the Module PD machinery in reverse);
//   3. DBA: halve the buffer pool (I/O pushed onto the SAN).
//
//   $ ./whatif_analysis
#include <cstdio>

#include "common/strings.h"
#include "db/optimizer.h"
#include "workload/testbed.h"

using namespace diads;

namespace {

/// Mean duration of `n` Q2 runs spaced an hour apart starting at `t0`,
/// using `plan` (nullptr = the Figure-1 paper plan).
Result<double> MeanRunMs(workload::Testbed& tb, SimTimeMs t0, int n,
                         std::shared_ptr<const db::Plan> plan = nullptr) {
  double total = 0;
  for (int i = 0; i < n; ++i) {
    DIADS_ASSIGN_OR_RETURN(int run_id, tb.RunQ2(t0 + Hours(i), plan));
    DIADS_ASSIGN_OR_RETURN(const db::QueryRunRecord* run,
                           tb.runs.FindRun(run_id));
    total += static_cast<double>(run->duration_ms());
  }
  return total / n;
}

Result<double> BaselineMs(const workload::TestbedOptions& options) {
  DIADS_ASSIGN_OR_RETURN(std::unique_ptr<workload::Testbed> tb,
                         workload::BuildFigure1Testbed(options));
  return MeanRunMs(*tb, Hours(8), 5);
}

}  // namespace

int main() {
  workload::TestbedOptions options;
  Result<double> baseline = BaselineMs(options);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("Baseline: Q2 mean duration %s\n\n",
              FormatDuration(static_cast<SimTimeMs>(*baseline)).c_str());

  // --- Change 1: where should the new application volume go? --------------
  std::printf("WHAT-IF 1 (SAN admin): provision a 150 GB volume with a "
              "100-write/s workload. P1 or P2?\n");
  for (const char* pool_name : {"P1", "P2"}) {
    auto tb = workload::BuildFigure1Testbed(options).value();
    ComponentId pool = tb->registry.FindByName(pool_name).value();
    ComponentId v_new =
        tb->config_db.ProvisionVolume(Hours(7), "V-planned", pool, 150)
            .value();
    san::LoadEvent load;
    load.volume = v_new;
    load.interval = TimeInterval{Hours(7), Hours(20)};
    load.profile.write_iops = 100;
    load.profile.read_iops = 20;
    (void)tb->perf_model.AddLoad(load);
    Result<double> with_change = MeanRunMs(*tb, Hours(8), 5);
    if (!with_change.ok()) continue;
    const double delta = (*with_change / *baseline - 1.0) * 100.0;
    std::printf("  in %s: Q2 mean %s (%+.0f%% vs baseline)%s\n", pool_name,
                FormatDuration(static_cast<SimTimeMs>(*with_change)).c_str(),
                delta,
                delta > 25 ? "  <- would trigger the scenario-1 ticket!"
                           : "");
  }
  std::printf("  Verdict: place the volume in P2 (P1 shares disks with the "
              "partsupp tablespace).\n\n");

  // --- Change 2: dropping an index ----------------------------------------
  std::printf("WHAT-IF 2 (DBA): drop partsupp_partkey_idx?\n");
  {
    auto tb = workload::BuildFigure1Testbed(options).value();
    db::Plan before = tb->OptimizeQ2().value();
    // Optimizer-plan baseline (the index drop changes the plan itself, so
    // the comparison must run the plan the optimizer would really pick).
    Result<double> opt_baseline = MeanRunMs(
        *tb, Hours(8), 5,
        std::make_shared<const db::Plan>(tb->OptimizeQ2().value()));
    (void)tb->catalog.SetIndexDroppedSilently("partsupp_partkey_idx", true);
    db::Plan after = tb->OptimizeQ2().value();
    std::printf("  plan changes: %s (cost %.0f -> %.0f)\n",
                before.Fingerprint() != after.Fingerprint() ? "YES" : "no",
                before.op(before.root_index()).est_cost,
                after.op(after.root_index()).est_cost);
    Result<double> with_change =
        MeanRunMs(*tb, Hours(20), 5,
                  std::make_shared<const db::Plan>(std::move(after)));
    if (with_change.ok() && opt_baseline.ok()) {
      std::printf("  measured Q2 mean: %s -> %s (%+.0f%%)\n",
                  FormatDuration(static_cast<SimTimeMs>(*opt_baseline)).c_str(),
                  FormatDuration(static_cast<SimTimeMs>(*with_change)).c_str(),
                  (*with_change / *opt_baseline - 1.0) * 100.0);
    }
  }
  std::printf("\n");

  // --- Change 3: halving the buffer pool ----------------------------------
  std::printf("WHAT-IF 3 (DBA): halve the buffer pool (%.0f -> %.0f MB)?\n",
              options.buffer_pool_mb, options.buffer_pool_mb / 2);
  {
    auto tb = workload::BuildFigure1Testbed(options).value();
    tb->buffer_pool.set_size_mb(options.buffer_pool_mb / 2);
    Result<double> with_change = MeanRunMs(*tb, Hours(8), 5);
    if (with_change.ok()) {
      std::printf("  Q2 mean %s (%+.0f%%) — the extra misses land on V1's "
                  "disks, i.e. the DBA's change shows up in the SAN layer.\n",
                  FormatDuration(static_cast<SimTimeMs>(*with_change)).c_str(),
                  (*with_change / *baseline - 1.0) * 100.0);
    }
  }
  return 0;
}
