// Quickstart: diagnose the paper's headline scenario end to end.
//
// Builds the Figure-1 testbed, lets the report query run happily for a
// while, injects the scenario-1 fault (a SAN misconfiguration that maps a
// new volume V' onto V1's physical disks), and asks DIADS: why did my query
// slow down?
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "diads/workflow.h"
#include "workload/scenario.h"

using namespace diads;

int main(int argc, char** argv) {
  workload::ScenarioOptions options;
  if (argc > 1) options.seed = static_cast<uint64_t>(std::atoll(argv[1]));

  std::printf("Building the Figure-1 testbed and running scenario 1 "
              "(seed %llu)...\n",
              static_cast<unsigned long long>(options.seed));
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  // Show the run history the administrator would look at (Figure 3).
  const db::RunCatalog& runs = scenario->testbed->runs;
  double sat_mean = 0, unsat_mean = 0;
  int sat_n = 0, unsat_n = 0;
  for (const db::QueryRunRecord& run : runs.runs()) {
    if (runs.LabelOf(run.run_id) == db::RunLabel::kSatisfactory) {
      sat_mean += static_cast<double>(run.duration_ms());
      ++sat_n;
    } else if (runs.LabelOf(run.run_id) == db::RunLabel::kUnsatisfactory) {
      unsat_mean += static_cast<double>(run.duration_ms());
      ++unsat_n;
    }
  }
  if (sat_n > 0) sat_mean /= sat_n;
  if (unsat_n > 0) unsat_mean /= unsat_n;
  std::printf(
      "\nRun history: %d satisfactory runs (mean %s), %d unsatisfactory "
      "(mean %s) -> %.1fx slowdown\n",
      sat_n, FormatDuration(static_cast<SimTimeMs>(sat_mean)).c_str(),
      unsat_n, FormatDuration(static_cast<SimTimeMs>(unsat_mean)).c_str(),
      sat_mean > 0 ? unsat_mean / sat_mean : 0.0);

  // Diagnose.
  diag::DiagnosisContext ctx = scenario->MakeContext();
  diag::SymptomsDb symptoms = diag::SymptomsDb::MakeDefault();
  diag::Workflow workflow(ctx, diag::WorkflowConfig{}, &symptoms);
  Result<diag::DiagnosisReport> report = workflow.Diagnose();
  if (!report.ok()) {
    std::fprintf(stderr, "diagnosis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%s\n", diag::RenderCoResult(ctx, report->co).c_str());
  std::printf("%s\n", diag::RenderDaResult(ctx, report->da).c_str());
  std::printf("%s\n", diag::RenderIaResult(ctx, report->causes).c_str());
  std::printf("Summary: %s\n", report->summary.c_str());
  return 0;
}
