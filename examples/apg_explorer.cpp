// APG explorer — Figure 1 and Figure 6 in one tool.
//
// Prints the full APG (plan + SAN layers), dependency paths for any
// operator, the Graphviz rendering, and the per-component metric table over
// a window.
//
//   $ ./apg_explorer              # full APG + the O23 example + browse V1
//   $ ./apg_explorer --dot        # Graphviz to stdout (pipe to dot -Tsvg)
//   $ ./apg_explorer --op 8       # dependency paths of operator O8
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "apg/browser.h"
#include "apg/render.h"
#include "workload/scenario.h"

using namespace diads;

int main(int argc, char** argv) {
  Result<workload::ScenarioOutput> scenario = workload::RunScenario(
      workload::ScenarioId::kS1SanMisconfiguration, {});
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const apg::Apg& apg = *scenario->apg;

  if (argc > 1 && std::strcmp(argv[1], "--dot") == 0) {
    std::printf("%s", apg::RenderApgDot(apg).c_str());
    return 0;
  }
  if (argc > 2 && std::strcmp(argv[1], "--op") == 0) {
    const int op_number = std::atoi(argv[2]);
    Result<int> index = apg.plan().IndexOfOpNumber(op_number);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", apg::RenderDependencyPaths(apg, *index).c_str());
    return 0;
  }

  // Default tour: the full Figure-1 APG...
  std::printf("%s\n", apg::RenderApgAscii(apg).c_str());

  // ...the Section-3 dependency-path example...
  const int o23 = apg.plan().IndexOfOpNumber(23).value();
  std::printf("%s\n", apg::RenderDependencyPaths(apg, o23).c_str());

  // ...and the Figure-6 browse: tree path for the V1 leaf O8, plus V1's
  // metric table across the fault onset with unsatisfactory check-boxes.
  apg::ApgBrowser browser(&apg, &scenario->testbed->store,
                          &scenario->testbed->runs);
  const int o8 = apg.plan().IndexOfOpNumber(8).value();
  Result<std::string> tree = browser.RenderTreePath(o8);
  if (tree.ok()) std::printf("%s\n", tree->c_str());
  const TimeInterval window{scenario->satisfactory_window.end - Hours(1),
                            scenario->unsatisfactory_window.begin + Hours(1)};
  std::printf("%s", browser
                        .RenderMetricTable(scenario->testbed->v1, window, "Q2")
                        .c_str());
  return 0;
}
