#include "san/perf_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace diads::san {

IoProfile& IoProfile::Add(const IoProfile& other) {
  const double total = total_iops() + other.total_iops();
  if (total > 0) {
    // Blend seq_fraction and block size weighted by iops.
    seq_fraction = (seq_fraction * total_iops() +
                    other.seq_fraction * other.total_iops()) /
                   total;
    avg_block_kb = (avg_block_kb * total_iops() +
                    other.avg_block_kb * other.total_iops()) /
                   total;
  }
  read_iops += other.read_iops;
  write_iops += other.write_iops;
  return *this;
}

SanPerfModel::SanPerfModel(const SanTopology* topology, PerfParams params)
    : topology_(topology), params_(params) {
  assert(topology != nullptr);
}

Status SanPerfModel::AddLoad(LoadEvent event) {
  if (event.interval.empty()) {
    return Status::InvalidArgument("load event interval is empty");
  }
  if (event.profile.read_iops < 0 || event.profile.write_iops < 0) {
    return Status::InvalidArgument("load event iops must be non-negative");
  }
  const size_t index = events_.size();
  if (event.volume.valid()) {
    events_by_volume_[event.volume].push_back(index);
    events_by_pool_[topology_->volume(event.volume).pool].push_back(index);
  }
  for (ComponentId p : event.path_ports) {
    events_by_port_[p].push_back(index);
  }
  events_.push_back(std::move(event));
  return Status::Ok();
}

Status SanPerfModel::AddFabricLoad(const TimeInterval& interval,
                                   double mb_per_sec,
                                   std::vector<ComponentId> path_ports,
                                   ComponentId source) {
  if (mb_per_sec < 0) {
    return Status::InvalidArgument("fabric load must be non-negative");
  }
  LoadEvent event;
  event.interval = interval;
  event.source = source;
  event.path_ports = std::move(path_ports);
  // Large sequential reads: 64 KB blocks, so iops = MB/s * 16.
  event.profile.read_iops = mb_per_sec * 16.0;
  event.profile.seq_fraction = 1.0;
  event.profile.avg_block_kb = 64.0;
  return AddLoad(std::move(event));
}

Status SanPerfModel::AddPoolOverhead(ComponentId pool,
                                     const TimeInterval& interval,
                                     double utilization) {
  if (utilization < 0 || utilization > 1) {
    return Status::InvalidArgument("pool overhead utilization must be in [0,1]");
  }
  pool_overheads_.push_back(PoolOverhead{pool, interval, utilization});
  return Status::Ok();
}

Status SanPerfModel::AddCpuLoad(ComponentId server,
                                const TimeInterval& interval,
                                double utilization) {
  if (utilization < 0) {
    return Status::InvalidArgument("cpu utilization must be non-negative");
  }
  cpu_loads_.push_back(CpuLoad{server, interval, utilization});
  return Status::Ok();
}

IoProfile SanPerfModel::VolumeLoadAt(ComponentId volume, SimTimeMs t) const {
  IoProfile total;
  auto it = events_by_volume_.find(volume);
  if (it == events_by_volume_.end()) return total;
  for (size_t idx : it->second) {
    const LoadEvent& e = events_[idx];
    if (e.interval.Contains(t)) total.Add(e.profile);
  }
  return total;
}

double SanPerfModel::ReadServiceMs(const IoProfile& p) const {
  const double miss = 1.0 - params_.read_cache_hit_fraction;
  const double disk_ms = p.seq_fraction * params_.disk_seq_read_ms +
                         (1.0 - p.seq_fraction) * params_.disk_random_read_ms;
  return params_.read_cache_hit_fraction * params_.cache_hit_ms +
         miss * disk_ms;
}

double SanPerfModel::WriteDiskServiceMs(const IoProfile& p) const {
  return p.seq_fraction * params_.disk_seq_write_ms +
         (1.0 - p.seq_fraction) * params_.disk_random_write_ms;
}

double SanPerfModel::QueueInflation(double rho) const {
  if (rho >= 1.0) return params_.max_queue_inflation;
  return std::min(1.0 / (1.0 - rho), params_.max_queue_inflation);
}

SanPerfModel::DiskDemand SanPerfModel::DiskDemandAt(
    ComponentId disk, SimTimeMs t, const IoProfile& extra_self,
    ComponentId extra_self_volume) const {
  DiskDemand demand;
  const DiskInfo& disk_info = topology_->disk(disk);
  if (disk_info.failed) return demand;
  const PoolInfo& pool = topology_->pool(disk_info.pool);
  const int n_disks = topology_->ActiveDiskCount(pool.id);
  if (n_disks == 0) return demand;
  const double raid_penalty = RaidWritePenalty(pool.raid);

  auto accumulate = [&](const IoProfile& p) {
    if (p.total_iops() <= 0) return;
    const double read_miss_ops =
        p.read_iops * (1.0 - params_.read_cache_hit_fraction) /
        static_cast<double>(n_disks);
    const double write_ops =
        p.write_iops * raid_penalty / static_cast<double>(n_disks);
    const double read_ms = p.seq_fraction * params_.disk_seq_read_ms +
                           (1.0 - p.seq_fraction) * params_.disk_random_read_ms;
    const double write_ms = WriteDiskServiceMs(p);
    demand.read_ops += read_miss_ops;
    demand.write_ops += write_ops;
    demand.read_busy += read_miss_ops * read_ms / 1000.0;
    demand.write_busy += write_ops * write_ms / 1000.0;
  };

  auto it = events_by_pool_.find(pool.id);
  if (it != events_by_pool_.end()) {
    for (size_t idx : it->second) {
      const LoadEvent& e = events_[idx];
      if (e.interval.Contains(t)) accumulate(e.profile);
    }
  }
  if (extra_self_volume.valid() &&
      topology_->volume(extra_self_volume).pool == pool.id) {
    accumulate(extra_self);
  }
  for (const PoolOverhead& o : pool_overheads_) {
    if (o.pool == pool.id && o.interval.Contains(t)) {
      demand.write_busy += o.utilization;
    }
  }
  return demand;
}

double SanPerfModel::DiskUtilizationAt(ComponentId disk, SimTimeMs t) const {
  const DiskDemand d = DiskDemandAt(disk, t, IoProfile{}, ComponentId{});
  return std::min(d.read_busy + d.write_busy, 1.5);
}

double SanPerfModel::PortUtilizationAt(ComponentId port, SimTimeMs t) const {
  auto it = events_by_port_.find(port);
  if (it == events_by_port_.end()) return 0.0;
  double mb_s = 0;
  for (size_t idx : it->second) {
    const LoadEvent& e = events_[idx];
    if (!e.interval.Contains(t)) continue;
    mb_s += (e.profile.read_iops + e.profile.write_iops) *
            e.profile.avg_block_kb / 1024.0;
  }
  if (mb_s <= 0) return 0.0;
  const double capacity = topology_->port(port).EffectiveMbPerSec();
  if (capacity <= 0) return 1.0;
  return mb_s / capacity;
}

double SanPerfModel::FabricLatencyMs(ComponentId volume, SimTimeMs t) const {
  double max_util = 0;
  auto it = events_by_volume_.find(volume);
  if (it != events_by_volume_.end()) {
    for (size_t idx : it->second) {
      const LoadEvent& e = events_[idx];
      if (!e.interval.Contains(t)) continue;
      for (ComponentId p : e.path_ports) {
        max_util = std::max(max_util, PortUtilizationAt(p, t));
      }
    }
  }
  // Exactly 0.0 congestion at or below the threshold: lightly loaded
  // fabrics reduce to the constant params_.fabric_latency_ms.
  if (max_util <= params_.fabric_congestion_threshold) {
    return params_.fabric_latency_ms;
  }
  const double over = (std::min(max_util, 1.0) -
                       params_.fabric_congestion_threshold) /
                      (1.0 - params_.fabric_congestion_threshold);
  return params_.fabric_latency_ms + params_.fabric_congestion_ms * over * over;
}

double SanPerfModel::VolumeReadLatencyMs(ComponentId volume, SimTimeMs t,
                                         const IoProfile& extra_self) const {
  const VolumeInfo& vol = topology_->volume(volume);
  const std::vector<ComponentId> disks = topology_->DisksOfVolume(volume);
  if (disks.empty()) return params_.max_queue_inflation *
                            params_.disk_random_read_ms;
  double rho_sum = 0;
  for (ComponentId d : disks) {
    const DiskDemand demand = DiskDemandAt(d, t, extra_self, volume);
    rho_sum += std::min(demand.read_busy + demand.write_busy, 1.2);
  }
  const double rho = rho_sum / static_cast<double>(disks.size());

  IoProfile own = VolumeLoadAt(volume, t);
  own.Add(extra_self);
  // Fall back to a random-read profile when the volume is otherwise idle.
  if (own.total_iops() <= 0) own.read_iops = 1.0;
  const double service = ReadServiceMs(own);
  (void)vol;
  return params_.controller_overhead_ms + FabricLatencyMs(volume, t) +
         service * QueueInflation(rho);
}

double SanPerfModel::VolumeWriteLatencyMs(ComponentId volume, SimTimeMs t,
                                          const IoProfile& extra_self) const {
  const std::vector<ComponentId> disks = topology_->DisksOfVolume(volume);
  if (disks.empty()) return params_.max_queue_inflation *
                            params_.disk_random_write_ms;
  double rho_sum = 0;
  for (ComponentId d : disks) {
    const DiskDemand demand = DiskDemandAt(d, t, extra_self, volume);
    rho_sum += std::min(demand.read_busy + demand.write_busy, 1.2);
  }
  const double rho = rho_sum / static_cast<double>(disks.size());

  // Write-back cache: fast acknowledge until destaging falls behind, then
  // back-pressure grows quadratically with backend over-utilisation.
  double latency = params_.write_cache_ms + FabricLatencyMs(volume, t);
  if (rho > params_.destage_threshold) {
    const double over = (rho - params_.destage_threshold) /
                        (1.0 - params_.destage_threshold);
    latency += params_.write_cache_ms * params_.destage_pressure_scale *
               over * over;
  }
  return latency;
}

std::vector<SimTimeMs> SanPerfModel::SegmentBoundaries(
    const TimeInterval& interval) const {
  std::vector<SimTimeMs> cuts{interval.begin, interval.end};
  auto add_cut = [&](SimTimeMs t) {
    if (t > interval.begin && t < interval.end) cuts.push_back(t);
  };
  for (const LoadEvent& e : events_) {
    add_cut(e.interval.begin);
    add_cut(e.interval.end);
  }
  for (const PoolOverhead& o : pool_overheads_) {
    add_cut(o.interval.begin);
    add_cut(o.interval.end);
  }
  for (const CpuLoad& c : cpu_loads_) {
    add_cut(c.interval.begin);
    add_cut(c.interval.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

template <typename Fn>
double SanPerfModel::AverageOver(const TimeInterval& interval,
                                 Fn&& fn) const {
  if (interval.empty()) return 0.0;
  const std::vector<SimTimeMs> cuts = SegmentBoundaries(interval);
  double integral = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const SimTimeMs mid = cuts[i] + (cuts[i + 1] - cuts[i]) / 2;
    integral += fn(mid) * static_cast<double>(cuts[i + 1] - cuts[i]);
  }
  return integral / static_cast<double>(interval.duration());
}

VolumeIntervalStats SanPerfModel::VolumeStats(
    ComponentId volume, const TimeInterval& interval) const {
  VolumeIntervalStats out;
  if (interval.empty()) return out;

  out.read_iops = AverageOver(interval, [&](SimTimeMs t) {
    return VolumeLoadAt(volume, t).read_iops;
  });
  out.write_iops = AverageOver(interval, [&](SimTimeMs t) {
    return VolumeLoadAt(volume, t).write_iops;
  });
  out.seq_read_iops = AverageOver(interval, [&](SimTimeMs t) {
    const IoProfile p = VolumeLoadAt(volume, t);
    return p.read_iops * p.seq_fraction;
  });
  out.seq_write_iops = AverageOver(interval, [&](SimTimeMs t) {
    const IoProfile p = VolumeLoadAt(volume, t);
    return p.write_iops * p.seq_fraction;
  });
  out.bytes_read_per_sec = AverageOver(interval, [&](SimTimeMs t) {
    const IoProfile p = VolumeLoadAt(volume, t);
    return p.read_iops * p.avg_block_kb * 1024.0;
  });
  out.bytes_written_per_sec = AverageOver(interval, [&](SimTimeMs t) {
    const IoProfile p = VolumeLoadAt(volume, t);
    return p.write_iops * p.avg_block_kb * 1024.0;
  });
  out.read_latency_ms = AverageOver(interval, [&](SimTimeMs t) {
    return VolumeReadLatencyMs(volume, t);
  });
  out.write_latency_ms = AverageOver(interval, [&](SimTimeMs t) {
    return VolumeWriteLatencyMs(volume, t);
  });

  // Backend ("physical storage") view: aggregate over the volume's disks,
  // which includes every sharer volume in the same pool. The latency is
  // weighted by whether the backend is read- or write-busy.
  const std::vector<ComponentId> disks = topology_->DisksOfVolume(volume);
  out.physical_read_ops = AverageOver(interval, [&](SimTimeMs t) {
    double ops = 0;
    for (ComponentId d : disks) {
      ops += DiskDemandAt(d, t, IoProfile{}, ComponentId{}).read_ops;
    }
    return ops;
  });
  out.physical_write_ops = AverageOver(interval, [&](SimTimeMs t) {
    double ops = 0;
    for (ComponentId d : disks) {
      ops += DiskDemandAt(d, t, IoProfile{}, ComponentId{}).write_ops;
    }
    return ops;
  });
  out.physical_read_time_ms = AverageOver(interval, [&](SimTimeMs t) {
    double rho_sum = 0;
    for (ComponentId d : disks) {
      const DiskDemand demand = DiskDemandAt(d, t, IoProfile{}, ComponentId{});
      rho_sum += std::min(demand.read_busy + demand.write_busy, 1.2);
    }
    const double rho =
        disks.empty() ? 0.0 : rho_sum / static_cast<double>(disks.size());
    return params_.disk_random_read_ms * QueueInflation(rho);
  });
  out.physical_write_time_ms = AverageOver(interval, [&](SimTimeMs t) {
    double rho_sum = 0;
    for (ComponentId d : disks) {
      const DiskDemand demand = DiskDemandAt(d, t, IoProfile{}, ComponentId{});
      rho_sum += std::min(demand.read_busy + demand.write_busy, 1.2);
    }
    const double rho =
        disks.empty() ? 0.0 : rho_sum / static_cast<double>(disks.size());
    return params_.disk_random_write_ms * QueueInflation(rho);
  });
  out.total_ios = out.read_iops + out.write_iops;
  return out;
}

DiskIntervalStats SanPerfModel::DiskStats(ComponentId disk,
                                          const TimeInterval& interval) const {
  DiskIntervalStats out;
  out.utilization = AverageOver(interval, [&](SimTimeMs t) {
    return DiskUtilizationAt(disk, t);
  });
  out.iops = AverageOver(interval, [&](SimTimeMs t) {
    const DiskDemand d = DiskDemandAt(disk, t, IoProfile{}, ComponentId{});
    return d.read_ops + d.write_ops;
  });
  return out;
}

PortIntervalStats SanPerfModel::PortStats(ComponentId port,
                                          const TimeInterval& interval) const {
  PortIntervalStats out;
  if (interval.empty()) return out;
  // Attribute each load event's byte stream to the ports along its path.
  // Reads flow subsystem -> server (rx at HBA port), writes the reverse; at
  // the port level we report both directions symmetrically.
  auto it = events_by_port_.find(port);
  if (it == events_by_port_.end()) return out;
  for (size_t idx : it->second) {
    const LoadEvent& e = events_[idx];
    const double overlap = [&] {
      const TimeInterval inter = e.interval.Intersect(interval);
      return static_cast<double>(inter.duration()) /
             static_cast<double>(interval.duration());
    }();
    if (overlap <= 0) continue;
    const double read_mb_s =
        e.profile.read_iops * e.profile.avg_block_kb / 1024.0;
    const double write_mb_s =
        e.profile.write_iops * e.profile.avg_block_kb / 1024.0;
    out.mb_rx_per_sec += overlap * read_mb_s;
    out.mb_tx_per_sec += overlap * write_mb_s;
    // ~1 FC frame per 2 KB payload.
    out.frames_rx_per_sec += overlap * read_mb_s * 512.0;
    out.frames_tx_per_sec += overlap * write_mb_s * 512.0;
  }
  return out;
}

ServerIntervalStats SanPerfModel::ServerStats(
    ComponentId server, const TimeInterval& interval) const {
  ServerIntervalStats out;
  out.cpu_utilization = AverageOver(interval, [&](SimTimeMs t) {
    double u = 0;
    for (const CpuLoad& c : cpu_loads_) {
      if (c.server == server && c.interval.Contains(t)) u += c.utilization;
    }
    return std::min(u, 1.0);
  });
  return out;
}

}  // namespace diads::san
