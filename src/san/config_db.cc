#include "san/config_db.h"

#include "common/strings.h"

namespace diads::san {

Status ConfigDatabase::LogEvent(SimTimeMs t, EventType type,
                                ComponentId subject, std::string description) {
  SystemEvent event;
  event.time = t;
  event.type = type;
  event.subject = subject;
  event.description = std::move(description);
  return event_log_->Append(std::move(event));
}

Result<ComponentId> ConfigDatabase::ProvisionVolume(SimTimeMs t,
                                                    const std::string& name,
                                                    ComponentId pool,
                                                    double size_gb) {
  Result<ComponentId> vol = topology_->AddVolume(name, pool, size_gb);
  DIADS_RETURN_IF_ERROR(vol.status());
  DIADS_RETURN_IF_ERROR(LogEvent(
      t, EventType::kVolumeCreated, *vol,
      StrFormat("volume '%s' (%.0f GB) created in pool '%s'", name.c_str(),
                size_gb, topology_->registry().NameOf(pool).c_str())));
  return *vol;
}

Status ConfigDatabase::ChangeZoning(SimTimeMs t, const std::string& zone_name,
                                    const std::vector<ComponentId>& ports) {
  DIADS_RETURN_IF_ERROR(topology_->AddZone(zone_name, ports));
  ComponentId subject = ports.empty() ? ComponentId{} : ports.front();
  return LogEvent(t, EventType::kZoningChanged, subject,
                  StrFormat("zone '%s' changed (%zu ports)",
                            zone_name.c_str(), ports.size()));
}

Status ConfigDatabase::ChangeLunMapping(SimTimeMs t, ComponentId server,
                                        ComponentId volume) {
  DIADS_RETURN_IF_ERROR(topology_->MapLun(server, volume));
  return LogEvent(
      t, EventType::kLunMappingChanged, volume,
      StrFormat("volume '%s' mapped to server '%s'",
                topology_->registry().NameOf(volume).c_str(),
                topology_->registry().NameOf(server).c_str()));
}

Status ConfigDatabase::FailDisk(SimTimeMs t, ComponentId disk) {
  DIADS_RETURN_IF_ERROR(topology_->SetDiskFailed(disk, true));
  return LogEvent(t, EventType::kDiskFailed, disk,
                  StrFormat("disk '%s' failed",
                            topology_->registry().NameOf(disk).c_str()));
}

Status ConfigDatabase::RecoverDisk(SimTimeMs t, ComponentId disk) {
  DIADS_RETURN_IF_ERROR(topology_->SetDiskFailed(disk, false));
  return LogEvent(t, EventType::kDiskRecovered, disk,
                  StrFormat("disk '%s' recovered",
                            topology_->registry().NameOf(disk).c_str()));
}

std::vector<ConfigDatabase::ActivePath> ConfigDatabase::SnapshotActivePaths()
    const {
  std::vector<ActivePath> out;
  for (const auto& [server, volume] : topology_->LunMappings()) {
    ActivePath entry;
    entry.server = server;
    entry.volume = volume;
    Result<IoPath> path = topology_->ResolvePath(server, volume);
    if (path.ok()) entry.ports = path->ports;
    out.push_back(std::move(entry));
  }
  return out;
}

Status ConfigDatabase::LogFailovers(SimTimeMs t,
                                    const std::vector<ActivePath>& before) {
  for (const ActivePath& prev : before) {
    if (prev.ports.empty()) continue;  // Was already unreachable.
    Result<IoPath> now = topology_->ResolvePath(prev.server, prev.volume);
    if (!now.ok() || now->ports == prev.ports) continue;
    DIADS_RETURN_IF_ERROR(LogEvent(
        t, EventType::kPathFailover, prev.volume,
        StrFormat("LUN '%s' for server '%s' failed over from port '%s' to "
                  "port '%s'",
                  topology_->registry().NameOf(prev.volume).c_str(),
                  topology_->registry().NameOf(prev.server).c_str(),
                  topology_->registry().NameOf(prev.ports.front()).c_str(),
                  topology_->registry().NameOf(now->ports.front()).c_str())));
  }
  return Status::Ok();
}

Status ConfigDatabase::FailHba(SimTimeMs t, ComponentId hba) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetHbaFailed(hba, true));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kHbaFailed, hba,
               StrFormat("HBA '%s' failed",
                         topology_->registry().NameOf(hba).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::RecoverHba(SimTimeMs t, ComponentId hba) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetHbaFailed(hba, false));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kHbaRecovered, hba,
               StrFormat("HBA '%s' recovered",
                         topology_->registry().NameOf(hba).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::FailPort(SimTimeMs t, ComponentId port) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetPortFailed(port, true));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kPortFailed, port,
               StrFormat("FC port '%s' failed",
                         topology_->registry().NameOf(port).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::RecoverPort(SimTimeMs t, ComponentId port) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetPortFailed(port, false));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kPortRecovered, port,
               StrFormat("FC port '%s' recovered",
                         topology_->registry().NameOf(port).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::FailSwitch(SimTimeMs t, ComponentId fc_switch) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetSwitchFailed(fc_switch, true));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kSwitchFailed, fc_switch,
               StrFormat("FC switch '%s' failed",
                         topology_->registry().NameOf(fc_switch).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::RecoverSwitch(SimTimeMs t, ComponentId fc_switch) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetSwitchFailed(fc_switch, false));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kSwitchRecovered, fc_switch,
               StrFormat("FC switch '%s' recovered",
                         topology_->registry().NameOf(fc_switch).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::FailLink(SimTimeMs t, ComponentId port_a,
                                ComponentId port_b) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetLinkFailed(port_a, port_b, true));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kLinkFailed, port_a,
               StrFormat("link '%s' <-> '%s' failed",
                         topology_->registry().NameOf(port_a).c_str(),
                         topology_->registry().NameOf(port_b).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::RecoverLink(SimTimeMs t, ComponentId port_a,
                                   ComponentId port_b) {
  std::vector<ActivePath> before = SnapshotActivePaths();
  DIADS_RETURN_IF_ERROR(topology_->SetLinkFailed(port_a, port_b, false));
  DIADS_RETURN_IF_ERROR(
      LogEvent(t, EventType::kLinkRecovered, port_a,
               StrFormat("link '%s' <-> '%s' recovered",
                         topology_->registry().NameOf(port_a).c_str(),
                         topology_->registry().NameOf(port_b).c_str())));
  return LogFailovers(t, before);
}

Status ConfigDatabase::DegradePort(SimTimeMs t, ComponentId port,
                                   double capacity_factor) {
  DIADS_RETURN_IF_ERROR(topology_->SetPortDegraded(port, capacity_factor));
  return LogEvent(
      t, EventType::kPortDegraded, port,
      StrFormat("FC port '%s' degraded to %.0f%% capacity",
                topology_->registry().NameOf(port).c_str(),
                capacity_factor * 100.0));
}

Status ConfigDatabase::RecordRaidRebuild(const TimeInterval& window,
                                         ComponentId pool) {
  DIADS_RETURN_IF_ERROR(
      LogEvent(window.begin, EventType::kRaidRebuildStarted, pool,
               StrFormat("RAID rebuild started on pool '%s'",
                         topology_->registry().NameOf(pool).c_str())));
  return LogEvent(window.end, EventType::kRaidRebuildCompleted, pool,
                  StrFormat("RAID rebuild completed on pool '%s'",
                            topology_->registry().NameOf(pool).c_str()));
}

Status ConfigDatabase::RecordPerfTrigger(SimTimeMs t, EventType type,
                                         ComponentId subject,
                                         const std::string& description) {
  return LogEvent(t, type, subject, description);
}

}  // namespace diads::san
