#include "san/config_db.h"

#include "common/strings.h"

namespace diads::san {

Status ConfigDatabase::LogEvent(SimTimeMs t, EventType type,
                                ComponentId subject, std::string description) {
  SystemEvent event;
  event.time = t;
  event.type = type;
  event.subject = subject;
  event.description = std::move(description);
  return event_log_->Append(std::move(event));
}

Result<ComponentId> ConfigDatabase::ProvisionVolume(SimTimeMs t,
                                                    const std::string& name,
                                                    ComponentId pool,
                                                    double size_gb) {
  Result<ComponentId> vol = topology_->AddVolume(name, pool, size_gb);
  DIADS_RETURN_IF_ERROR(vol.status());
  DIADS_RETURN_IF_ERROR(LogEvent(
      t, EventType::kVolumeCreated, *vol,
      StrFormat("volume '%s' (%.0f GB) created in pool '%s'", name.c_str(),
                size_gb, topology_->registry().NameOf(pool).c_str())));
  return *vol;
}

Status ConfigDatabase::ChangeZoning(SimTimeMs t, const std::string& zone_name,
                                    const std::vector<ComponentId>& ports) {
  DIADS_RETURN_IF_ERROR(topology_->AddZone(zone_name, ports));
  ComponentId subject = ports.empty() ? ComponentId{} : ports.front();
  return LogEvent(t, EventType::kZoningChanged, subject,
                  StrFormat("zone '%s' changed (%zu ports)",
                            zone_name.c_str(), ports.size()));
}

Status ConfigDatabase::ChangeLunMapping(SimTimeMs t, ComponentId server,
                                        ComponentId volume) {
  DIADS_RETURN_IF_ERROR(topology_->MapLun(server, volume));
  return LogEvent(
      t, EventType::kLunMappingChanged, volume,
      StrFormat("volume '%s' mapped to server '%s'",
                topology_->registry().NameOf(volume).c_str(),
                topology_->registry().NameOf(server).c_str()));
}

Status ConfigDatabase::FailDisk(SimTimeMs t, ComponentId disk) {
  DIADS_RETURN_IF_ERROR(topology_->SetDiskFailed(disk, true));
  return LogEvent(t, EventType::kDiskFailed, disk,
                  StrFormat("disk '%s' failed",
                            topology_->registry().NameOf(disk).c_str()));
}

Status ConfigDatabase::RecoverDisk(SimTimeMs t, ComponentId disk) {
  DIADS_RETURN_IF_ERROR(topology_->SetDiskFailed(disk, false));
  return LogEvent(t, EventType::kDiskRecovered, disk,
                  StrFormat("disk '%s' recovered",
                            topology_->registry().NameOf(disk).c_str()));
}

Status ConfigDatabase::RecordRaidRebuild(const TimeInterval& window,
                                         ComponentId pool) {
  DIADS_RETURN_IF_ERROR(
      LogEvent(window.begin, EventType::kRaidRebuildStarted, pool,
               StrFormat("RAID rebuild started on pool '%s'",
                         topology_->registry().NameOf(pool).c_str())));
  return LogEvent(window.end, EventType::kRaidRebuildCompleted, pool,
                  StrFormat("RAID rebuild completed on pool '%s'",
                            topology_->registry().NameOf(pool).c_str()));
}

Status ConfigDatabase::RecordPerfTrigger(SimTimeMs t, EventType type,
                                         ComponentId subject,
                                         const std::string& description) {
  return LogEvent(t, type, subject, description);
}

}  // namespace diads::san
