// SAN performance model.
//
// A utilisation-based queueing model of the storage stack. Load sources
// (query executions, external application workloads, RAID rebuilds) register
// piecewise-constant I/O demand on volumes; the model derives
//
//   * per-disk utilisation: a pool stripes its volumes' I/O uniformly over
//     its active disks, so volumes carved from the same pool contend — the
//     physical channel behind the paper's scenario 1 ("a volume V' that gets
//     mapped to the same physical disks as V1");
//   * per-volume read/write latency: service time inflated by 1/(1-rho)
//     queueing delay (capped), with a write-back cache model for writes;
//   * per-component interval statistics for the monitoring collectors,
//     including both the volume's own ("logical") traffic and the backend
//     ("physical storage") traffic on its disks including all sharers —
//     the PhysicalStorageRead/Write Operations/Time metrics of Figure 4.
//
// Everything is piecewise-constant in time, so interval averages integrate
// exactly over load-event boundaries; spikes shorter than the monitoring
// interval get averaged away, reproducing the paper's noisy-data challenge.
#ifndef DIADS_SAN_PERF_MODEL_H_
#define DIADS_SAN_PERF_MODEL_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "san/topology.h"

namespace diads::san {

/// A constant-rate I/O demand description.
struct IoProfile {
  double read_iops = 0.0;
  double write_iops = 0.0;
  /// Fraction of the I/O that is sequential, in [0, 1].
  double seq_fraction = 0.0;
  double avg_block_kb = 8.0;

  IoProfile& Add(const IoProfile& other);
  double total_iops() const { return read_iops + write_iops; }
};

/// One registered demand: `profile` applies to `volume` during `interval`.
/// `source` identifies the generating query/workload (used to attribute
/// fabric traffic to ports along `path_ports`/`path_switches`). A
/// pure-fabric stream (RAID rebuild crossing an inter-switch link) leaves
/// `volume` invalid: it contributes port traffic but no disk demand.
struct LoadEvent {
  ComponentId volume;
  TimeInterval interval;
  IoProfile profile;
  ComponentId source;
  std::vector<ComponentId> path_ports;
  std::vector<ComponentId> path_switches;
};

/// Tunable physical constants of the model.
struct PerfParams {
  double disk_random_read_ms = 6.0;  ///< 15k-rpm seek + rotation.
  double disk_seq_read_ms = 0.4;
  double disk_random_write_ms = 6.5;
  double disk_seq_write_ms = 0.5;
  double controller_overhead_ms = 0.3;
  double fabric_latency_ms = 0.05;
  double cache_hit_ms = 0.15;          ///< Subsystem read-cache hit service.
  double read_cache_hit_fraction = 0.15;
  double write_cache_ms = 0.4;         ///< Write-back cache acknowledge.
  /// Backend utilisation above which write destaging backs up into the
  /// foreground write latency.
  double destage_threshold = 0.60;
  double destage_pressure_scale = 18.0;
  double max_queue_inflation = 14.0;   ///< Cap on 1/(1-rho).
  /// Port utilisation above which fabric congestion adds latency. Below
  /// the threshold the congestion term is exactly 0.0, so lightly loaded
  /// fabrics (every Figure-1 scenario) see `fabric_latency_ms` unchanged.
  double fabric_congestion_threshold = 0.55;
  /// Congestion latency at 100% port utilisation (grows quadratically from
  /// the threshold).
  double fabric_congestion_ms = 60.0;
};

/// Interval-averaged statistics for one volume.
struct VolumeIntervalStats {
  // Logical (the volume's own traffic).
  double read_iops = 0;
  double write_iops = 0;
  double seq_read_iops = 0;
  double seq_write_iops = 0;
  double bytes_read_per_sec = 0;
  double bytes_written_per_sec = 0;
  double read_latency_ms = 0;
  double write_latency_ms = 0;
  // Physical / backend (the volume's disks, including sharer volumes).
  double physical_read_ops = 0;   ///< Backend read ops/s on backing disks.
  double physical_write_ops = 0;  ///< Backend write ops/s on backing disks.
  double physical_read_time_ms = 0;
  double physical_write_time_ms = 0;
  double total_ios = 0;  ///< Logical read+write ops/s.
};

/// Interval-averaged statistics for one disk.
struct DiskIntervalStats {
  double utilization = 0;  ///< Mean rho, in [0, ~1].
  double iops = 0;
};

/// Interval-averaged statistics for one FC port.
struct PortIntervalStats {
  double mb_tx_per_sec = 0;
  double mb_rx_per_sec = 0;
  double frames_tx_per_sec = 0;
  double frames_rx_per_sec = 0;
};

/// Interval-averaged server statistics.
struct ServerIntervalStats {
  double cpu_utilization = 0;  ///< In [0, 1].
};

/// The performance model. Not thread-safe; the simulation is
/// single-threaded.
class SanPerfModel {
 public:
  /// `topology` must outlive the model.
  explicit SanPerfModel(const SanTopology* topology, PerfParams params = {});

  /// Registers an I/O demand. Events may be added in any time order. An
  /// event with an invalid `volume` is a pure fabric stream: it loads the
  /// ports along `path_ports` without adding disk demand anywhere.
  Status AddLoad(LoadEvent event);

  /// Registers a pure fabric byte stream (e.g. rebuild traffic crossing an
  /// inter-switch link): `mb_per_sec` sequential traffic over the given
  /// ports for the interval.
  Status AddFabricLoad(const TimeInterval& interval, double mb_per_sec,
                       std::vector<ComponentId> path_ports,
                       ComponentId source = {});

  /// Registers direct backend overhead on every disk of `pool` (RAID
  /// rebuild, scrubbing): `utilization` is added to each disk's rho.
  Status AddPoolOverhead(ComponentId pool, const TimeInterval& interval,
                         double utilization);

  /// Registers CPU demand on a server (query execution, competing jobs).
  Status AddCpuLoad(ComponentId server, const TimeInterval& interval,
                    double utilization);

  // --- Instantaneous queries ---------------------------------------------
  /// Aggregate volume demand at time t (all registered events).
  IoProfile VolumeLoadAt(ComponentId volume, SimTimeMs t) const;

  /// Backend utilisation rho of one disk at time t.
  double DiskUtilizationAt(ComponentId disk, SimTimeMs t) const;

  /// Read latency seen by a request to `volume` at time t if `extra_self`
  /// demand is added on top of the registered load (the executor passes its
  /// own demand here to close the self-contention loop).
  double VolumeReadLatencyMs(ComponentId volume, SimTimeMs t,
                             const IoProfile& extra_self = {}) const;
  double VolumeWriteLatencyMs(ComponentId volume, SimTimeMs t,
                              const IoProfile& extra_self = {}) const;

  /// Fraction of a port's effective bandwidth (gbps x capacity_factor)
  /// consumed by all load events crossing it at time t.
  double PortUtilizationAt(ComponentId port, SimTimeMs t) const;

  /// Fabric latency seen by `volume` at time t: the base fabric hop cost
  /// plus a congestion term that is exactly 0.0 until the most-utilised
  /// port on any of the volume's active paths crosses
  /// `fabric_congestion_threshold` — the hinge the multipath/failover
  /// scenarios ride and the Figure-1 scenarios never touch.
  double FabricLatencyMs(ComponentId volume, SimTimeMs t) const;

  // --- Interval-averaged queries (for monitoring collectors) -------------
  VolumeIntervalStats VolumeStats(ComponentId volume,
                                  const TimeInterval& interval) const;
  DiskIntervalStats DiskStats(ComponentId disk,
                              const TimeInterval& interval) const;
  PortIntervalStats PortStats(ComponentId port,
                              const TimeInterval& interval) const;
  ServerIntervalStats ServerStats(ComponentId server,
                                  const TimeInterval& interval) const;

  const PerfParams& params() const { return params_; }
  size_t load_event_count() const { return events_.size(); }

 private:
  struct CpuLoad {
    ComponentId server;
    TimeInterval interval;
    double utilization;
  };
  struct PoolOverhead {
    ComponentId pool;
    TimeInterval interval;
    double utilization;
  };

  /// Demand on `disk` at time t, split by op type, in disk-seconds/sec.
  struct DiskDemand {
    double read_busy = 0;   ///< rho contribution from reads.
    double write_busy = 0;  ///< rho contribution from writes (incl. RAID).
    double read_ops = 0;    ///< Backend read ops/s.
    double write_ops = 0;   ///< Backend write ops/s.
  };
  DiskDemand DiskDemandAt(ComponentId disk, SimTimeMs t,
                          const IoProfile& extra_self,
                          ComponentId extra_self_volume) const;

  double ReadServiceMs(const IoProfile& p) const;
  double WriteDiskServiceMs(const IoProfile& p) const;
  double QueueInflation(double rho) const;

  /// Averages an instantaneous function over the interval by integrating
  /// across the piecewise-constant segments induced by event boundaries.
  template <typename Fn>
  double AverageOver(const TimeInterval& interval, Fn&& fn) const;

  /// Sorted distinct event boundary times inside `interval`.
  std::vector<SimTimeMs> SegmentBoundaries(const TimeInterval& interval) const;

  const SanTopology* topology_;
  PerfParams params_;
  std::vector<LoadEvent> events_;
  std::unordered_map<ComponentId, std::vector<size_t>> events_by_volume_;
  std::unordered_map<ComponentId, std::vector<size_t>> events_by_pool_;
  /// Indices of events crossing each port, in insertion order (the same
  /// order a full-events scan visits them, so float sums are unchanged).
  std::unordered_map<ComponentId, std::vector<size_t>> events_by_port_;
  std::vector<CpuLoad> cpu_loads_;
  std::vector<PoolOverhead> pool_overheads_;
};

}  // namespace diads::san

#endif  // DIADS_SAN_PERF_MODEL_H_
