#include "san/topology.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace diads::san {
namespace {

uint64_t PackPair(ComponentId a, ComponentId b) {
  return (static_cast<uint64_t>(a.value) << 32) | b.value;
}

/// Order-independent packing for undirected links.
uint64_t PackLink(ComponentId a, ComponentId b) {
  return a < b ? PackPair(a, b) : PackPair(b, a);
}

}  // namespace

const char* RaidLevelName(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0:
      return "RAID0";
    case RaidLevel::kRaid1:
      return "RAID1";
    case RaidLevel::kRaid5:
      return "RAID5";
    case RaidLevel::kRaid10:
      return "RAID10";
  }
  return "RAID?";
}

double RaidWritePenalty(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0:
      return 1.0;
    case RaidLevel::kRaid1:
      return 2.0;
    case RaidLevel::kRaid5:
      return 4.0;
    case RaidLevel::kRaid10:
      return 2.0;
  }
  return 1.0;
}

std::vector<ComponentId> IoPath::AllComponents() const {
  std::vector<ComponentId> out;
  out.push_back(server);
  out.push_back(hba);
  for (ComponentId p : ports) out.push_back(p);
  for (ComponentId s : switches) out.push_back(s);
  out.push_back(subsystem);
  out.push_back(pool);
  out.push_back(volume);
  for (ComponentId d : disks) out.push_back(d);
  return out;
}

SanTopology::SanTopology(ComponentRegistry* registry)
    : registry_(registry), scratch_(std::make_unique<ResolveScratch>()) {
  assert(registry != nullptr);
}

void SanTopology::BumpGeneration() {
  ++generation_;
  std::lock_guard<std::mutex> lock(scratch_->mu);
  scratch_->paths.clear();
}

Status SanTopology::ExpectKind(ComponentId id, ComponentKind kind) const {
  if (!registry_->Contains(id)) {
    return Status::NotFound(
        StrFormat("component id %u not registered", id.value));
  }
  if (registry_->KindOf(id) != kind) {
    return Status::InvalidArgument(StrFormat(
        "component '%s' is a %s, expected %s",
        registry_->NameOf(id).c_str(),
        ComponentKindName(registry_->KindOf(id)), ComponentKindName(kind)));
  }
  return Status::Ok();
}

Result<ComponentId> SanTopology::AddServer(const std::string& name,
                                           const std::string& os) {
  Result<ComponentId> id = registry_->Register(ComponentKind::kServer, name);
  DIADS_RETURN_IF_ERROR(id.status());
  ServerInfo info;
  info.id = *id;
  info.os = os;
  servers_.emplace(*id, std::move(info));
  return *id;
}

Result<ComponentId> SanTopology::AddHba(const std::string& name,
                                        ComponentId server) {
  DIADS_RETURN_IF_ERROR(ExpectKind(server, ComponentKind::kServer));
  Result<ComponentId> id = registry_->Register(ComponentKind::kHba, name);
  DIADS_RETURN_IF_ERROR(id.status());
  HbaInfo info;
  info.id = *id;
  info.server = server;
  hbas_.emplace(*id, std::move(info));
  servers_.at(server).hbas.push_back(*id);
  return *id;
}

Result<ComponentId> SanTopology::AddSwitch(const std::string& name,
                                           bool is_core) {
  Result<ComponentId> id = registry_->Register(ComponentKind::kFcSwitch, name);
  DIADS_RETURN_IF_ERROR(id.status());
  FcSwitchInfo info;
  info.id = *id;
  info.is_core = is_core;
  switches_.emplace(*id, std::move(info));
  return *id;
}

Result<ComponentId> SanTopology::AddSubsystem(const std::string& name,
                                              const std::string& model) {
  Result<ComponentId> id =
      registry_->Register(ComponentKind::kStorageSubsystem, name);
  DIADS_RETURN_IF_ERROR(id.status());
  SubsystemInfo info;
  info.id = *id;
  info.model = model;
  subsystems_.emplace(*id, std::move(info));
  return *id;
}

Result<ComponentId> SanTopology::AddPort(const std::string& name,
                                         PortOwner owner_kind,
                                         ComponentId owner, double gbps) {
  switch (owner_kind) {
    case PortOwner::kHba:
      DIADS_RETURN_IF_ERROR(ExpectKind(owner, ComponentKind::kHba));
      break;
    case PortOwner::kSwitch:
      DIADS_RETURN_IF_ERROR(ExpectKind(owner, ComponentKind::kFcSwitch));
      break;
    case PortOwner::kSubsystem:
      DIADS_RETURN_IF_ERROR(
          ExpectKind(owner, ComponentKind::kStorageSubsystem));
      break;
  }
  Result<ComponentId> id = registry_->Register(ComponentKind::kFcPort, name);
  DIADS_RETURN_IF_ERROR(id.status());
  FcPortInfo info;
  info.id = *id;
  info.owner_kind = owner_kind;
  info.owner = owner;
  info.gbps = gbps;
  ports_.emplace(*id, std::move(info));
  switch (owner_kind) {
    case PortOwner::kHba:
      hbas_.at(owner).ports.push_back(*id);
      break;
    case PortOwner::kSwitch:
      switches_.at(owner).ports.push_back(*id);
      break;
    case PortOwner::kSubsystem:
      subsystems_.at(owner).ports.push_back(*id);
      break;
  }
  return *id;
}

Result<ComponentId> SanTopology::AddPool(const std::string& name,
                                         ComponentId subsystem,
                                         RaidLevel raid) {
  DIADS_RETURN_IF_ERROR(ExpectKind(subsystem, ComponentKind::kStorageSubsystem));
  Result<ComponentId> id =
      registry_->Register(ComponentKind::kStoragePool, name);
  DIADS_RETURN_IF_ERROR(id.status());
  PoolInfo info;
  info.id = *id;
  info.subsystem = subsystem;
  info.raid = raid;
  pools_.emplace(*id, std::move(info));
  subsystems_.at(subsystem).pools.push_back(*id);
  return *id;
}

Result<ComponentId> SanTopology::AddDisk(const std::string& name,
                                         ComponentId pool, double capacity_gb,
                                         int rpm) {
  DIADS_RETURN_IF_ERROR(ExpectKind(pool, ComponentKind::kStoragePool));
  Result<ComponentId> id = registry_->Register(ComponentKind::kDisk, name);
  DIADS_RETURN_IF_ERROR(id.status());
  DiskInfo info;
  info.id = *id;
  info.pool = pool;
  info.capacity_gb = capacity_gb;
  info.rpm = rpm;
  disks_.emplace(*id, std::move(info));
  pools_.at(pool).disks.push_back(*id);
  return *id;
}

Result<ComponentId> SanTopology::AddVolume(const std::string& name,
                                           ComponentId pool, double size_gb) {
  DIADS_RETURN_IF_ERROR(ExpectKind(pool, ComponentKind::kStoragePool));
  Result<ComponentId> id = registry_->Register(ComponentKind::kVolume, name);
  DIADS_RETURN_IF_ERROR(id.status());
  VolumeInfo info;
  info.id = *id;
  info.pool = pool;
  info.size_gb = size_gb;
  volumes_.emplace(*id, std::move(info));
  pools_.at(pool).volumes.push_back(*id);
  return *id;
}

Status SanTopology::Link(ComponentId port_a, ComponentId port_b) {
  DIADS_RETURN_IF_ERROR(ExpectKind(port_a, ComponentKind::kFcPort));
  DIADS_RETURN_IF_ERROR(ExpectKind(port_b, ComponentKind::kFcPort));
  if (port_a == port_b) {
    return Status::InvalidArgument("cannot link a port to itself");
  }
  ports_.at(port_a).links.push_back(port_b);
  ports_.at(port_b).links.push_back(port_a);
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::AddZone(const std::string& zone_name,
                            const std::vector<ComponentId>& zone_ports) {
  for (ComponentId p : zone_ports) {
    DIADS_RETURN_IF_ERROR(ExpectKind(p, ComponentKind::kFcPort));
  }
  for (Zone& z : zones_) {
    if (z.name == zone_name) {
      z.member_ports.insert(zone_ports.begin(), zone_ports.end());
      BumpGeneration();
      return Status::Ok();
    }
  }
  Zone z;
  z.name = zone_name;
  z.member_ports.insert(zone_ports.begin(), zone_ports.end());
  zones_.push_back(std::move(z));
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::MapLun(ComponentId server, ComponentId volume) {
  DIADS_RETURN_IF_ERROR(ExpectKind(server, ComponentKind::kServer));
  DIADS_RETURN_IF_ERROR(ExpectKind(volume, ComponentKind::kVolume));
  lun_map_.insert(PackPair(server, volume));
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetDiskFailed(ComponentId disk, bool failed) {
  DIADS_RETURN_IF_ERROR(ExpectKind(disk, ComponentKind::kDisk));
  disks_.at(disk).failed = failed;
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetHbaFailed(ComponentId hba, bool failed) {
  DIADS_RETURN_IF_ERROR(ExpectKind(hba, ComponentKind::kHba));
  hbas_.at(hba).failed = failed;
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetPortFailed(ComponentId port, bool failed) {
  DIADS_RETURN_IF_ERROR(ExpectKind(port, ComponentKind::kFcPort));
  ports_.at(port).failed = failed;
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetSwitchFailed(ComponentId fc_switch, bool failed) {
  DIADS_RETURN_IF_ERROR(ExpectKind(fc_switch, ComponentKind::kFcSwitch));
  switches_.at(fc_switch).failed = failed;
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetLinkFailed(ComponentId port_a, ComponentId port_b,
                                  bool failed) {
  DIADS_RETURN_IF_ERROR(ExpectKind(port_a, ComponentKind::kFcPort));
  DIADS_RETURN_IF_ERROR(ExpectKind(port_b, ComponentKind::kFcPort));
  const std::vector<ComponentId>& links = ports_.at(port_a).links;
  if (std::find(links.begin(), links.end(), port_b) == links.end()) {
    return Status::NotFound(StrFormat(
        "no link between ports '%s' and '%s'",
        registry_->NameOf(port_a).c_str(), registry_->NameOf(port_b).c_str()));
  }
  if (failed) {
    failed_links_.insert(PackLink(port_a, port_b));
  } else {
    failed_links_.erase(PackLink(port_a, port_b));
  }
  BumpGeneration();
  return Status::Ok();
}

Status SanTopology::SetPortDegraded(ComponentId port, double capacity_factor) {
  DIADS_RETURN_IF_ERROR(ExpectKind(port, ComponentKind::kFcPort));
  if (capacity_factor <= 0.0 || capacity_factor > 1.0) {
    return Status::InvalidArgument(
        StrFormat("capacity factor %.3f outside (0, 1]", capacity_factor));
  }
  ports_.at(port).capacity_factor = capacity_factor;
  BumpGeneration();
  return Status::Ok();
}

bool SanTopology::LinkFailed(ComponentId port_a, ComponentId port_b) const {
  return failed_links_.count(PackLink(port_a, port_b)) > 0;
}

const ServerInfo& SanTopology::server(ComponentId id) const {
  return servers_.at(id);
}
const HbaInfo& SanTopology::hba(ComponentId id) const { return hbas_.at(id); }
const FcPortInfo& SanTopology::port(ComponentId id) const {
  return ports_.at(id);
}
const FcSwitchInfo& SanTopology::fc_switch(ComponentId id) const {
  return switches_.at(id);
}
const SubsystemInfo& SanTopology::subsystem(ComponentId id) const {
  return subsystems_.at(id);
}
const PoolInfo& SanTopology::pool(ComponentId id) const {
  return pools_.at(id);
}
const VolumeInfo& SanTopology::volume(ComponentId id) const {
  return volumes_.at(id);
}
const DiskInfo& SanTopology::disk(ComponentId id) const {
  return disks_.at(id);
}

std::vector<ComponentId> SanTopology::AllServers() const {
  return registry_->AllOfKind(ComponentKind::kServer);
}
std::vector<ComponentId> SanTopology::AllSwitches() const {
  return registry_->AllOfKind(ComponentKind::kFcSwitch);
}
std::vector<ComponentId> SanTopology::AllSubsystems() const {
  return registry_->AllOfKind(ComponentKind::kStorageSubsystem);
}
std::vector<ComponentId> SanTopology::AllPools() const {
  return registry_->AllOfKind(ComponentKind::kStoragePool);
}
std::vector<ComponentId> SanTopology::AllVolumes() const {
  return registry_->AllOfKind(ComponentKind::kVolume);
}
std::vector<ComponentId> SanTopology::AllDisks() const {
  return registry_->AllOfKind(ComponentKind::kDisk);
}

std::vector<ComponentId> SanTopology::DisksOfVolume(ComponentId vol) const {
  std::vector<ComponentId> out;
  auto it = volumes_.find(vol);
  if (it == volumes_.end()) return out;
  for (ComponentId d : pools_.at(it->second.pool).disks) {
    if (!disks_.at(d).failed) out.push_back(d);
  }
  return out;
}

int SanTopology::ActiveDiskCount(ComponentId pool_id) const {
  auto it = pools_.find(pool_id);
  if (it == pools_.end()) return 0;
  int n = 0;
  for (ComponentId d : it->second.disks) {
    if (!disks_.at(d).failed) ++n;
  }
  return n;
}

std::vector<ComponentId> SanTopology::VolumesSharingDisks(
    ComponentId vol) const {
  std::vector<ComponentId> out;
  auto it = volumes_.find(vol);
  if (it == volumes_.end()) return out;
  // Volumes in the same pool stripe over the same disks by construction.
  for (ComponentId other : pools_.at(it->second.pool).volumes) {
    if (other != vol) out.push_back(other);
  }
  return out;
}

bool SanTopology::LunMapped(ComponentId server, ComponentId volume) const {
  return lun_map_.count(PackPair(server, volume)) > 0;
}

bool SanTopology::InSameZone(ComponentId port_a, ComponentId port_b) const {
  for (const Zone& z : zones_) {
    if (z.member_ports.count(port_a) && z.member_ports.count(port_b)) {
      return true;
    }
  }
  return false;
}

bool SanTopology::PortBlocked(const FcPortInfo& port) const {
  if (port.failed) return true;
  if (port.owner_kind == PortOwner::kSwitch &&
      switches_.at(port.owner).failed) {
    return true;
  }
  return false;
}

std::vector<ComponentId> SanTopology::ShortestChain(
    ComponentId start, ComponentId subsystem,
    const std::unordered_set<ComponentId>& used) const {
  // Level-synchronous BFS over physical links plus intra-switch port
  // fanout (a frame entering a switch can leave through any of its ports),
  // skipping failed ports/switches/links and ports already claimed by an
  // accepted route. Each level's nodes are expanded in the order they were
  // discovered, with each node's neighbours visited in ascending
  // ComponentId order and parents assigned first-wins; by induction that
  // discovery order is exactly the lexicographic order of the port chains,
  // so the first zoned subsystem port found has the lexicographically
  // smallest shortest chain — resolution never depends on insertion order.
  ResolveScratch& s = *scratch_;
  const size_t need = registry_->size();
  if (s.seen.size() < need) {
    s.seen.resize(need, 0);
    s.parent.resize(need, ComponentId{});
  }
  const uint64_t epoch = ++s.epoch;
  auto visit = [&](ComponentId id, ComponentId from) {
    if (s.seen[id.value] == epoch) return false;
    s.seen[id.value] = epoch;
    s.parent[id.value] = from;
    return true;
  };

  std::vector<ComponentId> level{start};
  visit(start, start);
  std::vector<ComponentId> next_level;
  std::vector<ComponentId> neighbours;
  while (!level.empty()) {
    // Check this level for a zoned subsystem port (first in discovery
    // order == lexicographically smallest chain).
    for (ComponentId cur : level) {
      const FcPortInfo& cur_port = ports_.at(cur);
      if (cur_port.owner_kind == PortOwner::kSubsystem &&
          cur_port.owner == subsystem && InSameZone(start, cur)) {
        std::vector<ComponentId> chain;
        for (ComponentId p = cur; p != start; p = s.parent[p.value]) {
          chain.push_back(p);
        }
        chain.push_back(start);
        std::reverse(chain.begin(), chain.end());
        return chain;
      }
    }
    next_level.clear();
    for (ComponentId cur : level) {
      const FcPortInfo& cur_port = ports_.at(cur);
      neighbours.clear();
      for (ComponentId next : cur_port.links) {
        if (!LinkFailed(cur, next)) neighbours.push_back(next);
      }
      if (cur_port.owner_kind == PortOwner::kSwitch &&
          !switches_.at(cur_port.owner).failed) {
        const std::vector<ComponentId>& siblings =
            switches_.at(cur_port.owner).ports;
        neighbours.insert(neighbours.end(), siblings.begin(),
                          siblings.end());
      }
      std::sort(neighbours.begin(), neighbours.end());
      for (ComponentId next : neighbours) {
        if (used.count(next) > 0) continue;
        if (PortBlocked(ports_.at(next))) continue;
        if (visit(next, cur)) next_level.push_back(next);
      }
    }
    level.swap(next_level);
  }
  return {};
}

Result<std::vector<IoPath>> SanTopology::ResolvePaths(
    ComponentId server_id, ComponentId volume_id) const {
  DIADS_RETURN_IF_ERROR(ExpectKind(server_id, ComponentKind::kServer));
  DIADS_RETURN_IF_ERROR(ExpectKind(volume_id, ComponentKind::kVolume));
  if (!LunMapped(server_id, volume_id)) {
    return Status::FailedPrecondition(StrFormat(
        "LUN masking forbids server '%s' from accessing volume '%s'",
        registry_->NameOf(server_id).c_str(),
        registry_->NameOf(volume_id).c_str()));
  }
  const VolumeInfo& vol = volumes_.at(volume_id);
  const PoolInfo& pool_info = pools_.at(vol.pool);
  const SubsystemInfo& subsys = subsystems_.at(pool_info.subsystem);
  if (ActiveDiskCount(pool_info.id) == 0) {
    return Status::NotFound(
        StrFormat("no surviving disk backs volume '%s'",
                  registry_->NameOf(volume_id).c_str()));
  }

  std::lock_guard<std::mutex> lock(scratch_->mu);
  const uint64_t key = PackPair(server_id, volume_id);
  auto cached = scratch_->paths.find(key);
  if (cached != scratch_->paths.end()) return cached->second;

  // Greedy disjoint-route selection: HBAs and their ports in ascending
  // ComponentId order, one shortest chain per surviving HBA port, with
  // every claimed fabric port excluded from later searches — so the routes
  // are pairwise port-disjoint and the enumeration is deterministic.
  std::vector<ComponentId> hba_ids = servers_.at(server_id).hbas;
  std::sort(hba_ids.begin(), hba_ids.end());
  std::unordered_set<ComponentId> used;
  std::vector<IoPath> routes;
  for (ComponentId hba_id : hba_ids) {
    const HbaInfo& hba_info = hbas_.at(hba_id);
    if (hba_info.failed) continue;
    std::vector<ComponentId> starts = hba_info.ports;
    std::sort(starts.begin(), starts.end());
    for (ComponentId start : starts) {
      if (used.count(start) > 0 || PortBlocked(ports_.at(start))) continue;
      std::vector<ComponentId> chain =
          ShortestChain(start, subsys.id, used);
      if (chain.empty()) continue;
      IoPath path;
      path.server = server_id;
      path.hba = hba_id;
      path.ports = chain;
      for (ComponentId p : chain) {
        const FcPortInfo& info = ports_.at(p);
        if (info.owner_kind == PortOwner::kSwitch &&
            (path.switches.empty() || path.switches.back() != info.owner)) {
          path.switches.push_back(info.owner);
        }
      }
      path.subsystem = subsys.id;
      path.pool = pool_info.id;
      path.volume = volume_id;
      path.disks = DisksOfVolume(volume_id);
      used.insert(chain.begin(), chain.end());
      routes.push_back(std::move(path));
    }
  }
  if (routes.empty()) {
    return Status::NotFound(StrFormat(
        "no surviving zoned fabric route from server '%s' to volume '%s'",
        registry_->NameOf(server_id).c_str(),
        registry_->NameOf(volume_id).c_str()));
  }
  scratch_->paths.emplace(key, routes);
  return routes;
}

Result<IoPath> SanTopology::ResolvePath(ComponentId server_id,
                                        ComponentId volume_id) const {
  Result<std::vector<IoPath>> paths = ResolvePaths(server_id, volume_id);
  DIADS_RETURN_IF_ERROR(paths.status());
  return paths->front();
}

std::vector<std::pair<ComponentId, ComponentId>> SanTopology::LunMappings()
    const {
  std::vector<std::pair<ComponentId, ComponentId>> out;
  out.reserve(lun_map_.size());
  for (uint64_t packed : lun_map_) {
    out.emplace_back(ComponentId{static_cast<uint32_t>(packed >> 32)},
                     ComponentId{static_cast<uint32_t>(packed)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status SanTopology::Validate() const {
  for (const auto& [id, pool_info] : pools_) {
    if (pool_info.disks.empty()) {
      return Status::FailedPrecondition(
          StrFormat("pool '%s' has no disks", registry_->NameOf(id).c_str()));
    }
  }
  for (const auto& [id, vol] : volumes_) {
    if (ActiveDiskCount(vol.pool) == 0) {
      return Status::FailedPrecondition(
          StrFormat("volume '%s' has no active disks",
                    registry_->NameOf(id).c_str()));
    }
  }
  for (const auto& [id, hba_info] : hbas_) {
    bool cabled = false;
    for (ComponentId p : hba_info.ports) {
      if (!ports_.at(p).links.empty()) cabled = true;
    }
    if (!hba_info.ports.empty() && !cabled) {
      return Status::FailedPrecondition(StrFormat(
          "HBA '%s' has ports but no cabling", registry_->NameOf(id).c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace diads::san
