// SAN configuration database — the management-tool layer.
//
// Plays the role IBM TotalStorage Productivity Center (TPC) plays in the
// paper's deployment (Section 6): administrators perform configuration
// actions through it, it mutates the topology, and it records a timestamped
// configuration-change event for each action. Those events are exactly what
// Module SD's symptom signatures match against in scenario 1 ("creation of
// the new volume V'" + "creation of a new zoning and mapping relationship").
#ifndef DIADS_SAN_CONFIG_DB_H_
#define DIADS_SAN_CONFIG_DB_H_

#include <string>
#include <vector>

#include "common/event_log.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "san/topology.h"

namespace diads::san {

/// Management front-end over a SanTopology: every mutation is logged.
class ConfigDatabase {
 public:
  /// Both pointers must outlive the ConfigDatabase.
  ConfigDatabase(SanTopology* topology, EventLog* event_log)
      : topology_(topology), event_log_(event_log) {}

  /// Provisions a new volume in `pool` and logs kVolumeCreated.
  Result<ComponentId> ProvisionVolume(SimTimeMs t, const std::string& name,
                                      ComponentId pool, double size_gb);

  /// Adds ports to a zone and logs kZoningChanged.
  Status ChangeZoning(SimTimeMs t, const std::string& zone_name,
                      const std::vector<ComponentId>& ports);

  /// Maps `volume` to `server` (LUN masking) and logs kLunMappingChanged.
  Status ChangeLunMapping(SimTimeMs t, ComponentId server, ComponentId volume);

  /// Marks a disk failed and logs kDiskFailed.
  Status FailDisk(SimTimeMs t, ComponentId disk);

  /// Marks a disk recovered and logs kDiskRecovered.
  Status RecoverDisk(SimTimeMs t, ComponentId disk);

  /// Logs the start/completion of a RAID rebuild on a pool. The performance
  /// impact itself is injected through the SanPerfModel by the fault
  /// injector; the config DB records the events DIADS can correlate.
  Status RecordRaidRebuild(const TimeInterval& window, ComponentId pool);

  /// Logs a user-defined performance trigger (Section 3, item vi), e.g.
  /// "degradation in volume performance".
  Status RecordPerfTrigger(SimTimeMs t, EventType type, ComponentId subject,
                           const std::string& description);

  const SanTopology& topology() const { return *topology_; }
  const EventLog& event_log() const { return *event_log_; }

 private:
  Status LogEvent(SimTimeMs t, EventType type, ComponentId subject,
                  std::string description);

  SanTopology* topology_;
  EventLog* event_log_;
};

}  // namespace diads::san

#endif  // DIADS_SAN_CONFIG_DB_H_
