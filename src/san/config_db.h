// SAN configuration database — the management-tool layer.
//
// Plays the role IBM TotalStorage Productivity Center (TPC) plays in the
// paper's deployment (Section 6): administrators perform configuration
// actions through it, it mutates the topology, and it records a timestamped
// configuration-change event for each action. Those events are exactly what
// Module SD's symptom signatures match against in scenario 1 ("creation of
// the new volume V'" + "creation of a new zoning and mapping relationship").
#ifndef DIADS_SAN_CONFIG_DB_H_
#define DIADS_SAN_CONFIG_DB_H_

#include <string>
#include <vector>

#include "common/event_log.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "san/topology.h"

namespace diads::san {

/// Management front-end over a SanTopology: every mutation is logged.
class ConfigDatabase {
 public:
  /// Both pointers must outlive the ConfigDatabase.
  ConfigDatabase(SanTopology* topology, EventLog* event_log)
      : topology_(topology), event_log_(event_log) {}

  /// Provisions a new volume in `pool` and logs kVolumeCreated.
  Result<ComponentId> ProvisionVolume(SimTimeMs t, const std::string& name,
                                      ComponentId pool, double size_gb);

  /// Adds ports to a zone and logs kZoningChanged.
  Status ChangeZoning(SimTimeMs t, const std::string& zone_name,
                      const std::vector<ComponentId>& ports);

  /// Maps `volume` to `server` (LUN masking) and logs kLunMappingChanged.
  Status ChangeLunMapping(SimTimeMs t, ComponentId server, ComponentId volume);

  /// Marks a disk failed and logs kDiskFailed.
  Status FailDisk(SimTimeMs t, ComponentId disk);

  /// Marks a disk recovered and logs kDiskRecovered.
  Status RecoverDisk(SimTimeMs t, ComponentId disk);

  // --- Fabric failure state ------------------------------------------------
  // Each flip mutates the topology's failure state AND logs its
  // configuration-change event (Module CO's candidate causes). The flip
  // additionally applies the multipath failover policy: every lun-mapped
  // (server, volume) whose active path crossed the flipped component is
  // re-resolved, and if a surviving route exists a kPathFailover event is
  // logged against the volume — the driver-level path switch that *masks*
  // the fault from the application while DIADS still sees both events.

  /// Marks an HBA failed and logs kHbaFailed (+ failovers).
  Status FailHba(SimTimeMs t, ComponentId hba);
  /// Marks an HBA recovered and logs kHbaRecovered (+ failbacks).
  Status RecoverHba(SimTimeMs t, ComponentId hba);
  /// Marks an FC port failed and logs kPortFailed (+ failovers).
  Status FailPort(SimTimeMs t, ComponentId port);
  /// Marks an FC port recovered and logs kPortRecovered (+ failbacks).
  Status RecoverPort(SimTimeMs t, ComponentId port);
  /// Marks a switch failed and logs kSwitchFailed (+ failovers).
  Status FailSwitch(SimTimeMs t, ComponentId fc_switch);
  /// Marks a switch recovered and logs kSwitchRecovered (+ failbacks).
  Status RecoverSwitch(SimTimeMs t, ComponentId fc_switch);
  /// Marks the link between two ports failed and logs kLinkFailed
  /// (+ failovers), subject = port_a.
  Status FailLink(SimTimeMs t, ComponentId port_a, ComponentId port_b);
  /// Recovers the link and logs kLinkRecovered (+ failbacks).
  Status RecoverLink(SimTimeMs t, ComponentId port_a, ComponentId port_b);
  /// Reduces a port's capacity factor and logs kPortDegraded. No failover:
  /// a degraded port keeps routing, which is the multipath-imbalance trap.
  Status DegradePort(SimTimeMs t, ComponentId port, double capacity_factor);

  /// Logs the start/completion of a RAID rebuild on a pool. The performance
  /// impact itself is injected through the SanPerfModel by the fault
  /// injector; the config DB records the events DIADS can correlate.
  Status RecordRaidRebuild(const TimeInterval& window, ComponentId pool);

  /// Logs a user-defined performance trigger (Section 3, item vi), e.g.
  /// "degradation in volume performance".
  Status RecordPerfTrigger(SimTimeMs t, EventType type, ComponentId subject,
                           const std::string& description);

  const SanTopology& topology() const { return *topology_; }
  const EventLog& event_log() const { return *event_log_; }

 private:
  /// One lun mapping's active (first) path before a failure flip.
  struct ActivePath {
    ComponentId server;
    ComponentId volume;
    std::vector<ComponentId> ports;  ///< Empty when it did not resolve.
  };

  Status LogEvent(SimTimeMs t, EventType type, ComponentId subject,
                  std::string description);

  /// Active path of every lun mapping, in LunMappings order.
  std::vector<ActivePath> SnapshotActivePaths() const;

  /// Re-resolves every snapshotted mapping and logs kPathFailover for each
  /// whose active port chain changed but still resolves.
  Status LogFailovers(SimTimeMs t, const std::vector<ActivePath>& before);

  SanTopology* topology_;
  EventLog* event_log_;
};

}  // namespace diads::san

#endif  // DIADS_SAN_CONFIG_DB_H_
