// Parameterized SAN fabric generator.
//
// Builds families of multipath topologies — star, hierarchical star, or
// switch trees, replicated across R redundant fabrics — so scenarios and
// benchmarks can scale from the hand-built Figure-1 testbed (a dozen
// components) to production-sized fabrics (1000+ components) without
// hand-enumerating ports and cables. Generation is a pure function of the
// spec: identical specs yield identical names, ids, cabling, zoning, and
// LUN mappings, so generated testbeds are as reproducible as Figure-1.
//
// Redundancy contract: with `redundancy` R >= 2, every server reaches every
// mapped volume through R fabric-disjoint routes (one HBA per fabric, one
// subsystem port per fabric, no shared switches or cables), so any single
// HBA, port, or switch failure leaves at least one surviving route. The
// generated-topology property test pins exactly that guarantee.
#ifndef DIADS_SAN_GENERATOR_H_
#define DIADS_SAN_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "san/topology.h"

namespace diads::san {

/// Shape of one fabric (replicated `redundancy` times).
enum class FabricStyle {
  kStar,              ///< One switch; everything attaches to it.
  kHierarchicalStar,  ///< One core; `fanout` edge switches attach devices.
  kTree,              ///< `tiers` levels, each switch with `fanout` children;
                      ///< devices attach to the leaf tier.
};

const char* FabricStyleName(FabricStyle style);

struct FabricSpec {
  FabricStyle style = FabricStyle::kHierarchicalStar;
  /// Number of independent fabrics (multipath width). Each server gets one
  /// HBA per fabric; each subsystem gets one port per fabric.
  int redundancy = 2;
  /// Switch levels per fabric (kTree only; kStar is 1, kHierarchicalStar 2).
  int tiers = 2;
  /// Edge switches per core (kHierarchicalStar) / children per switch (kTree).
  int fanout = 4;
  int servers = 2;
  int subsystems = 1;
  /// Storage shape. `pools_per_subsystem` 0 leaves storage to the caller
  /// (used when a testbed needs hand-placed pools like Figure-1's P1/P2).
  int pools_per_subsystem = 1;
  int disks_per_pool = 8;
  /// 0 leaves volume carving to the caller.
  int volumes_per_pool = 2;
  double volume_gb = 200.0;
  double port_gbps = 4.0;
  /// Round-robin volume -> server LUN mapping (volume j to server j mod N).
  bool map_luns = true;
  /// Name prefix for every generated component.
  std::string prefix = "gen";
};

/// Handles into the generated components.
struct GeneratedFabric {
  std::vector<ComponentId> servers;
  /// server_hbas[i][r] = server i's HBA on fabric r.
  std::vector<std::vector<ComponentId>> server_hbas;
  std::vector<ComponentId> subsystems;
  std::vector<ComponentId> pools;
  std::vector<ComponentId> volumes;
  /// fabric_switches[r] = fabric r's switches, core/root first.
  std::vector<std::vector<ComponentId>> fabric_switches;
  /// LUN mappings created (server, volume), in creation order.
  std::vector<std::pair<ComponentId, ComponentId>> mappings;
  /// Registry components added by this generation.
  size_t component_count = 0;
};

/// Generates a fabric into `topology` per `spec`. The topology is validated
/// before return when the spec includes storage.
Result<GeneratedFabric> GenerateFabricTopology(SanTopology* topology,
                                               const FabricSpec& spec);

/// A hierarchical-star spec whose generation crosses 1000 registry
/// components (the scale gate bench_topology_scale runs against).
FabricSpec LargeFabricSpec();

}  // namespace diads::san

#endif  // DIADS_SAN_GENERATOR_H_
