#include "san/generator.h"

#include <algorithm>

#include "common/strings.h"

namespace diads::san {

const char* FabricStyleName(FabricStyle style) {
  switch (style) {
    case FabricStyle::kStar:
      return "star";
    case FabricStyle::kHierarchicalStar:
      return "hierarchical-star";
    case FabricStyle::kTree:
      return "tree";
  }
  return "?";
}

namespace {

/// One fabric's switch plumbing: the switches plus an attachment policy
/// (which switch the i-th device plugs into).
struct FabricPlan {
  std::vector<ComponentId> switches;      ///< Core/root first.
  std::vector<ComponentId> attach_points; ///< Round-robin targets.
};

/// Adds a port on `owner` named after its running per-switch port counter.
Result<ComponentId> AddSwitchPort(SanTopology* topo, ComponentId sw,
                                  const std::string& sw_name, int* port_seq,
                                  double gbps) {
  return topo->AddPort(StrFormat("%s-p%d", sw_name.c_str(), (*port_seq)++),
                       PortOwner::kSwitch, sw, gbps);
}

Result<FabricPlan> BuildFabricSwitches(SanTopology* topo,
                                       const FabricSpec& spec, int fabric,
                                       std::vector<int>* port_seq,
                                       std::vector<std::string>* sw_names) {
  FabricPlan plan;
  auto add_switch = [&](const std::string& name,
                        bool is_core) -> Result<ComponentId> {
    Result<ComponentId> sw = topo->AddSwitch(name, is_core);
    DIADS_RETURN_IF_ERROR(sw.status());
    plan.switches.push_back(*sw);
    sw_names->push_back(name);
    port_seq->push_back(0);
    return *sw;
  };
  auto link_switches = [&](size_t parent_idx,
                           size_t child_idx) -> Status {
    Result<ComponentId> up = AddSwitchPort(
        topo, plan.switches[parent_idx], (*sw_names)[parent_idx],
        &(*port_seq)[parent_idx], spec.port_gbps);
    DIADS_RETURN_IF_ERROR(up.status());
    Result<ComponentId> down = AddSwitchPort(
        topo, plan.switches[child_idx], (*sw_names)[child_idx],
        &(*port_seq)[child_idx], spec.port_gbps);
    DIADS_RETURN_IF_ERROR(down.status());
    return topo->Link(*up, *down);
  };
  const std::string base =
      StrFormat("%s-f%d", spec.prefix.c_str(), fabric);

  switch (spec.style) {
    case FabricStyle::kStar: {
      DIADS_RETURN_IF_ERROR(
          add_switch(StrFormat("%s-sw", base.c_str()), true).status());
      plan.attach_points.push_back(plan.switches[0]);
      break;
    }
    case FabricStyle::kHierarchicalStar: {
      DIADS_RETURN_IF_ERROR(
          add_switch(StrFormat("%s-core", base.c_str()), true).status());
      for (int e = 0; e < std::max(1, spec.fanout); ++e) {
        Result<ComponentId> edge =
            add_switch(StrFormat("%s-edge%d", base.c_str(), e), false);
        DIADS_RETURN_IF_ERROR(edge.status());
        DIADS_RETURN_IF_ERROR(link_switches(0, plan.switches.size() - 1));
        plan.attach_points.push_back(*edge);
      }
      break;
    }
    case FabricStyle::kTree: {
      // Level 0 is the root; level k has fanout^k switches, each cabled to
      // its parent (index / fanout) in level k-1. Devices attach to leaves.
      const int tiers = std::max(1, spec.tiers);
      const int fanout = std::max(1, spec.fanout);
      size_t level_begin = 0;
      size_t level_count = 1;
      DIADS_RETURN_IF_ERROR(
          add_switch(StrFormat("%s-t0-sw0", base.c_str()), true).status());
      for (int t = 1; t < tiers; ++t) {
        const size_t parent_begin = level_begin;
        level_begin = plan.switches.size();
        const size_t n = level_count * static_cast<size_t>(fanout);
        for (size_t s = 0; s < n; ++s) {
          DIADS_RETURN_IF_ERROR(
              add_switch(StrFormat("%s-t%d-sw%zu", base.c_str(), t, s),
                         /*is_core=*/false)
                  .status());
          DIADS_RETURN_IF_ERROR(link_switches(
              parent_begin + s / static_cast<size_t>(fanout),
              plan.switches.size() - 1));
        }
        level_count = n;
      }
      for (size_t s = level_begin; s < plan.switches.size(); ++s) {
        plan.attach_points.push_back(plan.switches[s]);
      }
      break;
    }
  }
  return plan;
}

}  // namespace

Result<GeneratedFabric> GenerateFabricTopology(SanTopology* topology,
                                               const FabricSpec& spec) {
  if (spec.redundancy < 1) {
    return Status::InvalidArgument("fabric redundancy must be >= 1");
  }
  if (spec.servers < 1 || spec.subsystems < 1) {
    return Status::InvalidArgument(
        "generated fabric needs at least one server and one subsystem");
  }
  GeneratedFabric out;
  const size_t registry_before = topology->registry().size();

  // --- Switch fabrics -------------------------------------------------------
  // One independent switch complex per redundancy rank; nothing is shared
  // between fabrics, so a single switch failure is confined to its rank.
  std::vector<FabricPlan> fabrics;
  std::vector<std::vector<int>> port_seqs(
      static_cast<size_t>(spec.redundancy));
  std::vector<std::vector<std::string>> sw_names(
      static_cast<size_t>(spec.redundancy));
  for (int r = 0; r < spec.redundancy; ++r) {
    Result<FabricPlan> plan = BuildFabricSwitches(
        topology, spec, r, &port_seqs[static_cast<size_t>(r)],
        &sw_names[static_cast<size_t>(r)]);
    DIADS_RETURN_IF_ERROR(plan.status());
    fabrics.push_back(std::move(*plan));
    out.fabric_switches.push_back(fabrics.back().switches);
  }
  // Round-robin attachment of the i-th device of fabric r, cabling the
  // device port to a fresh port on the chosen switch.
  std::vector<int> attach_counter(static_cast<size_t>(spec.redundancy), 0);
  auto attach = [&](int r, ComponentId device_port) -> Status {
    const auto rr = static_cast<size_t>(r);
    FabricPlan& plan = fabrics[rr];
    const size_t pick = static_cast<size_t>(attach_counter[rr]++) %
                        plan.attach_points.size();
    // attach_points are the trailing entries of `switches`; find its index
    // to address the matching name/port-counter slots.
    const size_t sw_idx = static_cast<size_t>(
        std::find(plan.switches.begin(), plan.switches.end(),
                  plan.attach_points[pick]) -
        plan.switches.begin());
    Result<ComponentId> sw_port = AddSwitchPort(
        topology, plan.switches[sw_idx], sw_names[rr][sw_idx],
        &port_seqs[rr][sw_idx], spec.port_gbps);
    DIADS_RETURN_IF_ERROR(sw_port.status());
    return topology->Link(device_port, *sw_port);
  };

  // --- Servers: one HBA (with one port) per fabric --------------------------
  std::vector<std::vector<ComponentId>> hba_ports_by_fabric(
      static_cast<size_t>(spec.redundancy));
  for (int i = 0; i < spec.servers; ++i) {
    Result<ComponentId> server = topology->AddServer(
        StrFormat("%s-srv%d", spec.prefix.c_str(), i), "RedHat Linux");
    DIADS_RETURN_IF_ERROR(server.status());
    out.servers.push_back(*server);
    out.server_hbas.emplace_back();
    for (int r = 0; r < spec.redundancy; ++r) {
      Result<ComponentId> hba = topology->AddHba(
          StrFormat("%s-srv%d-hba%d", spec.prefix.c_str(), i, r), *server);
      DIADS_RETURN_IF_ERROR(hba.status());
      out.server_hbas.back().push_back(*hba);
      Result<ComponentId> port = topology->AddPort(
          StrFormat("%s-srv%d-hba%d-p0", spec.prefix.c_str(), i, r),
          PortOwner::kHba, *hba, spec.port_gbps);
      DIADS_RETURN_IF_ERROR(port.status());
      hba_ports_by_fabric[static_cast<size_t>(r)].push_back(*port);
      DIADS_RETURN_IF_ERROR(attach(r, *port));
    }
  }

  // --- Subsystems: one port per fabric, plus uniform storage ----------------
  std::vector<std::vector<ComponentId>> ss_ports_by_fabric(
      static_cast<size_t>(spec.redundancy));
  int volume_seq = 0;
  for (int s = 0; s < spec.subsystems; ++s) {
    Result<ComponentId> ss = topology->AddSubsystem(
        StrFormat("%s-ss%d", spec.prefix.c_str(), s), "IBM DS8000");
    DIADS_RETURN_IF_ERROR(ss.status());
    out.subsystems.push_back(*ss);
    for (int r = 0; r < spec.redundancy; ++r) {
      Result<ComponentId> port = topology->AddPort(
          StrFormat("%s-ss%d-f%d-p0", spec.prefix.c_str(), s, r),
          PortOwner::kSubsystem, *ss, spec.port_gbps);
      DIADS_RETURN_IF_ERROR(port.status());
      ss_ports_by_fabric[static_cast<size_t>(r)].push_back(*port);
      DIADS_RETURN_IF_ERROR(attach(r, *port));
    }
    for (int p = 0; p < spec.pools_per_subsystem; ++p) {
      Result<ComponentId> pool = topology->AddPool(
          StrFormat("%s-ss%d-pool%d", spec.prefix.c_str(), s, p), *ss,
          RaidLevel::kRaid5);
      DIADS_RETURN_IF_ERROR(pool.status());
      out.pools.push_back(*pool);
      for (int d = 0; d < spec.disks_per_pool; ++d) {
        DIADS_RETURN_IF_ERROR(
            topology
                ->AddDisk(StrFormat("%s-ss%d-pool%d-d%d",
                                    spec.prefix.c_str(), s, p, d),
                          *pool)
                .status());
      }
      for (int v = 0; v < spec.volumes_per_pool; ++v) {
        Result<ComponentId> volume = topology->AddVolume(
            StrFormat("%s-vol%d", spec.prefix.c_str(), volume_seq++), *pool,
            spec.volume_gb);
        DIADS_RETURN_IF_ERROR(volume.status());
        out.volumes.push_back(*volume);
      }
    }
  }

  // --- Zoning: one zone per fabric over its HBA + subsystem ports -----------
  for (int r = 0; r < spec.redundancy; ++r) {
    std::vector<ComponentId> members = hba_ports_by_fabric[
        static_cast<size_t>(r)];
    for (ComponentId p : ss_ports_by_fabric[static_cast<size_t>(r)]) {
      members.push_back(p);
    }
    DIADS_RETURN_IF_ERROR(topology->AddZone(
        StrFormat("%s-f%d-zone", spec.prefix.c_str(), r), members));
  }

  // --- LUN mapping ----------------------------------------------------------
  if (spec.map_luns) {
    for (size_t j = 0; j < out.volumes.size(); ++j) {
      const ComponentId server = out.servers[j % out.servers.size()];
      DIADS_RETURN_IF_ERROR(topology->MapLun(server, out.volumes[j]));
      out.mappings.emplace_back(server, out.volumes[j]);
    }
  }

  if (spec.pools_per_subsystem > 0) {
    DIADS_RETURN_IF_ERROR(topology->Validate());
  }
  out.component_count = topology->registry().size() - registry_before;
  return out;
}

FabricSpec LargeFabricSpec() {
  FabricSpec spec;
  spec.style = FabricStyle::kHierarchicalStar;
  spec.redundancy = 2;
  spec.fanout = 8;
  spec.servers = 60;
  spec.subsystems = 8;
  spec.pools_per_subsystem = 4;
  spec.disks_per_pool = 12;
  spec.volumes_per_pool = 4;
  spec.prefix = "scale";
  return spec;
}

}  // namespace diads::san
