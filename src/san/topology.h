// SAN topology model.
//
// Models the storage stack of Section 3.1.1: servers with Host Bus Adapters
// (HBAs) whose Fibre Channel ports connect through a hierarchy of edge/core
// FC switches to storage-subsystem ports; subsystems aggregate physical disks
// into RAID storage pools, which are carved into storage volumes; zoning
// restricts which subsystem ports a server port may reach, and LUN
// masking/mapping restricts which volumes a server may access.
//
// The topology answers the two questions the APG needs:
//   * inner dependency path: the physical chain server -> HBA -> switches ->
//     subsystem -> pool -> volume -> disks for a (server, volume) pair;
//   * outer dependency path: the volumes that share physical disks with a
//     given volume (the channel through which "another application workload
//     ... mapped to the same physical disks" causes contention — the paper's
//     scenario 1).
#ifndef DIADS_SAN_TOPOLOGY_H_
#define DIADS_SAN_TOPOLOGY_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace diads::san {

/// RAID organisation of a storage pool. Affects how volume I/O spreads over
/// member disks (data disks vs. parity overhead).
enum class RaidLevel { kRaid0, kRaid1, kRaid5, kRaid10 };

const char* RaidLevelName(RaidLevel level);

/// Write amplification factor at the disk level for a RAID scheme (e.g.,
/// RAID5 turns one logical write into ~4 disk operations in the classic
/// read-modify-write path; the subsystem cache absorbs part of that, which
/// the performance model accounts for separately).
double RaidWritePenalty(RaidLevel level);

struct ServerInfo {
  ComponentId id;
  std::string os;  ///< e.g. "RedHat Linux".
  int cpu_cores = 8;
  double cpu_ghz = 2.4;
  std::vector<ComponentId> hbas;
};

struct HbaInfo {
  ComponentId id;
  ComponentId server;
  std::vector<ComponentId> ports;
};

/// Where an FC port lives.
enum class PortOwner { kHba, kSwitch, kSubsystem };

struct FcPortInfo {
  ComponentId id;
  PortOwner owner_kind = PortOwner::kHba;
  ComponentId owner;
  double gbps = 4.0;
  /// Ports this port is cabled to (physical links).
  std::vector<ComponentId> links;
};

struct FcSwitchInfo {
  ComponentId id;
  bool is_core = false;  ///< Core vs. edge switch in the fabric hierarchy.
  std::vector<ComponentId> ports;
};

struct SubsystemInfo {
  ComponentId id;
  std::string model;  ///< e.g. "IBM DS6000".
  std::vector<ComponentId> ports;
  std::vector<ComponentId> pools;
  double cache_gb = 4.0;
};

struct PoolInfo {
  ComponentId id;
  ComponentId subsystem;
  RaidLevel raid = RaidLevel::kRaid5;
  std::vector<ComponentId> disks;
  std::vector<ComponentId> volumes;
};

struct VolumeInfo {
  ComponentId id;
  ComponentId pool;
  double size_gb = 100.0;
};

struct DiskInfo {
  ComponentId id;
  ComponentId pool;
  double capacity_gb = 146.0;
  int rpm = 15000;
  bool failed = false;
};

/// A named zone: the set of FC ports allowed to see each other through the
/// fabric. A server port can reach a subsystem port only if some zone
/// contains both.
struct Zone {
  std::string name;
  std::unordered_set<ComponentId> member_ports;
};

/// The end-to-end physical chain from a server to the disks backing a
/// volume, in dependency order. This is the APG inner dependency path for
/// any operator reading that volume through that server (Section 3).
struct IoPath {
  ComponentId server;
  ComponentId hba;
  std::vector<ComponentId> ports;     ///< Traversed ports, HBA-side first.
  std::vector<ComponentId> switches;  ///< Traversed switches, edge first.
  ComponentId subsystem;
  ComponentId pool;
  ComponentId volume;
  std::vector<ComponentId> disks;

  /// All components in traversal order (server first, disks last).
  std::vector<ComponentId> AllComponents() const;
};

/// Mutable SAN topology. Construction-order rules: a component's parents
/// must exist before it (e.g., AddPool requires its subsystem).
class SanTopology {
 public:
  /// The registry is shared with the database layer and must outlive the
  /// topology.
  explicit SanTopology(ComponentRegistry* registry);

  SanTopology(const SanTopology&) = delete;
  SanTopology& operator=(const SanTopology&) = delete;
  SanTopology(SanTopology&&) = default;

  // --- Builders -----------------------------------------------------------
  Result<ComponentId> AddServer(const std::string& name, const std::string& os);
  Result<ComponentId> AddHba(const std::string& name, ComponentId server);
  Result<ComponentId> AddSwitch(const std::string& name, bool is_core);
  Result<ComponentId> AddSubsystem(const std::string& name,
                                   const std::string& model);
  Result<ComponentId> AddPort(const std::string& name, PortOwner owner_kind,
                              ComponentId owner, double gbps = 4.0);
  Result<ComponentId> AddPool(const std::string& name, ComponentId subsystem,
                              RaidLevel raid);
  Result<ComponentId> AddDisk(const std::string& name, ComponentId pool,
                              double capacity_gb = 146.0, int rpm = 15000);
  Result<ComponentId> AddVolume(const std::string& name, ComponentId pool,
                                double size_gb);

  /// Cables two ports together (bidirectional physical link).
  Status Link(ComponentId port_a, ComponentId port_b);

  /// Creates (or extends) a zone containing the given ports.
  Status AddZone(const std::string& zone_name,
                 const std::vector<ComponentId>& ports);

  /// LUN mapping/masking: allows `server` to access `volume`.
  Status MapLun(ComponentId server, ComponentId volume);

  /// Marks a disk failed/recovered; the performance model spreads pool load
  /// over the surviving disks.
  Status SetDiskFailed(ComponentId disk, bool failed);

  // --- Accessors ----------------------------------------------------------
  const ComponentRegistry& registry() const { return *registry_; }
  ComponentRegistry* mutable_registry() { return registry_; }

  const ServerInfo& server(ComponentId id) const;
  const HbaInfo& hba(ComponentId id) const;
  const FcPortInfo& port(ComponentId id) const;
  const FcSwitchInfo& fc_switch(ComponentId id) const;
  const SubsystemInfo& subsystem(ComponentId id) const;
  const PoolInfo& pool(ComponentId id) const;
  const VolumeInfo& volume(ComponentId id) const;
  const DiskInfo& disk(ComponentId id) const;

  std::vector<ComponentId> AllServers() const;
  std::vector<ComponentId> AllSwitches() const;
  std::vector<ComponentId> AllSubsystems() const;
  std::vector<ComponentId> AllPools() const;
  std::vector<ComponentId> AllVolumes() const;
  std::vector<ComponentId> AllDisks() const;

  // --- Derived queries ----------------------------------------------------
  /// Disks backing a volume (its pool's non-failed disks).
  std::vector<ComponentId> DisksOfVolume(ComponentId volume) const;

  /// Number of non-failed disks in a pool.
  int ActiveDiskCount(ComponentId pool) const;

  /// Volumes that share at least one physical disk with `volume`, excluding
  /// `volume` itself. These are the APG outer-dependency-path volumes.
  std::vector<ComponentId> VolumesSharingDisks(ComponentId volume) const;

  /// True if LUN masking allows the server to access the volume.
  bool LunMapped(ComponentId server, ComponentId volume) const;

  /// True if zoning allows the two ports to communicate.
  bool InSameZone(ComponentId port_a, ComponentId port_b) const;

  /// Resolves the physical I/O path from `server` to `volume`, honouring
  /// cabling, zoning, and LUN masking. Fails with kFailedPrecondition when
  /// configuration forbids access and kNotFound when no cabled route exists.
  Result<IoPath> ResolvePath(ComponentId server, ComponentId volume) const;

  /// Structural validation: every volume's pool has disks, every HBA has a
  /// cabled port, etc. Returns the first problem found.
  Status Validate() const;

 private:
  Status ExpectKind(ComponentId id, ComponentKind kind) const;

  ComponentRegistry* registry_;
  std::unordered_map<ComponentId, ServerInfo> servers_;
  std::unordered_map<ComponentId, HbaInfo> hbas_;
  std::unordered_map<ComponentId, FcPortInfo> ports_;
  std::unordered_map<ComponentId, FcSwitchInfo> switches_;
  std::unordered_map<ComponentId, SubsystemInfo> subsystems_;
  std::unordered_map<ComponentId, PoolInfo> pools_;
  std::unordered_map<ComponentId, VolumeInfo> volumes_;
  std::unordered_map<ComponentId, DiskInfo> disks_;
  std::vector<Zone> zones_;
  std::unordered_set<uint64_t> lun_map_;  ///< (server,volume) packed pairs.
};

}  // namespace diads::san

#endif  // DIADS_SAN_TOPOLOGY_H_
