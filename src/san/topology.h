// SAN topology model.
//
// Models the storage stack of Section 3.1.1: servers with Host Bus Adapters
// (HBAs) whose Fibre Channel ports connect through a hierarchy of edge/core
// FC switches to storage-subsystem ports; subsystems aggregate physical disks
// into RAID storage pools, which are carved into storage volumes; zoning
// restricts which subsystem ports a server port may reach, and LUN
// masking/mapping restricts which volumes a server may access.
//
// The topology answers the two questions the APG needs:
//   * inner dependency path: the physical chain server -> HBA -> switches ->
//     subsystem -> pool -> volume -> disks for a (server, volume) pair;
//   * outer dependency path: the volumes that share physical disks with a
//     given volume (the channel through which "another application workload
//     ... mapped to the same physical disks" causes contention — the paper's
//     scenario 1).
#ifndef DIADS_SAN_TOPOLOGY_H_
#define DIADS_SAN_TOPOLOGY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace diads::san {

/// RAID organisation of a storage pool. Affects how volume I/O spreads over
/// member disks (data disks vs. parity overhead).
enum class RaidLevel { kRaid0, kRaid1, kRaid5, kRaid10 };

const char* RaidLevelName(RaidLevel level);

/// Write amplification factor at the disk level for a RAID scheme (e.g.,
/// RAID5 turns one logical write into ~4 disk operations in the classic
/// read-modify-write path; the subsystem cache absorbs part of that, which
/// the performance model accounts for separately).
double RaidWritePenalty(RaidLevel level);

struct ServerInfo {
  ComponentId id;
  std::string os;  ///< e.g. "RedHat Linux".
  int cpu_cores = 8;
  double cpu_ghz = 2.4;
  std::vector<ComponentId> hbas;
};

struct HbaInfo {
  ComponentId id;
  ComponentId server;
  std::vector<ComponentId> ports;
  bool failed = false;  ///< A failed HBA originates no routes.
};

/// Where an FC port lives.
enum class PortOwner { kHba, kSwitch, kSubsystem };

struct FcPortInfo {
  ComponentId id;
  PortOwner owner_kind = PortOwner::kHba;
  ComponentId owner;
  double gbps = 4.0;
  /// Ports this port is cabled to (physical links).
  std::vector<ComponentId> links;
  bool failed = false;  ///< A failed port carries no routes.
  /// Fraction of nominal bandwidth still available (1.0 = healthy). A
  /// degraded port (< 1.0) still routes — the degradation surfaces through
  /// the performance model's utilisation, not through resolution.
  double capacity_factor = 1.0;

  bool degraded() const { return capacity_factor < 1.0; }
  /// Effective bandwidth in MB/s (1 Gbps ~ 125 MB/s of payload).
  double EffectiveMbPerSec() const { return gbps * 125.0 * capacity_factor; }
};

struct FcSwitchInfo {
  ComponentId id;
  bool is_core = false;  ///< Core vs. edge switch in the fabric hierarchy.
  std::vector<ComponentId> ports;
  bool failed = false;  ///< A failed switch blocks all of its ports.
};

struct SubsystemInfo {
  ComponentId id;
  std::string model;  ///< e.g. "IBM DS6000".
  std::vector<ComponentId> ports;
  std::vector<ComponentId> pools;
  double cache_gb = 4.0;
};

struct PoolInfo {
  ComponentId id;
  ComponentId subsystem;
  RaidLevel raid = RaidLevel::kRaid5;
  std::vector<ComponentId> disks;
  std::vector<ComponentId> volumes;
};

struct VolumeInfo {
  ComponentId id;
  ComponentId pool;
  double size_gb = 100.0;
};

struct DiskInfo {
  ComponentId id;
  ComponentId pool;
  double capacity_gb = 146.0;
  int rpm = 15000;
  bool failed = false;
};

/// A named zone: the set of FC ports allowed to see each other through the
/// fabric. A server port can reach a subsystem port only if some zone
/// contains both.
struct Zone {
  std::string name;
  std::unordered_set<ComponentId> member_ports;
};

/// The end-to-end physical chain from a server to the disks backing a
/// volume, in dependency order. This is the APG inner dependency path for
/// any operator reading that volume through that server (Section 3).
struct IoPath {
  ComponentId server;
  ComponentId hba;
  std::vector<ComponentId> ports;     ///< Traversed ports, HBA-side first.
  std::vector<ComponentId> switches;  ///< Traversed switches, edge first.
  ComponentId subsystem;
  ComponentId pool;
  ComponentId volume;
  std::vector<ComponentId> disks;

  /// All components in traversal order (server first, disks last).
  std::vector<ComponentId> AllComponents() const;
};

/// Mutable SAN topology. Construction-order rules: a component's parents
/// must exist before it (e.g., AddPool requires its subsystem).
class SanTopology {
 public:
  /// The registry is shared with the database layer and must outlive the
  /// topology.
  explicit SanTopology(ComponentRegistry* registry);

  SanTopology(const SanTopology&) = delete;
  SanTopology& operator=(const SanTopology&) = delete;
  SanTopology(SanTopology&&) = default;

  // --- Builders -----------------------------------------------------------
  Result<ComponentId> AddServer(const std::string& name, const std::string& os);
  Result<ComponentId> AddHba(const std::string& name, ComponentId server);
  Result<ComponentId> AddSwitch(const std::string& name, bool is_core);
  Result<ComponentId> AddSubsystem(const std::string& name,
                                   const std::string& model);
  Result<ComponentId> AddPort(const std::string& name, PortOwner owner_kind,
                              ComponentId owner, double gbps = 4.0);
  Result<ComponentId> AddPool(const std::string& name, ComponentId subsystem,
                              RaidLevel raid);
  Result<ComponentId> AddDisk(const std::string& name, ComponentId pool,
                              double capacity_gb = 146.0, int rpm = 15000);
  Result<ComponentId> AddVolume(const std::string& name, ComponentId pool,
                                double size_gb);

  /// Cables two ports together (bidirectional physical link).
  Status Link(ComponentId port_a, ComponentId port_b);

  /// Creates (or extends) a zone containing the given ports.
  Status AddZone(const std::string& zone_name,
                 const std::vector<ComponentId>& ports);

  /// LUN mapping/masking: allows `server` to access `volume`.
  Status MapLun(ComponentId server, ComponentId volume);

  /// Marks a disk failed/recovered; the performance model spreads pool load
  /// over the surviving disks.
  Status SetDiskFailed(ComponentId disk, bool failed);

  // --- Failure state (fabric) ---------------------------------------------
  // Every flip invalidates cached path resolutions; prefer routing these
  // through ConfigDatabase so Module CO sees the configuration-change event.

  /// Marks an HBA failed/recovered; a failed HBA originates no routes.
  Status SetHbaFailed(ComponentId hba, bool failed);

  /// Marks an FC port failed/recovered; a failed port carries no routes.
  Status SetPortFailed(ComponentId port, bool failed);

  /// Marks a switch failed/recovered; all of its ports stop routing.
  Status SetSwitchFailed(ComponentId fc_switch, bool failed);

  /// Marks the physical link between two cabled ports failed/recovered.
  Status SetLinkFailed(ComponentId port_a, ComponentId port_b, bool failed);

  /// Sets a port's remaining-capacity factor in (0, 1]; < 1 models a
  /// renegotiated/degraded link. The port keeps routing.
  Status SetPortDegraded(ComponentId port, double capacity_factor);

  /// True if the link between the two ports is marked failed.
  bool LinkFailed(ComponentId port_a, ComponentId port_b) const;

  // --- Accessors ----------------------------------------------------------
  const ComponentRegistry& registry() const { return *registry_; }
  ComponentRegistry* mutable_registry() { return registry_; }

  const ServerInfo& server(ComponentId id) const;
  const HbaInfo& hba(ComponentId id) const;
  const FcPortInfo& port(ComponentId id) const;
  const FcSwitchInfo& fc_switch(ComponentId id) const;
  const SubsystemInfo& subsystem(ComponentId id) const;
  const PoolInfo& pool(ComponentId id) const;
  const VolumeInfo& volume(ComponentId id) const;
  const DiskInfo& disk(ComponentId id) const;

  std::vector<ComponentId> AllServers() const;
  std::vector<ComponentId> AllSwitches() const;
  std::vector<ComponentId> AllSubsystems() const;
  std::vector<ComponentId> AllPools() const;
  std::vector<ComponentId> AllVolumes() const;
  std::vector<ComponentId> AllDisks() const;

  // --- Derived queries ----------------------------------------------------
  /// Disks backing a volume (its pool's non-failed disks).
  std::vector<ComponentId> DisksOfVolume(ComponentId volume) const;

  /// Number of non-failed disks in a pool.
  int ActiveDiskCount(ComponentId pool) const;

  /// Volumes that share at least one physical disk with `volume`, excluding
  /// `volume` itself. These are the APG outer-dependency-path volumes.
  std::vector<ComponentId> VolumesSharingDisks(ComponentId volume) const;

  /// True if LUN masking allows the server to access the volume.
  bool LunMapped(ComponentId server, ComponentId volume) const;

  /// True if zoning allows the two ports to communicate.
  bool InSameZone(ComponentId port_a, ComponentId port_b) const;

  /// All lun-mapped (server, volume) pairs, sorted by (server, volume) id —
  /// the deterministic iteration order failover policies re-resolve in.
  std::vector<std::pair<ComponentId, ComponentId>> LunMappings() const;

  /// Resolves every surviving zone-permitted route from `server` to
  /// `volume`, honouring cabling, zoning, LUN masking, and failure state
  /// (failed HBAs/ports/switches/links never appear on a route; degraded
  /// ports still do). Routes are port-disjoint, each the shortest chain from
  /// its HBA port with ties broken toward the lexicographically smallest
  /// ComponentId port chain, enumerated over HBAs and HBA ports in ascending
  /// id order — so resolution is a pure deterministic function of topology
  /// state, never of insertion order. Fails with kFailedPrecondition when
  /// configuration forbids access and kNotFound when no surviving route (or
  /// no surviving disk) exists.
  Result<std::vector<IoPath>> ResolvePaths(ComponentId server,
                                           ComponentId volume) const;

  /// First (preferred) route of ResolvePaths — the multipath driver's active
  /// path. Same error semantics as ResolvePaths.
  Result<IoPath> ResolvePath(ComponentId server, ComponentId volume) const;

  /// Monotone counter bumped by every topology mutation or failure-state
  /// flip; cached resolutions are valid only within one generation.
  uint64_t generation() const { return generation_; }

  /// Structural validation: every volume's pool has disks, every HBA has a
  /// cabled port, etc. Returns the first problem found.
  Status Validate() const;

 private:
  /// Path-resolution cache + BFS scratch. Heap-allocated so the topology
  /// stays movable (std::mutex is not). The mutex makes const ResolvePaths
  /// safe to call from concurrent diagnosis workers; mutations (which are
  /// single-threaded by contract) clear the cache under the same lock.
  struct ResolveScratch {
    std::mutex mu;
    std::unordered_map<uint64_t, std::vector<IoPath>> paths;
    // Dense per-port BFS state, epoch-validated so a resolution never pays
    // a per-call hash-map allocation (the 1000+ component hot spot).
    std::vector<ComponentId> parent;
    std::vector<uint64_t> seen;
    uint64_t epoch = 0;
  };

  Status ExpectKind(ComponentId id, ComponentKind kind) const;
  /// True when the port (or its owning switch) is failed.
  bool PortBlocked(const FcPortInfo& port) const;
  /// Invalidate cached resolutions (every mutation calls this).
  void BumpGeneration();
  /// Lexicographically-least shortest port chain start -> a surviving port
  /// of `subsystem` zoned with `start`, avoiding `used` ports. Empty when
  /// unreachable. Caller holds scratch->mu.
  std::vector<ComponentId> ShortestChain(
      ComponentId start, ComponentId subsystem,
      const std::unordered_set<ComponentId>& used) const;

  ComponentRegistry* registry_;
  std::unordered_map<ComponentId, ServerInfo> servers_;
  std::unordered_map<ComponentId, HbaInfo> hbas_;
  std::unordered_map<ComponentId, FcPortInfo> ports_;
  std::unordered_map<ComponentId, FcSwitchInfo> switches_;
  std::unordered_map<ComponentId, SubsystemInfo> subsystems_;
  std::unordered_map<ComponentId, PoolInfo> pools_;
  std::unordered_map<ComponentId, VolumeInfo> volumes_;
  std::unordered_map<ComponentId, DiskInfo> disks_;
  std::vector<Zone> zones_;
  std::unordered_set<uint64_t> lun_map_;  ///< (server,volume) packed pairs.
  std::unordered_set<uint64_t> failed_links_;  ///< Packed (min,max) port pairs.
  uint64_t generation_ = 0;
  std::unique_ptr<ResolveScratch> scratch_;
};

}  // namespace diads::san

#endif  // DIADS_SAN_TOPOLOGY_H_
