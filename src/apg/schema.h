// APG structural-schema validation.
//
// The paper's claim that Annotated Plan Graphs are backend-neutral is only
// testable if "a well-formed APG" is defined independently of the engine
// that produced the plan. This file pins that definition down as a set of
// structural invariants every APG must satisfy — whichever backend built
// the plan, whatever its operator vocabulary:
//
//   (i)   every plan operator has a registered kPlanOperator component;
//   (ii)  every leaf is a scan, resolves to a kVolume component, and that
//         volume appears on the leaf's inner dependency path (leaf ->
//         volume reachability);
//   (iii) inner paths contain only node kinds that can carry monitoring
//         data on the physical chain (database, server, HBA, ports,
//         switches, subsystem, pools, volumes, disks), start at the
//         database, include the database server, and include at least one
//         disk for every leaf;
//   (iv)  inner paths are sorted in the deterministic kind-rank order the
//         builder promises (database, server, fabric, subsystem, pools,
//         volumes, disks);
//   (v)   an interior operator's inner/outer paths equal the union of its
//         subtree leaves' paths (plus the database);
//   (vi)  outer paths contain only sharer volumes — volumes sharing at
//         least one physical disk with a volume the operator reads — and
//         workloads bound to those sharers.
//
// The cross-backend conformance suite holds every (scenario, backend)
// configuration to this schema.
#ifndef DIADS_APG_SCHEMA_H_
#define DIADS_APG_SCHEMA_H_

#include "apg/apg.h"
#include "common/status.h"

namespace diads::apg {

/// Checks every invariant above; returns the first violation with an
/// operator-level description, or Ok.
Status ValidateApgSchema(const Apg& apg);

}  // namespace diads::apg

#endif  // DIADS_APG_SCHEMA_H_
