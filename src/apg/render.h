// APG rendering — the textual equivalent of Figure 1.
//
// RenderApgAscii produces the full two-layer picture: the plan tree on top
// (operators tagged with the volume their scans read) and the SAN layer
// below (server -> HBA -> switches -> subsystem -> pools -> volumes ->
// disks, plus outer-path sharer volumes and workloads). RenderApgDot emits
// Graphviz for the same graph.
#ifndef DIADS_APG_RENDER_H_
#define DIADS_APG_RENDER_H_

#include <string>

#include "apg/apg.h"

namespace diads::apg {

/// ASCII rendering of the whole APG (plan layer + SAN layer).
std::string RenderApgAscii(const Apg& apg);

/// Graphviz (dot) rendering of the whole APG.
std::string RenderApgDot(const Apg& apg);

/// One operator's dependency paths, e.g. for the paper's O23 example:
/// "inner: Server dbserver -> HBA ... -> Disk 5..10; outer: V3, V4, ...".
std::string RenderDependencyPaths(const Apg& apg, int op_index);

}  // namespace diads::apg

#endif  // DIADS_APG_RENDER_H_
