// Annotated Plan Graphs (Section 3).
//
// An APG ties one query's execution plan to the SAN it runs on: every plan
// operator is linked — through its table's tablespace and volume — to the
// full physical chain (server, HBA, FC switches, storage subsystem, pool,
// volume, disks) it depends on.
//
// Dependency paths (Section 3):
//   * The *inner* dependency path of an operator O holds the components
//     whose performance can affect O directly: the database instance, the
//     server, and the storage chain of every volume O's subtree reads.
//   * The *outer* dependency path holds components that affect O
//     indirectly: volumes sharing physical disks with O's volumes, and the
//     workloads driving those sharer volumes (the channel scenario 1's
//     misconfigured volume V' uses).
//
// Annotations: each APG component is annotated with its monitoring data
// restricted to a run's [tb, te] interval — AnnotateApg() produces exactly
// that view over the TimeSeriesStore.
#ifndef DIADS_APG_APG_H_
#define DIADS_APG_APG_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "monitor/timeseries.h"
#include "san/topology.h"

namespace diads::apg {

/// A workload known to drive a volume (for outer paths). Registered by the
/// testbed for each external application stream.
struct WorkloadBinding {
  ComponentId workload;
  ComponentId volume;
};

/// The Annotated Plan Graph for one (query, plan, server) triple.
class Apg {
 public:
  const db::Plan& plan() const { return *plan_; }
  std::shared_ptr<const db::Plan> plan_ptr() const { return plan_; }
  ComponentId query() const { return query_; }
  ComponentId database() const { return database_; }
  ComponentId db_server() const { return db_server_; }

  /// The registered component id of a plan operator.
  Result<ComponentId> OperatorComponent(int op_index) const;
  /// Reverse lookup: plan op index for an operator component id.
  Result<int> OpIndexOf(ComponentId component) const;

  /// The volume a scan operator reads; NotFound for non-scan operators.
  Result<ComponentId> VolumeOfOp(int op_index) const;

  /// Inner dependency path of an operator (see file comment). For interior
  /// operators this is the union over the leaf scans in their subtree.
  /// Deterministic order: database, server, fabric, subsystem, pools,
  /// volumes, disks.
  Result<std::vector<ComponentId>> InnerPath(int op_index) const;

  /// Outer dependency path: sharer volumes and their workloads.
  Result<std::vector<ComponentId>> OuterPath(int op_index) const;

  /// Leaf operator indexes whose inner path includes `component`.
  std::vector<int> LeafOpsOnComponent(ComponentId component) const;

  /// All volumes any leaf of the plan reads.
  std::vector<ComponentId> PlanVolumes() const;

  /// Every distinct component appearing in any inner or outer path.
  std::vector<ComponentId> AllComponents() const;

  const san::SanTopology& topology() const { return *topology_; }
  const db::Catalog& catalog() const { return *catalog_; }
  const std::vector<WorkloadBinding>& workloads() const { return workloads_; }

 private:
  friend class ApgBuilder;

  std::shared_ptr<const db::Plan> plan_;
  const san::SanTopology* topology_ = nullptr;
  const db::Catalog* catalog_ = nullptr;
  ComponentId query_;
  ComponentId database_;
  ComponentId db_server_;
  std::vector<ComponentId> op_components_;          ///< By op index.
  std::vector<ComponentId> op_volume_;              ///< Invalid if non-scan.
  std::vector<std::vector<ComponentId>> inner_;     ///< By op index.
  std::vector<std::vector<ComponentId>> outer_;     ///< By op index.
  std::vector<WorkloadBinding> workloads_;
};

/// Builds APGs from the catalog, topology, and a plan — the construction
/// procedure of Section 3.1 (tablespace mapping + SAN configuration
/// correlation).
class ApgBuilder {
 public:
  /// All pointers must outlive built Apg instances. `registry` is used to
  /// register per-operator components ("<query>/P<fingerprint>/O<k>").
  ApgBuilder(const db::Catalog* catalog, const san::SanTopology* topology,
             ComponentRegistry* registry);

  /// Registers a workload->volume binding included in subsequent builds.
  void BindWorkload(ComponentId workload, ComponentId volume);

  /// Builds the APG for `plan` executed by `database` on `db_server`.
  Result<Apg> Build(std::shared_ptr<const db::Plan> plan, ComponentId query,
                    ComponentId database, ComponentId db_server) const;

 private:
  const db::Catalog* catalog_;
  const san::SanTopology* topology_;
  ComponentRegistry* registry_;
  std::vector<WorkloadBinding> workloads_;
};

/// Per-component annotation: interval-mean of every collected metric.
struct ComponentAnnotation {
  ComponentId component;
  std::map<monitor::MetricId, double> metric_means;
};

/// Annotations of a whole APG for one run interval.
struct ApgAnnotations {
  TimeInterval interval;
  std::unordered_map<ComponentId, ComponentAnnotation> per_component;
};

/// Slices `store` over `interval` for every APG component (Section 3's
/// per-execution annotation).
ApgAnnotations AnnotateApg(const Apg& apg,
                           const monitor::TimeSeriesStore& store,
                           const TimeInterval& interval);

}  // namespace diads::apg

#endif  // DIADS_APG_APG_H_
