#include "apg/browser.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"
#include "monitor/metrics.h"

namespace diads::apg {

ApgBrowser::ApgBrowser(const Apg* apg, const monitor::TimeSeriesStore* store,
                       const db::RunCatalog* runs)
    : apg_(apg), store_(store), runs_(runs) {
  assert(apg_ && store_ && runs_);
}

std::string ApgBrowser::RenderQuerySelectionScreen(
    const std::string& query) const {
  TablePrinter table({"Run", "Query", "Plan", "Start time", "End time",
                      "Duration", "Unsatisfactory"});
  for (const db::QueryRunRecord& run : runs_->runs()) {
    if (run.query_name != query) continue;
    const db::RunLabel label = runs_->LabelOf(run.run_id);
    table.AddRow({
        StrFormat("#%d", run.run_id),
        run.query_name,
        StrFormat("P%016llx",
                  static_cast<unsigned long long>(run.plan_fingerprint)),
        FormatSimTime(run.interval.begin),
        FormatSimTime(run.interval.end),
        FormatDuration(run.duration_ms()),
        label == db::RunLabel::kUnsatisfactory
            ? "[x]"
            : (label == db::RunLabel::kSatisfactory ? "[ ]" : "[?]"),
    });
  }
  return "=== Query selection (Figure 3) ===\n" + table.Render();
}

Result<std::string> ApgBrowser::RenderTreePath(int op_index) const {
  const db::Plan& plan = apg_->plan();
  if (op_index < 0 || op_index >= static_cast<int>(plan.size())) {
    return Status::OutOfRange("op index out of range");
  }
  // Root -> ... -> op -> volume chain -> disks.
  std::vector<int> chain = plan.AncestorsOf(op_index);
  std::reverse(chain.begin(), chain.end());
  chain.push_back(op_index);

  std::string out = "=== APG tree path (Figure 6, left panel) ===\n";
  int depth = 0;
  for (int index : chain) {
    const db::PlanOp& op = plan.op(index);
    out += StrFormat("%*sO%d %s%s\n", depth * 2, "", op.op_number,
                     db::OpTypeName(op.type),
                     op.is_scan() ? (" on " + op.table).c_str() : "");
    ++depth;
  }
  Result<std::vector<ComponentId>> inner = apg_->InnerPath(op_index);
  DIADS_RETURN_IF_ERROR(inner.status());
  const ComponentRegistry& registry = apg_->topology().registry();
  for (ComponentId c : *inner) {
    if (registry.KindOf(c) == ComponentKind::kDatabase) continue;
    out += StrFormat("%*s%s %s\n", depth * 2, "",
                     ComponentKindName(registry.KindOf(c)),
                     registry.NameOf(c).c_str());
    ++depth;
  }
  return out;
}

bool ApgBrowser::SampleUnsatisfactory(SimTimeMs t,
                                      const std::string& query) const {
  for (const db::QueryRunRecord& run : runs_->runs()) {
    if (run.query_name != query) continue;
    if (runs_->LabelOf(run.run_id) != db::RunLabel::kUnsatisfactory) continue;
    if (run.interval.Contains(t)) return true;
  }
  return false;
}

std::string ApgBrowser::RenderMetricTable(ComponentId component,
                                          const TimeInterval& window,
                                          const std::string& query) const {
  const ComponentRegistry& registry = apg_->topology().registry();
  std::vector<monitor::MetricId> metrics = store_->MetricsFor(component);

  // Collect the sample grid (all metrics share the collector's timestamps).
  std::set<SimTimeMs> times;
  for (monitor::MetricId m : metrics) {
    for (const monitor::Sample& s : store_->Slice(component, m, window)) {
      times.insert(s.time);
    }
  }

  std::vector<std::string> headers{"Time"};
  for (monitor::MetricId m : metrics) {
    headers.push_back(monitor::MetricShortName(m));
  }
  headers.push_back("Unsatisfactory");
  TablePrinter table(headers);
  for (SimTimeMs t : times) {
    std::vector<std::string> row{FormatSimTime(t)};
    for (monitor::MetricId m : metrics) {
      Result<monitor::Sample> sample = store_->LatestAtOrBefore(component, m, t);
      row.push_back(sample.ok() && sample->time == t
                        ? FormatDouble(sample->value, 2)
                        : "-");
    }
    row.push_back(SampleUnsatisfactory(t, query) ? "[x]" : "[ ]");
    table.AddRow(std::move(row));
  }
  return StrFormat("=== Metrics for %s '%s' %s (Figure 6, right panel) ===\n",
                   ComponentKindName(registry.KindOf(component)),
                   registry.NameOf(component).c_str(),
                   window.ToString().c_str()) +
         table.Render();
}

}  // namespace diads::apg
