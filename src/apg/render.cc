#include "apg/render.h"

#include <functional>
#include <set>

#include "common/strings.h"

namespace diads::apg {
namespace {

std::string VolumeTag(const Apg& apg, int op_index) {
  Result<ComponentId> vol = apg.VolumeOfOp(op_index);
  if (!vol.ok()) return std::string();
  return " [" + apg.topology().registry().NameOf(*vol) + "]";
}

}  // namespace

std::string RenderApgAscii(const Apg& apg) {
  const db::Plan& plan = apg.plan();
  const ComponentRegistry& registry = apg.topology().registry();
  std::string out;
  out += StrFormat("=== APG: query %s, plan P%s ===\n",
                   plan.query_name().c_str(), plan.FingerprintHex().c_str());
  out += "--- Database layer (plan operators; scans tagged with volume) ---\n";
  std::function<void(int, int)> walk = [&](int index, int depth) {
    const db::PlanOp& op = plan.op(index);
    out += StrFormat("%*sO%-3d %s", depth * 2, "", op.op_number,
                     db::OpTypeName(op.type));
    if (op.is_scan()) {
      out += " on " + op.table;
      if (!op.table_alias.empty() && op.table_alias != op.table) {
        out += " " + op.table_alias;
      }
      out += VolumeTag(apg, index);
    }
    out += '\n';
    for (int child : op.children) walk(child, depth + 1);
  };
  walk(plan.root_index(), 0);

  out += "--- SAN layer ---\n";
  const san::SanTopology& topo = apg.topology();
  out += StrFormat("Server: %s (DB: %s)\n",
                   registry.NameOf(apg.db_server()).c_str(),
                   registry.NameOf(apg.database()).c_str());
  for (ComponentId hba : topo.server(apg.db_server()).hbas) {
    out += StrFormat("  HBA: %s\n", registry.NameOf(hba).c_str());
  }
  for (ComponentId sw : topo.AllSwitches()) {
    out += StrFormat("  %s switch: %s\n",
                     topo.fc_switch(sw).is_core ? "Core" : "Edge",
                     registry.NameOf(sw).c_str());
  }
  for (ComponentId subsystem : topo.AllSubsystems()) {
    out += StrFormat("  Subsystem: %s (%s)\n",
                     registry.NameOf(subsystem).c_str(),
                     topo.subsystem(subsystem).model.c_str());
    for (ComponentId pool : topo.subsystem(subsystem).pools) {
      out += StrFormat("    Pool %s (%s):\n", registry.NameOf(pool).c_str(),
                       san::RaidLevelName(topo.pool(pool).raid));
      std::vector<std::string> disk_names;
      for (ComponentId d : topo.pool(pool).disks) {
        disk_names.push_back(registry.NameOf(d) +
                             (topo.disk(d).failed ? "(failed)" : ""));
      }
      out += "      Disks: " + Join(disk_names, ", ") + "\n";
      const std::vector<ComponentId> plan_vols = apg.PlanVolumes();
      for (ComponentId v : topo.pool(pool).volumes) {
        const bool used =
            std::find(plan_vols.begin(), plan_vols.end(), v) != plan_vols.end();
        std::vector<std::string> tables;
        for (const std::string& t : apg.catalog().TableNames()) {
          Result<ComponentId> tv = apg.catalog().VolumeOfTable(t);
          if (tv.ok() && *tv == v) tables.push_back(t);
        }
        out += StrFormat("      Volume %s (%.0f GB)%s%s\n",
                         registry.NameOf(v).c_str(), topo.volume(v).size_gb,
                         used ? " <- plan tables: " : "",
                         used ? Join(tables, ", ").c_str() : "");
      }
    }
  }
  if (!apg.workloads().empty()) {
    out += "  External workloads:\n";
    for (const WorkloadBinding& wb : apg.workloads()) {
      out += StrFormat("    %s -> %s\n",
                       registry.NameOf(wb.workload).c_str(),
                       registry.NameOf(wb.volume).c_str());
    }
  }
  return out;
}

std::string RenderApgDot(const Apg& apg) {
  const db::Plan& plan = apg.plan();
  const ComponentRegistry& registry = apg.topology().registry();
  std::string out = "digraph apg {\n  rankdir=TB;\n";
  // Plan layer.
  for (const db::PlanOp& op : plan.ops()) {
    std::string label = StrFormat("O%d %s", op.op_number,
                                  db::OpTypeName(op.type));
    if (op.is_scan()) label += "\\n" + op.table;
    out += StrFormat("  op%d [shape=box,label=\"%s\"];\n", op.index,
                     label.c_str());
  }
  for (const db::PlanOp& op : plan.ops()) {
    for (int child : op.children) {
      out += StrFormat("  op%d -> op%d;\n", op.index, child);
    }
  }
  // Scan -> volume edges, and the SAN chain for each volume.
  std::set<uint32_t> emitted;
  auto emit_component = [&](ComponentId c) {
    if (!emitted.insert(c.value).second) return;
    out += StrFormat("  c%u [shape=ellipse,label=\"%s\\n%s\"];\n", c.value,
                     ComponentKindName(registry.KindOf(c)),
                     registry.NameOf(c).c_str());
  };
  for (int leaf : plan.LeafIndexes()) {
    Result<ComponentId> vol = apg.VolumeOfOp(leaf);
    if (!vol.ok()) continue;
    Result<std::vector<ComponentId>> inner = apg.InnerPath(leaf);
    if (!inner.ok()) continue;
    for (ComponentId c : *inner) emit_component(c);
    out += StrFormat("  op%d -> c%u [style=dashed];\n", leaf, vol->value);
    // Chain the inner path in order.
    for (size_t i = 0; i + 1 < inner->size(); ++i) {
      out += StrFormat("  c%u -> c%u [color=gray];\n", (*inner)[i].value,
                       (*inner)[i + 1].value);
    }
    Result<std::vector<ComponentId>> outer = apg.OuterPath(leaf);
    if (outer.ok()) {
      for (ComponentId c : *outer) {
        emit_component(c);
        out += StrFormat("  c%u -> c%u [style=dotted,label=\"outer\"];\n",
                         c.value, vol->value);
      }
    }
  }
  out += "}\n";
  return out;
}

std::string RenderDependencyPaths(const Apg& apg, int op_index) {
  const ComponentRegistry& registry = apg.topology().registry();
  const db::PlanOp& op = apg.plan().op(op_index);
  std::string out = StrFormat("O%d %s", op.op_number, db::OpTypeName(op.type));
  if (op.is_scan()) out += " on " + op.table;
  out += "\n  inner: ";
  Result<std::vector<ComponentId>> inner = apg.InnerPath(op_index);
  if (inner.ok()) {
    std::vector<std::string> names;
    for (ComponentId c : *inner) names.push_back(registry.NameOf(c));
    out += Join(names, " -> ");
  }
  out += "\n  outer: ";
  Result<std::vector<ComponentId>> outer = apg.OuterPath(op_index);
  if (outer.ok() && !outer->empty()) {
    std::vector<std::string> names;
    for (ComponentId c : *outer) names.push_back(registry.NameOf(c));
    out += Join(names, ", ");
  } else {
    out += "(none)";
  }
  out += "\n";
  return out;
}

}  // namespace diads::apg
