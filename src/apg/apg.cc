#include "apg/apg.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

#include "common/strings.h"

namespace diads::apg {
namespace {

/// Deterministic ordering for dependency-path components: by kind first
/// (database/server down to disks), then registration order.
int KindRank(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kDatabase:
      return 0;
    case ComponentKind::kServer:
      return 1;
    case ComponentKind::kHba:
      return 2;
    case ComponentKind::kFcPort:
      return 3;
    case ComponentKind::kFcSwitch:
      return 4;
    case ComponentKind::kStorageSubsystem:
      return 5;
    case ComponentKind::kStoragePool:
      return 6;
    case ComponentKind::kVolume:
      return 7;
    case ComponentKind::kDisk:
      return 8;
    case ComponentKind::kWorkload:
      return 9;
    default:
      return 10;
  }
}

std::vector<ComponentId> SortPath(const std::set<ComponentId>& parts,
                                  const ComponentRegistry& registry) {
  std::vector<ComponentId> out(parts.begin(), parts.end());
  std::sort(out.begin(), out.end(), [&registry](ComponentId a, ComponentId b) {
    const int ra = KindRank(registry.KindOf(a));
    const int rb = KindRank(registry.KindOf(b));
    if (ra != rb) return ra < rb;
    return a.value < b.value;
  });
  return out;
}

}  // namespace

Result<ComponentId> Apg::OperatorComponent(int op_index) const {
  if (op_index < 0 || op_index >= static_cast<int>(op_components_.size())) {
    return Status::OutOfRange(StrFormat("op index %d out of range", op_index));
  }
  return op_components_[static_cast<size_t>(op_index)];
}

Result<int> Apg::OpIndexOf(ComponentId component) const {
  for (size_t i = 0; i < op_components_.size(); ++i) {
    if (op_components_[i] == component) return static_cast<int>(i);
  }
  return Status::NotFound("component is not an operator of this APG");
}

Result<ComponentId> Apg::VolumeOfOp(int op_index) const {
  if (op_index < 0 || op_index >= static_cast<int>(op_volume_.size())) {
    return Status::OutOfRange(StrFormat("op index %d out of range", op_index));
  }
  const ComponentId vol = op_volume_[static_cast<size_t>(op_index)];
  if (!vol.valid()) {
    return Status::NotFound(
        StrFormat("operator O%d is not a scan",
                  plan_->op(op_index).op_number));
  }
  return vol;
}

Result<std::vector<ComponentId>> Apg::InnerPath(int op_index) const {
  if (op_index < 0 || op_index >= static_cast<int>(inner_.size())) {
    return Status::OutOfRange(StrFormat("op index %d out of range", op_index));
  }
  return inner_[static_cast<size_t>(op_index)];
}

Result<std::vector<ComponentId>> Apg::OuterPath(int op_index) const {
  if (op_index < 0 || op_index >= static_cast<int>(outer_.size())) {
    return Status::OutOfRange(StrFormat("op index %d out of range", op_index));
  }
  return outer_[static_cast<size_t>(op_index)];
}

std::vector<int> Apg::LeafOpsOnComponent(ComponentId component) const {
  std::vector<int> out;
  for (int leaf : plan_->LeafIndexes()) {
    const std::vector<ComponentId>& path = inner_[static_cast<size_t>(leaf)];
    if (std::find(path.begin(), path.end(), component) != path.end()) {
      out.push_back(leaf);
    }
  }
  return out;
}

std::vector<ComponentId> Apg::PlanVolumes() const {
  std::set<ComponentId> vols;
  for (ComponentId v : op_volume_) {
    if (v.valid()) vols.insert(v);
  }
  return std::vector<ComponentId>(vols.begin(), vols.end());
}

std::vector<ComponentId> Apg::AllComponents() const {
  std::set<ComponentId> parts;
  for (const auto& path : inner_) parts.insert(path.begin(), path.end());
  for (const auto& path : outer_) parts.insert(path.begin(), path.end());
  return SortPath(parts, topology_->registry());
}

ApgBuilder::ApgBuilder(const db::Catalog* catalog,
                       const san::SanTopology* topology,
                       ComponentRegistry* registry)
    : catalog_(catalog), topology_(topology), registry_(registry) {
  assert(catalog_ && topology_ && registry_);
}

void ApgBuilder::BindWorkload(ComponentId workload, ComponentId volume) {
  workloads_.push_back(WorkloadBinding{workload, volume});
}

Result<Apg> ApgBuilder::Build(std::shared_ptr<const db::Plan> plan,
                              ComponentId query, ComponentId database,
                              ComponentId db_server) const {
  if (plan == nullptr) {
    return Status::InvalidArgument("plan must not be null");
  }
  Apg apg;
  apg.plan_ = plan;
  apg.topology_ = topology_;
  apg.catalog_ = catalog_;
  apg.query_ = query;
  apg.database_ = database;
  apg.db_server_ = db_server;
  apg.workloads_ = workloads_;

  const size_t n = plan->size();
  apg.op_components_.resize(n);
  apg.op_volume_.resize(n);
  apg.inner_.resize(n);
  apg.outer_.resize(n);

  // Register operator components (stable names keyed by plan fingerprint,
  // so the same plan re-built yields the same ids).
  const std::string fp = plan->FingerprintHex();
  for (const db::PlanOp& op : plan->ops()) {
    Result<ComponentId> id = registry_->GetOrRegister(
        ComponentKind::kPlanOperator,
        StrFormat("%s/P%s/O%d", plan->query_name().c_str(), fp.c_str(),
                  op.op_number));
    DIADS_RETURN_IF_ERROR(id.status());
    apg.op_components_[static_cast<size_t>(op.index)] = *id;
  }

  // Leaf scans: resolve tablespace -> volume -> physical path.
  for (const db::PlanOp& op : plan->ops()) {
    if (!op.is_scan()) continue;
    Result<ComponentId> volume = catalog_->VolumeOfTable(op.table);
    DIADS_RETURN_IF_ERROR(volume.status());
    apg.op_volume_[static_cast<size_t>(op.index)] = *volume;

    // Union over every surviving multipath route: the APG must cover all
    // components the I/O may touch, not just the active path.
    Result<std::vector<san::IoPath>> paths =
        topology_->ResolvePaths(db_server, *volume);
    DIADS_RETURN_IF_ERROR(paths.status());

    std::set<ComponentId> inner;
    inner.insert(database);
    for (const san::IoPath& path : *paths) {
      for (ComponentId c : path.AllComponents()) inner.insert(c);
    }
    apg.inner_[static_cast<size_t>(op.index)] =
        SortPath(inner, topology_->registry());

    // Outer path: sharer volumes + workloads known to drive them.
    std::set<ComponentId> outer;
    for (ComponentId sharer : topology_->VolumesSharingDisks(*volume)) {
      outer.insert(sharer);
      for (const WorkloadBinding& wb : workloads_) {
        if (wb.volume == sharer) outer.insert(wb.workload);
      }
    }
    apg.outer_[static_cast<size_t>(op.index)] =
        SortPath(outer, topology_->registry());
  }

  // Interior operators: union over the leaves of their subtree.
  std::function<void(int)> fill = [&](int index) {
    const db::PlanOp& op = plan->op(index);
    for (int child : op.children) fill(child);
    if (op.is_scan()) return;
    std::set<ComponentId> inner;
    std::set<ComponentId> outer;
    inner.insert(database);
    std::function<void(int)> collect = [&](int sub) {
      for (ComponentId c : apg.inner_[static_cast<size_t>(sub)]) {
        inner.insert(c);
      }
      for (ComponentId c : apg.outer_[static_cast<size_t>(sub)]) {
        outer.insert(c);
      }
      for (int child : plan->op(sub).children) collect(child);
    };
    collect(index);
    apg.inner_[static_cast<size_t>(index)] =
        SortPath(inner, topology_->registry());
    apg.outer_[static_cast<size_t>(index)] =
        SortPath(outer, topology_->registry());
  };
  fill(plan->root_index());

  return apg;
}

ApgAnnotations AnnotateApg(const Apg& apg,
                           const monitor::TimeSeriesStore& store,
                           const TimeInterval& interval) {
  ApgAnnotations out;
  out.interval = interval;
  for (ComponentId component : apg.AllComponents()) {
    ComponentAnnotation ann;
    ann.component = component;
    for (monitor::MetricId metric : store.MetricsFor(component)) {
      Result<double> mean = store.MeanIn(component, metric, interval);
      if (mean.ok()) ann.metric_means[metric] = *mean;
    }
    if (!ann.metric_means.empty()) {
      out.per_component.emplace(component, std::move(ann));
    }
  }
  return out;
}

}  // namespace diads::apg
