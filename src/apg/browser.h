// APG browser — the text-mode equivalent of the paper's Figures 3 and 6.
//
// Figure 3 is the query-selection screen: one row per query execution with
// plan, start/end times, duration, and the administrator's unsatisfactory
// check-box. Figure 6 is the APG visualization screen: the APG as a
// navigable tree on the left, and on the right a table of time-series
// performance metrics for the selected component, each sample carrying an
// unsatisfactory flag inherited from the runs it overlaps.
#ifndef DIADS_APG_BROWSER_H_
#define DIADS_APG_BROWSER_H_

#include <string>

#include "apg/apg.h"
#include "db/run_record.h"
#include "monitor/timeseries.h"

namespace diads::apg {

/// Read-only browsing facade over an APG + monitoring data + run history.
class ApgBrowser {
 public:
  /// All pointers must outlive the browser.
  ApgBrowser(const Apg* apg, const monitor::TimeSeriesStore* store,
             const db::RunCatalog* runs);

  /// Figure 3: the query-selection table for `query`.
  std::string RenderQuerySelectionScreen(const std::string& query) const;

  /// Figure 6 (left panel): the path from the Return operator through
  /// `op_index` down to the disks, as an indented tree.
  Result<std::string> RenderTreePath(int op_index) const;

  /// Figure 6 (right panel): the time-series table for one component over
  /// `window`. Each row is one sample: time, value per metric, and the
  /// unsatisfactory check-box (set when the sample time falls inside an
  /// unsatisfactory run of `query`).
  std::string RenderMetricTable(ComponentId component,
                                const TimeInterval& window,
                                const std::string& query) const;

 private:
  bool SampleUnsatisfactory(SimTimeMs t, const std::string& query) const;

  const Apg* apg_;
  const monitor::TimeSeriesStore* store_;
  const db::RunCatalog* runs_;
};

}  // namespace diads::apg

#endif  // DIADS_APG_BROWSER_H_
