#include "apg/schema.h"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "common/strings.h"

namespace diads::apg {
namespace {

/// The deterministic dependency-path ordering the builder promises
/// (mirrors the builder's KindRank; kept in lockstep by the schema tests).
int KindRank(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kDatabase:
      return 0;
    case ComponentKind::kServer:
      return 1;
    case ComponentKind::kHba:
      return 2;
    case ComponentKind::kFcPort:
      return 3;
    case ComponentKind::kFcSwitch:
      return 4;
    case ComponentKind::kStorageSubsystem:
      return 5;
    case ComponentKind::kStoragePool:
      return 6;
    case ComponentKind::kVolume:
      return 7;
    case ComponentKind::kDisk:
      return 8;
    case ComponentKind::kWorkload:
      return 9;
    default:
      return 10;
  }
}

bool IsInnerPathKind(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kDatabase:
    case ComponentKind::kServer:
    case ComponentKind::kHba:
    case ComponentKind::kFcPort:
    case ComponentKind::kFcSwitch:
    case ComponentKind::kStorageSubsystem:
    case ComponentKind::kStoragePool:
    case ComponentKind::kVolume:
    case ComponentKind::kDisk:
      return true;
    default:
      return false;
  }
}

Status Violation(int op_number, const std::string& text) {
  return Status::Internal(
      StrFormat("APG schema violation at O%d: %s", op_number, text.c_str()));
}

}  // namespace

Status ValidateApgSchema(const Apg& apg) {
  const db::Plan& plan = apg.plan();
  const ComponentRegistry& registry = apg.topology().registry();
  if (plan.size() == 0) return Status::Internal("APG over an empty plan");
  if (!registry.Contains(apg.database()) ||
      registry.KindOf(apg.database()) != ComponentKind::kDatabase) {
    return Status::Internal("APG database component is not a kDatabase");
  }
  if (!registry.Contains(apg.db_server()) ||
      registry.KindOf(apg.db_server()) != ComponentKind::kServer) {
    return Status::Internal("APG db_server component is not a kServer");
  }

  for (const db::PlanOp& op : plan.ops()) {
    // (i) Registered operator components, round-tripping through the
    // reverse lookup.
    Result<ComponentId> component = apg.OperatorComponent(op.index);
    DIADS_RETURN_IF_ERROR(component.status());
    if (!registry.Contains(*component) ||
        registry.KindOf(*component) != ComponentKind::kPlanOperator) {
      return Violation(op.op_number,
                       "operator component missing or not kPlanOperator");
    }
    Result<int> round_trip = apg.OpIndexOf(*component);
    DIADS_RETURN_IF_ERROR(round_trip.status());
    if (*round_trip != op.index) {
      return Violation(op.op_number, "operator component round-trip failed");
    }

    Result<std::vector<ComponentId>> inner_r = apg.InnerPath(op.index);
    DIADS_RETURN_IF_ERROR(inner_r.status());
    const std::vector<ComponentId>& inner = *inner_r;
    Result<std::vector<ComponentId>> outer_r = apg.OuterPath(op.index);
    DIADS_RETURN_IF_ERROR(outer_r.status());
    const std::vector<ComponentId>& outer = *outer_r;

    // (iii) Inner-path node kinds, database-first, server present, and (for
    // leaves) at least one disk.
    if (!inner.empty()) {
      for (ComponentId c : inner) {
        if (!registry.Contains(c)) {
          return Violation(op.op_number, "unregistered inner-path component");
        }
        if (!IsInnerPathKind(registry.KindOf(c))) {
          return Violation(
              op.op_number,
              StrFormat("inner path holds a %s (%s)",
                        ComponentKindName(registry.KindOf(c)),
                        registry.NameOf(c).c_str()));
        }
      }
      if (inner.front() != apg.database()) {
        return Violation(op.op_number,
                         "inner path does not start at the database");
      }
      if (std::find(inner.begin(), inner.end(), apg.db_server()) ==
          inner.end()) {
        return Violation(op.op_number,
                         "inner path is missing the database server");
      }
      // (iv) Deterministic kind-rank ordering.
      for (size_t i = 1; i < inner.size(); ++i) {
        const int prev = KindRank(registry.KindOf(inner[i - 1]));
        const int cur = KindRank(registry.KindOf(inner[i]));
        if (prev > cur ||
            (prev == cur && !(inner[i - 1] < inner[i]))) {
          return Violation(op.op_number, "inner path ordering violated");
        }
      }
    }

    // (vi) Outer-path contents: sharer volumes and their bound workloads.
    std::set<ComponentId> op_volumes;
    if (op.is_scan()) {
      Result<ComponentId> volume = apg.VolumeOfOp(op.index);
      DIADS_RETURN_IF_ERROR(volume.status());
      op_volumes.insert(*volume);
    } else {
      std::function<void(int)> collect = [&](int index) {
        const db::PlanOp& sub = plan.op(index);
        if (sub.is_scan()) {
          Result<ComponentId> volume = apg.VolumeOfOp(index);
          if (volume.ok()) op_volumes.insert(*volume);
        }
        for (int child : sub.children) collect(child);
      };
      collect(op.index);
    }
    std::set<ComponentId> allowed_outer;
    for (ComponentId volume : op_volumes) {
      for (ComponentId sharer : apg.topology().VolumesSharingDisks(volume)) {
        allowed_outer.insert(sharer);
        for (const WorkloadBinding& wb : apg.workloads()) {
          if (wb.volume == sharer) allowed_outer.insert(wb.workload);
        }
      }
    }
    for (ComponentId c : outer) {
      if (!registry.Contains(c)) {
        return Violation(op.op_number, "unregistered outer-path component");
      }
      const ComponentKind kind = registry.KindOf(c);
      if (kind != ComponentKind::kVolume && kind != ComponentKind::kWorkload) {
        return Violation(op.op_number,
                         StrFormat("outer path holds a %s",
                                   ComponentKindName(kind)));
      }
      if (allowed_outer.count(c) == 0) {
        return Violation(op.op_number,
                         StrFormat("outer path holds non-sharer %s",
                                   registry.NameOf(c).c_str()));
      }
    }

    if (op.is_scan()) {
      // (ii) Leaf -> volume reachability.
      if (!op.children.empty()) {
        return Violation(op.op_number, "scan operator has children");
      }
      Result<ComponentId> volume = apg.VolumeOfOp(op.index);
      DIADS_RETURN_IF_ERROR(volume.status());
      if (registry.KindOf(*volume) != ComponentKind::kVolume) {
        return Violation(op.op_number, "scan volume is not a kVolume");
      }
      if (std::find(inner.begin(), inner.end(), *volume) == inner.end()) {
        return Violation(op.op_number,
                         "scan volume missing from its inner path");
      }
      bool has_disk = false;
      for (ComponentId c : inner) {
        if (registry.KindOf(c) == ComponentKind::kDisk) has_disk = true;
      }
      if (!has_disk) {
        return Violation(op.op_number, "leaf inner path has no disk");
      }
      // Reverse reachability: the volume's leaf set includes this leaf.
      const std::vector<int> on_volume = apg.LeafOpsOnComponent(*volume);
      if (std::find(on_volume.begin(), on_volume.end(), op.index) ==
          on_volume.end()) {
        return Violation(op.op_number,
                         "LeafOpsOnComponent does not list the leaf");
      }
    } else if (!op.children.empty()) {
      // (v) Interior paths are the union of the subtree leaves' paths.
      std::set<ComponentId> expect_inner{apg.database()};
      std::set<ComponentId> expect_outer;
      std::function<void(int)> collect = [&](int index) {
        const db::PlanOp& sub = plan.op(index);
        if (sub.is_scan()) {
          Result<std::vector<ComponentId>> leaf_inner = apg.InnerPath(index);
          Result<std::vector<ComponentId>> leaf_outer = apg.OuterPath(index);
          if (leaf_inner.ok()) {
            expect_inner.insert(leaf_inner->begin(), leaf_inner->end());
          }
          if (leaf_outer.ok()) {
            expect_outer.insert(leaf_outer->begin(), leaf_outer->end());
          }
        }
        for (int child : sub.children) collect(child);
      };
      collect(op.index);
      const std::set<ComponentId> got_inner(inner.begin(), inner.end());
      const std::set<ComponentId> got_outer(outer.begin(), outer.end());
      if (got_inner != expect_inner) {
        return Violation(op.op_number,
                         "interior inner path is not the union of its "
                         "subtree leaves' paths");
      }
      if (got_outer != expect_outer) {
        return Violation(op.op_number,
                         "interior outer path is not the union of its "
                         "subtree leaves' paths");
      }
    }
  }
  return Status::Ok();
}

}  // namespace diads::apg
