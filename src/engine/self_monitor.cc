#include "engine/self_monitor.h"

namespace diads::engine {
namespace {

double HitRate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

}  // namespace

const char* EngineMetricName(EngineMetric m) {
  switch (m) {
    case EngineMetric::kThroughputPerSec: return "engine.throughput_per_sec";
    case EngineMetric::kQueueDepth: return "engine.queue_depth";
    case EngineMetric::kRequestP50Ms: return "engine.request_p50_ms";
    case EngineMetric::kRequestP99Ms: return "engine.request_p99_ms";
    case EngineMetric::kSubmitted: return "engine.submitted";
    case EngineMetric::kCompleted: return "engine.completed";
    case EngineMetric::kFailed: return "engine.failed";
    case EngineMetric::kResultCacheHitRate:
      return "engine.result_cache_hit_rate";
    case EngineMetric::kModelCacheHitRate:
      return "engine.model_cache_hit_rate";
    case EngineMetric::kDegradedDiagnoses:
      return "engine.degraded_diagnoses";
    case EngineMetric::kGatherP99Ms: return "engine.gather_p99_ms";
  }
  return "engine.unknown";
}

const std::vector<EngineMetric>& AllEngineMetrics() {
  static const std::vector<EngineMetric> kAll = {
      EngineMetric::kThroughputPerSec, EngineMetric::kQueueDepth,
      EngineMetric::kRequestP50Ms,     EngineMetric::kRequestP99Ms,
      EngineMetric::kSubmitted,        EngineMetric::kCompleted,
      EngineMetric::kFailed,           EngineMetric::kResultCacheHitRate,
      EngineMetric::kModelCacheHitRate, EngineMetric::kDegradedDiagnoses,
      EngineMetric::kGatherP99Ms};
  return kAll;
}

void AppendSnapshot(const EngineStatsSnapshot& snapshot,
                    ComponentId component, SimTimeMs now,
                    monitor::TimeSeriesStore* store) {
  const auto put = [&](EngineMetric m, double value) {
    store->Append(component, ToMetricId(m), now, value);
  };
  put(EngineMetric::kThroughputPerSec, snapshot.throughput_per_sec);
  put(EngineMetric::kQueueDepth, static_cast<double>(snapshot.queue_depth));
  put(EngineMetric::kRequestP50Ms, snapshot.request_latency.p50_ms);
  put(EngineMetric::kRequestP99Ms, snapshot.request_latency.p99_ms);
  put(EngineMetric::kSubmitted, static_cast<double>(snapshot.submitted));
  put(EngineMetric::kCompleted, static_cast<double>(snapshot.completed));
  put(EngineMetric::kFailed, static_cast<double>(snapshot.failed));
  put(EngineMetric::kResultCacheHitRate,
      HitRate(snapshot.cache_hits, snapshot.cache_misses));
  put(EngineMetric::kModelCacheHitRate,
      HitRate(snapshot.model_cache_hits, snapshot.model_cache_misses));
  put(EngineMetric::kDegradedDiagnoses,
      static_cast<double>(snapshot.degraded_diagnoses));
  put(EngineMetric::kGatherP99Ms, snapshot.gather_latency.p99_ms);
}

void SampleEngineHealth(const DiagnosisEngine& engine, ComponentId component,
                        SimTimeMs now, monitor::TimeSeriesStore* store) {
  AppendSnapshot(engine.Stats(), component, now, store);
}

}  // namespace diads::engine
