#include "engine/metrics_export.h"

namespace diads::engine {
namespace {

/// Emits one LatencyRecorder summary as quantile-labelled gauges plus a
/// sample-count counter.
void EmitLatency(const std::string& name, const char* help,
                 const LatencyRecorder::Summary& summary,
                 const obs::Labels& labels, obs::MetricsEmitter& emitter) {
  emitter.Counter(name + "_samples_total", help, labels, summary.count);
  const std::pair<const char*, double> quantiles[] = {
      {"mean", summary.mean_ms}, {"p50", summary.p50_ms},
      {"p95", summary.p95_ms},   {"p99", summary.p99_ms},
      {"max", summary.max_ms}};
  for (const auto& [quantile, value] : quantiles) {
    obs::Labels labelled = labels;
    labelled.emplace_back("quantile", quantile);
    emitter.Gauge(name + "_ms", help, labelled, value);
  }
}

}  // namespace

void EmitEngineSnapshot(const EngineStatsSnapshot& snapshot,
                        const obs::Labels& labels,
                        obs::MetricsEmitter& emitter) {
  // Serving counters.
  emitter.Counter("diads_engine_submitted_total", "Requests accepted",
                  labels, snapshot.submitted);
  emitter.Counter("diads_engine_completed_total", "Requests completed ok",
                  labels, snapshot.completed);
  emitter.Counter("diads_engine_failed_total", "Requests failed", labels,
                  snapshot.failed);
  emitter.Counter("diads_engine_rejected_total",
                  "Requests refused (shutdown)", labels, snapshot.rejected);
  // Fair-queue admission / shedding.
  emitter.Counter("diads_engine_admitted_total",
                  "Requests accepted past tenant-share admission", labels,
                  snapshot.admitted);
  emitter.Counter("diads_engine_rejected_share_total",
                  "Requests refused because the tenant's queue share was "
                  "full",
                  labels, snapshot.rejected_share);
  emitter.Counter("diads_engine_shed_deadline_total",
                  "Queued requests dropped past their deadline", labels,
                  snapshot.shed_deadline);
  emitter.Counter("diads_engine_cancelled_shutdown_total",
                  "Queued requests failed explicitly by shutdown", labels,
                  snapshot.cancelled_shutdown);
  emitter.Counter("diads_engine_starvation_avoided_total",
                  "Dispatches where fair queueing overtook a flooding "
                  "tenant's earlier request",
                  labels, snapshot.starvation_avoided);
  emitter.Gauge("diads_engine_queued_cost",
                "Cost units currently enqueued", labels,
                snapshot.queued_cost);
  emitter.Counter("diads_engine_coalesced_total",
                  "Requests joined onto an identical in-flight request",
                  labels, snapshot.coalesced);
  emitter.Counter("diads_engine_auto_submitted_total",
                  "Requests auto-submitted by the slowdown detector",
                  labels, snapshot.auto_submitted);
  emitter.Counter("diads_engine_fleet_publishes_total",
                  "Verdicts published into the fleet store", labels,
                  snapshot.fleet_publishes);
  // Result cache.
  emitter.Counter("diads_engine_result_cache_hits_total",
                  "Result-cache hits", labels, snapshot.cache_hits);
  emitter.Counter("diads_engine_result_cache_misses_total",
                  "Result-cache misses", labels, snapshot.cache_misses);
  emitter.Counter("diads_engine_result_cache_evictions_total",
                  "Result-cache LRU evictions", labels,
                  snapshot.cache_evictions);
  emitter.Counter("diads_engine_result_cache_invalidations_total",
                  "Result-cache entries dropped stale or invalidated",
                  labels, snapshot.cache_invalidations);
  // Baseline model cache.
  emitter.Counter("diads_model_cache_hits_total",
                  "Baseline-model cache hits", labels,
                  snapshot.model_cache_hits);
  emitter.Counter("diads_model_cache_misses_total",
                  "Baseline-model cache misses", labels,
                  snapshot.model_cache_misses);
  emitter.Counter("diads_model_cache_evictions_total",
                  "Baseline-model cache LRU evictions", labels,
                  snapshot.model_cache_evictions);
  emitter.Counter("diads_model_cache_invalidations_total",
                  "Baseline-model cache append-driven drops", labels,
                  snapshot.model_cache_invalidations);
  emitter.Gauge("diads_model_cache_entries",
                "Baseline-model cache live entries", labels,
                static_cast<double>(snapshot.model_cache_entries));
  // Async collection.
  emitter.Counter("diads_gather_fetches_total", "Fetch attempts issued",
                  labels, snapshot.collection_fetches);
  emitter.Counter("diads_gather_timeouts_total",
                  "Fetch attempts past their deadline", labels,
                  snapshot.collection_timeouts);
  emitter.Counter("diads_gather_retries_total", "Fetches re-issued",
                  labels, snapshot.collection_retries);
  emitter.Counter("diads_gather_stale_components_total",
                  "Components degraded to stale local data", labels,
                  snapshot.collection_stale);
  emitter.Counter("diads_gather_degraded_diagnoses_total",
                  "Diagnoses served with >= 1 stale component", labels,
                  snapshot.degraded_diagnoses);
  // Queue / throughput gauges.
  emitter.Gauge("diads_engine_queue_depth", "Queued requests now", labels,
                static_cast<double>(snapshot.queue_depth));
  emitter.Gauge("diads_engine_max_queue_depth",
                "High-water queued requests", labels,
                static_cast<double>(snapshot.max_queue_depth));
  emitter.Gauge("diads_engine_throughput_per_sec",
                "Completed diagnoses per second", labels,
                snapshot.throughput_per_sec);
  emitter.Gauge("diads_engine_elapsed_sec",
                "Seconds since engine start / stats reset", labels,
                snapshot.elapsed_sec);
  // Latency summaries.
  EmitLatency("diads_engine_request_latency",
              "Submit to report ready, milliseconds",
              snapshot.request_latency, labels, emitter);
  EmitLatency("diads_gather_fetch_latency",
              "Per successful component fetch, milliseconds",
              snapshot.fetch_latency, labels, emitter);
  EmitLatency("diads_gather_latency",
              "Per diagnosis scatter/gather, milliseconds",
              snapshot.gather_latency, labels, emitter);
  const std::pair<const char*, const LatencyRecorder::Summary*> modules[] = {
      {"PD", &snapshot.pd}, {"CO", &snapshot.co}, {"DA", &snapshot.da},
      {"CR", &snapshot.cr}, {"SD", &snapshot.sd}, {"IA", &snapshot.ia}};
  for (const auto& [module, summary] : modules) {
    obs::Labels labelled = labels;
    labelled.emplace_back("module", module);
    EmitLatency("diads_module_latency", "Per workflow module, milliseconds",
                *summary, labelled, emitter);
  }
}

void RegisterEngineMetrics(obs::MetricsRegistry* registry,
                           const DiagnosisEngine* engine,
                           obs::Labels labels) {
  registry->AddSource(
      [engine, labels = std::move(labels)](obs::MetricsEmitter& emitter) {
        EmitEngineSnapshot(engine->Stats(), labels, emitter);
      });
}

}  // namespace diads::engine
