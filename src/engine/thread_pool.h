// Tenant-fair bounded work queue and worker pool for the diagnosis engine.
//
// The pool keeps the original boring synchronization (one mutex, three
// condition variables) but replaces the single FIFO deque with a
// FairQueue: per-tenant sub-queues with share-based admission control,
// deficit-round-robin dispatch, and deadline shedding (see fair_queue.h
// for the discipline). Lifecycle:
//
//   accepting  -> Submit admits or rejects (kResourceExhausted when the
//                 tenant's share is full; blocking backpressure when the
//                 whole queue is at capacity)
//   draining   -> Drain() blocks until queued + running tasks hit zero
//   shut down  -> Shutdown() stops intake, lets tasks already RUNNING
//                 finish, and fails every still-queued task explicitly
//                 through its cancel callback with kShutdown (work is
//                 never silently dropped — callers holding futures see a
//                 typed error, not a hang); later Submits fail fast with
//                 kShutdown.
//
// Exactly one of task.run / task.cancel is invoked per accepted task:
// run on a worker thread, cancel on the thread that shed it (a worker,
// for deadline expiry) or the Shutdown caller's thread. Cancel callbacks
// always fire outside the queue lock.
#ifndef DIADS_ENGINE_THREAD_POOL_H_
#define DIADS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/fair_queue.h"

namespace diads::engine {

class ThreadPool {
 public:
  struct Options {
    int workers = 4;
    /// Maximum queued (not yet running) tasks; Submit blocks beyond this.
    size_t queue_capacity = 128;
    /// Tenant fairness discipline (weights, shares, quantum). Disabled =
    /// the original single-FIFO, admission-free behavior.
    FairnessOptions fairness;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();  ///< Shutdown(): running tasks finish, queued cancelled.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task with tenant/priority/deadline metadata. Returns:
  ///   kResourceExhausted — the tenant's queue share is full (immediate,
  ///     no blocking: flooding tenants get told, not buffered);
  ///   kShutdown — Shutdown has begun, including for submitters that were
  ///     blocked on a full queue when it began;
  ///   kInvalidArgument — null run callback or non-positive cost.
  /// Blocks while the global queue is at capacity (backpressure). The
  /// cancel callback is NOT invoked for rejected submissions — a non-OK
  /// return means the task was never accepted.
  Status Submit(QueueTask task);

  /// Legacy closure submission: untagged tenant, unit cost, normal
  /// priority, no deadline, no cancel callback (queued-at-shutdown work
  /// is dropped without notification — prefer the QueueTask overload).
  Status Submit(std::function<void()> task);

  /// Blocks until every accepted task has finished (run, shed, or
  /// cancelled). Does not stop intake; tasks submitted concurrently with
  /// Drain extend the wait.
  void Drain();

  /// Stops intake, cancels every queued-but-not-running task with
  /// kShutdown, finishes tasks already running, joins the workers.
  /// Idempotent and safe to call concurrently with Submit/Drain.
  void Shutdown();

  size_t QueueDepth() const;
  /// Total cost currently enqueued (queued tasks weighted by their cost).
  double QueuedCost() const;
  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Fair-queue counters (admitted / rejected / shed / cancelled /
  /// starvation_avoided / dispatched) accumulated since construction.
  FairQueueCounters QueueCounters() const;

  /// Per-tenant admission and dispatch accounting, sorted by tenant.
  std::vector<TenantAdmissionRow> TenantRows() const;

 private:
  void WorkerLoop();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;   ///< Workers wait here.
  std::condition_variable not_full_;    ///< Blocked producers wait here.
  std::condition_variable all_done_;    ///< Drain/Shutdown wait here.
  FairQueue queue_;          ///< Guarded by mu_.
  size_t running_ = 0;       ///< Tasks currently executing.
  bool accepting_ = true;    ///< Cleared by Shutdown.
  bool stopping_ = false;    ///< Workers exit once queue is empty.
  std::mutex join_mu_;       ///< Serializes the join; late Shutdown callers
                             ///< block here until the workers are joined.
  bool joined_ = false;      ///< Guarded by join_mu_.
  std::vector<std::thread> workers_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_THREAD_POOL_H_
