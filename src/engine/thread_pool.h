// Bounded MPMC work queue and worker pool for the diagnosis engine.
//
// The pool is deliberately small and boring: a mutex-guarded deque with two
// condition variables (producers wait while the queue is full, workers wait
// while it is empty) and an explicit lifecycle:
//
//   accepting  -> Submit enqueues (blocking when full, backpressure)
//   draining   -> Drain() blocks until queued + running tasks hit zero
//   shut down  -> Shutdown() stops intake, finishes every queued task
//                 (graceful: work already accepted is never dropped), then
//                 joins the workers; later Submits fail fast
//
// Tasks are type-erased closures; the DiagnosisEngine layers request
// futures, caching, and accounting on top.
#ifndef DIADS_ENGINE_THREAD_POOL_H_
#define DIADS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace diads::engine {

class ThreadPool {
 public:
  struct Options {
    int workers = 4;
    /// Maximum queued (not yet running) tasks; Submit blocks beyond this.
    size_t queue_capacity = 128;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();  ///< Shutdown(): graceful, finishes accepted work.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Blocks while the queue is at capacity (backpressure);
  /// returns FailedPrecondition once Shutdown has begun — including for
  /// submitters that were blocked on a full queue when it began.
  Status Submit(std::function<void()> task);

  /// Blocks until every accepted task has finished. Does not stop intake;
  /// tasks submitted concurrently with Drain extend the wait.
  void Drain();

  /// Stops intake, runs every already-accepted task, joins the workers.
  /// Idempotent and safe to call concurrently with Submit/Drain.
  void Shutdown();

  size_t QueueDepth() const;
  int worker_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;   ///< Workers wait here.
  std::condition_variable not_full_;    ///< Blocked producers wait here.
  std::condition_variable all_done_;    ///< Drain/Shutdown wait here.
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;       ///< Tasks currently executing.
  bool accepting_ = true;    ///< Cleared by Shutdown.
  bool stopping_ = false;    ///< Workers exit once queue is empty.
  std::mutex join_mu_;       ///< Serializes the join; late Shutdown callers
                             ///< block here until the workers are joined.
  bool joined_ = false;      ///< Guarded by join_mu_.
  std::vector<std::thread> workers_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_THREAD_POOL_H_
