#include "engine/stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/strings.h"
#include "diads/workflow.h"
#include "monitor/gather.h"

namespace diads::engine {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::string SummaryJson(const char* name,
                        const LatencyRecorder::Summary& s) {
  return StrFormat(
      "\"%s\":{\"count\":%llu,\"mean_ms\":%.3f,\"p50_ms\":%.3f,"
      "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f}",
      name, static_cast<unsigned long long>(s.count), s.mean_ms, s.p50_ms,
      s.p95_ms, s.p99_ms, s.max_ms);
}

}  // namespace

void LatencyRecorder::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(ms);
}

LatencyRecorder::Summary LatencyRecorder::Summarize() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  Summary out;
  out.count = sorted.size();
  if (sorted.empty()) return out;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (double v : sorted) total += v;
  out.mean_ms = total / static_cast<double>(sorted.size());
  out.p50_ms = PercentileOfSorted(sorted, 50);
  out.p95_ms = PercentileOfSorted(sorted, 95);
  out.p99_ms = PercentileOfSorted(sorted, 99);
  out.max_ms = sorted.back();
  return out;
}

void LatencyRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

EngineStats::EngineStats() { start_ns_.store(NowNs()); }

void EngineStats::RecordQueueDepth(size_t depth) {
  size_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth)) {
  }
}

void EngineStats::RecordModuleLatencies(const diag::ModuleTimings& timings) {
  pd_.Record(timings.pd_ms);
  co_.Record(timings.co_ms);
  da_.Record(timings.da_ms);
  cr_.Record(timings.cr_ms);
  sd_.Record(timings.sd_ms);
  ia_.Record(timings.ia_ms);
}

void EngineStats::RecordCollection(const monitor::GatherResult& gather) {
  collection_fetches_.fetch_add(gather.counters.fetches,
                                std::memory_order_relaxed);
  collection_timeouts_.fetch_add(gather.counters.timeouts,
                                 std::memory_order_relaxed);
  collection_retries_.fetch_add(gather.counters.retries,
                                std::memory_order_relaxed);
  collection_stale_.fetch_add(gather.counters.stale_components,
                              std::memory_order_relaxed);
  if (gather.degraded()) {
    degraded_diagnoses_.fetch_add(1, std::memory_order_relaxed);
  }
  for (double ms : gather.fetch_ms) fetch_latency_.Record(ms);
  gather_latency_.Record(gather.counters.gather_ms);
}

EngineStatsSnapshot EngineStats::Snapshot(size_t queue_depth) const {
  EngineStatsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.auto_submitted = auto_submitted_.load(std::memory_order_relaxed);
  out.fleet_publishes = fleet_publishes_.load(std::memory_order_relaxed);
  out.queue_depth = queue_depth;
  out.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  out.elapsed_sec =
      static_cast<double>(NowNs() - start_ns_.load()) / 1e9;
  out.throughput_per_sec =
      out.elapsed_sec > 0
          ? static_cast<double>(out.completed) / out.elapsed_sec
          : 0;
  out.collection_fetches =
      collection_fetches_.load(std::memory_order_relaxed);
  out.collection_timeouts =
      collection_timeouts_.load(std::memory_order_relaxed);
  out.collection_retries =
      collection_retries_.load(std::memory_order_relaxed);
  out.collection_stale = collection_stale_.load(std::memory_order_relaxed);
  out.degraded_diagnoses =
      degraded_diagnoses_.load(std::memory_order_relaxed);
  out.request_latency = request_latency_.Summarize();
  out.fetch_latency = fetch_latency_.Summarize();
  out.gather_latency = gather_latency_.Summarize();
  out.pd = pd_.Summarize();
  out.co = co_.Summarize();
  out.da = da_.Summarize();
  out.cr = cr_.Summarize();
  out.sd = sd_.Summarize();
  out.ia = ia_.Summarize();
  return out;
}

void EngineStats::Reset() {
  submitted_.store(0);
  completed_.store(0);
  failed_.store(0);
  rejected_.store(0);
  cache_hits_.store(0);
  cache_misses_.store(0);
  coalesced_.store(0);
  auto_submitted_.store(0);
  fleet_publishes_.store(0);
  collection_fetches_.store(0);
  collection_timeouts_.store(0);
  collection_retries_.store(0);
  collection_stale_.store(0);
  degraded_diagnoses_.store(0);
  max_queue_depth_.store(0);
  start_ns_.store(NowNs());
  request_latency_.Clear();
  fetch_latency_.Clear();
  gather_latency_.Clear();
  pd_.Clear();
  co_.Clear();
  da_.Clear();
  cr_.Clear();
  sd_.Clear();
  ia_.Clear();
}

std::string EngineStatsSnapshot::Render() const {
  std::string out;
  out += StrFormat(
      "engine: %llu submitted, %llu completed, %llu failed, %llu rejected "
      "(%.1f diagnoses/sec over %.2fs)\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected), throughput_per_sec,
      elapsed_sec);
  out += StrFormat(
      "cache:  %llu hits, %llu misses, %llu evictions, "
      "%llu invalidations (hit rate %.1f%%), %llu coalesced\n",
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_invalidations),
      CacheHitRate() * 100.0, static_cast<unsigned long long>(coalesced));
  if (fleet_publishes > 0) {
    out += StrFormat("fleet:  %llu verdicts published\n",
                     static_cast<unsigned long long>(fleet_publishes));
  }
  if (auto_submitted > 0) {
    out += StrFormat("detect: %llu auto-submitted diagnoses\n",
                     static_cast<unsigned long long>(auto_submitted));
  }
  if (model_cache_hits + model_cache_misses > 0) {
    out += StrFormat(
        "models: %llu hits, %llu misses, %llu evictions, "
        "%llu invalidations (hit rate %.1f%%, %zu cached)\n",
        static_cast<unsigned long long>(model_cache_hits),
        static_cast<unsigned long long>(model_cache_misses),
        static_cast<unsigned long long>(model_cache_evictions),
        static_cast<unsigned long long>(model_cache_invalidations),
        ModelCacheHitRate() * 100.0, model_cache_entries);
  }
  out += StrFormat("queue:  depth %zu (max %zu)\n", queue_depth,
                   max_queue_depth);
  if (rejected_share + shed_deadline + cancelled_shutdown +
          starvation_avoided >
      0) {
    out += StrFormat(
        "admission: %llu admitted, %llu rejected (share), %llu shed "
        "(deadline), %llu cancelled (shutdown), %llu starvations avoided\n",
        static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(rejected_share),
        static_cast<unsigned long long>(shed_deadline),
        static_cast<unsigned long long>(cancelled_shutdown),
        static_cast<unsigned long long>(starvation_avoided));
  }
  out += StrFormat(
      "latency: p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms (n=%llu)\n",
      request_latency.p50_ms, request_latency.p95_ms, request_latency.p99_ms,
      request_latency.max_ms,
      static_cast<unsigned long long>(request_latency.count));
  if (collection_fetches > 0) {
    out += StrFormat(
        "collection: %llu fetches (%llu timeouts, %llu retries), "
        "%llu stale components across %llu degraded diagnoses; "
        "fetch p95 %.2fms, gather p95 %.2fms\n",
        static_cast<unsigned long long>(collection_fetches),
        static_cast<unsigned long long>(collection_timeouts),
        static_cast<unsigned long long>(collection_retries),
        static_cast<unsigned long long>(collection_stale),
        static_cast<unsigned long long>(degraded_diagnoses),
        fetch_latency.p95_ms, gather_latency.p95_ms);
  }
  struct Row {
    const char* name;
    const LatencyRecorder::Summary* s;
  } rows[] = {{"PD", &pd}, {"CO", &co}, {"DA", &da},
              {"CR", &cr}, {"SD", &sd}, {"IA", &ia}};
  for (const Row& row : rows) {
    if (row.s->count == 0) continue;
    out += StrFormat("module %s: mean %.2fms p95 %.2fms\n", row.name,
                     row.s->mean_ms, row.s->p95_ms);
  }
  return out;
}

std::string EngineStatsSnapshot::ToJson() const {
  std::string out = "{";
  out += StrFormat(
      "\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
      "\"rejected\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_evictions\":%llu,\"cache_invalidations\":%llu,"
      "\"coalesced\":%llu,\"auto_submitted\":%llu,"
      "\"fleet_publishes\":%llu,\"queue_depth\":%zu,"
      "\"max_queue_depth\":%zu,\"elapsed_sec\":%.3f,"
      "\"throughput_per_sec\":%.2f,\"cache_hit_rate\":%.4f,",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_invalidations),
      static_cast<unsigned long long>(coalesced),
      static_cast<unsigned long long>(auto_submitted),
      static_cast<unsigned long long>(fleet_publishes), queue_depth,
      max_queue_depth, elapsed_sec, throughput_per_sec, CacheHitRate());
  out += StrFormat(
      "\"admitted\":%llu,\"rejected_share\":%llu,\"shed_deadline\":%llu,"
      "\"cancelled_shutdown\":%llu,\"starvation_avoided\":%llu,"
      "\"queued_cost\":%.2f,",
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(rejected_share),
      static_cast<unsigned long long>(shed_deadline),
      static_cast<unsigned long long>(cancelled_shutdown),
      static_cast<unsigned long long>(starvation_avoided), queued_cost);
  out += StrFormat(
      "\"model_cache_hits\":%llu,\"model_cache_misses\":%llu,"
      "\"model_cache_evictions\":%llu,\"model_cache_invalidations\":%llu,"
      "\"model_cache_entries\":%zu,\"model_cache_hit_rate\":%.4f,",
      static_cast<unsigned long long>(model_cache_hits),
      static_cast<unsigned long long>(model_cache_misses),
      static_cast<unsigned long long>(model_cache_evictions),
      static_cast<unsigned long long>(model_cache_invalidations),
      model_cache_entries, ModelCacheHitRate());
  out += StrFormat(
      "\"collection_fetches\":%llu,\"collection_timeouts\":%llu,"
      "\"collection_retries\":%llu,\"collection_stale\":%llu,"
      "\"degraded_diagnoses\":%llu,",
      static_cast<unsigned long long>(collection_fetches),
      static_cast<unsigned long long>(collection_timeouts),
      static_cast<unsigned long long>(collection_retries),
      static_cast<unsigned long long>(collection_stale),
      static_cast<unsigned long long>(degraded_diagnoses));
  out += SummaryJson("request_latency", request_latency);
  out += ",";
  out += SummaryJson("fetch_latency", fetch_latency);
  out += ",";
  out += SummaryJson("gather_latency", gather_latency);
  struct Row {
    const char* name;
    const LatencyRecorder::Summary* s;
  } rows[] = {{"pd", &pd}, {"co", &co}, {"da", &da},
              {"cr", &cr}, {"sd", &sd}, {"ia", &ia}};
  for (const Row& row : rows) {
    out += ",";
    out += SummaryJson(row.name, *row.s);
  }
  out += "}";
  return out;
}

}  // namespace diads::engine
