#include "engine/cache.h"

#include <algorithm>

#include "common/strings.h"

namespace diads::engine {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64-style avalanche of the running hash with the next word.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return h;
}

}  // namespace

std::string CacheKey::ToString() const {
  return StrFormat("%s%s%s@[%lld,%lld)/cfg%016llx", query.c_str(),
                   tag.empty() ? "" : "#", tag.c_str(),
                   static_cast<long long>(window_begin),
                   static_cast<long long>(window_end),
                   static_cast<unsigned long long>(config_fingerprint));
}

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  uint64_t h = 0x51ed270b7a2fd1c5ull;
  h = Mix(h, std::hash<std::string>()(key.query));
  h = Mix(h, static_cast<uint64_t>(key.window_begin));
  h = Mix(h, static_cast<uint64_t>(key.window_end));
  h = Mix(h, std::hash<std::string>()(key.tag));
  h = Mix(h, key.config_fingerprint);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(Options options) {
  const int shards = std::max(1, options.shards);
  const size_t capacity = std::max<size_t>(1, options.capacity);
  shard_capacity_ =
      (capacity + static_cast<size_t>(shards) - 1) / static_cast<size_t>(shards);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const CacheKey& key) {
  return *shards_[CacheKeyHash()(key) % shards_.size()];
}

std::shared_ptr<const diag::DiagnosisReport> ResultCache::Get(
    const CacheKey& key,
    std::shared_ptr<const CollectionSummary>* collection,
    bool validate_generation, const void* authority,
    uint64_t store_generation) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (validate_generation &&
      (it->second->authority != authority ||
       it->second->store_generation != store_generation)) {
    // The report predates the store's current data (or was computed from a
    // different store entirely): drop it so it can never be served stale.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.invalidations;
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (collection != nullptr) *collection = it->second->collection;
  return it->second->report;
}

void ResultCache::Put(const CacheKey& key,
                      std::shared_ptr<const diag::DiagnosisReport> report,
                      std::shared_ptr<const CollectionSummary> collection,
                      const void* authority, uint64_t store_generation,
                      std::vector<ComponentId> components) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->report = std::move(report);
    it->second->collection = std::move(collection);
    it->second->authority = authority;
    it->second->store_generation = store_generation;
    it->second->components = std::move(components);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(report), std::move(collection),
                             authority, store_generation,
                             std::move(components)});
  shard.index[key] = shard.lru.begin();
}

template <typename Pred>
size_t ResultCache::EraseIf(Pred pred) {
  size_t erased = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (pred(*it)) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->invalidations;
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

size_t ResultCache::InvalidateTag(const std::string& tag) {
  return EraseIf([&](const Entry& entry) { return entry.key.tag == tag; });
}

size_t ResultCache::InvalidateTagComponent(const std::string& tag,
                                           ComponentId component) {
  return EraseIf([&](const Entry& entry) {
    return entry.key.tag == tag &&
           std::binary_search(entry.components.begin(),
                              entry.components.end(), component);
  });
}

ResultCache::Counters ResultCache::TotalCounters() const {
  Counters out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.invalidations += shard->invalidations;
    out.entries += shard->lru.size();
  }
  return out;
}

void ResultCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace diads::engine
