// Engine -> unified metrics registry bridge.
//
// EngineStats keeps its atomics where the hot path wants them; this
// bridge registers a scrape-time source that lowers a full
// EngineStatsSnapshot into the registry's sample space — every counter
// the snapshot carries (serving, result cache, model cache, async
// collection) plus queue/throughput gauges and the latency summaries as
// quantile-labelled gauges. obs_test asserts the mapping is lossless
// ("no counter lost": every EngineStatsSnapshot field has a sample).
#ifndef DIADS_ENGINE_METRICS_EXPORT_H_
#define DIADS_ENGINE_METRICS_EXPORT_H_

#include "engine/engine.h"
#include "obs/metrics.h"

namespace diads::engine {

/// Registers a scrape-time source for `engine`'s stats. The engine must
/// outlive the registry's last Collect/Render call. `labels` (e.g.
/// {{"engine","serving"}}) are attached to every emitted sample.
void RegisterEngineMetrics(obs::MetricsRegistry* registry,
                           const DiagnosisEngine* engine,
                           obs::Labels labels = {});

/// The snapshot-lowering itself (shared with tests): emits every field of
/// `snapshot` into `emitter`.
void EmitEngineSnapshot(const EngineStatsSnapshot& snapshot,
                        const obs::Labels& labels,
                        obs::MetricsEmitter& emitter);

}  // namespace diads::engine

#endif  // DIADS_ENGINE_METRICS_EXPORT_H_
