// The concurrent diagnosis engine: DIADS as a served system.
//
// The paper's workflow answers one administrator's question about one
// query. A deployment diagnosing slowdowns across a fleet answers that
// question continuously for many tenants at once: dashboards poll it,
// alerting retries it, several administrators investigate the same
// incident simultaneously. DiagnosisEngine turns the batch
// Workflow::Diagnose into that service:
//
//   * requests are accepted into a bounded queue (backpressure instead of
//     unbounded memory growth) and executed by a worker pool;
//   * the queue is tenant-fair (see fair_queue.h): per-tenant sub-queues
//     with deficit-round-robin dispatch, share-based admission control
//     (a flooding tenant is refused with kResourceExhausted instead of
//     starving everyone), and deadline shedding (expired requests resolve
//     kDeadlineExceeded without consuming a worker);
//   * Submit() returns a std::future so callers overlap their own work
//     with the diagnosis;
//   * finished reports are memoized in a sharded LRU cache keyed by
//     (query, window, tenant tag, config) — a repeat of the same question
//     is answered without re-running the module chain;
//   * identical requests already in flight are coalesced: the second
//     asker waits for the first one's report instead of computing it
//     twice (single-flight);
//   * everything is measured (EngineStats): throughput, queue depth,
//     per-module latency percentiles, cache hit rate.
//
// Determinism contract: for a given request, the engine's report is
// byte-identical (see ReportDigest) to a direct serial
// Workflow::Diagnose over the same context, whether it was computed,
// coalesced, or served from cache.
//
// The SymptomsDb is shared read-only across all workers. The one piece of
// request state the engine cannot assume is thread-safe is the
// deployment-supplied plan what-if probe: it may temporarily mutate the
// deployment's catalog while re-optimizing, racing other workers that
// read the same catalog mid-diagnosis. The engine therefore takes a
// per-catalog reader/writer lock around each diagnosis — probe-carrying
// requests exclusively, probe-less requests shared — so distinct tenants
// run fully in parallel and same-tenant readers still overlap.
#ifndef DIADS_ENGINE_ENGINE_H_
#define DIADS_ENGINE_ENGINE_H_

#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "diads/impact_analysis.h"
#include "diads/model_cache.h"
#include "diads/symptoms_db.h"
#include "diads/workflow.h"
#include "engine/cache.h"
#include "engine/stats.h"
#include "engine/thread_pool.h"
#include "monitor/async_collector.h"
#include "monitor/gather.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"

namespace diads::fleet {
class FleetStore;      // fleet/store.h
struct IncidentStamp;  // fleet/verdict.h
}  // namespace diads::fleet

namespace diads::engine {

/// One diagnosis question. The context's pointers must stay valid until
/// the returned future resolves (for a fleet, the FleetWorkload owns the
/// scenario state and outlives the engine run).
struct DiagnosisRequest {
  diag::DiagnosisContext ctx;
  diag::WorkflowConfig config;
  diag::ImpactMethod impact_method = diag::ImpactMethod::kInverseDependency;
  /// Tenant / deployment disambiguator: two tenants both call their report
  /// query "Q2", but their diagnoses must not share cache entries.
  std::string tag;
  /// Set by the SlowdownDetector's auto-submit path: the detected incident
  /// this request answers. The engine counts it (EngineStats::
  /// auto_submitted) and stamps it onto the published fleet verdict.
  /// Deliberately NOT part of the cache key: an administrator asking the
  /// detector's question joins the detector's in-flight computation (and
  /// vice versa), which is the dedup/coalescing contract. Never read by
  /// the workflow — reports are ReportDigest-identical with or without it.
  std::shared_ptr<const fleet::IncidentStamp> incident;
  /// Admission/scheduling metadata. None of it reaches the workflow:
  /// reports stay ReportDigest-identical whatever the scheduling was.
  /// Priority widens or narrows the tenant's admission share (an urgent
  /// incident diagnosis may burst past it; a dashboard prefetch is
  /// squeezed out first).
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative queue cost in share/deficit units (a fleet-wide rollup
  /// costs more than a single-query question). Must be > 0.
  double cost = 1.0;
  /// Freshness deadline in milliseconds from Submit; 0 = none. A request
  /// still queued when it expires is shed (kDeadlineExceeded) without
  /// consuming a worker — the asker (a poll loop, an alert retry) has
  /// already moved on. Cache hits and coalesced joins resolve immediately
  /// and never shed.
  double deadline_ms = 0;
};

/// What the future resolves to.
struct DiagnosisResponse {
  Status status;  ///< Ok unless the workflow failed or the engine refused.
  std::shared_ptr<const diag::DiagnosisReport> report;  ///< Null on error.
  /// Shared with every response for the same computation (coalesced
  /// waiters, cache hits). Null when the engine has no collector (the
  /// legacy stall path) and on responses that never reached a worker
  /// (validation/shutdown rejections); present — with its staleness
  /// annotation — even when the workflow itself failed after collecting.
  std::shared_ptr<const CollectionSummary> collection;
  bool cache_hit = false;
  bool coalesced = false;   ///< Waited on an identical in-flight request.
  double latency_ms = 0;    ///< Submit to completion, wall clock.
  /// Where this diagnosis's time went (queue / gather / modules, cache
  /// outcomes, gather volume). Shared across coalesced waiters — it
  /// describes the computation this response rode on. Null only for
  /// responses that never reached a worker (validation / shutdown
  /// rejections). Never feeds the report: ReportDigest-neutral.
  std::shared_ptr<const obs::CostProfile> cost;

  bool ok() const { return status.ok(); }
  /// The stale-data annotation: true when this report was diagnosed with
  /// at least one stale (timed-out) component's data.
  bool stale_data() const {
    return collection != nullptr && collection->degraded();
  }
};

struct EngineOptions {
  int workers = 4;
  size_t queue_capacity = 128;
  bool enable_cache = true;
  size_t cache_capacity = 1024;
  int cache_shards = 8;
  /// Join identical in-flight requests instead of recomputing.
  bool coalesce_identical = true;
  /// Legacy blocking-collection baseline: a single per-diagnosis sleep
  /// (milliseconds) standing in for serialized SAN-collector round-trips.
  /// Ignored when the engine is constructed with an AsyncCollector — the
  /// per-component scatter/gather replaces it. 0 disables (tests use 0;
  /// the blocking rows of bench_engine_throughput set it). Applied only on
  /// the compute path — cache hits skip collection entirely.
  double collector_stall_ms = 0;
  /// Scatter/gather policy when an AsyncCollector is installed: bounded
  /// in-flight fetches, per-component timeout, bounded retries.
  monitor::GatherOptions gather;
  /// Memoize fitted baseline KDEs (Modules CO/DA/CR) across diagnoses in
  /// a shared BaselineModelCache. Distinct from the *result* cache: the
  /// result cache answers exact repeats without any compute; the model
  /// cache speeds up *fresh* diagnoses that share baselines (new incident
  /// tags, overlapping windows, re-runs after a threshold tweak of an
  /// unrelated knob). Reports are digest-identical either way.
  bool enable_model_cache = true;
  size_t model_cache_capacity = 8192;
  int model_cache_shards = 16;
  /// Fleet-wide symptom store (may be null). When set, every successfully
  /// *computed* diagnosis is lowered to a fleet::TenantVerdict
  /// (ExtractVerdict over the request's context) and published after
  /// completion; coalesced waiters were already published by the
  /// computation they joined, and a generation-validated cache hit
  /// republishes only when the store's tenant row is missing or older
  /// (repopulation after an explicit fleet-store invalidation). Not
  /// owned; must outlive the engine. Publishing never changes the report
  /// (ReportDigest is identical with the store attached or not).
  fleet::FleetStore* fleet_store = nullptr;
  /// Generation-validate result-cache hits: a cached report is served
  /// only while the tenant store's StoreGeneration still equals the value
  /// recorded when the report was computed, so a query issued after new
  /// monitoring data arrives recomputes instead of serving stale. Uses
  /// the same append counters the model cache invalidates on. Scope: the
  /// guarantee covers appends that happen-before Submit (the store is
  /// not thread-safe against appends racing an in-flight diagnosis, so a
  /// coalesced waiter may legally share the report of a computation
  /// started before its Submit).
  bool invalidate_results_on_append = true;
  /// Tenant-fair admission + dispatch discipline for the work queue
  /// (weights, share fractions, DRR quantum — see fair_queue.h). Enabled
  /// by default; disable for the legacy single-FIFO behavior that
  /// bench_fairness uses as its baseline. Scheduling never changes report
  /// bytes, only which requests run when (and which are refused or shed).
  FairnessOptions fairness;
  /// End-to-end span tracer (may be null = tracing off, the default).
  /// When set, every Submit opens a "diagnosis" root span and the serving
  /// path hangs its children off it: result_cache lookup, queue_wait,
  /// gather (with per-component fetch spans), each workflow module, the
  /// model-cache outcome, fleet_publish. Not owned; must outlive the
  /// engine. Tracing is observation-only: reports are ReportDigest-
  /// identical with the tracer attached or not.
  obs::Tracer* tracer = nullptr;
};

class DiagnosisEngine {
 public:
  /// `symptoms_db` may be null (fallback causes, as in Workflow); when
  /// non-null it must outlive the engine and is shared read-only by all
  /// workers. `collector` (may be null) switches the compute path from the
  /// blocking collector_stall_ms sleep to one async scatter/gather per
  /// diagnosis; the engine co-owns it and shuts it down — after the worker
  /// pool, so in-flight gathers resolve first — when the engine shuts
  /// down. Sharing one collector across engines is fine (Shutdown is
  /// idempotent); just shut the engines down before dropping it.
  DiagnosisEngine(EngineOptions options, const diag::SymptomsDb* symptoms_db,
                  std::shared_ptr<monitor::AsyncCollector> collector = nullptr);
  ~DiagnosisEngine();  ///< Graceful: drains accepted work, then joins.

  DiagnosisEngine(const DiagnosisEngine&) = delete;
  DiagnosisEngine& operator=(const DiagnosisEngine&) = delete;

  /// Enqueues a diagnosis. Blocks while the queue is at capacity, but a
  /// request pushing its tenant past its queue share is refused
  /// immediately (kResourceExhausted). A queued request whose deadline
  /// expires resolves kDeadlineExceeded without running. After Shutdown
  /// the future resolves immediately with kShutdown.
  std::future<DiagnosisResponse> Submit(DiagnosisRequest request);

  /// Fans a fleet of requests across the pool and waits for all of them.
  /// Responses are in request order.
  std::vector<DiagnosisResponse> BatchDiagnose(
      std::vector<DiagnosisRequest> requests);

  /// Blocks until every accepted request has resolved.
  void Drain();

  /// Stops intake, finishes requests already RUNNING on a worker
  /// (including their in-flight async collections — a gather is bounded
  /// by timeout * attempts per component, so this terminates
  /// deterministically), fails every still-QUEUED request explicitly with
  /// kShutdown (futures resolve, nothing hangs), joins the workers, then
  /// shuts the collector down (cancelling any fetches the gathers
  /// abandoned, and joining its connection threads — nothing leaks).
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Explicit result-cache invalidation, the dashboard-serving
  /// counterpart of the Append-driven path: drops every cached report of
  /// a tenant tag, or only those whose report touched `component`.
  /// Returns the number of entries dropped. (The fleet store has its own
  /// invalidation surface — see fleet::FleetStore.)
  size_t InvalidateTenantResults(const std::string& tag);
  size_t InvalidateComponentResults(const std::string& tag,
                                    ComponentId component);

  /// Live metrics (queue depth sampled now, cache counters included).
  EngineStatsSnapshot Stats() const;

  /// Per-tenant admission/dispatch accounting (submitted, admitted,
  /// rejected, shed, dispatched, queued cost), sorted by tenant tag —
  /// the data behind an operator's "who is flooding us" table.
  std::vector<TenantAdmissionRow> TenantAdmission() const;

  /// Zeroes every counter and latency sample and restarts the throughput
  /// clock (benchmarks call this after warmup). Cache contents and the
  /// cache's own counters are untouched.
  void ResetStats() { stats_.Reset(); }

  /// The cache identity the engine derives for a request.
  static CacheKey KeyFor(const DiagnosisRequest& request);

  const EngineOptions& options() const { return options_; }

 private:
  struct Waiter;
  struct Inflight;

  /// Runs the workflow for one request on a worker thread: collects the
  /// diagnosis window's metrics (async gather, or the legacy stall), wraps
  /// the what-if probe with the engine-wide probe lock, records module and
  /// collection latencies. Fills `profile` (may be null) with the gather
  /// volume, module breakdown, and model-cache outcomes as it goes.
  void Compute(DiagnosisRequest* request, Status* status,
               std::shared_ptr<const diag::DiagnosisReport>* report,
               std::shared_ptr<const CollectionSummary>* collection,
               obs::CostProfile* profile);
  void Execute(CacheKey key, DiagnosisRequest request, double queue_wait_ms);
  /// Post-compute bookkeeping for a successful diagnosis: cache insert
  /// (stamped with the tenant store's pre-compute generation and the
  /// report's touched components) and fleet-store publish (the verdict
  /// carries `cost`).
  void AfterCompute(const CacheKey& key, const DiagnosisRequest& request,
                    const std::shared_ptr<const diag::DiagnosisReport>& report,
                    const std::shared_ptr<const CollectionSummary>& collection,
                    const monitor::TimeSeriesStore* authority,
                    uint64_t generation,
                    const std::shared_ptr<const obs::CostProfile>& cost);
  void Resolve(const CacheKey& key, const Status& status,
               std::shared_ptr<const diag::DiagnosisReport> report,
               std::shared_ptr<const CollectionSummary> collection,
               std::shared_ptr<const obs::CostProfile> cost);
  /// Books a terminal status into the completed / rejected / failed
  /// counters (rejected covers shutdown and admission refusals).
  void RecordTerminal(const Status& status);
  /// Scheduling metadata (tenant, cost, priority, deadline) for the
  /// pool task carrying `request`, with the deadline anchored at
  /// `submitted`.
  static QueueTask TaskSpecFor(const DiagnosisRequest& request,
                               std::chrono::steady_clock::time_point submitted);

  EngineOptions options_;
  const diag::SymptomsDb* symptoms_db_;
  std::shared_ptr<monitor::AsyncCollector> collector_;  ///< May be null.
  monitor::MetricGatherer gatherer_;  ///< Valid only when collector_ set.
  EngineStats stats_;
  ResultCache cache_;
  /// Fitted baseline models shared by all workers (see
  /// EngineOptions::enable_model_cache).
  diag::BaselineModelCache model_cache_;
  std::mutex inflight_mu_;
  std::unordered_map<CacheKey, std::unique_ptr<Inflight>, CacheKeyHash>
      inflight_;
  /// Per-deployment-catalog locks (see the class comment): keyed by the
  /// catalog pointer, created on first use. Keys are never dereferenced.
  std::mutex catalog_locks_mu_;
  std::unordered_map<const void*, std::shared_ptr<std::shared_mutex>>
      catalog_locks_;
  ThreadPool pool_;  ///< Last member: destroyed (joined) first.
};

/// Fingerprint of every threshold in a WorkflowConfig; part of CacheKey.
uint64_t ConfigFingerprint(const diag::WorkflowConfig& config);

}  // namespace diads::engine

#endif  // DIADS_ENGINE_ENGINE_H_
