#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "fleet/store.h"
#include "fleet/verdict.h"

namespace diads::engine {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

uint64_t MixBits(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t MixAnomalyConfig(uint64_t h, const stats::AnomalyConfig& config) {
  h = MixBits(h, static_cast<uint64_t>(config.bandwidth_rule));
  h = MixBits(h, static_cast<uint64_t>(config.aggregation));
  h = MixBits(h, DoubleBits(config.threshold));
  return h;
}

/// The tenant store whose append counters stamp this request's cached
/// results and fleet verdicts — DiagnosisContext::Authority(), the same
/// rule the model cache keys on, so the stamp a Submit-time Get
/// validates against is the stamp the worker's Put recorded.
const monitor::TimeSeriesStore* AuthorityOf(const DiagnosisRequest& request) {
  return request.ctx.Authority();
}

/// Components a report touched: every Module DA scored component plus
/// every cause subject. Sorted + deduped (InvalidateTagComponent binary-
/// searches it).
std::vector<ComponentId> ComponentsOf(const diag::DiagnosisReport& report) {
  std::vector<ComponentId> out;
  out.reserve(report.da.metrics.size() + report.causes.size());
  for (const diag::MetricAnomaly& metric : report.da.metrics) {
    out.push_back(metric.component);
  }
  for (const diag::RootCause& cause : report.causes) {
    if (cause.subject.valid()) out.push_back(cause.subject);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Trace-span outcome label for a terminal status.
const char* OutcomeNote(const Status& status) {
  if (status.ok()) return "ok";
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return "shed";
    case StatusCode::kShutdown:
      return "shutdown";
    case StatusCode::kResourceExhausted:
      return "rejected";
    default:
      return "error";
  }
}

Status ValidateContext(const diag::DiagnosisContext& ctx) {
  if (ctx.runs == nullptr || ctx.store == nullptr || ctx.events == nullptr ||
      ctx.apg == nullptr || ctx.topology == nullptr ||
      ctx.catalog == nullptr) {
    return Status::InvalidArgument(
        "DiagnosisRequest context is missing a required source (runs, "
        "store, events, apg, topology, catalog)");
  }
  return Status::Ok();
}

}  // namespace

uint64_t ConfigFingerprint(const diag::WorkflowConfig& config) {
  uint64_t h = 0xd1a6d005c0ffee00ull;
  h = MixAnomalyConfig(h, config.operator_anomaly);
  h = MixAnomalyConfig(h, config.metric_anomaly);
  h = MixAnomalyConfig(h, config.record_deviation);
  h = MixBits(h, DoubleBits(config.correlation_threshold));
  h = MixBits(h, DoubleBits(config.high_confidence));
  h = MixBits(h, DoubleBits(config.medium_confidence));
  h = MixBits(h, DoubleBits(config.report_floor));
  return h;
}

struct DiagnosisEngine::Waiter {
  std::shared_ptr<std::promise<DiagnosisResponse>> promise;
  Clock::time_point submitted;
  bool coalesced = false;
  /// The waiter's "diagnosis" root span; closed when the waiter resolves
  /// (inert when tracing is off).
  obs::SpanHandle span;
};

struct DiagnosisEngine::Inflight {
  std::vector<Waiter> waiters;
};

DiagnosisEngine::DiagnosisEngine(
    EngineOptions options, const diag::SymptomsDb* symptoms_db,
    std::shared_ptr<monitor::AsyncCollector> collector)
    : options_(options),
      symptoms_db_(symptoms_db),
      collector_(std::move(collector)),
      gatherer_(collector_.get(), options.gather),
      cache_(ResultCache::Options{options.cache_capacity,
                                  options.cache_shards}),
      model_cache_(diag::BaselineModelCache::Options{
          options.model_cache_capacity, options.model_cache_shards}),
      pool_(ThreadPool::Options{options.workers, options.queue_capacity,
                                options.fairness}) {}

DiagnosisEngine::~DiagnosisEngine() { Shutdown(); }

CacheKey DiagnosisEngine::KeyFor(const DiagnosisRequest& request) {
  CacheKey key;
  key.query = request.ctx.query;
  const TimeInterval window = request.ctx.AnalysisWindow();
  key.window_begin = window.begin;
  key.window_end = window.end;
  key.tag = request.tag;
  key.config_fingerprint = MixBits(
      ConfigFingerprint(request.config),
      static_cast<uint64_t>(request.impact_method));
  return key;
}

std::future<DiagnosisResponse> DiagnosisEngine::Submit(
    DiagnosisRequest request) {
  stats_.RecordSubmitted();
  if (request.incident != nullptr) stats_.RecordAutoSubmitted();
  const Clock::time_point submitted = Clock::now();
  // One root span per Submit. The request's TraceContext parents every
  // serving-path child (cache lookup, queue wait, gather, modules,
  // publish); the handle itself travels to whichever path resolves this
  // request and is closed there.
  obs::SpanHandle root;
  if (options_.tracer != nullptr) {
    root = options_.tracer->Root().StartSpan("diagnosis", "engine");
    root.Note("tag", request.tag);
    root.Note("query", request.ctx.query);
    request.ctx.trace = obs::TraceContext(options_.tracer, root.id());
  }
  auto promise = std::make_shared<std::promise<DiagnosisResponse>>();
  std::future<DiagnosisResponse> future = promise->get_future();

  auto fulfill_now = [&](Status status, bool failed_counts) {
    DiagnosisResponse response;
    response.status = std::move(status);
    response.latency_ms = ElapsedMs(submitted);
    if (failed_counts) stats_.RecordFailed();
    promise->set_value(std::move(response));
  };

  Status valid = ValidateContext(request.ctx);
  if (valid.ok() && request.cost <= 0) {
    valid = Status::InvalidArgument("DiagnosisRequest cost must be > 0");
  }
  if (!valid.ok()) {
    root.Note("outcome", "invalid");
    fulfill_now(valid, /*failed_counts=*/true);
    return future;
  }

  const CacheKey key = KeyFor(request);

  if (options_.enable_cache) {
    obs::SpanHandle cache_span =
        request.ctx.trace.StartSpan("result_cache", "cache");
    std::shared_ptr<const CollectionSummary> cached_collection;
    const monitor::TimeSeriesStore* authority = AuthorityOf(request);
    const uint64_t generation = authority->StoreGeneration();
    if (std::shared_ptr<const diag::DiagnosisReport> report =
            cache_.Get(key, &cached_collection,
                       options_.invalidate_results_on_append, authority,
                       generation)) {
      cache_span.Note("outcome", "hit");
      cache_span.End();
      stats_.RecordCacheHit();
      // Normally the computation that filled this entry already
      // published its verdict, but an explicit FleetStore invalidation
      // (with no new monitoring data) leaves the store empty while the
      // cache keeps hitting — so repopulate when the tenant-level row is
      // missing or older. Checking the tenant row alone suffices because
      // every store invalidation path (InvalidateTenant,
      // InvalidateComponent, DropStale) drops it along with the targeted
      // rows. Only safe with generation-validated hits: they guarantee
      // this report reflects the store's current data, so the fresh
      // stamps are truthful. (Legacy mode keeps the gap: a stale hit
      // must not pose as a fresh verdict.)
      if (options_.fleet_store != nullptr &&
          options_.invalidate_results_on_append) {
        const fleet::FleetStore::Row row = options_.fleet_store->Get(
            fleet::FleetKey{request.tag, "", key.window_begin,
                            key.window_end});
        if (row.record == nullptr || row.generation < generation) {
          fleet::TenantVerdict verdict =
              fleet::ExtractVerdict(request.ctx, *report, request.tag);
          verdict.incident = request.incident;
          options_.fleet_store->Publish(verdict);
          stats_.RecordFleetPublish();
        }
      }
      DiagnosisResponse response;
      response.report = std::move(report);
      response.collection = std::move(cached_collection);
      response.cache_hit = true;
      response.latency_ms = ElapsedMs(submitted);
      auto profile = std::make_shared<obs::CostProfile>();
      profile->result_cache_hit = true;
      profile->total_ms = response.latency_ms;
      response.cost = std::move(profile);
      root.Note("outcome", "cache_hit");
      stats_.RecordCompleted();
      stats_.RecordRequestLatency(response.latency_ms);
      promise->set_value(std::move(response));
      return future;
    }
    cache_span.Note("outcome", "miss");
    cache_span.End();
    stats_.RecordCacheMiss();
  }

  if (options_.coalesce_identical) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        root.Note("outcome", "coalesced");
        it->second->waiters.push_back(Waiter{std::move(promise), submitted,
                                             /*coalesced=*/true,
                                             std::move(root)});
        stats_.RecordCoalesced();
        return future;
      }
      auto entry = std::make_unique<Inflight>();
      entry->waiters.push_back(
          Waiter{promise, submitted, /*coalesced=*/false, std::move(root)});
      inflight_.emplace(key, std::move(entry));
    }
    // The queue-wait span lives in a shared_ptr because the pool's task
    // type (std::function) requires copyable callables. It closes at
    // worker pickup; the measured wait feeds the cost profile.
    auto queue_span = std::make_shared<obs::SpanHandle>(
        request.ctx.trace.StartSpan("queue_wait", "engine"));
    const Clock::time_point enqueued = Clock::now();
    QueueTask task = TaskSpecFor(request, submitted);
    // Deadline shedding / shutdown cancellation reaches every waiter that
    // piled onto this key; later identical Submits opened a fresh
    // computation (the inflight entry is erased by Resolve).
    task.cancel = [this, key, queue_span](const Status& status) {
      queue_span->Note("outcome", OutcomeNote(status));
      queue_span->End();
      Resolve(key, status, nullptr, nullptr, nullptr);
    };
    task.run = [this, key, queue_span, enqueued,
                request = std::move(request)]() mutable {
      queue_span->End();
      Execute(key, std::move(request), ElapsedMs(enqueued));
    };
    const Status submitted_status = pool_.Submit(std::move(task));
    stats_.RecordQueueDepth(pool_.QueueDepth());
    if (!submitted_status.ok()) {
      // The pool refused the enqueue (admission share, or it shut down
      // between the inflight insert and the enqueue): fail every waiter
      // that piled onto this key.
      Resolve(key, submitted_status, nullptr, nullptr, nullptr);
    }
    return future;
  }

  // No coalescing: the task owns its promise directly (and its root span,
  // boxed for the same copyability reason as the queue span).
  auto root_holder = std::make_shared<obs::SpanHandle>(std::move(root));
  auto queue_span = std::make_shared<obs::SpanHandle>(
      request.ctx.trace.StartSpan("queue_wait", "engine"));
  const Clock::time_point enqueued = Clock::now();
  QueueTask task = TaskSpecFor(request, submitted);
  task.cancel = [this, promise, submitted, queue_span,
                 root_holder](const Status& status) {
    queue_span->Note("outcome", OutcomeNote(status));
    queue_span->End();
    DiagnosisResponse response;
    response.status = status;
    response.latency_ms = ElapsedMs(submitted);
    RecordTerminal(status);
    root_holder->Note("outcome", OutcomeNote(status));
    root_holder->End();
    stats_.RecordRequestLatency(response.latency_ms);
    promise->set_value(std::move(response));
  };
  task.run =
      [this, key, promise, submitted, enqueued, queue_span, root_holder,
       request = std::move(request)]() mutable {
        queue_span->End();
        const double queue_wait_ms = ElapsedMs(enqueued);
        DiagnosisRequest local = std::move(request);
        const monitor::TimeSeriesStore* authority = AuthorityOf(local);
        const uint64_t generation = authority->StoreGeneration();
        Status status;
        std::shared_ptr<const diag::DiagnosisReport> report;
        std::shared_ptr<const CollectionSummary> collection;
        auto profile = std::make_shared<obs::CostProfile>();
        profile->queue_wait_ms = queue_wait_ms;
        Compute(&local, &status, &report, &collection, profile.get());
        DiagnosisResponse response;
        response.latency_ms = ElapsedMs(submitted);
        profile->total_ms = response.latency_ms;
        std::shared_ptr<const obs::CostProfile> cost = std::move(profile);
        if (status.ok()) {
          AfterCompute(key, local, report, collection, authority, generation,
                       cost);
        }
        response.status = status;
        response.report = std::move(report);
        response.collection = std::move(collection);
        response.cost = std::move(cost);
        if (status.ok()) {
          stats_.RecordCompleted();
        } else {
          stats_.RecordFailed();
        }
        root_holder->Note("outcome", status.ok() ? "ok" : "error");
        root_holder->End();
        stats_.RecordRequestLatency(response.latency_ms);
        promise->set_value(std::move(response));
      };
  const Status submitted_status = pool_.Submit(std::move(task));
  stats_.RecordQueueDepth(pool_.QueueDepth());
  if (!submitted_status.ok()) {
    stats_.RecordRejected();
    root_holder->Note("outcome", OutcomeNote(submitted_status));
    root_holder->End();
    fulfill_now(submitted_status, /*failed_counts=*/false);
  }
  return future;
}

QueueTask DiagnosisEngine::TaskSpecFor(const DiagnosisRequest& request,
                                       Clock::time_point submitted) {
  QueueTask task;
  task.tenant = request.tag;
  task.cost = request.cost;
  task.priority = request.priority;
  if (request.deadline_ms > 0) {
    task.has_deadline = true;
    task.deadline =
        submitted + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            request.deadline_ms));
  }
  return task;
}

void DiagnosisEngine::RecordTerminal(const Status& status) {
  if (status.ok()) {
    stats_.RecordCompleted();
    return;
  }
  switch (status.code()) {
    // Refusals of the serving layer, not workflow failures: shutdown,
    // admission. (Deadline sheds count as failed — the caller asked and
    // was never answered — and are separately visible as shed_deadline.)
    case StatusCode::kFailedPrecondition:
    case StatusCode::kShutdown:
    case StatusCode::kResourceExhausted:
      stats_.RecordRejected();
      break;
    default:
      stats_.RecordFailed();
      break;
  }
}

void DiagnosisEngine::Compute(
    DiagnosisRequest* request, Status* status,
    std::shared_ptr<const diag::DiagnosisReport>* report,
    std::shared_ptr<const CollectionSummary>* collection,
    obs::CostProfile* profile) {
  if (collector_ == nullptr && options_.collector_stall_ms > 0) {
    // Legacy blocking baseline: one serialized stall per diagnosis.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.collector_stall_ms));
  }
  if (options_.enable_model_cache) {
    // Share fitted baseline models across all diagnoses served by this
    // engine, keyed on the request's own (authoritative) store.
    request->ctx.model_cache = &model_cache_;
    request->ctx.model_authority = request->ctx.Authority();
  }
  // Per-diagnosis model-cache attribution (global cache stats cannot say
  // which diagnosis paid for which fit). Lives on this stack frame; the
  // workflow only reads the pointer synchronously.
  obs::ModelLookupCounters model_lookups;
  request->ctx.model_lookups = &model_lookups;
  diag::Workflow workflow(request->ctx, request->config, symptoms_db_);
  diag::CollectionOutcome outcome;
  if (collector_ != nullptr) {
    // One overlapped scatter/gather for this diagnosis's whole metric
    // plan. Collection only reads the tenant's store, so it runs before
    // the catalog lock below — a slow component must not serialize
    // same-tenant diagnoses behind wire latency.
    outcome = workflow.Collect(gatherer_);
    stats_.RecordCollection(outcome.gather);
    auto summary = std::make_shared<CollectionSummary>();
    summary->used_async = true;
    summary->stale_components = std::move(outcome.gather.stale_components);
    summary->fetches = outcome.gather.counters.fetches;
    summary->timeouts = outcome.gather.counters.timeouts;
    summary->retries = outcome.gather.counters.retries;
    summary->gather_ms = outcome.gather.counters.gather_ms;
    if (profile != nullptr) {
      profile->gather_ms = outcome.gather.counters.gather_ms;
      profile->fetches_issued = outcome.gather.counters.fetches;
      profile->fetch_timeouts = outcome.gather.counters.timeouts;
      profile->fetch_retries = outcome.gather.counters.retries;
      profile->samples_collected = outcome.gather.counters.samples_collected;
      profile->bytes_collected = outcome.gather.counters.bytes_collected;
      const ComponentRegistry& registry =
          request->ctx.topology->registry();
      for (ComponentId component : summary->stale_components) {
        profile->stale_components.push_back(
            registry.Contains(component) ? registry.NameOf(component)
                                         : "?");
      }
    }
    *collection = std::move(summary);
  }
  // The deployment what-if probe temporarily mutates the deployment's
  // catalog (it re-optimizes with an event reverted), which would race
  // every other worker reading that catalog mid-diagnosis. Hold the
  // catalog's lock for the whole workflow run: exclusively when this
  // request carries a probe, shared otherwise — distinct tenants have
  // distinct catalogs and are unaffected.
  std::shared_ptr<std::shared_mutex> catalog_lock;
  {
    std::lock_guard<std::mutex> lock(catalog_locks_mu_);
    std::shared_ptr<std::shared_mutex>& slot =
        catalog_locks_[request->ctx.catalog];
    if (slot == nullptr) slot = std::make_shared<std::shared_mutex>();
    catalog_lock = slot;
  }
  std::shared_lock<std::shared_mutex> read_lock;
  std::unique_lock<std::shared_mutex> write_lock;
  if (request->ctx.plan_whatif_probe != nullptr) {
    write_lock = std::unique_lock<std::shared_mutex>(*catalog_lock);
  } else {
    read_lock = std::shared_lock<std::shared_mutex>(*catalog_lock);
  }
  diag::ModuleTimings timings;
  Result<diag::DiagnosisReport> result =
      collector_ != nullptr
          ? workflow.DiagnoseOverCollection(outcome, request->impact_method,
                                            &timings)
          : workflow.Diagnose(request->impact_method, &timings);
  stats_.RecordModuleLatencies(timings);
  if (profile != nullptr) {
    profile->module_ms = {{"PD", timings.pd_ms}, {"CO", timings.co_ms},
                          {"DA", timings.da_ms}, {"CR", timings.cr_ms},
                          {"SD", timings.sd_ms}, {"IA", timings.ia_ms}};
    profile->model_cache_hits = model_lookups.hits;
    profile->model_cache_misses = model_lookups.misses;
  }
  // The per-diagnosis model-cache verdict as a zero-duration marker (the
  // lookups themselves are interleaved through CO/DA/CR).
  request->ctx.trace.Instant(
      "model_cache", "cache",
      {{"hits", StrFormat("%llu", (unsigned long long)model_lookups.hits)},
       {"misses",
        StrFormat("%llu", (unsigned long long)model_lookups.misses)}});
  if (!result.ok()) {
    *status = result.status();
    return;
  }
  *status = Status::Ok();
  *report = std::make_shared<const diag::DiagnosisReport>(
      std::move(result).value());
}

void DiagnosisEngine::Execute(CacheKey key, DiagnosisRequest request,
                              double queue_wait_ms) {
  const Clock::time_point started = Clock::now();
  const monitor::TimeSeriesStore* authority = AuthorityOf(request);
  const uint64_t generation = authority->StoreGeneration();
  Status status;
  std::shared_ptr<const diag::DiagnosisReport> report;
  std::shared_ptr<const CollectionSummary> collection;
  auto profile = std::make_shared<obs::CostProfile>();
  profile->queue_wait_ms = queue_wait_ms;
  Compute(&request, &status, &report, &collection, profile.get());
  // Accepted -> response ready, from the computing request's viewpoint
  // (coalesced waiters report their own latency_ms but share this
  // profile).
  profile->total_ms = queue_wait_ms + ElapsedMs(started);
  std::shared_ptr<const obs::CostProfile> cost = std::move(profile);
  if (status.ok()) {
    AfterCompute(key, request, report, collection, authority, generation,
                 cost);
  }
  Resolve(key, status, std::move(report), std::move(collection),
          std::move(cost));
}

void DiagnosisEngine::AfterCompute(
    const CacheKey& key, const DiagnosisRequest& request,
    const std::shared_ptr<const diag::DiagnosisReport>& report,
    const std::shared_ptr<const CollectionSummary>& collection,
    const monitor::TimeSeriesStore* authority, uint64_t generation,
    const std::shared_ptr<const obs::CostProfile>& cost) {
  if (options_.enable_cache) {
    // The generation stamp was read *before* the workflow ran: if samples
    // arrived mid-computation the entry is conservatively already stale
    // and the next generation-validated Get recomputes.
    cache_.Put(key, report, collection, authority, generation,
               ComponentsOf(*report));
  }
  if (options_.fleet_store != nullptr) {
    // ExtractVerdict stamps rows with the authority's *current*
    // generations, so publish only while the store still sits at the
    // pre-compute generation — otherwise a verdict derived from old data
    // would carry a fresh stamp, could supersede a genuinely fresh one,
    // and would survive DropStale. When the store moved on, skip: the
    // next diagnosis of this tenant is a guaranteed cache miss at the
    // new generation and republishes.
    if (authority->StoreGeneration() == generation) {
      obs::SpanHandle span =
          request.ctx.trace.StartSpan("fleet_publish", "engine");
      fleet::TenantVerdict verdict =
          fleet::ExtractVerdict(request.ctx, *report, request.tag);
      verdict.cost = cost;
      verdict.incident = request.incident;
      options_.fleet_store->Publish(verdict);
      stats_.RecordFleetPublish();
    }
  }
}

size_t DiagnosisEngine::InvalidateTenantResults(const std::string& tag) {
  return cache_.InvalidateTag(tag);
}

size_t DiagnosisEngine::InvalidateComponentResults(const std::string& tag,
                                                   ComponentId component) {
  return cache_.InvalidateTagComponent(tag, component);
}

void DiagnosisEngine::Resolve(
    const CacheKey& key, const Status& status,
    std::shared_ptr<const diag::DiagnosisReport> report,
    std::shared_ptr<const CollectionSummary> collection,
    std::shared_ptr<const obs::CostProfile> cost) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    waiters = std::move(it->second->waiters);
    inflight_.erase(it);
  }
  for (Waiter& waiter : waiters) {
    DiagnosisResponse response;
    response.status = status;
    response.report = report;
    response.collection = collection;
    response.cost = cost;
    response.coalesced = waiter.coalesced;
    response.latency_ms = ElapsedMs(waiter.submitted);
    RecordTerminal(status);
    waiter.span.Note("outcome", OutcomeNote(status));
    waiter.span.End();
    stats_.RecordRequestLatency(response.latency_ms);
    waiter.promise->set_value(std::move(response));
  }
}

std::vector<DiagnosisResponse> DiagnosisEngine::BatchDiagnose(
    std::vector<DiagnosisRequest> requests) {
  std::vector<std::future<DiagnosisResponse>> futures;
  futures.reserve(requests.size());
  for (DiagnosisRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<DiagnosisResponse> responses;
  responses.reserve(futures.size());
  for (std::future<DiagnosisResponse>& future : futures) {
    responses.push_back(future.get());
  }
  return responses;
}

void DiagnosisEngine::Drain() { pool_.Drain(); }

void DiagnosisEngine::Shutdown() {
  // Order matters: finish accepted diagnoses first (their gathers are
  // bounded by per-component timeout * attempts), then cancel and join the
  // collector's connection threads so nothing leaks and no fetch future
  // is left unresolved.
  pool_.Shutdown();
  if (collector_ != nullptr) collector_->Shutdown();
}

std::vector<TenantAdmissionRow> DiagnosisEngine::TenantAdmission() const {
  return pool_.TenantRows();
}

EngineStatsSnapshot DiagnosisEngine::Stats() const {
  EngineStatsSnapshot snapshot = stats_.Snapshot(pool_.QueueDepth());
  const FairQueueCounters queue = pool_.QueueCounters();
  snapshot.admitted = queue.admitted;
  snapshot.rejected_share = queue.rejected_share;
  snapshot.shed_deadline = queue.shed_deadline;
  snapshot.cancelled_shutdown = queue.cancelled_shutdown;
  snapshot.starvation_avoided = queue.starvation_avoided;
  snapshot.queued_cost = pool_.QueuedCost();
  const ResultCache::Counters cache = cache_.TotalCounters();
  snapshot.cache_evictions = cache.evictions;
  snapshot.cache_invalidations = cache.invalidations;
  const diag::BaselineModelCache::Counters models =
      model_cache_.TotalCounters();
  snapshot.model_cache_hits = models.hits;
  snapshot.model_cache_misses = models.misses;
  snapshot.model_cache_evictions = models.evictions;
  snapshot.model_cache_invalidations = models.invalidations;
  snapshot.model_cache_entries = models.entries;
  return snapshot;
}

}  // namespace diads::engine
