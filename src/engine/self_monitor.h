// Engine self-monitoring: the observability loop closed on itself.
//
// The paper's pitch is "why did my query slow down?"; the natural follow-up
// for a serving deployment is "why did my *diagnosis* slow down?". This
// component periodically samples the engine's own stats (throughput, queue
// depth, latency quantiles, cache hit rate, degradations) and appends them
// as ordinary time series into a dedicated TimeSeriesStore — so the very
// same anomaly-detection / diagnosis machinery can be pointed at the
// engine itself.
//
// Metric-id discipline: monitor::MetricId is a closed enum whose members
// participate in ReportDigest (via annotations and module scoring), so we
// must NOT extend it. EngineMetric instead occupies a disjoint id range
// (>= 1000) and is static_cast into MetricId only for storage keys in the
// self-monitor's own store. Never call GetMetricMeta / MetricShortName on
// these ids; EngineMetricName below is their name table.
#ifndef DIADS_ENGINE_SELF_MONITOR_H_
#define DIADS_ENGINE_SELF_MONITOR_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "engine/engine.h"
#include "monitor/timeseries.h"

namespace diads::engine {

/// Engine-health metrics, stored in a dedicated TimeSeriesStore under ids
/// disjoint from monitor::MetricId (which tops out far below 1000).
enum class EngineMetric : int {
  kThroughputPerSec = 1000,
  kQueueDepth = 1001,
  kRequestP50Ms = 1002,
  kRequestP99Ms = 1003,
  kSubmitted = 1004,
  kCompleted = 1005,
  kFailed = 1006,
  kResultCacheHitRate = 1007,   // hits / (hits + misses), 0 when no lookups
  kModelCacheHitRate = 1008,
  kDegradedDiagnoses = 1009,
  kGatherP99Ms = 1010,
};

/// Storage key for an EngineMetric: a MetricId-typed value outside the
/// real enum's range. Only valid as a TimeSeriesStore key.
constexpr monitor::MetricId ToMetricId(EngineMetric m) {
  return static_cast<monitor::MetricId>(static_cast<int>(m));
}

/// Human-readable name (the self-monitor's GetMetricMeta stand-in).
const char* EngineMetricName(EngineMetric m);

/// All metrics SampleInto appends, in append order.
const std::vector<EngineMetric>& AllEngineMetrics();

/// Appends one sample per EngineMetric into `store`, keyed by `component`
/// at SimTime `now`, from the engine's current stats snapshot. Counters
/// are appended cumulatively (matching how monitoring tools report, and
/// what the anomaly scorers difference away); rates and quantiles as-is.
///
/// Typical use: a dedicated store + a registry with one component per
/// engine ("engine0"), sampled every serving tick:
///
///   monitor::TimeSeriesStore health;
///   ComponentRegistry reg;
///   ComponentId self = reg.MustRegister("engine0", ComponentKind::kServer);
///   ...
///   SampleEngineHealth(engine, self, now_ms, &health);
///
/// The resulting series slice/score exactly like any SAN metric.
void SampleEngineHealth(const DiagnosisEngine& engine, ComponentId component,
                        SimTimeMs now, monitor::TimeSeriesStore* store);

/// Same lowering from an already-taken snapshot (shared with tests).
void AppendSnapshot(const EngineStatsSnapshot& snapshot,
                    ComponentId component, SimTimeMs now,
                    monitor::TimeSeriesStore* store);

}  // namespace diads::engine

#endif  // DIADS_ENGINE_SELF_MONITOR_H_
