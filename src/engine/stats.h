// Serving-layer metrics for the concurrent diagnosis engine.
//
// The engine is the part of DIADS that faces traffic, so it is the part
// that must be measurable: operators watching a fleet-wide diagnosis
// service need throughput, queue depth, cache effectiveness, and the
// latency breakdown across the workflow's modules (PD/CO/DA/CR/SD/IA) to
// tell "the service is slow" apart from "one module regressed".
//
// All recorders are thread-safe; workers record with a short critical
// section and readers take a consistent snapshot.
#ifndef DIADS_ENGINE_STATS_H_
#define DIADS_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace diads::diag {
struct ModuleTimings;  // diads/workflow.h
}  // namespace diads::diag

namespace diads::monitor {
struct GatherResult;  // monitor/gather.h
}  // namespace diads::monitor

namespace diads::engine {

/// Thread-safe latency accumulator with exact percentiles.
///
/// Stores every sample (a diagnosis service handles thousands of requests,
/// not billions; exactness beats a sketch at this scale) and sorts lazily
/// at snapshot time.
class LatencyRecorder {
 public:
  void Record(double ms);

  struct Summary {
    uint64_t count = 0;
    double mean_ms = 0;
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;
  };
  Summary Summarize() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

/// Point-in-time view of the engine's counters.
struct EngineStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;       ///< Submitted after shutdown began.
  // Fair-queue admission/dispatch outcomes (filled by the engine from its
  // ThreadPool; all zero for a queue that never rejected or shed).
  uint64_t admitted = 0;            ///< Tasks accepted past admission.
  uint64_t rejected_share = 0;      ///< Refused: tenant queue share full.
  uint64_t shed_deadline = 0;       ///< Dropped expired before running.
  uint64_t cancelled_shutdown = 0;  ///< Queued work failed by Shutdown.
  /// Dispatches where fair queueing let a request overtake an
  /// earlier-arrived request of another (flooding) tenant.
  uint64_t starvation_avoided = 0;
  double queued_cost = 0;           ///< Cost currently enqueued.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;  ///< Filled by the engine from its cache.
  /// Result-cache entries dropped stale (generation mismatch) or by
  /// explicit per-tenant/per-component invalidation. From the cache.
  uint64_t cache_invalidations = 0;
  uint64_t coalesced = 0;      ///< Joined an identical in-flight request.
  /// Requests carrying a detector incident (SlowdownDetector auto-submit)
  /// rather than an administrator's question. Subset of `submitted`.
  uint64_t auto_submitted = 0;
  /// Verdicts published into the fleet store (0 without a fleet store).
  uint64_t fleet_publishes = 0;
  // Baseline-model cache (filled by the engine from its
  // BaselineModelCache; all zero when the model cache is disabled).
  uint64_t model_cache_hits = 0;
  uint64_t model_cache_misses = 0;
  uint64_t model_cache_evictions = 0;
  uint64_t model_cache_invalidations = 0;  ///< Append-driven drops.
  size_t model_cache_entries = 0;
  size_t queue_depth = 0;
  size_t max_queue_depth = 0;
  double elapsed_sec = 0;      ///< Since engine start (or stats reset).
  double throughput_per_sec = 0;  ///< completed / elapsed.
  // Async SAN collection (zero when the engine has no collector).
  uint64_t collection_fetches = 0;   ///< Fetch attempts issued.
  uint64_t collection_timeouts = 0;  ///< Attempts past their deadline.
  uint64_t collection_retries = 0;   ///< Re-issued fetches.
  uint64_t collection_stale = 0;     ///< Components served stale.
  uint64_t degraded_diagnoses = 0;   ///< Diagnoses with >= 1 stale component.
  LatencyRecorder::Summary request_latency;  ///< Submit -> report ready.
  LatencyRecorder::Summary fetch_latency;    ///< Per successful fetch.
  LatencyRecorder::Summary gather_latency;   ///< Per diagnosis gather.
  LatencyRecorder::Summary pd, co, da, cr, sd, ia;  ///< Per module.

  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  double ModelCacheHitRate() const {
    const uint64_t total = model_cache_hits + model_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(model_cache_hits) / total;
  }

  /// Human-readable multi-line rendering (console dashboards).
  std::string Render() const;
  /// One-line JSON object (bench output, log scraping).
  std::string ToJson() const;
};

/// The engine's shared metrics hub. One instance per DiagnosisEngine.
class EngineStats {
 public:
  void RecordSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordCoalesced() { coalesced_.fetch_add(1, std::memory_order_relaxed); }
  void RecordAutoSubmitted() {
    auto_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFleetPublish() {
    fleet_publishes_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordQueueDepth(size_t depth);
  void RecordRequestLatency(double ms) { request_latency_.Record(ms); }
  void RecordModuleLatencies(const diag::ModuleTimings& timings);
  /// Folds one diagnosis's gather (counters + fetch latencies) in.
  void RecordCollection(const monitor::GatherResult& gather);

  /// `queue_depth` is sampled by the caller (the queue owns the live value).
  EngineStatsSnapshot Snapshot(size_t queue_depth) const;

  /// Restarts the throughput clock and zeroes every counter.
  void Reset();

  EngineStats();

 private:
  std::atomic<uint64_t> submitted_{0}, completed_{0}, failed_{0}, rejected_{0};
  std::atomic<uint64_t> cache_hits_{0}, cache_misses_{0};
  std::atomic<uint64_t> coalesced_{0}, fleet_publishes_{0};
  std::atomic<uint64_t> auto_submitted_{0};
  std::atomic<uint64_t> collection_fetches_{0}, collection_timeouts_{0};
  std::atomic<uint64_t> collection_retries_{0}, collection_stale_{0};
  std::atomic<uint64_t> degraded_diagnoses_{0};
  std::atomic<size_t> max_queue_depth_{0};
  std::atomic<int64_t> start_ns_{0};
  LatencyRecorder request_latency_;
  LatencyRecorder fetch_latency_, gather_latency_;
  LatencyRecorder pd_, co_, da_, cr_, sd_, ia_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_STATS_H_
