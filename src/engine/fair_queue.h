// Per-tenant weighted fair queueing for the diagnosis engine.
//
// The engine's original work queue was a single bounded FIFO: admission
// was first-come-first-served and dispatch was arrival order, so one
// flooding tenant (a dashboard stuck in a retry loop, an alerting storm)
// could fill the queue and starve every other tenant's diagnosis behind
// its burst — exactly the snowball regime where slowdown begets retry
// load and the diagnosis service amplifies the incident it should be
// explaining. FairQueue replaces the FIFO with the three standard
// defenses, in dispatch order:
//
//   * admission control — each tenant owns a bounded share of the queue's
//     cost budget (weight-scaled fraction of capacity, stretched or
//     squeezed by the request's priority). A request that would push its
//     tenant past that share is rejected immediately with a typed reason
//     (kResourceExhausted) instead of crowding out other tenants; the
//     global capacity bound keeps plain backpressure semantics.
//   * deficit-round-robin dispatch — tenants with queued work are served
//     in a round-robin ring; each visit grants quantum * weight deficit
//     and a tenant dispatches while its deficit covers the head request's
//     cost. A flooding tenant therefore drains at its weighted rate while
//     light tenants' requests overtake the flood's tail (each such
//     overtake is counted as starvation_avoided).
//   * deadline shedding — a request may carry a deadline; once it
//     expires, the dispatcher drops it at pop time (cancel callback, no
//     worker time spent) rather than wasting a full diagnosis on an
//     answer nobody is waiting for.
//
// FairQueue itself is NOT thread-safe: it is the queueing discipline
// owned by ThreadPool, which already serializes access under its queue
// mutex. With fairness disabled the queue degrades to the original
// single FIFO (the baseline bench_fairness measures against); deadline
// shedding stays active in both modes.
#ifndef DIADS_ENGINE_FAIR_QUEUE_H_
#define DIADS_ENGINE_FAIR_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace diads::engine {

/// Scheduling priority of one request. Affects the admission headroom a
/// tenant gets (high-priority work may burst past the normal share, low-
/// priority work is squeezed below it); dispatch order within a tenant
/// stays FIFO so coalescing/caching semantics are unaffected.
enum class RequestPriority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* RequestPriorityName(RequestPriority priority);

struct FairnessOptions {
  /// Per-tenant weighted fair queueing + share admission. When false the
  /// queue is the original single FIFO with no per-tenant admission (the
  /// fairness-blind baseline); deadline shedding works either way.
  bool enabled = true;
  /// Deficit granted per round-robin visit, scaled by the tenant weight.
  /// Larger quanta approach per-tenant FIFO bursts; 1.0 (one default-cost
  /// request per visit) gives the finest interleaving.
  double quantum = 1.0;
  /// Weight for tenants absent from `tenant_weights`.
  double default_weight = 1.0;
  /// Per-tenant dispatch/admission weights (tenant tag -> weight).
  std::unordered_map<std::string, double> tenant_weights;
  /// Fraction of the queue's cost capacity one tenant may occupy at
  /// normal priority and default weight. The per-tenant cap is
  ///   max(1, capacity * tenant_share_fraction * weight / default_weight)
  ///     * priority headroom,
  /// so even a tiny queue admits at least one request per tenant.
  double tenant_share_fraction = 0.5;
  /// Share multiplier for low-priority requests (< 1 squeezes them out
  /// first under load).
  double low_priority_headroom = 0.5;
  /// Share multiplier for high-priority requests (> 1 lets an urgent
  /// diagnosis burst past the normal share).
  double high_priority_headroom = 2.0;
};

/// One queued unit of work. Exactly one of run / cancel is eventually
/// invoked: run when a worker dispatches it, cancel (with the typed
/// reason) when it is shed past its deadline or failed by shutdown.
struct QueueTask {
  std::function<void()> run;
  std::function<void(const Status&)> cancel;  ///< May be null (no-op).
  std::string tenant;  ///< "" = untagged: shared sub-queue, no share cap.
  double cost = 1.0;   ///< Admission + deficit units; must be > 0.
  RequestPriority priority = RequestPriority::kNormal;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
};

/// Why admission refused a task (kAdmitted otherwise).
enum class AdmissionResult {
  kAdmitted,
  kRejectedTenantShare,
};

/// Aggregate fair-queue counters (monotone since construction).
struct FairQueueCounters {
  uint64_t admitted = 0;            ///< Tasks accepted into a sub-queue.
  uint64_t rejected_share = 0;      ///< Admission refusals (tenant share).
  uint64_t shed_deadline = 0;       ///< Dropped expired at dispatch.
  uint64_t cancelled_shutdown = 0;  ///< Queued tasks failed by Shutdown.
  uint64_t starvation_avoided = 0;  ///< Dispatches that overtook an
                                    ///< earlier-arrived task of another
                                    ///< tenant (fairness reorderings).
  uint64_t dispatched = 0;          ///< Tasks handed to workers.
};

/// Per-tenant admission/dispatch accounting, for operator tables.
struct TenantAdmissionRow {
  std::string tenant;
  double weight = 1.0;
  uint64_t submitted = 0;       ///< Admission attempts.
  uint64_t admitted = 0;
  uint64_t rejected_share = 0;
  uint64_t shed_deadline = 0;
  uint64_t dispatched = 0;
  double queued_cost = 0;       ///< Cost currently enqueued.
};

class FairQueue {
 public:
  FairQueue(FairnessOptions options, double cost_capacity);

  /// Would `task` be admitted right now? Pure check, no state change
  /// (the submitted/rejected counters are bumped by RecordAdmission so a
  /// blocked producer re-checking in a wait loop counts once).
  AdmissionResult Admit(const QueueTask& task) const;

  /// Counts one admission attempt with its outcome.
  void RecordAdmission(const QueueTask& task, AdmissionResult result);

  /// Enqueues an admitted task.
  void Push(QueueTask task);

  /// DRR dispatch: pops the next runnable task into `*out`. Expired
  /// tasks encountered at sub-queue heads are moved into `*shed` (counted
  /// as shed_deadline; invoke their cancel callbacks outside the queue
  /// lock). Returns false when nothing is left to run.
  bool Pop(QueueTask* out, std::chrono::steady_clock::time_point now,
           std::vector<QueueTask>* shed);

  /// Removes every queued task (shutdown path; counted as
  /// cancelled_shutdown). Invoke the cancel callbacks outside the lock.
  std::vector<QueueTask> DrainAll();

  size_t size() const { return size_; }
  double total_cost() const { return total_cost_; }
  bool empty() const { return size_ == 0; }

  FairQueueCounters counters() const { return counters_; }

  /// Snapshot of per-tenant accounting, sorted by tenant tag. Tenants
  /// are remembered once seen (a rejected-only tenant still shows up).
  std::vector<TenantAdmissionRow> TenantRows() const;

  double WeightOf(const std::string& tenant) const;
  /// The admission cap for one task's (tenant, priority), in cost units.
  double ShareCapFor(const QueueTask& task) const;

 private:
  struct Item {
    QueueTask task;
    uint64_t arrival = 0;  ///< Global arrival sequence (starvation stat).
  };
  struct Tenant {
    std::deque<Item> items;
    double deficit = 0;
    double queued_cost = 0;
    bool in_ring = false;
    // Accounting (monotone).
    uint64_t submitted = 0, admitted = 0, rejected_share = 0;
    uint64_t shed_deadline = 0, dispatched = 0;
  };

  Tenant& TenantState(const std::string& tenant);
  /// Drops expired items from the head of `tenant`'s queue into `*shed`.
  void ShedExpiredHead(Tenant* tenant,
                       std::chrono::steady_clock::time_point now,
                       std::vector<QueueTask>* shed);
  /// Smallest arrival sequence across all queued items (starvation stat).
  uint64_t MinQueuedArrival() const;
  void Dispatched(const std::string& tenant_tag, Tenant* tenant,
                  Item item, QueueTask* out);

  FairnessOptions options_;
  double cost_capacity_;
  std::unordered_map<std::string, Tenant> tenants_;
  /// Round-robin ring of tenants with queued work (keys into tenants_;
  /// stable because unordered_map never invalidates references).
  std::list<std::string> ring_;
  /// Whether the current ring front has already received this visit's
  /// quantum grant (cleared whenever the front rotates or empties).
  bool front_granted_ = false;
  uint64_t next_arrival_ = 0;
  size_t size_ = 0;
  double total_cost_ = 0;
  FairQueueCounters counters_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_FAIR_QUEUE_H_
