#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace diads::engine {
namespace {

void CancelAll(std::vector<QueueTask>& tasks, const Status& status) {
  for (QueueTask& task : tasks) {
    if (task.cancel) task.cancel(status);
  }
  tasks.clear();
}

}  // namespace

ThreadPool::ThreadPool(Options options)
    : capacity_(std::max<size_t>(1, options.queue_capacity)),
      queue_(options.fairness,
             static_cast<double>(std::max<size_t>(1, options.queue_capacity))) {
  const int workers = std::max(1, options.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(QueueTask task) {
  if (task.run == nullptr) {
    return Status::InvalidArgument("ThreadPool::Submit: null task");
  }
  if (task.cost <= 0) {
    return Status::InvalidArgument("ThreadPool::Submit: cost must be > 0");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    return Status::Shutdown("ThreadPool is shut down");
  }
  // Share admission is checked before blocking: a tenant over its share
  // gets an immediate typed refusal instead of consuming a backpressure
  // slot that fair tenants are waiting for.
  if (queue_.Admit(task) == AdmissionResult::kRejectedTenantShare) {
    queue_.RecordAdmission(task, AdmissionResult::kRejectedTenantShare);
    return Status::ResourceExhausted(
        "tenant '" + task.tenant + "' queue share is full (" +
        RequestPriorityName(task.priority) + " priority)");
  }
  not_full_.wait(lock, [this] { return queue_.size() < capacity_ || !accepting_; });
  if (!accepting_) {
    return Status::Shutdown("ThreadPool is shut down");
  }
  // Same-tenant producers may have refilled the share while we were
  // blocked on global capacity; the share bound must hold at enqueue time.
  if (queue_.Admit(task) == AdmissionResult::kRejectedTenantShare) {
    queue_.RecordAdmission(task, AdmissionResult::kRejectedTenantShare);
    return Status::ResourceExhausted(
        "tenant '" + task.tenant + "' queue share is full (" +
        RequestPriorityName(task.priority) + " priority)");
  }
  queue_.RecordAdmission(task, AdmissionResult::kAdmitted);
  queue_.Push(std::move(task));
  not_empty_.notify_one();
  return Status::Ok();
}

Status ThreadPool::Submit(std::function<void()> task) {
  if (task == nullptr) {
    return Status::InvalidArgument("ThreadPool::Submit: null task");
  }
  QueueTask spec;
  spec.run = std::move(task);
  return Submit(std::move(spec));
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::Shutdown() {
  std::vector<QueueTask> cancelled;
  {
    std::unique_lock<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
    cancelled = queue_.DrainAll();
    // Wake producers blocked on a full queue so they can fail fast, and
    // idle workers so they observe stopping_.
    not_full_.notify_all();
    not_empty_.notify_all();
    if (queue_.empty() && running_ == 0) all_done_.notify_all();
  }
  // Queued-but-not-running work is failed explicitly, outside the lock
  // (cancel callbacks resolve engine futures and may take other locks).
  CancelAll(cancelled, Status::Shutdown("engine shutting down"));
  // Every Shutdown caller returns only once the workers are joined: a
  // late caller blocks on join_mu_ until the first caller's join is done,
  // so it can safely destroy the pool afterwards.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

double ThreadPool::QueuedCost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.total_cost();
}

FairQueueCounters ThreadPool::QueueCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.counters();
}

std::vector<TenantAdmissionRow> ThreadPool::TenantRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.TenantRows();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueueTask task;
    std::vector<QueueTask> shed;
    bool got = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      got = queue_.Pop(&task, std::chrono::steady_clock::now(), &shed);
      if (got) ++running_;
      if (got || !shed.empty()) not_full_.notify_all();
      if (!got) {
        // Pop shed every remaining item: the queue may have just become
        // empty without any dispatch.
        if (queue_.empty() && running_ == 0) all_done_.notify_all();
        if (queue_.empty() && stopping_) {
          lock.unlock();
          CancelAll(shed, Status::DeadlineExceeded(
                              "deadline expired before diagnosis started"));
          return;
        }
      }
    }
    CancelAll(shed, Status::DeadlineExceeded(
                        "deadline expired before diagnosis started"));
    if (!got) continue;
    task.run();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace diads::engine
