#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace diads::engine {

ThreadPool::ThreadPool(Options options)
    : capacity_(std::max<size_t>(1, options.queue_capacity)) {
  const int workers = std::max(1, options.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  if (task == nullptr) {
    return Status::InvalidArgument("ThreadPool::Submit: null task");
  }
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return queue_.size() < capacity_ || !accepting_; });
  if (!accepting_) {
    return Status::FailedPrecondition("ThreadPool is shut down");
  }
  queue_.push_back(std::move(task));
  not_empty_.notify_one();
  return Status::Ok();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    accepting_ = false;
    stopping_ = true;
    // Wake producers blocked on a full queue so they can fail fast, and
    // idle workers so they observe stopping_.
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  // Every Shutdown caller returns only once the workers are joined: a
  // late caller blocks on join_mu_ until the first caller's join is done,
  // so it can safely destroy the pool afterwards.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      not_full_.notify_one();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace diads::engine
