// Sharded LRU cache of finished diagnosis reports.
//
// A fleet-scale diagnosis service sees the same question many times: every
// dashboard refresh, every administrator of the same tenant, every retry
// re-asks "why did query Q slow down over window W?". The answer is a pure
// function of (query, time window, workflow configuration), so the engine
// memoizes it: repeated diagnoses are served without re-running the module
// chain (PD -> CO -> DA -> CR -> SD -> IA).
//
// Reports are immutable once published (shared_ptr<const DiagnosisReport>),
// so a cached report can be handed to any number of concurrent readers.
// The cache is sharded by key hash: each shard has its own mutex and LRU
// list, so worker threads completing different diagnoses rarely contend.
#ifndef DIADS_ENGINE_CACHE_H_
#define DIADS_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "diads/diagnosis.h"

namespace diads::engine {

/// What one diagnosis's async metric collection did — the stale-data
/// annotation a dashboard must show next to a root cause diagnosed on
/// degraded data. Defined here (not engine.h) so cached entries can carry
/// the summary recorded when they were computed: a cache hit for a
/// degraded diagnosis must still say so.
struct CollectionSummary {
  bool used_async = false;  ///< False on the legacy blocking-stall path.
  /// Components whose fetches timed out (or were cancelled) and were
  /// served from locally cached series instead. Sorted.
  std::vector<ComponentId> stale_components;
  uint64_t fetches = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  double gather_ms = 0;  ///< Wall clock of the scatter/gather.

  bool degraded() const { return !stale_components.empty(); }
};

/// Identity of a diagnosis: the query, the diagnosis window, a tenant tag
/// (two tenants' "Q2" are different queries), and a fingerprint of the
/// workflow configuration (different thresholds give different reports).
struct CacheKey {
  std::string query;
  SimTimeMs window_begin = 0;
  SimTimeMs window_end = 0;
  std::string tag;
  uint64_t config_fingerprint = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.window_begin == b.window_begin && a.window_end == b.window_end &&
           a.config_fingerprint == b.config_fingerprint &&
           a.query == b.query && a.tag == b.tag;
  }
  std::string ToString() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

class ResultCache {
 public:
  struct Options {
    size_t capacity = 1024;  ///< Total entries across shards.
    int shards = 8;
  };

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit ResultCache(Options options);

  /// Returns the cached report (refreshing its recency) or nullptr. When
  /// `collection` is non-null it receives the entry's collection summary
  /// (possibly null for entries computed without async collection).
  std::shared_ptr<const diag::DiagnosisReport> Get(
      const CacheKey& key,
      std::shared_ptr<const CollectionSummary>* collection = nullptr);

  /// Inserts or replaces; evicts the shard's least-recently-used entry when
  /// the shard is at capacity.
  void Put(const CacheKey& key,
           std::shared_ptr<const diag::DiagnosisReport> report,
           std::shared_ptr<const CollectionSummary> collection = nullptr);

  /// Aggregated counters across shards.
  Counters TotalCounters() const;

  void Clear();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  size_t capacity_per_shard() const { return shard_capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const diag::DiagnosisReport> report;
    std::shared_ptr<const CollectionSummary> collection;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& ShardFor(const CacheKey& key);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_CACHE_H_
