// Sharded LRU cache of finished diagnosis reports.
//
// A fleet-scale diagnosis service sees the same question many times: every
// dashboard refresh, every administrator of the same tenant, every retry
// re-asks "why did query Q slow down over window W?". The answer is a pure
// function of (query, time window, workflow configuration), so the engine
// memoizes it: repeated diagnoses are served without re-running the module
// chain (PD -> CO -> DA -> CR -> SD -> IA).
//
// Reports are immutable once published (shared_ptr<const DiagnosisReport>),
// so a cached report can be handed to any number of concurrent readers.
// The cache is sharded by key hash: each shard has its own mutex and LRU
// list, so worker threads completing different diagnoses rarely contend.
#ifndef DIADS_ENGINE_CACHE_H_
#define DIADS_ENGINE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "diads/diagnosis.h"

namespace diads::engine {

/// What one diagnosis's async metric collection did — the stale-data
/// annotation a dashboard must show next to a root cause diagnosed on
/// degraded data. Defined here (not engine.h) so cached entries can carry
/// the summary recorded when they were computed: a cache hit for a
/// degraded diagnosis must still say so.
struct CollectionSummary {
  bool used_async = false;  ///< False on the legacy blocking-stall path.
  /// Components whose fetches timed out (or were cancelled) and were
  /// served from locally cached series instead. Sorted.
  std::vector<ComponentId> stale_components;
  uint64_t fetches = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  double gather_ms = 0;  ///< Wall clock of the scatter/gather.

  bool degraded() const { return !stale_components.empty(); }
};

/// Identity of a diagnosis: the query, the diagnosis window, a tenant tag
/// (two tenants' "Q2" are different queries), and a fingerprint of the
/// workflow configuration (different thresholds give different reports).
struct CacheKey {
  std::string query;
  SimTimeMs window_begin = 0;
  SimTimeMs window_end = 0;
  std::string tag;
  uint64_t config_fingerprint = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.window_begin == b.window_begin && a.window_end == b.window_end &&
           a.config_fingerprint == b.config_fingerprint &&
           a.query == b.query && a.tag == b.tag;
  }
  std::string ToString() const;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

class ResultCache {
 public:
  struct Options {
    size_t capacity = 1024;  ///< Total entries across shards.
    int shards = 8;
  };

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Entries dropped because they went stale (generation mismatch on
    /// Get) or were explicitly invalidated (InvalidateTag /
    /// InvalidateTagComponent). Generation drops also count as misses.
    uint64_t invalidations = 0;
    size_t entries = 0;
  };

  explicit ResultCache(Options options);

  /// Returns the cached report (refreshing its recency) or nullptr. When
  /// `collection` is non-null it receives the entry's collection summary
  /// (possibly null for entries computed without async collection).
  ///
  /// When `validate_generation` is set, a hit additionally requires the
  /// entry's recorded (authority, store_generation) stamp to equal the
  /// caller's — the entry was computed from exactly the data the caller
  /// sees now. A mismatch erases the entry (Append-driven invalidation)
  /// and misses: a query after new monitoring data arrives is never
  /// served the stale report.
  std::shared_ptr<const diag::DiagnosisReport> Get(
      const CacheKey& key,
      std::shared_ptr<const CollectionSummary>* collection = nullptr,
      bool validate_generation = false, const void* authority = nullptr,
      uint64_t store_generation = 0);

  /// Inserts or replaces; evicts the shard's least-recently-used entry when
  /// the shard is at capacity. `authority` / `store_generation` stamp the
  /// monitoring data the report was computed from (see Get); `components`
  /// lists the components the report touched (scored metrics + cause
  /// subjects), the index InvalidateTagComponent matches against.
  void Put(const CacheKey& key,
           std::shared_ptr<const diag::DiagnosisReport> report,
           std::shared_ptr<const CollectionSummary> collection = nullptr,
           const void* authority = nullptr, uint64_t store_generation = 0,
           std::vector<ComponentId> components = {});

  /// Explicit invalidation: drops every entry of a tenant tag, or only
  /// the tag's entries whose report touched `component`. Returns the
  /// number of entries erased.
  size_t InvalidateTag(const std::string& tag);
  size_t InvalidateTagComponent(const std::string& tag,
                                ComponentId component);

  /// Aggregated counters across shards.
  Counters TotalCounters() const;

  void Clear();

  int shard_count() const { return static_cast<int>(shards_.size()); }
  size_t capacity_per_shard() const { return shard_capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const diag::DiagnosisReport> report;
    std::shared_ptr<const CollectionSummary> collection;
    /// The monitoring-data identity the report was computed from: the
    /// authoritative TimeSeriesStore (pointer as pure identity, never
    /// dereferenced) and its store-wide append generation at compute
    /// time. Null authority = unstamped (legacy Put); such entries always
    /// fail validation when the caller requests it.
    const void* authority = nullptr;
    uint64_t store_generation = 0;
    std::vector<ComponentId> components;  ///< Sorted, deduped.
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
  };

  Shard& ShardFor(const CacheKey& key);
  template <typename Pred>
  size_t EraseIf(Pred pred);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace diads::engine

#endif  // DIADS_ENGINE_CACHE_H_
