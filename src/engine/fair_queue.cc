#include "engine/fair_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace diads::engine {

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kLow:
      return "low";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kHigh:
      return "high";
  }
  return "unknown";
}

FairQueue::FairQueue(FairnessOptions options, double cost_capacity)
    : options_(std::move(options)), cost_capacity_(cost_capacity) {
  if (options_.quantum <= 0) options_.quantum = 1.0;
  if (options_.default_weight <= 0) options_.default_weight = 1.0;
  if (options_.tenant_share_fraction <= 0) options_.tenant_share_fraction = 1.0;
  if (cost_capacity_ <= 0) cost_capacity_ = 1.0;
}

double FairQueue::WeightOf(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  if (it != options_.tenant_weights.end() && it->second > 0) return it->second;
  return options_.default_weight;
}

double FairQueue::ShareCapFor(const QueueTask& task) const {
  double cap = cost_capacity_ * options_.tenant_share_fraction *
               WeightOf(task.tenant) / options_.default_weight;
  // Even a tiny queue must admit one request per tenant, or small-capacity
  // configurations (unit tests, constrained deployments) deadlock tenants
  // out entirely.
  cap = std::max(cap, std::max(task.cost, 1.0));
  switch (task.priority) {
    case RequestPriority::kLow:
      return cap * options_.low_priority_headroom;
    case RequestPriority::kNormal:
      return cap;
    case RequestPriority::kHigh:
      return cap * options_.high_priority_headroom;
  }
  return cap;
}

AdmissionResult FairQueue::Admit(const QueueTask& task) const {
  // Untagged work shares the "" sub-queue and is exempt from share caps:
  // it has no tenant to be fair *to*, and internal/legacy callers must
  // keep plain bounded-queue semantics.
  if (!options_.enabled || task.tenant.empty()) {
    return AdmissionResult::kAdmitted;
  }
  auto it = tenants_.find(task.tenant);
  double queued = (it == tenants_.end()) ? 0.0 : it->second.queued_cost;
  if (queued + task.cost > ShareCapFor(task)) {
    return AdmissionResult::kRejectedTenantShare;
  }
  return AdmissionResult::kAdmitted;
}

void FairQueue::RecordAdmission(const QueueTask& task, AdmissionResult result) {
  Tenant& tenant = TenantState(task.tenant);
  ++tenant.submitted;
  if (result == AdmissionResult::kAdmitted) {
    ++tenant.admitted;
    ++counters_.admitted;
  } else {
    ++tenant.rejected_share;
    ++counters_.rejected_share;
  }
}

void FairQueue::Push(QueueTask task) {
  const std::string key = options_.enabled ? task.tenant : std::string();
  Tenant& tenant = TenantState(key);
  double cost = std::max(task.cost, 0.0);
  tenant.queued_cost += cost;
  total_cost_ += cost;
  ++size_;
  tenant.items.push_back(Item{std::move(task), next_arrival_++});
  if (!tenant.in_ring) {
    tenant.in_ring = true;
    tenant.deficit = 0;
    ring_.push_back(key);
  }
}

void FairQueue::ShedExpiredHead(Tenant* tenant,
                                std::chrono::steady_clock::time_point now,
                                std::vector<QueueTask>* shed) {
  while (!tenant->items.empty()) {
    Item& head = tenant->items.front();
    if (!head.task.has_deadline || head.task.deadline > now) break;
    double cost = std::max(head.task.cost, 0.0);
    tenant->queued_cost -= cost;
    total_cost_ -= cost;
    --size_;
    ++tenant->shed_deadline;
    ++counters_.shed_deadline;
    if (shed != nullptr) shed->push_back(std::move(head.task));
    tenant->items.pop_front();
  }
}

uint64_t FairQueue::MinQueuedArrival() const {
  uint64_t min_arrival = std::numeric_limits<uint64_t>::max();
  for (const auto& [tag, tenant] : tenants_) {
    if (!tenant.items.empty()) {
      min_arrival = std::min(min_arrival, tenant.items.front().arrival);
    }
  }
  return min_arrival;
}

void FairQueue::Dispatched(const std::string& tenant_tag, Tenant* tenant,
                           Item item, QueueTask* out) {
  (void)tenant_tag;
  double cost = std::max(item.task.cost, 0.0);
  tenant->queued_cost -= cost;
  total_cost_ -= cost;
  --size_;
  ++tenant->dispatched;
  ++counters_.dispatched;
  *out = std::move(item.task);
}

bool FairQueue::Pop(QueueTask* out, std::chrono::steady_clock::time_point now,
                    std::vector<QueueTask>* shed) {
  // Classic DRR, one dispatch per call: the front tenant is granted
  // quantum * weight ONCE per visit (front_granted_) and keeps the front
  // while its deficit covers its head cost — so a weight-3 tenant drains
  // three unit-cost requests per turn to a weight-1 tenant's one — then
  // rotates to the back with any remainder banked. Terminates: every
  // iteration either sheds an item, removes an emptied tenant from the
  // ring, or rotates after growing a tenant's deficit by quantum * weight
  // (> 0), so some deficit eventually covers its head cost and dispatches.
  while (!ring_.empty()) {
    const std::string key = ring_.front();
    Tenant& tenant = tenants_[key];
    ShedExpiredHead(&tenant, now, shed);
    if (tenant.items.empty()) {
      ring_.pop_front();
      front_granted_ = false;
      tenant.in_ring = false;
      tenant.deficit = 0;
      continue;
    }
    if (!front_granted_) {
      tenant.deficit += options_.quantum * WeightOf(key);
      front_granted_ = true;
    }
    Item& head = tenant.items.front();
    double cost = std::max(head.task.cost, 0.0);
    if (tenant.deficit + 1e-9 < cost) {
      // This visit's grant is spent; rotate to the back with the deficit
      // banked for the next visit.
      ring_.pop_front();
      ring_.push_back(key);
      front_granted_ = false;
      continue;
    }
    tenant.deficit -= cost;
    // A dispatch that overtakes an older queued request of another tenant
    // is exactly the reordering FIFO would never do — count it.
    uint64_t dispatched_arrival = head.arrival;
    Item item = std::move(head);
    tenant.items.pop_front();
    if (tenant.items.empty()) {
      ring_.pop_front();
      front_granted_ = false;
      tenant.in_ring = false;
      tenant.deficit = 0;
    }
    Dispatched(key, &tenant, std::move(item), out);
    if (size_ > 0 && dispatched_arrival > MinQueuedArrival()) {
      ++counters_.starvation_avoided;
    }
    return true;
  }
  return false;
}

std::vector<QueueTask> FairQueue::DrainAll() {
  std::vector<QueueTask> drained;
  drained.reserve(size_);
  for (auto& [tag, tenant] : tenants_) {
    while (!tenant.items.empty()) {
      drained.push_back(std::move(tenant.items.front().task));
      tenant.items.pop_front();
      ++counters_.cancelled_shutdown;
    }
    tenant.queued_cost = 0;
    tenant.deficit = 0;
    tenant.in_ring = false;
  }
  ring_.clear();
  front_granted_ = false;
  size_ = 0;
  total_cost_ = 0;
  return drained;
}

FairQueue::Tenant& FairQueue::TenantState(const std::string& tenant) {
  return tenants_[tenant];
}

std::vector<TenantAdmissionRow> FairQueue::TenantRows() const {
  std::vector<TenantAdmissionRow> rows;
  rows.reserve(tenants_.size());
  for (const auto& [tag, tenant] : tenants_) {
    TenantAdmissionRow row;
    row.tenant = tag;
    row.weight = WeightOf(tag);
    row.submitted = tenant.submitted;
    row.admitted = tenant.admitted;
    row.rejected_share = tenant.rejected_share;
    row.shed_deadline = tenant.shed_deadline;
    row.dispatched = tenant.dispatched;
    row.queued_cost = tenant.queued_cost;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TenantAdmissionRow& a, const TenantAdmissionRow& b) {
              return a.tenant < b.tenant;
            });
  return rows;
}

}  // namespace diads::engine
