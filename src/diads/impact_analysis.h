// Module IA — Impact Analysis (Section 4.1).
//
// "For each high-confidence root cause R identified by Module SD, an impact
// score is calculated as the percentage of the query slowdown (time) that
// can be contributed to R individually." Impact scores separate coexisting
// problems and are the safeguard against spurious-correlation misdiagnoses:
// scenario 5's noise-fabricated volume contention survives Module SD with
// some confidence but gets an impact near zero here.
//
// Two implementations, as in the paper:
//
//   * Inverse dependency analysis (default): comp(R) -> the operators
//     op(R) whose performance R affects -> impact = extra self-time of
//     op(R) across unsatisfactory runs as a share of the extra plan time.
//     Self-time (I/O wait + CPU + lock wait) is used rather than the
//     operator span so that pipeline peers of a slowed scan do not get the
//     scan's slowdown double-counted.
//
//   * Cost-model based: uses the optimizer's per-operator cost estimates to
//     apportion the observed slowdown — a static predictor that needs no
//     healthy history, at the price of trusting the cost model.
#ifndef DIADS_DIADS_IMPACT_ANALYSIS_H_
#define DIADS_DIADS_IMPACT_ANALYSIS_H_

#include "diads/diagnosis.h"

namespace diads::diag {

enum class ImpactMethod { kInverseDependency, kCostModel };

/// Fills `impact_pct` on every cause whose band is high or medium (the
/// paper computes impact for high-confidence causes; medium is included so
/// the report can show why medium causes are dismissed).
Status RunImpactAnalysis(const DiagnosisContext& ctx,
                         const WorkflowConfig& config, const CoResult& co,
                         const CrResult& cr, std::vector<RootCause>* causes,
                         ImpactMethod method = ImpactMethod::kInverseDependency);

/// The operators op(R) a root cause affects (exposed for tests/benches).
std::vector<int> OperatorsAffectedBy(const DiagnosisContext& ctx,
                                     const RootCause& cause,
                                     const CoResult& co, const CrResult& cr);

/// Console panel.
std::string RenderIaResult(const DiagnosisContext& ctx,
                           const std::vector<RootCause>& causes);

}  // namespace diads::diag

#endif  // DIADS_DIADS_IMPACT_ANALYSIS_H_
