#include "diads/correlated_records.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/model_cache.h"

namespace diads::diag {

Result<CrResult> RunCorrelatedRecords(const DiagnosisContext& ctx,
                                      const WorkflowConfig& config,
                                      const CoResult& co) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.size() < 2 || bad.empty()) {
    return Status::FailedPrecondition(
        "Module CR needs labelled runs on both sides");
  }

  const TimeInterval window = ctx.AnalysisWindow();
  const uint64_t config_fp =
      AnomalyConfigFingerprint(config.record_deviation);
  const uint64_t plan_fp = ctx.apg->plan().Fingerprint();
  const uint64_t runs_generation = ctx.runs->size();
  const uint64_t provenance = RunSetFingerprint(good);

  CrResult out;
  for (int op_index : co.correlated_operator_set) {
    BaselineModelKey key;
    key.source = ctx.runs;
    key.series = SeriesIdOfOperator(/*kind=*/2, plan_fp, op_index);
    key.window_begin = window.begin;
    key.window_end = window.end;
    key.config_fingerprint = config_fp;
    key.provenance_fingerprint = provenance;
    Result<CachedBaseline> base = GetOrFitBaseline(
        ctx.model_cache, key, runs_generation,
        config.record_deviation.bandwidth_rule, [&good, op_index] {
          ExtractedBaseline e;
          e.values = OperatorRecordCounts(good, op_index);
          return e;
        },
        ctx.model_lookups);
    DIADS_RETURN_IF_ERROR(base.status());
    const std::vector<double> observed = OperatorRecordCounts(bad, op_index);
    if (base->model == nullptr || observed.empty()) continue;
    Result<stats::AnomalyScore> score = stats::ScoreDeviationWithModel(
        *base->model, observed, config.record_deviation);
    DIADS_RETURN_IF_ERROR(score.status());
    RecordCountAnomaly a;
    a.op_index = op_index;
    a.op_number = ctx.apg->plan().op(op_index).op_number;
    a.deviation_score = score->score;
    a.significant = score->anomalous;
    if (a.significant) out.correlated_record_set.push_back(op_index);
    out.scores.push_back(a);
  }

  // Data properties changed if any *leaf scan* shows a record-count shift;
  // interior shifts alone could be join-side effects.
  for (int op_index : out.correlated_record_set) {
    if (ctx.apg->plan().op(op_index).is_scan()) {
      out.data_properties_changed = true;
      break;
    }
  }
  return out;
}

std::string RenderCrResult(const DiagnosisContext& ctx, const CrResult& cr) {
  TablePrinter table({"Operator", "Type", "Deviation score", "In CRS"});
  std::vector<RecordCountAnomaly> sorted = cr.scores;
  std::sort(sorted.begin(), sorted.end(),
            [](const RecordCountAnomaly& a, const RecordCountAnomaly& b) {
              return a.deviation_score > b.deviation_score;
            });
  for (const RecordCountAnomaly& a : sorted) {
    const db::PlanOp& op = ctx.apg->plan().op(a.op_index);
    std::string type = db::OpTypeName(op.type);
    if (op.is_scan()) type += " on " + op.table;
    table.AddRow({StrFormat("O%d", a.op_number), type,
                  FormatDouble(a.deviation_score, 3),
                  a.significant ? "yes" : ""});
  }
  return StrFormat(
             "=== Module CR: record-count analysis (data properties "
             "changed: %s) ===\n",
             cr.data_properties_changed ? "YES" : "no") +
         table.Render();
}

}  // namespace diads::diag
