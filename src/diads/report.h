// Diagnosis report rendering and export.
//
// Two consumers need the workflow's output in different shapes:
//
//   * the administrator reading the result — RenderFullReport produces the
//     complete document: the ticket-style answer first, then every module's
//     panel (the batch-mode equivalent of walking Figure 7's screens);
//
//   * downstream analysis — ExportCausesCsv / ExportOperatorScoresCsv /
//     ExportMetricScoresCsv emit machine-readable tables, which is how the
//     EXPERIMENTS.md numbers were lifted and how a deployment would feed
//     dashboards.
#ifndef DIADS_DIADS_REPORT_H_
#define DIADS_DIADS_REPORT_H_

#include <string>

#include "diads/diagnosis.h"

namespace diads::diag {

/// The complete human-readable report document.
std::string RenderFullReport(const DiagnosisContext& ctx,
                             const DiagnosisReport& report);

/// CSV: cause,subject,confidence,band,impact_pct.
std::string ExportCausesCsv(const DiagnosisContext& ctx,
                            const DiagnosisReport& report);

/// CSV: operator,type,table,anomaly_score,in_cos,record_deviation,in_crs.
std::string ExportOperatorScoresCsv(const DiagnosisContext& ctx,
                                    const DiagnosisReport& report);

/// CSV: component,kind,metric,anomaly_score,correlation,in_ccs.
std::string ExportMetricScoresCsv(const DiagnosisContext& ctx,
                                  const DiagnosisReport& report);

/// Escapes one CSV field (quotes fields containing commas/quotes/newlines).
std::string CsvEscape(const std::string& field);

/// Canonical textual digest of everything decision-relevant in a report:
/// plan fingerprints and change candidates, every operator/metric/record
/// score, the COS/CCS/CRS sets, and the ranked causes with confidence,
/// band, and impact. Two reports digest equal iff the diagnosis is the
/// same, which is how the serving layer proves that a concurrently
/// computed (or cached) report is identical to a serial
/// Workflow::Diagnose run.
std::string ReportDigest(const DiagnosisReport& report);

/// FNV-1a 64-bit hash of ReportDigest(report) — the compact fingerprint the
/// cross-backend conformance goldens record per (scenario, backend)
/// configuration.
uint64_t ReportDigestHash(const DiagnosisReport& report);
/// ReportDigestHash rendered as 16 lowercase hex digits.
std::string ReportDigestHashHex(const DiagnosisReport& report);

}  // namespace diads::diag

#endif  // DIADS_DIADS_REPORT_H_
