#include "diads/dependency_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"
#include "stats/correlation.h"

namespace diads::diag {

Result<DaResult> RunDependencyAnalysis(const DiagnosisContext& ctx,
                                       const WorkflowConfig& config,
                                       const CoResult& co) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.size() < 2 || bad.empty()) {
    return Status::FailedPrecondition(
        "Module DA needs labelled runs on both sides");
  }

  // Gather the candidate components: union of dependency paths (inner and
  // outer) of COS operators, remembering which COS operators depend on each.
  std::map<ComponentId, std::set<int>> component_ops;
  for (int op_index : co.correlated_operator_set) {
    Result<std::vector<ComponentId>> inner = ctx.apg->InnerPath(op_index);
    DIADS_RETURN_IF_ERROR(inner.status());
    for (ComponentId c : *inner) component_ops[c].insert(op_index);
    Result<std::vector<ComponentId>> outer = ctx.apg->OuterPath(op_index);
    DIADS_RETURN_IF_ERROR(outer.status());
    for (ComponentId c : *outer) component_ops[c].insert(op_index);
  }

  DaResult out;
  for (const auto& [component, ops] : component_ops) {
    // Score every metric the store has for this component.
    for (monitor::MetricId metric : ctx.store->MetricsFor(component)) {
      int missing_good = 0;
      int missing_bad = 0;
      const std::vector<double> baseline =
          MetricPerRun(*ctx.store, component, metric, good, &missing_good);
      const std::vector<double> observed =
          MetricPerRun(*ctx.store, component, metric, bad, &missing_bad);
      if (baseline.size() < 2 || observed.empty()) continue;

      Result<stats::AnomalyScore> score =
          stats::ScoreAnomaly(baseline, observed, config.metric_anomaly);
      DIADS_RETURN_IF_ERROR(score.status());

      // Correlation of the metric with the running time of the dependent
      // COS operators across *all* labelled runs (property (ii)).
      double best_corr = 0;
      if (missing_good == 0 && missing_bad == 0) {
        std::vector<const db::QueryRunRecord*> all_runs = good;
        all_runs.insert(all_runs.end(), bad.begin(), bad.end());
        std::vector<double> metric_series =
            MetricPerRun(*ctx.store, component, metric, all_runs, nullptr);
        for (int op_index : ops) {
          const std::vector<double> spans = OperatorSpans(all_runs, op_index);
          if (spans.size() != metric_series.size()) continue;
          const double corr =
              stats::SpearmanCorrelation(metric_series, spans);
          if (std::fabs(corr) > std::fabs(best_corr)) best_corr = corr;
        }
      }

      MetricAnomaly m;
      m.component = component;
      m.metric = metric;
      m.anomaly_score = score->score;
      m.correlation = best_corr;
      m.correlated = score->anomalous &&
                     std::fabs(best_corr) >= config.correlation_threshold;
      out.metrics.push_back(m);
    }
  }

  // CCS: components with at least one correlated metric.
  std::set<ComponentId> ccs;
  for (const MetricAnomaly& m : out.metrics) {
    if (m.correlated) ccs.insert(m.component);
  }
  out.correlated_component_set.assign(ccs.begin(), ccs.end());
  return out;
}

std::string RenderDaResult(const DiagnosisContext& ctx, const DaResult& da) {
  const ComponentRegistry& registry = ctx.topology->registry();
  TablePrinter table(
      {"Component", "Metric", "Anomaly score", "Correlation", "In CCS"});
  std::vector<MetricAnomaly> sorted = da.metrics;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricAnomaly& a, const MetricAnomaly& b) {
              return a.anomaly_score > b.anomaly_score;
            });
  size_t shown = 0;
  for (const MetricAnomaly& m : sorted) {
    if (shown++ >= 24) break;  // Panel stays readable; full data in DaResult.
    table.AddRow({registry.NameOf(m.component),
                  monitor::MetricShortName(m.metric),
                  FormatDouble(m.anomaly_score, 3),
                  FormatDouble(m.correlation, 2), m.correlated ? "yes" : ""});
  }
  std::vector<std::string> ccs_names;
  for (ComponentId c : da.correlated_component_set) {
    ccs_names.push_back(registry.NameOf(c));
  }
  return StrFormat("=== Module DA: dependency analysis (CCS = {%s}) ===\n",
                   Join(ccs_names, ", ").c_str()) +
         table.Render();
}

}  // namespace diads::diag
