#include "diads/dependency_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/model_cache.h"
#include "stats/correlation.h"

namespace diads::diag {

Result<DaResult> RunDependencyAnalysis(const DiagnosisContext& ctx,
                                       const WorkflowConfig& config,
                                       const CoResult& co) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.size() < 2 || bad.empty()) {
    return Status::FailedPrecondition(
        "Module DA needs labelled runs on both sides");
  }

  // Gather the candidate components: union of dependency paths (inner and
  // outer) of COS operators, remembering which COS operators depend on each.
  std::map<ComponentId, std::set<int>> component_ops;
  for (int op_index : co.correlated_operator_set) {
    Result<std::vector<ComponentId>> inner = ctx.apg->InnerPath(op_index);
    DIADS_RETURN_IF_ERROR(inner.status());
    for (ComponentId c : *inner) component_ops[c].insert(op_index);
    Result<std::vector<ComponentId>> outer = ctx.apg->OuterPath(op_index);
    DIADS_RETURN_IF_ERROR(outer.status());
    for (ComponentId c : *outer) component_ops[c].insert(op_index);
  }

  // The model cache keys metric-series baselines on the *authoritative*
  // store: when the engine diagnoses over a per-request collected
  // snapshot, ctx.store is ephemeral but the tenant's live store
  // identifies (and generation-stamps) the series. CoveringSlice
  // guarantees the snapshot's per-run means equal the source store's, so
  // a baseline extracted from either is the same baseline.
  const monitor::TimeSeriesStore* authority = ctx.Authority();
  const TimeInterval window = ctx.AnalysisWindow();
  const uint64_t config_fp = AnomalyConfigFingerprint(config.metric_anomaly);
  const uint64_t provenance = RunSetFingerprint(good);

  // Correlation inputs shared across every (component, metric) pair: the
  // labelled runs in baseline-then-observation order, and each COS
  // operator's per-run spans with their mid-ranks (Spearman is Pearson
  // over mid-ranks, so ranking each side once replaces a re-rank per
  // (metric, operator) pair).
  std::vector<const db::QueryRunRecord*> all_runs = good;
  all_runs.insert(all_runs.end(), bad.begin(), bad.end());
  struct OpSpanRanks {
    size_t count = 0;             ///< Runs the operator appeared in.
    std::vector<double> ranks;    ///< MidRanks of the spans.
  };
  std::map<int, OpSpanRanks> op_ranks;
  for (const auto& [component, ops] : component_ops) {
    (void)component;
    for (int op_index : ops) {
      if (op_ranks.count(op_index) != 0) continue;
      const std::vector<double> spans = OperatorSpans(all_runs, op_index);
      OpSpanRanks entry;
      entry.count = spans.size();
      entry.ranks = stats::MidRanks(spans);
      op_ranks.emplace(op_index, std::move(entry));
    }
  }

  DaResult out;
  for (const auto& [component_key, ops] : component_ops) {
    const ComponentId component = component_key;
    // Score every metric the store has for this component.
    for (monitor::MetricId metric : ctx.store->MetricsFor(component)) {
      BaselineModelKey key;
      key.source = authority;
      key.series = SeriesIdOfMetric(component, metric);
      key.window_begin = window.begin;
      key.window_end = window.end;
      key.config_fingerprint = config_fp;
      key.provenance_fingerprint = provenance;
      Result<CachedBaseline> base = GetOrFitBaseline(
          ctx.model_cache, key, authority->Generation(component, metric),
          config.metric_anomaly.bandwidth_rule, [&ctx, &good, component,
                                                 metric] {
            ExtractedBaseline e;
            e.values = MetricPerRun(*ctx.store, component, metric, good,
                                    &e.missing);
            return e;
          },
          ctx.model_lookups);
      DIADS_RETURN_IF_ERROR(base.status());
      const std::vector<double>& baseline = *base->values;
      const int missing_good = base->missing;
      int missing_bad = 0;
      const std::vector<double> observed =
          MetricPerRun(*ctx.store, component, metric, bad, &missing_bad);
      if (base->model == nullptr || observed.empty()) continue;

      Result<stats::AnomalyScore> score = stats::ScoreWithModel(
          *base->model, observed, config.metric_anomaly);
      DIADS_RETURN_IF_ERROR(score.status());

      // Correlation of the metric with the running time of the dependent
      // COS operators across *all* labelled runs (property (ii)). With no
      // per-run extraction gaps the metric's all-run series is exactly
      // baseline-then-observations (all_runs is good-then-bad and
      // MetricPerRun is per-run), so the concatenation replaces a second
      // extraction pass.
      double best_corr = 0;
      if (missing_good == 0 && missing_bad == 0) {
        std::vector<double> metric_series = baseline;
        metric_series.insert(metric_series.end(), observed.begin(),
                             observed.end());
        const std::vector<double> metric_ranks =
            stats::MidRanks(metric_series);
        for (int op_index : ops) {
          const OpSpanRanks& spans = op_ranks.at(op_index);
          if (spans.count != metric_series.size()) continue;
          const double corr =
              stats::PearsonCorrelation(metric_ranks, spans.ranks);
          if (std::fabs(corr) > std::fabs(best_corr)) best_corr = corr;
        }
      }

      MetricAnomaly m;
      m.component = component;
      m.metric = metric;
      m.anomaly_score = score->score;
      m.correlation = best_corr;
      m.correlated = score->anomalous &&
                     std::fabs(best_corr) >= config.correlation_threshold;
      out.metrics.push_back(m);
    }
  }

  // CCS: components with at least one correlated metric.
  std::set<ComponentId> ccs;
  for (const MetricAnomaly& m : out.metrics) {
    if (m.correlated) ccs.insert(m.component);
  }
  out.correlated_component_set.assign(ccs.begin(), ccs.end());
  return out;
}

std::string RenderDaResult(const DiagnosisContext& ctx, const DaResult& da) {
  const ComponentRegistry& registry = ctx.topology->registry();
  TablePrinter table(
      {"Component", "Metric", "Anomaly score", "Correlation", "In CCS"});
  std::vector<MetricAnomaly> sorted = da.metrics;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricAnomaly& a, const MetricAnomaly& b) {
              return a.anomaly_score > b.anomaly_score;
            });
  size_t shown = 0;
  for (const MetricAnomaly& m : sorted) {
    if (shown++ >= 24) break;  // Panel stays readable; full data in DaResult.
    table.AddRow({registry.NameOf(m.component),
                  monitor::MetricShortName(m.metric),
                  FormatDouble(m.anomaly_score, 3),
                  FormatDouble(m.correlation, 2), m.correlated ? "yes" : ""});
  }
  std::vector<std::string> ccs_names;
  for (ComponentId c : da.correlated_component_set) {
    ccs_names.push_back(registry.NameOf(c));
  }
  return StrFormat("=== Module DA: dependency analysis (CCS = {%s}) ===\n",
                   Join(ccs_names, ", ").c_str()) +
         table.Render();
}

}  // namespace diads::diag
