// Symptom expression language.
//
// Section 4.1: symptoms are "represented in a high-level language used to
// express complex symptoms over a base set of symptoms", including temporal
// properties ("contention occurred before failure"). This file implements
// that language: a small expression grammar over named symptom predicates,
// with boolean connectives and a `before(...)` temporal combinator, plus a
// `$V` volume variable so one root-cause entry can be instantiated per
// candidate volume.
//
//   expr    := or
//   or      := and ('or' and)*
//   and     := unary ('and' unary)*
//   unary   := 'not' unary | primary
//   primary := call | '(' expr ')'
//   call    := IDENT '(' [arg (',' arg)*] ')'
//   arg     := IDENT '=' value | call        (calls as args feed before())
//   value   := IDENT | NUMBER | '$V'
//
// Base predicates (evaluated against the module results):
//   op_anomaly_any(volume=$V)       some COS leaf reads the volume
//   op_anomaly_majority(volume=$V)  more than half the volume's leaves in COS
//   op_anomaly_exists()             COS is non-empty
//   volume_metric_anomaly(volume=$V)  a storage metric of the volume scored
//                                     anomalous in Module DA
//   metric_anomaly(component=<name>, metric=<short-name>)
//   component_correlated(component=$V)   component is in the CCS
//   record_count_change()            Module CR flagged data-property change
//   record_count_change(volume=$V)   a CRS leaf reads the volume
//   no_record_count_change()
//   event(type=<EventType>)          event in the analysis window
//   event_near(type=<T>, volume=$V)  event whose subject is the volume, a
//                                    disk-sharing volume, or the its pool
//   before(event(...), event(...))   temporal ordering of first occurrences
//   lock_wait_high() / locks_held_high()
//   db_blocks_read_high()
//   cpu_high()                       DB server CPU anomalous
//   plan_changed() / no_plan_change() / plan_change_explained()
#ifndef DIADS_DIADS_SYMPTOM_EXPR_H_
#define DIADS_DIADS_SYMPTOM_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "diads/diagnosis.h"

namespace diads::diag {

/// Parsed symptom expression tree.
struct SymptomExpr {
  enum class Kind { kCall, kNot, kAnd, kOr };
  Kind kind = Kind::kCall;
  std::string callee;                           ///< For kCall.
  std::map<std::string, std::string> args;      ///< Named args (kCall).
  std::vector<SymptomExpr> children;            ///< Operands / call args.

  std::string ToString() const;
};

/// Parses an expression; reports the offending position on error.
Result<SymptomExpr> ParseSymptomExpr(const std::string& text);

class SymptomIndex;

/// Everything a predicate can look at.
struct SymptomEvalContext {
  const DiagnosisContext* ctx = nullptr;
  const WorkflowConfig* config = nullptr;
  const PdResult* pd = nullptr;
  const CoResult* co = nullptr;
  const DaResult* da = nullptr;
  const CrResult* cr = nullptr;
  /// Binding for the `$V` variable (invalid when the entry is unbound).
  ComponentId bound_volume;
  /// Optional precomputed lookups (see symptom_index.h). When set, metric,
  /// membership, and event predicates use hashed lookups instead of
  /// linear scans; answers are identical either way. RunSymptomsDatabase
  /// builds one per diagnosis; hand-rolled evaluations may leave it null.
  const SymptomIndex* index = nullptr;
};

/// Evaluates an expression to a boolean. Unknown predicates or unresolvable
/// component names are errors (a symptoms database typo should not silently
/// evaluate to false).
Result<bool> EvaluateSymptom(const SymptomExpr& expr,
                             const SymptomEvalContext& eval);

/// Reverse of monitor::MetricShortName for the names used in expressions.
Result<monitor::MetricId> ParseMetricShortName(const std::string& name);

/// Reverse of EventTypeName.
Result<EventType> ParseEventTypeName(const std::string& name);

}  // namespace diads::diag

#endif  // DIADS_DIADS_SYMPTOM_EXPR_H_
