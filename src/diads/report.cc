#include "diads/report.h"

#include "common/strings.h"
#include "diads/correlated_operators.h"
#include "diads/correlated_records.h"
#include "diads/dependency_analysis.h"
#include "diads/impact_analysis.h"
#include "diads/plan_diff.h"
#include "diads/symptoms_db.h"

namespace diads::diag {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') needs_quotes = true;
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string RenderFullReport(const DiagnosisContext& ctx,
                             const DiagnosisReport& report) {
  const ComponentRegistry& registry = ctx.topology->registry();
  std::string out;
  out += StrFormat("==================== DIADS diagnosis report ============"
                   "========\nQuery: %s\nAnalysis window: %s\n",
                   ctx.query.c_str(), ctx.AnalysisWindow().ToString().c_str());
  out += StrFormat(
      "Runs: %zu satisfactory, %zu unsatisfactory\n\nANSWER: %s\n\n",
      ctx.SatisfactoryRuns().size(), ctx.UnsatisfactoryRuns().size(),
      report.summary.c_str());

  const RootCause* top = report.TopCause();
  if (top != nullptr) {
    out += "Recommended action: ";
    switch (top->type) {
      case RootCauseType::kSanMisconfigurationContention:
        out += StrFormat(
            "review the recent volume/zoning/mapping changes around '%s' "
            "with the SAN team; the new volume shares its physical disks.",
            registry.Contains(top->subject)
                ? registry.NameOf(top->subject).c_str()
                : "?");
        break;
      case RootCauseType::kExternalWorkloadContention:
        out += "relocate or throttle the competing workload, or move the "
               "affected tablespace to an unshared pool.";
        break;
      case RootCauseType::kDataPropertyChange:
        out += "run ANALYZE so the optimizer sees the new data profile, and "
               "re-evaluate the plan.";
        break;
      case RootCauseType::kLockContention:
        out += "identify the competing transaction holding table locks "
               "(pg_locks) and reschedule or shorten it.";
        break;
      case RootCauseType::kPlanChange:
        out += "review the configuration/schema event identified by Module "
               "PD; revert it or tune the new plan.";
        break;
      case RootCauseType::kRaidRebuild:
        out += "expect degraded performance until the rebuild completes; "
               "consider rate-limiting the rebuild.";
        break;
      case RootCauseType::kDiskFailure:
        out += "replace the failed disk; performance recovers after the "
               "array heals.";
        break;
      case RootCauseType::kBufferPoolPressure:
        out += "revisit the buffer pool sizing change.";
        break;
      case RootCauseType::kCpuSaturation:
        out += "move the competing job off the database server or cap its "
               "CPU share.";
        break;
      case RootCauseType::kHbaFailure:
        out += "replace the failed HBA; the surviving path is carrying the "
               "full load and is congested.";
        break;
      case RootCauseType::kMultipathImbalance:
        out += "replace or re-seat the degraded port/SFP, or rebalance the "
               "multipath weights away from it.";
        break;
      case RootCauseType::kRetryStorm:
        out += "raise the driver retry backoff and shed load on the volume "
               "until the queue drains; retries are amplifying the original "
               "slowdown.";
        break;
      case RootCauseType::kCompressionRatioDrift:
        out += "reorganize (recompress) the drifted table's segments; churn "
               "has degraded the compression ratio, so every scan reads far "
               "more pages for the same rows.";
        break;
      case RootCauseType::kZoneMapStaleness:
        out += "rebuild the table's zone maps (or lower "
               "zone_map_refresh_threshold); stale min/max metadata is "
               "defeating segment pruning, so scans touch segments they "
               "should skip.";
        break;
    }
    out += "\n\n";
  }

  out += RenderPdResult(ctx, report.pd) + "\n";
  out += RenderCoResult(ctx, report.co) + "\n";
  out += RenderDaResult(ctx, report.da) + "\n";
  out += RenderCrResult(ctx, report.cr) + "\n";
  out += RenderIaResult(ctx, report.causes) + "\n";
  return out;
}

std::string ExportCausesCsv(const DiagnosisContext& ctx,
                            const DiagnosisReport& report) {
  const ComponentRegistry& registry = ctx.topology->registry();
  std::string out = "cause,subject,confidence,band,impact_pct\n";
  for (const RootCause& cause : report.causes) {
    out += StrFormat(
        "%s,%s,%.1f,%s,%s\n",
        CsvEscape(RootCauseTypeName(cause.type)).c_str(),
        CsvEscape(registry.Contains(cause.subject)
                      ? registry.NameOf(cause.subject)
                      : "")
            .c_str(),
        cause.confidence, ConfidenceBandName(cause.band),
        cause.impact_pct.has_value()
            ? FormatDouble(*cause.impact_pct, 1).c_str()
            : "");
  }
  return out;
}

std::string ExportOperatorScoresCsv(const DiagnosisContext& ctx,
                                    const DiagnosisReport& report) {
  std::string out =
      "operator,type,table,anomaly_score,in_cos,record_deviation,in_crs\n";
  for (const OperatorAnomaly& a : report.co.scores) {
    const db::PlanOp& op = ctx.apg->plan().op(a.op_index);
    double deviation = 0;
    bool in_crs = false;
    for (const RecordCountAnomaly& r : report.cr.scores) {
      if (r.op_index == a.op_index) {
        deviation = r.deviation_score;
        in_crs = r.significant;
      }
    }
    out += StrFormat("O%d,%s,%s,%.4f,%d,%.4f,%d\n", a.op_number,
                     CsvEscape(db::OpTypeName(op.type)).c_str(),
                     CsvEscape(op.table).c_str(), a.score,
                     a.anomalous ? 1 : 0, deviation, in_crs ? 1 : 0);
  }
  return out;
}

std::string ExportMetricScoresCsv(const DiagnosisContext& ctx,
                                  const DiagnosisReport& report) {
  const ComponentRegistry& registry = ctx.topology->registry();
  std::string out =
      "component,kind,metric,anomaly_score,correlation,in_ccs\n";
  for (const MetricAnomaly& m : report.da.metrics) {
    out += StrFormat(
        "%s,%s,%s,%.4f,%.4f,%d\n",
        CsvEscape(registry.NameOf(m.component)).c_str(),
        ComponentKindName(registry.KindOf(m.component)),
        CsvEscape(monitor::MetricShortName(m.metric)).c_str(),
        m.anomaly_score, m.correlation,
        report.da.InCcs(m.component) ? 1 : 0);
  }
  return out;
}

std::string ReportDigest(const DiagnosisReport& report) {
  std::string out;
  out += StrFormat("pd:differ=%d;", report.pd.plans_differ ? 1 : 0);
  for (uint64_t f : report.pd.satisfactory_fingerprints) {
    out += StrFormat("s%016llx,", static_cast<unsigned long long>(f));
  }
  for (uint64_t f : report.pd.unsatisfactory_fingerprints) {
    out += StrFormat("u%016llx,", static_cast<unsigned long long>(f));
  }
  for (const PlanChangeCandidate& c : report.pd.candidates) {
    out += StrFormat(
        "cand(%s@%lld,%s);", EventTypeName(c.event.type),
        static_cast<long long>(c.event.time),
        c.could_explain.has_value() ? (*c.could_explain ? "yes" : "no")
                                    : "unknown");
  }
  out += "\nco:";
  for (const OperatorAnomaly& a : report.co.scores) {
    out += StrFormat("O%d=%.6f%s,", a.op_number, a.score,
                     a.anomalous ? "!" : "");
  }
  out += "cos=";
  for (int op : report.co.correlated_operator_set) {
    out += StrFormat("%d,", op);
  }
  out += "\nda:";
  for (const MetricAnomaly& m : report.da.metrics) {
    out += StrFormat("c%u/m%d=%.6f/%.6f%s,", m.component.value,
                     static_cast<int>(m.metric), m.anomaly_score,
                     m.correlation, m.correlated ? "!" : "");
  }
  out += "ccs=";
  for (ComponentId c : report.da.correlated_component_set) {
    out += StrFormat("%u,", c.value);
  }
  out += "\ncr:";
  for (const RecordCountAnomaly& a : report.cr.scores) {
    out += StrFormat("O%d=%.6f%s,", a.op_number, a.deviation_score,
                     a.significant ? "!" : "");
  }
  out += StrFormat("crs_changed=%d;crs=",
                   report.cr.data_properties_changed ? 1 : 0);
  for (int op : report.cr.correlated_record_set) {
    out += StrFormat("%d,", op);
  }
  out += "\ncauses:";
  for (const RootCause& cause : report.causes) {
    out += StrFormat(
        "%s/c%u/conf%.4f/%s/impact%s{%s};", RootCauseTypeName(cause.type),
        cause.subject.value, cause.confidence, ConfidenceBandName(cause.band),
        cause.impact_pct.has_value() ? StrFormat("%.4f", *cause.impact_pct).c_str()
                                     : "-",
        cause.explanation.c_str());
  }
  out += "\nsummary:" + report.summary;
  return out;
}

uint64_t ReportDigestHash(const DiagnosisReport& report) {
  return Fnv1a64(ReportDigest(report));
}

std::string ReportDigestHashHex(const DiagnosisReport& report) {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(ReportDigestHash(report)));
}

}  // namespace diads::diag
